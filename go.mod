module qcec

go 1.22
