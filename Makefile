# Single source of truth for build/check commands: CI (.github/workflows/ci.yml)
# and local runs invoke the same targets.

GO ?= go

# Packages with real concurrency (goroutines + shared cancellation state):
# these are the ones the race detector must cover.
RACE_PKGS = ./internal/core/... ./internal/portfolio/... ./internal/dd/... ./internal/ec/... ./internal/resource/... ./internal/faultinject/... ./internal/server/... ./internal/sim/... ./internal/stab/...

FUZZTIME ?= 20s

# Pinned so local runs and CI flag the identical finding set; bump
# deliberately, together with fixing whatever the new version reports.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race vet fmt staticcheck fuzz-smoke chaos serve-smoke bench benchcmp ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

# Fails when any tracked Go file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis beyond vet. `go run` pins the tool version through the
# module proxy, so the target needs no separately-installed binary and CI
# and local runs agree byte-for-byte on the ruleset.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Simulation benchmark over the seed circuits: writes BENCH_sim.json
# comparing the apply kernel, the cached legacy path and the uncached legacy
# path (gate-application rates plus verdict parity), plus a multi-worker
# scaling curve (1/2/4/NumCPU stimulus workers over one shared prepared
# program set) per equivalent pair.  -r 32 amortizes the per-check setup
# cost that otherwise dominates the sub-millisecond seed circuits.  The
# -min-* gates make the run fail below the advertised speedups; the scaling
# floor (0.5 efficiency at 4 workers = a 2x speedup) is only enforced on
# machines with at least 4 CPUs.  CI runs it non-blocking and archives the
# artifact instead.
# The kernel floor is 1.3 rather than the 1.5 it once was: the arena node
# storage sped up the *denominator* (the cached legacy path is dominated by
# matrix-DD traffic, which benefits most from slab storage), compressing the
# kernel's relative advantage while its absolute throughput is unchanged
# (benchcmp and the parity tests watch that side).
# The Clifford sweep (stabilizer tableau vs the complete DD checker on
# random Clifford pairs, 8-24 qubits) rides in the same artifact; its floor
# asserts the polynomial fast path is at least 10x ahead of DD on the
# >=20-qubit equivalent pairs.
# The gate-cost sweep (application schemes on deeply-compiled pairs, peak DD
# nodes) also rides in the artifact; its floor of 2 asserts the gate-cost
# schedule keeps the miter at most half the proportional scheme's peak size
# (geomean over equivalent pairs; peak node counts are deterministic).
BENCH_R ?= 32
BENCH_MIN_SPEEDUP ?= 1.5
BENCH_MIN_KERNEL_SPEEDUP ?= 1.3
BENCH_MIN_SCALING_EFF ?= 0.5
BENCH_MIN_STAB_SPEEDUP ?= 10
BENCH_MIN_GATECOST_RATIO ?= 2
bench:
	$(GO) run ./cmd/qbench -out BENCH_sim.json -r $(BENCH_R) \
		-min-speedup $(BENCH_MIN_SPEEDUP) -min-kernel-speedup $(BENCH_MIN_KERNEL_SPEEDUP) \
		-min-scaling-eff $(BENCH_MIN_SCALING_EFF) -min-stab-speedup $(BENCH_MIN_STAB_SPEEDUP) \
		-min-gatecost-ratio $(BENCH_MIN_GATECOST_RATIO)

# Fresh benchmark run diffed against the committed BENCH_sim.json, without
# overwriting it: per-pair and geomean gate-apps/s deltas.  The gates are
# disabled here — benchcmp reports drift, it does not enforce a floor.
benchcmp:
	$(GO) run ./cmd/qbench -out /tmp/qbench-head.json -r $(BENCH_R) -compare BENCH_sim.json

# Short fuzzing bursts over the parsers and the decomposition pipeline;
# -fuzz takes one target per invocation, so each fuzzer gets its own run.
fuzz-smoke:
	$(GO) test ./internal/qasm -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/qasm -run='^$$' -fuzz='^FuzzRoundTrip$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/revlib -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/decompose -run='^$$' -fuzz='^FuzzZYZ$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/decompose -run='^$$' -fuzz='^FuzzDecompose$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/stab -run='^$$' -fuzz='^FuzzTableau$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wal -run='^$$' -fuzz='^FuzzJournalDecode$$' -fuzztime=$(FUZZTIME)

# The fault-injection chaos suite and the watchdog tests under the race
# detector: every injected fault must degrade into a typed report, never a
# crash or a flipped verdict.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/... ./internal/resource/...

# End-to-end smoke of the checking daemon: build the real qcecd binary, run
# it on a random port, drive it over HTTP with the seed circuits (equivalent
# and non-equivalent pairs, a concurrent burst), scrape /metrics, then
# SIGTERM it and require a clean drain + exit 0.
serve-smoke:
	QCECD_SMOKE=1 $(GO) test ./internal/server -run '^TestServeSmoke$$|^TestServeCrashRestart$$' -count=1 -v -timeout 300s

ci: build test vet fmt race
