# Single source of truth for build/check commands: CI (.github/workflows/ci.yml)
# and local runs invoke the same targets.

GO ?= go

# Packages with real concurrency (goroutines + shared cancellation state):
# these are the ones the race detector must cover.
RACE_PKGS = ./internal/core/... ./internal/portfolio/... ./internal/dd/... ./internal/ec/...

FUZZTIME ?= 20s

.PHONY: all build test race vet fmt fuzz-smoke bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

# Fails when any tracked Go file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Gate-DD cache benchmark over the seed circuits: writes BENCH_sim.json
# comparing cached vs uncached gate-application rates with verdict parity.
# -min-speedup makes the run fail below the advertised speedup; CI runs it
# non-blocking and archives the artifact instead.
BENCH_MIN_SPEEDUP ?= 1.5
bench:
	$(GO) run ./cmd/qbench -out BENCH_sim.json -min-speedup $(BENCH_MIN_SPEEDUP)

# Short fuzzing bursts over the parsers; -fuzz takes one target per
# invocation, so each fuzzer gets its own run.
fuzz-smoke:
	$(GO) test ./internal/qasm -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/qasm -run='^$$' -fuzz='^FuzzRoundTrip$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/revlib -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME)

ci: build test vet fmt race
