// Package qcec reproduces "The Power of Simulation for Equivalence Checking
// in Quantum Computing" (Burgholzer & Wille, DAC 2020) as a pure-Go library.
//
// The repository implements, from scratch and with no dependencies beyond the
// standard library:
//
//   - a QMDD decision-diagram package for quantum states and unitaries
//     (internal/cn, internal/dd),
//   - a quantum-circuit intermediate representation with OpenQASM 2.0 and
//     RevLib .real I/O (internal/circuit, internal/qasm, internal/revlib),
//   - a DD-based simulator and a dense reference simulator
//     (internal/sim, internal/dense),
//   - complete DD-based equivalence checking with naive, proportional and
//     lookahead gate-alternation strategies (internal/ec),
//   - the paper's proposed simulation-first equivalence checking flow
//     (internal/core),
//   - the compilation substrates that produce the "alternative realizations"
//     the paper checks: gate decomposition, SWAP-inserting mapping, circuit
//     optimization and reversible-logic synthesis (internal/decompose,
//     internal/mapping, internal/opt, internal/synth),
//   - the other checker families the paper surveys: a CDCL SAT solver with a
//     reversible-circuit miter encoding (internal/sat, internal/ecsat,
//     ref [17]), gate-level rewriting (internal/ecrw, ref [16]) and
//     ZX-calculus rewriting (internal/zx),
//   - the paper's benchmark families and error-injection model
//     (internal/bench, internal/errinject), and
//   - the experiment harness that regenerates Table Ia/Ib, the Sec. IV-A
//     theory experiment and the extension studies (internal/harness,
//     cmd/qectab, bench_test.go, shape_test.go).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package qcec
