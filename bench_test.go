// Benchmarks regenerating the paper's experimental artifacts, one family per
// table/figure (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record):
//
//	BenchmarkTable1a*   — Table Ia  (non-equivalent pairs: t_ec vs #sims/t_sim)
//	BenchmarkTable1b*   — Table Ib  (equivalent pairs: t_ec vs t_sim at r=10)
//	BenchmarkFlowFig3   — the proposed flow end to end (Fig. 3)
//	BenchmarkTheory     — Sec. IV-A detection probability vs control count
//	BenchmarkFig1       — the Fig. 1/2 worked example
//	BenchmarkAblate*    — strategy / simulation-count ablations
//
// Run with: go test -bench=. -benchmem
package qcec_test

import (
	"sync"
	"testing"
	"time"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/harness"
	"qcec/internal/mapping"
)

var (
	suiteOnce sync.Once
	eqSuite   []harness.Instance
	neqSuite  []harness.Instance
	suiteErr  error
)

func suites(b *testing.B) ([]harness.Instance, []harness.Instance) {
	b.Helper()
	suiteOnce.Do(func() {
		eqSuite, suiteErr = harness.BuildEquivalentSuite(harness.Small)
		if suiteErr != nil {
			return
		}
		neqSuite, suiteErr = harness.BuildNonEquivalentSuite(harness.Small, 1)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return eqSuite, neqSuite
}

// BenchmarkTable1aSimulation measures the simulation stage on every
// non-equivalent instance — the paper's #sims / t_sim columns.  The reported
// sims/op metric is the number of random stimuli needed to expose the error
// (paper: 1 almost everywhere).
func BenchmarkTable1aSimulation(b *testing.B) {
	_, neq := suites(b)
	for _, inst := range neq {
		inst := inst
		b.Run(inst.Name, func(b *testing.B) {
			totalSims := 0
			detected := 0
			for i := 0; i < b.N; i++ {
				rep := core.Check(inst.G, inst.Gp, core.Options{
					R: 64, Seed: int64(i), SkipEC: true, OutputPerm: inst.OutputPerm,
				})
				totalSims += rep.NumSims
				if rep.Verdict == core.NotEquivalent {
					detected++
				}
			}
			b.ReportMetric(float64(totalSims)/float64(b.N), "sims/op")
			b.ReportMetric(float64(detected)/float64(b.N), "detect-rate")
		})
	}
}

// BenchmarkTable1aECBaseline measures the complete routine alone on the
// non-equivalent instances — the paper's t_ec column (frequently a timeout).
func BenchmarkTable1aECBaseline(b *testing.B) {
	_, neq := suites(b)
	for _, inst := range neq {
		inst := inst
		b.Run(inst.Name, func(b *testing.B) {
			timeouts := 0
			for i := 0; i < b.N; i++ {
				r := ec.Check(inst.G, inst.Gp, ec.Options{
					Strategy: ec.Construction, Timeout: 2 * time.Second,
					NodeLimit: 500_000, OutputPerm: inst.OutputPerm,
				})
				if r.Verdict == ec.TimedOut {
					timeouts++
				}
			}
			b.ReportMetric(float64(timeouts)/float64(b.N), "timeout-rate")
		})
	}
}

// BenchmarkTable1bSimOverhead measures the r = 10 simulation overhead on
// equivalent instances — the paper's t_sim column of Table Ib, shown to be
// negligible next to t_ec.
func BenchmarkTable1bSimOverhead(b *testing.B) {
	eq, _ := suites(b)
	for _, inst := range eq {
		inst := inst
		b.Run(inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := core.Check(inst.G, inst.Gp, core.Options{
					R: 10, Seed: int64(i), SkipEC: true, OutputPerm: inst.OutputPerm,
				})
				if rep.Verdict == core.NotEquivalent {
					b.Fatalf("%s: false non-equivalence", inst.Name)
				}
			}
		})
	}
}

// BenchmarkTable1bECBaseline measures the complete routine on equivalent
// instances — the paper's t_ec column of Table Ib.
func BenchmarkTable1bECBaseline(b *testing.B) {
	eq, _ := suites(b)
	for _, inst := range eq {
		inst := inst
		b.Run(inst.Name, func(b *testing.B) {
			timeouts := 0
			for i := 0; i < b.N; i++ {
				r := ec.Check(inst.G, inst.Gp, ec.Options{
					Strategy: ec.Construction, Timeout: 2 * time.Second,
					NodeLimit: 500_000, OutputPerm: inst.OutputPerm,
				})
				if r.Verdict == ec.TimedOut {
					timeouts++
				}
			}
			b.ReportMetric(float64(timeouts)/float64(b.N), "timeout-rate")
		})
	}
}

// BenchmarkFlowFig3 runs the complete proposed flow over the mixed suite —
// the Fig. 3 pipeline end to end.
func BenchmarkFlowFig3(b *testing.B) {
	eq, neq := suites(b)
	all := append(append([]harness.Instance{}, eq...), neq...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := harness.RunFlow(all, harness.RunOptions{
			R: 10, ECTimeout: 2 * time.Second, ECNodeLimit: 500_000,
			ECStrategy: ec.Proportional, Seed: int64(i),
		})
		if s.WrongVerdicts != 0 {
			b.Fatalf("flow produced %d wrong verdicts", s.WrongVerdicts)
		}
	}
}

// BenchmarkTheory regenerates the Sec. IV-A experiment: exhaustive
// detection-probability measurement for difference gates with c controls.
func BenchmarkTheory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.TheoryExperiment(8, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Measured != r.Predicted {
				b.Fatalf("c=%d: measured %g != predicted %g", r.Controls, r.Measured, r.Predicted)
			}
		}
	}
}

// BenchmarkFig1 runs the worked example: map the Fig. 1b circuit, plant the
// Example 6 bug, detect it by simulation.
func BenchmarkFig1(b *testing.B) {
	g := bench.PaperExample()
	res, err := mapping.Map(g, mapping.Options{Arch: mapping.Linear(3), RestoreLayout: true})
	if err != nil {
		b.Fatal(err)
	}
	buggy := res.Circuit.Clone()
	for i := len(buggy.Gates) - 1; i >= 0; i-- {
		if buggy.Gates[i].Kind == circuit.SWAP {
			sw := buggy.Gates[i]
			buggy.Gates[i].Target2 = 3 - sw.Target - sw.Target2
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.Check(g, buggy, core.Options{Seed: int64(i), SkipEC: true})
		if rep.Verdict != core.NotEquivalent {
			b.Fatal("Example 6 bug not detected")
		}
	}
}

// BenchmarkAblateStrategy compares the complete-EC gate-alternation
// strategies on an equivalent compiled pair (DESIGN.md ablation 1).
func BenchmarkAblateStrategy(b *testing.B) {
	eq, _ := suites(b)
	inst := eq[0]
	for _, s := range []ec.Strategy{ec.Construction, ec.Sequential, ec.Proportional, ec.Lookahead} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := ec.Check(inst.G, inst.Gp, ec.Options{
					Strategy: s, Timeout: 5 * time.Second, OutputPerm: inst.OutputPerm,
				})
				if r.Verdict == ec.NotEquivalent {
					b.Fatal("equivalent pair misjudged")
				}
			}
		})
	}
}

// BenchmarkAblateSimCount measures detection rate as a function of r
// (DESIGN.md ablation 2) — the basis for the paper's choice of r = 10.
func BenchmarkAblateSimCount(b *testing.B) {
	eq, _ := suites(b)
	for _, r := range []int{1, 2, 4, 10} {
		r := r
		b.Run(rName(r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := harness.RunRAblation(eq[:5], []int{r}, int64(i))
				b.ReportMetric(float64(rows[0].Detected)/float64(rows[0].Total), "detect-rate")
			}
		})
	}
}

func rName(r int) string {
	switch r {
	case 1:
		return "r=01"
	case 2:
		return "r=02"
	case 4:
		return "r=04"
	default:
		return "r=10"
	}
}
