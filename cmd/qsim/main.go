// Command qsim simulates a quantum circuit on a computational basis state
// using the decision-diagram simulator, printing the resulting state (and
// optionally measurement samples) — the engine the paper's flow uses for its
// random-stimuli runs.
//
// Usage:
//
//	qsim [flags] <circuit>
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"qcec/internal/circuit"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
	"qcec/internal/sim"
)

func loadCircuit(path string) (*circuit.Circuit, error) {
	switch {
	case strings.HasSuffix(path, ".real"):
		f, err := revlib.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return f.Circuit, nil
	case strings.HasSuffix(path, ".qasm"):
		prog, err := qasm.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	default:
		return nil, fmt.Errorf("unsupported circuit format %q (want .qasm or .real)", path)
	}
}

func main() {
	var (
		input = flag.Uint64("input", 0, "computational basis state to simulate")
		shots = flag.Int("shots", 0, "measurement samples to draw (0 = print amplitudes instead)")
		seed  = flag.Int64("seed", 0, "sampling seed")
		limit = flag.Int("limit", 16, "maximum amplitudes to print")
		stats = flag.Bool("stats", false, "print DD statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qsim [flags] <circuit>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	c, err := loadCircuit(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	if c.N < 64 && *input >= uint64(1)<<uint(c.N) {
		fmt.Fprintf(os.Stderr, "qsim: input %d out of range for %d qubits\n", *input, c.N)
		os.Exit(2)
	}
	s := sim.New(c.N)
	st := s.Run(c, *input)
	fmt.Printf("circuit: %s — %d qubits, %d gates, depth %d\n", c.Name, c.N, c.NumGates(), c.Depth())
	if *shots > 0 {
		rng := rand.New(rand.NewSource(*seed))
		counts := make(map[uint64]int)
		for i := 0; i < *shots; i++ {
			counts[s.P.Sample(st, rng)]++
		}
		type kv struct {
			k uint64
			v int
		}
		var sorted []kv
		for k, v := range counts {
			sorted = append(sorted, kv{k, v})
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].v > sorted[j].v })
		for _, e := range sorted {
			fmt.Printf("|%0*b>: %d\n", c.N, e.k, e.v)
		}
	} else {
		fmt.Printf("state: %s\n", s.P.FormatState(st, *limit))
	}
	if *stats {
		fmt.Printf("state DD nodes: %d, package nodes: %d, GC runs: %d\n",
			s.P.VSize(st), s.P.NodeCount(), s.P.GCRuns())
	}
}
