// Command qgen generates benchmark circuits from the reproduction's
// built-in families and writes them to OpenQASM 2.0 or RevLib .real files —
// the tool that populates circuits/ with inputs for qcec/qsim/qconv.
//
// Usage:
//
//	qgen -family qft -n 8 -o circuits/qft8.qasm
//	qgen -family hwb -n 5 -o circuits/hwb5.real
//	qgen -family grover -n 4 -o circuits/grover4.qasm -decompose cx
//	qgen -family supremacy -rows 3 -cols 3 -depth 8 -seed 7 -o sup.qasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/decompose"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

func main() {
	var (
		family = flag.String("family", "", "circuit family: qft|grover|ghz|bv|dj|supremacy|chemistry|hwb|urf|inc|rd")
		n      = flag.Int("n", 4, "size parameter (qubits / search bits / input bits)")
		rows   = flag.Int("rows", 2, "grid rows (supremacy, chemistry)")
		cols   = flag.Int("cols", 2, "grid cols (supremacy, chemistry)")
		depth  = flag.Int("depth", 8, "cycles (supremacy) / Trotter steps (chemistry)")
		seed   = flag.Int64("seed", 1, "generator seed where applicable")
		level  = flag.String("decompose", "", "lower before writing: toffoli|cx")
		out    = flag.String("o", "", "output file (.qasm or .real)")
	)
	flag.Parse()
	if *family == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: qgen -family <name> [-n N] -o out.{qasm,real}")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var (
		c   *circuit.Circuit
		err error
	)
	switch *family {
	case "qft":
		c = bench.QFT(*n)
	case "grover":
		c = bench.Grover(*n, (uint64(1)<<uint(*n)-1)/3)
	case "ghz":
		c = bench.GHZ(*n)
	case "bv":
		c = bench.BernsteinVazirani(*n, (uint64(1)<<uint(*n)-1)/3)
	case "dj":
		c = bench.DeutschJozsa(*n, false)
	case "supremacy":
		c = bench.Supremacy(*rows, *cols, *depth, *seed)
	case "chemistry":
		c = bench.Chemistry(*rows, *cols, *depth)
	case "hwb":
		c, err = bench.HWB(*n)
	case "urf":
		c, err = bench.RandomReversible(*n, *seed)
	case "inc":
		c = bench.Increment(*n, 1)
	case "rd":
		c, err = bench.RD(*n)
	default:
		fmt.Fprintf(os.Stderr, "qgen: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qgen:", err)
		os.Exit(1)
	}

	switch *level {
	case "":
	case "toffoli":
		c = decompose.Circuit(c, decompose.LevelToffoli)
	case "cx":
		c = decompose.Circuit(c, decompose.LevelCX)
	default:
		fmt.Fprintf(os.Stderr, "qgen: unknown decomposition level %q\n", *level)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(*out, ".qasm"):
		err = qasm.Write(f, c)
	case strings.HasSuffix(*out, ".real"):
		err = revlib.Write(f, c)
	default:
		err = fmt.Errorf("unsupported output format %q", *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d qubits, %d gates\n", *out, c.N, c.NumGates())
}
