// Command qgen generates benchmark circuits from the reproduction's
// built-in families and writes them to OpenQASM 2.0 or RevLib .real files —
// the tool that populates circuits/ with inputs for qcec/qsim/qconv.
//
// Usage:
//
//	qgen -family qft -n 8 -o circuits/qft8.qasm
//	qgen -family hwb -n 5 -o circuits/hwb5.real
//	qgen -family grover -n 4 -o circuits/grover4.qasm -decompose cx
//	qgen -family supremacy -rows 3 -cols 3 -depth 8 -seed 7 -o sup.qasm
//	qgen -family clifford -n 8 -gates 80 -seed 3 -o circuits/clifford8.qasm
//	qgen -family clifford -n 8 -gates 80 -seed 3 -errinject flipped-cnot -o buggy.qasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/decompose"
	"qcec/internal/errinject"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

// parseErrKind maps a flag value onto an error-injection class by its
// String() name (case-insensitive, spaces or dashes), so the flag vocabulary
// tracks AllKinds automatically.
func parseErrKind(name string) (errinject.Kind, error) {
	canon := func(s string) string {
		return strings.ReplaceAll(strings.ToLower(s), " ", "-")
	}
	var names []string
	for _, k := range errinject.AllKinds() {
		if canon(k.String()) == canon(name) {
			return k, nil
		}
		names = append(names, canon(k.String()))
	}
	return 0, fmt.Errorf("unknown error kind %q (want %s)", name, strings.Join(names, "|"))
}

func main() {
	var (
		family  = flag.String("family", "", "circuit family: qft|grover|ghz|bv|dj|supremacy|chemistry|hwb|urf|inc|rd|clifford")
		n       = flag.Int("n", 4, "size parameter (qubits / search bits / input bits)")
		rows    = flag.Int("rows", 2, "grid rows (supremacy, chemistry)")
		cols    = flag.Int("cols", 2, "grid cols (supremacy, chemistry)")
		depth   = flag.Int("depth", 8, "cycles (supremacy) / Trotter steps (chemistry)")
		gates   = flag.Int("gates", 0, "gate count (clifford; 0 = 10n)")
		seed    = flag.Int64("seed", 1, "generator seed where applicable")
		errKind = flag.String("errinject", "", "inject one error before writing (see internal/errinject kinds)")
		level   = flag.String("decompose", "", "lower before writing: toffoli|cx")
		out     = flag.String("o", "", "output file (.qasm or .real)")
	)
	flag.Parse()
	if *family == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: qgen -family <name> [-n N] -o out.{qasm,real}")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var (
		c   *circuit.Circuit
		err error
	)
	switch *family {
	case "qft":
		c = bench.QFT(*n)
	case "grover":
		c = bench.Grover(*n, (uint64(1)<<uint(*n)-1)/3)
	case "ghz":
		c = bench.GHZ(*n)
	case "bv":
		c = bench.BernsteinVazirani(*n, (uint64(1)<<uint(*n)-1)/3)
	case "dj":
		c = bench.DeutschJozsa(*n, false)
	case "supremacy":
		c = bench.Supremacy(*rows, *cols, *depth, *seed)
	case "chemistry":
		c = bench.Chemistry(*rows, *cols, *depth)
	case "hwb":
		c, err = bench.HWB(*n)
	case "urf":
		c, err = bench.RandomReversible(*n, *seed)
	case "inc":
		c = bench.Increment(*n, 1)
	case "rd":
		c, err = bench.RD(*n)
	case "clifford":
		g := *gates
		if g == 0 {
			g = 10 * *n
		}
		c = bench.RandomClifford(*n, g, *seed)
	default:
		fmt.Fprintf(os.Stderr, "qgen: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qgen:", err)
		os.Exit(1)
	}

	if *errKind != "" {
		kind, kerr := parseErrKind(*errKind)
		if kerr != nil {
			fmt.Fprintln(os.Stderr, "qgen:", kerr)
			os.Exit(2)
		}
		var inj errinject.Injection
		c, inj, err = errinject.Inject(c, kind, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "injected: %s\n", inj)
	}

	switch *level {
	case "":
	case "toffoli":
		c = decompose.Circuit(c, decompose.LevelToffoli)
	case "cx":
		c = decompose.Circuit(c, decompose.LevelCX)
	default:
		fmt.Fprintf(os.Stderr, "qgen: unknown decomposition level %q\n", *level)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(*out, ".qasm"):
		err = qasm.Write(f, c)
	case strings.HasSuffix(*out, ".real"):
		err = revlib.Write(f, c)
	default:
		err = fmt.Errorf("unsupported output format %q", *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d qubits, %d gates\n", *out, c.N, c.NumGates())
}
