// Command qconv converts circuits between the supported formats and
// optionally lowers them through the decomposition pipeline on the way:
//
//	qconv [-decompose toffoli|cx] [-optimize] -o out.{qasm,real} in.{qasm,real}
//
// Converting a RevLib MCT netlist to OpenQASM requires -decompose cx (plain
// qelib1 has no gates with three or more controls); converting OpenQASM to
// RevLib requires a purely classical circuit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qcec/internal/circuit"
	"qcec/internal/decompose"
	"qcec/internal/opt"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

func load(path string) (*circuit.Circuit, error) {
	switch {
	case strings.HasSuffix(path, ".real"):
		f, err := revlib.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return f.Circuit, nil
	case strings.HasSuffix(path, ".qasm"):
		prog, err := qasm.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	default:
		return nil, fmt.Errorf("unsupported input format %q", path)
	}
}

func save(path string, c *circuit.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".real"):
		return revlib.Write(f, c)
	case strings.HasSuffix(path, ".qasm"):
		return qasm.Write(f, c)
	default:
		return fmt.Errorf("unsupported output format %q", path)
	}
}

func main() {
	var (
		out      = flag.String("o", "", "output file (.qasm or .real)")
		level    = flag.String("decompose", "", "lower gates first: toffoli|cx")
		optimize = flag.Bool("optimize", false, "run the peephole optimizer")
		quiet    = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()
	if flag.NArg() != 1 || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: qconv [flags] -o out.{qasm,real} in.{qasm,real}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	c, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qconv:", err)
		os.Exit(1)
	}
	before := c.NumGates()
	switch *level {
	case "":
	case "toffoli":
		c = decompose.Circuit(c, decompose.LevelToffoli)
	case "cx":
		c = decompose.Circuit(c, decompose.LevelCX)
	default:
		fmt.Fprintf(os.Stderr, "qconv: unknown decomposition level %q\n", *level)
		os.Exit(2)
	}
	if *optimize {
		c, _ = opt.Optimize(c, opt.Options{})
	}
	if err := save(*out, c); err != nil {
		fmt.Fprintln(os.Stderr, "qconv:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("%s (%d gates) -> %s (%d gates, %d qubits)\n",
			flag.Arg(0), before, *out, c.NumGates(), c.N)
	}
}
