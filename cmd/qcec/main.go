// Command qcec checks the equivalence of two quantum circuits using the
// paper's simulation-first flow: a handful of random basis-state simulations
// followed, if necessary, by a complete DD-based equivalence check.
//
// Usage:
//
//	qcec [flags] <circuit1> <circuit2>
//
// With -portfolio the selected provers (-provers=sim,dd,alt,gatecost,sat,zx,stab)
// race
// concurrently and the first definitive verdict wins; the losers are
// cancelled and a per-prover report is printed.
//
// Circuit files may be OpenQASM 2.0 (.qasm) or RevLib (.real).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/dd"
	"qcec/internal/ec"
	"qcec/internal/portfolio"
	"qcec/internal/qasm"
	"qcec/internal/resource"
	"qcec/internal/revlib"
)

func loadCircuit(path string) (*circuit.Circuit, error) {
	switch {
	case strings.HasSuffix(path, ".real"):
		f, err := revlib.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return f.Circuit, nil
	case strings.HasSuffix(path, ".qasm"):
		prog, err := qasm.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	default:
		return nil, fmt.Errorf("unsupported circuit format %q (want .qasm or .real)", path)
	}
}

func parseStrategy(s string) (ec.Strategy, error) {
	switch s {
	case "construction":
		return ec.Construction, nil
	case "sequential":
		return ec.Sequential, nil
	case "proportional":
		return ec.Proportional, nil
	case "lookahead":
		return ec.Lookahead, nil
	case "gate-cost", "gatecost", "gate_cost":
		return ec.StrategyGateCost, nil
	case "stabilizer":
		return ec.StrategyStabilizer, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func main() {
	os.Exit(run())
}

// run is main's body, returning the exit code instead of calling os.Exit so
// the profiling defers always flush.
func run() int {
	var (
		r         = flag.Int("r", core.DefaultR, "number of random basis-state simulations before complete checking")
		seed      = flag.Int64("seed", 0, "stimulus selection seed")
		timeout   = flag.Duration("timeout", time.Minute, "complete-check timeout (0 = none)")
		strategy  = flag.String("strategy", "proportional", "complete-check strategy: construction|sequential|proportional|lookahead|gate-cost|stabilizer (gate-cost = compilation-flow schedule from a per-gate cost profile; stabilizer = polynomial-time tableau, Clifford-only circuits)")
		phase     = flag.Bool("up-to-phase", false, "treat circuits differing only by a global phase as equivalent")
		simOnly   = flag.Bool("sim-only", false, "skip the complete check (simulation stage only)")
		parallel  = flag.Int("parallel", 1, "simulation workers (each with a private DD package)")
		rewrite   = flag.Bool("rewrite", false, "try the gate-rewriting prover first (sound, incomplete)")
		zxFlag    = flag.Bool("zx", false, "try the ZX-calculus prover first (sound, incomplete, up-to-phase)")
		fidThresh = flag.Float64("fidelity-threshold", 0, "approximate mode: accept per-stimulus fidelities above this (0 = exact)")
		jsonOut   = flag.Bool("json", false, "print the full report as JSON")
		verbose   = flag.Bool("v", false, "print per-stage details")
		portf     = flag.Bool("portfolio", false, "race the selected provers concurrently; first definitive verdict wins")
		provers   = flag.String("provers", "sim,dd,alt,gatecost,sat,zx,stab", "comma-separated prover subset for -portfolio")
		nodeLimit = flag.Int("node-limit", 0, "DD node budget per complete prover (0 = none)")
		stats     = flag.Bool("stats", false, "print DD-package statistics (gate-cache/compute-table hit rates, unique-table activity, GC reclaims); with -json they are embedded in the report")
		noCache   = flag.Bool("no-gate-cache", false, "disable the gate-DD cache (benchmark baseline; verdicts are identical)")
		noKernel  = flag.Bool("no-apply-kernel", false, "use the legacy GateDD+MulMV path for simulation gate application (benchmark baseline; verdicts are identical)")
		memLimit  = flag.Int("mem-limit", 0, "hard heap budget in MiB; the check is cancelled cleanly when exceeded (0 = none)")
		memSoft   = flag.Int("mem-soft-limit", 0, "soft heap budget in MiB: force DD collections and cache flushes above it (0 = 80% of -mem-limit)")
		retry     = flag.Bool("retry-crashed", false, "with -portfolio: re-run a panicked prover once with a degraded configuration")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: qcec [flags] <circuit1> <circuit2>")
		flag.PrintDefaults()
		return 2
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qcec:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "qcec:", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qcec:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qcec:", err)
			}
		}()
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcec:", err)
		return 2
	}
	memHardBytes := uint64(*memLimit) << 20
	memSoftBytes := uint64(*memSoft) << 20
	if memSoftBytes == 0 && memHardBytes > 0 {
		memSoftBytes = memHardBytes / 10 * 8
	}
	g1, err := loadCircuit(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcec:", err)
		return 2
	}
	g2, err := loadCircuit(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcec:", err)
		return 2
	}
	if *verbose {
		fmt.Printf("G : %s — %d qubits, %d gates\n", flag.Arg(0), g1.N, g1.NumGates())
		fmt.Printf("G': %s — %d qubits, %d gates\n", flag.Arg(1), g2.N, g2.NumGates())
	}

	if *portf {
		return runPortfolio(g1, g2, portfolioConfig{
			names:     strings.Split(*provers, ","),
			r:         *r,
			seed:      *seed,
			timeout:   *timeout,
			strategy:  strat,
			nodeLimit: *nodeLimit,
			phase:     *phase,
			parallel:  *parallel,
			jsonOut:   *jsonOut,
			stats:     *stats,
			noCache:   *noCache,
			noKernel:  *noKernel,
			memSoft:   memSoftBytes,
			memHard:   memHardBytes,
			retry:     *retry,
		})
	}

	rep := core.Check(g1, g2, core.Options{
		R:                  *r,
		Seed:               *seed,
		SkipEC:             *simOnly,
		Strategy:           strat,
		ECTimeout:          *timeout,
		UpToGlobalPhase:    *phase,
		Parallel:           *parallel,
		RewritePrefilter:   *rewrite,
		ZXPrefilter:        *zxFlag,
		FidelityThreshold:  *fidThresh,
		DisableGateCache:   *noCache,
		DisableApplyKernel: *noKernel,
		MemSoftLimit:       memSoftBytes,
		MemHardLimit:       memHardBytes,
	})
	if rep.Err != nil {
		fmt.Fprintln(os.Stderr, "qcec:", rep.Err)
		return 2
	}

	if *jsonOut {
		printJSON(g1.N, rep, *stats)
	} else {
		printHuman(g1.N, rep, *verbose, *stats)
	}
	switch rep.Verdict {
	case core.NotEquivalent:
		return 1
	case core.ProbablyEquivalent:
		return 3
	}
	return 0
}

type portfolioConfig struct {
	names     []string
	r         int
	seed      int64
	timeout   time.Duration
	strategy  ec.Strategy
	nodeLimit int
	phase     bool
	parallel  int
	jsonOut   bool
	stats     bool
	noCache   bool
	noKernel  bool
	memSoft   uint64
	memHard   uint64
	retry     bool
}

// runPortfolio races the selected provers and prints the winning verdict
// plus a per-prover outcome table; exit codes match the sequential flow.
func runPortfolio(g1, g2 *circuit.Circuit, cfg portfolioConfig) int {
	ps, err := portfolio.FromNames(cfg.names, portfolio.Config{
		R:                  cfg.r,
		Seed:               cfg.seed,
		SimParallel:        cfg.parallel,
		Strategy:           cfg.strategy,
		ECNodeLimit:        cfg.nodeLimit,
		UpToGlobalPhase:    cfg.phase,
		DisableGateCache:   cfg.noCache,
		DisableApplyKernel: cfg.noKernel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcec:", err)
		return 2
	}
	res := portfolio.Run(context.Background(), g1, g2, ps, portfolio.Options{
		Timeout:      cfg.timeout,
		RetryCrashed: cfg.retry,
		MemSoftLimit: cfg.memSoft,
		MemHardLimit: cfg.memHard,
	})

	if cfg.jsonOut {
		printPortfolioJSON(g1.N, res, cfg.stats)
	} else {
		printPortfolioHuman(g1.N, res, cfg.stats)
	}
	switch res.Verdict {
	case portfolio.NotEquivalent:
		return 1
	case portfolio.Inconclusive:
		return 3
	}
	return 0
}

// printDDStats renders one DD-package statistics block, indented under the
// given label.
func printDDStats(label string, s dd.Stats) {
	fmt.Printf("%s DD stats:\n", label)
	fmt.Printf("  gate cache:    %d hits / %d misses (%.1f%% hit rate, %d entries, %d GC flushes)\n",
		s.GateHits, s.GateMisses, 100*s.GateHitRate(), s.GateCacheSize, s.GateFlushes)
	fmt.Printf("  compute table: %d hits / %d misses (%.1f%% hit rate)\n",
		s.CacheHits, s.CacheMisses, 100*s.ComputeHitRate())
	if s.ApplyCalls > 0 {
		fmt.Printf("  apply kernel:  %d direct applies (%d diagonal, %d permutation, %d generic), %.1f%% table hit rate\n",
			s.ApplyCalls, s.ApplyDiag, s.ApplyPerm, s.ApplyGeneric, 100*s.ApplyHitRate())
	}
	fmt.Printf("  unique table:  %d lookups, %.1f%% answered by interned nodes (%d v-nodes, %d m-nodes live)\n",
		s.UniqueLookups, 100*s.UniqueHitRate(), s.VectorNodes, s.MatrixNodes)
	fmt.Printf("  weights:       %d interned, %d lookups\n", s.WeightsStored, s.WeightLookups)
	gcLine := fmt.Sprintf("  gc:            %d runs, %d nodes reclaimed", s.GCRuns, s.GCReclaimed)
	if s.PressureGCs > 0 {
		gcLine += fmt.Sprintf(", %d forced by memory pressure", s.PressureGCs)
	}
	fmt.Println(gcLine)
}

// printMemStats renders the memory watchdog's counters.
func printMemStats(m *resource.Stats) {
	if m == nil {
		return
	}
	fmt.Printf("memory watchdog: %d samples, %d soft trips, %d hard trips, peak heap %.1f MiB, peak DD nodes %d\n",
		m.Samples, m.SoftTrips, m.HardTrips, float64(m.PeakHeapBytes)/(1<<20), m.PeakDDNodes)
}

// memReport is the JSON shape of resource.Stats.
type memReport struct {
	Samples       uint64 `json:"samples"`
	SoftTrips     uint64 `json:"soft_trips"`
	HardTrips     uint64 `json:"hard_trips"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	PeakDDNodes   int64  `json:"peak_dd_nodes"`
}

func newMemReport(m *resource.Stats) *memReport {
	if m == nil {
		return nil
	}
	return &memReport{
		Samples: m.Samples, SoftTrips: m.SoftTrips, HardTrips: m.HardTrips,
		PeakHeapBytes: m.PeakHeapBytes, PeakDDNodes: m.PeakDDNodes,
	}
}

func printPortfolioHuman(n int, res portfolio.Result, stats bool) {
	fmt.Printf("verdict: %s", res.Verdict)
	if res.Winner != "" {
		fmt.Printf(" (won by %s)", res.Winner)
	}
	fmt.Println()
	if res.Counterexample != nil {
		fmt.Printf("counterexample: input |%0*b>\n", n, *res.Counterexample)
	}
	fmt.Printf("%-6s %-30s %-12s %10s %10s  %s\n", "prover", "verdict", "stopped", "time", "peak", "detail")
	for _, r := range res.Reports {
		peak := ""
		if r.PeakNodes > 0 {
			peak = fmt.Sprintf("%d", r.PeakNodes)
		}
		name := r.Name
		if r.Retried {
			name += "*" // degraded retry after a crash; see detail column
		}
		fmt.Printf("%-6s %-30s %-12s %9.4fs %10s  %s\n",
			name, r.Verdict, r.Stop, r.Runtime.Seconds(), peak, r.Detail)
	}
	fmt.Printf("total: %.4fs\n", res.Runtime.Seconds())
	if stats {
		for _, r := range res.Reports {
			if r.DD != nil {
				printDDStats(r.Name, *r.DD)
			}
		}
		printMemStats(res.Mem)
	}
}

func printPortfolioJSON(n int, res portfolio.Result, stats bool) {
	type report struct {
		Prover    string    `json:"prover"`
		Verdict   string    `json:"verdict"`
		Stopped   string    `json:"stopped"`
		Seconds   float64   `json:"seconds"`
		PeakNodes int       `json:"peak_nodes,omitempty"`
		Detail    string    `json:"detail,omitempty"`
		Error     string    `json:"error,omitempty"`
		Retried   bool      `json:"retried,omitempty"`
		DD        *ddReport `json:"dd,omitempty"`
	}
	out := struct {
		Verdict        string     `json:"verdict"`
		Winner         string     `json:"winner,omitempty"`
		Qubits         int        `json:"qubits"`
		Counterexample *uint64    `json:"counterexample,omitempty"`
		TotalSeconds   float64    `json:"total_seconds"`
		Reports        []report   `json:"provers"`
		Mem            *memReport `json:"mem,omitempty"`
	}{
		Verdict:        res.Verdict.String(),
		Winner:         res.Winner,
		Qubits:         n,
		Counterexample: res.Counterexample,
		TotalSeconds:   res.Runtime.Seconds(),
	}
	for _, r := range res.Reports {
		rep := report{
			Prover: r.Name, Verdict: r.Verdict.String(), Stopped: r.Stop.String(),
			Seconds: r.Runtime.Seconds(), PeakNodes: r.PeakNodes, Detail: r.Detail,
			Retried: r.Retried,
		}
		if r.Err != nil {
			rep.Error = r.Err.Error()
		}
		if stats && r.DD != nil {
			rep.DD = newDDReport(*r.DD)
		}
		out.Reports = append(out.Reports, rep)
	}
	if stats {
		out.Mem = newMemReport(res.Mem)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "qcec:", err)
	}
}

// ddReport is the JSON shape of dd.Stats for -json -stats output.
type ddReport struct {
	GateHits       uint64  `json:"gate_hits"`
	GateMisses     uint64  `json:"gate_misses"`
	GateHitRate    float64 `json:"gate_hit_rate"`
	GateCacheSize  int     `json:"gate_cache_size"`
	GateFlushes    uint64  `json:"gate_flushes"`
	ComputeHits    uint64  `json:"compute_hits"`
	ComputeMisses  uint64  `json:"compute_misses"`
	ComputeHitRate float64 `json:"compute_hit_rate"`
	ApplyCalls     uint64  `json:"apply_calls"`
	ApplyDiag      uint64  `json:"apply_diag"`
	ApplyPerm      uint64  `json:"apply_perm"`
	ApplyGeneric   uint64  `json:"apply_generic"`
	ApplyHits      uint64  `json:"apply_hits"`
	ApplyMisses    uint64  `json:"apply_misses"`
	ApplyHitRate   float64 `json:"apply_hit_rate"`
	UniqueLookups  uint64  `json:"unique_lookups"`
	UniqueHits     uint64  `json:"unique_hits"`
	VectorNodes    int     `json:"vector_nodes"`
	MatrixNodes    int     `json:"matrix_nodes"`
	WeightsStored  int     `json:"weights_stored"`
	GCRuns         int     `json:"gc_runs"`
	GCReclaimed    uint64  `json:"gc_reclaimed"`
	PressureGCs    uint64  `json:"pressure_gcs,omitempty"`
	FaultEvents    uint64  `json:"fault_events,omitempty"`
}

func newDDReport(s dd.Stats) *ddReport {
	return &ddReport{
		GateHits: s.GateHits, GateMisses: s.GateMisses,
		GateHitRate: s.GateHitRate(), GateCacheSize: s.GateCacheSize, GateFlushes: s.GateFlushes,
		ComputeHits: s.CacheHits, ComputeMisses: s.CacheMisses, ComputeHitRate: s.ComputeHitRate(),
		ApplyCalls: s.ApplyCalls, ApplyDiag: s.ApplyDiag, ApplyPerm: s.ApplyPerm,
		ApplyGeneric: s.ApplyGeneric, ApplyHits: s.ApplyHits, ApplyMisses: s.ApplyMisses,
		ApplyHitRate:  s.ApplyHitRate(),
		UniqueLookups: s.UniqueLookups, UniqueHits: s.UniqueHits,
		VectorNodes: s.VectorNodes, MatrixNodes: s.MatrixNodes, WeightsStored: s.WeightsStored,
		GCRuns: s.GCRuns, GCReclaimed: s.GCReclaimed,
		PressureGCs: s.PressureGCs, FaultEvents: s.FaultEvents,
	}
}

func printHuman(n int, rep core.Report, verbose, stats bool) {
	fmt.Printf("verdict: %s", rep.Verdict)
	if rep.DecidedBy != "" {
		fmt.Printf(" (decided by %s)", rep.DecidedBy)
	}
	fmt.Println()
	if rep.Cancelled && rep.CancelCause != nil {
		fmt.Printf("stopped early: %v\n", rep.CancelCause)
	}
	if rep.Rewriting != nil {
		fmt.Printf("rewriting prover: %s (miter %d -> %d gates, %.4fs)\n",
			rep.Rewriting.Verdict, rep.Rewriting.MiterGates, rep.Rewriting.ResidualGates,
			rep.Rewriting.Runtime.Seconds())
	}
	if rep.ZX != nil {
		fmt.Printf("zx prover: %s (spiders %d -> %d, %.4fs)\n",
			rep.ZX.Verdict, rep.ZX.SpidersBefore, rep.ZX.SpidersAfter, rep.ZX.Runtime.Seconds())
	}
	fmt.Printf("simulations: %d (%.3fs, min fidelity %.6f)\n", rep.NumSims, rep.SimTime.Seconds(), rep.MinFidelity)
	if rep.EC != nil {
		fmt.Printf("complete check: %s via %s (%.3fs)\n", rep.EC.Verdict, rep.EC.Strategy, rep.EC.Runtime.Seconds())
	}
	if rep.Counterexample != nil {
		ce := rep.Counterexample
		fmt.Printf("counterexample: input |%0*b> (fidelity %.6f)\n", n, ce.Input, ce.Fidelity)
		if verbose && ce.StateG != "" {
			fmt.Printf("  G  output: %s\n", ce.StateG)
			fmt.Printf("  G' output: %s\n", ce.StateGp)
		}
	}
	if verbose {
		fmt.Printf("total: %.3fs\n", rep.TotalTime.Seconds())
	}
	if stats {
		printDDStats("simulation", rep.DD)
		if rep.EC != nil {
			printDDStats("complete check", rep.EC.DD)
		}
		printMemStats(rep.Mem)
	}
}

// printJSON emits a machine-readable report (for CI integration).
func printJSON(n int, rep core.Report, stats bool) {
	type counterexample struct {
		Input    uint64  `json:"input"`
		Fidelity float64 `json:"fidelity"`
		StateG   string  `json:"state_g,omitempty"`
		StateGp  string  `json:"state_gp,omitempty"`
	}
	out := struct {
		Verdict        string          `json:"verdict"`
		DecidedBy      string          `json:"decided_by,omitempty"`
		Qubits         int             `json:"qubits"`
		NumSims        int             `json:"num_sims"`
		SimSeconds     float64         `json:"sim_seconds"`
		MinFidelity    float64         `json:"min_fidelity"`
		AvgFidelity    float64         `json:"avg_fidelity"`
		ECVerdict      string          `json:"ec_verdict,omitempty"`
		ECSeconds      float64         `json:"ec_seconds,omitempty"`
		Rewriting      string          `json:"rewriting_verdict,omitempty"`
		ZX             string          `json:"zx_verdict,omitempty"`
		Counterexample *counterexample `json:"counterexample,omitempty"`
		Cancelled      bool            `json:"cancelled,omitempty"`
		CancelCause    string          `json:"cancel_cause,omitempty"`
		TotalSeconds   float64         `json:"total_seconds"`
		SimDD          *ddReport       `json:"sim_dd,omitempty"`
		ECDD           *ddReport       `json:"ec_dd,omitempty"`
		Mem            *memReport      `json:"mem,omitempty"`
	}{
		Verdict:      rep.Verdict.String(),
		DecidedBy:    rep.DecidedBy,
		Qubits:       n,
		NumSims:      rep.NumSims,
		SimSeconds:   rep.SimTime.Seconds(),
		MinFidelity:  rep.MinFidelity,
		AvgFidelity:  rep.AvgFidelity,
		TotalSeconds: rep.TotalTime.Seconds(),
	}
	if rep.EC != nil {
		out.ECVerdict = rep.EC.Verdict.String()
		out.ECSeconds = rep.EC.Runtime.Seconds()
	}
	if rep.Rewriting != nil {
		out.Rewriting = rep.Rewriting.Verdict.String()
	}
	if rep.ZX != nil {
		out.ZX = rep.ZX.Verdict.String()
	}
	if ce := rep.Counterexample; ce != nil {
		out.Counterexample = &counterexample{
			Input: ce.Input, Fidelity: ce.Fidelity, StateG: ce.StateG, StateGp: ce.StateGp,
		}
	}
	out.Cancelled = rep.Cancelled
	if rep.CancelCause != nil {
		out.CancelCause = rep.CancelCause.Error()
	}
	if stats {
		out.SimDD = newDDReport(rep.DD)
		if rep.EC != nil {
			out.ECDD = newDDReport(rep.EC.DD)
		}
		out.Mem = newMemReport(rep.Mem)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "qcec:", err)
	}
}
