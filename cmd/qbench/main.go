// Command qbench measures the simulation hot path on the seed benchmark
// circuits: every circuit pair is simulated in three configurations — the
// direct apply kernel (the default path), the legacy GateDD+MulMV path with
// the gate-DD cache, and the legacy path with the cache disabled — and the
// resulting gate-application rates, hit rates, and verdict parity are
// written to a JSON artifact (BENCH_sim.json) so the speedups are recorded,
// not asserted.
//
// Usage:
//
//	qbench [-out BENCH_sim.json] [-circuits circuits] [-r 32] [-reps 7]
//
// Two variants are measured per circuit: an equivalent pair (the circuit
// against its clone — the paper's hot loop, r stimuli of agreeing
// simulations) and an error-injected pair (internal/errinject), which the
// simulation stage refutes almost immediately.  The headline geometric-mean
// speedups are computed over the equivalent pairs, where the repeated gate
// structure the caches memoize actually recurs; the error-injected pairs
// exist to demonstrate verdict parity, and their speedups are reported but
// not aggregated.
//
// Each equivalent pair is additionally swept over stimulus worker counts
// (1, 2, 4, NumCPU) on the kernel path — the same check driven through one
// shared prepared program set — and the resulting scaling curve
// (gate-apps/s, speedup, parallel efficiency per worker count) is recorded
// in the artifact.  -min-scaling-eff turns the 4-worker efficiency into a
// gate on machines with at least 4 CPUs.
//
// A separate Clifford sweep sizes the stabilizer fast path against the
// complete DD checker: random Clifford pairs at 8–24 qubits are checked by
// both ec.StrategyStabilizer and the DD proportional scheme, per-check times
// and verdict parity land in the artifact's clifford section, and
// -min-stab-speedup turns the geomean tableau speedup at >=20 qubits into a
// gate.
//
// A compilation-flow sweep races the four alternating application schemes
// (sequential, proportional, lookahead, gate-cost) over deeply-compiled
// pairs (bench.CompiledSuite: decompose+mapping with native cost profiles);
// peak DD nodes, multiplication counts, and verdict parity land in the
// artifact's gatecost section, and -min-gatecost-ratio turns the geomean
// proportional-over-gate-cost peak-node ratio on equivalent pairs into a
// gate.  Peak node counts are deterministic, so the sweep runs once.
//
// With -compare, a previously committed artifact is read before the run and
// the per-pair and geomean gate-application-rate deltas against it are
// printed (the benchcmp workflow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/errinject"
	"qcec/internal/harness"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

func loadCircuit(path string) (*circuit.Circuit, error) {
	switch {
	case strings.HasSuffix(path, ".real"):
		f, err := revlib.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return f.Circuit, nil
	case strings.HasSuffix(path, ".qasm"):
		prog, err := qasm.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	default:
		return nil, fmt.Errorf("unsupported circuit format %q", path)
	}
}

// measurement is one timed configuration (kernel, cached, or uncached).
type measurement struct {
	Seconds        float64 `json:"seconds"`
	NumSims        int     `json:"num_sims"`
	GateApps       int     `json:"gate_apps"`
	GateAppsPerSec float64 `json:"gate_apps_per_sec"`
	GateHitRate    float64 `json:"gate_hit_rate"`
	ApplyHitRate   float64 `json:"apply_hit_rate,omitempty"`
	Verdict        string  `json:"verdict"`
	Counterexample *uint64 `json:"counterexample,omitempty"`
}

// result is one benchmark variant: a named pair measured in all three
// configurations.  Speedup is the historic gate-cache ratio (cached over
// uncached, both on the legacy path); KernelSpeedup is the apply kernel over
// the best legacy configuration (cached).
type result struct {
	Name          string      `json:"name"`
	Qubits        int         `json:"qubits"`
	Gates         int         `json:"gates"`
	Equivalent    bool        `json:"equivalent_pair"`
	Injection     string      `json:"injection,omitempty"`
	Kernel        measurement `json:"kernel"`
	Cached        measurement `json:"cached"`
	Uncached      measurement `json:"uncached"`
	Speedup       float64     `json:"speedup"`
	KernelSpeedup float64     `json:"kernel_speedup"`
	VerdictsMatch bool        `json:"verdicts_match"`
}

// scalingPoint is one multi-worker measurement of the simulation stage: the
// same check driven by Workers parallel stimulus workers over one shared
// prepared program set, timed by stage wall clock.  Speedup is relative to
// the curve's 1-worker point; Efficiency divides the speedup by the worker
// count the hardware can actually run concurrently, min(Workers, NumCPU),
// so oversubscribed points on small machines are not judged as scaling
// failures.
type scalingPoint struct {
	Workers        int     `json:"workers"`
	Seconds        float64 `json:"seconds"`
	GateApps       int     `json:"gate_apps"`
	GateAppsPerSec float64 `json:"gate_apps_per_sec"`
	Verdict        string  `json:"verdict"`
	Speedup        float64 `json:"speedup"`
	Efficiency     float64 `json:"efficiency"`
}

// scalingCurve is one pair's worker-count sweep.
type scalingCurve struct {
	Name          string         `json:"name"`
	Points        []scalingPoint `json:"points"`
	VerdictsMatch bool           `json:"verdicts_match"`
}

// cliffordMeasurement is one strategy's timing on a Clifford pair: total
// batch time over Checks runs of ec.Check, and the (deterministic) verdict.
type cliffordMeasurement struct {
	Seconds         float64 `json:"seconds"`
	Checks          int     `json:"checks"`
	SecondsPerCheck float64 `json:"seconds_per_check"`
	Verdict         string  `json:"verdict"`
}

// cliffordPoint is one pair of the stabilizer-vs-DD sweep.  Speedup is the
// DD per-check time over the tableau per-check time; VerdictsMatch compares
// at Equivalent() granularity (the sweep runs up-to-phase, where the DD path
// may still report strict equivalence when weights match exactly).
type cliffordPoint struct {
	Name          string              `json:"name"`
	Qubits        int                 `json:"qubits"`
	Gates         int                 `json:"gates"`
	Equivalent    bool                `json:"equivalent_pair"`
	Injection     string              `json:"injection,omitempty"`
	Stab          cliffordMeasurement `json:"stab"`
	DD            cliffordMeasurement `json:"dd"`
	Speedup       float64             `json:"speedup"`
	VerdictsMatch bool                `json:"verdicts_match"`
}

// gateCostScheme is one application scheme's deterministic measurement on a
// compiled pair.
type gateCostScheme struct {
	Verdict   string  `json:"verdict"`
	PeakNodes int     `json:"peak_nodes"`
	Muls      int     `json:"muls"`
	Seconds   float64 `json:"seconds"`
}

// gateCostPoint is one deeply-compiled pair of the application-scheme sweep.
// NodeRatio is proportional peak nodes over gate-cost peak nodes.
type gateCostPoint struct {
	Name          string                    `json:"name"`
	Qubits        int                       `json:"qubits"`
	GatesG        int                       `json:"gates_g"`
	GatesGp       int                       `json:"gates_gp"`
	Equivalent    bool                      `json:"equivalent_pair"`
	Injection     string                    `json:"injection,omitempty"`
	Schemes       map[string]gateCostScheme `json:"schemes"`
	NodeRatio     float64                   `json:"node_ratio"`
	VerdictsMatch bool                      `json:"verdicts_match"`
}

type summary struct {
	GeomeanSpeedupEquiv       float64 `json:"geomean_speedup_equiv"`
	MinSpeedupEquiv           float64 `json:"min_speedup_equiv"`
	GeomeanKernelSpeedupEquiv float64 `json:"geomean_kernel_speedup_equiv"`
	MinKernelSpeedupEquiv     float64 `json:"min_kernel_speedup_equiv"`
	AllVerdictsMatch          bool    `json:"all_verdicts_match"`
	// Scaling aggregates over the equivalent pairs' 4-worker points.
	GeomeanScalingSpeedup4 float64 `json:"geomean_scaling_speedup_4w,omitempty"`
	MinScalingEfficiency4  float64 `json:"min_scaling_efficiency_4w,omitempty"`
	// Clifford-sweep aggregates: the headline geomean is over equivalent
	// pairs at >= 20 qubits, where polynomial vs exponential structure shows.
	GeomeanStabSpeedup20Q float64 `json:"geomean_stab_speedup_20q,omitempty"`
	MinStabSpeedup20Q     float64 `json:"min_stab_speedup_20q,omitempty"`
	// Gate-cost aggregates over the compiled sweep's equivalent pairs.
	GeomeanGateCostRatio float64 `json:"geomean_gatecost_ratio,omitempty"`
	MinGateCostRatio     float64 `json:"min_gatecost_ratio,omitempty"`
}

type artifact struct {
	Generated string          `json:"generated"`
	R         int             `json:"r"`
	Seed      int64           `json:"seed"`
	Reps      int             `json:"reps"`
	NumCPU    int             `json:"num_cpu"`
	Results   []result        `json:"results"`
	Scaling   []scalingCurve  `json:"scaling,omitempty"`
	Clifford  []cliffordPoint `json:"clifford,omitempty"`
	GateCost  []gateCostPoint `json:"gatecost,omitempty"`
	Summary   summary         `json:"summary"`
}

// simConfig selects one of the three measured configurations.
type simConfig struct {
	disableCache  bool
	disableKernel bool
}

// Batching bounds: each timed repetition accumulates checks until every
// configuration's summed simulation time reaches minBatchTime (or
// maxBatchIters runs, whichever comes first).  The seed circuits simulate in
// well under a millisecond, far below scheduler-noise resolution; only
// aggregated batches produce rates that are stable from run to run.
const (
	minBatchTime  = 50 * time.Millisecond
	maxBatchIters = 1000
)

// measureConfigs is the fixed measurement order: the kernel path, the legacy
// path with the gate-DD cache (its default), and the legacy path without it.
var measureConfigs = [3]simConfig{
	{},
	{disableKernel: true},
	{disableKernel: true, disableCache: true},
}

// measureAll runs the simulation stage in all three configurations,
// interleaved check by check so machine noise (frequency scaling, scheduler
// pressure) lands on every configuration equally rather than biasing
// whichever happened to run during a slow stretch.  It runs reps timed
// repetitions after one untimed warm-up and keeps each configuration's
// fastest repetition (noise only ever slows a run down).  Gate applications
// count both circuits' gates once per completed simulation; the reported
// rate is the batch aggregate.
func measureAll(g1, g2 *circuit.Circuit, r int, seed int64, reps int) [3]measurement {
	var best [3]measurement
	for rep := -1; rep < reps; rep++ {
		var batch [3]measurement
		for iter := 0; iter < maxBatchIters; iter++ {
			done := true
			for c, cfg := range measureConfigs {
				repRes := core.Check(g1, g2, core.Options{
					R:                  r,
					Seed:               seed,
					SkipEC:             true,
					DisableGateCache:   cfg.disableCache,
					DisableApplyKernel: cfg.disableKernel,
				})
				m := &batch[c]
				m.Seconds += repRes.SimTime.Seconds()
				m.NumSims = repRes.NumSims
				m.GateApps += repRes.NumSims * (g1.NumGates() + g2.NumGates())
				m.GateHitRate = repRes.DD.GateHitRate()
				m.ApplyHitRate = repRes.DD.ApplyHitRate()
				var ce *uint64
				if repRes.Counterexample != nil {
					v := repRes.Counterexample.Input
					ce = &v
				}
				if iter == 0 {
					m.Verdict = repRes.Verdict.String()
					m.Counterexample = ce
				} else if m.Verdict != repRes.Verdict.String() || !ceEqual(m.Counterexample, ce) {
					// Verdicts are deterministic for a fixed seed; fail
					// loudly if a run ever disagrees.
					fmt.Fprintf(os.Stderr, "qbench: verdict changed across runs (%s vs %s)\n",
						m.Verdict, repRes.Verdict)
					os.Exit(1)
				}
				if m.Seconds < minBatchTime.Seconds() {
					done = false
				}
			}
			if rep < 0 || done {
				break
			}
		}
		if rep < 0 {
			continue
		}
		for c := range batch {
			m := &batch[c]
			if m.Seconds > 0 {
				m.GateAppsPerSec = float64(m.GateApps) / m.Seconds
			}
			if rep == 0 || m.GateAppsPerSec > best[c].GateAppsPerSec {
				if rep > 0 && (best[c].Verdict != m.Verdict || !ceEqual(best[c].Counterexample, m.Counterexample)) {
					fmt.Fprintf(os.Stderr, "qbench: verdict changed across repetitions (%s vs %s)\n",
						best[c].Verdict, m.Verdict)
					os.Exit(1)
				}
				best[c] = *m
			}
		}
	}
	return best
}

// scalingWorkerCounts returns the deduplicated, sorted worker counts the
// scaling sweep measures: 1, 2, 4, and NumCPU.
func scalingWorkerCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(counts)
	out := counts[:0]
	for _, c := range counts {
		if len(out) == 0 || out[len(out)-1] != c {
			out = append(out, c)
		}
	}
	return out
}

// measureScaling sweeps the simulation stage over worker counts on the
// kernel path, batching and keeping the fastest repetition exactly like
// measureAll.  All points run the same stimuli from the same seed, so every
// verdict must agree; the curve records parity explicitly.
func measureScaling(g1, g2 *circuit.Circuit, r int, seed int64, reps int) []scalingPoint {
	workers := scalingWorkerCounts()
	points := make([]scalingPoint, len(workers))
	for wi, w := range workers {
		var best scalingPoint
		for rep := -1; rep < reps; rep++ {
			var batch scalingPoint
			batch.Workers = w
			for iter := 0; iter < maxBatchIters; iter++ {
				repRes := core.Check(g1, g2, core.Options{
					R:        r,
					Seed:     seed,
					SkipEC:   true,
					Parallel: w,
				})
				batch.Seconds += repRes.SimTime.Seconds()
				batch.GateApps += repRes.NumSims * (g1.NumGates() + g2.NumGates())
				if iter == 0 {
					batch.Verdict = repRes.Verdict.String()
				} else if batch.Verdict != repRes.Verdict.String() {
					fmt.Fprintf(os.Stderr, "qbench: scaling verdict changed across runs (%s vs %s)\n",
						batch.Verdict, repRes.Verdict)
					os.Exit(1)
				}
				if batch.Seconds >= minBatchTime.Seconds() {
					break
				}
			}
			if rep < 0 {
				continue // warm-up
			}
			if batch.Seconds > 0 {
				batch.GateAppsPerSec = float64(batch.GateApps) / batch.Seconds
			}
			if rep == 0 || batch.GateAppsPerSec > best.GateAppsPerSec {
				best = batch
			}
		}
		points[wi] = best
	}
	base := points[0].GateAppsPerSec
	for i := range points {
		if base > 0 {
			points[i].Speedup = points[i].GateAppsPerSec / base
		}
		hw := points[i].Workers
		if n := runtime.NumCPU(); hw > n {
			hw = n
		}
		if hw > 0 {
			points[i].Efficiency = points[i].Speedup / float64(hw)
		}
	}
	return points
}

// cliffordSizes are the register widths of the stabilizer-vs-DD sweep; the
// -min-stab-speedup gate reads only the >= 20-qubit equivalent pairs.
var cliffordSizes = []int{8, 12, 16, 20, 24}

// ddParityMaxQubits bounds the DD side of the sweep's error-injected pairs:
// a refuted Clifford miter drifts away from the identity, where DD sizes can
// grow exponentially, so verdict parity against DD is demonstrated on the
// small instances and the large ones time the tableau alone.
const ddParityMaxQubits = 12

// measureCliffordStrategy times ec.Check under one strategy on a fixed pair,
// batching checks until the summed ec runtime reaches minBatchTime (the
// tableau path finishes in microseconds) and keeping the fastest of reps
// timed repetitions after one warm-up.
func measureCliffordStrategy(g1, g2 *circuit.Circuit, strat ec.Strategy, reps int) (cliffordMeasurement, bool) {
	var best cliffordMeasurement
	equivalent := false
	for rep := -1; rep < reps; rep++ {
		var batch cliffordMeasurement
		for iter := 0; iter < maxBatchIters; iter++ {
			res := ec.Check(g1, g2, ec.Options{Strategy: strat, UpToGlobalPhase: true})
			if res.Verdict == ec.TimedOut {
				fmt.Fprintf(os.Stderr, "qbench: clifford sweep inconclusive under %v: %s\n", strat, res.Reason)
				os.Exit(1)
			}
			batch.Seconds += res.Runtime.Seconds()
			batch.Checks++
			if iter == 0 {
				batch.Verdict = res.Verdict.String()
				equivalent = res.Equivalent()
			} else if batch.Verdict != res.Verdict.String() {
				fmt.Fprintf(os.Stderr, "qbench: clifford verdict changed across runs (%s vs %s)\n",
					batch.Verdict, res.Verdict)
				os.Exit(1)
			}
			if batch.Seconds >= minBatchTime.Seconds() {
				break
			}
		}
		if rep < 0 {
			continue // warm-up
		}
		batch.SecondsPerCheck = batch.Seconds / float64(batch.Checks)
		if rep == 0 || batch.SecondsPerCheck < best.SecondsPerCheck {
			best = batch
		}
	}
	return best, equivalent
}

// measureClifford runs the stabilizer-vs-DD sweep: for each width, an
// equivalent pair (random Clifford circuit against its clone) under both
// strategies, plus a flipped-CNOT pair with DD parity up to
// ddParityMaxQubits.
func measureClifford(seed int64, reps int) []cliffordPoint {
	var points []cliffordPoint
	for _, n := range cliffordSizes {
		g := bench.RandomClifford(n, 12*n, seed)
		type variant struct {
			name      string
			gp        *circuit.Circuit
			injection string
		}
		variants := []variant{{name: fmt.Sprintf("clifford%d", n), gp: g.Clone()}}
		if n <= ddParityMaxQubits {
			if bad, inj, err := errinject.Inject(g, errinject.FlippedCNOT, seed); err == nil {
				variants = append(variants, variant{
					name: fmt.Sprintf("clifford%d+err", n), gp: bad, injection: inj.String(),
				})
			}
		}
		for _, v := range variants {
			stab, stabEq := measureCliffordStrategy(g, v.gp, ec.StrategyStabilizer, reps)
			dd, ddEq := measureCliffordStrategy(g, v.gp, ec.Proportional, reps)
			pt := cliffordPoint{
				Name:          v.name,
				Qubits:        n,
				Gates:         g.NumGates(),
				Equivalent:    v.injection == "",
				Injection:     v.injection,
				Stab:          stab,
				DD:            dd,
				VerdictsMatch: stabEq == ddEq,
			}
			if stab.SecondsPerCheck > 0 {
				pt.Speedup = dd.SecondsPerCheck / stab.SecondsPerCheck
			}
			points = append(points, pt)
			fmt.Printf("%-22s stab %10.1fus  dd %10.1fus  speedup %7.1fx  parity %v\n",
				v.name, 1e6*stab.SecondsPerCheck, 1e6*dd.SecondsPerCheck, pt.Speedup, pt.VerdictsMatch)
		}
	}
	return points
}

func ceEqual(a, b *uint64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// baselineRate extracts the comparison reference rate from a prior artifact's
// result: the kernel rate when the artifact has one, else the cached rate
// (artifacts written before the kernel existed).
func baselineRate(r result) float64 {
	if r.Kernel.GateAppsPerSec > 0 {
		return r.Kernel.GateAppsPerSec
	}
	return r.Cached.GateAppsPerSec
}

// compareBaseline prints per-pair and geomean kernel gate-application-rate
// deltas of the fresh artifact against a committed baseline.  Pairs present
// on only one side are reported and skipped from the geomean.
func compareBaseline(art artifact, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base artifact
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseRates := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseRates[r.Name] = baselineRate(r)
	}
	fmt.Printf("comparison against %s (generated %s):\n", path, base.Generated)
	logSum, logCount := 0.0, 0
	for _, r := range art.Results {
		old, ok := baseRates[r.Name]
		if !ok || old <= 0 {
			fmt.Printf("  %-22s %8.0f apps/s  (no baseline)\n", r.Name, r.Kernel.GateAppsPerSec)
			continue
		}
		ratio := r.Kernel.GateAppsPerSec / old
		fmt.Printf("  %-22s %8.0f apps/s  vs %8.0f  %+6.1f%%\n",
			r.Name, r.Kernel.GateAppsPerSec, old, 100*(ratio-1))
		if ratio > 0 {
			logSum += math.Log(ratio)
			logCount++
		}
	}
	if logCount == 0 {
		fmt.Println("  no comparable pairs")
		return nil
	}
	geo := math.Exp(logSum / float64(logCount))
	fmt.Printf("  geomean gate-apps/s delta: %+.1f%% (%d pairs)\n", 100*(geo-1), logCount)
	return nil
}

func main() {
	os.Exit(run())
}

// run is main's body, returning the exit code instead of calling os.Exit so
// the profiling defers always flush.
func run() int {
	var (
		out        = flag.String("out", "BENCH_sim.json", "output artifact path")
		circDir    = flag.String("circuits", "circuits", "directory with seed benchmark circuits (.qasm/.real)")
		r          = flag.Int("r", core.DefaultR, "random simulations per pair")
		seed       = flag.Int64("seed", 1, "stimulus and error-injection seed")
		reps       = flag.Int("reps", 7, "timed repetitions per configuration (fastest kept)")
		minSpeed   = flag.Float64("min-speedup", 0, "fail unless the equiv-pair geomean gate-cache speedup reaches this (0 = record only)")
		minKernel  = flag.Float64("min-kernel-speedup", 0, "fail unless the equiv-pair geomean kernel speedup over the cached legacy path reaches this (0 = record only)")
		minScalEff = flag.Float64("min-scaling-eff", 0, "fail unless every equiv pair's 4-worker parallel efficiency reaches this; only enforced when NumCPU >= 4 (0 = record only)")
		scalReps   = flag.Int("scaling-reps", 3, "timed repetitions per scaling point (fastest kept); 0 disables the scaling sweep")
		minStab    = flag.Float64("min-stab-speedup", 0, "fail unless the >=20-qubit equiv-pair geomean stabilizer-over-DD speedup reaches this (0 = record only)")
		minGCRatio = flag.Float64("min-gatecost-ratio", 0, "fail unless the equiv-pair geomean proportional-over-gate-cost peak-node ratio on deeply-compiled pairs reaches this (0 = record only)")
		gcSweep    = flag.Bool("gatecost-sweep", true, "run the compilation-flow application-scheme sweep (deterministic, single run)")
		cliffReps  = flag.Int("clifford-reps", 3, "timed repetitions per clifford point (fastest kept); 0 disables the clifford sweep")
		comparePth = flag.String("compare", "", "read a committed artifact and print per-pair and geomean gate-apps/s deltas against it")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Every Check builds a fresh DD package (unique tables, compute tables,
	// weight table), so the measurement loop allocates heavily and the default
	// GC target fires collections mid-batch, at different moments for each
	// configuration.  A higher target keeps collections out of most batches;
	// it applies to all three configurations equally.
	debug.SetGCPercent(400)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "qbench:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qbench:", err)
			}
		}()
	}

	entries, err := os.ReadDir(*circDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		return 1
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".qasm") || strings.HasSuffix(e.Name(), ".real") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Fprintf(os.Stderr, "qbench: no circuits in %s\n", *circDir)
		return 1
	}

	art := artifact{
		Generated: time.Now().UTC().Format(time.RFC3339),
		R:         *r,
		Seed:      *seed,
		Reps:      *reps,
		NumCPU:    runtime.NumCPU(),
	}
	cacheLogSum, kernelLogSum, logCount := 0.0, 0.0, 0
	minEquiv, minKernelEquiv := math.Inf(1), math.Inf(1)
	scalLogSum, scalCount := 0.0, 0
	minScalEff4 := math.Inf(1)
	allMatch := true
	for _, name := range files {
		g, err := loadCircuit(filepath.Join(*circDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "qbench:", err)
			return 1
		}
		type variant struct {
			name      string
			gp        *circuit.Circuit
			equiv     bool
			injection string
		}
		variants := []variant{{name: name, gp: g.Clone(), equiv: true}}
		if bad, inj, err := errinject.InjectAny(g, *seed); err == nil {
			variants = append(variants, variant{
				name: name + "+err", gp: bad, injection: inj.String(),
			})
		}
		for _, v := range variants {
			ms := measureAll(g, v.gp, *r, *seed, *reps)
			res := result{
				Name:       v.name,
				Qubits:     g.N,
				Gates:      g.NumGates(),
				Equivalent: v.equiv,
				Injection:  v.injection,
				Kernel:     ms[0],
				Cached:     ms[1],
				Uncached:   ms[2],
			}
			res.VerdictsMatch = res.Kernel.Verdict == res.Cached.Verdict &&
				res.Cached.Verdict == res.Uncached.Verdict &&
				ceEqual(res.Kernel.Counterexample, res.Cached.Counterexample) &&
				ceEqual(res.Cached.Counterexample, res.Uncached.Counterexample)
			if res.Uncached.GateAppsPerSec > 0 {
				res.Speedup = res.Cached.GateAppsPerSec / res.Uncached.GateAppsPerSec
			}
			if res.Cached.GateAppsPerSec > 0 {
				res.KernelSpeedup = res.Kernel.GateAppsPerSec / res.Cached.GateAppsPerSec
			}
			if !res.VerdictsMatch {
				allMatch = false
			}
			if v.equiv && res.Speedup > 0 && res.KernelSpeedup > 0 {
				cacheLogSum += math.Log(res.Speedup)
				kernelLogSum += math.Log(res.KernelSpeedup)
				logCount++
				minEquiv = math.Min(minEquiv, res.Speedup)
				minKernelEquiv = math.Min(minKernelEquiv, res.KernelSpeedup)
			}
			art.Results = append(art.Results, res)
			fmt.Printf("%-22s %8.0f apps/s kernel  %8.0f cached  %8.0f uncached  kernel %5.2fx  cache %5.2fx  parity %v\n",
				v.name, res.Kernel.GateAppsPerSec, res.Cached.GateAppsPerSec, res.Uncached.GateAppsPerSec,
				res.KernelSpeedup, res.Speedup, res.VerdictsMatch)

			// Scaling sweep: equivalent pairs only (error-injected pairs stop
			// at the first failing stimulus, so worker counts change nothing).
			if !v.equiv || *scalReps <= 0 {
				continue
			}
			points := measureScaling(g, v.gp, *r, *seed, *scalReps)
			curve := scalingCurve{Name: v.name, Points: points, VerdictsMatch: true}
			for _, pt := range points {
				// Sequential (1 worker) == parallel == the kernel measurement
				// above: the full three-way parity the artifact asserts.
				if pt.Verdict != res.Kernel.Verdict {
					curve.VerdictsMatch = false
					allMatch = false
				}
				if pt.Workers == 4 {
					if pt.Speedup > 0 {
						scalLogSum += math.Log(pt.Speedup)
						scalCount++
					}
					minScalEff4 = math.Min(minScalEff4, pt.Efficiency)
				}
			}
			art.Scaling = append(art.Scaling, curve)
			var cells []string
			for _, pt := range points {
				cells = append(cells, fmt.Sprintf("%dw %.0f (%.2fx)", pt.Workers, pt.GateAppsPerSec, pt.Speedup))
			}
			fmt.Printf("%-22s scaling: %s\n", v.name, strings.Join(cells, "  "))
		}
	}
	if scalCount > 0 {
		art.Summary.GeomeanScalingSpeedup4 = math.Exp(scalLogSum / float64(scalCount))
		art.Summary.MinScalingEfficiency4 = minScalEff4
	}
	if *cliffReps > 0 {
		art.Clifford = measureClifford(*seed, *cliffReps)
		stabLogSum, stabCount := 0.0, 0
		minStab20 := math.Inf(1)
		for _, pt := range art.Clifford {
			if !pt.VerdictsMatch {
				allMatch = false
			}
			if pt.Equivalent && pt.Qubits >= 20 && pt.Speedup > 0 {
				stabLogSum += math.Log(pt.Speedup)
				stabCount++
				minStab20 = math.Min(minStab20, pt.Speedup)
			}
		}
		if stabCount > 0 {
			art.Summary.GeomeanStabSpeedup20Q = math.Exp(stabLogSum / float64(stabCount))
			art.Summary.MinStabSpeedup20Q = minStab20
		}
	}
	if *gcSweep {
		rows, err := harness.RunGateCostComparison(*seed, harness.RunOptions{ECTimeout: time.Minute})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qbench:", err)
			return 1
		}
		minGC := math.Inf(1)
		gcLogSum, gcCount := 0.0, 0
		for _, row := range rows {
			pt := gateCostPoint{
				Name:          row.Name,
				Qubits:        row.N,
				GatesG:        row.SizeG,
				GatesGp:       row.SizeGp,
				Equivalent:    row.Equivalent,
				Injection:     row.Injection,
				Schemes:       make(map[string]gateCostScheme, len(row.Cells)),
				NodeRatio:     row.NodeRatio,
				VerdictsMatch: row.VerdictParity,
			}
			for k, cell := range row.Cells {
				pt.Schemes[harness.GateCostSchemes[k].String()] = gateCostScheme{
					Verdict:   cell.Verdict.String(),
					PeakNodes: cell.PeakNodes,
					Muls:      cell.Muls,
					Seconds:   cell.Runtime.Seconds(),
				}
			}
			if !row.VerdictParity {
				allMatch = false
			}
			if row.Equivalent && row.NodeRatio > 0 {
				gcLogSum += math.Log(row.NodeRatio)
				gcCount++
				minGC = math.Min(minGC, row.NodeRatio)
			}
			art.GateCost = append(art.GateCost, pt)
			fmt.Printf("%-22s gate-cost peak %7d  proportional peak %7d  ratio %5.1fx  parity %v\n",
				row.Name, pt.Schemes["gate-cost"].PeakNodes, pt.Schemes["proportional"].PeakNodes,
				row.NodeRatio, row.VerdictParity)
		}
		if gcCount > 0 {
			art.Summary.GeomeanGateCostRatio = math.Exp(gcLogSum / float64(gcCount))
			art.Summary.MinGateCostRatio = minGC
		}
	}
	if logCount > 0 {
		art.Summary.GeomeanSpeedupEquiv = math.Exp(cacheLogSum / float64(logCount))
		art.Summary.MinSpeedupEquiv = minEquiv
		art.Summary.GeomeanKernelSpeedupEquiv = math.Exp(kernelLogSum / float64(logCount))
		art.Summary.MinKernelSpeedupEquiv = minKernelEquiv
	}
	art.Summary.AllVerdictsMatch = allMatch

	// Compare against the committed baseline before overwriting it: -out and
	// -compare may name the same file.
	if *comparePth != "" {
		if err := compareBaseline(art, *comparePth); err != nil {
			fmt.Fprintln(os.Stderr, "qbench:", err)
			return 1
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		return 1
	}
	fmt.Printf("geomean speedups (equivalent pairs): kernel %.2fx over cached legacy, cache %.2fx over uncached, verdict parity: %v -> %s\n",
		art.Summary.GeomeanKernelSpeedupEquiv, art.Summary.GeomeanSpeedupEquiv, allMatch, *out)
	if !allMatch {
		fmt.Fprintln(os.Stderr, "qbench: verdicts diverged across configurations")
		return 1
	}
	if *minSpeed > 0 && art.Summary.GeomeanSpeedupEquiv < *minSpeed {
		fmt.Fprintf(os.Stderr, "qbench: geomean cache speedup %.2fx below required %.2fx\n",
			art.Summary.GeomeanSpeedupEquiv, *minSpeed)
		return 1
	}
	if *minKernel > 0 && art.Summary.GeomeanKernelSpeedupEquiv < *minKernel {
		fmt.Fprintf(os.Stderr, "qbench: geomean kernel speedup %.2fx below required %.2fx\n",
			art.Summary.GeomeanKernelSpeedupEquiv, *minKernel)
		return 1
	}
	if *minStab > 0 && len(art.Clifford) > 0 {
		if art.Summary.GeomeanStabSpeedup20Q < *minStab {
			fmt.Fprintf(os.Stderr, "qbench: >=20-qubit geomean stabilizer speedup %.2fx below required %.2fx\n",
				art.Summary.GeomeanStabSpeedup20Q, *minStab)
			return 1
		}
	}
	if *minGCRatio > 0 && len(art.GateCost) > 0 {
		if art.Summary.GeomeanGateCostRatio < *minGCRatio {
			fmt.Fprintf(os.Stderr, "qbench: geomean gate-cost peak-node ratio %.2fx below required %.2fx\n",
				art.Summary.GeomeanGateCostRatio, *minGCRatio)
			return 1
		}
	}
	if *minScalEff > 0 && len(art.Scaling) > 0 {
		// The efficiency floor only means something when the hardware can run
		// 4 workers concurrently; on smaller machines the curve is recorded
		// for the artifact but cannot demonstrate scaling.
		if runtime.NumCPU() < 4 {
			fmt.Printf("qbench: scaling-efficiency floor %.2f not enforced on %d CPU(s); curve recorded only\n",
				*minScalEff, runtime.NumCPU())
		} else if art.Summary.MinScalingEfficiency4 < *minScalEff {
			fmt.Fprintf(os.Stderr, "qbench: 4-worker parallel efficiency %.2f below required %.2f\n",
				art.Summary.MinScalingEfficiency4, *minScalEff)
			return 1
		}
	}
	return 0
}
