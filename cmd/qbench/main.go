// Command qbench measures the gate-DD cache on the seed benchmark circuits:
// every circuit pair is simulated with the cache enabled and disabled, and
// the resulting gate-application rates, hit rates, and verdict parity are
// written to a JSON artifact (BENCH_sim.json) so the speedup is recorded,
// not asserted.
//
// Usage:
//
//	qbench [-out BENCH_sim.json] [-circuits circuits] [-r 10] [-reps 3]
//
// Two variants are measured per circuit: an equivalent pair (the circuit
// against its clone — the paper's hot loop, r stimuli of agreeing
// simulations) and an error-injected pair (internal/errinject), which the
// simulation stage refutes almost immediately.  The headline geometric-mean
// speedup is computed over the equivalent pairs, where the repeated gate
// structure the cache memoizes actually recurs; the error-injected pairs
// exist to demonstrate verdict parity, and their speedups are reported but
// not aggregated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/errinject"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

func loadCircuit(path string) (*circuit.Circuit, error) {
	switch {
	case strings.HasSuffix(path, ".real"):
		f, err := revlib.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return f.Circuit, nil
	case strings.HasSuffix(path, ".qasm"):
		prog, err := qasm.ParseFile(path)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	default:
		return nil, fmt.Errorf("unsupported circuit format %q", path)
	}
}

// measurement is one timed configuration (cached or uncached).
type measurement struct {
	Seconds        float64 `json:"seconds"`
	NumSims        int     `json:"num_sims"`
	GateApps       int     `json:"gate_apps"`
	GateAppsPerSec float64 `json:"gate_apps_per_sec"`
	GateHitRate    float64 `json:"gate_hit_rate"`
	Verdict        string  `json:"verdict"`
	Counterexample *uint64 `json:"counterexample,omitempty"`
}

// result is one benchmark variant: a named pair measured both ways.
type result struct {
	Name          string      `json:"name"`
	Qubits        int         `json:"qubits"`
	Gates         int         `json:"gates"`
	Equivalent    bool        `json:"equivalent_pair"`
	Injection     string      `json:"injection,omitempty"`
	Cached        measurement `json:"cached"`
	Uncached      measurement `json:"uncached"`
	Speedup       float64     `json:"speedup"`
	VerdictsMatch bool        `json:"verdicts_match"`
}

type summary struct {
	GeomeanSpeedupEquiv float64 `json:"geomean_speedup_equiv"`
	MinSpeedupEquiv     float64 `json:"min_speedup_equiv"`
	AllVerdictsMatch    bool    `json:"all_verdicts_match"`
}

type artifact struct {
	Generated string   `json:"generated"`
	R         int      `json:"r"`
	Seed      int64    `json:"seed"`
	Reps      int      `json:"reps"`
	Results   []result `json:"results"`
	Summary   summary  `json:"summary"`
}

// measure runs the simulation stage reps times in the given cache
// configuration and keeps the fastest repetition (wall-clock noise only ever
// slows a run down).  Gate applications count both circuits' gates once per
// completed simulation.
func measure(g1, g2 *circuit.Circuit, r int, seed int64, reps int, disableCache bool) measurement {
	var best measurement
	for rep := 0; rep < reps; rep++ {
		repRes := core.Check(g1, g2, core.Options{
			R:                r,
			Seed:             seed,
			SkipEC:           true,
			DisableGateCache: disableCache,
		})
		apps := repRes.NumSims * (g1.NumGates() + g2.NumGates())
		m := measurement{
			Seconds:     repRes.SimTime.Seconds(),
			NumSims:     repRes.NumSims,
			GateApps:    apps,
			GateHitRate: repRes.DD.GateHitRate(),
			Verdict:     repRes.Verdict.String(),
		}
		if repRes.Counterexample != nil {
			ce := repRes.Counterexample.Input
			m.Counterexample = &ce
		}
		if m.Seconds > 0 {
			m.GateAppsPerSec = float64(apps) / m.Seconds
		}
		if rep == 0 || m.Seconds < best.Seconds {
			verdict, ce := best.Verdict, best.Counterexample
			best = m
			// Verdicts are deterministic across repetitions; keep the first
			// and fail loudly if a repetition ever disagrees.
			if rep > 0 && (verdict != m.Verdict || !ceEqual(ce, m.Counterexample)) {
				fmt.Fprintf(os.Stderr, "qbench: verdict changed across repetitions (%s vs %s)\n", verdict, m.Verdict)
				os.Exit(1)
			}
		}
	}
	return best
}

func ceEqual(a, b *uint64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func main() {
	var (
		out      = flag.String("out", "BENCH_sim.json", "output artifact path")
		circDir  = flag.String("circuits", "circuits", "directory with seed benchmark circuits (.qasm/.real)")
		r        = flag.Int("r", core.DefaultR, "random simulations per pair")
		seed     = flag.Int64("seed", 1, "stimulus and error-injection seed")
		reps     = flag.Int("reps", 3, "timed repetitions per configuration (fastest kept)")
		minSpeed = flag.Float64("min-speedup", 0, "fail unless the equiv-pair geomean speedup reaches this (0 = record only)")
	)
	flag.Parse()

	entries, err := os.ReadDir(*circDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		os.Exit(1)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".qasm") || strings.HasSuffix(e.Name(), ".real") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Fprintf(os.Stderr, "qbench: no circuits in %s\n", *circDir)
		os.Exit(1)
	}

	art := artifact{
		Generated: time.Now().UTC().Format(time.RFC3339),
		R:         *r,
		Seed:      *seed,
		Reps:      *reps,
	}
	logSum, logCount := 0.0, 0
	minEquiv := math.Inf(1)
	allMatch := true
	for _, name := range files {
		g, err := loadCircuit(filepath.Join(*circDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "qbench:", err)
			os.Exit(1)
		}
		type variant struct {
			name      string
			gp        *circuit.Circuit
			equiv     bool
			injection string
		}
		variants := []variant{{name: name, gp: g.Clone(), equiv: true}}
		if bad, inj, err := errinject.InjectAny(g, *seed); err == nil {
			variants = append(variants, variant{
				name: name + "+err", gp: bad, injection: inj.String(),
			})
		}
		for _, v := range variants {
			res := result{
				Name:       v.name,
				Qubits:     g.N,
				Gates:      g.NumGates(),
				Equivalent: v.equiv,
				Injection:  v.injection,
				Cached:     measure(g, v.gp, *r, *seed, *reps, false),
				Uncached:   measure(g, v.gp, *r, *seed, *reps, true),
			}
			res.VerdictsMatch = res.Cached.Verdict == res.Uncached.Verdict &&
				ceEqual(res.Cached.Counterexample, res.Uncached.Counterexample)
			if res.Uncached.GateAppsPerSec > 0 {
				res.Speedup = res.Cached.GateAppsPerSec / res.Uncached.GateAppsPerSec
			}
			if !res.VerdictsMatch {
				allMatch = false
			}
			if v.equiv && res.Speedup > 0 {
				logSum += math.Log(res.Speedup)
				logCount++
				minEquiv = math.Min(minEquiv, res.Speedup)
			}
			art.Results = append(art.Results, res)
			fmt.Printf("%-22s %8.0f apps/s cached  %8.0f apps/s uncached  %5.2fx  hit %5.1f%%  parity %v\n",
				v.name, res.Cached.GateAppsPerSec, res.Uncached.GateAppsPerSec,
				res.Speedup, 100*res.Cached.GateHitRate, res.VerdictsMatch)
		}
	}
	if logCount > 0 {
		art.Summary.GeomeanSpeedupEquiv = math.Exp(logSum / float64(logCount))
		art.Summary.MinSpeedupEquiv = minEquiv
	}
	art.Summary.AllVerdictsMatch = allMatch

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		os.Exit(1)
	}
	fmt.Printf("geomean speedup (equivalent pairs): %.2fx, verdict parity: %v -> %s\n",
		art.Summary.GeomeanSpeedupEquiv, allMatch, *out)
	if !allMatch {
		fmt.Fprintln(os.Stderr, "qbench: cached and uncached verdicts diverged")
		os.Exit(1)
	}
	if *minSpeed > 0 && art.Summary.GeomeanSpeedupEquiv < *minSpeed {
		fmt.Fprintf(os.Stderr, "qbench: geomean speedup %.2fx below required %.2fx\n",
			art.Summary.GeomeanSpeedupEquiv, *minSpeed)
		os.Exit(1)
	}
}
