// Command qcecd serves quantum-circuit equivalence checking over HTTP.
//
//	qcecd -addr :8787 -workers 4 -mem-limit 2048
//
// Endpoints (see internal/server):
//
//	POST /v1/check     synchronous check: {"g": "<qasm>", "gp": "<qasm>", "options": {...}}
//	POST /v1/batch     up to -max-batch-items pairs in one request, per-item results
//	POST /v1/jobs      asynchronous check, returns 202 + job id
//	GET  /v1/jobs/{id} job status / result
//	GET  /healthz      200 while serving, 503 once draining
//	GET  /metrics      Prometheus text exposition
//
// SIGTERM/SIGINT starts a graceful drain: admission stops (429/503 for new
// work), admitted jobs run to completion within -drain-timeout, stragglers
// are cancelled cleanly, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qcec/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8787", "listen address (host:port; port 0 picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the bound listen address to this file once serving (for test harnesses)")
		workers    = flag.Int("workers", 0, "concurrent checking workers (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 64, "admitted-but-not-started job bound; beyond it requests get 429")
		maxBody    = flag.Int64("max-body-bytes", 4<<20, "request-body size bound in bytes")
		maxQubits  = flag.Int("max-qubits", 0, "reject circuits with more qubits (0 = no bound)")
		maxGates   = flag.Int("max-gates", 0, "reject circuits with more gates (0 = no bound)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-check deadline when the request sets none")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "largest per-check deadline a request may ask for")
		memLimit   = flag.Int("mem-limit", 0, "per-job hard heap budget in MiB; the check is cancelled cleanly when exceeded (0 = none)")
		memSoft    = flag.Int("mem-soft-limit", 0, "per-job soft heap budget in MiB: force DD collections above it (0 = 80% of -mem-limit)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for running checks")
		retained   = flag.Int("jobs-retained", 256, "finished async jobs kept for GET /v1/jobs/{id}")
		batchItems = flag.Int("max-batch-items", 128, "largest POST /v1/batch item count")
		cacheSize  = flag.Int("cache-entries", 1024, "verdict memoization cache bound (-1 disables)")
		poolSize   = flag.Int("pool-packages", 0, "warm DD packages kept per (qubits, tolerance) bucket (0 = worker count, -1 disables)")
		journalDir = flag.String("journal-dir", "", "directory for the durable job journal; accepted async jobs survive a crash or restart (empty disables)")
		maxRetries = flag.Int("max-job-retries", 2, "degraded re-runs after a transient job failure such as a recovered panic or memory-limit trip (-1 disables)")
		retryWait  = flag.Duration("retry-backoff", 100*time.Millisecond, "base backoff before the first job retry; doubles per attempt with jitter")
		logLevel   = flag.String("log-level", "info", "structured-log threshold: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "structured-log encoding: text|json")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcecd: %v\n", err)
		return 2
	}

	memHardBytes := uint64(*memLimit) << 20
	memSoftBytes := uint64(*memSoft) << 20
	if memSoftBytes == 0 && memHardBytes > 0 {
		memSoftBytes = memHardBytes / 10 * 8
	}

	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		MaxBodyBytes:   *maxBody,
		MaxQubits:      *maxQubits,
		MaxGates:       *maxGates,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MemSoftLimit:   memSoftBytes,
		MemHardLimit:   memHardBytes,
		CompletedJobs:  *retained,
		MaxBatchItems:  *batchItems,
		CacheEntries:   *cacheSize,
		PoolPackages:   *poolSize,
		JournalDir:     *journalDir,
		MaxJobRetries:  *maxRetries,
		RetryBackoff:   *retryWait,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		return 1
	}

	// Listen before announcing, so the logged/filed address is bound and a
	// harness polling -addr-file can connect immediately.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	bound := ln.Addr().String()
	logger.Info("listening", "addr", bound, "journal_dir", *journalDir)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			logger.Error("write -addr-file failed", "path", *addrFile, "err", err)
			return 1
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "timeout", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("drain deadline hit, checks cancelled", "err", err)
		}
		// The pool is drained; now close the HTTP side (idle keep-alives).
		httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer httpCancel()
		_ = httpSrv.Shutdown(httpCtx)
		logger.Info("drained, bye")
		return 0
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		return 1
	}
}

// buildLogger maps the -log-level / -log-format flags to a slog.Logger on
// stderr (stdout stays free for anything a harness pipes around).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}
