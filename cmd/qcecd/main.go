// Command qcecd serves quantum-circuit equivalence checking over HTTP.
//
//	qcecd -addr :8787 -workers 4 -mem-limit 2048
//
// Endpoints (see internal/server):
//
//	POST /v1/check     synchronous check: {"g": "<qasm>", "gp": "<qasm>", "options": {...}}
//	POST /v1/batch     up to -max-batch-items pairs in one request, per-item results
//	POST /v1/jobs      asynchronous check, returns 202 + job id
//	GET  /v1/jobs/{id} job status / result
//	GET  /healthz      200 while serving, 503 once draining
//	GET  /metrics      Prometheus text exposition
//
// SIGTERM/SIGINT starts a graceful drain: admission stops (429/503 for new
// work), admitted jobs run to completion within -drain-timeout, stragglers
// are cancelled cleanly, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qcec/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8787", "listen address (host:port; port 0 picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the bound listen address to this file once serving (for test harnesses)")
		workers    = flag.Int("workers", 0, "concurrent checking workers (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 64, "admitted-but-not-started job bound; beyond it requests get 429")
		maxBody    = flag.Int64("max-body-bytes", 4<<20, "request-body size bound in bytes")
		maxQubits  = flag.Int("max-qubits", 0, "reject circuits with more qubits (0 = no bound)")
		maxGates   = flag.Int("max-gates", 0, "reject circuits with more gates (0 = no bound)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-check deadline when the request sets none")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "largest per-check deadline a request may ask for")
		memLimit   = flag.Int("mem-limit", 0, "per-job hard heap budget in MiB; the check is cancelled cleanly when exceeded (0 = none)")
		memSoft    = flag.Int("mem-soft-limit", 0, "per-job soft heap budget in MiB: force DD collections above it (0 = 80% of -mem-limit)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for running checks")
		retained   = flag.Int("jobs-retained", 256, "finished async jobs kept for GET /v1/jobs/{id}")
		batchItems = flag.Int("max-batch-items", 128, "largest POST /v1/batch item count")
		cacheSize  = flag.Int("cache-entries", 1024, "verdict memoization cache bound (-1 disables)")
		poolSize   = flag.Int("pool-packages", 0, "warm DD packages kept per (qubits, tolerance) bucket (0 = worker count, -1 disables)")
	)
	flag.Parse()

	memHardBytes := uint64(*memLimit) << 20
	memSoftBytes := uint64(*memSoft) << 20
	if memSoftBytes == 0 && memHardBytes > 0 {
		memSoftBytes = memHardBytes / 10 * 8
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		MaxBodyBytes:   *maxBody,
		MaxQubits:      *maxQubits,
		MaxGates:       *maxGates,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MemSoftLimit:   memSoftBytes,
		MemHardLimit:   memHardBytes,
		CompletedJobs:  *retained,
		MaxBatchItems:  *batchItems,
		CacheEntries:   *cacheSize,
		PoolPackages:   *poolSize,
	})

	// Listen before announcing, so the printed/filed address is bound and a
	// harness polling -addr-file can connect immediately.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcecd: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	fmt.Printf("qcecd: listening on http://%s\n", bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "qcecd: write -addr-file: %v\n", err)
			return 1
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		fmt.Printf("qcecd: %s, draining (up to %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "qcecd: drain deadline hit, checks cancelled: %v\n", err)
		}
		// The pool is drained; now close the HTTP side (idle keep-alives).
		httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer httpCancel()
		_ = httpSrv.Shutdown(httpCtx)
		fmt.Println("qcecd: drained, bye")
		return 0
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "qcecd: serve: %v\n", err)
		return 1
	}
}
