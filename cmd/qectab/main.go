// Command qectab regenerates the paper's experimental artifacts:
//
//	qectab -table 1a       Table Ia  (non-equivalent benchmarks)
//	qectab -table 1b       Table Ib  (equivalent benchmarks)
//	qectab -table flow     verdict distribution of the proposed flow (Fig. 3)
//	qectab -table theory   Sec. IV-A detection-probability experiment
//	qectab -table ablate   EC-strategy / simulation-count / stimuli ablations
//	qectab -table sat      SAT vs DD vs simulation on the reversible class
//	qectab -table prefilter  rewriting [16] vs ZX-calculus vs the flow
//	qectab -table gatecost compilation-flow verification: gate-cost vs
//	                       naive/proportional/lookahead on deeply-compiled pairs
//	qectab -fig 1          the Fig. 1/2 worked example (system matrices)
//	qectab -table all      everything above
//
// The -scale flag selects instance sizes: "small" finishes in seconds,
// "medium" in around a minute, "paper" approaches the paper's benchmark
// sizes and should be combined with a generous -ec-timeout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qcec/internal/ec"
	"qcec/internal/harness"
)

func main() {
	var (
		table     = flag.String("table", "", "experiment to run: 1a|1b|flow|theory|ablate|sat|prefilter|gatecost|all")
		fig       = flag.Int("fig", 0, "figure to reproduce (1 = the worked example)")
		scaleName = flag.String("scale", "small", "benchmark scale: small|medium|paper")
		r         = flag.Int("r", 10, "simulation runs per instance (paper: 10)")
		ecTimeout = flag.Duration("ec-timeout", 10*time.Second, "complete-check timeout per instance (paper: 1h)")
		nodeLimit = flag.Int("ec-node-limit", harness.DefaultECNodeLimit, "complete-check DD node budget (0 = none)")
		strategy  = flag.String("ec-strategy", "construction", "complete-check strategy (the paper's baseline constructs and compares both DDs)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		theoryN   = flag.Int("theory-n", 8, "register size for the theory experiment")
		csvDir    = flag.String("csv", "", "also write results as CSV files into this directory")
	)
	flag.Parse()

	if *table == "" && *fig == 0 {
		fmt.Fprintln(os.Stderr, "usage: qectab -table 1a|1b|flow|theory|ablate|all  or  qectab -fig 1")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var scale harness.Scale
	switch *scaleName {
	case "small":
		scale = harness.Small
	case "medium":
		scale = harness.Medium
	case "paper":
		scale = harness.Paper
	default:
		fmt.Fprintf(os.Stderr, "qectab: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	var strat ec.Strategy
	switch *strategy {
	case "construction":
		strat = ec.Construction
	case "sequential":
		strat = ec.Sequential
	case "proportional":
		strat = ec.Proportional
	case "lookahead":
		strat = ec.Lookahead
	case "gate-cost", "gatecost", "gate_cost":
		strat = ec.StrategyGateCost
	default:
		fmt.Fprintf(os.Stderr, "qectab: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	opts := harness.RunOptions{
		R:           *r,
		ECTimeout:   *ecTimeout,
		ECNodeLimit: *nodeLimit,
		ECStrategy:  strat,
		Seed:        *seed,
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "qectab:", err)
		os.Exit(1)
	}

	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			die(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			die(err)
		}
	}
	run1a := func() {
		suite, err := harness.BuildNonEquivalentSuite(scale, *seed)
		if err != nil {
			die(err)
		}
		rows := harness.RunSuite(suite, opts)
		harness.PrintTable1a(os.Stdout, rows, opts)
		writeCSV("table_1a.csv", func(f *os.File) error { return harness.WriteRowsCSV(f, rows) })
		fmt.Println()
	}
	run1b := func() {
		suite, err := harness.BuildEquivalentSuite(scale)
		if err != nil {
			die(err)
		}
		rows := harness.RunSuite(suite, opts)
		harness.PrintTable1b(os.Stdout, rows, opts)
		writeCSV("table_1b.csv", func(f *os.File) error { return harness.WriteRowsCSV(f, rows) })
		fmt.Println()
	}
	runFlow := func() {
		eq, err := harness.BuildEquivalentSuite(scale)
		if err != nil {
			die(err)
		}
		neq, err := harness.BuildNonEquivalentSuite(scale, *seed)
		if err != nil {
			die(err)
		}
		s := harness.RunFlow(append(eq, neq...), opts)
		harness.PrintFlowSummary(os.Stdout, s)
		fmt.Println()
	}
	runTheory := func() {
		rows, err := harness.TheoryExperiment(*theoryN, *seed)
		if err != nil {
			die(err)
		}
		harness.PrintTheory(os.Stdout, *theoryN, rows)
		writeCSV("theory.csv", func(f *os.File) error { return harness.WriteTheoryCSV(f, rows) })
		fmt.Println()
	}
	runSAT := func() {
		suite, err := harness.BuildClassicalSuite(scale, *seed)
		if err != nil {
			die(err)
		}
		rows, err := harness.RunSATComparison(suite, opts)
		if err != nil {
			die(err)
		}
		harness.PrintSATComparison(os.Stdout, rows)
		fmt.Println()
	}
	runPrefilter := func() {
		instances, classes, err := harness.BuildPrefilterSuite(scale)
		if err != nil {
			die(err)
		}
		rows, err := harness.RunPrefilterComparison(instances, classes, opts)
		if err != nil {
			die(err)
		}
		harness.PrintPrefilterComparison(os.Stdout, rows)
		fmt.Println()
	}
	runGateCost := func() {
		rows, err := harness.RunGateCostComparison(*seed, opts)
		if err != nil {
			die(err)
		}
		harness.PrintGateCostComparison(os.Stdout, rows)
		writeCSV("gatecost.csv", func(f *os.File) error { return harness.WriteGateCostCSV(f, rows) })
		fmt.Println()
	}
	runAblate := func() {
		eq, err := harness.BuildEquivalentSuite(scale)
		if err != nil {
			die(err)
		}
		limit := len(eq)
		if limit > 4 {
			limit = 4
		}
		strategyRows := harness.RunStrategyAblation(eq[:limit], opts)
		harness.PrintStrategyAblation(os.Stdout, strategyRows)
		writeCSV("strategy_ablation.csv", func(f *os.File) error { return harness.WriteStrategyCSV(f, strategyRows) })
		fmt.Println()
		harness.PrintRAblation(os.Stdout, harness.RunRAblation(eq, []int{1, 2, 4, 8, 10, 16}, *seed))
		fmt.Println()
		harness.PrintStimuliAblation(os.Stdout, harness.RunStimuliAblation(10, *r, *seed))
		fmt.Println()
		routerRows, err := harness.RunRouterAblation(*seed)
		if err != nil {
			die(err)
		}
		harness.PrintRouterAblation(os.Stdout, routerRows)
		fmt.Println()
	}

	if *fig == 1 {
		if err := runFig1(os.Stdout); err != nil {
			die(err)
		}
	}
	switch *table {
	case "":
	case "1a":
		run1a()
	case "1b":
		run1b()
	case "flow":
		runFlow()
	case "theory":
		runTheory()
	case "ablate":
		runAblate()
	case "sat":
		runSAT()
	case "prefilter":
		runPrefilter()
	case "gatecost":
		runGateCost()
	case "all":
		run1a()
		run1b()
		runFlow()
		runTheory()
		runAblate()
		runSAT()
		runPrefilter()
		runGateCost()
		if err := runFig1(os.Stdout); err != nil {
			die(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "qectab: unknown table %q\n", *table)
		os.Exit(2)
	}
}
