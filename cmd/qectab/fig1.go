package main

import (
	"fmt"
	"io"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/dd"
	"qcec/internal/dense"
	"qcec/internal/errinject"
	"qcec/internal/mapping"
	"qcec/internal/sim"
)

// runFig1 reproduces the paper's worked example (Figs. 1 and 2): the
// 3-qubit H/CNOT circuit G, its SWAP-inserted mapped version G', the system
// matrix U they share (Fig. 1c), and the buggy variant G̃' whose misplaced
// final SWAP perturbs the whole matrix (Fig. 1d) — detectable by comparing
// any single column (Example 6).
func runFig1(w io.Writer) error {
	g := bench.PaperExample()
	fmt.Fprintf(w, "Fig. 1b — example circuit G (%d qubits, %d gates):\n%s\n", g.N, g.NumGates(), g)

	res, err := mapping.Map(g, mapping.Options{Arch: mapping.Linear(3), RestoreLayout: true})
	if err != nil {
		return err
	}
	gp := res.Circuit
	fmt.Fprintf(w, "Fig. 2 — G mapped to a linear architecture (%d gates, %d SWAPs inserted):\n%s\n",
		gp.NumGates(), res.SwapsInserted, gp)

	p := dd.NewDefault(3)
	u := sim.BuildUnitary(p, g)
	up := sim.BuildUnitary(p, gp)
	fmt.Fprintf(w, "Fig. 1c — system matrix U of G (and of G'):\n%v\n", dense.Matrix(p.Matrix(u)))
	if u != up {
		fmt.Fprintf(w, "WARNING: mapped circuit matrix differs from U!\n")
	} else {
		fmt.Fprintf(w, "(G and G' share the identical canonical DD: equivalence verified structurally.)\n\n")
	}

	// Plant the Example-6 bug: misapply the last inserted SWAP to the wrong
	// qubit pair (falling back to a misplaced CNOT if the router needed no
	// SWAP).
	buggy := gp.Clone()
	planted := ""
	for i := len(buggy.Gates) - 1; i >= 0; i-- {
		if g := buggy.Gates[i]; g.Kind == circuit.SWAP {
			old := g.Target2
			buggy.Gates[i].Target2 = 3 - g.Target - g.Target2 // the third qubit
			planted = fmt.Sprintf("last SWAP q%d,q%d misapplied to q%d,q%d",
				g.Target, old, g.Target, buggy.Gates[i].Target2)
			break
		}
	}
	if planted == "" {
		var inj errinject.Injection
		var err error
		buggy, inj, err = errinject.Inject(gp, errinject.MisplacedCNOT, 5)
		if err != nil {
			return err
		}
		planted = inj.String()
	}
	fmt.Fprintf(w, "Fig. 1d — bug planted (%s); system matrix of G̃':\n", planted)
	ub := sim.BuildUnitary(p, buggy)
	fmt.Fprintf(w, "%v\n", dense.Matrix(p.Matrix(ub)))

	rep := core.Check(g, buggy, core.Options{Seed: 5, SkipEC: true})
	if rep.Verdict == core.NotEquivalent {
		fmt.Fprintf(w, "Example 6: non-equivalence detected by %d simulation(s); counterexample |%03b> with fidelity %.4f\n\n",
			rep.NumSims, rep.Counterexample.Input, rep.Counterexample.Fidelity)
	} else {
		fmt.Fprintf(w, "Example 6: simulation did not expose the bug (verdict %s)\n\n", rep.Verdict)
	}
	return nil
}
