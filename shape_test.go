// Shape tests: the paper's headline claims, asserted end-to-end at small
// scale.  These are the checks a reviewer would run first; the benchmark
// families in bench_test.go measure the same artifacts quantitatively.
package qcec_test

import (
	"testing"
	"time"

	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/harness"
)

// Claim 1 (Table Ia): on non-equivalent pairs, simulation finds a
// counterexample on every instance, usually within a single run, while the
// complete construction baseline is orders of magnitude slower or times out.
func TestClaimSimulationDetectsAllErrors(t *testing.T) {
	_, neq := suitesT(t)
	oneSim := 0
	var simTotal, ecTotal time.Duration
	for _, inst := range neq {
		row := harness.RunInstance(inst, harness.RunOptions{
			R: 64, ECTimeout: 2 * time.Second, ECStrategy: ec.Construction, Seed: 7,
		})
		if !row.SimDetected {
			t.Errorf("%s: simulation missed the injected error (%s)", row.Name, row.Injection)
			continue
		}
		if row.ECTimedOut {
			// The paper's headline case: the complete routine gave up, the
			// simulation stage still produced a counterexample (checked by
			// SimDetected above) — and did so inside the same budget.
			if row.TSim > row.TEC {
				t.Errorf("%s: EC timed out yet simulation took longer (%v vs %v)",
					row.Name, row.TSim, row.TEC)
			}
		}
		if row.NumSims == 1 {
			oneSim++
		}
		simTotal += row.TSim
		ecTotal += row.TEC
	}
	if oneSim*3 < len(neq)*2 {
		t.Errorf("only %d/%d errors found within one simulation; the paper finds most in one",
			oneSim, len(neq))
	}
	// Aggregate: detecting every error by simulation must not cost more
	// than the complete baseline (in the paper it is orders of magnitude
	// cheaper; under parallel-test load we only assert the direction).
	if simTotal > ecTotal {
		t.Errorf("t_sim total %v exceeds t_ec total %v", simTotal, ecTotal)
	}
}

// Claim 2 (Table Ib): on equivalent pairs the simulation stage never
// produces a false counterexample.
func TestClaimNoFalseCounterexamples(t *testing.T) {
	eq, _ := suitesT(t)
	for _, inst := range eq {
		rep := core.Check(inst.G, inst.Gp, core.Options{
			R: 10, Seed: 11, SkipEC: true, OutputPerm: inst.OutputPerm,
		})
		if rep.Verdict == core.NotEquivalent {
			t.Errorf("%s: false counterexample on an equivalent pair", inst.Name)
		}
	}
}

// Claim 3 (Fig. 3): the full flow never returns a wrong verdict, and the
// timeout outcome carries the probably-equivalent estimate.
func TestClaimFlowVerdictsSound(t *testing.T) {
	eq, neq := suitesT(t)
	all := append(append([]harness.Instance{}, eq...), neq...)
	s := harness.RunFlow(all, harness.RunOptions{
		R: 16, ECTimeout: 2 * time.Second, ECStrategy: ec.Proportional, Seed: 13,
	})
	if s.WrongVerdicts != 0 {
		t.Fatalf("flow produced %d wrong verdicts over %d instances", s.WrongVerdicts, s.Total)
	}
	if s.NotEquivalent != len(neq) {
		t.Errorf("flow found %d non-equivalent instances, want %d", s.NotEquivalent, len(neq))
	}
}

// Claim 4 (Sec. IV-A): detection probability of a c-controlled difference
// is exactly 2^-c.
func TestClaimTheoryExact(t *testing.T) {
	rows, err := harness.TheoryExperiment(7, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Measured != row.Predicted {
			t.Errorf("c=%d: measured %g, predicted %g", row.Controls, row.Measured, row.Predicted)
		}
	}
}

// suitesT builds the small-scale suites for tests (sharing the benchmark
// builder used by bench_test.go).
func suitesT(t *testing.T) ([]harness.Instance, []harness.Instance) {
	t.Helper()
	eq, err := harness.BuildEquivalentSuite(harness.Small)
	if err != nil {
		t.Fatal(err)
	}
	neq, err := harness.BuildNonEquivalentSuite(harness.Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	return eq, neq
}
