package dense

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	xMat = [2][2]complex128{{0, 1}, {1, 0}}
	hMat = [2][2]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	zMat = [2][2]complex128{{1, 0}, {0, -1}}
)

func TestBasisState(t *testing.T) {
	s := BasisState(3, 5)
	for i, a := range s {
		want := complex128(0)
		if i == 5 {
			want = 1
		}
		if a != want {
			t.Fatalf("amplitude[%d] = %v", i, a)
		}
	}
	if s.Qubits() != 3 {
		t.Fatalf("Qubits = %d", s.Qubits())
	}
}

func TestApplyX(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(xMat, 0, nil)
	if s[1] != 1 || s[0] != 0 {
		t.Fatalf("X|00> = %v", s)
	}
	s.ApplyGate(xMat, 1, nil)
	if s[3] != 1 {
		t.Fatalf("X1 X0 |00> = %v", s)
	}
}

func TestApplyCX(t *testing.T) {
	// CX(control 0, target 1): |01> -> |11>
	s := BasisState(2, 1)
	s.ApplyGate(xMat, 1, []Control{{Qubit: 0}})
	if s[3] != 1 {
		t.Fatalf("CX|01> = %v", s)
	}
	// |00> must be untouched.
	s = BasisState(2, 0)
	s.ApplyGate(xMat, 1, []Control{{Qubit: 0}})
	if s[0] != 1 {
		t.Fatalf("CX|00> = %v", s)
	}
}

func TestNegativeControl(t *testing.T) {
	// X on target 1 with negative control on 0 fires for |00>.
	s := BasisState(2, 0)
	s.ApplyGate(xMat, 1, []Control{{Qubit: 0, Neg: true}})
	if s[2] != 1 {
		t.Fatalf("negCX|00> = %v", s)
	}
	s = BasisState(2, 1)
	s.ApplyGate(xMat, 1, []Control{{Qubit: 0, Neg: true}})
	if s[1] != 1 {
		t.Fatalf("negCX|01> = %v", s)
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(hMat, 0, nil)
	s.ApplyGate(xMat, 1, []Control{{Qubit: 0}})
	want := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(s[0]-want) > 1e-12 || cmplx.Abs(s[3]-want) > 1e-12 {
		t.Fatalf("Bell state = %v", s)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatalf("norm = %g", s.Norm())
	}
}

func TestInnerProductAndFidelity(t *testing.T) {
	a := BasisState(2, 0)
	b := BasisState(2, 3)
	if InnerProduct(a, b) != 0 {
		t.Error("orthogonal states have nonzero inner product")
	}
	if Fidelity(a, a) != 1 {
		t.Error("self fidelity != 1")
	}
	bell := NewState(2)
	bell.ApplyGate(hMat, 0, nil)
	bell.ApplyGate(xMat, 1, []Control{{Qubit: 0}})
	if f := Fidelity(bell, a); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("fidelity(bell,|00>) = %g, want 0.5", f)
	}
}

func TestGateMatrixCX(t *testing.T) {
	m := GateMatrix(2, xMat, 1, []Control{{Qubit: 0}})
	// CX(control q0, target q1) in little-endian ordering:
	want := Matrix{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	}
	if !MatApproxEqual(m, want, 1e-12) {
		t.Fatalf("CX matrix =\n%v", m)
	}
}

func TestMulAndDagger(t *testing.T) {
	hFull := GateMatrix(1, hMat, 0, nil)
	prod := Mul(hFull, hFull)
	if !MatApproxEqual(prod, IdentityMatrix(1), 1e-12) {
		t.Fatal("H*H != I")
	}
	if !MatApproxEqual(Dagger(hFull), hFull, 1e-12) {
		t.Fatal("H dagger != H")
	}
	if !IsUnitary(hFull, 1e-12) {
		t.Fatal("H not unitary")
	}
}

func TestKron(t *testing.T) {
	x := GateMatrix(1, xMat, 0, nil)
	z := GateMatrix(1, zMat, 0, nil)
	xz := Kron(x, z) // x on high qubit, z on low qubit
	want := GateMatrix(2, zMat, 0, nil)
	want = Mul(GateMatrix(2, xMat, 1, nil), want)
	if !MatApproxEqual(xz, want, 1e-12) {
		t.Fatalf("X⊗Z mismatch:\n%v\nvs\n%v", xz, want)
	}
}

func TestMulVec(t *testing.T) {
	m := GateMatrix(2, xMat, 0, nil)
	v := BasisState(2, 0)
	got := MulVec(m, v)
	if got[1] != 1 {
		t.Fatalf("X0|00> = %v", got)
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	a := NewState(2)
	a.ApplyGate(hMat, 0, nil)
	b := a.Clone()
	phase := cmplx.Exp(complex(0, 1.234))
	for i := range b {
		b[i] *= phase
	}
	if !EqualUpToGlobalPhase(a, b, 1e-9) {
		t.Error("phase-shifted state not recognized as equal up to phase")
	}
	if ApproxEqual(a, b, 1e-9) {
		t.Error("phase-shifted state wrongly strictly equal")
	}
	c := a.Clone()
	c.ApplyGate(zMat, 1, nil)
	c.ApplyGate(xMat, 1, nil) // now genuinely different
	if EqualUpToGlobalPhase(a, c, 1e-9) {
		t.Error("different states wrongly equal up to phase")
	}
}

func TestMatEqualUpToGlobalPhase(t *testing.T) {
	h := GateMatrix(1, hMat, 0, nil)
	ph := NewMatrix(2)
	phase := cmplx.Exp(complex(0, -0.7))
	for i := range h {
		for j := range h[i] {
			ph[i][j] = phase * h[i][j]
		}
	}
	if !MatEqualUpToGlobalPhase(h, ph, 1e-9) {
		t.Error("phase-shifted matrix not equal up to phase")
	}
	x := GateMatrix(1, xMat, 0, nil)
	if MatEqualUpToGlobalPhase(h, x, 1e-9) {
		t.Error("H and X wrongly equal up to phase")
	}
}

// Property: applying a random sequence of H/X/CX preserves the norm.
func TestQuickNormPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		s := NewState(n)
		for i := 0; i < 20; i++ {
			q := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.ApplyGate(hMat, q, nil)
			case 1:
				s.ApplyGate(xMat, q, nil)
			case 2:
				c := (q + 1 + rng.Intn(n-1)) % n
				s.ApplyGate(xMat, q, []Control{{Qubit: c}})
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: gate matrices of controlled ops are unitary.
func TestQuickGateMatrixUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := rng.Float64() * 2 * math.Pi
		u := [2][2]complex128{
			{complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))},
			{complex(0, -math.Sin(theta/2)), complex(math.Cos(theta/2), 0)},
		}
		n := 3
		target := rng.Intn(n)
		ctl := (target + 1 + rng.Intn(n-1)) % n
		m := GateMatrix(n, u, target, []Control{{Qubit: ctl, Neg: rng.Intn(2) == 0}})
		return IsUnitary(m, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
