// Package dense implements a straightforward dense state-vector and unitary
// simulator.
//
// It plays two roles in the reproduction: it is the test oracle every DD
// operation is validated against, and it is the small-scale stand-in for the
// naive "construct the complete functionality" baseline the paper argues
// against (explicit 2^n x 2^n matrices).  It is deliberately simple and
// allocation-heavy; it is only ever used for small registers.
package dense

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Control describes a control qubit; Neg selects the |0> branch.
type Control struct {
	Qubit int
	Neg   bool
}

// State is a dense state vector of 2^n amplitudes, index bit q holding
// qubit q (qubit 0 is the least-significant bit).
type State []complex128

// NewState returns |0...0> on n qubits.
func NewState(n int) State {
	s := make(State, 1<<uint(n))
	s[0] = 1
	return s
}

// BasisState returns |i> on n qubits.
func BasisState(n int, i uint64) State {
	s := make(State, 1<<uint(n))
	s[i] = 1
	return s
}

// Qubits returns the register size of the state.
func (s State) Qubits() int {
	n := 0
	for 1<<uint(n) < len(s) {
		n++
	}
	return n
}

// Clone returns a copy of the state.
func (s State) Clone() State {
	c := make(State, len(s))
	copy(c, s)
	return c
}

func controlsSatisfied(i uint64, controls []Control) bool {
	for _, c := range controls {
		bit := (i >> uint(c.Qubit)) & 1
		if c.Neg {
			if bit != 0 {
				return false
			}
		} else if bit != 1 {
			return false
		}
	}
	return true
}

// ApplyGate applies a (controlled) single-qubit operation in place.
func (s State) ApplyGate(u [2][2]complex128, target int, controls []Control) {
	mask := uint64(1) << uint(target)
	for i := uint64(0); i < uint64(len(s)); i++ {
		if i&mask != 0 || !controlsSatisfied(i, controls) {
			continue
		}
		j := i | mask
		a0, a1 := s[i], s[j]
		s[i] = u[0][0]*a0 + u[0][1]*a1
		s[j] = u[1][0]*a0 + u[1][1]*a1
	}
}

// InnerProduct returns <a|b>.
func InnerProduct(a, b State) complex128 {
	if len(a) != len(b) {
		panic("dense: inner product of mismatched states")
	}
	var sum complex128
	for i := range a {
		sum += cmplx.Conj(a[i]) * b[i]
	}
	return sum
}

// Norm returns the 2-norm of the state.
func (s State) Norm() float64 {
	var sum float64
	for _, c := range s {
		re, im := real(c), imag(c)
		sum += re*re + im*im
	}
	return math.Sqrt(sum)
}

// Fidelity returns |<a|b>|^2.
func Fidelity(a, b State) float64 {
	ip := InnerProduct(a, b)
	re, im := real(ip), imag(ip)
	return re*re + im*im
}

// ApproxEqual reports whether two states agree element-wise within tol.
func ApproxEqual(a, b State, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// EqualUpToGlobalPhase reports whether a = e^{i phi} b within tol.
func EqualUpToGlobalPhase(a, b State, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	// Find the largest-magnitude entry of b to fix the phase.
	best, mag := -1, 0.0
	for i := range b {
		if m := cmplx.Abs(b[i]); m > mag {
			best, mag = i, m
		}
	}
	if best < 0 {
		return a.Norm() <= tol
	}
	if cmplx.Abs(a[best]) < tol && mag > tol {
		return false
	}
	phase := a[best] / b[best]
	scaled := b.Clone()
	for i := range scaled {
		scaled[i] *= phase
	}
	return ApproxEqual(a, scaled, tol)
}

// Matrix is a dense square matrix.
type Matrix [][]complex128

// NewMatrix returns a zero dim x dim matrix.
func NewMatrix(dim int) Matrix {
	m := make(Matrix, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
	}
	return m
}

// IdentityMatrix returns the 2^n x 2^n identity.
func IdentityMatrix(n int) Matrix {
	m := NewMatrix(1 << uint(n))
	for i := range m {
		m[i][i] = 1
	}
	return m
}

// GateMatrix builds the full 2^n x 2^n matrix of a controlled single-qubit
// operation by applying it to every basis state.
func GateMatrix(n int, u [2][2]complex128, target int, controls []Control) Matrix {
	dim := 1 << uint(n)
	m := NewMatrix(dim)
	for c := 0; c < dim; c++ {
		col := BasisState(n, uint64(c))
		col.ApplyGate(u, target, controls)
		for r := 0; r < dim; r++ {
			m[r][c] = col[r]
		}
	}
	return m
}

// Mul returns the matrix product a·b.
func Mul(a, b Matrix) Matrix {
	dim := len(a)
	if len(b) != dim {
		panic("dense: matrix size mismatch")
	}
	out := NewMatrix(dim)
	for i := 0; i < dim; i++ {
		for k := 0; k < dim; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			row := b[k]
			for j := 0; j < dim; j++ {
				out[i][j] += aik * row[j]
			}
		}
	}
	return out
}

// MulVec returns m·v.
func MulVec(m Matrix, v State) State {
	dim := len(m)
	if len(v) != dim {
		panic("dense: matrix/vector size mismatch")
	}
	out := make(State, dim)
	for i := 0; i < dim; i++ {
		var sum complex128
		for j := 0; j < dim; j++ {
			sum += m[i][j] * v[j]
		}
		out[i] = sum
	}
	return out
}

// Dagger returns the conjugate transpose.
func Dagger(m Matrix) Matrix {
	dim := len(m)
	out := NewMatrix(dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			out[j][i] = cmplx.Conj(m[i][j])
		}
	}
	return out
}

// Kron returns a ⊗ b.
func Kron(a, b Matrix) Matrix {
	da, db := len(a), len(b)
	out := NewMatrix(da * db)
	for i := 0; i < da; i++ {
		for j := 0; j < da; j++ {
			if a[i][j] == 0 {
				continue
			}
			for k := 0; k < db; k++ {
				for l := 0; l < db; l++ {
					out[i*db+k][j*db+l] = a[i][j] * b[k][l]
				}
			}
		}
	}
	return out
}

// MatApproxEqual reports whether two matrices agree entry-wise within tol.
func MatApproxEqual(a, b Matrix, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if cmplx.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// MatEqualUpToGlobalPhase reports whether a = e^{i phi} b within tol.
func MatEqualUpToGlobalPhase(a, b Matrix, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	var phase complex128
	found := false
	for i := range b {
		for j := range b[i] {
			if cmplx.Abs(b[i][j]) > 0.1 {
				if cmplx.Abs(a[i][j]) <= tol {
					return false
				}
				phase = a[i][j] / b[i][j]
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return MatApproxEqual(a, b, tol)
	}
	for i := range a {
		for j := range a[i] {
			if cmplx.Abs(a[i][j]-phase*b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// IsUnitary reports whether m·m† = I within tol.
func IsUnitary(m Matrix, tol float64) bool {
	prod := Mul(m, Dagger(m))
	dim := len(m)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(prod[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix with aligned entries (used by the Fig. 1
// reproduction example).
func (m Matrix) String() string {
	out := ""
	for _, row := range m {
		for j, c := range row {
			if j > 0 {
				out += " "
			}
			out += formatEntry(c)
		}
		out += "\n"
	}
	return out
}

func formatEntry(c complex128) string {
	re, im := real(c), imag(c)
	switch {
	case math.Abs(im) < 1e-9 && math.Abs(re) < 1e-9:
		return "    0    "
	case math.Abs(im) < 1e-9:
		return fmt.Sprintf("%8.4f ", re)
	case math.Abs(re) < 1e-9:
		return fmt.Sprintf("%7.4fi ", im)
	default:
		return fmt.Sprintf("%.3f%+.3fi", re, im)
	}
}
