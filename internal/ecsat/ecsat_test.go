package ecsat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/synth"
)

func randomReversibleCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "rev")
	for i := 0; i < gates; i++ {
		perm := rng.Perm(n)
		switch rng.Intn(4) {
		case 0:
			c.X(perm[0])
		case 1:
			c.MCXNeg([]circuit.Control{{Qubit: perm[0], Neg: rng.Intn(2) == 0}}, perm[1])
		case 2:
			c.MCXNeg([]circuit.Control{{Qubit: perm[0]}, {Qubit: perm[1], Neg: rng.Intn(2) == 0}}, perm[2])
		case 3:
			c.Swap(perm[0], perm[1])
		}
	}
	return c
}

func TestIdenticalEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomReversibleCircuit(rng, 5, 30)
	res, err := Check(g, g.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Vars == 0 || res.Clauses == 0 {
		t.Error("no encoding statistics")
	}
}

func TestSingleFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomReversibleCircuit(rng, 5, 30)
	buggy := g.Clone()
	buggy.X(3) // extra NOT
	res, err := Check(g, buggy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotEquivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	// Validate the counterexample against the functional oracle.
	y1, err := synth.EvalReversible(g, *res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := synth.EvalReversible(buggy, *res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	if y1 == y2 {
		t.Fatalf("counterexample %d does not distinguish the circuits", *res.Counterexample)
	}
}

func TestSwapRewiring(t *testing.T) {
	// SWAP then identical gates must equal relabeled gates.
	g1 := circuit.New(3, "a")
	g1.Swap(0, 1).CX(0, 2)
	g2 := circuit.New(3, "b")
	g2.CX(1, 2).Swap(0, 1)
	res, err := Check(g1, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestControlledSwap(t *testing.T) {
	g1 := circuit.New(3, "fredkin")
	g1.CSwap(0, 1, 2)
	// Fredkin = CX(2,1)·CCX(0,1,2)·CX(2,1)
	g2 := circuit.New(3, "expanded")
	g2.CX(2, 1).CCX(0, 1, 2).CX(2, 1)
	res, err := Check(g1, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestQuantumGateRejected(t *testing.T) {
	g := circuit.New(2, "h")
	g.H(0)
	if _, err := Check(g, g.Clone(), Options{}); err == nil {
		t.Fatal("H gate accepted by the classical encoder")
	}
}

func TestRegisterMismatch(t *testing.T) {
	res, err := Check(circuit.New(2, "a"), circuit.New(3, "b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotEquivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestNegativeControls(t *testing.T) {
	// X controlled on |0> of q0 equals X·CX·X on the control.
	g1 := circuit.New(2, "neg")
	g1.MCXNeg([]circuit.Control{{Qubit: 0, Neg: true}}, 1)
	g2 := circuit.New(2, "pos")
	g2.X(0).CX(0, 1).X(0)
	res, err := Check(g1, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestAgainstSynthesizedBenchmarks(t *testing.T) {
	// hwb5 synthesized twice from the same permutation must be equivalent;
	// against a different benchmark it must not be.
	hwb, err := bench.HWB(5)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := synth.PermutationOf(hwb)
	if err != nil {
		t.Fatal(err)
	}
	resynth, err := synth.Permutation(perm, 5, "hwb5-re")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(hwb, resynth, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("hwb5 vs resynthesis: %v", res.Verdict)
	}

	inc := bench.Increment(5, 1)
	res, err = Check(hwb, inc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotEquivalent {
		t.Fatalf("hwb5 vs inc5: %v", res.Verdict)
	}
}

func TestConflictBudgetInconclusive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g1 := randomReversibleCircuit(rng, 10, 300)
	g2 := randomReversibleCircuit(rng, 10, 300)
	res, err := Check(g1, g2, Options{ConflictBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With budget 1 the solver either answers immediately (propagation
	// alone) or gives up; both are acceptable, but a crash is not.
	if res.Verdict == Inconclusive && res.Solver.Conflicts < 1 {
		t.Error("inconclusive without hitting the budget")
	}
}

// Property: the SAT checker agrees with exhaustive functional comparison on
// random reversible pairs.
func TestQuickAgainstTruthTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		g1 := randomReversibleCircuit(rng, n, 15)
		var g2 *circuit.Circuit
		if seed%2 == 0 {
			// Equivalent variant: append a self-cancelling pair.
			g2 = g1.Clone()
			g2.CX(0, 1).CX(0, 1)
		} else {
			g2 = randomReversibleCircuit(rng, n, 15)
		}
		res, err := Check(g1, g2, Options{})
		if err != nil {
			return false
		}
		p1, err := synth.PermutationOf(g1)
		if err != nil {
			return false
		}
		p2, err := synth.PermutationOf(g2)
		if err != nil {
			return false
		}
		same := true
		for i := range p1 {
			if p1[i] != p2[i] {
				same = false
				break
			}
		}
		if same != (res.Verdict == Equivalent) {
			return false
		}
		if res.Verdict == NotEquivalent {
			y1, _ := synth.EvalReversible(g1, *res.Counterexample)
			y2, _ := synth.EvalReversible(g2, *res.Counterexample)
			if y1 == y2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMiterHWB5(b *testing.B) {
	hwb, err := bench.HWB(5)
	if err != nil {
		b.Fatal(err)
	}
	variant := hwb.Clone()
	variant.CX(0, 1)
	variant.CX(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Check(hwb, variant, Options{})
		if err != nil || res.Verdict != Equivalent {
			b.Fatalf("verdict %v err %v", res.Verdict, err)
		}
	}
}
