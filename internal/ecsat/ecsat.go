// Package ecsat implements SAT-based equivalence checking for classical
// reversible circuits (Toffoli/Fredkin netlists) — the reproduction of the
// paper's reference [17] baseline class.
//
// The two circuits are encoded as a miter: both consume the same input
// variables, each gate introduces one fresh variable for its target wire
// (CNOT/Toffoli are XOR-of-AND constraints under Tseitin transformation),
// and the formula asserts that at least one output wire differs.  The miter
// is UNSAT iff the circuits are equivalent; a satisfying assignment *is* a
// counterexample input.
//
// This baseline only applies to the reversible benchmark class; the DD-based
// routine (internal/ec) covers general quantum circuits.  The harness uses
// it for cross-validation and as an extra baseline column.
package ecsat

import (
	"context"
	"fmt"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/sat"
)

// Verdict is the outcome of a SAT-based check.
type Verdict int

// Possible outcomes.
const (
	Equivalent Verdict = iota
	NotEquivalent
	Inconclusive // conflict budget exhausted
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case NotEquivalent:
		return "not equivalent"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Options configures the check.
type Options struct {
	// ConflictBudget bounds solver effort (0 = unlimited).
	ConflictBudget int64
	// Context, when non-nil, cancels the solve cooperatively (polled every
	// conflict and every few hundred decisions).  A cancelled check returns
	// Inconclusive with Result.Cancelled set.
	Context context.Context
}

// Result reports the outcome and cost.
type Result struct {
	Verdict        Verdict
	Counterexample *uint64 // input assignment on which outputs differ
	Vars           int
	Clauses        int
	Runtime        time.Duration
	Cancelled      bool // Inconclusive because Options.Context was cancelled
	Solver         sat.Stats
}

// encoder tracks the current SAT literal carried by each wire.
type encoder struct {
	s     *sat.Solver
	wires []sat.Lit
}

// encodeGate adds the constraints of one classical gate, updating the wire
// map.  Negative controls negate the control literal; SWAP gates merely
// exchange wire literals (controlled SWAPs are expanded into three CXs).
func (e *encoder) encodeGate(g circuit.Gate) error {
	switch g.Kind {
	case circuit.I:
		return nil
	case circuit.X:
		return e.encodeToffoli(g.Controls, g.Target)
	case circuit.SWAP:
		if len(g.Controls) == 0 {
			e.wires[g.Target], e.wires[g.Target2] = e.wires[g.Target2], e.wires[g.Target]
			return nil
		}
		// CSWAP(a,b) = CX(b,a) · CCX(ctl,a;b) · CX(b,a).
		a, b := g.Target, g.Target2
		if err := e.encodeToffoli([]circuit.Control{{Qubit: b}}, a); err != nil {
			return err
		}
		mid := append(append([]circuit.Control{}, g.Controls...), circuit.Control{Qubit: a})
		if err := e.encodeToffoli(mid, b); err != nil {
			return err
		}
		return e.encodeToffoli([]circuit.Control{{Qubit: b}}, a)
	default:
		return fmt.Errorf("ecsat: gate %s is not classical", g)
	}
}

// encodeToffoli encodes target' = target XOR AND(controls).
func (e *encoder) encodeToffoli(controls []circuit.Control, target int) error {
	old := e.wires[target]
	var fire sat.Lit
	switch len(controls) {
	case 0:
		// Unconditional NOT: new wire literal is just the negation.
		e.wires[target] = old.Neg()
		return nil
	case 1:
		fire = e.ctlLit(controls[0])
	default:
		// fire <-> AND(controls)
		fire = sat.Lit(e.s.NewVar())
		all := make([]sat.Lit, 0, len(controls)+1)
		for _, c := range controls {
			cl := e.ctlLit(c)
			if err := e.s.AddClause(fire.Neg(), cl); err != nil {
				return err
			}
			all = append(all, cl.Neg())
		}
		all = append(all, fire)
		if err := e.s.AddClause(all...); err != nil {
			return err
		}
	}
	// out <-> old XOR fire
	out := sat.Lit(e.s.NewVar())
	clauses := [][]sat.Lit{
		{out.Neg(), old, fire},
		{out.Neg(), old.Neg(), fire.Neg()},
		{out, old.Neg(), fire},
		{out, old, fire.Neg()},
	}
	for _, c := range clauses {
		if err := e.s.AddClause(c...); err != nil {
			return err
		}
	}
	e.wires[target] = out
	return nil
}

func (e *encoder) ctlLit(c circuit.Control) sat.Lit {
	l := e.wires[c.Qubit]
	if c.Neg {
		return l.Neg()
	}
	return l
}

// Check decides the equivalence of two classical reversible circuits via a
// SAT miter.
func Check(g1, g2 *circuit.Circuit, opts Options) (Result, error) {
	start := time.Now()
	if g1.N != g2.N {
		return Result{Verdict: NotEquivalent, Runtime: time.Since(start)}, nil
	}
	if g1.N > 63 {
		return Result{}, fmt.Errorf("ecsat: register too wide (%d qubits)", g1.N)
	}
	s := sat.NewSolver()
	s.ConflictBudget = opts.ConflictBudget
	if ctx := opts.Context; ctx != nil {
		s.Cancel = func() bool { return ctx.Err() != nil }
	}

	inputs := make([]sat.Lit, g1.N)
	for i := range inputs {
		inputs[i] = sat.Lit(s.NewVar())
	}
	run := func(c *circuit.Circuit) ([]sat.Lit, error) {
		e := &encoder{s: s, wires: append([]sat.Lit(nil), inputs...)}
		for _, g := range c.Gates {
			if err := e.encodeGate(g); err != nil {
				return nil, err
			}
		}
		return e.wires, nil
	}
	out1, err := run(g1)
	if err != nil {
		return Result{}, err
	}
	out2, err := run(g2)
	if err != nil {
		return Result{}, err
	}

	// Difference detectors: d_w <-> out1_w XOR out2_w; assert OR(d_w).
	diffs := make([]sat.Lit, g1.N)
	for w := 0; w < g1.N; w++ {
		d := sat.Lit(s.NewVar())
		a, b := out1[w], out2[w]
		for _, c := range [][]sat.Lit{
			{d.Neg(), a, b},
			{d.Neg(), a.Neg(), b.Neg()},
			{d, a.Neg(), b},
			{d, a, b.Neg()},
		} {
			if err := s.AddClause(c...); err != nil {
				return Result{}, err
			}
		}
		diffs[w] = d
	}
	if err := s.AddClause(diffs...); err != nil {
		return Result{}, err
	}

	res := Result{Vars: s.NumVars(), Clauses: s.NumClauses()}
	status, serr := s.Solve()
	res.Runtime = time.Since(start)
	res.Solver = s.Stats()
	switch status {
	case sat.Unsatisfiable:
		res.Verdict = Equivalent
	case sat.Satisfiable:
		res.Verdict = NotEquivalent
		model := s.Model()
		var ce uint64
		for i, l := range inputs {
			if model[l.Var()-1] {
				ce |= 1 << uint(i)
			}
		}
		res.Counterexample = &ce
	default:
		res.Verdict = Inconclusive
		res.Cancelled = serr == sat.ErrCancelled
		if serr != nil && serr != sat.ErrBudget && serr != sat.ErrCancelled {
			return res, serr
		}
	}
	return res, nil
}
