package server

import (
	"errors"
	"math/rand"
	"time"

	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/resource"
)

// Retry classification.
//
// A failed check is not one kind of event.  Some failures are facts about
// the request — malformed circuits never parse, a node budget the client
// chose will be exhausted again on every re-run — and retrying them burns a
// worker slot to learn nothing.  Others are facts about the moment: a
// recovered panic, a memory-watchdog hard trip, an injected fault.  Those
// are exactly the failures PR 4 taught the portfolio to retry under a
// degraded budget, and the serving layer extends the same policy to whole
// jobs: transient failures re-run up to Config.MaxJobRetries times with
// exponential backoff + full jitter and a progressively degraded
// core.Options budget (sequential simulation, reference gate-application
// path, halved node limit, no warm-package reuse), each attempt journaled
// and counted in qcecd_job_retries_total.
//
// Client-budget cancellations (request deadline, disconnect, server drain)
// are neither: the outcome the client paid for is "stopped", and retrying
// past the deadline would answer a question nobody is waiting on.

// errClass partitions job outcomes for the retry decision.
type errClass int

const (
	// classNone: a clean outcome (any verdict, including a cancellation by
	// the client's own budget) — never retried.
	classNone errClass = iota
	// classPermanent: deterministic failures a retry cannot fix.
	classPermanent
	// classTransient: environmental failures worth a degraded re-run.
	classTransient
)

// classifyOutcome maps one attempt's outcome to its retry class and a
// stable label for metrics, logs and journal records.
func classifyOutcome(rep core.Report, panicErr *resource.PanicError) (errClass, string) {
	if panicErr != nil {
		return classTransient, "panic"
	}
	var mem *resource.MemoryLimitError
	if errors.As(rep.Err, &mem) || errors.As(rep.CancelCause, &mem) {
		// Watchdog hard trip: the degraded budget shrinks the next
		// attempt's footprint, so a re-run can genuinely succeed.
		return classTransient, "mem_limit"
	}
	var pe *resource.PanicError
	if errors.As(rep.Err, &pe) {
		return classTransient, "panic"
	}
	if rep.Cancelled {
		var de *DrainError
		if errors.As(rep.CancelCause, &de) {
			return classNone, "drain"
		}
		return classNone, "cancelled"
	}
	if rep.EC != nil && rep.EC.Cause == ec.CauseNodeLimit {
		// The client's node budget is part of the question; re-asking the
		// same question exhausts it identically.
		return classPermanent, "node_limit"
	}
	if rep.Err != nil {
		return classPermanent, "error"
	}
	return classNone, ""
}

// retryDelay returns the backoff before attempt+2 (attempt is 0-based):
// base·2^attempt, capped, with full ±50% jitter so a burst of jobs felled
// by one memory spike does not re-land in lockstep.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(attempt)
	if max := 5 * time.Second; d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// retryAfterSeconds renders the Retry-After hint for 429/503 responses with
// ±25% jitter, so the synchronized clients created by one queue-full moment
// do not re-stampede on the same second.  Always at least 1.
func retryAfterSeconds(d time.Duration) int {
	jittered := time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
	secs := int((jittered + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
