package server

import (
	"io"
	"log/slog"
	"runtime"
	"time"

	"qcec/internal/core"
)

// Config parameterizes a Server.  The zero value is usable: withDefaults
// fills every field with a sane production default.
type Config struct {
	// Workers is the number of concurrent checking workers — the hard bound
	// on in-flight checks (default: GOMAXPROCS, at least 1).  Each worker
	// runs one job at a time; a job's own simulation-stage parallelism is
	// additionally capped at MaxParallel.
	Workers int
	// QueueDepth bounds the number of admitted-but-not-started jobs
	// (default 64).  A full queue rejects with 429 + Retry-After rather
	// than queueing unboundedly — the memory a pending job pins (two parsed
	// circuits) is the server's real admission currency.
	QueueDepth int
	// MaxParallel caps a single job's simulation-stage worker count
	// (default 4).  Requests asking for more are clamped, not rejected.
	MaxParallel int
	// MaxBodyBytes bounds the request body (default 4 MiB → 413).
	MaxBodyBytes int64
	// MaxQubits / MaxGates reject circuits beyond the deployment's size
	// envelope with 413 circuit_too_large (0 = no bound).
	MaxQubits int
	MaxGates  int
	// DefaultTimeout bounds a check when the request sets none (default
	// 30s); MaxTimeout caps what a request may ask for (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MemSoftLimit / MemHardLimit, in bytes, put every job under a
	// per-job resource.Watchdog (0 = no memory budget).
	MemSoftLimit uint64
	MemHardLimit uint64
	// RetryAfter is the hint returned with 429 responses (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// CompletedJobs bounds how many finished async jobs are retained for
	// GET /v1/jobs/{id} before the oldest are evicted (default 256).
	CompletedJobs int
	// MaxBatchItems bounds the number of pairs POST /v1/batch accepts in
	// one request (default 128; larger batches are rejected with 413).
	MaxBatchItems int
	// CacheEntries bounds the verdict memoization cache (default 1024
	// entries; negative disables caching).  Only definitive verdicts are
	// stored, so cache size trades repeat-check latency against memory.
	CacheEntries int
	// PoolPackages bounds how many warm DD packages are retained per
	// (qubits, tolerance) bucket for reuse across jobs (default: the worker
	// count; negative disables pooling and every job builds fresh tables).
	PoolPackages int
	// JournalDir, when non-empty, enables the durable job journal: accepted
	// async jobs (and idempotent sync checks) are logged to an append-only
	// WAL in this directory, and startup replays it — re-enqueueing
	// unfinished jobs and serving finished verdicts — so a crash or restart
	// loses no accepted work.  Empty disables durability (jobs live only in
	// process memory, the pre-journal behavior).
	JournalDir string
	// MaxJobRetries bounds how many times a job felled by a transient
	// failure (recovered panic, memory-limit trip) is re-run under a
	// degraded budget before the error is returned to the client (default
	// 2; negative disables retries).
	MaxJobRetries int
	// RetryBackoff is the base delay before the first retry; attempt k
	// waits RetryBackoff·2^k with full jitter, capped at 5s (default
	// 100ms).
	RetryBackoff time.Duration
	// Logger receives the daemon's structured logs (job lifecycle, retry
	// decisions, journal recovery).  nil discards them, which keeps library
	// and test use quiet by default.
	Logger *slog.Logger

	// testExec, when set, replaces the job executor before the workers start
	// (and before recovered jobs requeue) — swapping Server.exec after New
	// races with workers draining a recovered backlog.
	testExec func(*job) core.Report
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CompletedJobs <= 0 {
		c.CompletedJobs = 256
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 128
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.PoolPackages == 0 {
		c.PoolPackages = c.Workers
	}
	switch {
	case c.MaxJobRetries == 0:
		c.MaxJobRetries = 2
	case c.MaxJobRetries < 0:
		c.MaxJobRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}
