package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/resource"
)

// This file implements the worker pool: a bounded job queue with admission
// control, per-job deadlines and memory budgets, panic isolation, and a
// graceful drain protocol.
//
// Admission is the load-shedding point.  A job is accepted only if the queue
// channel has room right now (select with default); otherwise the caller
// gets errQueueFull and the handler turns it into 429 + Retry-After.  The
// queue bounds memory (each pending job pins two parsed circuits), the
// worker count bounds CPU, and nothing in the daemon waits unboundedly.
//
// Drain: Shutdown flips the draining flag under the admission lock (so no
// submit can race past it), closes the queue channel, and waits for the
// workers to finish the jobs already admitted.  If the drain context expires
// first, the base context is cancelled with a typed *DrainError cause — every
// running check observes it at its next cooperative cancellation point and
// returns an inconclusive-but-clean verdict, exactly like a client deadline.

// DrainError is the cancellation cause installed when a shutdown's drain
// deadline expires while checks are still running.
type DrainError struct {
	// Waited is how long the drain waited before giving up.
	Waited time.Duration
}

// Error formats the drain timeout.
func (e *DrainError) Error() string {
	return fmt.Sprintf("server: drain deadline exceeded after %s", e.Waited)
}

// errQueueFull is returned by submit when the queue has no room.
var errQueueFull = errors.New("server: job queue full")

// errDraining is returned by submit once Shutdown has begun.
var errDraining = errors.New("server: draining")

// job is one admitted equivalence check.
type job struct {
	id  string
	req CheckRequest
	g1  *circuit.Circuit
	g2  *circuit.Circuit

	enqueued time.Time
	started  time.Time

	// status is one of StatusQueued/StatusRunning/StatusDone, stored as an
	// index into jobStatuses.
	status atomic.Int32

	// ctx governs the job's whole execution; cancel releases it.  The sync
	// handler additionally ties it to the HTTP request context so a client
	// disconnect stops the check.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// done closes when the job has finished and result is set.
	done   chan struct{}
	result *CheckResponse

	// ckey is the job's verdict-cache key (pair fingerprint + the options
	// that parameterize the equivalence relation); cacheOK gates both cache
	// lookup and insertion (false for approximate-mode jobs).
	ckey    cacheKey
	cacheOK bool

	// idemKey is the client-supplied Idempotency-Key ("" = none).
	idemKey string
	// journaled marks jobs under the durability contract: their transitions
	// are appended to the WAL and replayed after a restart.
	journaled bool
	// attempt is the 0-based index of the current execution attempt.  It is
	// non-zero for retried jobs and for journal-recovered jobs that already
	// burned attempts before the crash; any non-zero value degrades the
	// execution budget.
	attempt int
}

var jobStatuses = [...]string{StatusQueued, StatusRunning, StatusDone}

func (j *job) statusString() string { return jobStatuses[j.status.Load()] }

const (
	jobQueued int32 = iota
	jobRunning
	jobDone
)

// submit admits a job to the queue, or rejects it with errQueueFull /
// errDraining.  It never blocks.
func (s *Server) submit(j *job) error {
	// The admission read-lock pairs with Shutdown's write-lock: a submit
	// that sees draining==false is guaranteed to finish its channel send
	// before Shutdown closes the channel.
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.jobs <- j:
		s.metrics.submittedJob()
		return nil
	default:
		return errQueueFull
	}
}

// submitWait admits a job, blocking while the queue is full instead of
// rejecting — the batch handler's backpressure, so a batch larger than the
// queue trickles in as workers drain it.  The send happens under the same
// admission read-lock as submit: Shutdown's write-lock waits for any send in
// flight, so the channel cannot be closed under it.  ctx (the batch
// request's context) bounds the wait; a disconnected client stops feeding
// the queue.
func (s *Server) submitWait(ctx context.Context, j *job) error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.jobs <- j:
		s.metrics.submittedJob()
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// worker drains the job queue until it is closed.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		s.runJob(j)
	}
}

// runJob executes one admitted job with panic isolation and records its
// result and telemetry.  Transient failures (recovered panic, memory-limit
// trip) are re-run under a degraded budget up to Config.MaxJobRetries times
// with jittered exponential backoff; every attempt is journaled.
func (s *Server) runJob(j *job) {
	j.started = time.Now()
	j.status.Store(jobRunning)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var rep core.Report
	var panicErr *resource.PanicError
	for {
		s.journalStarted(j, j.attempt+1)
		rep, panicErr = s.executeIsolated(j)
		class, label := classifyOutcome(rep, panicErr)
		if class != classTransient {
			break
		}
		if j.attempt >= s.cfg.MaxJobRetries {
			s.log.Warn("job failed after final attempt",
				"job", j.id, "attempt", j.attempt+1, "class", label)
			break
		}
		delay := retryDelay(s.cfg.RetryBackoff, j.attempt)
		s.metrics.jobRetry(label)
		s.journalRetry(j, j.attempt+1, label)
		s.log.Warn("transient job failure, retrying degraded",
			"job", j.id, "attempt", j.attempt+1, "class", label, "backoff", delay)
		j.attempt++
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-j.ctx.Done():
			t.Stop()
		}
		if j.ctx.Err() != nil {
			// The job's budget is gone (drain or client disconnect): nobody
			// is waiting on a re-run; report the last failure as-is.
			break
		}
	}
	res := s.buildResponse(j, rep, panicErr)
	if j.attempt > 0 {
		res.Attempts = j.attempt + 1
	}

	queued := j.started.Sub(j.enqueued)
	ran := time.Since(j.started)
	res.Timings.QueueMS = float64(queued.Microseconds()) / 1e3
	res.Timings.TotalMS = float64(ran.Microseconds()) / 1e3

	ddStats := rep.DD
	if rep.EC != nil {
		ddStats.Add(rep.EC.DD)
	}
	s.metrics.finishedJob(res, queued, ran, ddStats, rep.Mem, panicErr != nil)

	if s.cache != nil && j.cacheOK && cacheable(res) {
		s.cache.put(j.ckey, *res)
	}
	s.journalFinished(j, res)
	s.log.Info("job finished",
		"job", j.id, "fp", j.ckey.pair.String(), "verdict", res.Verdict,
		"attempt", j.attempt+1, "cancelled", res.Cancelled)
	j.result = res
	j.status.Store(jobDone)
	j.cancel(nil)
	close(j.done)
	s.retireJob(j)
}

// executeIsolated runs the check behind a recover barrier, so a panicking
// job is converted into a typed error response and the daemon lives on.
// Checker-internal panic isolation (simulation workers, provers) already
// catches most faults; this is the last line of defense for the paths that
// have no recover of their own (parser-adjacent code, the flow itself).
func (s *Server) executeIsolated(j *job) (rep core.Report, panicErr *resource.PanicError) {
	defer func() {
		if r := recover(); r != nil {
			panicErr = resource.NewPanicError("server: job "+j.id, r)
		}
	}()
	rep = s.exec(j)
	return rep, nil
}

// runCheck is the default job executor (Server.exec): it translates the wire
// options into core.Options under the server's clamps and runs the flow.
func (s *Server) runCheck(j *job) core.Report {
	o := j.req.Options
	timeout := s.cfg.DefaultTimeout
	if o.TimeoutMS > 0 {
		timeout = time.Duration(o.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()

	parallel := o.Parallel
	if parallel > s.cfg.MaxParallel {
		parallel = s.cfg.MaxParallel
	}
	strategy, _ := parseStrategy(o.Strategy) // validated at admission
	nodeLimit := o.NodeLimit
	if nodeLimit < 0 {
		nodeLimit = 0
	}

	opts := core.Options{
		Context:           ctx,
		R:                 o.R,
		Seed:              o.Seed,
		Parallel:          parallel,
		SkipEC:            o.SimOnly,
		Strategy:          strategy,
		ECTimeout:         timeout,
		ECNodeLimit:       nodeLimit,
		UpToGlobalPhase:   o.UpToGlobalPhase,
		FidelityThreshold: o.FidelityThreshold,
		Tolerance:         o.Tolerance,
		MemSoftLimit:      s.cfg.MemSoftLimit,
		MemHardLimit:      s.cfg.MemHardLimit,
		Pool:              s.ddPool,
	}
	if j.attempt > 0 {
		// Degraded re-run after a transient failure, mirroring the portfolio
		// engine's post-crash policy: sequential simulation, reference gate
		// application, no shared caches or warm packages, bounded DD growth.
		opts.Parallel = 0
		opts.DisableApplyKernel = true
		opts.DisableGateCache = true
		opts.Pool = nil
		switch {
		case opts.ECNodeLimit <= 0:
			opts.ECNodeLimit = 1 << 20
		case opts.ECNodeLimit > 4096:
			opts.ECNodeLimit /= 2
		}
	}
	return core.Check(j.g1, j.g2, opts)
}

// buildResponse converts a flow report (or an isolated panic) into the wire
// response.
func (s *Server) buildResponse(j *job, rep core.Report, panicErr *resource.PanicError) *CheckResponse {
	res := &CheckResponse{JobID: j.id}
	switch {
	case panicErr != nil:
		res.Verdict = VerdictError
		res.Error = panicErr.Error()
	case rep.Err != nil:
		res.Verdict = VerdictError
		res.Error = rep.Err.Error()
	default:
		res.Verdict = wireVerdict(rep.Verdict)
	}
	res.NumSims = rep.NumSims
	res.DecidedBy = rep.DecidedBy
	res.Exhaustive = rep.Exhaustive
	res.MinFidelity = rep.MinFidelity
	res.Cancelled = rep.Cancelled
	if rep.CancelCause != nil {
		res.CancelCause = rep.CancelCause.Error()
	}
	if ce := rep.Counterexample; ce != nil {
		res.Counterexample = &Counterexample{
			Input:    ce.Input,
			Fidelity: ce.Fidelity,
			StateG:   ce.StateG,
			StateGp:  ce.StateGp,
		}
	}
	if rep.EC != nil {
		res.ECVerdict = rep.EC.Verdict.String()
		res.Timings.ECMS = float64(rep.EC.Runtime.Microseconds()) / 1e3
	}
	res.Timings.SimMS = float64(rep.SimTime.Microseconds()) / 1e3
	ddStats := rep.DD
	if rep.EC != nil {
		ddStats.Add(rep.EC.DD)
	}
	res.DD = wireDD(ddStats)
	res.Mem = wireMem(rep.Mem)
	return res
}

// retireJob records a finished async job for GET /v1/jobs/{id}, evicting the
// oldest finished jobs beyond the retention bound.  Evicted ids are kept in
// a bounded tombstone set so polls for them answer 410 job_evicted rather
// than 404, and their idempotency keys are released for reuse.
func (s *Server) retireJob(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if _, tracked := s.byID[j.id]; !tracked {
		return // sync job: never registered for async lookup
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.CompletedJobs {
		evict := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if ej := s.byID[evict]; ej != nil && ej.idemKey != "" && s.idemByKey[ej.idemKey] == evict {
			delete(s.idemByKey, ej.idemKey)
		}
		delete(s.byID, evict)
		s.markEvictedLocked(evict)
		s.metrics.evictedJob()
	}
}

// markEvictedLocked tombstones an evicted job id (jobsMu held).  The set is
// bounded well above the retention window; once an id ages out of it too,
// polls degrade from 410 back to 404, which is the honest answer for a
// client that stayed away that long.
func (s *Server) markEvictedLocked(id string) {
	s.evicted[id] = struct{}{}
	s.evictedOrder = append(s.evictedOrder, id)
	bound := 4 * s.cfg.CompletedJobs
	if bound < 1024 {
		bound = 1024
	}
	for len(s.evictedOrder) > bound {
		old := s.evictedOrder[0]
		s.evictedOrder = s.evictedOrder[1:]
		delete(s.evicted, old)
	}
}

// Shutdown drains the server: admission stops immediately (submit returns
// errDraining), queued and running jobs are given until ctx expires to
// finish, then the base context is cancelled with a *DrainError cause and
// the remaining checks stop at their next cooperative cancellation point.
// Shutdown returns nil on a clean drain and ctx.Err() when the deadline
// forced cancellation; it is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.admitMu.Lock()
		s.draining = true
		close(s.jobs)
		s.admitMu.Unlock()
	})

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	start := time.Now()
	select {
	case <-done:
		s.baseCancel(nil)
		s.closeJournal()
		return nil
	case <-ctx.Done():
		s.baseCancel(&DrainError{Waited: time.Since(start)})
		<-done // workers observe the cancellation and finish promptly
		s.closeJournal()
		return ctx.Err()
	}
}

// closeJournal syncs and closes the journal after the workers have stopped,
// so the last finished records reach the disk before the process exits.
func (s *Server) closeJournal() {
	if s.journal != nil {
		s.journal.close()
	}
}
