package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"qcec/internal/dd"
	"qcec/internal/resource"
)

// metrics is the server's aggregate telemetry, exposed at GET /metrics in
// the Prometheus text exposition format.  It is hand-rolled on purpose: the
// repo is stdlib-only, and the handful of counters and two histograms the
// daemon needs do not justify a client library.
type metrics struct {
	mu sync.Mutex

	submitted uint64
	completed uint64
	verdicts  map[string]uint64 // by wire verdict string
	wins      map[string]uint64 // definitive verdicts by deciding stage/prover
	rejected  map[string]uint64 // by rejection reason (queue_full, draining, ...)
	badReqs   uint64            // 4xx request failures (parse, size, QASM)
	panics    uint64            // recovered job panics
	cancelled uint64            // jobs stopped by deadline/disconnect/drain
	memTrips  uint64            // jobs stopped by the memory watchdog

	cacheHits   uint64 // verdicts served from the memoization cache
	cacheMisses uint64 // cache lookups that fell through to a real check

	retries       map[string]uint64 // transient re-runs by error class
	idemHits      uint64            // requests attached to an existing job by Idempotency-Key
	idemConflicts uint64            // keys reused for a different question (409)
	evictedJobs   uint64            // finished jobs aged out of retention

	batches     uint64 // POST /v1/batch requests accepted
	batchItems  uint64 // items across all accepted batches
	batchDedup  uint64 // items answered by another item's execution
	batchFailed uint64 // items that failed with an item-local typed error

	checkSeconds histogram // end-to-end check duration (excl. queueing)
	queueSeconds histogram // admission → worker pickup

	dd  dd.Stats       // summed across all finished jobs
	mem resource.Stats // folded watchdog counters (sums + worst peaks)
}

// histogram is a fixed-bucket cumulative histogram in seconds, matching the
// Prometheus convention (le-labelled cumulative buckets plus sum and count).
type histogram struct {
	buckets [len(bucketBounds)]uint64
	sum     float64
	count   uint64
}

// bucketBounds spans sub-millisecond trivial pairs to the server's maximum
// timeout; everything above falls into +Inf.
var bucketBounds = [...]float64{
	0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60,
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	h.sum += s
	h.count++
	for i, b := range bucketBounds {
		if s <= b {
			h.buckets[i]++
		}
	}
}

func newMetrics() *metrics {
	return &metrics{
		verdicts: make(map[string]uint64),
		wins:     make(map[string]uint64),
		rejected: make(map[string]uint64),
		retries:  make(map[string]uint64),
	}
}

func (m *metrics) jobRetry(class string) {
	m.mu.Lock()
	m.retries[class]++
	m.mu.Unlock()
}

func (m *metrics) idemHit() {
	m.mu.Lock()
	m.idemHits++
	m.mu.Unlock()
}

func (m *metrics) idemConflict() {
	m.mu.Lock()
	m.idemConflicts++
	m.mu.Unlock()
}

func (m *metrics) evictedJob() {
	// jobsMu is held by the caller; the metrics mutex is independent.
	m.mu.Lock()
	m.evictedJobs++
	m.mu.Unlock()
}

func (m *metrics) submittedJob() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *metrics) rejectedJob(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

func (m *metrics) badRequest() {
	m.mu.Lock()
	m.badReqs++
	m.mu.Unlock()
}

func (m *metrics) cacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

func (m *metrics) cacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

func (m *metrics) batchRequest(items, dedup, failed int) {
	m.mu.Lock()
	m.batches++
	m.batchItems += uint64(items)
	m.batchDedup += uint64(dedup)
	m.batchFailed += uint64(failed)
	m.mu.Unlock()
}

// finishedJob folds one completed job into the aggregates.
func (m *metrics) finishedJob(res *CheckResponse, queued, ran time.Duration, ddStats dd.Stats, mem *resource.Stats, panicked bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.verdicts[res.Verdict]++
	if res.DecidedBy != "" {
		m.wins[res.DecidedBy]++
	}
	if panicked {
		m.panics++
	}
	if res.Cancelled {
		m.cancelled++
	}
	m.checkSeconds.observe(ran)
	m.queueSeconds.observe(queued)
	m.dd.Add(ddStats)
	if mem != nil {
		m.mem.Add(*mem)
		if mem.HardTrips > 0 {
			m.memTrips++
		}
	}
}

// write emits the exposition text.  The caller supplies the live gauges and
// externally-owned counters the registry does not track itself (queue
// occupancy, in-flight workers, drain state, verdict-cache population and
// evictions, DD-pool activity).
func (m *metrics) write(w io.Writer, queueDepth, queueCap, inflight, workers int, draining bool,
	cacheSize int, cacheEvictions uint64, pool dd.PoolStats, journalOn bool, js journalStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	gauge("qcecd_queue_depth", "Admitted jobs waiting for a worker.", queueDepth)
	gauge("qcecd_queue_capacity", "Queue depth at which admission rejects.", queueCap)
	gauge("qcecd_inflight_checks", "Checks currently executing.", inflight)
	gauge("qcecd_workers", "Configured worker-pool size.", workers)
	d := 0
	if draining {
		d = 1
	}
	gauge("qcecd_draining", "1 while the server drains for shutdown.", d)

	counter("qcecd_jobs_submitted_total", "Jobs admitted to the queue.", m.submitted)
	counter("qcecd_jobs_completed_total", "Jobs finished (any verdict).", m.completed)

	fmt.Fprintf(w, "# HELP qcecd_checks_total Completed checks by verdict.\n# TYPE qcecd_checks_total counter\n")
	for _, v := range sortedKeys(m.verdicts) {
		fmt.Fprintf(w, "qcecd_checks_total{verdict=%q} %d\n", v, m.verdicts[v])
	}
	fmt.Fprintf(w, "# HELP qcecd_wins_total Definitive verdicts by the flow stage or prover that decided them.\n# TYPE qcecd_wins_total counter\n")
	for _, p := range sortedKeys(m.wins) {
		fmt.Fprintf(w, "qcecd_wins_total{prover=%q} %d\n", p, m.wins[p])
	}
	fmt.Fprintf(w, "# HELP qcecd_rejected_total Requests rejected at admission by reason.\n# TYPE qcecd_rejected_total counter\n")
	for _, r := range sortedKeys(m.rejected) {
		fmt.Fprintf(w, "qcecd_rejected_total{reason=%q} %d\n", r, m.rejected[r])
	}

	counter("qcecd_cache_hits_total", "Checks answered from the verdict cache.", m.cacheHits)
	counter("qcecd_cache_misses_total", "Cache lookups that required a real check.", m.cacheMisses)
	counter("qcecd_cache_evictions_total", "Verdicts evicted by the LRU bound.", cacheEvictions)
	gauge("qcecd_cache_size", "Verdicts currently cached.", cacheSize)

	counter("qcecd_batches_total", "Batch requests accepted.", m.batches)
	counter("qcecd_batch_items_total", "Items across all accepted batches.", m.batchItems)
	counter("qcecd_batch_dedup_total", "Batch items answered by another item's execution.", m.batchDedup)
	counter("qcecd_batch_item_errors_total", "Batch items failed with an item-local error.", m.batchFailed)

	counter("qcecd_dd_pool_gets_total", "DD packages handed to jobs.", pool.Gets)
	counter("qcecd_dd_pool_reuses_total", "Of those, warm packages served from the pool.", pool.Reuses)
	counter("qcecd_dd_pool_discards_total", "Returned packages dropped by the per-bucket bound.", pool.Discards)
	counter("qcecd_dd_pool_forgotten_total", "Suspect packages dropped after recovered panics.", pool.Forgotten)
	gauge("qcecd_dd_pool_idle", "Warm packages currently pooled.", pool.Idle)

	counter("qcecd_bad_requests_total", "Requests failed before admission (parse, size, QASM).", m.badReqs)
	counter("qcecd_panics_recovered_total", "Job panics recovered by worker isolation.", m.panics)
	counter("qcecd_jobs_cancelled_total", "Jobs stopped by deadline, disconnect or drain.", m.cancelled)
	counter("qcecd_mem_limit_stops_total", "Jobs stopped by the memory watchdog's hard limit.", m.memTrips)

	fmt.Fprintf(w, "# HELP qcecd_job_retries_total Transient job failures re-run under a degraded budget, by error class.\n# TYPE qcecd_job_retries_total counter\n")
	for _, c := range sortedKeys(m.retries) {
		fmt.Fprintf(w, "qcecd_job_retries_total{class=%q} %d\n", c, m.retries[c])
	}
	counter("qcecd_idempotent_hits_total", "Requests attached to an existing job via Idempotency-Key.", m.idemHits)
	counter("qcecd_idempotency_conflicts_total", "Idempotency-Key reuses for a different question (409).", m.idemConflicts)
	counter("qcecd_jobs_evicted_total", "Finished jobs aged out of the retention window.", m.evictedJobs)

	if journalOn {
		counter("qcecd_journal_appends_total", "Records appended to the job journal.", js.Appends)
		counter("qcecd_journal_append_errors_total", "Journal appends that failed to reach the file.", js.AppendErrors)
		counter("qcecd_journal_syncs_total", "Journal group-commit fsyncs.", js.Syncs)
		counter("qcecd_journal_replayed_records", "Journal records replayed at the last startup.", js.Replayed)
		counter("qcecd_journal_recovered_jobs", "Finished jobs served from the journal at the last startup.", js.Recovered)
		counter("qcecd_journal_requeued_jobs", "Unfinished jobs re-enqueued at the last startup.", js.Requeued)
		counter("qcecd_journal_torn_tails", "1 when the last startup truncated a damaged journal tail.", js.TornTails)
		counter("qcecd_journal_skipped_records", "CRC-valid journal records with undecodable payloads.", js.Skipped)
	}

	writeHistogram(w, "qcecd_check_duration_seconds", "End-to-end check duration, excluding queueing.", &m.checkSeconds)
	writeHistogram(w, "qcecd_queue_wait_seconds", "Time between admission and worker pickup.", &m.queueSeconds)

	// DD-engine aggregates across all finished jobs.
	counter("qcecd_dd_gate_cache_hits_total", "Gate-DD cache hits.", m.dd.GateHits)
	counter("qcecd_dd_gate_cache_misses_total", "Gate-DD cache misses.", m.dd.GateMisses)
	counter("qcecd_dd_compute_hits_total", "Compute-table hits.", m.dd.CacheHits)
	counter("qcecd_dd_compute_misses_total", "Compute-table misses.", m.dd.CacheMisses)
	counter("qcecd_dd_apply_calls_total", "Direct-kernel gate applications.", m.dd.ApplyCalls)
	counter("qcecd_dd_nodes_created_total", "DD nodes created.", m.dd.NodesCreated)
	counter("qcecd_dd_gc_runs_total", "DD garbage collections.", m.dd.GCRuns)
	counter("qcecd_dd_gc_reclaimed_total", "DD nodes reclaimed by collections.", m.dd.GCReclaimed)
	counter("qcecd_dd_pressure_gcs_total", "DD collections forced by memory pressure.", m.dd.PressureGCs)

	// Watchdog aggregates: trip counters sum; peaks are the worst single job.
	counter("qcecd_watchdog_soft_trips_total", "Memory watchdog soft-limit responses.", m.mem.SoftTrips)
	counter("qcecd_watchdog_hard_trips_total", "Memory watchdog hard-limit cancellations.", m.mem.HardTrips)
	gauge("qcecd_watchdog_peak_heap_bytes", "Largest per-job sampled heap.", m.mem.PeakHeapBytes)
	gauge("qcecd_watchdog_peak_dd_nodes", "Largest per-job sampled DD occupancy.", m.mem.PeakDDNodes)
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	// observe() increments every bucket the sample fits in, so the stored
	// counts are already cumulative, as the exposition format requires.
	for i, b := range bucketBounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), h.buckets[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

func sortedKeys(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
