package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"qcec/internal/core"
	"qcec/internal/faultinject"
)

// Chaos tests: injected faults inside the checking engine must surface as a
// typed verdict:"error" response on the one affected request, while the
// daemon keeps serving.  faultinject's hooks are process-global, so these
// tests never run in parallel.

func TestChaosInjectedPanicIsContained(t *testing.T) {
	// MaxJobRetries -1 turns the retry layer off: this test exercises the
	// bare containment path (retry-driven self-healing has its own tests).
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobRetries: -1})

	deactivate := faultinject.Activate(faultinject.Spec{Class: faultinject.PanicAtApply, Once: true})
	defer deactivate()

	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (the daemon answers even for a crashed check); body %s",
			resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictError {
		t.Fatalf("verdict = %q, want %q (body %s)", res.Verdict, VerdictError, data)
	}
	if !strings.Contains(res.Error, "panic") {
		t.Errorf("error = %q, want the recovered panic surfaced", res.Error)
	}

	// The fault was Once: the next request on the same daemon must succeed.
	resp, data = postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status = %d; body %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictEquivalent {
		t.Fatalf("post-fault verdict = %q, want %q", res.Verdict, VerdictEquivalent)
	}
}

// TestWorkerPanicIsolation covers the server's own recover barrier: an
// executor panic that the checking engine did not catch still becomes a
// typed error response, the worker survives, and the panic is counted.
func TestWorkerPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobRetries: -1})
	first := true
	s.exec = func(j *job) core.Report {
		if first {
			first = false
			panic("synthetic executor fault")
		}
		return core.Report{}
	}

	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictError || !strings.Contains(res.Error, "synthetic executor fault") {
		t.Fatalf("result = %+v, want verdict error carrying the panic", res)
	}

	// Same single worker, next request: the pool survived the panic.
	resp, data = postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d; body %s", resp.StatusCode, data)
	}

	_, body := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "qcecd_panics_recovered_total 1") {
		t.Errorf("metrics missing qcecd_panics_recovered_total 1")
	}
	if !strings.Contains(string(body), `qcecd_checks_total{verdict="error"} 1`) {
		t.Errorf("metrics missing the error-verdict count")
	}
}
