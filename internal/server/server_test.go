package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qcec/internal/core"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

const bellQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`

// bellFlippedQASM differs from bellQASM by a trailing X — a non-equivalent
// pair any single stimulus distinguishes.
const bellFlippedQASM = bellQASM + "x q[0];\n"

// newTestServer starts a server plus an HTTP front for it and tears both
// down (drain first, then the listener) at test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func checkBody(g, gp string) string {
	b, _ := json.Marshal(CheckRequest{G: g, Gp: gp})
	return string(b)
}

func TestCheckEquivalentPair(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.Verdict != VerdictEquivalent {
		t.Fatalf("verdict = %q, want %q (body %s)", res.Verdict, VerdictEquivalent, data)
	}
	if res.NumSims == 0 {
		t.Errorf("NumSims = 0, want > 0")
	}
	// On 2 qubits DefaultR exceeds 2^n, so the simulations are exhaustive and
	// already prove equivalence without the complete routine.
	if !res.Exhaustive {
		t.Errorf("Exhaustive = false, want exhaustive coverage on 2 qubits")
	}
	if res.DD == nil || res.DD.ApplyCalls == 0 {
		t.Errorf("DD stats missing or empty: %+v", res.DD)
	}
	if res.Timings.TotalMS <= 0 {
		t.Errorf("Timings.TotalMS = %v, want > 0", res.Timings.TotalMS)
	}
}

func TestCheckNotEquivalentPair(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellFlippedQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.Verdict != VerdictNotEquivalent {
		t.Fatalf("verdict = %q, want %q (body %s)", res.Verdict, VerdictNotEquivalent, data)
	}
	if res.Counterexample == nil {
		t.Fatalf("counterexample missing from a not_equivalent verdict")
	}
	if res.Counterexample.Fidelity >= 1 {
		t.Errorf("counterexample fidelity = %v, want < 1", res.Counterexample.Fidelity)
	}
}

// TestRequestValidation is the 4xx table: every malformed request must come
// back as a typed JSON error with the documented code, and must never reach
// the queue.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      1,
		MaxBodyBytes: 2048,
		MaxQubits:    4,
		MaxGates:     3,
	})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"not json", "hello", http.StatusBadRequest, CodeBadRequest},
		{"missing gp", `{"g": "OPENQASM 2.0;\nqreg q[1];\n"}`, http.StatusBadRequest, CodeBadRequest},
		{"malformed qasm", checkBody("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n", bellQASM), http.StatusBadRequest, CodeBadQASM},
		{"bad strategy", `{"g":` + quote(bellQASM) + `,"gp":` + quote(bellQASM) + `,"options":{"strategy":"magic"}}`, http.StatusBadRequest, CodeBadRequest},
		{"oversized body", checkBody(bellQASM+strings.Repeat("// padding\n", 400), bellQASM), http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
		{"too many qubits", checkBody(ghzQASM(5), ghzQASM(5)), http.StatusRequestEntityTooLarge, CodeCircuitTooLarge},
		{"too many gates", checkBody(bellQASM+"x q[0];\nx q[0];\n", bellQASM), http.StatusRequestEntityTooLarge, CodeCircuitTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/check", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.wantStatus, data)
			}
			var eb ErrorBody
			if err := json.Unmarshal(data, &eb); err != nil {
				t.Fatalf("error body is not the typed shape: %v (%s)", err, data)
			}
			if eb.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (message %q)", eb.Error.Code, tc.wantCode, eb.Error.Message)
			}
			if eb.Error.Message == "" {
				t.Errorf("empty error message")
			}
		})
	}
}

// TestQueueFullRejects fills the pool (1 worker blocked, 1 queue slot) and
// asserts the next request is shed with 429 + Retry-After, then drains
// cleanly once the blockage lifts.
func TestQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	started := make(chan struct{}, 4)
	block := make(chan struct{})
	s.exec = func(j *job) core.Report {
		started <- struct{}{}
		<-block
		return core.Report{}
	}
	defer close(block)

	// First job: admitted and picked up by the only worker.
	resp, data := postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status = %d, want 202; body %s", resp.StatusCode, data)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up job 1")
	}
	// Second job: fills the single queue slot.
	resp, data = postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status = %d, want 202; body %s", resp.StatusCode, data)
	}
	// Third job: no room — must be shed, not queued.
	resp, data = postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429; body %s", resp.StatusCode, data)
	}
	// The hint is jittered ±25% around the configured 2s and rounded up to
	// whole seconds, so any value in [2, 3] is in-contract.
	if ra := resp.Header.Get("Retry-After"); ra != "2" && ra != "3" {
		t.Errorf("Retry-After = %q, want 2 or 3 (2s base with ±25%% jitter)", ra)
	}
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code != CodeQueueFull {
		t.Errorf("rejection body = %s, want code %q", data, CodeQueueFull)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellFlippedQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202; body %s", resp.StatusCode, data)
	}
	var jr JobResponse
	if err := json.Unmarshal(data, &jr); err != nil || jr.JobID == "" {
		t.Fatalf("bad 202 body %s (err %v)", data, err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, body := getJSON(t, ts.URL+"/v1/jobs/"+jr.JobID)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d; body %s", r.StatusCode, body)
		}
		var cur JobResponse
		if err := json.Unmarshal(body, &cur); err != nil {
			t.Fatalf("poll unmarshal: %v", err)
		}
		if cur.Status == StatusDone {
			if cur.Result == nil || cur.Result.Verdict != VerdictNotEquivalent {
				t.Fatalf("done result = %+v, want not_equivalent", cur.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after 10s", cur.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown ids are a typed 404.
	r, body := getJSON(t, ts.URL+"/v1/jobs/nope")
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", r.StatusCode)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != CodeNotFound {
		t.Errorf("404 body = %s, want code %q", body, CodeNotFound)
	}
}

// TestCompletedJobEviction bounds the async-result retention.
func TestCompletedJobEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CompletedJobs: 2})
	s.exec = func(j *job) core.Report { return core.Report{} }
	var ids []string
	for i := 0; i < 4; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d status = %d; body %s", i, resp.StatusCode, data)
		}
		var jr JobResponse
		if err := json.Unmarshal(data, &jr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jr.JobID)
	}
	waitDone(t, ts, ids[len(ids)-1])
	// Handler table for the three lookup outcomes: evicted ids answer a
	// typed 410 (the id was real, the result aged out), retained ids answer
	// 200, and ids never issued answer 404.
	cases := []struct {
		id         string
		wantStatus int
		wantCode   string
	}{
		{ids[0], http.StatusGone, CodeJobEvicted},
		{ids[1], http.StatusGone, CodeJobEvicted},
		{ids[2], http.StatusOK, ""},
		{ids[3], http.StatusOK, ""},
		{"j99999999", http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		r, body := getJSON(t, ts.URL+"/v1/jobs/"+tc.id)
		if r.StatusCode != tc.wantStatus {
			t.Errorf("job %s: status %d, want %d (body %s)", tc.id, r.StatusCode, tc.wantStatus, body)
			continue
		}
		if tc.wantCode == "" {
			continue
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != tc.wantCode {
			t.Errorf("job %s: body = %s, want code %q", tc.id, body, tc.wantCode)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	r, body := getJSON(t, ts.URL+"/healthz")
	if r.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q, want 200 ok", r.StatusCode, body)
	}

	if resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM)); resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d; body %s", resp.StatusCode, data)
	}
	r, body = getJSON(t, ts.URL+"/metrics")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", r.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`qcecd_checks_total{verdict="equivalent"} 1`,
		"qcecd_jobs_submitted_total 1",
		"qcecd_jobs_completed_total 1",
		"qcecd_queue_capacity",
		"qcecd_workers 1",
		"qcecd_check_duration_seconds_count 1",
		"qcecd_dd_apply_calls_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Draining flips healthz to 503 and the gauge to 1.
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r, _ = getJSON(t, ts.URL+"/healthz")
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", r.StatusCode)
	}
	_, body = getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "qcecd_draining 1") {
		t.Errorf("metrics missing qcecd_draining 1 after Shutdown")
	}
	// New work is refused with the draining code.
	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("check while draining = %d, want 503; body %s", resp.StatusCode, data)
	}
}

// TestRequestTimeoutCancelsJob bounds a slow check by the request's own
// timeout_ms and reports the cancellation rather than hanging.
func TestRequestTimeoutCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.exec = func(j *job) core.Report {
		// Respect the per-job deadline like the real flow does.
		o := j.req.Options
		timeout := time.Duration(o.TimeoutMS) * time.Millisecond
		select {
		case <-j.ctx.Done():
		case <-time.After(timeout):
		}
		return core.Report{Verdict: core.ProbablyEquivalent, Cancelled: true}
	}
	body := `{"g":` + quote(bellQASM) + `,"gp":` + quote(bellQASM) + `,"options":{"timeout_ms":50}}`
	resp, data := postJSON(t, ts.URL+"/v1/check", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.Verdict != VerdictProbablyEquivalent {
		t.Errorf("result = %+v, want cancelled probably_equivalent", res)
	}
}

// --- helpers ---

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func waitDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
		var jr JobResponse
		if json.Unmarshal(body, &jr) == nil && jr.Status == StatusDone {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func ghzQASM(n int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\nh q[0];\n", n)
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "cx q[%d],q[%d];\n", i, i+1)
	}
	return b.String()
}
