package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qcec/internal/core"
)

// postWithKey POSTs body with an Idempotency-Key header.
func postWithKey(t *testing.T, url, body, key string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(IdempotencyKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestIdempotencyKeySameJob: resubmitting with the same key returns the
// original job id (and, once done, the same verdict), not new work.
func TestIdempotencyKeySameJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := postWithKey(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM), "ci-run-42")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d; body %s", resp.StatusCode, data)
	}
	var first JobResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, first.JobID)

	resp, data = postWithKey(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM), "ci-run-42")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit = %d; body %s", resp.StatusCode, data)
	}
	var second JobResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if second.JobID != first.JobID {
		t.Errorf("resubmit job id = %s, want the original %s", second.JobID, first.JobID)
	}
	if second.Status != StatusDone || second.Result == nil {
		t.Errorf("resubmit status = %s (result %v), want done with the verdict inline",
			second.Status, second.Result)
	}

	_, body := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "qcecd_idempotent_hits_total 1") {
		t.Errorf("metrics missing the idempotent hit")
	}
}

// TestIdempotencyKeyConflict: the same key with a different question is a
// typed 409, not silent reuse of the wrong answer.
func TestIdempotencyKeyConflict(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postWithKey(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM), "k1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body %s", resp.StatusCode, data)
	}
	resp, data = postWithKey(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellFlippedQASM), "k1")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting resubmit = %d, want 409; body %s", resp.StatusCode, data)
	}
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code != CodeIdemConflict {
		t.Errorf("409 body = %s, want code %q", data, CodeIdemConflict)
	}
}

// TestIdempotentSyncCheck: /v1/check with a key registers the job, so a
// second keyed call attaches to the same execution and returns the same id.
func TestIdempotentSyncCheck(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, data := postWithKey(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM), "sync-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check = %d; body %s", resp.StatusCode, data)
	}
	var first CheckResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	resp, data = postWithKey(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM), "sync-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed re-check = %d; body %s", resp.StatusCode, data)
	}
	var second CheckResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if second.JobID != first.JobID {
		t.Errorf("re-check job id = %s, want %s", second.JobID, first.JobID)
	}
	if second.Verdict != first.Verdict {
		t.Errorf("re-check verdict = %s, want %s", second.Verdict, first.Verdict)
	}
}

// restartableServer builds a server over dir's journal plus an HTTP front,
// returning a shutdown function that simulates a graceful restart boundary.
func restartableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	cfg.JournalDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	stop := func() {
		ts.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}
	return s, ts, stop
}

// TestJournalRestartServesFinishedVerdicts: finished jobs and their
// idempotency keys survive a graceful restart — polls and keyed resubmits
// land on the same job id and verdict with zero re-execution.
func TestJournalRestartServesFinishedVerdicts(t *testing.T) {
	dir := t.TempDir()

	_, ts, stop := restartableServer(t, dir, Config{Workers: 2})
	resp, data := postWithKey(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellFlippedQASM), "key-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body %s", resp.StatusCode, data)
	}
	var jr JobResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, jr.JobID)
	_, body := getJSON(t, ts.URL+"/v1/jobs/"+jr.JobID)
	var before JobResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	stop()

	// Restart over the same journal.
	s2, ts2, stop2 := restartableServer(t, dir, Config{Workers: 2})
	defer stop2()
	calls := 0
	s2.exec = func(j *job) core.Report { calls++; return core.Report{} }

	_, body = getJSON(t, ts2.URL+"/v1/jobs/"+jr.JobID)
	var after JobResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatalf("poll after restart: %v (body %s)", err, body)
	}
	if after.Status != StatusDone || after.Result == nil {
		t.Fatalf("after restart: status %s result %v, want the journaled verdict", after.Status, after.Result)
	}
	if after.Result.Verdict != before.Result.Verdict {
		t.Errorf("verdict flipped across restart: %s → %s", before.Result.Verdict, after.Result.Verdict)
	}

	// The idempotency key points at the recovered job, not new work.
	resp, data = postWithKey(t, ts2.URL+"/v1/jobs", checkBody(bellQASM, bellFlippedQASM), "key-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("keyed resubmit = %d; body %s", resp.StatusCode, data)
	}
	var re JobResponse
	if err := json.Unmarshal(data, &re); err != nil {
		t.Fatal(err)
	}
	if re.JobID != jr.JobID {
		t.Errorf("resubmit id = %s, want recovered %s", re.JobID, jr.JobID)
	}
	if calls != 0 {
		t.Errorf("recovered verdict re-executed %d times, want 0", calls)
	}
}

// TestJournalRestartFreshIDsDoNotCollide: after recovery the id counter sits
// past every journaled id, so new submissions cannot collide with recovered
// jobs.
func TestJournalRestartFreshIDsDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	_, ts, stop := restartableServer(t, dir, Config{Workers: 1})
	resp, data := postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body %s", resp.StatusCode, data)
	}
	var first JobResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, first.JobID)
	stop()

	_, ts2, stop2 := restartableServer(t, dir, Config{Workers: 1})
	defer stop2()
	resp, data = postJSON(t, ts2.URL+"/v1/jobs", checkBody(bellQASM, bellFlippedQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restart submit = %d; body %s", resp.StatusCode, data)
	}
	var fresh JobResponse
	if err := json.Unmarshal(data, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.JobID == first.JobID {
		t.Fatalf("fresh job reused recovered id %s", fresh.JobID)
	}
}

// TestJournalReplayTolerantOfGarbageTail: a torn, garbage-extended journal
// still recovers every complete record, and the truncated file accepts new
// appends afterwards.
func TestJournalReplayTolerantOfGarbageTail(t *testing.T) {
	dir := t.TempDir()
	_, ts, stop := restartableServer(t, dir, Config{Workers: 1})
	resp, data := postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body %s", resp.StatusCode, data)
	}
	var jr JobResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, jr.JobID)
	stop()

	// Simulate a crash mid-append: garbage bytes on the tail.
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, ts2, stop2 := restartableServer(t, dir, Config{Workers: 1})
	defer stop2()
	if s2.journal.tornTails != 1 {
		t.Errorf("torn tail not detected on replay")
	}
	_, body := getJSON(t, ts2.URL+"/v1/jobs/"+jr.JobID)
	var after JobResponse
	if err := json.Unmarshal(body, &after); err != nil || after.Status != StatusDone {
		t.Fatalf("recovered job after torn tail: %s", body)
	}
	// The journal must accept appends again (truncation repositioned it).
	resp, data = postJSON(t, ts2.URL+"/v1/jobs", checkBody(bellQASM, bellFlippedQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-repair submit = %d; body %s", resp.StatusCode, data)
	}
}
