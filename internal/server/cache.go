package server

import (
	"container/list"
	"sync"

	"qcec/internal/fingerprint"
)

// Verdict memoization.  Compiler CI re-verifies the same compiled artifact
// many times (every rebuild, every fan-out of the same pipeline), and a
// definitive verdict is a pure function of the question: the circuit pair,
// the checking strategy, the DD weight tolerance, and the phase convention.
// The cache keys on exactly those — see cacheKey — and stores only verdicts
// that cannot be invalidated by retrying:
//
//   - equivalent / equivalent_up_to_phase / not_equivalent are facts about
//     the pair and are safe to replay forever;
//   - probably_equivalent depends on how many stimuli the request bought
//     (options.r), errors and cancellations depend on load and limits, so
//     none of those are ever stored (and a later, luckier run can upgrade
//     the answer).
//
// Approximate checking (fidelity_threshold > 0) redefines what
// not_equivalent means per request, so those jobs bypass the cache entirely
// in both directions.

// cacheKey identifies a checking question.  Strategy is the normalized wire
// name ("" already folded to "proportional") — the strategy cannot change a
// correct checker's verdict, but it is part of the key so a strategy-specific
// bug can never poison answers for the default path.  Tolerance is in the key
// because it parameterizes the equivalence relation itself (what counts as
// "the same state"); upToPhase likewise.
type cacheKey struct {
	pair      fingerprint.Digest
	strategy  string
	tolerance float64
	upToPhase bool
}

// verdictCache is a bounded LRU over definitive check responses, safe for
// concurrent use.  Entries store a value copy of the response with the
// per-execution fields (job id, timings, DD/memory telemetry) already
// stripped; get returns a private copy so handlers can stamp their own job id
// without racing other readers.
type verdictCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key cacheKey
	res CheckResponse
}

// newVerdictCache returns a cache bounded to capacity entries; nil (cache
// disabled) when capacity <= 0.
func newVerdictCache(capacity int) *verdictCache {
	if capacity <= 0 {
		return nil
	}
	return &verdictCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns a copy of the cached response for key, if any.
func (c *verdictCache) get(key cacheKey) (CheckResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return CheckResponse{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a response under key, evicting the least recently used entry
// when the cache is full.  The caller must pass a response that cacheable()
// accepted; put strips the per-execution fields before storing.
func (c *verdictCache) put(key cacheKey, res CheckResponse) {
	res.JobID = ""
	res.Timings = Timings{}
	res.DD = nil
	res.Mem = nil
	res.Attempts = 0
	res.Cached = true

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Two workers can race the same uncached question; either answer is
		// the same fact, so last-write-wins is fine.
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
}

// stats returns the current population and the eviction count.
func (c *verdictCache) stats() (size int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.evictions
}

// cacheable reports whether res is a definitive answer worth memoizing: a
// verdict that retrying could never change, from a job that ran to a clean
// completion.
func cacheable(res *CheckResponse) bool {
	if res.Cancelled || res.Error != "" {
		return false
	}
	switch res.Verdict {
	case VerdictEquivalent, VerdictEquivalentUpToPhas, VerdictNotEquivalent:
		return true
	default:
		return false
	}
}
