package server

import (
	"qcec/internal/core"
	"qcec/internal/dd"
	"qcec/internal/resource"
)

// This file defines the JSON wire types of the qcecd HTTP API.  Every field
// is plain data so responses marshal without touching checker internals.

// CheckOptions is the per-request knob subset of core.Options.  Zero values
// mean "server default"; the server clamps every field against its admission
// limits before a job is accepted.
type CheckOptions struct {
	// R is the number of random basis-state simulations (0 = core.DefaultR).
	R int `json:"r,omitempty"`
	// Seed drives stimulus selection; runs are deterministic per seed.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS bounds the whole check in milliseconds (0 = server default;
	// capped at the server's max).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallel is the simulation-stage worker count (0 or 1 = sequential;
	// capped at the server's per-job parallelism limit).
	Parallel int `json:"parallel,omitempty"`
	// Strategy selects the complete routine's gate order:
	// proportional|construction|sequential|lookahead|gate_cost|stabilizer
	// ("" = proportional; "gate-cost", "gatecost" and "compilation_flow"
	// are accepted aliases of gate_cost and share its cache entries).
	Strategy string `json:"strategy,omitempty"`
	// NodeLimit bounds the complete routine's DD size (0 = none).
	NodeLimit int `json:"node_limit,omitempty"`
	// UpToGlobalPhase accepts a scalar phase between the circuits.
	UpToGlobalPhase bool `json:"up_to_phase,omitempty"`
	// SimOnly skips the complete routine (simulation stage only).
	SimOnly bool `json:"sim_only,omitempty"`
	// FidelityThreshold enables approximate checking (see core.Options).
	FidelityThreshold float64 `json:"fidelity_threshold,omitempty"`
	// Tolerance overrides the DD weight tolerance (0 = server default,
	// 1e-10).  It parameterizes the equivalence relation, so it is part of
	// the verdict-cache key.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// CheckRequest is the body of POST /v1/check and POST /v1/jobs.
type CheckRequest struct {
	// G and Gp are the two circuits as OpenQASM 2.0 source text.
	G  string `json:"g"`
	Gp string `json:"gp"`
	// Options tunes the check; the zero value uses server defaults.
	Options CheckOptions `json:"options"`
}

// Counterexample is a distinguishing stimulus in a CheckResponse.
type Counterexample struct {
	Input    uint64  `json:"input"`
	Fidelity float64 `json:"fidelity"`
	StateG   string  `json:"state_g,omitempty"`
	StateGp  string  `json:"state_gp,omitempty"`
}

// Timings reports where a job's wall-clock time went, in milliseconds.
type Timings struct {
	// QueueMS is the time between admission and a worker picking the job up.
	QueueMS float64 `json:"queue_ms"`
	// SimMS is the simulation stage (paper column t_sim).
	SimMS float64 `json:"sim_ms"`
	// ECMS is the complete routine (paper column t_ec; 0 if it never ran).
	ECMS float64 `json:"ec_ms"`
	// TotalMS is the whole check, excluding queueing.
	TotalMS float64 `json:"total_ms"`
}

// DDStats is the wire shape of the DD telemetry attached to a response
// (simulation stage plus complete routine, summed).
type DDStats struct {
	GateHits      uint64 `json:"gate_hits"`
	GateMisses    uint64 `json:"gate_misses"`
	ComputeHits   uint64 `json:"compute_hits"`
	ComputeMisses uint64 `json:"compute_misses"`
	ApplyCalls    uint64 `json:"apply_calls"`
	ApplyHits     uint64 `json:"apply_hits"`
	NodesCreated  uint64 `json:"nodes_created"`
	GCRuns        int    `json:"gc_runs"`
	GCReclaimed   uint64 `json:"gc_reclaimed"`
	PressureGCs   uint64 `json:"pressure_gcs,omitempty"`
}

// WatchdogStats is the wire shape of the per-job memory watchdog counters
// (present only when the server runs jobs under a memory budget).
type WatchdogStats struct {
	Samples       uint64 `json:"samples"`
	SoftTrips     uint64 `json:"soft_trips"`
	HardTrips     uint64 `json:"hard_trips"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	PeakDDNodes   int64  `json:"peak_dd_nodes"`
}

// Verdict wire strings.  VerdictError is the service-level outcome for a
// check that failed rather than finished (recovered panic, degenerate
// input); the daemon itself stays healthy.
const (
	VerdictEquivalent         = "equivalent"
	VerdictEquivalentUpToPhas = "equivalent_up_to_phase"
	VerdictNotEquivalent      = "not_equivalent"
	VerdictProbablyEquivalent = "probably_equivalent"
	VerdictError              = "error"
)

// CheckResponse is the result of one equivalence check.
type CheckResponse struct {
	JobID   string `json:"job_id"`
	Verdict string `json:"verdict"`
	// NumSims is the number of basis-state simulations actually evaluated.
	NumSims int `json:"num_sims"`
	// Exhaustive reports that the simulations covered all 2^n basis states.
	Exhaustive  bool    `json:"exhaustive,omitempty"`
	MinFidelity float64 `json:"min_fidelity"`
	// ECVerdict is the complete routine's own verdict, when it ran.
	ECVerdict string `json:"ec_verdict,omitempty"`
	// DecidedBy names the flow stage that produced a definitive verdict —
	// "rewrite", "zx", "sim", or "ec:<strategy>" (e.g. "ec:stabilizer");
	// empty for inconclusive outcomes.
	DecidedBy      string          `json:"decided_by,omitempty"`
	Counterexample *Counterexample `json:"counterexample,omitempty"`
	// Cancelled + CancelCause report a check stopped by its deadline, the
	// memory watchdog, a client disconnect, or a server drain.
	Cancelled   bool   `json:"cancelled,omitempty"`
	CancelCause string `json:"cancel_cause,omitempty"`
	// Error carries the typed failure of a VerdictError outcome.
	Error   string         `json:"error,omitempty"`
	Timings Timings        `json:"timings"`
	DD      *DDStats       `json:"dd,omitempty"`
	Mem     *WatchdogStats `json:"mem,omitempty"`
	// Cached marks a verdict served from the memoization cache (or, inside
	// a batch, deduplicated onto another item's execution) instead of a
	// fresh check; cached responses carry no DD or memory telemetry.
	Cached bool `json:"cached,omitempty"`
	// Attempts is the number of execution attempts the job took (present
	// only when > 1: the retry classifier re-ran a transient failure).
	Attempts int `json:"attempts,omitempty"`
}

// Job status wire strings.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
)

// JobResponse is the body of POST /v1/jobs (202) and GET /v1/jobs/{id}.
type JobResponse struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
	// Result is present once Status is done.
	Result *CheckResponse `json:"result,omitempty"`
}

// Error codes of ErrorBody, stable for programmatic clients.
const (
	CodeBadRequest      = "bad_request"
	CodeBadQASM         = "bad_qasm"
	CodeBodyTooLarge    = "body_too_large"
	CodeCircuitTooLarge = "circuit_too_large"
	CodeQueueFull       = "queue_full"
	CodeDraining        = "draining"
	CodeNotFound        = "not_found"
	CodeBatchTooLarge   = "batch_too_large"
	CodeCancelled       = "cancelled"
	// CodeJobEvicted (410): the job id existed but its result aged out of
	// the bounded retention window — resubmit, don't keep polling.  Distinct
	// from CodeNotFound (404), which means the id was never issued here.
	CodeJobEvicted = "job_evicted"
	// CodeIdemConflict (409): the Idempotency-Key was already used for a
	// different question (different circuit pair or options).
	CodeIdemConflict = "idempotency_conflict"
	// CodeJournal (500): the durable journal could not persist the job, so
	// accepting it would silently drop the durability guarantee.
	CodeJournal = "journal_error"
)

// IdempotencyKeyHeader is the request header that opts a /v1/check or
// /v1/jobs submission into idempotent at-least-once semantics: resubmitting
// with the same key (same question) returns the original job — same id,
// same verdict — instead of new work, including across a daemon restart
// when the journal is enabled.
const IdempotencyKeyHeader = "Idempotency-Key"

// BatchRequest is the body of POST /v1/batch: up to Config.MaxBatchItems
// independent check requests answered in one round trip.
type BatchRequest struct {
	Items []CheckRequest `json:"items"`
}

// BatchItemResult is the outcome of one batch item: exactly one of Result
// and Error is set.  Invalid items (bad QASM, oversized circuit) fail
// item-locally with the same typed codes the single-check endpoint uses as
// HTTP statuses; they never fail the whole batch.
type BatchItemResult struct {
	Index  int            `json:"index"`
	Result *CheckResponse `json:"result,omitempty"`
	Error  *ErrorDetail   `json:"error,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch response.  Items are in
// request order.  Deduplicated reports how many items shared another item's
// fingerprint and were answered by its execution.
type BatchResponse struct {
	Items        []BatchItemResult `json:"items"`
	Checked      int               `json:"checked"`
	Deduplicated int               `json:"deduplicated"`
	CacheHits    int               `json:"cache_hits"`
	Failed       int               `json:"failed"`
}

// ErrorBody is the JSON shape of every non-2xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the typed error payload.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// wireVerdict maps a flow verdict to its wire string.
func wireVerdict(v core.Verdict) string {
	switch v {
	case core.Equivalent:
		return VerdictEquivalent
	case core.EquivalentUpToGlobalPhase:
		return VerdictEquivalentUpToPhas
	case core.NotEquivalent:
		return VerdictNotEquivalent
	default:
		return VerdictProbablyEquivalent
	}
}

// wireDD converts DD telemetry to its wire shape.
func wireDD(s dd.Stats) *DDStats {
	return &DDStats{
		GateHits:      s.GateHits,
		GateMisses:    s.GateMisses,
		ComputeHits:   s.CacheHits,
		ComputeMisses: s.CacheMisses,
		ApplyCalls:    s.ApplyCalls,
		ApplyHits:     s.ApplyHits,
		NodesCreated:  s.NodesCreated,
		GCRuns:        s.GCRuns,
		GCReclaimed:   s.GCReclaimed,
		PressureGCs:   s.PressureGCs,
	}
}

// wireMem converts watchdog counters to their wire shape (nil stays nil).
func wireMem(m *resource.Stats) *WatchdogStats {
	if m == nil {
		return nil
	}
	return &WatchdogStats{
		Samples:       m.Samples,
		SoftTrips:     m.SoftTrips,
		HardTrips:     m.HardTrips,
		PeakHeapBytes: m.PeakHeapBytes,
		PeakDDNodes:   m.PeakDDNodes,
	}
}
