package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"qcec/internal/ec"
	"qcec/internal/fingerprint"
)

func mkKey(b byte) cacheKey {
	var d fingerprint.Digest
	d[0] = b
	return cacheKey{pair: d, strategy: "proportional", tolerance: 1e-10}
}

func defres(verdict string) CheckResponse {
	return CheckResponse{JobID: "jX", Verdict: verdict, NumSims: 3}
}

func TestVerdictCacheLRUEviction(t *testing.T) {
	c := newVerdictCache(2)
	c.put(mkKey(1), defres(VerdictEquivalent))
	c.put(mkKey(2), defres(VerdictEquivalent))
	if _, ok := c.get(mkKey(1)); !ok {
		t.Fatalf("key 1 missing before capacity reached")
	}
	// Key 1 is now most recently used; inserting key 3 must evict key 2.
	c.put(mkKey(3), defres(VerdictNotEquivalent))
	if _, ok := c.get(mkKey(2)); ok {
		t.Errorf("LRU evicted the wrong entry (2 survived)")
	}
	if _, ok := c.get(mkKey(1)); !ok {
		t.Errorf("recently-used entry 1 was evicted")
	}
	if _, ok := c.get(mkKey(3)); !ok {
		t.Errorf("newest entry 3 missing")
	}
	if size, evictions := c.stats(); size != 2 || evictions != 1 {
		t.Errorf("stats = (%d, %d), want (2, 1)", size, evictions)
	}
}

func TestVerdictCacheStripsExecutionFields(t *testing.T) {
	c := newVerdictCache(4)
	res := defres(VerdictEquivalent)
	res.DD = &DDStats{ApplyCalls: 99}
	res.Mem = &WatchdogStats{Samples: 5}
	res.Timings = Timings{TotalMS: 123}
	c.put(mkKey(1), res)
	got, ok := c.get(mkKey(1))
	if !ok {
		t.Fatal("entry missing")
	}
	if !got.Cached {
		t.Errorf("cached copy not marked Cached")
	}
	if got.DD != nil || got.Mem != nil || got.Timings.TotalMS != 0 || got.JobID != "" {
		t.Errorf("per-execution fields survived caching: %+v", got)
	}
	if got.Verdict != VerdictEquivalent || got.NumSims != 3 {
		t.Errorf("verdict payload lost: %+v", got)
	}
}

func TestCacheableRejectsNonDefinitive(t *testing.T) {
	cases := map[string]CheckResponse{
		"probably_equivalent": {Verdict: VerdictProbablyEquivalent},
		"error":               {Verdict: VerdictError, Error: "boom"},
		"cancelled":           {Verdict: VerdictProbablyEquivalent, Cancelled: true},
		"cancelled definitive": {
			Verdict: VerdictEquivalent, Cancelled: true, CancelCause: "drain",
		},
		"error with verdict": {Verdict: VerdictEquivalent, Error: "late fault"},
	}
	for name, res := range cases {
		if cacheable(&res) {
			t.Errorf("%s: cacheable = true, want false", name)
		}
	}
	for _, v := range []string{VerdictEquivalent, VerdictEquivalentUpToPhas, VerdictNotEquivalent} {
		res := CheckResponse{Verdict: v}
		if !cacheable(&res) {
			t.Errorf("%s: cacheable = false, want true", v)
		}
	}
}

// TestVerdictCacheConcurrent runs mixed get/put traffic; under -race
// (RACE_PKGS covers internal/server) this is the LRU race test.
func TestVerdictCacheConcurrent(t *testing.T) {
	c := newVerdictCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := mkKey(byte((g + i) % 16))
				if i%3 == 0 {
					c.put(k, defres(VerdictEquivalent))
				} else {
					c.get(k)
				}
				if i%17 == 0 {
					c.stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if size, _ := c.stats(); size > 8 {
		t.Errorf("cache grew past its bound: %d", size)
	}
}

// TestCheckCachedRepeat drives the full HTTP path: a repeated identical
// check must be answered from the cache, marked cached, with the hit counter
// incremented — and a cosmetically different encoding of the same pair
// (whitespace, gate-name alias) must hit too.
func TestCheckCachedRepeat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	res1 := doCheck(t, ts.URL, checkBody(bellQASM, bellQASM))
	if res1.Cached {
		t.Fatalf("first check claims cached")
	}
	res2 := doCheck(t, ts.URL, checkBody(bellQASM, bellQASM))
	if !res2.Cached {
		t.Fatalf("identical repeat not served from cache")
	}
	if res2.Verdict != res1.Verdict || res2.DD != nil {
		t.Errorf("cached response wrong shape: %+v", res2)
	}
	if res2.JobID == res1.JobID || res2.JobID == "" {
		t.Errorf("cached response must carry its own job id (got %q after %q)", res2.JobID, res1.JobID)
	}

	// Alias + whitespace variant of the same question.
	aliased := strings.ReplaceAll(bellQASM, "cx q[0],q[1];", "cnot q[0] , q[1];")
	res3 := doCheck(t, ts.URL, checkBody(aliased, bellQASM))
	if !res3.Cached {
		t.Errorf("alias/whitespace variant missed the cache")
	}

	// A different strategy is a different key: no false sharing.
	body, _ := json.Marshal(CheckRequest{G: bellQASM, Gp: bellQASM,
		Options: CheckOptions{Strategy: "sequential"}})
	res4 := doCheck(t, ts.URL, string(body))
	if res4.Cached {
		t.Errorf("different strategy served from the default strategy's entry")
	}

	metricsText := getMetrics(t, ts.URL)
	assertMetric(t, metricsText, "qcecd_cache_hits_total", 2)
	assertMetric(t, metricsText, "qcecd_cache_misses_total", 2)
}

// TestProbablyEquivalentNotCached: a non-definitive verdict must not be
// memoized — a later run (more stimuli, complete routine enabled) may know
// better.
func TestProbablyEquivalentNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(CheckRequest{G: ghzQASM(4), Gp: ghzQASM(4),
		Options: CheckOptions{SimOnly: true, R: 2}})
	res1 := doCheck(t, ts.URL, string(body))
	if res1.Verdict != VerdictProbablyEquivalent {
		t.Fatalf("verdict = %q, want probably_equivalent", res1.Verdict)
	}
	res2 := doCheck(t, ts.URL, string(body))
	if res2.Cached {
		t.Errorf("probably_equivalent was served from cache")
	}
}

func doCheck(t *testing.T, baseURL, body string) CheckResponse {
	t.Helper()
	resp, data := postJSON(t, baseURL+"/v1/check", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return res
}

func getMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(data)
}

func assertMetric(t *testing.T, text, name string, want int) {
	t.Helper()
	line := fmt.Sprintf("%s %d\n", name, want)
	if !strings.Contains(text, line) {
		t.Errorf("metrics missing %q", strings.TrimSpace(line))
	}
}

// TestGateCostAliasesShareCacheKey: every wire spelling of the gate-cost
// strategy must parse to the same scheme and normalize to one cache-key
// string, so aliases cannot split the cache.
func TestGateCostAliasesShareCacheKey(t *testing.T) {
	aliases := []string{"gate_cost", "gate-cost", "gatecost", "compilation_flow"}
	for _, a := range aliases {
		strat, err := parseStrategy(a)
		if err != nil {
			t.Fatalf("parseStrategy(%q): %v", a, err)
		}
		if strat != ec.StrategyGateCost {
			t.Errorf("parseStrategy(%q) = %v, want StrategyGateCost", a, strat)
		}
		if got := normalizeStrategy(a); got != "gate_cost" {
			t.Errorf("normalizeStrategy(%q) = %q, want %q", a, got, "gate_cost")
		}
	}
	if got := normalizeStrategy(""); got != "proportional" {
		t.Errorf("normalizeStrategy(\"\") = %q, want proportional", got)
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("parseStrategy accepted an unknown strategy")
	}
}
