package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func postBatch(t *testing.T, baseURL string, req BatchRequest) (*http.Response, BatchResponse, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, data := postJSON(t, baseURL+"/v1/batch", string(body))
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &br); err != nil {
			t.Fatalf("unmarshal batch response: %v (%s)", err, data)
		}
	}
	return resp, br, data
}

func TestBatchMixedVerdictsAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := BatchRequest{Items: []CheckRequest{
		{G: bellQASM, Gp: bellQASM},          // equivalent
		{G: bellQASM, Gp: bellFlippedQASM},   // not equivalent
		{G: "not qasm at all", Gp: bellQASM}, // bad_qasm, item-local
		{G: bellQASM, Gp: ""},                // bad_request, item-local
		{G: bellQASM, Gp: bellQASM},          // duplicate of item 0
	}}
	resp, br, data := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	if len(br.Items) != 5 {
		t.Fatalf("items = %d, want 5", len(br.Items))
	}
	for i, item := range br.Items {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
	}
	if v := br.Items[0].Result.Verdict; v != VerdictEquivalent {
		t.Errorf("item 0 verdict = %q", v)
	}
	if v := br.Items[1].Result.Verdict; v != VerdictNotEquivalent {
		t.Errorf("item 1 verdict = %q", v)
	}
	if br.Items[1].Result.Counterexample == nil {
		t.Errorf("item 1 lost its counterexample")
	}
	if e := br.Items[2].Error; e == nil || e.Code != CodeBadQASM {
		t.Errorf("item 2 error = %+v, want bad_qasm", e)
	}
	if e := br.Items[3].Error; e == nil || e.Code != CodeBadRequest {
		t.Errorf("item 3 error = %+v, want bad_request", e)
	}
	if r := br.Items[4].Result; r == nil || !r.Cached {
		t.Errorf("duplicate item 4 not deduplicated: %+v", r)
	} else if r.Verdict != VerdictEquivalent {
		t.Errorf("duplicate item 4 verdict = %q", r.Verdict)
	}
	if br.Checked != 2 || br.Deduplicated != 1 || br.Failed != 2 {
		t.Errorf("counts = checked %d dedup %d failed %d, want 2/1/2",
			br.Checked, br.Deduplicated, br.Failed)
	}
}

// TestBatchLargerThanQueue proves the blocking submit: a batch with more
// unique items than QueueDepth completes instead of failing with queue_full.
func TestBatchLargerThanQueue(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	items := make([]CheckRequest, 12)
	for i := range items {
		// Distinct pairs (distinct fingerprints): no dedup, all must run.
		items[i] = CheckRequest{G: rotQASM(i), Gp: rotQASM(i)}
	}
	resp, br, data := postBatch(t, ts.URL, BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	if br.Checked != len(items) || br.Failed != 0 {
		t.Fatalf("checked %d failed %d, want %d/0 (body %s)", br.Checked, br.Failed, len(items), data)
	}
	for i, item := range br.Items {
		if item.Result == nil || item.Result.Verdict != VerdictEquivalent {
			t.Errorf("item %d: %+v", i, item)
		}
	}
}

func TestBatchUsesVerdictCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// Seed the cache through the single-check endpoint.
	doCheck(t, ts.URL, checkBody(bellQASM, bellQASM))
	_, br, _ := postBatch(t, ts.URL, BatchRequest{Items: []CheckRequest{
		{G: bellQASM, Gp: bellQASM},
	}})
	if br.CacheHits != 1 || br.Checked != 0 {
		t.Errorf("cache hits %d checked %d, want 1/0", br.CacheHits, br.Checked)
	}
	if r := br.Items[0].Result; r == nil || !r.Cached {
		t.Errorf("item not served from cache: %+v", r)
	}
}

func TestBatchSizeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatchItems: 2})
	resp, _, data := postBatch(t, ts.URL, BatchRequest{Items: []CheckRequest{
		{G: bellQASM, Gp: bellQASM},
		{G: bellQASM, Gp: bellQASM},
		{G: bellQASM, Gp: bellQASM},
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status = %d, want 413 (%s)", resp.StatusCode, data)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/batch", `{"items": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", resp.StatusCode)
	}
}

// TestBatchMatchesIndividualChecks: per-item batch verdicts must agree with
// the single-check endpoint on the same pairs.
func TestBatchMatchesIndividualChecks(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, CacheEntries: -1}) // no cache: all real runs
	pairs := [][2]string{
		{bellQASM, bellQASM},
		{bellQASM, bellFlippedQASM},
		{ghzQASM(3), ghzQASM(3)},
	}
	items := make([]CheckRequest, len(pairs))
	for i, p := range pairs {
		items[i] = CheckRequest{G: p[0], Gp: p[1]}
	}
	_, br, _ := postBatch(t, ts.URL, BatchRequest{Items: items})
	for i, p := range pairs {
		individual := doCheck(t, ts.URL, checkBody(p[0], p[1]))
		got := br.Items[i].Result
		if got == nil || got.Verdict != individual.Verdict {
			t.Errorf("pair %d: batch %+v vs individual %q", i, got, individual.Verdict)
		}
	}
}

// rotQASM builds a distinct single-qubit circuit per index.
func rotQASM(i int) string {
	return fmt.Sprintf("OPENQASM 2.0;\nqreg q[1];\nrz(0.%02d) q[0];\n", i+1)
}
