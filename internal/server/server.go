// Package server implements qcecd, a long-running HTTP/JSON equivalence-
// checking service over the repo's simulation-first flow (internal/core).
//
// The daemon turns the library into infrastructure: compiler CI posts a pair
// of QASM circuits and gets back a verdict, a counterexample stimulus when
// the pair differs, per-stage timings, and the DD-engine telemetry — without
// linking the checker or paying a process start per query (the gate-DD cache
// and interned-weight tables amortize across requests within a worker).
//
// The serving core is a bounded worker pool over a bounded queue:
//
//   - Admission control: a full queue rejects with 429 + Retry-After instead
//     of queueing unboundedly.  Checks are memory-hungry (a DD blow-up is a
//     heap blow-up), so backpressure must happen before work starts.
//   - Per-job budgets: every check runs under a deadline (request-supplied,
//     clamped to the server max) and, when configured, a per-job
//     resource.Watchdog memory budget.
//   - Panic isolation: a panicking check becomes a verdict:"error" response
//     (resource.PanicError), never a daemon crash.
//   - Graceful drain: Shutdown stops admission, finishes admitted jobs, and
//     cancels stragglers with a typed *DrainError cause at the deadline.
//   - Durability (optional, Config.JournalDir): job transitions go to an
//     append-only WAL (internal/wal) replayed on startup — finished verdicts
//     survive restarts, unfinished jobs re-enqueue, Idempotency-Key retries
//     attach to journaled work, and transient failures re-run with degraded
//     options under a classified retry budget.
//
// Endpoints: POST /v1/check (synchronous), POST /v1/jobs + GET /v1/jobs/{id}
// (asynchronous batch), GET /healthz, GET /metrics (Prometheus text).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/dd"
	"qcec/internal/ec"
	"qcec/internal/fingerprint"
	"qcec/internal/qasm"
)

// Server is the checking service.  Create it with New, serve s.Handler(),
// and stop it with Shutdown.
type Server struct {
	cfg     Config
	metrics *metrics
	log     *slog.Logger

	// baseCtx parents every job context; baseCancel carries the drain cause.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	jobs     chan *job
	wg       sync.WaitGroup
	inflight atomic.Int64
	nextID   atomic.Uint64

	admitMu   sync.RWMutex
	draining  bool
	drainOnce sync.Once

	jobsMu       sync.Mutex
	byID         map[string]*job   // async (and idempotent sync) jobs
	doneOrder    []string          // finished async jobs, oldest first
	idemByKey    map[string]string // Idempotency-Key → job id
	evicted      map[string]struct{}
	evictedOrder []string // eviction order, oldest first (bounds evicted)

	// cache memoizes definitive verdicts across requests (nil = disabled).
	cache *verdictCache
	// ddPool recycles warm DD packages across jobs (nil = disabled).
	ddPool *dd.Pool
	// journal is the durable job WAL (nil = durability disabled).
	journal *journal

	// exec runs one admitted job; tests swap it to control timing and
	// failure modes without real circuits.
	exec func(*job) core.Report
}

// New builds a server under cfg, replays its journal when Config.JournalDir
// is set (re-enqueueing unfinished jobs, serving finished verdicts), and
// starts its worker pool.  The only error sources are journal I/O problems;
// a journal-less configuration never fails.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        cfg.Logger,
		metrics:    newMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(chan *job, cfg.QueueDepth),
		byID:       make(map[string]*job),
		idemByKey:  make(map[string]string),
		evicted:    make(map[string]struct{}),
		cache:      newVerdictCache(cfg.CacheEntries),
	}
	if cfg.PoolPackages > 0 {
		s.ddPool = dd.NewPool(cfg.PoolPackages)
	}
	s.exec = s.runCheck
	if cfg.testExec != nil {
		// Installed before workers start and recovered jobs requeue, so
		// tests controlling execution timing never race the worker reads.
		s.exec = cfg.testExec
	}

	var requeue []*job
	if cfg.JournalDir != "" {
		jl, st, err := openJournal(cfg.JournalDir)
		if err != nil {
			cancel(nil)
			return nil, err
		}
		s.journal = jl
		requeue = s.replayJournal(st)
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if len(requeue) > 0 {
		// Re-admission blocks on queue room like a batch submit, so a
		// recovered backlog larger than the queue trickles in behind the
		// workers instead of failing or deadlocking startup.
		go func() {
			for _, j := range requeue {
				if err := s.submitWait(s.baseCtx, j); err != nil {
					s.log.Warn("recovered job not re-enqueued", "job", j.id, "err", err)
					j.cancel(nil)
				}
			}
		}()
	}
	return s, nil
}

// replayJournal turns the replayed journal state into live server state:
// finished jobs are registered done (their verdicts feed the verdict cache
// and GET /v1/jobs/{id}), unfinished accepted jobs are rebuilt and returned
// for re-admission, and the id counter advances past every journaled id.
func (s *Server) replayJournal(st *replayState) []*job {
	if cur := s.nextID.Load(); st.maxID > cur {
		s.nextID.Store(st.maxID)
	}
	var requeue []*job
	var served int
	for _, id := range st.order {
		rj := st.jobs[id]
		if rj.aborted {
			continue
		}
		if rj.result != nil {
			s.recoverFinished(rj)
			served++
			continue
		}
		if rj.req == nil {
			s.log.Warn("journal: job has no accepted record, dropped", "job", rj.id)
			continue
		}
		j, apiErr := s.buildJobWithID(rj.id, *rj.req)
		if apiErr != nil {
			s.log.Warn("journal: recovered request no longer parses, dropped",
				"job", rj.id, "err", apiErr.msg)
			continue
		}
		j.idemKey = rj.idemKey
		j.journaled = true
		j.attempt = rj.attempts // degrade like a retry: it already failed mid-run once
		s.jobsMu.Lock()
		s.byID[j.id] = j
		if j.idemKey != "" {
			s.idemByKey[j.idemKey] = j.id
		}
		s.jobsMu.Unlock()
		requeue = append(requeue, j)
	}
	s.journal.recovered = uint64(served)
	s.journal.requeued = uint64(len(requeue))
	s.log.Info("journal replayed",
		"records", s.journal.replayed,
		"finished_served", served,
		"requeued", len(requeue),
		"torn_tail", s.journal.tornTails == 1)
	return requeue
}

// recoverFinished registers one journaled finished job as an
// already-completed async job and feeds its verdict to the cache, so both
// GET /v1/jobs/{id} polls and fresh identical questions are answered
// without re-execution.
func (s *Server) recoverFinished(rj *replayJob) {
	res := *rj.result
	j := &job{id: rj.id, idemKey: rj.idemKey, done: make(chan struct{}), result: &res}
	j.status.Store(jobDone)
	j.cancel = func(error) {}
	close(j.done)
	if rj.req != nil {
		// Rebuild the cache key from the journaled request; a parse failure
		// (e.g. a size envelope tightened between restarts) only skips the
		// cache insert, the stored verdict still serves by job id.
		if cj, apiErr := s.buildJobWithID(rj.id, *rj.req); apiErr == nil {
			j.ckey, j.cacheOK = cj.ckey, cj.cacheOK
			cj.cancel(nil)
			if s.cache != nil && j.cacheOK && cacheable(j.result) {
				s.cache.put(j.ckey, *j.result)
			}
		}
	}
	s.jobsMu.Lock()
	s.byID[j.id] = j
	if j.idemKey != "" {
		s.idemByKey[j.idemKey] = j.id
	}
	s.jobsMu.Unlock()
	s.retireJob(j)
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is a typed request failure carried between buildJob and the
// handlers: the single-request endpoints map status to the HTTP response
// code, the batch endpoint embeds code+message item-locally and keeps 200.
type apiError struct {
	status int
	code   string
	msg    string
}

// buildJob parses and validates one check request into an admissible job
// under a freshly issued id.
func (s *Server) buildJob(req CheckRequest) (*job, *apiError) {
	return s.buildJobWithID(fmt.Sprintf("j%08d", s.nextID.Add(1)), req)
}

// buildJobWithID is buildJob under a caller-chosen id; journal recovery uses
// it to rebuild a job with the id the client was already promised.
func (s *Server) buildJobWithID(id string, req CheckRequest) (*job, *apiError) {
	if req.G == "" || req.Gp == "" {
		return nil, &apiError{http.StatusBadRequest, CodeBadRequest, `both "g" and "gp" circuits are required`}
	}
	g1, apiErr := s.parseCircuit("g", req.G)
	if apiErr != nil {
		return nil, apiErr
	}
	g2, apiErr := s.parseCircuit("gp", req.Gp)
	if apiErr != nil {
		return nil, apiErr
	}
	if _, err := parseStrategy(req.Options.Strategy); err != nil {
		return nil, &apiError{http.StatusBadRequest, CodeBadRequest, err.Error()}
	}
	j := &job{
		id:       id,
		req:      req,
		g1:       g1,
		g2:       g2,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	j.ckey = cacheKey{
		pair:      fingerprint.Pair(g1, g2),
		strategy:  normalizeStrategy(req.Options.Strategy),
		tolerance: normalizeTolerance(req.Options.Tolerance),
		upToPhase: req.Options.UpToGlobalPhase,
	}
	// Approximate checking redefines the equivalence criterion per request;
	// those verdicts are neither served from nor inserted into the cache.
	j.cacheOK = req.Options.FidelityThreshold == 0
	j.ctx, j.cancel = context.WithCancelCause(s.baseCtx)
	return j, nil
}

// newJob decodes a single-check body and builds its job, writing the HTTP
// error response on failure.
func (s *Server) newJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failDecode(w, err)
		return nil, false
	}
	j, apiErr := s.buildJob(req)
	if apiErr != nil {
		s.fail(w, apiErr.status, apiErr.code, apiErr.msg)
		return nil, false
	}
	j.idemKey = r.Header.Get(IdempotencyKeyHeader)
	return j, true
}

// failDecode maps a request-body decoding error to its HTTP response.
func (s *Server) failDecode(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.fail(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	s.fail(w, http.StatusBadRequest, CodeBadRequest, "invalid JSON: "+err.Error())
}

// parseCircuit parses one QASM source and enforces the size envelope.
func (s *Server) parseCircuit(field, src string) (*circuit.Circuit, *apiError) {
	prog, err := qasm.Parse(src)
	if err != nil {
		return nil, &apiError{http.StatusBadRequest, CodeBadQASM,
			fmt.Sprintf("circuit %q: %v", field, err)}
	}
	c := prog.Circuit
	if s.cfg.MaxQubits > 0 && c.N > s.cfg.MaxQubits {
		return nil, &apiError{http.StatusRequestEntityTooLarge, CodeCircuitTooLarge,
			fmt.Sprintf("circuit %q has %d qubits (limit %d)", field, c.N, s.cfg.MaxQubits)}
	}
	if s.cfg.MaxGates > 0 && len(c.Gates) > s.cfg.MaxGates {
		return nil, &apiError{http.StatusRequestEntityTooLarge, CodeCircuitTooLarge,
			fmt.Sprintf("circuit %q has %d gates (limit %d)", field, len(c.Gates), s.cfg.MaxGates)}
	}
	return c, nil
}

// cachedResponse answers j from the verdict cache when possible, stamping
// the hit with this job's id.
func (s *Server) cachedResponse(j *job) (*CheckResponse, bool) {
	if s.cache == nil || !j.cacheOK {
		return nil, false
	}
	// A draining server rejects everything uniformly — even questions it
	// could answer from memory — so clients fail over promptly instead of
	// hammering a half-alive instance for the subset of answers it still has.
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	if draining {
		return nil, false
	}
	res, ok := s.cache.get(j.ckey)
	if !ok {
		s.metrics.cacheMiss()
		return nil, false
	}
	s.metrics.cacheHit()
	res.JobID = j.id
	return &res, true
}

// admit submits the job, translating rejections to HTTP responses.
func (s *Server) admit(w http.ResponseWriter, j *job) bool {
	switch err := s.submit(j); {
	case err == nil:
		return true
	case errors.Is(err, errDraining):
		j.cancel(nil)
		s.metrics.rejectedJob("draining")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		s.fail(w, http.StatusServiceUnavailable, CodeDraining, "server is shutting down")
	default:
		j.cancel(nil)
		s.metrics.rejectedJob("queue_full")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		s.fail(w, http.StatusTooManyRequests, CodeQueueFull,
			fmt.Sprintf("job queue full (%d pending)", s.cfg.QueueDepth))
	}
	return false
}

// claimIdem resolves j's Idempotency-Key under jobsMu.  It returns the
// already-registered job when the key maps to the same question, reports a
// conflict when it maps to a different one, and otherwise claims the key for
// j and registers it in byID (callers must unregisterJob on any later
// admission failure).
func (s *Server) claimIdem(j *job) (existing *job, conflict bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if id, ok := s.idemByKey[j.idemKey]; ok {
		if e := s.byID[id]; e != nil {
			// "Same question" mirrors the batch deduplication criterion:
			// same fingerprint-derived cache key and same option set.
			if e.ckey != j.ckey || e.req.Options != j.req.Options {
				return nil, true
			}
			return e, false
		}
		// The mapped job was evicted between requests: reclaim the key.
	}
	s.idemByKey[j.idemKey] = j.id
	s.byID[j.id] = j
	return nil, false
}

// unregisterJob undoes a pre-admission registration (byID plus the
// idempotency claim) after the job failed to be admitted or journaled.
func (s *Server) unregisterJob(j *job) {
	s.jobsMu.Lock()
	delete(s.byID, j.id)
	if j.idemKey != "" && s.idemByKey[j.idemKey] == j.id {
		delete(s.idemByKey, j.idemKey)
	}
	s.jobsMu.Unlock()
}

// resolveIdem handles the Idempotency-Key preamble shared by /v1/check and
// /v1/jobs: attach to an existing job, reject a key conflict, or claim the
// key.  done=true means an HTTP response was already written.
func (s *Server) resolveIdem(w http.ResponseWriter, j *job) (existing *job, done bool) {
	if j.idemKey == "" {
		return nil, false
	}
	existing, conflict := s.claimIdem(j)
	if conflict {
		j.cancel(nil)
		s.metrics.idemConflict()
		s.fail(w, http.StatusConflict, CodeIdemConflict,
			fmt.Sprintf("Idempotency-Key %q was already used for a different request", j.idemKey))
		return nil, true
	}
	if existing != nil {
		j.cancel(nil)
		s.metrics.idemHit()
		return existing, false
	}
	// Key claimed; this job is journaled when durability is on.
	j.journaled = s.journal != nil
	return nil, false
}

// finishWithoutRun marks a never-executed job done with res (cache hits,
// recovered duplicates) so GET /v1/jobs/{id} and the idempotency map see it
// exactly like an executed job.
func (s *Server) finishWithoutRun(j *job, res *CheckResponse) {
	j.result = res
	j.status.Store(jobDone)
	j.cancel(nil)
	close(j.done)
	s.jobsMu.Lock()
	s.byID[j.id] = j
	s.jobsMu.Unlock()
	if j.journaled {
		// Asynchronous on purpose: losing these records re-answers a cached
		// question after restart, which is cheap and correct.
		s.journalAccepted(j, false)
		s.journalFinished(j, res)
	}
	s.retireJob(j)
}

// handleCheck is POST /v1/check: admit, wait for the result, respond.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	j, ok := s.newJob(w, r)
	if !ok {
		return
	}
	existing, done := s.resolveIdem(w, j)
	if done {
		return
	}
	if existing != nil {
		// Same key, same question: wait on the original execution and serve
		// its verdict under its job id, bounded by this request's context.
		select {
		case <-existing.done:
			writeJSON(w, http.StatusOK, existing.result)
		case <-r.Context().Done():
		}
		return
	}
	if res, hit := s.cachedResponse(j); hit {
		if j.idemKey != "" {
			s.finishWithoutRun(j, res)
		} else {
			j.cancel(nil)
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	// A client disconnect cancels the running check; a finished job's
	// cancel(nil) makes this a no-op.
	stop := context.AfterFunc(r.Context(), func() {
		j.cancel(context.Cause(r.Context()))
	})
	defer stop()
	if j.journaled {
		if err := s.journalAccepted(j, true); err != nil {
			s.unregisterJob(j)
			j.cancel(nil)
			s.fail(w, http.StatusInternalServerError, CodeJournal, "journal append failed: "+err.Error())
			return
		}
	}
	if !s.admit(w, j) {
		if j.idemKey != "" {
			s.journalAborted(j)
			s.unregisterJob(j)
		}
		return
	}
	<-j.done
	writeJSON(w, http.StatusOK, j.result)
}

// handleSubmitJob is POST /v1/jobs: admit and return 202 immediately.  With
// a journal configured, the 202 is written only after the job's accepted
// record is fsynced — the id a client holds always survives a crash.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.newJob(w, r)
	if !ok {
		return
	}
	j.journaled = s.journal != nil
	existing, done := s.resolveIdem(w, j)
	if done {
		return
	}
	if existing != nil {
		resp := JobResponse{JobID: existing.id, Status: existing.statusString()}
		if resp.Status == StatusDone {
			resp.Result = existing.result
		}
		writeJSON(w, http.StatusAccepted, resp)
		return
	}
	if res, hit := s.cachedResponse(j); hit {
		// The job never runs: record it as already done so GET /v1/jobs/{id}
		// works exactly as for an executed job.
		s.finishWithoutRun(j, res)
		writeJSON(w, http.StatusAccepted, JobResponse{JobID: j.id, Status: j.statusString(), Result: res})
		return
	}
	// Register before admission so a fast worker cannot finish the job
	// before it is visible to GET /v1/jobs/{id}.
	s.jobsMu.Lock()
	s.byID[j.id] = j
	s.jobsMu.Unlock()
	if err := s.journalAccepted(j, true); err != nil {
		s.unregisterJob(j)
		j.cancel(nil)
		s.fail(w, http.StatusInternalServerError, CodeJournal, "journal append failed: "+err.Error())
		return
	}
	if !s.admit(w, j) {
		s.journalAborted(j)
		s.unregisterJob(j)
		return
	}
	s.log.Info("job accepted", "job", j.id, "fp", j.ckey.pair.String(), "idem_key", j.idemKey)
	writeJSON(w, http.StatusAccepted, JobResponse{JobID: j.id, Status: j.statusString()})
}

// handleGetJob is GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	j := s.byID[id]
	_, wasEvicted := s.evicted[id]
	s.jobsMu.Unlock()
	if j == nil {
		if wasEvicted {
			s.fail(w, http.StatusGone, CodeJobEvicted,
				fmt.Sprintf("job %q aged out of the completed-job retention window; resubmit the check", id))
			return
		}
		s.fail(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	resp := JobResponse{JobID: j.id, Status: j.statusString()}
	if resp.Status == StatusDone {
		resp.Result = j.result
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var cacheSize int
	var cacheEvictions uint64
	if s.cache != nil {
		cacheSize, cacheEvictions = s.cache.stats()
	}
	var pool dd.PoolStats
	if s.ddPool != nil {
		pool = s.ddPool.Stats()
	}
	var js journalStats
	journalOn := s.journal != nil
	if journalOn {
		js = s.journal.stats()
	}
	s.metrics.write(w, len(s.jobs), s.cfg.QueueDepth, int(s.inflight.Load()),
		s.cfg.Workers, draining, cacheSize, cacheEvictions, pool, journalOn, js)
}

// fail writes a typed JSON error body and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	if status < http.StatusInternalServerError && status != http.StatusTooManyRequests &&
		status != http.StatusServiceUnavailable {
		s.metrics.badRequest()
	}
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// normalizeStrategy folds the wire strategy's aliases so the cache key
// cannot split one scheme into several entries: "" selects the default
// (proportional), and the gate-cost spellings ("gate-cost", "gatecost",
// "compilation_flow") collapse onto the canonical "gate_cost".
func normalizeStrategy(name string) string {
	switch name {
	case "":
		return "proportional"
	case "gate-cost", "gatecost", "compilation_flow":
		return "gate_cost"
	}
	return name
}

// normalizeTolerance folds the wire tolerance's zero default to the value
// core.Check actually uses, for the same reason.
func normalizeTolerance(tol float64) float64 {
	if tol == 0 {
		return 1e-10
	}
	return tol
}

// parseStrategy maps a wire strategy name to the complete routine's scheme.
// The empty string selects the paper's default, Proportional.
func parseStrategy(name string) (ec.Strategy, error) {
	switch name {
	case "", "proportional":
		return ec.Proportional, nil
	case "construction":
		return ec.Construction, nil
	case "sequential":
		return ec.Sequential, nil
	case "lookahead":
		return ec.Lookahead, nil
	case "gate_cost", "gate-cost", "gatecost", "compilation_flow":
		// The compilation-flow scheme; wire pairs carry no compilation
		// provenance, so the checker derives the schedule from the static
		// per-kind cost estimate (ec.EstimateCostProfile).
		return ec.StrategyGateCost, nil
	case "stabilizer":
		return ec.StrategyStabilizer, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want construction|sequential|proportional|lookahead|gate_cost|stabilizer)", name)
	}
}
