package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end service check used by `make serve-smoke`:
// build the real qcecd binary, run it on a random port, drive it over real
// HTTP with seed circuits, scrape /metrics, then SIGTERM it and require a
// clean exit.  Gated behind QCECD_SMOKE=1 because it compiles a binary.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("QCECD_SMOKE") == "" {
		t.Skip("set QCECD_SMOKE=1 to run the daemon smoke test")
	}

	tmp := t.TempDir()
	bin := buildQcecd(t, tmp)

	ghz5, err := os.ReadFile("../../circuits/ghz5.qasm")
	if err != nil {
		t.Fatalf("read seed circuit: %v", err)
	}
	equivalentPair := checkBody(string(ghz5), string(ghz5))
	differingPair := checkBody(string(ghz5), string(ghz5)+"x q[0];\n")

	addrFile := filepath.Join(tmp, "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "2",
		"-drain-timeout", "20s",
	)
	var output syncBuffer
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatalf("start qcecd: %v", err)
	}
	// exited is closed after the wait result is delivered, so every receive
	// after the first returns immediately (the cleanup below must not hang
	// when the test body already consumed the result).
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			_ = cmd.Process.Kill()
			<-exited
		}
	}()

	// The daemon binds before announcing, so the address file appearing
	// means connects will succeed.
	var base string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		select {
		case err := <-exited:
			t.Fatalf("qcecd exited before serving: %v\n%s", err, output.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("address file never appeared\n%s", output.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	post := func(body string) CheckResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/check: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check status = %d; body %s", resp.StatusCode, data)
		}
		var res CheckResponse
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		return res
	}

	scrape := func() string {
		t.Helper()
		mr, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		defer mr.Body.Close()
		mtext, _ := io.ReadAll(mr.Body)
		return string(mtext)
	}

	if res := post(equivalentPair); res.Verdict != VerdictEquivalent {
		t.Fatalf("ghz5 vs ghz5 verdict = %q, want equivalent", res.Verdict)
	} else if res.ECVerdict == "" {
		// 2^5 basis states > DefaultR stimuli: the complete routine must
		// have produced the proof.
		t.Errorf("equivalent verdict without a complete-routine run: %+v", res)
	} else if res.Cached {
		t.Errorf("first check of the pair claims cached")
	}
	if res := post(differingPair); res.Verdict != VerdictNotEquivalent {
		t.Fatalf("ghz5 vs ghz5+X verdict = %q, want not_equivalent", res.Verdict)
	} else if res.Counterexample == nil {
		t.Errorf("not_equivalent without a counterexample")
	}

	// A second, identical check must be answered from the verdict cache: the
	// response says so, the hit counter moves, and the DD engine does no new
	// work (the apply-call counter only advances when a job executes).
	before := scrape()
	if res := post(equivalentPair); !res.Cached {
		t.Errorf("identical repeat not served from cache: %+v", res)
	} else if res.Verdict != VerdictEquivalent {
		t.Errorf("cached verdict = %q", res.Verdict)
	} else if res.DD != nil {
		t.Errorf("cached response carries DD telemetry: %+v", res.DD)
	}
	after := scrape()
	if b, a := metricValue(t, before, "qcecd_dd_apply_calls_total"), metricValue(t, after, "qcecd_dd_apply_calls_total"); a != b {
		t.Errorf("cached repeat did DD work: apply calls %s -> %s", b, a)
	}
	if b, a := metricValue(t, before, "qcecd_cache_hits_total"), metricValue(t, after, "qcecd_cache_hits_total"); b != "0" || a != "1" {
		t.Errorf("cache hits %s -> %s, want 0 -> 1", b, a)
	}

	// A concurrent burst of distinct pairs (distinct fingerprints, so every
	// one really executes): all succeed, none crash the daemon.
	var wg sync.WaitGroup
	verdicts := make(chan string, 8)
	for i := 0; i < 8; i++ {
		variant := string(ghz5) + fmt.Sprintf("rz(0.%d) q[0];\n", i+1)
		body := checkBody(variant, variant)
		want := VerdictEquivalent
		if i%2 == 1 {
			body = checkBody(variant, variant+"x q[0];\n")
			want = VerdictNotEquivalent
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res := post(body); res.Verdict == want {
				verdicts <- res.Verdict
			} else {
				verdicts <- fmt.Sprintf("%s (want %s)", res.Verdict, want)
			}
		}()
	}
	wg.Wait()
	close(verdicts)
	for v := range verdicts {
		if v != VerdictEquivalent && v != VerdictNotEquivalent {
			t.Errorf("burst verdict = %q", v)
		}
	}

	// Health and metrics reflect the traffic.
	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %v)", err, hr)
	}
	hr.Body.Close()
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mtext, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		`qcecd_checks_total{verdict="equivalent"} 5`,
		`qcecd_checks_total{verdict="not_equivalent"} 5`,
		"qcecd_jobs_completed_total 10",
		"qcecd_dd_apply_calls_total",
		"qcecd_check_duration_seconds_count 10",
	} {
		if !strings.Contains(string(mtext), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A 100-pair batch over 10 unique questions: per-item verdicts, in-batch
	// deduplication, and agreement with the single-check endpoint.
	circ := func(q int) string {
		return fmt.Sprintf("OPENQASM 2.0;\nqreg q[1];\nrz(0.9%02d) q[0];\n", q)
	}
	wantVerdict := func(q int) string {
		if q < 5 {
			return VerdictEquivalent
		}
		return VerdictNotEquivalent
	}
	var batch BatchRequest
	for i := 0; i < 100; i++ {
		q := i % 10
		item := CheckRequest{G: circ(q), Gp: circ(q)}
		if q >= 5 {
			item.Gp = circ(q) + "x q[0];\n"
		}
		batch.Items = append(batch.Items, item)
	}
	batchBody, _ := json.Marshal(batch)
	bresp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	bdata, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d; body %s", bresp.StatusCode, bdata)
	}
	var br BatchResponse
	if err := json.Unmarshal(bdata, &br); err != nil {
		t.Fatalf("unmarshal batch response: %v", err)
	}
	if len(br.Items) != 100 {
		t.Fatalf("batch items = %d, want 100", len(br.Items))
	}
	if br.Checked != 10 || br.Deduplicated != 90 || br.Failed != 0 {
		t.Errorf("batch counts = checked %d dedup %d failed %d, want 10/90/0",
			br.Checked, br.Deduplicated, br.Failed)
	}
	for i, item := range br.Items {
		q := i % 10
		if item.Result == nil {
			t.Fatalf("batch item %d has no result: %+v", i, item.Error)
		}
		if item.Result.Verdict != wantVerdict(q) {
			t.Errorf("batch item %d verdict = %q, want %q", i, item.Result.Verdict, wantVerdict(q))
		}
		if i >= 10 && !item.Result.Cached {
			t.Errorf("batch item %d (duplicate of %d) not deduplicated", i, q)
		}
	}
	// The single-check endpoint agrees with every batch verdict.
	for q := 0; q < 10; q++ {
		gp := circ(q)
		if q >= 5 {
			gp += "x q[0];\n"
		}
		if res := post(checkBody(circ(q), gp)); res.Verdict != br.Items[q].Result.Verdict {
			t.Errorf("question %d: individual %q vs batch %q", q, res.Verdict, br.Items[q].Result.Verdict)
		}
	}
	final := scrape()
	if v := metricValue(t, final, "qcecd_batches_total"); v != "1" {
		t.Errorf("qcecd_batches_total = %s, want 1", v)
	}
	if v := metricValue(t, final, "qcecd_batch_items_total"); v != "100" {
		t.Errorf("qcecd_batch_items_total = %s, want 100", v)
	}
	if v := metricValue(t, final, "qcecd_batch_dedup_total"); v != "90" {
		t.Errorf("qcecd_batch_dedup_total = %s, want 90", v)
	}
	if v := metricValue(t, final, "qcecd_dd_pool_reuses_total"); v == "0" {
		t.Errorf("warm DD-package pool never reused a package")
	}

	// SIGTERM: graceful drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("qcecd exit = %v, want 0\n%s", err, output.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("qcecd did not exit after SIGTERM\n%s", output.String())
	}
	if !strings.Contains(output.String(), "drained") {
		t.Errorf("daemon output missing the drain confirmation:\n%s", output.String())
	}
	t.Logf("daemon output:\n%s", output.String())
}

// buildQcecd compiles the real daemon binary into dir.
func buildQcecd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "qcecd")
	build := exec.Command("go", "build", "-o", bin, "qcec/cmd/qcecd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build qcecd: %v\n%s", err, out)
	}
	return bin
}

// smokeDaemon is one running qcecd subprocess under test control.
type smokeDaemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	out    *syncBuffer
	exited chan error
}

// startQcecd launches bin with args plus the addr plumbing and waits until
// it serves.  The cleanup kills the process if the test never reaped it.
func startQcecd(t *testing.T, bin string, args ...string) *smokeDaemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	full := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)
	cmd := exec.Command(bin, full...)
	out := &syncBuffer{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start qcecd: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait(); close(exited) }()
	t.Cleanup(func() {
		select {
		case <-exited:
		default:
			_ = cmd.Process.Kill()
			<-exited
		}
	})
	var base string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		select {
		case err := <-exited:
			t.Fatalf("qcecd exited before serving: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("address file never appeared\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	return &smokeDaemon{cmd: cmd, base: base, out: out, exited: exited}
}

// TestServeCrashRestart is the durability half of `make serve-smoke`: submit
// a set of async jobs with idempotency keys, SIGKILL the daemon mid-flight,
// restart it over the same -journal-dir, and require that every accepted job
// reaches the terminal verdict an uninterrupted run would produce — plus
// that a keyed resubmit attaches to the recovered job instead of new work.
func TestServeCrashRestart(t *testing.T) {
	if os.Getenv("QCECD_SMOKE") == "" {
		t.Skip("set QCECD_SMOKE=1 to run the daemon smoke test")
	}

	tmp := t.TempDir()
	bin := buildQcecd(t, tmp)
	jdir := filepath.Join(tmp, "journal")

	ghz5, err := os.ReadFile("../../circuits/ghz5.qasm")
	if err != nil {
		t.Fatalf("read seed circuit: %v", err)
	}

	// Eight questions with analytically known verdicts — the uninterrupted
	// baseline.  Distinct rz angles give distinct fingerprints so nothing is
	// answered from the verdict cache.
	type qa struct {
		body, key, want string
		id              string
	}
	var questions []qa
	for i := 0; i < 8; i++ {
		variant := string(ghz5) + fmt.Sprintf("rz(0.%d1) q[0];\n", i+1)
		q := qa{body: checkBody(variant, variant), key: fmt.Sprintf("crash-%d", i), want: VerdictEquivalent}
		if i%2 == 1 {
			q.body = checkBody(variant, variant+"x q[0];\n")
			q.want = VerdictNotEquivalent
		}
		questions = append(questions, q)
	}

	// One worker so the SIGKILL below usually lands with jobs still queued or
	// mid-run; the restart must cope with any mix of finished and unfinished.
	d1 := startQcecd(t, bin, "-journal-dir", jdir, "-workers", "1")
	submit := func(base string, q qa) (JobResponse, int) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(q.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdempotencyKeyHeader, q.key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var jr JobResponse
		if resp.StatusCode == http.StatusAccepted {
			if err := json.Unmarshal(data, &jr); err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
		} else {
			t.Fatalf("submit status = %d; body %s", resp.StatusCode, data)
		}
		return jr, resp.StatusCode
	}
	for i := range questions {
		jr, _ := submit(d1.base, questions[i])
		questions[i].id = jr.JobID
	}

	// SIGKILL immediately: with two workers on eight jobs, some are running
	// and some are still queued — no drain, no goodbye, no synced tail.
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	<-d1.exited

	// Restart over the same journal.  Every accepted job must reach its
	// terminal verdict — recovered from the journal or re-run — with the
	// verdict the uninterrupted baseline dictates.
	d2 := startQcecd(t, bin, "-journal-dir", jdir, "-workers", "2")
	poll := func(id string) JobResponse {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(d2.base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatalf("GET job %s: %v", id, err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %s lost across restart: status %d body %s", id, resp.StatusCode, data)
			}
			var jr JobResponse
			if err := json.Unmarshal(data, &jr); err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			if jr.Status == StatusDone {
				return jr
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("job %s never finished after restart", id)
		return JobResponse{}
	}
	for _, q := range questions {
		jr := poll(q.id)
		if jr.Result == nil || jr.Result.Verdict != q.want {
			t.Errorf("job %s (%s): result %+v, want verdict %s", q.id, q.key, jr.Result, q.want)
		}
	}

	// Idempotent resubmit across the crash: same key + same question lands
	// on the recovered job id, not fresh work.
	re, _ := submit(d2.base, questions[0])
	if re.JobID != questions[0].id {
		t.Errorf("keyed resubmit id = %s, want recovered %s", re.JobID, questions[0].id)
	}

	// The recovery counters are visible on the wire.
	mr, err := http.Get(d2.base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mtext, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mtext), "qcecd_journal_replayed_records") {
		t.Errorf("metrics missing the journal replay counters")
	}

	// The restarted daemon still drains cleanly.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-d2.exited:
		if err != nil {
			t.Fatalf("qcecd exit = %v, want 0\n%s", err, d2.out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("qcecd did not exit after SIGTERM\n%s", d2.out.String())
	}
	t.Logf("restarted daemon output:\n%s", d2.out.String())
}

// metricValue extracts a metric's rendered value from Prometheus text
// exposition, failing the test when the metric is absent.
func metricValue(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("metric %q not found in:\n%s", name, text)
	return ""
}

// syncBuffer collects the daemon's output; the exec copy goroutine writes it
// while failure paths read it, so access is locked.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
