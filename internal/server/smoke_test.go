package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end service check used by `make serve-smoke`:
// build the real qcecd binary, run it on a random port, drive it over real
// HTTP with seed circuits, scrape /metrics, then SIGTERM it and require a
// clean exit.  Gated behind QCECD_SMOKE=1 because it compiles a binary.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("QCECD_SMOKE") == "" {
		t.Skip("set QCECD_SMOKE=1 to run the daemon smoke test")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "qcecd")
	build := exec.Command("go", "build", "-o", bin, "qcec/cmd/qcecd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build qcecd: %v\n%s", err, out)
	}

	ghz5, err := os.ReadFile("../../circuits/ghz5.qasm")
	if err != nil {
		t.Fatalf("read seed circuit: %v", err)
	}
	equivalentPair := checkBody(string(ghz5), string(ghz5))
	differingPair := checkBody(string(ghz5), string(ghz5)+"x q[0];\n")

	addrFile := filepath.Join(tmp, "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "2",
		"-drain-timeout", "20s",
	)
	var output syncBuffer
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatalf("start qcecd: %v", err)
	}
	// exited is closed after the wait result is delivered, so every receive
	// after the first returns immediately (the cleanup below must not hang
	// when the test body already consumed the result).
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			_ = cmd.Process.Kill()
			<-exited
		}
	}()

	// The daemon binds before announcing, so the address file appearing
	// means connects will succeed.
	var base string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		select {
		case err := <-exited:
			t.Fatalf("qcecd exited before serving: %v\n%s", err, output.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("address file never appeared\n%s", output.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	post := func(body string) CheckResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/check: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check status = %d; body %s", resp.StatusCode, data)
		}
		var res CheckResponse
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		return res
	}

	if res := post(equivalentPair); res.Verdict != VerdictEquivalent {
		t.Fatalf("ghz5 vs ghz5 verdict = %q, want equivalent", res.Verdict)
	} else if res.ECVerdict == "" {
		// 2^5 basis states > DefaultR stimuli: the complete routine must
		// have produced the proof.
		t.Errorf("equivalent verdict without a complete-routine run: %+v", res)
	}
	if res := post(differingPair); res.Verdict != VerdictNotEquivalent {
		t.Fatalf("ghz5 vs ghz5+X verdict = %q, want not_equivalent", res.Verdict)
	} else if res.Counterexample == nil {
		t.Errorf("not_equivalent without a counterexample")
	}

	// A concurrent burst: all succeed, none crash the daemon.
	var wg sync.WaitGroup
	verdicts := make(chan string, 8)
	for i := 0; i < 8; i++ {
		body := equivalentPair
		if i%2 == 1 {
			body = differingPair
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			verdicts <- post(body).Verdict
		}()
	}
	wg.Wait()
	close(verdicts)
	for v := range verdicts {
		if v != VerdictEquivalent && v != VerdictNotEquivalent {
			t.Errorf("burst verdict = %q", v)
		}
	}

	// Health and metrics reflect the traffic.
	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %v)", err, hr)
	}
	hr.Body.Close()
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mtext, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		`qcecd_checks_total{verdict="equivalent"} 5`,
		`qcecd_checks_total{verdict="not_equivalent"} 5`,
		"qcecd_jobs_completed_total 10",
		"qcecd_dd_apply_calls_total",
		"qcecd_check_duration_seconds_count 10",
	} {
		if !strings.Contains(string(mtext), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// SIGTERM: graceful drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("qcecd exit = %v, want 0\n%s", err, output.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("qcecd did not exit after SIGTERM\n%s", output.String())
	}
	if !strings.Contains(output.String(), "drained") {
		t.Errorf("daemon output missing the drain confirmation:\n%s", output.String())
	}
	t.Logf("daemon output:\n%s", output.String())
}

// syncBuffer collects the daemon's output; the exec copy goroutine writes it
// while failure paths read it, so access is locked.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
