package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcec/internal/wal"
)

// The durable job journal.
//
// Every job accepted by POST /v1/jobs (and every /v1/check carrying an
// Idempotency-Key — those clients have announced they will retry) is logged
// as an append-only sequence of state transitions in a write-ahead journal
// under Config.JournalDir:
//
//	accepted  {job, fingerprint, idempotency key, full request}
//	started   {job, attempt}
//	retry     {job, attempt, error class}
//	finished  {job, final wire response}
//	aborted   {job}  — admission failed after the accepted record landed
//
// The contract is at-least-once execution with exactly-once results:
//
//   - A job id is only returned to a client after its accepted record is
//     fsynced (group-committed: concurrent appenders share one fsync), so a
//     crash can lose work the client was never promised, but never work it
//     was.
//   - Startup replay re-enqueues accepted-but-unfinished jobs and serves
//     already-finished verdicts from the journal through the verdict cache
//     and the async job table, so a client polling GET /v1/jobs/{id} or
//     retrying with its Idempotency-Key lands on the same job id and the
//     same verdict across a restart.
//   - Records are CRC-framed (internal/wal); a crash mid-append leaves a
//     torn tail that replay truncates before appending resumes.  Replay is
//     order-agnostic per job id — a worker's started record may legally hit
//     the disk before the handler's accepted record under concurrency.
//
// Only the accepted record blocks on durability; started/retry/finished
// appends are asynchronous (they ride along the next group commit).  Losing
// a finished record in a crash merely re-runs the job: checks are
// deterministic per seed, so the replayed verdict is the same.

// journalFile is the single journal segment inside Config.JournalDir.
const journalFile = "journal.wal"

// errJournalClosed is returned by append after Close (or a test crash).
var errJournalClosed = errors.New("server: journal closed")

// journalRecord is the JSON payload inside one WAL frame.
type journalRecord struct {
	// Type is the transition: accepted|started|retry|finished|aborted.
	Type string `json:"type"`
	// Job is the job id the transition belongs to.
	Job string `json:"job"`
	// FP is the pair fingerprint in hex (accepted and finished records).
	FP string `json:"fp,omitempty"`
	// Key is the client-supplied Idempotency-Key, when any.
	Key string `json:"key,omitempty"`
	// At is the transition time in unix milliseconds (diagnostic only —
	// replay semantics never depend on clocks).
	At int64 `json:"at,omitempty"`
	// Attempt is the 1-based execution attempt (started and retry records).
	Attempt int `json:"attempt,omitempty"`
	// Class is the transient-error class that triggered a retry record.
	Class string `json:"class,omitempty"`
	// Req is the full check request (accepted records), enough to re-run
	// the job after a restart.
	Req *CheckRequest `json:"req,omitempty"`
	// Res is the final wire response (finished records).
	Res *CheckResponse `json:"res,omitempty"`
}

// journalStats is a point-in-time snapshot for /metrics.
type journalStats struct {
	Appends      uint64 // records appended this process lifetime
	AppendErrors uint64 // appends that failed to reach the file
	Syncs        uint64 // fsync group commits
	Replayed     uint64 // records replayed at startup
	Recovered    uint64 // finished jobs served from the journal at startup
	Requeued     uint64 // unfinished jobs re-enqueued at startup
	TornTails    uint64 // 1 when startup truncated a damaged tail
	Skipped      uint64 // CRC-valid records with undecodable payloads
}

// journal is the append side: one writer file, group-committed fsyncs.
type journal struct {
	mu sync.Mutex // serializes file writes and close
	f  *os.File

	appends      atomic.Uint64
	appendErrors atomic.Uint64
	syncs        atomic.Uint64

	// Startup-replay counters, written once before the server serves.
	replayed  uint64
	recovered uint64
	requeued  uint64
	tornTails uint64
	skipped   uint64

	// Group commit: durable appenders park a waiter channel and kick the
	// sync loop; one fsync answers every waiter that arrived before it.
	waitMu  sync.Mutex
	waiters []chan error
	kick    chan struct{}
	closeCh chan struct{}
	doneCh  chan struct{}
}

// replayJob is one job's merged journal state after replay.
type replayJob struct {
	id       string
	req      *CheckRequest
	idemKey  string
	fp       string
	attempts int            // started records seen
	result   *CheckResponse // non-nil once finished
	aborted  bool
}

// replayState is everything startup recovery needs from the journal.
type replayState struct {
	jobs  map[string]*replayJob
	order []string // accepted/first-seen order
	maxID uint64   // largest numeric job-id suffix seen
}

// openJournal replays dir's journal (creating it when absent), truncates a
// torn tail, and returns the append handle positioned at the end together
// with the replayed state.
func openJournal(dir string) (*journal, *replayState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal open: %w", err)
	}

	jl := &journal{
		f:       f,
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	st := &replayState{jobs: make(map[string]*replayJob)}

	sc := wal.NewScanner(f)
	for sc.Scan() {
		jl.replayed++
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Job == "" {
			jl.skipped++ // CRC-valid but undecodable: writer-version skew, not a torn tail
			continue
		}
		st.apply(rec)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal replay: %w", err)
	}
	if sc.Torn() {
		jl.tornTails = 1
		if err := f.Truncate(sc.Offset()); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(sc.Offset(), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal seek: %w", err)
	}

	go jl.syncLoop()
	return jl, st, nil
}

// apply merges one record into the replay state.  Per-job merging is
// order-agnostic: any field may arrive before or after any other.
func (st *replayState) apply(rec journalRecord) {
	rj := st.jobs[rec.Job]
	if rj == nil {
		rj = &replayJob{id: rec.Job}
		st.jobs[rec.Job] = rj
		st.order = append(st.order, rec.Job)
		if n, ok := parseJobID(rec.Job); ok && n > st.maxID {
			st.maxID = n
		}
	}
	switch rec.Type {
	case recAccepted:
		rj.req = rec.Req
		if rec.Key != "" {
			rj.idemKey = rec.Key
		}
		if rec.FP != "" {
			rj.fp = rec.FP
		}
	case recStarted:
		if rec.Attempt > rj.attempts {
			rj.attempts = rec.Attempt
		}
	case recFinished:
		rj.result = rec.Res
		if rec.FP != "" && rj.fp == "" {
			rj.fp = rec.FP
		}
	case recAborted:
		rj.aborted = true
	}
}

// Record type tags.
const (
	recAccepted = "accepted"
	recStarted  = "started"
	recRetry    = "retry"
	recFinished = "finished"
	recAborted  = "aborted"
)

// parseJobID extracts the numeric suffix of a "j%08d" job id.
func parseJobID(id string) (uint64, bool) {
	num, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// append writes one record.  When durable is true it returns only after the
// record is fsynced; concurrent durable appenders share a single group
// commit.  Asynchronous appends still kick the sync loop, so nothing stays
// unsynced longer than one loop iteration under any traffic.
func (jl *journal) append(rec journalRecord, durable bool) error {
	rec.At = time.Now().UnixMilli()
	payload, err := json.Marshal(rec)
	if err != nil {
		jl.appendErrors.Add(1)
		return err
	}
	frame := wal.EncodeRecord(nil, payload)

	jl.mu.Lock()
	if jl.f == nil {
		jl.mu.Unlock()
		jl.appendErrors.Add(1)
		return errJournalClosed
	}
	_, werr := jl.f.Write(frame)
	jl.mu.Unlock()
	if werr != nil {
		jl.appendErrors.Add(1)
		return werr
	}
	jl.appends.Add(1)

	if !durable {
		jl.kickSync()
		return nil
	}
	ch := make(chan error, 1)
	jl.waitMu.Lock()
	jl.waiters = append(jl.waiters, ch)
	jl.waitMu.Unlock()
	jl.kickSync()
	return <-ch
}

func (jl *journal) kickSync() {
	select {
	case jl.kick <- struct{}{}:
	default: // a sync is already pending; it will cover this append
	}
}

// syncLoop is the group-commit goroutine: every kick becomes at most one
// fsync answering all waiters that arrived before it.
func (jl *journal) syncLoop() {
	defer close(jl.doneCh)
	for {
		select {
		case <-jl.kick:
		case <-jl.closeCh:
			jl.settle(jl.syncOnce())
			return
		}
		jl.settle(jl.syncOnce())
	}
}

// syncOnce fsyncs the file (nil error when already closed: close syncs).
func (jl *journal) syncOnce() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return errJournalClosed
	}
	err := jl.f.Sync()
	jl.syncs.Add(1)
	return err
}

// settle delivers one commit outcome to every parked waiter.
func (jl *journal) settle(err error) {
	jl.waitMu.Lock()
	ws := jl.waiters
	jl.waiters = nil
	jl.waitMu.Unlock()
	for _, ch := range ws {
		ch <- err
	}
}

// close syncs and closes the journal; append fails afterwards.  Idempotent.
func (jl *journal) close() {
	jl.mu.Lock()
	if jl.f != nil {
		_ = jl.f.Sync()
		_ = jl.f.Close()
		jl.f = nil
	}
	jl.mu.Unlock()
	select {
	case <-jl.closeCh:
	default:
		close(jl.closeCh)
	}
	<-jl.doneCh
}

// crash abandons the journal without syncing pending asynchronous appends —
// the in-process stand-in for SIGKILL used by the recovery chaos tests.
func (jl *journal) crash() {
	jl.close()
}

// The server-side append helpers below are safe no-ops for jobs outside the
// durability contract (journal disabled, or a keyless sync check).

// journalAccepted logs a job's acceptance together with everything needed to
// re-run it.  durable=true blocks until the record is fsynced — callers must
// not promise the job id to a client before this returns.
func (s *Server) journalAccepted(j *job, durable bool) error {
	if !j.journaled || s.journal == nil {
		return nil
	}
	req := j.req
	err := s.journal.append(journalRecord{
		Type: recAccepted,
		Job:  j.id,
		FP:   j.ckey.pair.String(),
		Key:  j.idemKey,
		Req:  &req,
	}, durable)
	if err != nil {
		s.log.Error("journal append failed", "type", recAccepted, "job", j.id, "err", err)
	}
	return err
}

// journalAborted logs that an accepted job was rejected at admission; replay
// will not resurrect it.
func (s *Server) journalAborted(j *job) {
	if !j.journaled || s.journal == nil {
		return
	}
	_ = s.journal.append(journalRecord{Type: recAborted, Job: j.id}, false)
}

// journalStarted logs the start of execution attempt n (1-based).
func (s *Server) journalStarted(j *job, attempt int) {
	if !j.journaled || s.journal == nil {
		return
	}
	_ = s.journal.append(journalRecord{Type: recStarted, Job: j.id, Attempt: attempt}, false)
}

// journalRetry logs a transient failure about to be re-run.
func (s *Server) journalRetry(j *job, attempt int, class string) {
	if !j.journaled || s.journal == nil {
		return
	}
	_ = s.journal.append(journalRecord{Type: recRetry, Job: j.id, Attempt: attempt, Class: class}, false)
}

// journalFinished logs a job's final verdict.  Asynchronous: losing it in a
// crash merely re-runs a deterministic check on replay.
func (s *Server) journalFinished(j *job, res *CheckResponse) {
	if !j.journaled || s.journal == nil {
		return
	}
	s.journal.append(journalRecord{
		Type: recFinished,
		Job:  j.id,
		FP:   j.ckey.pair.String(),
		Res:  res,
	}, false)
}

// stats snapshots the journal counters for /metrics.
func (jl *journal) stats() journalStats {
	return journalStats{
		Appends:      jl.appends.Load(),
		AppendErrors: jl.appendErrors.Load(),
		Syncs:        jl.syncs.Load(),
		Replayed:     jl.replayed,
		Recovered:    jl.recovered,
		Requeued:     jl.requeued,
		TornTails:    jl.tornTails,
		Skipped:      jl.skipped,
	}
}
