package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"qcec/internal/core"
)

// Crash-recovery chaos tests.  The in-process stand-in for SIGKILL: block
// every worker mid-execution, abandon the journal without letting any
// finished record land, discard the server, and boot a fresh one over the
// same journal directory.  The serve-smoke harness repeats the same protocol
// against the real binary with an actual SIGKILL.

// TestCrashRecoveryNoLostJobs: every job accepted (202'd) before the crash
// reaches a terminal verdict after restart, the verdicts match what an
// uninterrupted run produces, and an idempotent resubmit lands on the
// recovered job instead of duplicating work.
func TestCrashRecoveryNoLostJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, QueueDepth: 16}

	s, ts, _ := restartableServer(t, dir, cfg)
	block := make(chan struct{})
	s.exec = func(j *job) core.Report { <-block; return core.Report{} }

	// Six accepted jobs: two blocked inside workers (started records on
	// disk), four still queued (accepted records only).  Known verdicts.
	type want struct {
		id      string
		verdict string
	}
	var wants []want
	for i := 0; i < 6; i++ {
		body := checkBody(bellQASM, bellQASM)
		verdict := VerdictEquivalent
		if i%2 == 1 {
			body = checkBody(bellQASM, bellFlippedQASM)
			verdict = VerdictNotEquivalent
		}
		key := ""
		if i == 0 {
			key = "crash-survivor"
		}
		resp, data := postWithKey(t, ts.URL+"/v1/jobs", body, key)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d; body %s", i, resp.StatusCode, data)
		}
		var jr JobResponse
		if err := json.Unmarshal(data, &jr); err != nil {
			t.Fatal(err)
		}
		wants = append(wants, want{jr.JobID, verdict})
	}
	// Let the workers actually start their two jobs so started records hit
	// the journal before the crash.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Crash: HTTP front gone, journal abandoned un-synced-tail and all, no
	// finished record ever written.  Then release the zombie workers and
	// reap the old pool so the test process stays clean.
	ts.Close()
	s.journal.crash()
	close(block)
	ctx, cancel := contextWithTimeout(5 * time.Second)
	_ = s.Shutdown(ctx)
	cancel()

	// Restart over the same journal with the real executor.
	s2, ts2, stop2 := restartableServer(t, dir, cfg)
	defer stop2()

	// Zero lost jobs: every pre-crash id reaches a terminal verdict, and no
	// verdict flips against the deterministic expectation.
	for _, w := range wants {
		waitDone(t, ts2, w.id)
		_, body := getJSON(t, ts2.URL+"/v1/jobs/"+w.id)
		var jr JobResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatalf("job %s: %v (body %s)", w.id, err, body)
		}
		if jr.Result == nil || jr.Result.Verdict != w.verdict {
			t.Errorf("job %s: verdict %+v, want %s", w.id, jr.Result, w.verdict)
		}
	}
	if got := s2.journal.requeued; got != 6 {
		t.Errorf("requeued = %d, want 6", got)
	}

	// Idempotent resubmit after the crash attaches to the recovered job.
	resp, data := postWithKey(t, ts2.URL+"/v1/jobs", checkBody(bellQASM, bellQASM), "crash-survivor")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit = %d; body %s", resp.StatusCode, data)
	}
	var re JobResponse
	if err := json.Unmarshal(data, &re); err != nil {
		t.Fatal(err)
	}
	if re.JobID != wants[0].id {
		t.Errorf("resubmit id = %s, want recovered %s", re.JobID, wants[0].id)
	}

	_, body := getJSON(t, ts2.URL+"/metrics")
	if !strings.Contains(string(body), "qcecd_journal_requeued_jobs 6") {
		t.Errorf("metrics missing qcecd_journal_requeued_jobs 6")
	}
}

// TestCrashRecoveryRepeated: two crash/restart cycles in a row — recovery
// must be idempotent, never duplicating or resurrecting aborted work.
func TestCrashRecoveryRepeated(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8}

	s, ts, _ := restartableServer(t, dir, cfg)
	block := make(chan struct{})
	s.exec = func(j *job) core.Report { <-block; return core.Report{} }
	resp, data := postJSON(t, ts.URL+"/v1/jobs", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body %s", resp.StatusCode, data)
	}
	var jr JobResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	s.journal.crash()
	close(block)
	ctx, cancel := contextWithTimeout(5 * time.Second)
	_ = s.Shutdown(ctx)
	cancel()

	// First restart also crashes before the job can finish.  The blocking
	// executor is installed via the config hook — the recovered job requeues
	// the moment New returns, so swapping s2.exec afterwards would race.
	block2 := make(chan struct{})
	cfg2 := cfg
	cfg2.testExec = func(j *job) core.Report { <-block2; return core.Report{} }
	s2, ts2, _ := restartableServer(t, dir, cfg2)
	deadline := time.Now().Add(5 * time.Second)
	for s2.inflight.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ts2.Close()
	s2.journal.crash()
	close(block2)
	ctx2, cancel2 := contextWithTimeout(5 * time.Second)
	_ = s2.Shutdown(ctx2)
	cancel2()

	// Second restart finishes the job for real.
	s3, ts3, stop3 := restartableServer(t, dir, cfg)
	defer stop3()
	waitDone(t, ts3, jr.JobID)
	_, body := getJSON(t, ts3.URL+"/v1/jobs/"+jr.JobID)
	var final JobResponse
	if err := json.Unmarshal(body, &final); err != nil || final.Result == nil {
		t.Fatalf("job after two crashes: %s", body)
	}
	if final.Result.Verdict != VerdictEquivalent {
		t.Errorf("verdict = %s, want %s", final.Result.Verdict, VerdictEquivalent)
	}
	if got := s3.journal.requeued; got != 1 {
		t.Errorf("second recovery requeued = %d, want exactly the one job", got)
	}
}
