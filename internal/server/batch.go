package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// POST /v1/batch: check up to MaxBatchItems circuit pairs in one request.
//
// A compilation flow verifies a whole pass pipeline at once — N pairs, many
// of them textually distinct encodings of the same question.  The batch
// endpoint answers all of them in one round trip:
//
//   - Per-item failure isolation: an invalid item (bad QASM, oversized
//     circuit) gets a typed item-local error; the rest of the batch runs.
//     The response is 200 unless the batch itself is malformed.
//   - Intra-batch deduplication: items whose pair fingerprint AND options
//     coincide are checked once; the duplicates reuse that execution's
//     result (marked "cached": true).
//   - Cache integration: each unique question consults the verdict cache
//     before being admitted, and definitive answers are inserted as usual.
//   - Backpressure instead of rejection: unique items are fed to the worker
//     queue with a blocking submit (submitWait), so a batch larger than the
//     queue trickles in as workers drain it rather than failing with 429.
//     Items are fed and collected concurrently to keep the workers busy.

// batchKey identifies a batch item's full question: the pair fingerprint
// plus every request option.  Dedup must be exact — two items differing in
// any option (r, seed, timeout, ...) can legitimately produce different
// responses, so only option-identical items share an execution.
type batchKey struct {
	ckey cacheKey
	opts CheckOptions
}

// handleBatch is POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failDecode(w, err)
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, `batch has no "items"`)
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.fail(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			fmt.Sprintf("batch has %d items (limit %d)", len(req.Items), s.cfg.MaxBatchItems))
		return
	}

	resp := BatchResponse{Items: make([]BatchItemResult, len(req.Items))}
	leaders := make(map[batchKey]int, len(req.Items)) // question → first item index
	followerOf := make(map[int]int)                   // duplicate item → leader index
	jobs := make(map[int]*job)                        // leader item → its execution

	for i, item := range req.Items {
		resp.Items[i].Index = i
		j, apiErr := s.buildJob(item)
		if apiErr != nil {
			resp.Items[i].Error = &ErrorDetail{Code: apiErr.code, Message: apiErr.msg}
			resp.Failed++
			continue
		}
		bk := batchKey{ckey: j.ckey, opts: item.Options}
		if leader, dup := leaders[bk]; dup {
			followerOf[i] = leader
			resp.Deduplicated++
			j.cancel(nil)
			continue
		}
		leaders[bk] = i
		if res, hit := s.cachedResponse(j); hit {
			resp.Items[i].Result = res
			resp.CacheHits++
			j.cancel(nil)
			continue
		}
		jobs[i] = j
	}

	// Feed the unique jobs through the bounded queue with backpressure.  A
	// client disconnect (or server drain) stops feeding and cancels what is
	// already running; the per-job AfterFunc mirrors handleCheck.
	submitted := make([]int, 0, len(jobs))
	var submitErr *ErrorDetail
	for i := 0; i < len(req.Items) && submitErr == nil; i++ {
		j, ok := jobs[i]
		if !ok {
			continue
		}
		stop := context.AfterFunc(r.Context(), func() {
			j.cancel(context.Cause(r.Context()))
		})
		defer stop()
		if err := s.submitWait(r.Context(), j); err != nil {
			j.cancel(nil)
			delete(jobs, i)
			if errors.Is(err, errDraining) {
				submitErr = &ErrorDetail{Code: CodeDraining, Message: "server is shutting down"}
			} else {
				submitErr = &ErrorDetail{Code: CodeCancelled, Message: "batch abandoned: " + err.Error()}
			}
			resp.Items[i].Error = submitErr
			resp.Failed++
			break
		}
		submitted = append(submitted, i)
	}
	if submitErr != nil {
		// Items never submitted inherit the same typed error.
		for i, j := range jobs {
			if resp.Items[i].Error == nil && resp.Items[i].Result == nil {
				j.cancel(nil)
				resp.Items[i].Error = submitErr
				resp.Failed++
			}
		}
	}

	for _, i := range submitted {
		j := jobs[i]
		<-j.done
		resp.Items[i].Result = j.result
		resp.Checked++
	}

	// Duplicates reuse their leader's outcome, marked as served from
	// memoization; a leader that failed propagates its typed error.
	for i, leader := range followerOf {
		li := resp.Items[leader]
		switch {
		case li.Result != nil:
			dup := *li.Result
			dup.Cached = true
			dup.DD = nil
			dup.Mem = nil
			resp.Items[i].Result = &dup
		case li.Error != nil:
			resp.Items[i].Error = li.Error
			resp.Deduplicated--
			resp.Failed++
		}
	}

	s.metrics.batchRequest(len(req.Items), resp.Deduplicated, resp.Failed)
	writeJSON(w, http.StatusOK, resp)
}
