package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/resource"
)

// TestClassifyOutcome pins the retry classifier's partition: transient
// failures (panics, memory trips) are worth a degraded re-run, deterministic
// failures and client-budget cancellations are not.
func TestClassifyOutcome(t *testing.T) {
	memErr := &resource.MemoryLimitError{HeapBytes: 1 << 30, LimitBytes: 1 << 29}
	panErr := resource.NewPanicError("test", "boom")
	cases := []struct {
		name      string
		rep       core.Report
		panicErr  *resource.PanicError
		wantClass errClass
		wantLabel string
	}{
		{"clean verdict", core.Report{}, nil, classNone, ""},
		{"worker panic", core.Report{}, panErr, classTransient, "panic"},
		{"engine panic in err", core.Report{Err: panErr}, nil, classTransient, "panic"},
		{"mem limit as err", core.Report{Err: memErr}, nil, classTransient, "mem_limit"},
		{"mem limit as cancel cause",
			core.Report{Cancelled: true, CancelCause: memErr}, nil, classTransient, "mem_limit"},
		{"client cancellation",
			core.Report{Cancelled: true, CancelCause: context.DeadlineExceeded}, nil, classNone, "cancelled"},
		{"drain cancellation",
			core.Report{Cancelled: true, CancelCause: &DrainError{Waited: time.Second}}, nil, classNone, "drain"},
		{"node-limit exhaustion",
			core.Report{EC: &ec.Result{Cause: ec.CauseNodeLimit}}, nil, classPermanent, "node_limit"},
		{"other error", core.Report{Err: errors.New("degenerate input")}, nil, classPermanent, "error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			class, label := classifyOutcome(tc.rep, tc.panicErr)
			if class != tc.wantClass || label != tc.wantLabel {
				t.Errorf("classifyOutcome = (%v, %q), want (%v, %q)",
					class, label, tc.wantClass, tc.wantLabel)
			}
		})
	}
}

// TestRetryDelayBounds: the backoff grows exponentially, stays inside the
// full-jitter envelope [base·2^k/2, base·2^k·3/2), and caps at 5s even for
// attempt indices that would overflow the shift.
func TestRetryDelayBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		nominal := base << uint(attempt)
		if nominal > 5*time.Second {
			nominal = 5 * time.Second
		}
		for i := 0; i < 50; i++ {
			d := retryDelay(base, attempt)
			if d < nominal/2 || d >= nominal/2+nominal+time.Millisecond {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, nominal/2, nominal/2+nominal)
			}
		}
	}
	for _, attempt := range []int{40, 63, 100} {
		if d := retryDelay(base, attempt); d < 5*time.Second/2 || d > 5*time.Second*3/2 {
			t.Fatalf("attempt %d: delay %v escaped the cap envelope", attempt, d)
		}
	}
}

// TestRetryAfterSecondsJitter: the hint stays within the ±25% envelope
// (rounded up) and never drops below 1.
func TestRetryAfterSecondsJitter(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		s := retryAfterSeconds(2 * time.Second)
		if s < 2 || s > 3 {
			t.Fatalf("retryAfterSeconds(2s) = %d, want 2..3", s)
		}
		seen[s] = true
	}
	if s := retryAfterSeconds(time.Millisecond); s != 1 {
		t.Fatalf("retryAfterSeconds(1ms) = %d, want 1", s)
	}
	if len(seen) < 2 {
		t.Errorf("no jitter observed across 200 samples: %v", seen)
	}
}

// TestTransientFailureRetriedToSuccess: a job whose first attempt panics is
// re-run and succeeds, reporting both attempts and counting the retry.
func TestTransientFailureRetriedToSuccess(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobRetries: 2, RetryBackoff: time.Millisecond})
	calls := 0
	s.exec = func(j *job) core.Report {
		calls++
		if calls == 1 {
			panic("transient fault")
		}
		return core.Report{Verdict: core.Equivalent}
	}

	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictEquivalent {
		t.Fatalf("verdict = %q, want %q (body %s)", res.Verdict, VerdictEquivalent, data)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
	if calls != 2 {
		t.Errorf("executor ran %d times, want 2", calls)
	}

	_, body := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), `qcecd_job_retries_total{class="panic"} 1`) {
		t.Errorf("metrics missing the panic retry count:\n%s", body)
	}
}

// TestTransientFailureExhaustsRetries: a persistently panicking executor is
// re-run exactly MaxJobRetries times, then the failure is returned.
func TestTransientFailureExhaustsRetries(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobRetries: 2, RetryBackoff: time.Millisecond})
	calls := 0
	s.exec = func(j *job) core.Report {
		calls++
		panic("always broken")
	}

	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictError || !strings.Contains(res.Error, "always broken") {
		t.Fatalf("result = %+v, want the final panic surfaced", res)
	}
	if calls != 3 {
		t.Errorf("executor ran %d times, want 3 (1 + 2 retries)", calls)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
}

// TestPermanentFailureNotRetried: a deterministic error burns no retries.
func TestPermanentFailureNotRetried(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobRetries: 2, RetryBackoff: time.Millisecond})
	calls := 0
	s.exec = func(j *job) core.Report {
		calls++
		return core.Report{Err: errors.New("bad question")}
	}

	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictError {
		t.Fatalf("verdict = %q, want error", res.Verdict)
	}
	if calls != 1 {
		t.Errorf("executor ran %d times, want 1 (permanent errors never retry)", calls)
	}
	if res.Attempts != 0 {
		t.Errorf("Attempts = %d, want omitted for single-attempt jobs", res.Attempts)
	}
}

// TestDegradedRetryBudget: the real executor's retry budget mirrors the
// portfolio's degraded policy (sequential, reference path, bounded DD).
// Exercised through runCheck by checking a real pair with attempt > 0 — the
// verdict must still be correct under the degraded configuration.
func TestDegradedRetryBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobRetries: 1, RetryBackoff: time.Millisecond})
	first := true
	real := s.exec
	s.exec = func(j *job) core.Report {
		if first {
			first = false
			panic("force a degraded re-run")
		}
		if j.attempt == 0 {
			t.Error("retry ran with attempt = 0; degradation never engages")
		}
		return real(j)
	}

	resp, data := postJSON(t, ts.URL+"/v1/check", checkBody(bellQASM, bellFlippedQASM))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, data)
	}
	var res CheckResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictNotEquivalent {
		t.Fatalf("degraded verdict = %q, want %q (body %s)", res.Verdict, VerdictNotEquivalent, data)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
}
