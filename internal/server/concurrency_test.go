package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qcec/internal/core"
)

// newFrontend serves s over HTTP without the automatic drain of
// newTestServer — these tests drive Shutdown themselves.
func newFrontend(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestBoundedConcurrency proves the worker pool is the hard bound on
// in-flight checks: many more requests than workers, yet the observed
// concurrency never exceeds the pool size, every request completes, and the
// drain leaves no goroutines behind.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	const requests = 20

	baseline := runtime.NumGoroutine()

	s, err := New(Config{Workers: workers, QueueDepth: requests})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var cur, peak atomic.Int64
	s.exec = func(j *job) core.Report {
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		return core.Report{}
	}
	ts := newFrontend(t, s)

	var wg sync.WaitGroup
	errs := make(chan string, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/check", "application/json",
				strings.NewReader(checkBody(bellQASM, bellQASM)))
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- resp.Status
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("request failed: %s", e)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency = %d, exceeds the %d-worker pool", p, workers)
	}

	ctx, cancel := contextWithTimeout(10 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ts.Close()

	// All worker and per-job goroutines must be gone after the drain; allow
	// the runtime a moment to retire finished goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s", n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainDeadlineCancelsStragglers: a job that outlives the drain deadline
// is cancelled with the typed *DrainError cause rather than waited on
// forever.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	jobStarted := make(chan struct{})
	sawCause := make(chan error, 1)
	s.exec = func(j *job) core.Report {
		close(jobStarted)
		<-j.ctx.Done()
		sawCause <- context.Cause(j.ctx)
		return core.Report{Verdict: core.ProbablyEquivalent, Cancelled: true}
	}
	ts := newFrontend(t, s)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/check", "application/json",
			strings.NewReader(checkBody(bellQASM, bellQASM)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-jobStarted

	ctx, cancel := contextWithTimeout(50 * time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatalf("Shutdown returned nil, want the drain-deadline error")
	}
	select {
	case cause := <-sawCause:
		if _, ok := cause.(*DrainError); !ok {
			t.Errorf("job cancellation cause = %T (%v), want *DrainError", cause, cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job never observed the drain cancellation")
	}
	<-done
	ts.Close()
}
