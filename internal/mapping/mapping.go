package mapping

import (
	"fmt"

	"qcec/internal/circuit"
)

// Options configures the router.
type Options struct {
	// Arch is the target coupling graph; its size must match the circuit.
	Arch *Architecture
	// RestoreLayout appends SWAPs at the end so that the mapped circuit is
	// strictly equivalent to the input.  Otherwise the final placement is
	// reported as OutputPerm (the paper's checker handles both styles).
	RestoreLayout bool
	// DecomposeSwaps lowers every inserted SWAP into three CX gates, as a
	// real device would execute them.
	DecomposeSwaps bool
	// Lookahead enables SABRE-style swap selection: each inserted SWAP is
	// chosen, among those that bring the current gate closer, to minimize
	// the total coupling distance of the next Lookahead two-qubit gates.
	// 0 selects the plain both-ends shortest-path walk.
	Lookahead int
}

// Result is a mapped circuit plus its layout bookkeeping.
type Result struct {
	Circuit *circuit.Circuit
	// OutputPerm[q] is the physical wire holding logical qubit q after the
	// circuit ran; nil when the layout was restored (identity).
	OutputPerm []int
	// SwapsInserted counts inserted SWAP operations (before CX lowering).
	SwapsInserted int
	// CostProfile[i] is the number of output gates input gate i produced
	// (the gate itself plus routing SWAPs or their CX lowering); trailing
	// layout-restoring SWAPs are attributed to the last input gate, so the
	// profile's total equals the output gate count.  It is the native
	// gate-cost profile for ec.StrategyGateCost, composable with the
	// decompose stage's profile via ec.ComposeProfiles.
	CostProfile []int
}

// router tracks the logical-to-physical placement during routing.
type router struct {
	arch  *Architecture
	opts  Options
	out   *circuit.Circuit
	place []int // place[logical] = physical
	at    []int // at[physical] = logical
	swaps int

	// future lists the logical two-qubit interactions in program order;
	// futureIdx points at the current gate (lookahead heuristic only).
	future    [][2]int
	futureIdx int
}

// Map routes the circuit onto the architecture.  Input gates must touch at
// most two qubits (decompose multi-controlled gates first).
func Map(c *circuit.Circuit, opts Options) (*Result, error) {
	if opts.Arch == nil {
		return nil, fmt.Errorf("mapping: no architecture given")
	}
	if opts.Arch.N != c.N {
		return nil, fmt.Errorf("mapping: circuit has %d qubits but architecture %q has %d",
			c.N, opts.Arch.Name, opts.Arch.N)
	}
	r := &router{
		arch:  opts.Arch,
		opts:  opts,
		out:   circuit.New(c.N, c.Name+"@"+opts.Arch.Name),
		place: make([]int, c.N),
		at:    make([]int, c.N),
	}
	for q := range r.place {
		r.place[q] = q
		r.at[q] = q
	}
	if opts.Lookahead > 0 {
		// Pre-scan the two-qubit interactions for the lookahead cost.
		for _, g := range c.Gates {
			if qs := g.Qubits(); len(qs) == 2 {
				r.future = append(r.future, [2]int{qs[0], qs[1]})
			}
		}
	}
	profile := make([]int, len(c.Gates))
	for i, g := range c.Gates {
		before := len(r.out.Gates)
		if err := r.route(g); err != nil {
			return nil, fmt.Errorf("mapping: gate %d (%s): %w", i, g, err)
		}
		profile[i] = len(r.out.Gates) - before
	}
	res := &Result{Circuit: r.out, SwapsInserted: r.swaps, CostProfile: profile}
	if opts.RestoreLayout {
		before := len(r.out.Gates)
		r.restore()
		if len(profile) > 0 {
			profile[len(profile)-1] += len(r.out.Gates) - before
		}
		res.Circuit = r.out
	} else {
		identity := true
		perm := make([]int, c.N)
		copy(perm, r.place)
		for q, p := range perm {
			if q != p {
				identity = false
			}
		}
		if !identity {
			res.OutputPerm = perm
		}
	}
	res.SwapsInserted = r.swaps
	return res, nil
}

// emitSwap swaps two adjacent physical wires and updates the placement.
func (r *router) emitSwap(p1, p2 int) {
	if !r.arch.Adjacent(p1, p2) {
		panic(fmt.Sprintf("mapping: internal error: swap of non-adjacent wires %d,%d", p1, p2))
	}
	if r.opts.DecomposeSwaps {
		r.out.CX(p1, p2).CX(p2, p1).CX(p1, p2)
	} else {
		r.out.Swap(p1, p2)
	}
	r.swaps++
	l1, l2 := r.at[p1], r.at[p2]
	r.at[p1], r.at[p2] = l2, l1
	r.place[l1], r.place[l2] = p2, p1
}

// moveAdjacent inserts SWAPs until the physical carriers of two logical
// qubits are coupled, moving along a shortest path from both ends (this
// keeps the displacement balanced, like the heuristics in the mapping
// literature).
func (r *router) moveAdjacent(l1, l2 int) (int, int) {
	for {
		p1, p2 := r.place[l1], r.place[l2]
		if r.arch.Adjacent(p1, p2) {
			return p1, p2
		}
		path := r.arch.Path(p1, p2)
		// Move l1 one hop towards l2.
		r.emitSwap(path[0], path[1])
		if p1, p2 = r.place[l1], r.place[l2]; r.arch.Adjacent(p1, p2) {
			return p1, p2
		}
		// And l2 one hop towards l1 (recompute, placements moved).
		path = r.arch.Path(r.place[l2], r.place[l1])
		r.emitSwap(path[0], path[1])
	}
}

// moveAdjacentLookahead brings the carriers of l1, l2 together like
// moveAdjacent, but chooses each SWAP among the distance-reducing candidates
// incident to either carrier so as to minimize the summed coupling distance
// of the next opts.Lookahead two-qubit gates (SABRE-style).
func (r *router) moveAdjacentLookahead(l1, l2 int) {
	for {
		p1, p2 := r.place[l1], r.place[l2]
		if r.arch.Adjacent(p1, p2) {
			return
		}
		type cand struct{ a, b int }
		var best cand
		bestCost := -1
		consider := func(a, b int) {
			// Only swaps that strictly reduce the current gate's distance.
			dNow := r.arch.Distance(r.place[l1], r.place[l2])
			la, lb := r.at[a], r.at[b]
			// Simulate the swap on placements.
			dist := func(x, y int) int { return r.arch.Distance(x, y) }
			posOf := func(l int) int {
				switch l {
				case la:
					return b
				case lb:
					return a
				default:
					return r.place[l]
				}
			}
			if dist(posOf(l1), posOf(l2)) >= dNow {
				return
			}
			cost := 0
			horizon := r.futureIdx + r.opts.Lookahead
			for i := r.futureIdx; i < len(r.future) && i < horizon; i++ {
				cost += dist(posOf(r.future[i][0]), posOf(r.future[i][1]))
			}
			if bestCost < 0 || cost < bestCost {
				best, bestCost = cand{a, b}, cost
			}
		}
		for _, p := range []int{p1, p2} {
			for _, nb := range r.arch.adj[p] {
				consider(p, nb)
			}
		}
		if bestCost < 0 {
			// No strictly improving incident swap (cannot happen on a
			// connected graph, but stay safe): fall back to the walk.
			r.moveAdjacent(l1, l2)
			return
		}
		r.emitSwap(best.a, best.b)
	}
}

func (r *router) route(g circuit.Gate) error {
	qs := g.Qubits()
	switch len(qs) {
	case 1:
		mapped := g
		mapped.Target = r.place[g.Target]
		r.out.Add(mapped)
		return nil
	case 2:
		var l1, l2 int
		if g.Kind == circuit.SWAP {
			l1, l2 = g.Target, g.Target2
		} else {
			l1, l2 = g.Target, g.Controls[0].Qubit
		}
		if r.opts.Lookahead > 0 {
			r.moveAdjacentLookahead(l1, l2)
			r.futureIdx++
		} else {
			r.moveAdjacent(l1, l2)
		}
		mapped := g
		mapped.Target = r.place[g.Target]
		if g.Kind == circuit.SWAP {
			mapped.Target2 = r.place[g.Target2]
		}
		if len(g.Controls) == 1 {
			mapped.Controls = []circuit.Control{{Qubit: r.place[g.Controls[0].Qubit], Neg: g.Controls[0].Neg}}
		}
		if mapped.Kind == circuit.SWAP && r.opts.DecomposeSwaps && len(mapped.Controls) == 0 {
			r.out.CX(mapped.Target, mapped.Target2).
				CX(mapped.Target2, mapped.Target).
				CX(mapped.Target, mapped.Target2)
			return nil
		}
		r.out.Add(mapped)
		return nil
	default:
		return fmt.Errorf("touches %d qubits; decompose to <=2-qubit gates before mapping", len(qs))
	}
}

// restore moves every logical qubit back to its home wire.
func (r *router) restore() {
	for q := 0; q < len(r.place); q++ {
		for r.place[q] != q {
			path := r.arch.Path(r.place[q], q)
			r.emitSwap(path[0], path[1])
		}
	}
}
