// Package mapping routes circuits onto coupling-constrained architectures by
// inserting SWAP gates — the "mapping" stage of the design flow (paper
// refs [6]-[10], illustrated by Fig. 2).  The mapped circuit G' is what the
// paper's equivalence checker verifies against the original G.
package mapping

import (
	"fmt"
)

// Architecture is an undirected coupling graph: a CX may only act on
// adjacent physical qubits.
type Architecture struct {
	Name  string
	N     int
	edges map[[2]int]bool
	adj   [][]int
	dist  [][]int // all-pairs shortest-path distances
	next  [][]int // next[i][j]: first hop on a shortest i->j path
}

// NewArchitecture builds an architecture from an edge list.  The coupling
// graph must be connected.
func NewArchitecture(name string, n int, edges [][2]int) (*Architecture, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mapping: invalid qubit count %d", n)
	}
	a := &Architecture{
		Name:  name,
		N:     n,
		edges: make(map[[2]int]bool),
		adj:   make([][]int, n),
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("mapping: invalid edge %v", e)
		}
		if u > v {
			u, v = v, u
		}
		if a.edges[[2]int{u, v}] {
			continue
		}
		a.edges[[2]int{u, v}] = true
		a.adj[u] = append(a.adj[u], v)
		a.adj[v] = append(a.adj[v], u)
	}
	a.computePaths()
	for i := 1; i < n; i++ {
		if a.dist[0][i] < 0 {
			return nil, fmt.Errorf("mapping: coupling graph %q is not connected (qubit %d unreachable)", name, i)
		}
	}
	return a, nil
}

func (a *Architecture) computePaths() {
	n := a.N
	a.dist = make([][]int, n)
	a.next = make([][]int, n)
	for s := 0; s < n; s++ {
		dist := make([]int, n)
		parent := make([]int, n)
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range a.adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		a.dist[s] = dist
		// next[s][t]: first hop from s towards t (walk parents back).
		nx := make([]int, n)
		for t := 0; t < n; t++ {
			if t == s || dist[t] < 0 {
				nx[t] = -1
				continue
			}
			cur := t
			for parent[cur] != s {
				cur = parent[cur]
			}
			nx[t] = cur
		}
		a.next[s] = nx
	}
}

// Adjacent reports whether two physical qubits are coupled.
func (a *Architecture) Adjacent(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return a.edges[[2]int{u, v}]
}

// Distance returns the coupling-graph distance between two physical qubits.
func (a *Architecture) Distance(u, v int) int { return a.dist[u][v] }

// Path returns a shortest path from u to v, inclusive of both endpoints.
func (a *Architecture) Path(u, v int) []int {
	path := []int{u}
	for u != v {
		u = a.next[u][v]
		path = append(path, u)
	}
	return path
}

// Degree returns the number of couplings of a physical qubit.
func (a *Architecture) Degree(q int) int { return len(a.adj[q]) }

// NumEdges returns the number of couplings.
func (a *Architecture) NumEdges() int { return len(a.edges) }

func must(a *Architecture, err error) *Architecture {
	if err != nil {
		panic(err)
	}
	return a
}

// Linear returns a 1-D chain of n qubits.
func Linear(n int) *Architecture {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return must(NewArchitecture(fmt.Sprintf("linear-%d", n), n, edges))
}

// Ring returns a cycle of n qubits.
func Ring(n int) *Architecture {
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return must(NewArchitecture(fmt.Sprintf("ring-%d", n), n, edges))
}

// Grid returns an r x c nearest-neighbour grid (the layout of the
// quantum-supremacy devices).
func Grid(r, c int) *Architecture {
	var edges [][2]int
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, [2]int{id(i, j), id(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, [2]int{id(i, j), id(i+1, j)})
			}
		}
	}
	return must(NewArchitecture(fmt.Sprintf("grid-%dx%d", r, c), r*c, edges))
}

// Star returns a hub-and-spokes coupling (qubit 0 coupled to all others).
func Star(n int) *Architecture {
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return must(NewArchitecture(fmt.Sprintf("star-%d", n), n, edges))
}

// FullyConnected returns an unconstrained architecture (mapping becomes the
// identity transformation; useful as a baseline).
func FullyConnected(n int) *Architecture {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return must(NewArchitecture(fmt.Sprintf("full-%d", n), n, edges))
}

// IBMQX5 returns the 16-qubit IBM QX5 coupling map (undirected version),
// the architecture targeted by the paper's mapping references.
func IBMQX5() *Architecture {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
		{8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14}, {14, 15},
		{15, 0}, {1, 14}, {2, 13}, {3, 12}, {4, 11}, {5, 10}, {6, 9},
	}
	return must(NewArchitecture("ibmqx5", 16, edges))
}
