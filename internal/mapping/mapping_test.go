package mapping

import (
	"math/rand"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

func randomTwoQubitCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "rnd")
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			a := rng.Intn(n)
			c.CX(a, (a+1+rng.Intn(n-1))%n)
		case 3:
			a := rng.Intn(n)
			c.CZ(a, (a+1+rng.Intn(n-1))%n)
		}
	}
	return c
}

func TestArchitectures(t *testing.T) {
	cases := []struct {
		a         *Architecture
		wantN     int
		wantEdges int
	}{
		{Linear(5), 5, 4},
		{Ring(6), 6, 6},
		{Grid(3, 4), 12, 17},
		{Star(5), 5, 4},
		{FullyConnected(4), 4, 6},
		{IBMQX5(), 16, 22},
	}
	for _, tc := range cases {
		if tc.a.N != tc.wantN {
			t.Errorf("%s: N = %d, want %d", tc.a.Name, tc.a.N, tc.wantN)
		}
		if tc.a.NumEdges() != tc.wantEdges {
			t.Errorf("%s: edges = %d, want %d", tc.a.Name, tc.a.NumEdges(), tc.wantEdges)
		}
	}
}

func TestPathAndDistance(t *testing.T) {
	a := Linear(6)
	if d := a.Distance(0, 5); d != 5 {
		t.Errorf("Distance(0,5) = %d", d)
	}
	p := a.Path(1, 4)
	want := []int{1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("Path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path = %v", p)
		}
	}
	if !a.Adjacent(2, 3) || a.Adjacent(0, 2) {
		t.Error("Adjacent wrong on linear architecture")
	}
	ring := Ring(8)
	if d := ring.Distance(0, 7); d != 1 {
		t.Errorf("ring Distance(0,7) = %d", d)
	}
}

func TestDisconnectedRejected(t *testing.T) {
	if _, err := NewArchitecture("dis", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := NewArchitecture("self", 2, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestMapWithOutputPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, arch := range []*Architecture{Linear(5), Ring(5), Star(5)} {
		c := randomTwoQubitCircuit(rng, 5, 30)
		res, err := Map(c, Options{Arch: arch})
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		// Every two-qubit gate must respect the coupling.
		for _, g := range res.Circuit.Gates {
			qs := g.Qubits()
			if len(qs) == 2 && !arch.Adjacent(qs[0], qs[1]) {
				t.Fatalf("%s: gate %s violates coupling", arch.Name, g)
			}
		}
		r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional, OutputPerm: res.OutputPerm})
		if r.Verdict != ec.Equivalent {
			t.Fatalf("%s: mapped circuit not equivalent (%v)", arch.Name, r.Verdict)
		}
	}
}

func TestMapWithRestoredLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomTwoQubitCircuit(rng, 6, 40)
	res, err := Map(c, Options{Arch: Linear(6), RestoreLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputPerm != nil {
		t.Fatal("RestoreLayout still reported an output permutation")
	}
	r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("restored mapping not equivalent: %v", r.Verdict)
	}
}

func TestMapDecomposedSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomTwoQubitCircuit(rng, 5, 25)
	res, err := Map(c, Options{Arch: Linear(5), RestoreLayout: true, DecomposeSwaps: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Circuit.Gates {
		if g.Kind == circuit.SWAP {
			t.Fatalf("SWAP survived DecomposeSwaps: %s", g)
		}
	}
	r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("CX-lowered mapping not equivalent: %v", r.Verdict)
	}
}

func TestMapOnIBMQX5(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randomTwoQubitCircuit(rng, 16, 60)
	res, err := Map(c, Options{Arch: IBMQX5()})
	if err != nil {
		t.Fatal(err)
	}
	r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional, OutputPerm: res.OutputPerm})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("QX5 mapping not equivalent: %v", r.Verdict)
	}
	if res.Circuit.NumGates() < c.NumGates() {
		t.Error("mapping lost gates")
	}
}

func TestFullyConnectedInsertsNoSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomTwoQubitCircuit(rng, 5, 30)
	res, err := Map(c, Options{Arch: FullyConnected(5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 0 {
		t.Errorf("full connectivity inserted %d swaps", res.SwapsInserted)
	}
	if res.OutputPerm != nil {
		t.Error("full connectivity produced a permutation")
	}
	if res.Circuit.NumGates() != c.NumGates() {
		t.Errorf("gate count changed: %d -> %d", c.NumGates(), res.Circuit.NumGates())
	}
}

func TestSwapGateIsRouted(t *testing.T) {
	c := circuit.New(4, "swap")
	c.Swap(0, 3) // distance 3 on a line
	res, err := Map(c, Options{Arch: Linear(4)})
	if err != nil {
		t.Fatal(err)
	}
	r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional, OutputPerm: res.OutputPerm})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("routed SWAP not equivalent: %v", r.Verdict)
	}
}

func TestMapRejectsWideGates(t *testing.T) {
	c := circuit.New(4, "ccx")
	c.CCX(0, 1, 2)
	if _, err := Map(c, Options{Arch: Linear(4)}); err == nil {
		t.Error("3-qubit gate accepted by router")
	}
}

func TestMapRejectsSizeMismatch(t *testing.T) {
	c := circuit.New(4, "c")
	if _, err := Map(c, Options{Arch: Linear(5)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Map(c, Options{}); err == nil {
		t.Error("missing architecture accepted")
	}
}

func TestSwapCountGrowsWithDistance(t *testing.T) {
	// CX between the ends of a long line needs at least distance-1 swaps.
	n := 8
	c := circuit.New(n, "far")
	c.CX(0, n-1)
	res, err := Map(c, Options{Arch: Linear(n)})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted < n-2 {
		t.Errorf("only %d swaps for distance %d", res.SwapsInserted, n-1)
	}
}

func TestLookaheadRouterEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, arch := range []*Architecture{Linear(6), Ring(6), IBMQX5()} {
		n := arch.N
		c := randomTwoQubitCircuit(rng, n, 60)
		res, err := Map(c, Options{Arch: arch, Lookahead: 10})
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		for _, g := range res.Circuit.Gates {
			qs := g.Qubits()
			if len(qs) == 2 && !arch.Adjacent(qs[0], qs[1]) {
				t.Fatalf("%s: gate %s violates coupling", arch.Name, g)
			}
		}
		r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional, OutputPerm: res.OutputPerm})
		if r.Verdict != ec.Equivalent {
			t.Fatalf("%s: lookahead-mapped circuit not equivalent (%v)", arch.Name, r.Verdict)
		}
	}
}

func TestLookaheadReducesOrMatchesSwaps(t *testing.T) {
	// The lookahead heuristic should generally not insert more swaps than
	// the greedy walk on structured circuits; compare aggregates and log.
	rng := rand.New(rand.NewSource(7))
	greedyTotal, lookaheadTotal := 0, 0
	for trial := 0; trial < 8; trial++ {
		c := randomTwoQubitCircuit(rng, 8, 80)
		g, err := Map(c, Options{Arch: Linear(8)})
		if err != nil {
			t.Fatal(err)
		}
		l, err := Map(c, Options{Arch: Linear(8), Lookahead: 12})
		if err != nil {
			t.Fatal(err)
		}
		greedyTotal += g.SwapsInserted
		lookaheadTotal += l.SwapsInserted
	}
	t.Logf("swaps inserted: greedy %d, lookahead %d", greedyTotal, lookaheadTotal)
	if lookaheadTotal > greedyTotal*3/2 {
		t.Errorf("lookahead much worse than greedy: %d vs %d", lookaheadTotal, greedyTotal)
	}
}

func TestLookaheadRestoreLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := randomTwoQubitCircuit(rng, 6, 40)
	res, err := Map(c, Options{Arch: Grid(2, 3), Lookahead: 8, RestoreLayout: true, DecomposeSwaps: true})
	if err != nil {
		t.Fatal(err)
	}
	r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("verdict %v", r.Verdict)
	}
}

func TestMapCostProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomTwoQubitCircuit(rng, 5, 30)
	res, err := Map(c, Options{Arch: Linear(5), RestoreLayout: true, DecomposeSwaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostProfile) != len(c.Gates) {
		t.Fatalf("profile length %d, want %d", len(res.CostProfile), len(c.Gates))
	}
	sum := 0
	for i, f := range res.CostProfile {
		if f < 0 {
			t.Errorf("negative profile entry %d at gate %d", f, i)
		}
		sum += f
	}
	// The layout-restoring SWAP tail is attributed to the last source gate,
	// so the profile covers every routed gate.
	if sum != len(res.Circuit.Gates) {
		t.Errorf("profile sums to %d, routed circuit has %d gates", sum, len(res.Circuit.Gates))
	}
}
