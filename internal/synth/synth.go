// Package synth synthesizes reversible MCT (multiple-controlled Toffoli)
// netlists from functional specifications, regenerating the paper's RevLib
// benchmark class (hwb9_119, urf4_187, inc_237, rd84_253, ...) from first
// principles:
//
//   - Permutation implements transformation-based synthesis (the classic
//     Miller/Maslov/Dueck procedure) for reversible functions given as
//     permutations of {0,...,2^n-1},
//   - Embed implements Bennett-style embedding of an irreversible Boolean
//     function f: {0,1}^in -> {0,1}^out on in+out lines
//     (|x>|y> -> |x>|y xor f(x)>) via its positive-polarity Reed-Muller
//     expansion, one MCT gate per monomial.
//
// Both generators produce circuits whose gates all belong to the Toffoli
// family (X with positive controls), exactly like RevLib netlists, so the
// full decomposition/mapping pipeline of the reproduction applies.
package synth

import (
	"fmt"

	"qcec/internal/circuit"
)

// MaxBits bounds the truth-table sizes the synthesizers accept (2^MaxBits
// table entries are materialized).
const MaxBits = 20

// Permutation synthesizes an MCT circuit realizing the given permutation of
// {0,...,2^n-1} using transformation-based synthesis.  perm must have length
// 2^n and be a bijection.
func Permutation(perm []uint64, n int, name string) (*circuit.Circuit, error) {
	if n <= 0 || n > MaxBits {
		return nil, fmt.Errorf("synth: unsupported bit width %d", n)
	}
	size := uint64(1) << uint(n)
	if uint64(len(perm)) != size {
		return nil, fmt.Errorf("synth: permutation has %d entries, want %d", len(perm), size)
	}
	seen := make([]bool, size)
	for _, v := range perm {
		if v >= size || seen[v] {
			return nil, fmt.Errorf("synth: not a permutation (value %d repeated or out of range)", v)
		}
		seen[v] = true
	}

	f := make([]uint64, size)
	copy(f, perm)

	type mct struct {
		controls uint64 // bit mask
		target   int
	}
	var collected []mct

	// apply performs the gate on the output side of the whole table.
	apply := func(g mct) {
		tbit := uint64(1) << uint(g.target)
		for x := range f {
			if f[x]&g.controls == g.controls {
				f[x] ^= tbit
			}
		}
		collected = append(collected, g)
	}

	for i := uint64(0); i < size; i++ {
		v := f[i]
		if v == i {
			continue
		}
		// Because all smaller inputs are settled and f is a bijection,
		// v > i; first raise the bits i needs, controlling on the ones of
		// the current image (never a subset of any settled word), then
		// lower the excess bits, controlling on the ones of i.
		setBits := i & ^v
		for b := 0; b < n; b++ {
			bit := uint64(1) << uint(b)
			if setBits&bit != 0 {
				apply(mct{controls: v, target: b})
				v |= bit
			}
		}
		clearBits := v & ^i
		for b := 0; b < n; b++ {
			bit := uint64(1) << uint(b)
			if clearBits&bit != 0 {
				apply(mct{controls: i, target: b})
				v &^= bit
			}
		}
		if f[i] != i {
			return nil, fmt.Errorf("synth: internal error: input %d not settled", i)
		}
	}

	// The collected gates compose, output-side, to the inverse of perm;
	// reversing their order yields a circuit for perm itself.
	c := circuit.New(n, name)
	for k := len(collected) - 1; k >= 0; k-- {
		g := collected[k]
		var controls []circuit.Control
		for b := 0; b < n; b++ {
			if g.controls&(1<<uint(b)) != 0 {
				controls = append(controls, circuit.Control{Qubit: b})
			}
		}
		c.Add(circuit.Gate{Kind: circuit.X, Target: g.target, Target2: -1, Controls: controls})
	}
	return c, nil
}

// Embed synthesizes an MCT circuit on inBits+outBits lines computing
// |x>|y> -> |x>|y xor f(x)>, with x on lines 0..inBits-1 and the j-th output
// on line inBits+j.  One MCT gate is emitted per monomial of each output's
// positive-polarity Reed-Muller expansion.
func Embed(f func(uint64) uint64, inBits, outBits int, name string) (*circuit.Circuit, error) {
	if inBits <= 0 || inBits > MaxBits {
		return nil, fmt.Errorf("synth: unsupported input width %d", inBits)
	}
	if outBits <= 0 || inBits+outBits > 64 {
		return nil, fmt.Errorf("synth: unsupported output width %d", outBits)
	}
	size := uint64(1) << uint(inBits)
	c := circuit.New(inBits+outBits, name)
	for j := 0; j < outBits; j++ {
		coef := make([]byte, size)
		for x := uint64(0); x < size; x++ {
			coef[x] = byte((f(x) >> uint(j)) & 1)
		}
		// Fast Reed-Muller (GF(2) Möbius) transform.
		for step := uint64(1); step < size; step <<= 1 {
			for x := uint64(0); x < size; x++ {
				if x&step != 0 {
					coef[x] ^= coef[x&^step]
				}
			}
		}
		target := inBits + j
		for m := uint64(0); m < size; m++ {
			if coef[m] == 0 {
				continue
			}
			var controls []circuit.Control
			for b := 0; b < inBits; b++ {
				if m&(1<<uint(b)) != 0 {
					controls = append(controls, circuit.Control{Qubit: b})
				}
			}
			c.Add(circuit.Gate{Kind: circuit.X, Target: target, Target2: -1, Controls: controls})
		}
	}
	return c, nil
}

// EvalReversible evaluates a purely classical reversible circuit (gates from
// the Toffoli/Fredkin families only) on a basis-state input, returning the
// output basis state.  This is the fast functional oracle used to validate
// synthesized netlists over their whole truth table.
func EvalReversible(c *circuit.Circuit, x uint64) (uint64, error) {
	for i, g := range c.Gates {
		fire := true
		for _, ctl := range g.Controls {
			bit := (x >> uint(ctl.Qubit)) & 1
			if ctl.Neg == (bit == 1) {
				fire = false
				break
			}
		}
		if !fire {
			continue
		}
		switch g.Kind {
		case circuit.X:
			x ^= 1 << uint(g.Target)
		case circuit.SWAP:
			b1 := (x >> uint(g.Target)) & 1
			b2 := (x >> uint(g.Target2)) & 1
			if b1 != b2 {
				x ^= (1 << uint(g.Target)) | (1 << uint(g.Target2))
			}
		case circuit.I:
			// no-op
		default:
			return 0, fmt.Errorf("synth: gate %d (%s) is not classical", i, g)
		}
	}
	return x, nil
}

// PermutationOf returns the full permutation table computed by a classical
// reversible circuit.
func PermutationOf(c *circuit.Circuit) ([]uint64, error) {
	if c.N > MaxBits {
		return nil, fmt.Errorf("synth: circuit too wide (%d qubits) to tabulate", c.N)
	}
	size := uint64(1) << uint(c.N)
	out := make([]uint64, size)
	for x := uint64(0); x < size; x++ {
		y, err := EvalReversible(c, x)
		if err != nil {
			return nil, err
		}
		out[x] = y
	}
	return out, nil
}
