package synth

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

func randomPerm(rng *rand.Rand, n int) []uint64 {
	size := 1 << uint(n)
	p := make([]uint64, size)
	for i := range p {
		p[i] = uint64(i)
	}
	rng.Shuffle(size, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestPermutationIdentity(t *testing.T) {
	id := []uint64{0, 1, 2, 3}
	c, err := Permutation(id, 2, "id")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 0 {
		t.Errorf("identity synthesized with %d gates", c.NumGates())
	}
}

func TestPermutationSimpleSwap(t *testing.T) {
	// Swap of |01> and |10> on two bits = classical SWAP.
	p := []uint64{0, 2, 1, 3}
	c, err := Permutation(p, 2, "swap")
	if err != nil {
		t.Fatal(err)
	}
	got, err := PermutationOf(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if got[i] != v {
			t.Fatalf("perm[%d] = %d, want %d", i, got[i], v)
		}
	}
}

func TestPermutationIncrement(t *testing.T) {
	// x -> x+1 mod 2^n: the classic MCT ripple chain.
	n := 5
	size := uint64(1) << uint(n)
	p := make([]uint64, size)
	for i := range p {
		p[i] = (uint64(i) + 1) % size
	}
	c, err := Permutation(p, n, "inc")
	if err != nil {
		t.Fatal(err)
	}
	got, err := PermutationOf(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("inc(%d) = %d, want %d", i, got[i], p[i])
		}
	}
}

func TestPermutationValidation(t *testing.T) {
	if _, err := Permutation([]uint64{0, 1, 2}, 2, "short"); err == nil {
		t.Error("short table accepted")
	}
	if _, err := Permutation([]uint64{0, 0, 1, 2}, 2, "dup"); err == nil {
		t.Error("non-bijection accepted")
	}
	if _, err := Permutation([]uint64{0, 1, 2, 7}, 2, "range"); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := Permutation(nil, 0, "zero"); err == nil {
		t.Error("zero width accepted")
	}
}

// Property: synthesis realizes arbitrary random permutations exactly.
func TestQuickPermutationCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4) // up to 5 bits -> 32-entry tables
		p := randomPerm(rng, n)
		c, err := Permutation(p, n, "rnd")
		if err != nil {
			return false
		}
		got, err := PermutationOf(c)
		if err != nil {
			return false
		}
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermutationMatchesQuantumSemantics(t *testing.T) {
	// The synthesized circuit must equal the explicit permutation unitary.
	rng := rand.New(rand.NewSource(5))
	n := 3
	p := randomPerm(rng, n)
	c, err := Permutation(p, n, "q")
	if err != nil {
		t.Fatal(err)
	}
	// Build a reference circuit by brute-force: another synthesis round on
	// the tabulated permutation must yield an equivalent circuit.
	tab, err := PermutationOf(c)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Permutation(tab, n, "ref")
	if err != nil {
		t.Fatal(err)
	}
	r := ec.Check(c, ref, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("resynthesized circuit differs: %v", r.Verdict)
	}
}

func TestEmbedXOR(t *testing.T) {
	// f(x) = parity of 3 input bits: PPRM is x0 ^ x1 ^ x2 (3 CNOTs).
	c, err := Embed(func(x uint64) uint64 {
		return uint64(bits.OnesCount64(x) & 1)
	}, 3, 1, "parity")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 3 {
		t.Errorf("parity embedding has %d gates, want 3", c.NumGates())
	}
	for x := uint64(0); x < 8; x++ {
		y, err := EvalReversible(c, x)
		if err != nil {
			t.Fatal(err)
		}
		wantOut := uint64(bits.OnesCount64(x)&1) << 3
		if y != x|wantOut {
			t.Fatalf("embed(|%03b>|0>) = %b", x, y)
		}
	}
}

func TestEmbedAND(t *testing.T) {
	// f(x) = x0 AND x1: exactly one Toffoli.
	c, err := Embed(func(x uint64) uint64 {
		return (x & 1) & ((x >> 1) & 1)
	}, 2, 1, "and")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 || len(c.Gates[0].Controls) != 2 {
		t.Fatalf("AND embedding wrong: %v", c)
	}
}

func TestEmbedXorSemantics(t *testing.T) {
	// With y != 0 initially, the output lines must XOR rather than set.
	c, err := Embed(func(x uint64) uint64 { return x & 1 }, 1, 1, "copy")
	if err != nil {
		t.Fatal(err)
	}
	// input x=1, y=1: out = y xor f(x) = 0.
	y, err := EvalReversible(c, 0b11)
	if err != nil {
		t.Fatal(err)
	}
	if y != 0b01 {
		t.Fatalf("xor semantics broken: got %b", y)
	}
}

// Property: embedding computes y xor f(x) for random functions.
func TestQuickEmbedCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inBits := 2 + rng.Intn(3)
		outBits := 1 + rng.Intn(3)
		table := make([]uint64, 1<<uint(inBits))
		mask := uint64(1)<<uint(outBits) - 1
		for i := range table {
			table[i] = rng.Uint64() & mask
		}
		c, err := Embed(func(x uint64) uint64 { return table[x] }, inBits, outBits, "rnd")
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := rng.Uint64() & (1<<uint(inBits) - 1)
			y := rng.Uint64() & mask
			in := x | y<<uint(inBits)
			out, err := EvalReversible(c, in)
			if err != nil {
				return false
			}
			want := x | (y^table[x])<<uint(inBits)
			if out != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvalReversibleRejectsQuantumGates(t *testing.T) {
	c := circuit.New(1, "h")
	c.H(0)
	if _, err := EvalReversible(c, 0); err == nil {
		t.Error("H accepted by classical evaluator")
	}
}

func TestEvalReversibleFredkinAndNegControls(t *testing.T) {
	c := circuit.New(3, "f")
	c.CSwap(0, 1, 2)
	// control off: nothing happens.
	if y, _ := EvalReversible(c, 0b010); y != 0b010 {
		t.Errorf("fredkin off: %b", y)
	}
	// control on: swap.
	if y, _ := EvalReversible(c, 0b011); y != 0b101 {
		t.Errorf("fredkin on: %b", y)
	}
	c2 := circuit.New(2, "neg")
	c2.MCXNeg([]circuit.Control{{Qubit: 0, Neg: true}}, 1)
	if y, _ := EvalReversible(c2, 0b00); y != 0b10 {
		t.Errorf("neg control off-state: %b", y)
	}
	if y, _ := EvalReversible(c2, 0b01); y != 0b01 {
		t.Errorf("neg control on-state: %b", y)
	}
}

func TestPermutationGateCountScale(t *testing.T) {
	// Transformation-based synthesis of a random 8-bit permutation yields
	// thousands of MCT gates — the |G| scale of the paper's urf benchmarks.
	rng := rand.New(rand.NewSource(42))
	n := 8
	p := randomPerm(rng, n)
	c, err := Permutation(p, n, "urf-like")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() < 256 {
		t.Errorf("suspiciously small synthesis: %d gates", c.NumGates())
	}
	t.Logf("random %d-bit permutation: %d MCT gates", n, c.NumGates())
}
