package qasm

import (
	"fmt"
	"math"
	"os"
	"strconv"

	"qcec/internal/circuit"
)

// Register describes a declared quantum or classical register and its offset
// in the flattened wire space.
type Register struct {
	Name   string
	Size   int
	Offset int
}

// Measurement records a `measure q -> c` statement.
type Measurement struct {
	Qubit int // flattened qubit index
	Bit   int // flattened classical bit index
}

// Program is the result of parsing an OpenQASM source.
type Program struct {
	Circuit      *circuit.Circuit
	QRegs        []Register
	CRegs        []Register
	Measurements []Measurement
}

// expr is a parameter-expression AST node; it is evaluated against the
// formal-parameter environment of the enclosing gate macro (nil at top
// level).
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numExpr float64

func (n numExpr) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varExpr string

func (v varExpr) eval(env map[string]float64) (float64, error) {
	if v == "pi" {
		return math.Pi, nil
	}
	if env != nil {
		if val, ok := env[string(v)]; ok {
			return val, nil
		}
	}
	return 0, fmt.Errorf("unknown identifier %q in expression", string(v))
}

type unaryExpr struct{ x expr }

func (u unaryExpr) eval(env map[string]float64) (float64, error) {
	v, err := u.x.eval(env)
	return -v, err
}

type binExpr struct {
	op   byte
	a, b expr
}

func (b binExpr) eval(env map[string]float64) (float64, error) {
	x, err := b.a.eval(env)
	if err != nil {
		return 0, err
	}
	y, err := b.b.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return x + y, nil
	case '-':
		return x - y, nil
	case '*':
		return x * y, nil
	case '/':
		if y == 0 {
			return 0, fmt.Errorf("division by zero in parameter expression")
		}
		return x / y, nil
	case '^':
		return math.Pow(x, y), nil
	default:
		return 0, fmt.Errorf("unknown operator %q", b.op)
	}
}

type callExpr struct {
	fn string
	x  expr
}

func (c callExpr) eval(env map[string]float64) (float64, error) {
	v, err := c.x.eval(env)
	if err != nil {
		return 0, err
	}
	switch c.fn {
	case "sin":
		return math.Sin(v), nil
	case "cos":
		return math.Cos(v), nil
	case "tan":
		return math.Tan(v), nil
	case "exp":
		return math.Exp(v), nil
	case "ln":
		return math.Log(v), nil
	case "sqrt":
		return math.Sqrt(v), nil
	default:
		return 0, fmt.Errorf("unknown function %q", c.fn)
	}
}

// macroGate is one statement inside a user gate definition.
type macroGate struct {
	name   string
	params []expr
	args   []string // formal qubit argument names
	line   int
}

type macroDef struct {
	params []string
	args   []string
	body   []macroGate
}

type parser struct {
	toks []token
	pos  int

	qregs  []Register
	cregs  []Register
	macros map[string]macroDef

	circ     *circuit.Circuit
	pending  []pendingGate
	measures []Measurement
}

// pendingGate buffers gate applications until the register sizes are known
// (declarations may in principle interleave, and we need the total width to
// build the circuit).
type pendingGate struct {
	gate circuit.Gate
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) advance()    { p.pos++ }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	t := p.cur()
	if (t.kind != tokSymbol && t.kind != tokArrow) || t.text != s {
		return p.errf("expected %q, got %q", s, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.cur()
	if (t.kind == tokSymbol || t.kind == tokArrow) && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) expectInt() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("invalid integer %q", t.text)
	}
	p.advance()
	return n, nil
}

// Parse parses OpenQASM 2.0 source text.
func Parse(src string) (*Program, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, macros: make(map[string]macroDef)}
	if err := p.parseHeader(); err != nil {
		return nil, err
	}
	for !p.atEOF() {
		if err := p.parseStatement(); err != nil {
			return nil, err
		}
	}
	return p.finish()
}

// ParseFile parses an OpenQASM 2.0 file.
func ParseFile(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return prog, nil
}

func (p *parser) parseHeader() error {
	if p.cur().kind == tokIdent && p.cur().text == "OPENQASM" {
		p.advance()
		if p.cur().kind != tokNumber {
			return p.errf("expected version number")
		}
		if v := p.cur().text; v != "2.0" && v != "2" {
			return p.errf("unsupported OPENQASM version %s", v)
		}
		p.advance()
		return p.expectSymbol(";")
	}
	return nil // header is optional in practice
}

func (p *parser) parseStatement() error {
	t := p.cur()
	if t.kind != tokIdent {
		return p.errf("expected statement, got %q", t.text)
	}
	switch t.text {
	case "include":
		p.advance()
		if p.cur().kind != tokString {
			return p.errf("expected file name after include")
		}
		p.advance()
		return p.expectSymbol(";")
	case "qreg":
		return p.parseReg(&p.qregs)
	case "creg":
		return p.parseReg(&p.cregs)
	case "gate":
		return p.parseGateDef()
	case "opaque":
		return p.skipToSemicolon()
	case "barrier":
		return p.skipToSemicolon()
	case "measure":
		return p.parseMeasure()
	case "reset", "if":
		return p.errf("unsupported statement %q", t.text)
	default:
		return p.parseGateCall()
	}
}

func (p *parser) skipToSemicolon() error {
	for !p.atEOF() && !(p.cur().kind == tokSymbol && p.cur().text == ";") {
		p.advance()
	}
	return p.expectSymbol(";")
}

func (p *parser) parseReg(regs *[]Register) error {
	p.advance()
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("["); err != nil {
		return err
	}
	size, err := p.expectInt()
	if err != nil {
		return err
	}
	if size <= 0 {
		return p.errf("register %q has invalid size %d", name, size)
	}
	if err := p.expectSymbol("]"); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	offset := 0
	for _, r := range *regs {
		if r.Name == name {
			return p.errf("register %q redeclared", name)
		}
		offset += r.Size
	}
	*regs = append(*regs, Register{Name: name, Size: size, Offset: offset})
	return nil
}

func (p *parser) findQubit(name string, idx int) (int, error) {
	for _, r := range p.qregs {
		if r.Name == name {
			if idx < 0 || idx >= r.Size {
				return 0, p.errf("index %d out of range for register %q[%d]", idx, name, r.Size)
			}
			return r.Offset + idx, nil
		}
	}
	return 0, p.errf("unknown quantum register %q", name)
}

func (p *parser) findCBit(name string, idx int) (int, error) {
	for _, r := range p.cregs {
		if r.Name == name {
			if idx < 0 || idx >= r.Size {
				return 0, p.errf("index %d out of range for register %q[%d]", idx, name, r.Size)
			}
			return r.Offset + idx, nil
		}
	}
	return 0, p.errf("unknown classical register %q", name)
}

// qubitArg is either a single wire or a whole register (broadcast).
type qubitArg struct {
	wires []int
	whole bool
}

func (p *parser) parseQubitArg() (qubitArg, error) {
	name, err := p.expectIdent()
	if err != nil {
		return qubitArg{}, err
	}
	if p.acceptSymbol("[") {
		idx, err := p.expectInt()
		if err != nil {
			return qubitArg{}, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return qubitArg{}, err
		}
		w, err := p.findQubit(name, idx)
		if err != nil {
			return qubitArg{}, err
		}
		return qubitArg{wires: []int{w}}, nil
	}
	for _, r := range p.qregs {
		if r.Name == name {
			ws := make([]int, r.Size)
			for i := range ws {
				ws[i] = r.Offset + i
			}
			return qubitArg{wires: ws, whole: true}, nil
		}
	}
	return qubitArg{}, p.errf("unknown quantum register %q", name)
}

func (p *parser) parseMeasure() error {
	p.advance()
	q, err := p.parseQubitArg()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("->"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	var bits []int
	if p.acceptSymbol("[") {
		idx, err := p.expectInt()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("]"); err != nil {
			return err
		}
		b, err := p.findCBit(name, idx)
		if err != nil {
			return err
		}
		bits = []int{b}
	} else {
		found := false
		for _, r := range p.cregs {
			if r.Name == name {
				for i := 0; i < r.Size; i++ {
					bits = append(bits, r.Offset+i)
				}
				found = true
			}
		}
		if !found {
			return p.errf("unknown classical register %q", name)
		}
	}
	if len(q.wires) != len(bits) {
		return p.errf("measure width mismatch (%d qubits, %d bits)", len(q.wires), len(bits))
	}
	for i := range q.wires {
		p.measures = append(p.measures, Measurement{Qubit: q.wires[i], Bit: bits[i]})
	}
	return p.expectSymbol(";")
}
