package qasm

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

func TestParseMinimal(t *testing.T) {
	prog, err := Parse(`
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
ccx q[0],q[1],q[2];
measure q -> c;
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if c.N != 3 || c.NumGates() != 3 {
		t.Fatalf("n=%d gates=%d", c.N, c.NumGates())
	}
	if c.Gates[0].Kind != circuit.H {
		t.Errorf("gate 0 = %v", c.Gates[0])
	}
	if len(c.Gates[2].Controls) != 2 {
		t.Errorf("ccx parsed with %d controls", len(c.Gates[2].Controls))
	}
	if len(prog.Measurements) != 3 {
		t.Errorf("measurements = %v", prog.Measurements)
	}
}

func TestParseParameterExpressions(t *testing.T) {
	prog, err := Parse(`
qreg q[1];
rz(pi/2) q[0];
u3(pi/4, -pi, 2*pi/3) q[0];
p(0.5+0.25) q[0];
rx(sin(pi/6)) q[0];
ry(2^3) q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Circuit.Gates
	if math.Abs(g[0].Params[0]-math.Pi/2) > 1e-12 {
		t.Errorf("rz param = %g", g[0].Params[0])
	}
	if math.Abs(g[1].Params[1]+math.Pi) > 1e-12 {
		t.Errorf("u3 phi = %g", g[1].Params[1])
	}
	if math.Abs(g[2].Params[0]-0.75) > 1e-12 {
		t.Errorf("p param = %g", g[2].Params[0])
	}
	if math.Abs(g[3].Params[0]-0.5) > 1e-12 {
		t.Errorf("sin(pi/6) = %g", g[3].Params[0])
	}
	if math.Abs(g[4].Params[0]-8) > 1e-12 {
		t.Errorf("2^3 = %g", g[4].Params[0])
	}
}

func TestParseGateMacro(t *testing.T) {
	prog, err := Parse(`
qreg q[2];
gate bell a, b {
  h a;
  cx a, b;
}
gate rot(theta) a {
  rz(theta/2) a;
  rz(theta/2) a;
}
bell q[0], q[1];
rot(pi) q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if c.NumGates() != 4 {
		t.Fatalf("macro expansion produced %d gates: %v", c.NumGates(), c)
	}
	if c.Gates[0].Kind != circuit.H || c.Gates[1].Kind != circuit.X {
		t.Errorf("bell expanded wrong: %v", c.Gates[:2])
	}
	if math.Abs(c.Gates[2].Params[0]-math.Pi/2) > 1e-12 {
		t.Errorf("macro param substitution wrong: %g", c.Gates[2].Params[0])
	}
}

func TestParseNestedMacros(t *testing.T) {
	prog, err := Parse(`
qreg q[2];
gate inner a { x a; }
gate outer a, b { inner a; cx a, b; inner b; }
outer q[0], q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumGates() != 3 {
		t.Fatalf("nested macro gates = %d", prog.Circuit.NumGates())
	}
}

func TestParseBroadcast(t *testing.T) {
	prog, err := Parse(`
qreg q[4];
h q;
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumGates() != 4 {
		t.Fatalf("broadcast produced %d gates", prog.Circuit.NumGates())
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	prog, err := Parse(`
qreg a[2];
qreg b[3];
x a[1];
x b[0];
cx a[0], b[2];
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if c.N != 5 {
		t.Fatalf("flattened width = %d", c.N)
	}
	if c.Gates[0].Target != 1 || c.Gates[1].Target != 2 {
		t.Errorf("register offsets wrong: %v", c.Gates[:2])
	}
	if c.Gates[2].Controls[0].Qubit != 0 || c.Gates[2].Target != 4 {
		t.Errorf("cross-register cx wrong: %v", c.Gates[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`qreg q[2]; x q[5];`,                    // index out of range
		`qreg q[2]; frobnicate q[0];`,           // unknown gate
		`qreg q[0];`,                            // zero-size register
		`qreg q[2]; qreg q[3];`,                 // redeclared
		`qreg q[2]; rz q[0];`,                   // missing parameter
		`qreg q[2]; cx q[0];`,                   // missing qubit
		`x q[0];`,                               // register never declared
		`qreg q[1]; rz(qq) q[0];`,               // unknown identifier in expr
		`qreg q[1]; rz(1/0) q[0];`,              // division by zero
		`qreg q[2]; if (c==1) x q[0];`,          // unsupported
		`OPENQASM 3.0; qreg q[1];`,              // wrong version
		`qreg q[2]; creg c[1]; measure q -> c;`, // width mismatch
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestCommentsAndBarriers(t *testing.T) {
	prog, err := Parse(`
// line comment
qreg q[2]; /* block
comment */ x q[0];
barrier q;
opaque mystery a, b;
x q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumGates() != 2 {
		t.Fatalf("gates = %d", prog.Circuit.NumGates())
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := circuit.New(4, "roundtrip")
	c.H(0).X(1).Y(2).Z(3).S(0).Sdg(1).T(2).Tdg(3).SX(0)
	c.RX(rng.Float64(), 1).RY(rng.Float64(), 2).RZ(rng.Float64(), 3)
	c.Phase(rng.Float64(), 0).U3(rng.Float64(), rng.Float64(), rng.Float64(), 1)
	c.CX(0, 1).CZ(1, 2).CPhase(rng.Float64(), 2, 3)
	c.CCX(0, 1, 2).Swap(2, 3).CSwap(0, 1, 2)
	c.MCXNeg([]circuit.Control{{Qubit: 0, Neg: true}}, 3) // negative control
	src, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, src)
	}
	// Functional equivalence of original and round-tripped circuit.
	r := ec.Check(c, prog.Circuit, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("round-trip not equivalent: %v\n%s", r.Verdict, src)
	}
}

func TestWriteUnsupported(t *testing.T) {
	c := circuit.New(5, "mcx")
	c.MCX([]int{0, 1, 2}, 4)
	if _, err := WriteString(c); err == nil {
		t.Error("3-controlled X should not be writable")
	}
	c2 := circuit.New(1, "custom")
	c2.Add(circuit.Gate{Kind: circuit.Custom, Target: 0, Target2: -1,
		Mat: [2][2]complex128{{1, 0}, {0, 1}}})
	if _, err := WriteString(c2); err == nil {
		t.Error("custom gate should not be writable")
	}
}

func TestWriteCCZViaH(t *testing.T) {
	c := circuit.New(3, "ccz")
	c.MCZ([]int{0, 1}, 2)
	src, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "ccx") {
		t.Fatalf("ccz not lowered to ccx:\n%s", src)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := ec.Check(c, prog.Circuit, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("ccz lowering not equivalent: %v", r.Verdict)
	}
}

func TestParseHeaderOptional(t *testing.T) {
	if _, err := Parse(`qreg q[1]; x q[0];`); err != nil {
		t.Fatalf("headerless parse failed: %v", err)
	}
}

func TestU1AliasAndCu1(t *testing.T) {
	prog, err := Parse(`
qreg q[2];
u1(pi/8) q[0];
cu1(pi/4) q[0], q[1];
u(0.1, 0.2, 0.3) q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Circuit.Gates
	if g[0].Kind != circuit.P || g[1].Kind != circuit.P || len(g[1].Controls) != 1 {
		t.Errorf("u1/cu1 mapping wrong: %v", g[:2])
	}
	if g[2].Kind != circuit.U3 {
		t.Errorf("u mapping wrong: %v", g[2])
	}
}

func TestParseFileAndErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.qasm")
	if err := os.WriteFile(good, []byte("qreg q[2];\ncx q[0],q[1];\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := ParseFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumGates() != 1 {
		t.Fatalf("gates = %d", prog.Circuit.NumGates())
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.qasm")); err == nil {
		t.Error("missing file did not error")
	}
	bad := filepath.Join(dir, "bad.qasm")
	os.WriteFile(bad, []byte("qreg q[2]; frob q[0];"), 0o644)
	if _, err := ParseFile(bad); err == nil || !strings.Contains(err.Error(), "bad.qasm") {
		t.Errorf("parse error lacks file context: %v", err)
	}
}

func TestMeasureSingleBits(t *testing.T) {
	prog, err := Parse(`
qreg q[2];
creg c[2];
creg d[1];
measure q[1] -> c[0];
measure q[0] -> d[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Measurements) != 2 {
		t.Fatalf("measurements = %v", prog.Measurements)
	}
	if prog.Measurements[0].Qubit != 1 || prog.Measurements[0].Bit != 0 {
		t.Errorf("measurement 0 = %+v", prog.Measurements[0])
	}
	// d is offset after c in the flattened classical space.
	if prog.Measurements[1].Bit != 2 {
		t.Errorf("measurement 1 = %+v", prog.Measurements[1])
	}
}

func TestMeasureErrors(t *testing.T) {
	cases := []string{
		`qreg q[2]; measure q[0] -> nope[0];`,
		`qreg q[2]; creg c[2]; measure q[0] -> c[5];`,
		`qreg q[2]; measure q[0] -> ;`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestMathFunctionsInExpressions(t *testing.T) {
	prog, err := Parse(`
qreg q[1];
rz(cos(0)) q[0];
rx(tan(0)) q[0];
ry(exp(0)) q[0];
p(ln(exp(1))) q[0];
rz(sqrt(4)) q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Circuit.Gates
	wants := []float64{1, 0, 1, 1, 2}
	for i, w := range wants {
		if math.Abs(g[i].Params[0]-w) > 1e-12 {
			t.Errorf("gate %d param = %g, want %g", i, g[i].Params[0], w)
		}
	}
	if _, err := Parse(`qreg q[1]; rz(frob(1)) q[0];`); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestBlockCommentErrors(t *testing.T) {
	if _, err := Parse("/* unterminated\nqreg q[1];"); err == nil {
		t.Error("unterminated block comment accepted")
	}
	if _, err := Parse(`qreg q[1]; x q[0]; "stray`); err == nil {
		t.Error("unterminated string accepted")
	}
}
