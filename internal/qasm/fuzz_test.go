package qasm

import (
	"testing"

	"qcec/internal/ec"
)

// FuzzParse checks that the parser never panics on arbitrary input and that
// accepted circuits are well-formed.  Run the seed corpus with `go test`,
// explore with `go test -fuzz=FuzzParse ./internal/qasm`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];",
		"qreg q[3]; ccx q[0],q[1],q[2];",
		"qreg a[1]; qreg b[2]; swap b[0],b[1];",
		"gate g(x) a { rz(x/2) a; } qreg q[1]; g(pi) q[0];",
		"qreg q[1]; rz(1+2*(3-4)^2) q[0];",
		"qreg q[2]; creg c[2]; measure q -> c;",
		"// comment\nqreg q[1]; /* block */ x q[0];",
		"qreg q[1]; x q[5];",
		"qreg q[0];",
		"gate broken a {",
		"qreg q[1]; rz() q[0];",
		"OPENQASM 9.9;",
		"qreg q[1]; u3(pi,pi,pi q[0];",
		"qreg q[2]; cx q[0],q[0];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if prog.Circuit == nil {
			t.Fatal("nil circuit without error")
		}
		if err := prog.Circuit.Validate(); err != nil {
			t.Fatalf("accepted circuit fails validation: %v", err)
		}
	})
}

// FuzzRoundTrip checks writer/parser agreement: anything the writer can emit
// must re-parse to an equivalent circuit.
func FuzzRoundTrip(f *testing.F) {
	f.Add("qreg q[2];\nh q[0];\ncx q[0],q[1];\nswap q[0],q[1];")
	f.Add("qreg q[3];\nccx q[0],q[1],q[2];\ncrz(0.5) q[0],q[2];")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		out, err := WriteString(prog.Circuit)
		if err != nil {
			return // not all circuits are writable (e.g. >2 controls)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("writer output does not re-parse: %v\n%s", err, out)
		}
		if prog.Circuit.N <= 8 && prog.Circuit.NumGates() <= 64 {
			r := ec.Check(prog.Circuit, again.Circuit, ec.Options{Strategy: ec.Proportional})
			if r.Verdict != ec.Equivalent {
				t.Fatalf("round trip changed the function: %v", r.Verdict)
			}
		}
	})
}
