package qasm

import (
	"fmt"

	"qcec/internal/circuit"
)

// parseExpr parses a parameter expression with the usual precedence:
// ^ binds tightest, then * /, then + -.
func (p *parser) parseExpr() (expr, error) { return p.parseAddSub() }

func (p *parser) parseAddSub() (expr, error) {
	left, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			right, err := p.parseMulDiv()
			if err != nil {
				return nil, err
			}
			left = binExpr{op: '+', a: left, b: right}
		case p.acceptSymbol("-"):
			right, err := p.parseMulDiv()
			if err != nil {
				return nil, err
			}
			left = binExpr{op: '-', a: left, b: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMulDiv() (expr, error) {
	left, err := p.parsePow()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			right, err := p.parsePow()
			if err != nil {
				return nil, err
			}
			left = binExpr{op: '*', a: left, b: right}
		case p.acceptSymbol("/"):
			right, err := p.parsePow()
			if err != nil {
				return nil, err
			}
			left = binExpr{op: '/', a: left, b: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parsePow() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol("^") {
		right, err := p.parsePow() // right-associative
		if err != nil {
			return nil, err
		}
		return binExpr{op: '^', a: left, b: right}, nil
	}
	return left, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{x: x}, nil
	}
	if p.acceptSymbol("+") {
		return p.parseUnary()
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		var f float64
		if _, err := fmt.Sscanf(t.text, "%g", &f); err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return numExpr(f), nil
	case tokIdent:
		p.advance()
		if p.acceptSymbol("(") {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return callExpr{fn: t.text, x: arg}, nil
		}
		return varExpr(t.text), nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

// parseGateDef parses `gate name(params) args { body }`.
func (p *parser) parseGateDef() error {
	p.advance()
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	var def macroDef
	if p.acceptSymbol("(") {
		for !p.acceptSymbol(")") {
			pn, err := p.expectIdent()
			if err != nil {
				return err
			}
			def.params = append(def.params, pn)
			if !p.acceptSymbol(",") && !(p.cur().kind == tokSymbol && p.cur().text == ")") {
				return p.errf("expected ',' or ')' in gate parameter list")
			}
		}
	}
	for {
		an, err := p.expectIdent()
		if err != nil {
			return err
		}
		def.args = append(def.args, an)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	for !p.acceptSymbol("}") {
		if p.atEOF() {
			return p.errf("unterminated gate body for %q", name)
		}
		if p.cur().kind == tokIdent && p.cur().text == "barrier" {
			if err := p.skipToSemicolon(); err != nil {
				return err
			}
			continue
		}
		mg, err := p.parseMacroGate()
		if err != nil {
			return err
		}
		def.body = append(def.body, mg)
	}
	p.macros[name] = def
	return nil
}

func (p *parser) parseMacroGate() (macroGate, error) {
	line := p.cur().line
	name, err := p.expectIdent()
	if err != nil {
		return macroGate{}, err
	}
	mg := macroGate{name: name, line: line}
	if p.acceptSymbol("(") {
		for !p.acceptSymbol(")") {
			e, err := p.parseExpr()
			if err != nil {
				return macroGate{}, err
			}
			mg.params = append(mg.params, e)
			if !p.acceptSymbol(",") && !(p.cur().kind == tokSymbol && p.cur().text == ")") {
				return macroGate{}, p.errf("expected ',' or ')' in parameter list")
			}
		}
	}
	for {
		an, err := p.expectIdent()
		if err != nil {
			return macroGate{}, err
		}
		mg.args = append(mg.args, an)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(";"); err != nil {
		return macroGate{}, err
	}
	return mg, nil
}

// parseGateCall parses a top-level gate application and emits circuit gates.
func (p *parser) parseGateCall() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	var params []float64
	if p.acceptSymbol("(") {
		for !p.acceptSymbol(")") {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			v, err := e.eval(nil)
			if err != nil {
				return p.errf("%v", err)
			}
			params = append(params, v)
			if !p.acceptSymbol(",") && !(p.cur().kind == tokSymbol && p.cur().text == ")") {
				return p.errf("expected ',' or ')' in parameter list")
			}
		}
	}
	var args []qubitArg
	for {
		a, err := p.parseQubitArg()
		if err != nil {
			return err
		}
		args = append(args, a)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}

	// Broadcast: if any argument is a whole register, all whole-register
	// arguments must have equal size and the call repeats element-wise.
	width := 1
	for _, a := range args {
		if a.whole {
			if width != 1 && width != len(a.wires) {
				return p.errf("broadcast width mismatch in %q", name)
			}
			width = len(a.wires)
		}
	}
	for i := 0; i < width; i++ {
		wires := make([]int, len(args))
		for j, a := range args {
			if a.whole {
				wires[j] = a.wires[i]
			} else {
				wires[j] = a.wires[0]
			}
		}
		if err := p.emit(name, params, wires); err != nil {
			return err
		}
	}
	return nil
}

// emit resolves a gate name (builtin or macro) to circuit gates.
func (p *parser) emit(name string, params []float64, wires []int) error {
	if g, ok, err := builtinGate(name, params, wires); err != nil {
		return p.errf("%v", err)
	} else if ok {
		p.pending = append(p.pending, pendingGate{gate: g})
		return nil
	}
	def, ok := p.macros[name]
	if !ok {
		return p.errf("unknown gate %q", name)
	}
	if len(params) != len(def.params) || len(wires) != len(def.args) {
		return p.errf("gate %q expects %d params and %d qubits, got %d and %d",
			name, len(def.params), len(def.args), len(params), len(wires))
	}
	env := make(map[string]float64, len(def.params))
	for i, pn := range def.params {
		env[pn] = params[i]
	}
	argMap := make(map[string]int, len(def.args))
	for i, an := range def.args {
		argMap[an] = wires[i]
	}
	for _, mg := range def.body {
		subParams := make([]float64, len(mg.params))
		for i, e := range mg.params {
			v, err := e.eval(env)
			if err != nil {
				return p.errf("in gate %q: %v", name, err)
			}
			subParams[i] = v
		}
		subWires := make([]int, len(mg.args))
		for i, an := range mg.args {
			w, ok := argMap[an]
			if !ok {
				return p.errf("in gate %q: unknown qubit argument %q", name, an)
			}
			subWires[i] = w
		}
		if err := p.emit(mg.name, subParams, subWires); err != nil {
			return err
		}
	}
	return nil
}

// builtinGate maps a qelib1-style gate name to a circuit gate.  It reports
// ok=false for names that are not builtin (candidate macros).
func builtinGate(name string, params []float64, wires []int) (circuit.Gate, bool, error) {
	mk := func(kind circuit.Kind, nParams, nCtl int) (circuit.Gate, bool, error) {
		if len(params) != nParams {
			return circuit.Gate{}, true, fmt.Errorf("gate %q expects %d parameters, got %d", name, nParams, len(params))
		}
		if len(wires) != nCtl+1 {
			return circuit.Gate{}, true, fmt.Errorf("gate %q expects %d qubits, got %d", name, nCtl+1, len(wires))
		}
		g := circuit.Gate{Kind: kind, Target: wires[nCtl], Target2: -1, Params: params}
		for i := 0; i < nCtl; i++ {
			g.Controls = append(g.Controls, circuit.Control{Qubit: wires[i]})
		}
		return g, true, nil
	}
	mkSwap := func(nCtl int) (circuit.Gate, bool, error) {
		if len(wires) != nCtl+2 {
			return circuit.Gate{}, true, fmt.Errorf("gate %q expects %d qubits, got %d", name, nCtl+2, len(wires))
		}
		g := circuit.Gate{Kind: circuit.SWAP, Target: wires[nCtl], Target2: wires[nCtl+1]}
		for i := 0; i < nCtl; i++ {
			g.Controls = append(g.Controls, circuit.Control{Qubit: wires[i]})
		}
		return g, true, nil
	}
	switch name {
	case "id":
		return mk(circuit.I, 0, 0)
	case "x", "X":
		return mk(circuit.X, 0, 0)
	case "y":
		return mk(circuit.Y, 0, 0)
	case "z":
		return mk(circuit.Z, 0, 0)
	case "h":
		return mk(circuit.H, 0, 0)
	case "s":
		return mk(circuit.S, 0, 0)
	case "sdg":
		return mk(circuit.Sdg, 0, 0)
	case "t":
		return mk(circuit.T, 0, 0)
	case "tdg":
		return mk(circuit.Tdg, 0, 0)
	case "sx":
		return mk(circuit.SX, 0, 0)
	case "sxdg":
		return mk(circuit.SXdg, 0, 0)
	case "rx":
		return mk(circuit.RX, 1, 0)
	case "ry":
		return mk(circuit.RY, 1, 0)
	case "rz":
		return mk(circuit.RZ, 1, 0)
	case "p", "u1":
		return mk(circuit.P, 1, 0)
	case "u2":
		return mk(circuit.U2, 2, 0)
	case "u3", "u", "U":
		return mk(circuit.U3, 3, 0)
	case "cx", "CX", "cnot":
		return mk(circuit.X, 0, 1)
	case "cy":
		return mk(circuit.Y, 0, 1)
	case "cz":
		return mk(circuit.Z, 0, 1)
	case "ch":
		return mk(circuit.H, 0, 1)
	case "csx":
		return mk(circuit.SX, 0, 1)
	case "crx":
		return mk(circuit.RX, 1, 1)
	case "cry":
		return mk(circuit.RY, 1, 1)
	case "crz":
		return mk(circuit.RZ, 1, 1)
	case "cp", "cu1":
		return mk(circuit.P, 1, 1)
	case "cu3":
		return mk(circuit.U3, 3, 1)
	case "ccx", "toffoli":
		return mk(circuit.X, 0, 2)
	case "ccz":
		return mk(circuit.Z, 0, 2)
	case "swap":
		return mkSwap(0)
	case "cswap", "fredkin":
		return mkSwap(1)
	default:
		return circuit.Gate{}, false, nil
	}
}

// finish assembles the parsed program once all declarations are known.
func (p *parser) finish() (*Program, error) {
	width := 0
	for _, r := range p.qregs {
		width += r.Size
	}
	if width == 0 {
		return nil, fmt.Errorf("qasm: no quantum registers declared")
	}
	name := "qasm"
	if len(p.qregs) == 1 {
		name = p.qregs[0].Name
	}
	c := circuit.New(width, name)
	for _, pg := range p.pending {
		if err := c.TryAdd(pg.gate); err != nil {
			return nil, fmt.Errorf("qasm: invalid gate %s: %w", pg.gate, err)
		}
	}
	return &Program{
		Circuit:      c,
		QRegs:        p.qregs,
		CRegs:        p.cregs,
		Measurements: p.measures,
	}, nil
}
