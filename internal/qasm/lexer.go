// Package qasm reads and writes a practical subset of OpenQASM 2.0 — the
// interchange format the paper's benchmark circuits ship in.
//
// Supported: version header, include statements (ignored), qreg/creg
// declarations (multiple registers are flattened into one contiguous wire
// space), the full qelib1 standard-gate vocabulary, user-defined gate macros
// (expanded at parse time), parameter expressions over pi with + - * / and
// unary minus, barrier (ignored) and measure (recorded but not simulated).
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single punctuation: ( ) [ ] { } , ; + - * / ^ ->
	tokArrow
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated block comment")
			}
			l.pos += 2
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scanToken() (token, error) {
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) {
			r := l.src[l.pos]
			if !unicode.IsLetter(rune(r)) && !unicode.IsDigit(rune(r)) && r != '_' {
				break
			}
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		seenE := false
		for l.pos < len(l.src) {
			r := l.src[l.pos]
			if unicode.IsDigit(rune(r)) || r == '.' {
				l.pos++
				continue
			}
			if (r == 'e' || r == 'E') && !seenE {
				seenE = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokArrow, text: "->", line: l.line}, nil
	case strings.ContainsRune("()[]{},;+-*/^==", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

// tokenize scans the whole source up front; QASM files are small enough that
// a token slice is simpler than streaming.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
