package qasm

import (
	"fmt"
	"io"
	"strings"

	"qcec/internal/circuit"
)

// Write renders a circuit as OpenQASM 2.0.  Gates with up to two positive
// controls map onto qelib1 names; negative controls are realized by
// conjugating with X gates; gates with three or more controls are not
// representable in plain qelib1 and cause an error (decompose first).
func Write(w io.Writer, c *circuit.Circuit) error {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.N)
	for i, g := range c.Gates {
		if err := writeGate(&b, g); err != nil {
			return fmt.Errorf("qasm: gate %d (%s): %w", i, g, err)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteString renders a circuit as an OpenQASM 2.0 string.
func WriteString(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}

func writeGate(b *strings.Builder, g circuit.Gate) error {
	// Negative controls: conjugate with X.
	var negs []int
	for _, ctl := range g.Controls {
		if ctl.Neg {
			negs = append(negs, ctl.Qubit)
		}
	}
	for _, q := range negs {
		fmt.Fprintf(b, "x q[%d];\n", q)
	}
	if err := writePositive(b, g); err != nil {
		return err
	}
	for _, q := range negs {
		fmt.Fprintf(b, "x q[%d];\n", q)
	}
	return nil
}

func writePositive(b *strings.Builder, g circuit.Gate) error {
	ctl := make([]int, len(g.Controls))
	for i, c := range g.Controls {
		ctl[i] = c.Qubit
	}
	args := func(qs ...int) string {
		parts := make([]string, len(qs))
		for i, q := range qs {
			parts[i] = fmt.Sprintf("q[%d]", q)
		}
		return strings.Join(parts, ",")
	}
	params := func() string {
		if len(g.Params) == 0 {
			return ""
		}
		parts := make([]string, len(g.Params))
		for i, p := range g.Params {
			parts[i] = fmt.Sprintf("%.17g", p)
		}
		return "(" + strings.Join(parts, ",") + ")"
	}

	if g.Kind == circuit.SWAP {
		switch len(ctl) {
		case 0:
			fmt.Fprintf(b, "swap %s;\n", args(g.Target, g.Target2))
			return nil
		case 1:
			fmt.Fprintf(b, "cswap %s;\n", args(ctl[0], g.Target, g.Target2))
			return nil
		default:
			return fmt.Errorf("SWAP with %d controls not representable in qelib1", len(ctl))
		}
	}
	if g.Kind == circuit.Custom {
		return fmt.Errorf("custom-matrix gates not representable in OpenQASM 2.0")
	}

	base := map[circuit.Kind]string{
		circuit.I: "id", circuit.X: "x", circuit.Y: "y", circuit.Z: "z",
		circuit.H: "h", circuit.S: "s", circuit.Sdg: "sdg",
		circuit.T: "t", circuit.Tdg: "tdg", circuit.SX: "sx", circuit.SXdg: "sxdg",
		circuit.RX: "rx", circuit.RY: "ry", circuit.RZ: "rz", circuit.P: "p",
		circuit.U2: "u2", circuit.U3: "u3",
	}[g.Kind]
	if base == "" {
		return fmt.Errorf("unsupported gate kind %v", g.Kind)
	}

	switch len(ctl) {
	case 0:
		fmt.Fprintf(b, "%s%s %s;\n", base, params(), args(g.Target))
		return nil
	case 1:
		name, ok := map[string]string{
			"x": "cx", "y": "cy", "z": "cz", "h": "ch", "sx": "csx",
			"rx": "crx", "ry": "cry", "rz": "crz", "p": "cp", "u3": "cu3",
		}[base]
		if !ok {
			return fmt.Errorf("controlled %s not representable in qelib1", base)
		}
		fmt.Fprintf(b, "%s%s %s;\n", name, params(), args(ctl[0], g.Target))
		return nil
	case 2:
		switch base {
		case "x":
			fmt.Fprintf(b, "ccx %s;\n", args(ctl[0], ctl[1], g.Target))
			return nil
		case "z":
			// ccz via H conjugation on the target.
			fmt.Fprintf(b, "h q[%d];\nccx %s;\nh q[%d];\n", g.Target, args(ctl[0], ctl[1], g.Target), g.Target)
			return nil
		}
		return fmt.Errorf("doubly-controlled %s not representable in qelib1", base)
	default:
		return fmt.Errorf("%d-controlled %s not representable in qelib1 (decompose first)", len(ctl), base)
	}
}
