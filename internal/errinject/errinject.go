// Package errinject plants the design-flow error classes of the paper's
// evaluation (Sec. V) into circuits: "Common errors occurring during design
// flows involve altered single-qubit gates as well as misplaced/removed
// C-NOT gates."  The injected circuits are the non-equivalent instances of
// Table Ia.
//
// All injections are deterministic per seed.
package errinject

import (
	"fmt"
	"math"
	"math/rand"

	"qcec/internal/circuit"
)

// Kind enumerates the error classes.
type Kind int

// Error classes, mirroring paper Sec. IV-A/V.
const (
	// GateSubstitution replaces a single-qubit gate with a different one
	// (e.g. an H written where an X belongs).
	GateSubstitution Kind = iota
	// RotationOffset perturbs a rotation angle (the paper's "offsets in the
	// rotation angle").
	RotationOffset
	// MisplacedCNOT moves one operand of a CNOT to a wrong qubit (the
	// paper's Example 6 bug class).
	MisplacedCNOT
	// RemovedCNOT deletes a CNOT.
	RemovedCNOT
	// FlippedCNOT exchanges control and target of a CNOT.
	FlippedCNOT
)

// String returns the error-class name.
func (k Kind) String() string {
	switch k {
	case GateSubstitution:
		return "gate substitution"
	case RotationOffset:
		return "rotation offset"
	case MisplacedCNOT:
		return "misplaced CNOT"
	case RemovedCNOT:
		return "removed CNOT"
	case FlippedCNOT:
		return "flipped CNOT"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllKinds lists every error class.
func AllKinds() []Kind {
	return []Kind{GateSubstitution, RotationOffset, MisplacedCNOT, RemovedCNOT, FlippedCNOT}
}

// Injection describes what was planted.
type Injection struct {
	Kind      Kind
	GateIndex int
	Detail    string
}

// String renders the injection for table rows and logs.
func (i Injection) String() string {
	return fmt.Sprintf("%s at gate %d (%s)", i.Kind, i.GateIndex, i.Detail)
}

// Inject returns a copy of the circuit with one error of the given class,
// chosen deterministically from seed.  It fails if the circuit has no gate
// the class applies to.
func Inject(c *circuit.Circuit, kind Kind, seed int64) (*circuit.Circuit, Injection, error) {
	rng := rand.New(rand.NewSource(seed))
	out := c.Clone()
	out.Name = c.Name + "_buggy"
	switch kind {
	case GateSubstitution:
		return substitute(out, rng)
	case RotationOffset:
		return offsetRotation(out, rng)
	case MisplacedCNOT:
		return misplace(out, rng)
	case RemovedCNOT:
		return remove(out, rng)
	case FlippedCNOT:
		return flip(out, rng)
	default:
		return nil, Injection{}, fmt.Errorf("errinject: unknown kind %v", kind)
	}
}

// InjectAny plants an error of a seed-chosen class, retrying other classes
// if the first pick is inapplicable (e.g. RotationOffset on a Clifford-only
// circuit).  It fails only if no class applies.
func InjectAny(c *circuit.Circuit, seed int64) (*circuit.Circuit, Injection, error) {
	rng := rand.New(rand.NewSource(seed))
	kinds := AllKinds()
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	var lastErr error
	for _, k := range kinds {
		out, inj, err := Inject(c, k, rng.Int63())
		if err == nil {
			return out, inj, nil
		}
		lastErr = err
	}
	return nil, Injection{}, fmt.Errorf("errinject: no error class applies: %w", lastErr)
}

// pick returns a random index among gates satisfying pred, or -1.
func pick(c *circuit.Circuit, rng *rand.Rand, pred func(circuit.Gate) bool) int {
	var idxs []int
	for i, g := range c.Gates {
		if pred(g) {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[rng.Intn(len(idxs))]
}

func isSingleQubitFixed(g circuit.Gate) bool {
	switch g.Kind {
	case circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.Sdg,
		circuit.T, circuit.Tdg, circuit.SX, circuit.SXdg:
		return len(g.Controls) == 0
	}
	return false
}

func isRotation(g circuit.Gate) bool {
	switch g.Kind {
	case circuit.RX, circuit.RY, circuit.RZ, circuit.P:
		return true
	}
	return false
}

func isCNOT(g circuit.Gate) bool {
	return g.Kind == circuit.X && len(g.Controls) == 1 && !g.Controls[0].Neg
}

func substitute(c *circuit.Circuit, rng *rand.Rand) (*circuit.Circuit, Injection, error) {
	idx := pick(c, rng, isSingleQubitFixed)
	if idx < 0 {
		return nil, Injection{}, fmt.Errorf("errinject: no single-qubit gate to substitute")
	}
	alternatives := []circuit.Kind{circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.T}
	old := c.Gates[idx].Kind
	repl := alternatives[rng.Intn(len(alternatives))]
	for repl == old {
		repl = alternatives[rng.Intn(len(alternatives))]
	}
	c.Gates[idx].Kind = repl
	return c, Injection{
		Kind:      GateSubstitution,
		GateIndex: idx,
		Detail:    fmt.Sprintf("%v -> %v on q%d", old, repl, c.Gates[idx].Target),
	}, nil
}

func offsetRotation(c *circuit.Circuit, rng *rand.Rand) (*circuit.Circuit, Injection, error) {
	idx := pick(c, rng, isRotation)
	if idx < 0 {
		return nil, Injection{}, fmt.Errorf("errinject: no rotation gate to offset")
	}
	// A noticeable but small offset, as a buggy decomposition would produce.
	eps := (rng.Float64()*0.9 + 0.1) * math.Pi / 4
	if rng.Intn(2) == 0 {
		eps = -eps
	}
	old := c.Gates[idx].Params[0]
	c.Gates[idx].Params = []float64{old + eps}
	return c, Injection{
		Kind:      RotationOffset,
		GateIndex: idx,
		Detail:    fmt.Sprintf("%v angle %.4f -> %.4f", c.Gates[idx].Kind, old, old+eps),
	}, nil
}

func misplace(c *circuit.Circuit, rng *rand.Rand) (*circuit.Circuit, Injection, error) {
	idx := pick(c, rng, isCNOT)
	if idx < 0 {
		return nil, Injection{}, fmt.Errorf("errinject: no CNOT to misplace")
	}
	g := &c.Gates[idx]
	if c.N < 3 {
		return nil, Injection{}, fmt.Errorf("errinject: register too small to misplace a CNOT")
	}
	moveTarget := rng.Intn(2) == 0
	var detail string
	if moveTarget {
		old := g.Target
		q := rng.Intn(c.N)
		for q == old || q == g.Controls[0].Qubit {
			q = rng.Intn(c.N)
		}
		g.Target = q
		detail = fmt.Sprintf("target q%d -> q%d", old, q)
	} else {
		old := g.Controls[0].Qubit
		q := rng.Intn(c.N)
		for q == old || q == g.Target {
			q = rng.Intn(c.N)
		}
		g.Controls = []circuit.Control{{Qubit: q}}
		detail = fmt.Sprintf("control q%d -> q%d", old, q)
	}
	return c, Injection{Kind: MisplacedCNOT, GateIndex: idx, Detail: detail}, nil
}

func remove(c *circuit.Circuit, rng *rand.Rand) (*circuit.Circuit, Injection, error) {
	idx := pick(c, rng, isCNOT)
	if idx < 0 {
		return nil, Injection{}, fmt.Errorf("errinject: no CNOT to remove")
	}
	g := c.Gates[idx]
	c.Gates = append(c.Gates[:idx], c.Gates[idx+1:]...)
	return c, Injection{
		Kind:      RemovedCNOT,
		GateIndex: idx,
		Detail:    fmt.Sprintf("removed cx q%d,q%d", g.Controls[0].Qubit, g.Target),
	}, nil
}

func flip(c *circuit.Circuit, rng *rand.Rand) (*circuit.Circuit, Injection, error) {
	idx := pick(c, rng, isCNOT)
	if idx < 0 {
		return nil, Injection{}, fmt.Errorf("errinject: no CNOT to flip")
	}
	g := &c.Gates[idx]
	oldT, oldC := g.Target, g.Controls[0].Qubit
	g.Target, g.Controls = oldC, []circuit.Control{{Qubit: oldT}}
	return c, Injection{
		Kind:      FlippedCNOT,
		GateIndex: idx,
		Detail:    fmt.Sprintf("cx q%d,q%d -> cx q%d,q%d", oldC, oldT, oldT, oldC),
	}, nil
}
