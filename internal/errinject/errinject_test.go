package errinject

import (
	"math/rand"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/core"
)

func testCircuit() *circuit.Circuit {
	c := circuit.New(4, "base")
	c.H(0).CX(0, 1).T(2).RZ(0.7, 3).CX(1, 2).X(3).CX(2, 3).S(1).RY(1.1, 0)
	return c
}

func TestEachKindApplies(t *testing.T) {
	for _, k := range AllKinds() {
		c := testCircuit()
		out, inj, err := Inject(c, k, 1)
		if err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		if inj.Kind != k {
			t.Errorf("%v: reported kind %v", k, inj.Kind)
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%v: invalid output: %v", k, err)
		}
		if inj.Detail == "" || inj.String() == "" {
			t.Errorf("%v: empty description", k)
		}
		// The original must be untouched.
		if c.NumGates() != 9 {
			t.Errorf("%v: original circuit mutated", k)
		}
	}
}

func TestRemovedCNOTShrinks(t *testing.T) {
	c := testCircuit()
	out, _, err := Inject(c, RemovedCNOT, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumGates() != c.NumGates()-1 {
		t.Fatalf("gate count %d -> %d", c.NumGates(), out.NumGates())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, injA, _ := Inject(testCircuit(), MisplacedCNOT, 42)
	b, injB, _ := Inject(testCircuit(), MisplacedCNOT, 42)
	if injA.GateIndex != injB.GateIndex || injA.Detail != injB.Detail {
		t.Fatal("injection not deterministic")
	}
	for i := range a.Gates {
		if !a.Gates[i].Equal(b.Gates[i]) {
			t.Fatal("injected circuits differ")
		}
	}
}

func TestInapplicableKinds(t *testing.T) {
	onlyCX := circuit.New(3, "cx")
	onlyCX.CX(0, 1)
	if _, _, err := Inject(onlyCX, GateSubstitution, 1); err == nil {
		t.Error("substitution on control-only circuit accepted")
	}
	if _, _, err := Inject(onlyCX, RotationOffset, 1); err == nil {
		t.Error("rotation offset without rotations accepted")
	}
	onlyH := circuit.New(2, "h")
	onlyH.H(0)
	if _, _, err := Inject(onlyH, MisplacedCNOT, 1); err == nil {
		t.Error("misplacement without CNOTs accepted")
	}
	tiny := circuit.New(2, "tiny")
	tiny.CX(0, 1)
	if _, _, err := Inject(tiny, MisplacedCNOT, 1); err == nil {
		t.Error("misplacement on 2-qubit register accepted")
	}
}

func TestInjectAnyFallsBack(t *testing.T) {
	// A Clifford-only circuit: RotationOffset is inapplicable, but InjectAny
	// must still succeed via another class.
	c := circuit.New(3, "clifford")
	c.H(0).CX(0, 1).CX(1, 2).S(2)
	for seed := int64(0); seed < 10; seed++ {
		out, inj, err := InjectAny(c, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out == nil || inj.Detail == "" {
			t.Fatalf("seed %d: empty result", seed)
		}
	}
}

func TestInjectAnyExhausted(t *testing.T) {
	c := circuit.New(2, "none")
	// Only a controlled-RZ: no plain 1q gate, no rotation (controlled ones
	// don't match isRotation's uncontrolled intent? they do match kind-wise).
	// Use a gate no class applies to: a controlled H.
	c.Add(circuit.Gate{Kind: circuit.H, Target: 1, Target2: -1, Controls: []circuit.Control{{Qubit: 0}}})
	if _, _, err := InjectAny(c, 1); err == nil {
		t.Error("InjectAny succeeded on a circuit no class applies to")
	}
}

// The paper's central empirical claim: injected errors make the circuits
// non-equivalent, and simulation detects this within very few runs.
func TestInjectedErrorsAreDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	detected := 0
	oneSim := 0
	trials := 0
	for seed := int64(0); seed < 20; seed++ {
		c := testCircuit()
		out, inj, err := InjectAny(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.Check(c, out, core.Options{Seed: rng.Int63(), SkipEC: true})
		trials++
		if rep.Verdict == core.NotEquivalent {
			detected++
			if rep.NumSims == 1 {
				oneSim++
			}
		} else {
			t.Logf("seed %d: %s not detected by simulation (possibly equivalent by chance)", seed, inj)
		}
	}
	if detected < trials*9/10 {
		t.Fatalf("only %d/%d injected errors detected", detected, trials)
	}
	if oneSim < detected*8/10 {
		t.Errorf("only %d/%d detections needed a single simulation", oneSim, detected)
	}
}
