// Package decompose lowers circuits with multi-controlled operations to the
// elementary gate sets of real devices — the "decomposition" stage of the
// design flow whose output the paper's equivalence checker verifies
// (refs [2]-[5]).
//
// Two target levels are provided:
//
//   - LevelToffoli: at most two positive controls per gate (MCT netlists
//     become Toffoli networks),
//   - LevelCX: arbitrary single-qubit gates plus CX only (the universal set
//     of paper Sec. II), with Toffolis realized by the standard 15-gate
//     Clifford+T network.
//
// Multi-controlled NOTs use the Barenco-style split with a borrowed ancilla
// line (quadratic cost) whenever a free wire exists, and the ancilla-free
// square-root-of-U recursion (polynomially more expensive) otherwise.  This
// mirrors the severe gate-count blowups of the paper's G' columns.
package decompose

import (
	"fmt"
	"math"
	"math/cmplx"
)

type mat2 = [2][2]complex128

func mul2(a, b mat2) mat2 {
	var r mat2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return r
}

func dagger2(m mat2) mat2 {
	return mat2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

func isIdentity2(m mat2, tol float64) bool {
	return cmplx.Abs(m[0][0]-1) < tol && cmplx.Abs(m[1][1]-1) < tol &&
		cmplx.Abs(m[0][1]) < tol && cmplx.Abs(m[1][0]) < tol
}

// Sqrt2 returns the principal square root of a 2x2 unitary: the unique
// unitary V with V² = U whose eigenvalues have non-negative real part
// arguments in (-pi/2, pi/2].
func Sqrt2(u mat2) mat2 {
	tr := u[0][0] + u[1][1]
	det := u[0][0]*u[1][1] - u[0][1]*u[1][0]
	disc := cmplx.Sqrt(tr*tr - 4*det)
	l1 := (tr + disc) / 2
	l2 := (tr - disc) / 2
	if cmplx.Abs(l1-l2) < 1e-12 {
		// U = l·I (or defective, impossible for unitary): scalar sqrt.
		s := cmplx.Sqrt(l1)
		return mat2{{s * u[0][0] / l1, s * u[0][1] / l1}, {s * u[1][0] / l1, s * u[1][1] / l1}}
	}
	// Projector decomposition: U = l1·P1 + l2·P2 with
	// P1 = (U - l2 I)/(l1 - l2), P2 = I - P1.
	s1, s2 := cmplx.Sqrt(l1), cmplx.Sqrt(l2)
	var r mat2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var id complex128
			if i == j {
				id = 1
			}
			p1 := (u[i][j] - l2*id) / (l1 - l2)
			p2 := id - p1
			r[i][j] = s1*p1 + s2*p2
		}
	}
	return r
}

// ZYZ decomposes a 2x2 unitary as U = e^{i alpha} Rz(beta) Ry(gamma)
// Rz(delta) and returns the four angles.
func ZYZ(u mat2) (alpha, beta, gamma, delta float64) {
	det := u[0][0]*u[1][1] - u[0][1]*u[1][0]
	alpha = cmplx.Phase(det) / 2
	// Remove the global phase; v is in SU(2).
	ph := cmplx.Exp(complex(0, -alpha))
	var v mat2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			v[i][j] = ph * u[i][j]
		}
	}
	c := cmplx.Abs(v[0][0])
	s := cmplx.Abs(v[1][0])
	gamma = 2 * math.Atan2(s, c)
	const eps = 1e-12
	switch {
	case s < eps:
		// Diagonal: only beta+delta matters.
		delta = 0
		beta = 2 * cmplx.Phase(v[1][1])
	case c < eps:
		// Anti-diagonal: only beta-delta matters.
		delta = 0
		beta = 2 * cmplx.Phase(v[1][0])
	default:
		// arg(v00) = -(beta+delta)/2, arg(v10) = (beta-delta)/2.
		a00 := cmplx.Phase(v[0][0])
		a10 := cmplx.Phase(v[1][0])
		beta = a10 - a00
		delta = -a00 - a10
	}
	return alpha, beta, gamma, delta
}

func rz(theta float64) mat2 {
	em := cmplx.Exp(complex(0, -theta/2))
	ep := cmplx.Exp(complex(0, theta/2))
	return mat2{{em, 0}, {0, ep}}
}

func ry(theta float64) mat2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return mat2{{c, -s}, {s, c}}
}

// reconstructZYZ rebuilds the matrix from ZYZ angles (used by tests and the
// internal self-check).
func reconstructZYZ(alpha, beta, gamma, delta float64) mat2 {
	m := mul2(rz(beta), mul2(ry(gamma), rz(delta)))
	ph := cmplx.Exp(complex(0, alpha))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] *= ph
		}
	}
	return m
}

func checkUnitary2(u mat2) error {
	if !isIdentity2(mul2(u, dagger2(u)), 1e-8) {
		return fmt.Errorf("decompose: matrix is not unitary: %v", u)
	}
	return nil
}
