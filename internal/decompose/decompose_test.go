package decompose

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

func randomUnitary(rng *rand.Rand) mat2 {
	th := rng.Float64() * math.Pi
	ph := rng.Float64() * 2 * math.Pi
	la := rng.Float64() * 2 * math.Pi
	al := rng.Float64() * 2 * math.Pi
	c := complex(math.Cos(th/2), 0)
	s := complex(math.Sin(th/2), 0)
	g := cmplx.Exp(complex(0, al))
	return mat2{
		{g * c, -g * s * cmplx.Exp(complex(0, la))},
		{g * s * cmplx.Exp(complex(0, ph)), g * c * cmplx.Exp(complex(0, ph+la))},
	}
}

func mat2Close(a, b mat2, tol float64) bool {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

func TestSqrt2(t *testing.T) {
	x := mat2{{0, 1}, {1, 0}}
	v := Sqrt2(x)
	if !mat2Close(mul2(v, v), x, 1e-12) {
		t.Errorf("sqrt(X)^2 != X: %v", v)
	}
	// sqrt of identity-like scalars.
	id := mat2{{1, 0}, {0, 1}}
	if !mat2Close(mul2(Sqrt2(id), Sqrt2(id)), id, 1e-12) {
		t.Error("sqrt(I)^2 != I")
	}
	z := mat2{{1, 0}, {0, -1}}
	v = Sqrt2(z)
	if !mat2Close(mul2(v, v), z, 1e-12) {
		t.Errorf("sqrt(Z)^2 != Z: %v", v)
	}
}

func TestQuickSqrt2RandomUnitaries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUnitary(rng)
		v := Sqrt2(u)
		if checkUnitary2(v) != nil {
			return false
		}
		return mat2Close(mul2(v, v), u, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickZYZRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUnitary(rng)
		a, b, g, d := ZYZ(u)
		return mat2Close(reconstructZYZ(a, b, g, d), u, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZYZSpecialCases(t *testing.T) {
	// Diagonal, anti-diagonal and Hadamard.
	for _, u := range []mat2{
		{{1, 0}, {0, complex(0, 1)}},              // S
		{{0, 1}, {1, 0}},                          // X
		{{0, complex(0, -1)}, {complex(0, 1), 0}}, // Y
		{{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)}, {complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)}}, // H
	} {
		a, b, g, d := ZYZ(u)
		if !mat2Close(reconstructZYZ(a, b, g, d), u, 1e-12) {
			t.Errorf("ZYZ round trip failed for %v", u)
		}
	}
}

// checkEquivalent decomposes and verifies strict equivalence.
func checkEquivalent(t *testing.T, c *circuit.Circuit, level Level) *circuit.Circuit {
	t.Helper()
	d := Circuit(c, level)
	if err := d.Validate(); err != nil {
		t.Fatalf("decomposed circuit invalid: %v", err)
	}
	r := ec.Check(c, d, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("decomposition at %v not equivalent: %v (reason %s)", level, r.Verdict, r.Reason)
	}
	return d
}

func TestControlledUEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		c := circuit.New(2, "cu")
		c.Add(circuit.Gate{Kind: circuit.Custom, Target: 1, Target2: -1,
			Controls: []circuit.Control{{Qubit: 0}}, Mat: randomUnitary(rng)})
		d := checkEquivalent(t, c, LevelCX)
		for _, g := range d.Gates {
			if len(g.Controls) > 1 || (len(g.Controls) == 1 && g.Kind != circuit.X) {
				t.Fatalf("LevelCX output contains %v", g)
			}
		}
	}
}

func TestControlledNamedGates(t *testing.T) {
	c := circuit.New(2, "named")
	c.CZ(0, 1)
	c.Add(circuit.Gate{Kind: circuit.H, Target: 1, Target2: -1, Controls: []circuit.Control{{Qubit: 0}}})
	c.Add(circuit.Gate{Kind: circuit.RZ, Target: 0, Target2: -1, Params: []float64{0.7}, Controls: []circuit.Control{{Qubit: 1}}})
	checkEquivalent(t, c, LevelCX)
}

func TestToffoliCliffordT(t *testing.T) {
	c := circuit.New(3, "ccx")
	c.CCX(0, 1, 2)
	d := checkEquivalent(t, c, LevelCX)
	if d.NumGates() != 15 {
		t.Errorf("Clifford+T Toffoli has %d gates, want 15", d.NumGates())
	}
	for _, g := range d.Gates {
		if len(g.Controls) > 1 {
			t.Fatalf("Toffoli decomposition contains multi-controlled gate %v", g)
		}
	}
}

func TestMCXWithFreeWire(t *testing.T) {
	for ctls := 3; ctls <= 7; ctls++ {
		n := ctls + 2 // one spare wire for the split
		c := circuit.New(n, "mcx")
		controls := make([]int, ctls)
		for i := range controls {
			controls[i] = i
		}
		c.MCX(controls, ctls)
		d := checkEquivalent(t, c, LevelToffoli)
		for _, g := range d.Gates {
			if len(g.Controls) > 2 {
				t.Fatalf("LevelToffoli output contains %v", g)
			}
		}
	}
}

func TestMCXFullRegister(t *testing.T) {
	// No free wire: forces the square-root recursion.
	for ctls := 2; ctls <= 5; ctls++ {
		n := ctls + 1
		c := circuit.New(n, "mcx-full")
		controls := make([]int, ctls)
		for i := range controls {
			controls[i] = i
		}
		c.MCX(controls, ctls)
		checkEquivalent(t, c, LevelCX)
	}
}

func TestMCZAndMCU(t *testing.T) {
	c := circuit.New(4, "mcz")
	c.MCZ([]int{0, 1, 2}, 3)
	checkEquivalent(t, c, LevelCX)

	rng := rand.New(rand.NewSource(2))
	c2 := circuit.New(4, "mcu")
	c2.Add(circuit.Gate{Kind: circuit.Custom, Target: 3, Target2: -1,
		Controls: []circuit.Control{{Qubit: 0}, {Qubit: 1}, {Qubit: 2}},
		Mat:      randomUnitary(rng)})
	checkEquivalent(t, c2, LevelCX)
}

func TestNegativeControls(t *testing.T) {
	c := circuit.New(4, "neg")
	c.MCXNeg([]circuit.Control{{Qubit: 0, Neg: true}, {Qubit: 1}, {Qubit: 2, Neg: true}}, 3)
	d := checkEquivalent(t, c, LevelToffoli)
	for _, g := range d.Gates {
		for _, ctl := range g.Controls {
			if ctl.Neg {
				t.Fatalf("negative control survived decomposition: %v", g)
			}
		}
	}
}

func TestControlledSwapLowering(t *testing.T) {
	c := circuit.New(4, "cswap")
	c.Swap(0, 1)
	c.CSwap(2, 0, 1)
	d := checkEquivalent(t, c, LevelCX)
	for _, g := range d.Gates {
		if g.Kind == circuit.SWAP {
			t.Fatalf("SWAP survived LevelCX: %v", g)
		}
	}
}

func TestMultiControlledSwap(t *testing.T) {
	c := circuit.New(5, "ccswap")
	c.Add(circuit.Gate{Kind: circuit.SWAP, Target: 0, Target2: 1,
		Controls: []circuit.Control{{Qubit: 2}, {Qubit: 3}}})
	checkEquivalent(t, c, LevelToffoli)
}

func TestRealisticMCTNetlist(t *testing.T) {
	// A small MCT netlist in the style of the RevLib benchmarks.
	rng := rand.New(rand.NewSource(3))
	n := 7
	c := circuit.New(n, "netlist")
	for i := 0; i < 25; i++ {
		nc := rng.Intn(n-1) + 1
		perm := rng.Perm(n)
		controls := make([]circuit.Control, 0, nc)
		for _, q := range perm[:nc] {
			controls = append(controls, circuit.Control{Qubit: q, Neg: rng.Intn(3) == 0})
		}
		c.MCXNeg(controls, perm[nc])
	}
	d := checkEquivalent(t, c, LevelCX)
	if d.NumGates() <= c.NumGates() {
		t.Errorf("decomposition did not grow the circuit (%d -> %d)", c.NumGates(), d.NumGates())
	}
	t.Logf("MCT netlist: %d gates -> %d gates at LevelCX", c.NumGates(), d.NumGates())
}

func TestBlowupScalesWithControls(t *testing.T) {
	// The gate-count blowup must grow with the control count — the
	// structural reason the paper's reversible G' circuits are so large.
	prev := 0
	for ctls := 2; ctls <= 8; ctls++ {
		c := circuit.New(ctls+2, "scale")
		controls := make([]int, ctls)
		for i := range controls {
			controls[i] = i
		}
		c.MCX(controls, ctls)
		d := Circuit(c, LevelCX)
		if d.NumGates() <= prev {
			t.Fatalf("no growth at %d controls: %d gates", ctls, d.NumGates())
		}
		prev = d.NumGates()
	}
}

func TestIdentityCustomSkipped(t *testing.T) {
	c := circuit.New(2, "id")
	c.Add(circuit.Gate{Kind: circuit.Custom, Target: 0, Target2: -1,
		Controls: []circuit.Control{{Qubit: 1}}, Mat: mat2{{1, 0}, {0, 1}}})
	d := Circuit(c, LevelCX)
	if d.NumGates() != 0 {
		t.Errorf("identity custom gate emitted %d gates", d.NumGates())
	}
}

func TestWithProfileSumsToOutput(t *testing.T) {
	c := circuit.New(6, "netlist")
	c.H(0).CCX(0, 1, 2).Swap(2, 3).CPhase(0.7, 3, 4).T(5)
	c.Add(circuit.Gate{Kind: circuit.X, Target: 5, Target2: -1,
		Controls: []circuit.Control{{Qubit: 0}, {Qubit: 1}, {Qubit: 2}, {Qubit: 3}}})
	for _, level := range []Level{LevelToffoli, LevelCX} {
		out, profile := WithProfile(c, level)
		if len(profile) != len(c.Gates) {
			t.Fatalf("%v: profile length %d, want %d", level, len(profile), len(c.Gates))
		}
		sum := 0
		for i, f := range profile {
			if f < 0 {
				t.Errorf("%v: negative profile entry %d at gate %d", level, f, i)
			}
			sum += f
		}
		if sum != len(out.Gates) {
			t.Errorf("%v: profile sums to %d, output has %d gates", level, sum, len(out.Gates))
		}
		// WithProfile must emit exactly what Circuit emits.
		plain := Circuit(c, level)
		if r := ec.Check(out, plain, ec.Options{Strategy: ec.Proportional}); !r.Equivalent() {
			t.Errorf("%v: WithProfile output differs from Circuit output: %v", level, r.Verdict)
		}
	}
}
