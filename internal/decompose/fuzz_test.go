package decompose

import (
	"math"
	"math/cmplx"
	"testing"

	"qcec/internal/circuit"
)

// FuzzZYZ round-trips the Euler decomposition: any finite angle quadruple
// defines a unitary via reconstructZYZ; ZYZ of that unitary must reproduce
// it exactly (up to numerical tolerance), for any branch of the angles.
func FuzzZYZ(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(0.1, math.Pi/2, -0.7, 3.0)
	f.Add(-math.Pi, math.Pi, 2*math.Pi, -2*math.Pi)
	f.Add(1e-300, -1e-300, 1e8, -1e8)
	f.Fuzz(func(t *testing.T, alpha, beta, gamma, delta float64) {
		for _, a := range []float64{alpha, beta, gamma, delta} {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				t.Skip("non-finite angle")
			}
			// Huge angles lose the sub-ulp phase precision the round-trip
			// tolerance assumes; the decomposer never produces them.
			if math.Abs(a) > 1e9 {
				t.Skip("angle out of range")
			}
		}
		u := reconstructZYZ(alpha, beta, gamma, delta)
		if err := checkUnitary2(u); err != nil {
			t.Fatalf("reconstructZYZ(%g,%g,%g,%g) not unitary: %v", alpha, beta, gamma, delta, err)
		}
		a2, b2, g2, d2 := ZYZ(u)
		v := reconstructZYZ(a2, b2, g2, d2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if cmplx.Abs(u[i][j]-v[i][j]) > 1e-6 {
					t.Fatalf("round trip diverged at [%d][%d]: %v vs %v\nangles in  (%g,%g,%g,%g)\nangles out (%g,%g,%g,%g)",
						i, j, u[i][j], v[i][j], alpha, beta, gamma, delta, a2, b2, g2, d2)
				}
			}
		}
	})
}

// FuzzDecompose drives the lowering pipeline with byte-derived circuits:
// whatever multi-controlled mess comes in, the output must validate and
// respect the target gate set's control bounds — and the decomposer must
// not panic.
func FuzzDecompose(f *testing.F) {
	f.Add([]byte{4, 0, 1, 2, 3})
	f.Add([]byte{6, 5, 5, 5, 5, 5, 5, 5})
	f.Add([]byte{3, 4, 2, 0, 4, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 64 {
			t.Skip()
		}
		n := 2 + int(data[0]%5) // 2..6 qubits
		c := circuit.New(n, "fuzz")
		for _, b := range data[1:] {
			q := int(b>>3) % n
			switch b % 6 {
			case 0:
				c.H(q)
			case 1:
				c.T(q)
			case 2:
				c.RZ(float64(b)/17, q)
			case 3:
				c.CX(q, (q+1)%n)
			case 4:
				// Multi-controlled X over all other wires: the worst case
				// for the ancilla-free recursion.
				var controls []int
				for i := 0; i < n; i++ {
					if i != q {
						controls = append(controls, i)
					}
				}
				c.MCX(controls, q)
			case 5:
				controls := []int{(q + 1) % n}
				if c2 := (q + 2) % n; c2 != q && c2 != controls[0] {
					controls = append(controls, c2)
				}
				c.MCX(controls, q)
			}
		}
		if err := c.Validate(); err != nil {
			t.Skip("fuzz builder produced an invalid circuit")
		}
		for _, level := range []Level{LevelToffoli, LevelCX} {
			out := Circuit(c, level)
			if err := out.Validate(); err != nil {
				t.Fatalf("%v output invalid: %v", level, err)
			}
			max := 2
			if level == LevelCX {
				max = 1
			}
			for i, g := range out.Gates {
				if len(g.Controls) > max {
					t.Fatalf("%v gate %d (%s) has %d controls, max %d",
						level, i, g, len(g.Controls), max)
				}
			}
		}
	})
}
