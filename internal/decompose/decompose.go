package decompose

import (
	"fmt"

	"qcec/internal/circuit"
)

// Level selects the target gate set.
type Level int

// Target gate sets.
const (
	// LevelToffoli allows single-qubit gates with at most one positive
	// control plus Toffoli (X with two positive controls).
	LevelToffoli Level = iota
	// LevelCX allows arbitrary single-qubit gates plus CX only.
	LevelCX
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelToffoli:
		return "toffoli"
	case LevelCX:
		return "cx"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Circuit lowers every gate of c to the requested level.  The result is
// strictly equivalent (no global-phase slack) to the input.
func Circuit(c *circuit.Circuit, level Level) *circuit.Circuit {
	out, _ := WithProfile(c, level)
	return out
}

// WithProfile lowers c like Circuit and additionally returns the native
// per-gate cost profile: profile[i] is the number of output gates source
// gate i emitted.  The profile's total equals the output gate count, making
// it directly usable as ec.Options.CostProfile (or as a ComposeProfiles
// operand when further stages follow).
func WithProfile(c *circuit.Circuit, level Level) (*circuit.Circuit, []int) {
	d := &decomposer{n: c.N, level: level, out: circuit.New(c.N, c.Name+"_"+level.String())}
	profile := make([]int, len(c.Gates))
	for i, g := range c.Gates {
		before := len(d.out.Gates)
		d.gate(g)
		profile[i] = len(d.out.Gates) - before
	}
	return d.out, profile
}

type decomposer struct {
	n     int
	level Level
	out   *circuit.Circuit
}

func (d *decomposer) emit(g circuit.Gate) { d.out.Add(g) }

// gate dispatches one input gate.
func (d *decomposer) gate(g circuit.Gate) {
	// Negative controls are conjugated away with X gates first; everything
	// below deals with positive controls only.
	var negs []int
	pos := make([]int, 0, len(g.Controls))
	for _, ctl := range g.Controls {
		if ctl.Neg {
			negs = append(negs, ctl.Qubit)
		}
		pos = append(pos, ctl.Qubit)
	}
	for _, q := range negs {
		d.emit(circuit.Gate{Kind: circuit.X, Target: q, Target2: -1})
	}
	if g.Kind == circuit.SWAP {
		d.swap(pos, g.Target, g.Target2)
	} else {
		d.controlled(g, pos)
	}
	for _, q := range negs {
		d.emit(circuit.Gate{Kind: circuit.X, Target: q, Target2: -1})
	}
}

// swap lowers a (multi-)controlled SWAP: SWAP(a,b) = CX(b,a)·CX(a,b)·CX(b,a)
// and a controlled SWAP adds the controls to the middle factor only
// (CSWAP(c;a,b) = CX(b,a)·CCX(c,a;b)·CX(b,a)).
func (d *decomposer) swap(controls []int, a, b int) {
	cxBA := circuit.Gate{Kind: circuit.X, Target: a, Target2: -1, Controls: []circuit.Control{{Qubit: b}}}
	d.controlled(cxBA, []int{b})
	mid := circuit.Gate{Kind: circuit.X, Target: b, Target2: -1}
	midControls := append(append([]int{}, controls...), a)
	d.controlled(mid, midControls)
	d.controlled(cxBA, []int{b})
}

// controlled lowers a single-qubit operation with the given positive
// controls.
func (d *decomposer) controlled(g circuit.Gate, controls []int) {
	base := circuit.Gate{Kind: g.Kind, Target: g.Target, Target2: -1, Params: g.Params, Mat: g.Mat, Label: g.Label}
	switch len(controls) {
	case 0:
		d.emit(base)
		return
	case 1:
		if g.Kind == circuit.X {
			d.emit(withControls(base, controls))
			return
		}
		if d.level == LevelToffoli {
			d.emit(withControls(base, controls))
			return
		}
		d.controlledU(controls[0], g.Target, gateMatrix(base))
		return
	case 2:
		if g.Kind == circuit.X {
			if d.level == LevelToffoli {
				d.emit(withControls(base, controls))
			} else {
				d.toffoliCliffordT(controls[0], controls[1], g.Target)
			}
			return
		}
	}
	if g.Kind == circuit.X {
		d.mcx(controls, g.Target)
		return
	}
	d.mcu(controls, g.Target, gateMatrix(base))
}

func withControls(g circuit.Gate, controls []int) circuit.Gate {
	cs := make([]circuit.Control, len(controls))
	for i, q := range controls {
		cs[i] = circuit.Control{Qubit: q}
	}
	g.Controls = cs
	return g
}

func gateMatrix(g circuit.Gate) mat2 { return g.Matrix() }

func custom(u mat2, target int, label string) circuit.Gate {
	return circuit.Gate{Kind: circuit.Custom, Target: target, Target2: -1, Mat: u, Label: label}
}

// controlledU emits the textbook CX-based realization of a controlled
// arbitrary single-qubit operation (Barenco et al. Lemma 5.1):
// with U = e^{ia} Rz(b) Ry(g) Rz(d), C = Rz((d-b)/2), B = Ry(-g/2)
// Rz(-(d+b)/2), A = Rz(b) Ry(g/2), the product A·X·B·X·C equals e^{-ia}U,
// so CU = P(a)_ctl · [A]_t · CX · [B]_t · CX · [C]_t.
func (d *decomposer) controlledU(ctl, target int, u mat2) {
	if isIdentity2(u, 1e-14) {
		return
	}
	alpha, beta, gamma, delta := ZYZ(u)
	oneQ := func(kind circuit.Kind, theta float64) {
		if theta != 0 {
			d.emit(circuit.Gate{Kind: kind, Target: target, Target2: -1, Params: []float64{theta}})
		}
	}
	cx := func() {
		d.emit(circuit.Gate{Kind: circuit.X, Target: target, Target2: -1, Controls: []circuit.Control{{Qubit: ctl}}})
	}
	// C
	oneQ(circuit.RZ, (delta-beta)/2)
	cx()
	// B
	oneQ(circuit.RZ, -(delta+beta)/2)
	oneQ(circuit.RY, -gamma/2)
	cx()
	// A
	oneQ(circuit.RY, gamma/2)
	oneQ(circuit.RZ, beta)
	// Phase on the control.
	if alpha != 0 {
		d.emit(circuit.Gate{Kind: circuit.P, Target: ctl, Target2: -1, Params: []float64{alpha}})
	}
}

// toffoliCliffordT emits the standard 15-gate Clifford+T Toffoli network.
func (d *decomposer) toffoliCliffordT(c1, c2, t int) {
	g := func(kind circuit.Kind, q int) {
		d.emit(circuit.Gate{Kind: kind, Target: q, Target2: -1})
	}
	cx := func(c, t int) {
		d.emit(circuit.Gate{Kind: circuit.X, Target: t, Target2: -1, Controls: []circuit.Control{{Qubit: c}}})
	}
	g(circuit.H, t)
	cx(c2, t)
	g(circuit.Tdg, t)
	cx(c1, t)
	g(circuit.T, t)
	cx(c2, t)
	g(circuit.Tdg, t)
	cx(c1, t)
	g(circuit.T, c2)
	g(circuit.T, t)
	g(circuit.H, t)
	cx(c1, c2)
	g(circuit.T, c1)
	g(circuit.Tdg, c2)
	cx(c1, c2)
}

// freeWire returns a wire not in use by the given operands, or -1.
func freeWire(n int, used map[int]bool) int {
	for q := 0; q < n; q++ {
		if !used[q] {
			return q
		}
	}
	return -1
}

// mcx lowers a multi-controlled NOT (3+ controls).  With a borrowed free
// wire it uses the Barenco split (quadratic cost); on a full register it
// falls back to the ancilla-free square-root recursion (polynomially larger
// cost, matching the severe gate-count blowups of the paper's reversible
// benchmarks).
func (d *decomposer) mcx(controls []int, target int) {
	used := make(map[int]bool, len(controls)+1)
	for _, q := range controls {
		used[q] = true
	}
	used[target] = true
	if a := freeWire(d.n, used); a >= 0 {
		d.mcxSplit(controls, target, a)
		return
	}
	d.mcu(controls, target, mat2{{0, 1}, {1, 0}})
}

// mcxSplit implements Barenco et al. Lemma 7.3: with a borrowed wire a,
// C^c X(C; t) = B·A·B·A where A = C^m X(C1; a) and
// B = C^{c-m+1} X(C2 ∪ {a}; t), C1 ∪ C2 = C, m = ceil(c/2).
// The borrowed wire's state is restored, so it need not be clean.
func (d *decomposer) mcxSplit(controls []int, target, a int) {
	c := len(controls)
	m := (c + 1) / 2
	c1 := controls[:m]
	c2 := append(append([]int{}, controls[m:]...), a)
	emitHalf := func(cs []int, t int) {
		if len(cs) <= 2 {
			d.controlled(circuit.Gate{Kind: circuit.X, Target: t, Target2: -1}, cs)
			return
		}
		d.mcx(cs, t)
	}
	emitHalf(c1, a)      // A
	emitHalf(c2, target) // B
	emitHalf(c1, a)      // A
	emitHalf(c2, target) // B
}

// mcu lowers a multi-controlled single-qubit operation with the ancilla-free
// square-root recursion (Barenco et al. Lemma 7.5):
// C^c U = C_{qc}(V) · C^{c-1}X(qc) · C_{qc}(V†) · C^{c-1}X(qc) · C^{c-1}(V)
// with V² = U.
func (d *decomposer) mcu(controls []int, target int, u mat2) {
	switch len(controls) {
	case 0:
		if d.level == LevelCX {
			d.emitCustomSingle(u, target)
		} else {
			d.emit(custom(u, target, "u"))
		}
		return
	case 1:
		if d.level == LevelToffoli {
			d.emit(withControls(custom(u, target, "cu"), controls))
		} else {
			d.controlledU(controls[0], target, u)
		}
		return
	}
	v := Sqrt2(u)
	last := controls[len(controls)-1]
	rest := controls[:len(controls)-1]
	d.mcu([]int{last}, target, v)
	d.controlled(circuit.Gate{Kind: circuit.X, Target: last, Target2: -1}, rest)
	d.mcu([]int{last}, target, dagger2(v))
	d.controlled(circuit.Gate{Kind: circuit.X, Target: last, Target2: -1}, rest)
	d.mcu(rest, target, v)
}

// emitCustomSingle emits an uncontrolled arbitrary single-qubit operation as
// rotation gates (so that LevelCX output contains only named gates).
func (d *decomposer) emitCustomSingle(u mat2, target int) {
	if isIdentity2(u, 1e-14) {
		return
	}
	alpha, beta, gamma, delta := ZYZ(u)
	if delta != 0 {
		d.emit(circuit.Gate{Kind: circuit.RZ, Target: target, Target2: -1, Params: []float64{delta}})
	}
	if gamma != 0 {
		d.emit(circuit.Gate{Kind: circuit.RY, Target: target, Target2: -1, Params: []float64{gamma}})
	}
	if beta != 0 {
		d.emit(circuit.Gate{Kind: circuit.RZ, Target: target, Target2: -1, Params: []float64{beta}})
	}
	if alpha != 0 {
		// Global phase must be preserved exactly for strict equivalence:
		// realize e^{ia} as P(a)·X·P(a)·X.
		d.emit(circuit.Gate{Kind: circuit.P, Target: target, Target2: -1, Params: []float64{alpha}})
		d.emit(circuit.Gate{Kind: circuit.X, Target: target, Target2: -1})
		d.emit(circuit.Gate{Kind: circuit.P, Target: target, Target2: -1, Params: []float64{alpha}})
		d.emit(circuit.Gate{Kind: circuit.X, Target: target, Target2: -1})
	}
}
