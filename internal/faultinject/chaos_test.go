package faultinject_test

// The chaos suite: every fault class, injected into the real checking flow
// on known-equivalent and known-inequivalent pairs, must degrade into a
// typed report — never crash the process, and never flip a verdict (an
// equivalent pair must not become NotEquivalent, an inequivalent pair must
// not become Equivalent).

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/cn"
	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/errinject"
	"qcec/internal/faultinject"
	"qcec/internal/resource"
)

// chaosPair is one instance of the suite with its fault-free verdict.
type chaosPair struct {
	name     string
	g1, g2   *circuit.Circuit
	baseline core.Verdict
}

func ghz(n int) *circuit.Circuit {
	c := circuit.New(n, "ghz")
	c.H(0)
	for i := 1; i < n; i++ {
		c.CX(i-1, i)
	}
	return c
}

// chaosPairs builds the seed suite: an equivalent pair and one buggy pair
// per injectable error class, each with its fault-free baseline verdict.
func chaosPairs(t *testing.T) []chaosPair {
	t.Helper()
	base := ghz(4)
	pairs := []chaosPair{{name: "equivalent", g1: base, g2: base.Clone()}}
	for _, kind := range errinject.AllKinds() {
		buggy, _, err := errinject.Inject(base, kind, 7)
		if err != nil {
			continue // class not applicable to this circuit
		}
		pairs = append(pairs, chaosPair{name: kind.String(), g1: base, g2: buggy})
	}
	for i := range pairs {
		rep := core.Check(pairs[i].g1, pairs[i].g2, core.Options{SkipEC: true})
		if rep.Err != nil {
			t.Fatalf("fault-free baseline %s failed: %v", pairs[i].name, rep.Err)
		}
		pairs[i].baseline = rep.Verdict
	}
	return pairs
}

// assertNoFlip fails the test when a faulted run contradicts the fault-free
// baseline.  Degrading to ProbablyEquivalent is always acceptable.
func assertNoFlip(t *testing.T, name string, baseline, got core.Verdict) {
	t.Helper()
	if got == baseline || got == core.ProbablyEquivalent {
		return
	}
	t.Fatalf("%s: verdict flipped under fault: baseline %v, got %v", name, baseline, got)
}

func TestChaosPanicAtApply(t *testing.T) {
	pairs := chaosPairs(t)
	deactivate := faultinject.Activate(faultinject.Spec{Class: faultinject.PanicAtApply, N: 3})
	defer deactivate()

	for _, p := range pairs {
		rep := core.Check(p.g1, p.g2, core.Options{SkipEC: true})
		assertNoFlip(t, p.name, p.baseline, rep.Verdict)
		if rep.Err == nil {
			t.Fatalf("%s: injected panic produced no Report.Err", p.name)
		}
		var perr *resource.PanicError
		if !errors.As(rep.Err, &perr) {
			t.Fatalf("%s: Err = %v (%T), want *resource.PanicError", p.name, rep.Err, rep.Err)
		}
		var inj *faultinject.InjectedPanic
		if !errors.As(rep.Err, &inj) {
			t.Fatalf("%s: panic cause is not the injected fault: %v", p.name, rep.Err)
		}
		if rep.Exhaustive {
			t.Fatalf("%s: crashed run still claims exhaustive coverage", p.name)
		}
	}
}

func TestChaosNonFiniteWeight(t *testing.T) {
	pairs := chaosPairs(t)
	deactivate := faultinject.Activate(faultinject.Spec{Class: faultinject.NonFiniteWeight, N: 2})
	defer deactivate()

	for _, p := range pairs {
		rep := core.Check(p.g1, p.g2, core.Options{SkipEC: true})
		assertNoFlip(t, p.name, p.baseline, rep.Verdict)
		if rep.Err == nil {
			t.Fatalf("%s: non-finite weight produced no Report.Err", p.name)
		}
		var nfe *cn.NonFiniteError
		if !errors.As(rep.Err, &nfe) {
			t.Fatalf("%s: Err = %v, want to unwrap to *cn.NonFiniteError", p.name, rep.Err)
		}
	}
}

func TestChaosSlowApply(t *testing.T) {
	pairs := chaosPairs(t)
	deactivate := faultinject.Activate(faultinject.Spec{
		Class:  faultinject.SlowApply,
		N:      1,
		Repeat: true,
		Delay:  5 * time.Millisecond,
	})
	defer deactivate()

	for _, p := range pairs {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		rep := core.Check(p.g1, p.g2, core.Options{SkipEC: true, Context: ctx})
		cancel()
		assertNoFlip(t, p.name, p.baseline, rep.Verdict)
		// A slowdown is not a fault in the checker: the run must end as a
		// clean cancellation (or finish legitimately), never an error.
		if rep.Err != nil {
			t.Fatalf("%s: slow prover surfaced an error: %v", p.name, rep.Err)
		}
		if rep.Verdict == core.ProbablyEquivalent && !rep.Cancelled {
			t.Fatalf("%s: inconclusive without Cancelled under pure slowdown", p.name)
		}
	}
}

func TestChaosPanicParallelWorkers(t *testing.T) {
	pairs := chaosPairs(t)
	deactivate := faultinject.Activate(faultinject.Spec{Class: faultinject.PanicAtApply, N: 4})
	defer deactivate()

	for _, p := range pairs {
		before := runtime.NumGoroutine()
		rep := core.Check(p.g1, p.g2, core.Options{SkipEC: true, Parallel: 2})
		assertNoFlip(t, p.name, p.baseline, rep.Verdict)
		if rep.Verdict != core.NotEquivalent {
			// Unless a healthy worker found a definitive counterexample, a
			// dead worker must surface and void any exhaustive claim.
			if rep.Err == nil {
				t.Fatalf("%s: worker crash produced no Report.Err", p.name)
			}
			if rep.Exhaustive {
				t.Fatalf("%s: crashed parallel run claims exhaustive coverage", p.name)
			}
		}
		// All workers must have exited (wg.Wait), crash or not.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before+2 {
			t.Fatalf("%s: goroutines before=%d after=%d — worker leak", p.name, before, n)
		}
	}
}

func TestChaosPanicInEC(t *testing.T) {
	g1 := ghz(4)
	g2 := g1.Clone()
	deactivate := faultinject.Activate(faultinject.Spec{Class: faultinject.PanicAtApply, N: 2})
	defer deactivate()

	res := ec.Check(g1, g2, ec.Options{})
	if res.Verdict != ec.TimedOut {
		t.Fatalf("verdict = %v, want %v", res.Verdict, ec.TimedOut)
	}
	if res.Cause != ec.CauseError {
		t.Fatalf("cause = %v, want %v", res.Cause, ec.CauseError)
	}
	var inj *faultinject.InjectedPanic
	if !errors.As(res.Err, &inj) {
		t.Fatalf("Err = %v, want to unwrap to *faultinject.InjectedPanic", res.Err)
	}
}

func TestChaosAllocSpikeTripsWatchdog(t *testing.T) {
	// Deep circuit so the spikes have many firing points.
	g1 := circuit.New(4, "deep")
	for r := 0; r < 8; r++ {
		g1.H(0)
		for i := 1; i < 4; i++ {
			g1.CX(i-1, i)
		}
	}
	g2 := g1.Clone()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// The options surface has no interval knob; build the watchdog
	// externally with a fast sampler and hand it to ec through the context.
	w, ctx := resource.Start(context.Background(), resource.Config{
		HardLimit: ms.HeapAlloc + 24<<20,
		Interval:  2 * time.Millisecond,
	})
	defer w.Stop()

	deactivate := faultinject.Activate(faultinject.Spec{
		Class:  faultinject.AllocSpike,
		N:      1,
		Repeat: true,
		Bytes:  8 << 20,
		Delay:  5 * time.Millisecond,
	})
	defer deactivate()

	res := ec.Check(g1, g2, ec.Options{Context: ctx})
	if res.Verdict != ec.TimedOut {
		t.Fatalf("verdict = %v, want %v (clean degradation)", res.Verdict, ec.TimedOut)
	}
	if res.Cause != ec.CauseMemLimit {
		t.Fatalf("cause = %v, want %v", res.Cause, ec.CauseMemLimit)
	}
	var mle *resource.MemoryLimitError
	if !errors.As(res.Err, &mle) {
		t.Fatalf("Err = %v (%T), want *resource.MemoryLimitError", res.Err, res.Err)
	}
	if st := w.Stats(); st.HardTrips == 0 {
		t.Fatalf("watchdog recorded no hard trip: %+v", st)
	}
}

// TestChaosOnceEnablesRetry: a Once fault fires exactly one time process-
// wide, so a retried (degraded) run succeeds — the scenario behind the
// portfolio's RetryCrashed option.
func TestChaosOnceEnablesRetry(t *testing.T) {
	g1 := ghz(3)
	g2 := g1.Clone()
	deactivate := faultinject.Activate(faultinject.Spec{
		Class: faultinject.PanicAtApply,
		N:     1,
		Once:  true,
	})
	defer deactivate()

	first := core.Check(g1, g2, core.Options{SkipEC: true})
	if first.Err == nil {
		t.Fatal("first run did not observe the injected fault")
	}
	second := core.Check(g1, g2, core.Options{SkipEC: true})
	if second.Err != nil {
		t.Fatalf("second run still faulted: %v", second.Err)
	}
	if second.Verdict != core.Equivalent {
		t.Fatalf("second run verdict = %v, want %v", second.Verdict, core.Equivalent)
	}
}
