// Package faultinject is a deterministic fault-injection layer for chaos
// testing the checking runtime.  It drives the no-op-by-default hooks in
// internal/dd (FaultInjector, observed before every gate application) and
// internal/sim (SetFaultHook, observed once per circuit gate), turning them
// into reproducible faults: a panic at the Nth application, a non-finite
// edge weight, a slowdown, or an allocation spike.
//
// The layer exists to prove a negative: that no injected fault — however
// placed — can crash the checker or flip a verdict.  The chaos suite in this
// package activates each fault class against known-equivalent and
// known-inequivalent pairs and asserts that every run degrades into a typed,
// inconclusive-at-worst report.
//
// Activation is process-global (the hooks are globals by design, so faults
// reach packages created deep inside the flow under test) and therefore not
// safe for parallel tests; Activate returns a deactivate func that restores
// the no-op state.
package faultinject

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"qcec/internal/dd"
	"qcec/internal/sim"
)

// Class selects the kind of fault to inject.
type Class int

const (
	// PanicAtApply panics with an *InjectedPanic at the Nth DD gate
	// application — the crash-mid-checker scenario.
	PanicAtApply Class = iota
	// NonFiniteWeight interns a NaN weight into the package's cn.Table at
	// the Nth application, triggering the table's non-finite guard — the
	// numerical-corruption scenario.
	NonFiniteWeight
	// SlowApply sleeps Spec.Delay at every circuit gate the simulator
	// applies — the hung-prover scenario (exercises cancellation paths).
	SlowApply
	// AllocSpike retains Spec.Bytes of ballast at the Nth application (and
	// every Nth with Repeat), optionally sleeping Spec.Delay to give a
	// memory watchdog time to sample — the resource-blow-up scenario.
	AllocSpike
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case PanicAtApply:
		return "panic-at-apply"
	case NonFiniteWeight:
		return "non-finite-weight"
	case SlowApply:
		return "slow-apply"
	case AllocSpike:
		return "alloc-spike"
	default:
		return "class(?)"
	}
}

// Spec describes one deterministic fault.
type Spec struct {
	// Class is the fault kind.
	Class Class
	// N is the 1-based gate-application ordinal the fault fires at
	// (default 1).  With Repeat, it fires at every multiple of N.
	N uint64
	// Repeat fires the fault at every Nth application instead of only the
	// first one reached.
	Repeat bool
	// Once limits the fault to a single firing process-wide, across all
	// packages — the "crashes once, succeeds on retry" scenario.
	Once bool
	// Delay is the sleep per firing (SlowApply; optional for AllocSpike).
	Delay time.Duration
	// Bytes is the ballast size per AllocSpike firing.
	Bytes int
}

// InjectedPanic is the panic value (and error) raised by PanicAtApply, so
// chaos tests can assert the recovered failure is the injected one.
type InjectedPanic struct {
	Spec Spec
}

// Error implements error.
func (e *InjectedPanic) Error() string {
	return "faultinject: injected panic (" + e.Spec.Class.String() + ")"
}

// injector implements dd.FaultInjector for the DD-level classes and serves
// as the sim hook's state for SlowApply.
type injector struct {
	spec  Spec
	fired atomic.Bool // used by Once

	mu      sync.Mutex
	ballast [][]byte
}

// hits reports whether the nth application (1-based, per package) fires.
func (j *injector) hits(nth uint64) bool {
	n := j.spec.N
	if n == 0 {
		n = 1
	}
	var due bool
	if j.spec.Repeat {
		due = nth%n == 0
	} else {
		due = nth == n
	}
	if !due {
		return false
	}
	if j.spec.Once {
		// First CAS wins; later due points are no-ops.
		return j.fired.CompareAndSwap(false, true)
	}
	return true
}

// BeforeApply implements dd.FaultInjector.
func (j *injector) BeforeApply(p *dd.Package, nth uint64) {
	if !j.hits(nth) {
		return
	}
	switch j.spec.Class {
	case PanicAtApply:
		panic(&InjectedPanic{Spec: j.spec})
	case NonFiniteWeight:
		// Interning a NaN trips cn.Table's non-finite guard, which panics
		// with a typed *cn.NonFiniteError exactly as real numerical
		// corruption would.
		p.CN.Lookup(complex(math.NaN(), 0))
	case AllocSpike:
		size := j.spec.Bytes
		if size <= 0 {
			size = 16 << 20
		}
		b := make([]byte, size)
		for i := 0; i < len(b); i += 4096 {
			b[i] = 1 // touch every page so the spike is resident
		}
		j.mu.Lock()
		j.ballast = append(j.ballast, b)
		j.mu.Unlock()
		if j.spec.Delay > 0 {
			time.Sleep(j.spec.Delay)
		}
	}
}

// simHook returns the per-circuit-gate hook for SlowApply.
func (j *injector) simHook() func(gatesApplied int64) {
	return func(gatesApplied int64) {
		if !j.hits(uint64(gatesApplied)) {
			return
		}
		if j.spec.Delay > 0 {
			time.Sleep(j.spec.Delay)
		}
	}
}

// release drops any retained ballast.
func (j *injector) release() {
	j.mu.Lock()
	j.ballast = nil
	j.mu.Unlock()
}

// Activate installs the fault process-wide and returns a func that removes
// it (and releases any ballast).  Faults reach every dd.Package created
// after the call (DD classes) or every simulator step (SlowApply).  Not safe
// for concurrent Activate calls; chaos tests serialize on it.
func Activate(spec Spec) (deactivate func()) {
	j := &injector{spec: spec}
	if spec.Class == SlowApply {
		sim.SetFaultHook(j.simHook())
		return func() {
			sim.SetFaultHook(nil)
			j.release()
		}
	}
	dd.SetDefaultFaultInjector(j)
	return func() {
		dd.SetDefaultFaultInjector(nil)
		j.release()
	}
}
