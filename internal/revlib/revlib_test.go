package revlib

import (
	"strings"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

const sample = `
# toy benchmark
.version 2.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.constants ---
.garbage ---
.begin
t1 a
t2 a b
t3 a b c
f3 a b c
v a b
v+ a b
.end
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	c := f.Circuit
	if c.N != 3 || c.NumGates() != 6 {
		t.Fatalf("n=%d gates=%d", c.N, c.NumGates())
	}
	if c.Gates[0].Kind != circuit.X || len(c.Gates[0].Controls) != 0 {
		t.Errorf("t1 parsed as %v", c.Gates[0])
	}
	if len(c.Gates[2].Controls) != 2 || c.Gates[2].Target != 2 {
		t.Errorf("t3 parsed as %v", c.Gates[2])
	}
	if c.Gates[3].Kind != circuit.SWAP || len(c.Gates[3].Controls) != 1 {
		t.Errorf("f3 parsed as %v", c.Gates[3])
	}
	if c.Gates[4].Kind != circuit.SX || c.Gates[5].Kind != circuit.SXdg {
		t.Errorf("v/v+ parsed as %v %v", c.Gates[4], c.Gates[5])
	}
	if len(f.Variables) != 3 || f.Variables[1] != "b" {
		t.Errorf("variables = %v", f.Variables)
	}
}

func TestNegativeControls(t *testing.T) {
	f, err := Parse(strings.NewReader(`
.numvars 2
.variables a b
.begin
t2 -a b
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	g := f.Circuit.Gates[0]
	if !g.Controls[0].Neg {
		t.Errorf("negative control lost: %v", g)
	}
}

func TestDefaultVariableNames(t *testing.T) {
	f, err := Parse(strings.NewReader(`
.numvars 2
.begin
t2 x0 x1
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Circuit.NumGates() != 1 {
		t.Fatal("gate not parsed with default variable names")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".begin\nt1 a\n.end",                               // missing numvars
		".numvars 2\n.variables a a\n.begin\n.end",         // duplicate var
		".numvars 2\n.variables a b\nt1 a\n.begin\n.end",   // gate before begin
		".numvars 2\n.variables a b\n.begin\nt2 a\n.end",   // arity mismatch
		".numvars 2\n.variables a b\n.begin\nt1 q\n.end",   // unknown var
		".numvars 2\n.variables a b\n.begin\nt1 -a\n.end",  // negated target
		".numvars 2\n.variables a b\n.begin\ng2 a b\n.end", // unknown gate
		".numvars 2\n.variables a b c\n.begin\n.end",       // var count mismatch
		".numvars 0\n.begin\n.end",                         // invalid numvars
		".numvars 2\n.variables a b\n.begin\n.end\nt1 a",   // content after end
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c := circuit.New(4, "rt")
	c.X(0).CX(0, 1).CCX(0, 1, 2).MCX([]int{0, 1, 2}, 3)
	c.MCXNeg([]circuit.Control{{Qubit: 0, Neg: true}, {Qubit: 2}}, 1)
	c.Swap(0, 3).CSwap(1, 0, 2)
	c.Add(circuit.Gate{Kind: circuit.SX, Target: 2, Target2: -1, Controls: []circuit.Control{{Qubit: 0}}})
	src, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, src)
	}
	r := ec.Check(c, f.Circuit, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("round-trip not equivalent: %v\n%s", r.Verdict, src)
	}
}

func TestWriteUnsupportedKind(t *testing.T) {
	c := circuit.New(1, "h")
	c.H(0)
	if _, err := WriteString(c); err == nil {
		t.Error("H gate should not be representable in .real")
	}
}

func TestHeaderMetadata(t *testing.T) {
	f, err := Parse(strings.NewReader(`
.numvars 2
.variables a b
.inputs i0 i1
.outputs o0 o1
.constants -0
.garbage 1-
.begin
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Constants != "-0" || f.Garbage != "1-" {
		t.Errorf("constants/garbage = %q/%q", f.Constants, f.Garbage)
	}
	if len(f.Inputs) != 2 || len(f.Outputs) != 2 {
		t.Errorf("inputs/outputs = %v/%v", f.Inputs, f.Outputs)
	}
}
