package revlib

import (
	"strings"
	"testing"
)

// FuzzParse checks that the .real parser never panics and that accepted
// circuits validate.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		".numvars 2\n.variables a b\n.begin\nt2 a b\n.end\n",
		".numvars 3\n.begin\nt3 x0 x1 x2\nf2 x0 x1\nv x0 x1\nv+ x1 x0\n.end\n",
		".numvars 2\n.variables a b\n.begin\nt2 -a b\n.end\n",
		"# only a comment\n.numvars 1\n.begin\nt1 x0\n.end\n",
		".numvars 2\n.variables a b\n.constants -0\n.garbage 1-\n.begin\n.end\n",
		".numvars 2\nt1 a\n.begin\n.end",
		".version 2.0\n.numvars 0\n.begin\n.end",
		".numvars 2\n.variables a a\n.begin\n.end",
		".numvars 2\n.variables a b\n.begin\nt9 a b\n.end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if file.Circuit == nil {
			t.Fatal("nil circuit without error")
		}
		if err := file.Circuit.Validate(); err != nil {
			t.Fatalf("accepted circuit fails validation: %v", err)
		}
		// Accepted circuits must also re-emit and re-parse.
		out, err := WriteString(file.Circuit)
		if err != nil {
			t.Fatalf("accepted circuit not writable: %v", err)
		}
		if _, err := Parse(strings.NewReader(out)); err != nil {
			t.Fatalf("writer output does not re-parse: %v\n%s", err, out)
		}
	})
}
