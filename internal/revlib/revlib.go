// Package revlib reads and writes RevLib ".real" reversible-circuit
// netlists — the format of the paper's reversible benchmark class
// (urf4_187, hwb9_119, 5xp1_194, ...).
//
// Supported constructs: the .version/.numvars/.variables/.inputs/.outputs/
// .constants/.garbage header lines, Toffoli gates (t1..tN), Fredkin gates
// (f2..fN), controlled-V and V+ gates, and the common negative-control
// extension ("-a" fires on |0>).  Variable k of the header maps to qubit k.
package revlib

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"qcec/internal/circuit"
)

// File is a parsed .real netlist.
type File struct {
	Circuit   *circuit.Circuit
	Variables []string
	Inputs    []string
	Outputs   []string
	Constants string // per-line constant inputs ('-', '0' or '1')
	Garbage   string // per-line garbage outputs ('-' or '1')
}

// Parse reads a .real netlist.
func Parse(r io.Reader) (*File, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	f := &File{}
	var gates []struct {
		fields []string
		line   int
	}
	numvars := -1
	inBody := false
	ended := false
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fmt.Errorf("revlib: line %d: content after .end", lineNo)
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch strings.ToLower(fields[0]) {
			case ".version":
				// ignored
			case ".numvars":
				if len(fields) != 2 {
					return nil, fmt.Errorf("revlib: line %d: malformed .numvars", lineNo)
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("revlib: line %d: invalid .numvars %q", lineNo, fields[1])
				}
				numvars = n
			case ".variables":
				f.Variables = fields[1:]
			case ".inputs":
				f.Inputs = fields[1:]
			case ".outputs":
				f.Outputs = fields[1:]
			case ".constants":
				if len(fields) == 2 {
					f.Constants = fields[1]
				}
			case ".garbage":
				if len(fields) == 2 {
					f.Garbage = fields[1]
				}
			case ".begin":
				inBody = true
			case ".end":
				ended = true
			case ".inputbus", ".outputbus", ".state", ".module", ".define":
				return nil, fmt.Errorf("revlib: line %d: unsupported directive %s", lineNo, fields[0])
			default:
				// Unknown benign directives are skipped.
			}
			continue
		}
		if !inBody {
			return nil, fmt.Errorf("revlib: line %d: gate before .begin", lineNo)
		}
		gates = append(gates, struct {
			fields []string
			line   int
		}{strings.Fields(line), lineNo})
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if numvars < 0 {
		return nil, fmt.Errorf("revlib: missing .numvars")
	}
	if len(f.Variables) == 0 {
		for i := 0; i < numvars; i++ {
			f.Variables = append(f.Variables, fmt.Sprintf("x%d", i))
		}
	}
	if len(f.Variables) != numvars {
		return nil, fmt.Errorf("revlib: .numvars %d but %d variables", numvars, len(f.Variables))
	}
	index := make(map[string]int, numvars)
	for i, v := range f.Variables {
		if _, dup := index[v]; dup {
			return nil, fmt.Errorf("revlib: duplicate variable %q", v)
		}
		index[v] = i
	}

	c := circuit.New(numvars, "real")
	for _, g := range gates {
		if err := appendGate(c, index, g.fields, g.line); err != nil {
			return nil, err
		}
	}
	f.Circuit = c
	return f, nil
}

// ParseFile reads a .real netlist from disk.
func ParseFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := Parse(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.Circuit.Name = strings.TrimSuffix(path, ".real")
	return f, nil
}

func resolveOperand(index map[string]int, tok string, line int) (circuit.Control, error) {
	neg := false
	if strings.HasPrefix(tok, "-") {
		neg = true
		tok = tok[1:]
	}
	q, ok := index[tok]
	if !ok {
		return circuit.Control{}, fmt.Errorf("revlib: line %d: unknown variable %q", line, tok)
	}
	return circuit.Control{Qubit: q, Neg: neg}, nil
}

func appendGate(c *circuit.Circuit, index map[string]int, fields []string, line int) error {
	if len(fields) < 2 {
		return fmt.Errorf("revlib: line %d: malformed gate", line)
	}
	name := strings.ToLower(fields[0])
	ops := make([]circuit.Control, len(fields)-1)
	for i, tok := range fields[1:] {
		op, err := resolveOperand(index, tok, line)
		if err != nil {
			return err
		}
		ops[i] = op
	}
	switch {
	case strings.HasPrefix(name, "t"):
		size, err := gateSize(name[1:], len(ops), line)
		if err != nil {
			return err
		}
		tgt := ops[size-1]
		if tgt.Neg {
			return fmt.Errorf("revlib: line %d: negated target", line)
		}
		if err := c.TryAdd(circuit.Gate{Kind: circuit.X, Target: tgt.Qubit, Target2: -1, Controls: ops[:size-1]}); err != nil {
			return fmt.Errorf("revlib: line %d: %w", line, err)
		}
	case strings.HasPrefix(name, "f"):
		size, err := gateSize(name[1:], len(ops), line)
		if err != nil {
			return err
		}
		if size < 2 {
			return fmt.Errorf("revlib: line %d: Fredkin needs two targets", line)
		}
		a, b := ops[size-2], ops[size-1]
		if a.Neg || b.Neg {
			return fmt.Errorf("revlib: line %d: negated target", line)
		}
		if err := c.TryAdd(circuit.Gate{Kind: circuit.SWAP, Target: a.Qubit, Target2: b.Qubit, Controls: ops[:size-2]}); err != nil {
			return fmt.Errorf("revlib: line %d: %w", line, err)
		}
	case name == "v":
		tgt := ops[len(ops)-1]
		if tgt.Neg {
			return fmt.Errorf("revlib: line %d: negated target", line)
		}
		if err := c.TryAdd(circuit.Gate{Kind: circuit.SX, Target: tgt.Qubit, Target2: -1, Controls: ops[:len(ops)-1]}); err != nil {
			return fmt.Errorf("revlib: line %d: %w", line, err)
		}
	case name == "v+":
		tgt := ops[len(ops)-1]
		if tgt.Neg {
			return fmt.Errorf("revlib: line %d: negated target", line)
		}
		if err := c.TryAdd(circuit.Gate{Kind: circuit.SXdg, Target: tgt.Qubit, Target2: -1, Controls: ops[:len(ops)-1]}); err != nil {
			return fmt.Errorf("revlib: line %d: %w", line, err)
		}
	default:
		return fmt.Errorf("revlib: line %d: unsupported gate %q", line, name)
	}
	return nil
}

func gateSize(sizeStr string, operands, line int) (int, error) {
	if sizeStr == "" || sizeStr == "*" {
		return operands, nil
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil {
		return 0, fmt.Errorf("revlib: line %d: invalid gate size %q", line, sizeStr)
	}
	if size != operands {
		return 0, fmt.Errorf("revlib: line %d: gate declares %d operands but lists %d", line, size, operands)
	}
	return size, nil
}

// Write renders a circuit as a .real netlist.  Only X (Toffoli family),
// SWAP (Fredkin family) and SX/SXdg (V/V+) gates are representable.
func Write(w io.Writer, c *circuit.Circuit) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n.version 2.0\n.numvars %d\n", c.Name, c.N)
	b.WriteString(".variables")
	for i := 0; i < c.N; i++ {
		fmt.Fprintf(&b, " x%d", i)
	}
	b.WriteString("\n.begin\n")
	for i, g := range c.Gates {
		if err := writeGate(&b, g); err != nil {
			return fmt.Errorf("revlib: gate %d (%s): %w", i, g, err)
		}
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteString renders a circuit as a .real string.
func WriteString(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}

func writeGate(b *strings.Builder, g circuit.Gate) error {
	operand := func(ctl circuit.Control) string {
		if ctl.Neg {
			return fmt.Sprintf("-x%d", ctl.Qubit)
		}
		return fmt.Sprintf("x%d", ctl.Qubit)
	}
	switch g.Kind {
	case circuit.X:
		fmt.Fprintf(b, "t%d", len(g.Controls)+1)
		for _, ctl := range g.Controls {
			fmt.Fprintf(b, " %s", operand(ctl))
		}
		fmt.Fprintf(b, " x%d\n", g.Target)
	case circuit.SWAP:
		fmt.Fprintf(b, "f%d", len(g.Controls)+2)
		for _, ctl := range g.Controls {
			fmt.Fprintf(b, " %s", operand(ctl))
		}
		fmt.Fprintf(b, " x%d x%d\n", g.Target, g.Target2)
	case circuit.SX, circuit.SXdg:
		name := "v"
		if g.Kind == circuit.SXdg {
			name = "v+"
		}
		fmt.Fprintf(b, "%s", name)
		for _, ctl := range g.Controls {
			fmt.Fprintf(b, " %s", operand(ctl))
		}
		fmt.Fprintf(b, " x%d\n", g.Target)
	default:
		return fmt.Errorf("gate kind %v not representable in .real", g.Kind)
	}
	return nil
}
