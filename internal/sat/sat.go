// Package sat implements a small CDCL (conflict-driven clause learning)
// Boolean satisfiability solver: two-watched-literal propagation, first-UIP
// conflict analysis, activity-based branching with phase saving, and Luby
// restarts.
//
// It powers the SAT-based equivalence checking baseline of the reproduction
// (paper ref [17]): reversible-circuit miters are encoded into CNF and
// proven UNSAT (equivalent) or produce a satisfying assignment, i.e. a
// counterexample input.
package sat

import (
	"errors"
	"fmt"
)

// Lit is a literal: positive values denote variables, negative values their
// negations.  Variables are numbered from 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

// Status is a solver outcome.
type Status int

// Solver outcomes.
const (
	Unknown Status = iota
	Satisfiable
	Unsatisfiable
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Satisfiable:
		return "satisfiable"
	case Unsatisfiable:
		return "unsatisfiable"
	default:
		return "unknown"
	}
}

// Stats reports solver effort.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learned      int64
}

// Solver is a CDCL SAT solver.  Create with NewSolver, add clauses, call
// Solve.  Not safe for concurrent use.
type Solver struct {
	nVars   int
	clauses []*clause
	learnts []*clause

	// watches[litIndex] lists clauses watching that literal.
	watches [][]*clause

	assign   []lbool // per variable
	level    []int
	reason   []*clause
	trail    []Lit
	trailLim []int
	phase    []bool // saved phases

	activity []float64
	varInc   float64
	order    *varHeap

	propHead int
	ok       bool

	stats Stats

	// ConflictBudget aborts Solve with Unknown after this many conflicts
	// (0 = unlimited) — the timeout mechanism of the EC baseline.
	ConflictBudget int64

	// Cancel, when non-nil, is polled periodically during Solve (every
	// conflict and every few hundred decisions); returning true aborts the
	// search with Unknown/ErrCancelled.  The typical hook closes over a
	// context.Context: func() bool { return ctx.Err() != nil }.  This keeps
	// the solver context-free while letting the prover portfolio stop a
	// losing SAT check promptly.
	Cancel func() bool
}

// NewSolver creates a solver with no variables.
func NewSolver() *Solver {
	s := &Solver{ok: true, varInc: 1}
	s.order = &varHeap{solver: s}
	return s
}

// NewVar allocates a fresh variable and returns its index (1-based).
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.push(s.nVars)
	return s.nVars
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns solver effort counters.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) litIndex(l Lit) int {
	v := l.Var() - 1
	if l.Sign() {
		return 2 * v
	}
	return 2*v + 1
}

func (s *Solver) value(l Lit) lbool {
	a := s.assign[l.Var()-1]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() == (a == lTrue) {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause; it returns an error if a literal references an
// unallocated variable.  Adding an empty (or falsified unit) clause makes
// the instance trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) error {
	for _, l := range lits {
		if l == 0 || l.Var() > s.nVars {
			return fmt.Errorf("sat: invalid literal %d", l)
		}
	}
	if !s.ok {
		return nil
	}
	// Simplify: drop duplicate/false literals, detect tautologies.
	seen := make(map[Lit]bool, len(lits))
	var kept []Lit
	for _, l := range lits {
		switch {
		case seen[l]:
			continue
		case seen[l.Neg()]:
			return nil // tautology
		case s.value(l) == lTrue && s.level[l.Var()-1] == 0:
			return nil // already satisfied at root
		case s.value(l) == lFalse && s.level[l.Var()-1] == 0:
			continue // falsified at root: drop
		}
		seen[l] = true
		kept = append(kept, l)
	}
	switch len(kept) {
	case 0:
		s.ok = false
		return nil
	case 1:
		if s.value(kept[0]) == lFalse {
			s.ok = false
			return nil
		}
		if s.value(kept[0]) == lUndef {
			s.enqueue(kept[0], nil)
			if s.propagate() != nil {
				s.ok = false
			}
		}
		return nil
	}
	c := &clause{lits: kept}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

func (s *Solver) attach(c *clause) {
	w0 := s.litIndex(c.lits[0].Neg())
	w1 := s.litIndex(c.lits[1].Neg())
	s.watches[w0] = append(s.watches[w0], c)
	s.watches[w1] = append(s.watches[w1], c)
}

func (s *Solver) enqueue(l Lit, from *clause) {
	v := l.Var() - 1
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.propHead < len(s.trail) {
		l := s.trail[s.propHead]
		s.propHead++
		s.stats.Propagations++
		wi := s.litIndex(l)
		ws := s.watches[wi]
		s.watches[wi] = ws[:0:0] // reset; re-append the keepers
		kept := s.watches[wi]
		for ci := 0; ci < len(ws); ci++ {
			c := ws[ci]
			// Ensure the falsified literal is lits[1].
			if c.lits[0].Neg() == l {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					idx := s.litIndex(c.lits[1].Neg())
					s.watches[idx] = append(s.watches[idx], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, c)
			if s.value(c.lits[0]) == lFalse {
				// Conflict: restore remaining watches and bail.
				kept = append(kept, ws[ci+1:]...)
				s.watches[wi] = kept
				s.propHead = len(s.trail)
				return c
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[wi] = kept
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v-1] += s.varInc
	if s.activity[v-1] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learned := []Lit{0} // placeholder for the asserting literal
	seen := make([]bool, s.nVars)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1

	c := confl
	for {
		for _, q := range c.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if !seen[v-1] && s.level[v-1] > 0 {
				seen[v-1] = true
				s.bumpVar(v)
				if s.level[v-1] >= s.decisionLevel() {
					counter++
				} else {
					learned = append(learned, q)
				}
			}
		}
		// Find the next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()-1] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()-1] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()-1]
	}
	learned[0] = p.Neg()

	// Backtrack level: second-highest level in the learned clause.
	back := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()-1] > s.level[learned[maxI].Var()-1] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		back = s.level[learned[1].Var()-1]
	}
	return learned, back
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := s.trailLim[level]
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.phase[v-1] = s.assign[v-1] == lTrue
		s.assign[v-1] = lUndef
		s.reason[v-1] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.propHead = len(s.trail)
}

func (s *Solver) pickBranch() Lit {
	for {
		v := s.order.pop()
		if v == 0 {
			return 0
		}
		if s.assign[v-1] == lUndef {
			if s.phase[v-1] {
				return Lit(v)
			}
			return Lit(-v)
		}
	}
}

// luby returns the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// ErrBudget is returned by Solve when the conflict budget is exhausted.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// ErrCancelled is returned by Solve when the Cancel hook requested a stop.
var ErrCancelled = errors.New("sat: solve cancelled")

// Solve decides satisfiability.  On Satisfiable, Model returns the
// assignment.  With a ConflictBudget set it may return Unknown/ErrBudget.
func (s *Solver) Solve() (Status, error) {
	if !s.ok {
		return Unsatisfiable, nil
	}
	if c := s.propagate(); c != nil {
		s.ok = false
		return Unsatisfiable, nil
	}
	restart := int64(1)
	conflictsAtRestart := int64(0)
	limit := luby(restart) * 64
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsAtRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsatisfiable, nil
			}
			learned, back := s.analyze(confl)
			s.backtrackTo(back)
			if len(learned) == 1 {
				s.enqueue(learned[0], nil)
			} else {
				c := &clause{lits: learned, learned: true}
				s.learnts = append(s.learnts, c)
				s.stats.Learned++
				s.attach(c)
				s.enqueue(learned[0], c)
			}
			s.varInc /= 0.95
			if s.ConflictBudget > 0 && s.stats.Conflicts >= s.ConflictBudget {
				return Unknown, ErrBudget
			}
			if s.Cancel != nil && s.Cancel() {
				return Unknown, ErrCancelled
			}
			continue
		}
		if conflictsAtRestart >= limit {
			s.stats.Restarts++
			restart++
			conflictsAtRestart = 0
			limit = luby(restart) * 64
			s.backtrackTo(0)
			continue
		}
		l := s.pickBranch()
		if l == 0 {
			return Satisfiable, nil
		}
		// Conflict-free instances still need a cancellation point; every 256
		// decisions keeps the polling cost invisible.
		if s.stats.Decisions&0xFF == 0 && s.Cancel != nil && s.Cancel() {
			return Unknown, ErrCancelled
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// Model returns the satisfying assignment (index 0 = variable 1).  Only
// valid after Solve returned Satisfiable.
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars)
	for i, a := range s.assign {
		m[i] = a == lTrue
	}
	return m
}

// varHeap is a max-heap over variable activity with lazy deletion.
type varHeap struct {
	solver *Solver
	heap   []int
	pos    []int // pos[v-1] = index in heap, -1 if absent
}

func (h *varHeap) less(a, b int) bool {
	return h.solver.activity[a-1] > h.solver.activity[b-1]
}

func (h *varHeap) push(v int) {
	for len(h.pos) < v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v-1] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v-1] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() int {
	if len(h.heap) == 0 {
		return 0
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top-1] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

func (h *varHeap) update(v int) {
	if len(h.pos) >= v && h.pos[v-1] >= 0 {
		h.up(h.pos[v-1])
	}
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]-1] = i
	h.pos[h.heap[j]-1] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.heap[l], h.heap[best]) {
			best = l
		}
		if r < n && h.less(h.heap[r], h.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
