package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, s *Solver, lits ...Lit) {
	t.Helper()
	if err := s.AddClause(lits...); err != nil {
		t.Fatal(err)
	}
}

func TestTrivialSat(t *testing.T) {
	s := NewSolver()
	a := Lit(s.NewVar())
	mustAdd(t, s, a)
	st, err := s.Solve()
	if err != nil || st != Satisfiable {
		t.Fatalf("status %v err %v", st, err)
	}
	if !s.Model()[0] {
		t.Fatal("model does not satisfy unit clause")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := NewSolver()
	a := Lit(s.NewVar())
	mustAdd(t, s, a)
	mustAdd(t, s, a.Neg())
	st, _ := s.Solve()
	if st != Unsatisfiable {
		t.Fatalf("status %v", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewSolver()
	s.NewVar()
	mustAdd(t, s) // empty clause
	st, _ := s.Solve()
	if st != Unsatisfiable {
		t.Fatalf("status %v", st)
	}
}

func TestNoClausesSat(t *testing.T) {
	s := NewSolver()
	s.NewVar()
	s.NewVar()
	st, _ := s.Solve()
	if st != Satisfiable {
		t.Fatalf("status %v", st)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := NewSolver()
	a := Lit(s.NewVar())
	mustAdd(t, s, a, a.Neg())
	if s.NumClauses() != 0 {
		t.Fatal("tautology stored")
	}
	st, _ := s.Solve()
	if st != Satisfiable {
		t.Fatalf("status %v", st)
	}
}

func TestInvalidLiteral(t *testing.T) {
	s := NewSolver()
	if err := s.AddClause(Lit(3)); err == nil {
		t.Fatal("out-of-range literal accepted")
	}
	if err := s.AddClause(Lit(0)); err == nil {
		t.Fatal("zero literal accepted")
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x1 xor x2, x2 xor x3, x1 xor x3 with odd parity constraint is UNSAT:
	// encode x1^x2=1, x2^x3=1, x1^x3=1 (sum of three =1s over GF(2) is 1,
	// but LHS sums to 0) — classic small UNSAT.
	s := NewSolver()
	x := []Lit{0, Lit(s.NewVar()), Lit(s.NewVar()), Lit(s.NewVar())}
	xorTrue := func(a, b Lit) {
		mustAdd(t, s, a, b)
		mustAdd(t, s, a.Neg(), b.Neg())
	}
	xorTrue(x[1], x[2])
	xorTrue(x[2], x[3])
	xorTrue(x[1], x[3])
	st, _ := s.Solve()
	if st != Unsatisfiable {
		t.Fatalf("status %v", st)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — UNSAT, requires real conflict analysis.
	s := NewSolver()
	const pigeons, holes = 4, 3
	v := make([][]Lit, pigeons)
	for p := 0; p < pigeons; p++ {
		v[p] = make([]Lit, holes)
		for h := 0; h < holes; h++ {
			v[p][h] = Lit(s.NewVar())
		}
	}
	for p := 0; p < pigeons; p++ {
		mustAdd(t, s, v[p]...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				mustAdd(t, s, v[p1][h].Neg(), v[p2][h].Neg())
			}
		}
	}
	st, _ := s.Solve()
	if st != Unsatisfiable {
		t.Fatalf("PHP(4,3) judged %v", st)
	}
	if s.Stats().Conflicts == 0 {
		t.Error("PHP solved without conflicts — suspicious")
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable.
	s := NewSolver()
	const n, colors = 5, 3
	v := make([][]Lit, n)
	for i := 0; i < n; i++ {
		v[i] = make([]Lit, colors)
		for c := 0; c < colors; c++ {
			v[i][c] = Lit(s.NewVar())
		}
		mustAdd(t, s, v[i]...)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < colors; c++ {
			mustAdd(t, s, v[i][c].Neg(), v[j][c].Neg())
		}
	}
	st, _ := s.Solve()
	if st != Satisfiable {
		t.Fatalf("5-cycle 3-coloring judged %v", st)
	}
	// Verify the model.
	m := s.Model()
	color := func(i int) int {
		for c := 0; c < colors; c++ {
			if m[v[i][c].Var()-1] {
				return c
			}
		}
		return -1
	}
	for i := 0; i < n; i++ {
		if color(i) < 0 || color(i) == color((i+1)%n) {
			t.Fatalf("invalid coloring at vertex %d", i)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// PHP(7,6) is hard enough to exceed a 10-conflict budget.
	s := NewSolver()
	const pigeons, holes = 7, 6
	v := make([][]Lit, pigeons)
	for p := 0; p < pigeons; p++ {
		v[p] = make([]Lit, holes)
		for h := 0; h < holes; h++ {
			v[p][h] = Lit(s.NewVar())
		}
		mustAdd(t, s, v[p]...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				mustAdd(t, s, v[p1][h].Neg(), v[p2][h].Neg())
			}
		}
	}
	s.ConflictBudget = 10
	st, err := s.Solve()
	if st != Unknown || err != ErrBudget {
		t.Fatalf("status %v err %v, want Unknown/ErrBudget", st, err)
	}
}

// bruteForce decides a CNF by enumeration (oracle for the property test).
func bruteForce(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>(uint(l.Var())-1)&1 == 1
				if bit == l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Property: the solver agrees with brute force on random small 3-SAT
// instances, and SAT models actually satisfy every clause.
func TestQuickAgainstBruteForce(t *testing.T) {
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(6)
		nClauses := 5 + rng.Intn(25)
		var clauses [][]Lit
		s := NewSolver()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			var c []Lit
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(nVars)
				l := Lit(v)
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				c = append(c, l)
			}
			clauses = append(clauses, c)
			if err := s.AddClause(c...); err != nil {
				return false
			}
		}
		st, err := s.Solve()
		if err != nil {
			return false
		}
		want := bruteForce(nVars, clauses)
		if want != (st == Satisfiable) {
			return false
		}
		if st == Satisfiable {
			m := s.Model()
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if m[l.Var()-1] == l.Sign() {
						sat = true
					}
				}
				if !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	// Clauses at root level added after a Solve would complicate state;
	// this solver is single-shot, but re-solving the same instance must be
	// stable.
	s := NewSolver()
	a, b := Lit(s.NewVar()), Lit(s.NewVar())
	mustAdd(t, s, a, b)
	st1, _ := s.Solve()
	st2, _ := s.Solve()
	if st1 != Satisfiable || st2 != Satisfiable {
		t.Fatalf("re-solve changed status: %v then %v", st1, st2)
	}
}

func TestStatusString(t *testing.T) {
	for _, st := range []Status{Unknown, Satisfiable, Unsatisfiable} {
		if st.String() == "" {
			t.Error("empty status name")
		}
	}
}

func BenchmarkPigeonhole76(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		const pigeons, holes = 7, 6
		v := make([][]Lit, pigeons)
		for p := 0; p < pigeons; p++ {
			v[p] = make([]Lit, holes)
			for h := 0; h < holes; h++ {
				v[p][h] = Lit(s.NewVar())
			}
			s.AddClause(v[p]...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(v[p1][h].Neg(), v[p2][h].Neg())
				}
			}
		}
		if st, _ := s.Solve(); st != Unsatisfiable {
			b.Fatal("PHP(7,6) not UNSAT")
		}
	}
}
