// Package opt implements peephole circuit optimizations — the "optimization"
// stage of the design flow (paper refs [11], [12]).  Optimized circuits are
// one of the alternative realizations G' the paper's flow verifies, and a
// buggy optimizer is one of the error sources it detects.
//
// Passes:
//
//   - inverse-pair cancellation (H·H, CX·CX, T·T†, generally g·g⁻¹ on
//     identical qubits with nothing in between on those qubits),
//   - rotation fusion (adjacent same-axis rotations merge; angles that sum
//     to a multiple of the period vanish),
//   - Hadamard rewrites (H·X·H → Z, H·Z·H → X, H·S·H... is not Clifford-safe
//     and is left alone).
//
// All passes are applied to a fixpoint.
package opt

import (
	"math"

	"qcec/internal/circuit"
)

// Options selects the passes to run; the zero value enables everything.
type Options struct {
	DisableCancellation  bool
	DisableRotationMerge bool
	DisableHRewrites     bool
	DisableCommutation   bool
}

// Stats reports what the optimizer did.
type Stats struct {
	GatesBefore    int
	GatesAfter     int
	CancelledPairs int
	MergedRotants  int
	Rewrites       int
	Passes         int
}

// Optimize returns an optimized copy of the circuit together with
// statistics.  The result is strictly equivalent to the input.
func Optimize(c *circuit.Circuit, opts Options) (*circuit.Circuit, Stats) {
	stats := Stats{GatesBefore: c.NumGates()}
	gates := append([]circuit.Gate(nil), c.Gates...)
	for {
		stats.Passes++
		changed := false
		if !opts.DisableCancellation {
			var n int
			gates, n = cancelPass(c.N, gates)
			if n > 0 {
				stats.CancelledPairs += n
				changed = true
			}
		}
		if !opts.DisableRotationMerge {
			var n int
			gates, n = mergePass(c.N, gates)
			if n > 0 {
				stats.MergedRotants += n
				changed = true
			}
		}
		if !opts.DisableHRewrites {
			var n int
			gates, n = hRewritePass(c.N, gates)
			if n > 0 {
				stats.Rewrites += n
				changed = true
			}
		}
		if !opts.DisableCommutation {
			var n int
			gates, n = commuteCancelPass(gates)
			if n > 0 {
				stats.CancelledPairs += n
				changed = true
			}
		}
		if !changed || stats.Passes > 100 {
			break
		}
	}
	out := circuit.New(c.N, c.Name+"_opt")
	for _, g := range gates {
		out.Add(g)
	}
	stats.GatesAfter = out.NumGates()
	return out, stats
}

// sameQubits reports whether two gates act on exactly the same qubit set.
func sameQubits(a, b circuit.Gate) bool {
	qa, qb := a.Qubits(), b.Qubits()
	if len(qa) != len(qb) {
		return false
	}
	for i := range qa {
		if qa[i] != qb[i] {
			return false
		}
	}
	return true
}

// isInversePair reports whether b undoes a exactly.
func isInversePair(a, b circuit.Gate) bool {
	return b.Equal(a.Inverse())
}

// stacks tracks, per qubit, the indices of live output gates touching it;
// the top of each stack is the adjacent predecessor candidate.
type stacks struct {
	perQubit [][]int
}

func newStacks(n int) *stacks {
	return &stacks{perQubit: make([][]int, n)}
}

// top returns the common adjacent predecessor of the given qubits, or -1 if
// the most recent gate differs between them.
func (s *stacks) top(qs []int) int {
	cand := -1
	for i, q := range qs {
		st := s.perQubit[q]
		if len(st) == 0 {
			return -1
		}
		t := st[len(st)-1]
		if i == 0 {
			cand = t
		} else if t != cand {
			return -1
		}
	}
	return cand
}

func (s *stacks) push(qs []int, idx int) {
	for _, q := range qs {
		s.perQubit[q] = append(s.perQubit[q], idx)
	}
}

func (s *stacks) pop(qs []int) {
	for _, q := range qs {
		st := s.perQubit[q]
		s.perQubit[q] = st[:len(st)-1]
	}
}

// cancelPass removes adjacent inverse pairs in a single scan.
func cancelPass(n int, gates []circuit.Gate) ([]circuit.Gate, int) {
	out := make([]circuit.Gate, 0, len(gates))
	live := make([]bool, 0, len(gates))
	st := newStacks(n)
	cancelled := 0
	for _, g := range gates {
		qs := g.Qubits()
		if cand := st.top(qs); cand >= 0 && sameQubits(out[cand], g) && isInversePair(out[cand], g) {
			live[cand] = false
			st.pop(qs)
			cancelled++
			continue
		}
		out = append(out, g)
		live = append(live, true)
		st.push(qs, len(out)-1)
	}
	result := out[:0]
	for i, g := range out {
		if live[i] {
			result = append(result, g)
		}
	}
	return result, cancelled
}

// rotationPeriod returns the angle period after which the gate kind is the
// identity, or 0 for non-rotation kinds.
func rotationPeriod(k circuit.Kind) float64 {
	switch k {
	case circuit.RX, circuit.RY, circuit.RZ:
		return 4 * math.Pi
	case circuit.P:
		return 2 * math.Pi
	default:
		return 0
	}
}

// mergePass fuses adjacent same-kind rotations on identical qubits.
func mergePass(n int, gates []circuit.Gate) ([]circuit.Gate, int) {
	out := make([]circuit.Gate, 0, len(gates))
	live := make([]bool, 0, len(gates))
	st := newStacks(n)
	merged := 0
	const zeroTol = 1e-12
	for _, g := range gates {
		qs := g.Qubits()
		if rotationPeriod(g.Kind) > 0 {
			if cand := st.top(qs); cand >= 0 {
				prev := out[cand]
				if prev.Kind == g.Kind && sameQubits(prev, g) && prev.Target == g.Target &&
					controlsEqual(prev.Controls, g.Controls) {
					period := rotationPeriod(g.Kind)
					sum := math.Mod(prev.Params[0]+g.Params[0], period)
					merged++
					if math.Abs(sum) < zeroTol || math.Abs(math.Abs(sum)-period) < zeroTol {
						live[cand] = false
						st.pop(qs)
						continue
					}
					out[cand].Params = []float64{sum}
					continue
				}
			}
		}
		out = append(out, g)
		live = append(live, true)
		st.push(qs, len(out)-1)
	}
	result := out[:0]
	for i, g := range out {
		if live[i] {
			result = append(result, g)
		}
	}
	return result, merged
}

func controlsEqual(a, b []circuit.Control) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hRewritePass replaces uncontrolled H·X·H with Z and H·Z·H with X.
func hRewritePass(n int, gates []circuit.Gate) ([]circuit.Gate, int) {
	out := make([]circuit.Gate, 0, len(gates))
	st := newStacks(n)
	rewrites := 0
	isPlainH := func(g circuit.Gate) bool {
		return g.Kind == circuit.H && len(g.Controls) == 0
	}
	for _, g := range gates {
		qs := g.Qubits()
		if isPlainH(g) && len(out) >= 2 {
			if c1 := st.top(qs); c1 == len(out)-1 && c1 >= 1 {
				mid := out[c1]
				if (mid.Kind == circuit.X || mid.Kind == circuit.Z) &&
					len(mid.Controls) == 0 && mid.Target == g.Target {
					if c0 := c1 - 1; isPlainH(out[c0]) && out[c0].Target == g.Target {
						// Check H is truly adjacent to mid on this qubit.
						stq := st.perQubit[g.Target]
						if len(stq) >= 2 && stq[len(stq)-2] == c0 {
							newKind := circuit.Z
							if mid.Kind == circuit.Z {
								newKind = circuit.X
							}
							st.pop(qs) // mid
							st.pop(qs) // first H
							out = out[:c0]
							out = append(out, circuit.Gate{Kind: newKind, Target: g.Target, Target2: -1})
							st.push(qs, len(out)-1)
							rewrites++
							continue
						}
					}
				}
			}
		}
		out = append(out, g)
		st.push(qs, len(out)-1)
	}
	return out, rewrites
}
