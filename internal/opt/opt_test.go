package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

func verifyEquivalent(t *testing.T, before, after *circuit.Circuit) {
	t.Helper()
	r := ec.Check(before, after, ec.Options{Strategy: ec.Proportional})
	if r.Verdict != ec.Equivalent {
		t.Fatalf("optimization broke equivalence: %v", r.Verdict)
	}
}

func TestCancelAdjacentPairs(t *testing.T) {
	c := circuit.New(3, "pairs")
	c.H(0).H(0)             // cancels
	c.CX(0, 1).CX(0, 1)     // cancels
	c.T(2).Tdg(2)           // cancels
	c.S(1).X(0).Sdg(1)      // S...Sdg with X in between on another qubit: cancels
	c.Swap(0, 2).Swap(0, 2) // cancels
	out, stats := Optimize(c, Options{})
	if out.NumGates() != 1 || out.Gates[0].Kind != circuit.X {
		t.Fatalf("got %d gates: %v (stats %+v)", out.NumGates(), out, stats)
	}
	if stats.CancelledPairs != 5 {
		t.Errorf("CancelledPairs = %d", stats.CancelledPairs)
	}
	verifyEquivalent(t, c, out)
}

func TestNestedCancellation(t *testing.T) {
	// A B B' A' collapses completely via cascading cancellation.
	c := circuit.New(2, "nested")
	c.H(0).CX(0, 1).CX(0, 1).H(0)
	out, _ := Optimize(c, Options{})
	if out.NumGates() != 0 {
		t.Fatalf("nested pairs not fully cancelled: %v", out)
	}
}

func TestBlockerPreventsCancellation(t *testing.T) {
	// H X H on the same qubit: the X blocks the H pair (but the rewrite
	// pass turns the whole thing into Z).
	c := circuit.New(1, "blocked")
	c.H(0).X(0).H(0)
	out, _ := Optimize(c, Options{DisableHRewrites: true})
	if out.NumGates() != 3 {
		t.Fatalf("blocked pair wrongly cancelled: %v", out)
	}
	// A CX sharing a qubit blocks too.
	c2 := circuit.New(2, "blocked2")
	c2.H(0).CX(0, 1).H(0)
	out2, _ := Optimize(c2, Options{})
	if out2.NumGates() != 3 {
		t.Fatalf("CX-blocked pair wrongly cancelled: %v", out2)
	}
}

func TestRotationMerge(t *testing.T) {
	c := circuit.New(2, "rot")
	c.RZ(0.3, 0).RZ(0.4, 0)               // merge to 0.7
	c.RX(1.0, 1).RX(-1.0, 1)              // merge to 0 -> removed
	c.Phase(math.Pi, 0).Phase(math.Pi, 0) // 2pi -> removed
	out, stats := Optimize(c, Options{})
	if out.NumGates() != 1 {
		t.Fatalf("got %v (stats %+v)", out, stats)
	}
	if math.Abs(out.Gates[0].Params[0]-0.7) > 1e-12 {
		t.Errorf("merged angle = %g", out.Gates[0].Params[0])
	}
	verifyEquivalent(t, c, out)
}

func TestControlledRotationMerge(t *testing.T) {
	c := circuit.New(2, "crz")
	c.CPhase(0.2, 0, 1)
	c.CPhase(0.3, 0, 1)
	out, _ := Optimize(c, Options{})
	if out.NumGates() != 1 || math.Abs(out.Gates[0].Params[0]-0.5) > 1e-12 {
		t.Fatalf("controlled rotations not merged: %v", out)
	}
	verifyEquivalent(t, c, out)
}

func TestRotationsOnDifferentControlsNotMerged(t *testing.T) {
	c := circuit.New(3, "diff")
	c.CPhase(0.2, 0, 2)
	c.CPhase(0.3, 1, 2)
	out, _ := Optimize(c, Options{})
	if out.NumGates() != 2 {
		t.Fatalf("rotations with different controls merged: %v", out)
	}
}

func TestHRewrites(t *testing.T) {
	c := circuit.New(1, "hxh")
	c.H(0).X(0).H(0)
	out, stats := Optimize(c, Options{})
	if out.NumGates() != 1 || out.Gates[0].Kind != circuit.Z {
		t.Fatalf("HXH not rewritten to Z: %v", out)
	}
	if stats.Rewrites != 1 {
		t.Errorf("Rewrites = %d", stats.Rewrites)
	}
	verifyEquivalent(t, c, out)

	c2 := circuit.New(1, "hzh")
	c2.H(0).Z(0).H(0)
	out2, _ := Optimize(c2, Options{})
	if out2.NumGates() != 1 || out2.Gates[0].Kind != circuit.X {
		t.Fatalf("HZH not rewritten to X: %v", out2)
	}
	verifyEquivalent(t, c2, out2)
}

func TestHRewriteRequiresAdjacency(t *testing.T) {
	c := circuit.New(2, "nonadj")
	c.H(0).X(0).CX(0, 1).H(0) // CX between X and final H
	out, _ := Optimize(c, Options{DisableCancellation: true, DisableRotationMerge: true})
	if out.NumGates() != 4 {
		t.Fatalf("non-adjacent HXH wrongly rewritten: %v", out)
	}
}

func TestCascadeAcrossPasses(t *testing.T) {
	// HXH -> Z, then Z·Z cancels: needs the fixpoint loop.
	c := circuit.New(1, "cascade")
	c.Z(0).H(0).X(0).H(0)
	out, stats := Optimize(c, Options{})
	if out.NumGates() != 0 {
		t.Fatalf("cascade failed: %v (stats %+v)", out, stats)
	}
}

func TestDisabledPasses(t *testing.T) {
	c := circuit.New(1, "off")
	c.H(0).H(0).RZ(0.1, 0).RZ(0.2, 0)
	out, _ := Optimize(c, Options{DisableCancellation: true, DisableRotationMerge: true, DisableHRewrites: true, DisableCommutation: true})
	if out.NumGates() != 4 {
		t.Fatalf("disabled optimizer changed the circuit: %v", out)
	}
}

func TestStats(t *testing.T) {
	c := circuit.New(1, "stats")
	c.H(0).H(0)
	out, stats := Optimize(c, Options{})
	if stats.GatesBefore != 2 || stats.GatesAfter != 0 || out.NumGates() != 0 {
		t.Fatalf("stats wrong: %+v", stats)
	}
	if stats.Passes < 1 {
		t.Error("no passes recorded")
	}
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "rnd")
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.Z(rng.Intn(n))
		case 3:
			c.T(rng.Intn(n))
		case 4:
			c.Tdg(rng.Intn(n))
		case 5:
			c.RZ(rng.Float64()*2-1, rng.Intn(n))
		case 6:
			a := rng.Intn(n)
			c.CX(a, (a+1+rng.Intn(n-1))%n)
		case 7:
			c.S(rng.Intn(n))
		}
	}
	return c
}

// Property: optimization always preserves strict equivalence.
func TestQuickOptimizePreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := randomCircuit(rng, n, 40)
		out, _ := Optimize(c, Options{})
		if out.Validate() != nil {
			return false
		}
		r := ec.Check(c, out, ec.Options{Strategy: ec.Proportional})
		return r.Verdict == ec.Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: circuit followed by its inverse optimizes to (near) nothing for
// involution-free gate sets, and at minimum never grows.
func TestQuickNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 3, 30)
		out, _ := Optimize(c, Options{})
		return out.NumGates() <= c.NumGates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInverseCircuitCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng, 3, 15)
	full := c.Clone()
	full.Append(c.Inverse())
	out, _ := Optimize(full, Options{})
	if out.NumGates() != 0 {
		t.Fatalf("G·G⁻¹ did not collapse: %d gates remain", out.NumGates())
	}
}

func TestCommutationCancellation(t *testing.T) {
	// CX·Z(ctl)·CX: the CX pair cancels through the diagonal on its control.
	c := circuit.New(2, "cxzcx")
	c.CX(0, 1).Z(0).CX(0, 1)
	out, _ := Optimize(c, Options{})
	if out.NumGates() != 1 || out.Gates[0].Kind != circuit.Z {
		t.Fatalf("CX·Z·CX not reduced: %v", out)
	}
	verifyEquivalent(t, c, out)

	// CX·X(tgt)·CX also cancels (X-axis on target commutes).
	c2 := circuit.New(2, "cxxcx")
	c2.CX(0, 1).X(1).CX(0, 1)
	out2, _ := Optimize(c2, Options{})
	if out2.NumGates() != 1 || out2.Gates[0].Kind != circuit.X {
		t.Fatalf("CX·X·CX not reduced: %v", out2)
	}
	verifyEquivalent(t, c2, out2)

	// CX·T(tgt)·CX must NOT cancel (T on target does not commute).
	c3 := circuit.New(2, "cxtcx")
	c3.CX(0, 1).T(1).CX(0, 1)
	out3, _ := Optimize(c3, Options{})
	if out3.NumGates() != 3 {
		t.Fatalf("CX·T(tgt)·CX wrongly reduced: %v", out3)
	}
	verifyEquivalent(t, c3, out3)
}

func TestCommutationThroughCXChains(t *testing.T) {
	// Shared-control CXs commute: CX(0,1)·CX(0,2)·CX(0,1) -> CX(0,2).
	c := circuit.New(3, "sharedctl")
	c.CX(0, 1).CX(0, 2).CX(0, 1)
	out, _ := Optimize(c, Options{})
	if out.NumGates() != 1 {
		t.Fatalf("shared-control chain not reduced: %v", out)
	}
	verifyEquivalent(t, c, out)

	// Target-meets-control does not commute: CX(0,1)·CX(1,2)·CX(0,1) stays.
	c2 := circuit.New(3, "tc")
	c2.CX(0, 1).CX(1, 2).CX(0, 1)
	out2, _ := Optimize(c2, Options{})
	if out2.NumGates() != 3 {
		t.Fatalf("non-commuting chain wrongly reduced: %v", out2)
	}
	verifyEquivalent(t, c2, out2)
}

func TestCommutationDiagonalPhases(t *testing.T) {
	// S · CZ · T · Sdg: the S/Sdg pair cancels through the diagonals.
	c := circuit.New(2, "diag")
	c.S(0)
	c.CZ(0, 1)
	c.T(0)
	c.Sdg(0)
	out, _ := Optimize(c, Options{})
	if out.NumGates() != 2 {
		t.Fatalf("diagonal commutation failed: %v", out)
	}
	verifyEquivalent(t, c, out)
}

func TestCommutationDisabled(t *testing.T) {
	c := circuit.New(2, "off")
	c.CX(0, 1).Z(0).CX(0, 1)
	out, _ := Optimize(c, Options{DisableCommutation: true})
	if out.NumGates() != 3 {
		t.Fatalf("commutation ran despite being disabled: %v", out)
	}
}

// Property: commutation-aware optimization preserves equivalence on random
// Clifford+T circuits.
func TestQuickCommutationPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := randomCircuit(rng, n, 50)
		out, _ := Optimize(c, Options{})
		r := ec.Check(c, out, ec.Options{Strategy: ec.Proportional})
		return r.Verdict == ec.Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
