package opt

import "qcec/internal/circuit"

// Commutation-aware cancellation: an inverse pair separated by gates that
// commute with it still cancels (e.g. the CX pair in CX·Z(ctl)·CX).  This is
// the optimization class that plain peephole matching misses and that makes
// real optimizers strong — and, when buggy, a prime source of the errors the
// paper's flow detects.

// isDiagonalKind reports whether the gate's single-qubit operation is
// diagonal in the computational basis (controlled versions remain diagonal).
func isDiagonalKind(k circuit.Kind) bool {
	switch k {
	case circuit.Z, circuit.S, circuit.Sdg, circuit.T, circuit.Tdg, circuit.RZ, circuit.P, circuit.I:
		return true
	}
	return false
}

// isXAxisKind reports whether the operation is an X-axis rotation (commutes
// with X conjugation and with being the target of a CX).
func isXAxisKind(k circuit.Kind) bool {
	switch k {
	case circuit.X, circuit.SX, circuit.SXdg, circuit.RX, circuit.I:
		return true
	}
	return false
}

// isPlainCX reports whether g is an uncontrolled-beyond-one CX.
func isPlainCX(g circuit.Gate) bool {
	return g.Kind == circuit.X && len(g.Controls) == 1 && !g.Controls[0].Neg
}

// qubitsDisjoint reports whether the gates share no qubit.
func qubitsDisjoint(a, b circuit.Gate) bool {
	bq := map[int]bool{}
	for _, q := range b.Qubits() {
		bq[q] = true
	}
	for _, q := range a.Qubits() {
		if bq[q] {
			return false
		}
	}
	return true
}

// commutes reports (conservatively) whether two gates commute.  False
// negatives only cost optimization opportunities, never correctness.
func commutes(a, b circuit.Gate) bool {
	if qubitsDisjoint(a, b) {
		return true
	}
	if a.Kind == circuit.SWAP || b.Kind == circuit.SWAP {
		return false
	}
	// Diagonal gates commute with each other regardless of overlap.
	if isDiagonalKind(a.Kind) && isDiagonalKind(b.Kind) {
		return true
	}
	// Same-axis single-qubit rotations on the same wire commute.
	if len(a.Controls) == 0 && len(b.Controls) == 0 && a.Target == b.Target &&
		isXAxisKind(a.Kind) && isXAxisKind(b.Kind) {
		return true
	}
	if isPlainCX(a) && isPlainCX(b) {
		ac, at := a.Controls[0].Qubit, a.Target
		bc, bt := b.Controls[0].Qubit, b.Target
		// CXs commute unless one's target is the other's control.
		return at != bc && ac != bt
	}
	// CX vs single-qubit gate.
	cxVs1q := func(cx, g circuit.Gate) (bool, bool) {
		if !isPlainCX(cx) || len(g.Controls) != 0 {
			return false, false
		}
		if g.Target == cx.Controls[0].Qubit {
			return true, isDiagonalKind(g.Kind)
		}
		if g.Target == cx.Target {
			return true, isXAxisKind(g.Kind)
		}
		return false, false
	}
	if applies, ok := cxVs1q(a, b); applies {
		return ok
	}
	if applies, ok := cxVs1q(b, a); applies {
		return ok
	}
	// Diagonal controlled gate vs single-qubit diagonal on any of its wires.
	if isDiagonalKind(a.Kind) && isDiagonalKind(b.Kind) {
		return true
	}
	return false
}

// commuteWindow bounds how far cancellation looks back through commuting
// gates (keeps the pass O(m·K)).
const commuteWindow = 24

// commuteCancelPass cancels inverse pairs separated by commuting gates.
func commuteCancelPass(gates []circuit.Gate) ([]circuit.Gate, int) {
	live := make([]bool, len(gates))
	for i := range live {
		live[i] = true
	}
	cancelled := 0
	for i := range gates {
		if !live[i] {
			continue
		}
		g := gates[i]
		steps := 0
		for j := i - 1; j >= 0 && steps < commuteWindow; j-- {
			if !live[j] {
				continue
			}
			steps++
			h := gates[j]
			if sameQubits(h, g) && isInversePair(h, g) {
				live[i], live[j] = false, false
				cancelled++
				break
			}
			if !commutes(g, h) {
				break
			}
		}
	}
	if cancelled == 0 {
		return gates, 0
	}
	out := gates[:0]
	for i, g := range gates {
		if live[i] {
			out = append(out, g)
		}
	}
	return out, cancelled
}
