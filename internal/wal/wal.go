// Package wal implements the append-only record codec under qcecd's durable
// job journal (internal/server/journal.go).
//
// The format is deliberately minimal: a journal is a flat sequence of
// CRC-framed records, each
//
//	offset  size  field
//	0       4     payload length, little-endian uint32
//	4       4     CRC-32C (Castagnoli) of the payload, little-endian
//	8       n     payload bytes (opaque to this package)
//
// with no file header and no record types — the journal layer owns the
// payload encoding.  What this package does own is the crash contract:
//
//   - Appends are atomic-or-detectable.  A record only "exists" once every
//     byte of its frame is on disk; a crash mid-append leaves a torn tail
//     (short header, short payload, or a CRC mismatch) that Scan detects
//     and treats as end-of-journal, never as data.
//   - Replay stops cleanly at the last valid record.  Scan never panics on
//     arbitrary bytes, never allocates more than MaxRecord for a corrupt
//     length field, and reports the byte offset of the end of the last
//     valid record so the journal can truncate the torn tail and resume
//     appending in place.
//
// A flipped byte in the middle of the file is indistinguishable from a torn
// tail by design: CRC framing localizes corruption to "everything from the
// damaged record on", and the journal's records are ordered transitions, so
// replaying a prefix is always safe while skipping a damaged record and
// continuing would not be.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// headerSize is the fixed per-record framing overhead.
const headerSize = 8

// MaxRecord bounds a single record's payload.  Decoding rejects larger
// length prefixes as corruption instead of allocating unboundedly; appends
// beyond it fail with ErrRecordTooLarge.  16 MiB comfortably covers the
// daemon's largest journaled payload (a request body is capped at 4 MiB).
const MaxRecord = 16 << 20

// ErrRecordTooLarge is returned by Append for a payload over MaxRecord.
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecord")

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord writes one framed record to w and returns the number of
// frame bytes written.  The caller owns durability (fsync) and exclusion
// (one appender per journal).
func AppendRecord(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxRecord {
		return 0, ErrRecordTooLarge
	}
	frame := EncodeRecord(nil, payload)
	return w.Write(frame)
}

// EncodeRecord appends the framed encoding of payload to dst and returns
// the extended slice.
func EncodeRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Scanner iterates over the records of a journal stream, stopping cleanly
// at the first sign of damage.  Use it like bufio.Scanner:
//
//	sc := wal.NewScanner(f)
//	for sc.Scan() {
//	    replay(sc.Bytes())
//	}
//	if sc.Torn() { truncate the file at sc.Offset() }
//
// Err reports genuine read failures (I/O errors); a torn or corrupt tail is
// NOT an error — it is the expected shape of a crash — and surfaces through
// Torn and TornReason instead.
type Scanner struct {
	r      *bufio.Reader
	buf    []byte
	off    int64 // end offset of the last valid record
	torn   bool
	reason string
	err    error
	done   bool
}

// NewScanner returns a Scanner reading from r (typically an *os.File
// positioned at the start of the journal).
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReaderSize(r, 1<<16)}
}

// Scan advances to the next valid record, returning false at end of input,
// at a torn/corrupt tail, or on a read error.
func (s *Scanner) Scan() bool {
	if s.done {
		return false
	}
	var hdr [headerSize]byte
	n, err := io.ReadFull(s.r, hdr[:])
	switch {
	case err == io.EOF:
		s.done = true // clean end: the previous record was the last
		return false
	case err == io.ErrUnexpectedEOF:
		s.stopTorn(fmt.Sprintf("short header (%d of %d bytes)", n, headerSize))
		return false
	case err != nil:
		s.done, s.err = true, err
		return false
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecord {
		s.stopTorn(fmt.Sprintf("length %d exceeds MaxRecord", length))
		return false
	}
	if cap(s.buf) < int(length) {
		s.buf = make([]byte, length)
	}
	s.buf = s.buf[:length]
	if n, err := io.ReadFull(s.r, s.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			s.stopTorn(fmt.Sprintf("short payload (%d of %d bytes)", n, length))
		} else {
			s.done, s.err = true, err
		}
		return false
	}
	if got := crc32.Checksum(s.buf, castagnoli); got != want {
		s.stopTorn(fmt.Sprintf("crc mismatch (got %08x, want %08x)", got, want))
		return false
	}
	s.off += headerSize + int64(length)
	return true
}

func (s *Scanner) stopTorn(reason string) {
	s.done, s.torn, s.reason = true, true, reason
}

// Bytes returns the current record's payload.  The slice is reused by the
// next Scan; callers that keep it must copy.
func (s *Scanner) Bytes() []byte { return s.buf }

// Offset returns the byte offset just past the last valid record — the
// length a damaged journal should be truncated to before appending resumes.
func (s *Scanner) Offset() int64 { return s.off }

// Torn reports that scanning stopped at a damaged tail rather than a clean
// end of input.
func (s *Scanner) Torn() bool { return s.torn }

// TornReason describes the damage that stopped the scan ("" when !Torn()).
func (s *Scanner) TornReason() string { return s.reason }

// Err returns the first genuine read error, if any.  Torn tails are not
// errors.
func (s *Scanner) Err() error { return s.err }
