package wal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode feeds arbitrary bytes — plus mutations of well-formed
// journals — through the scanner and asserts the crash contract: never
// panic, never read past a damaged frame, always report a truncation offset
// that lies on a valid record boundary so replay can resume in place.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeAll([][]byte{[]byte("accepted"), []byte("finished")}))
	// Torn tails of a two-record journal.
	two := encodeAll([][]byte{[]byte(`{"type":"accepted","job":"j1"}`), []byte(`{"type":"finished","job":"j1"}`)})
	f.Add(two[:len(two)-1])
	f.Add(two[:len(two)-9])
	f.Add(two[:5])
	// A huge length prefix with no payload behind it.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(bytes.NewReader(data))
		var n int
		for sc.Scan() {
			n++
			if n > len(data) { // each record costs >= headerSize bytes
				t.Fatalf("scanner yielded %d records from %d bytes", n, len(data))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("in-memory scan returned a read error: %v", err)
		}
		off := sc.Offset()
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d outside input of %d bytes", off, len(data))
		}
		// Replaying the valid prefix must reproduce exactly the same records
		// with no torn tail: Offset is a clean truncation point.
		sc2 := NewScanner(bytes.NewReader(data[:off]))
		var n2 int
		for sc2.Scan() {
			n2++
		}
		if n2 != n || sc2.Torn() {
			t.Fatalf("prefix replay: %d records (want %d), torn %v", n2, n, sc2.Torn())
		}
		// Appending a fresh record after truncation must always be readable.
		resumed := EncodeRecord(append([]byte(nil), data[:off]...), []byte("resumed"))
		sc3 := NewScanner(bytes.NewReader(resumed))
		var last []byte
		var n3 int
		for sc3.Scan() {
			n3++
			last = append(last[:0], sc3.Bytes()...)
		}
		if n3 != n+1 || !bytes.Equal(last, []byte("resumed")) {
			t.Fatalf("append after truncation lost the new record (%d records)", n3)
		}
	})
}
