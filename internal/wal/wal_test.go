package wal

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// encodeAll frames each payload in order and returns the concatenation.
func encodeAll(payloads [][]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = EncodeRecord(out, p)
	}
	return out
}

// scanAll decodes every valid record, returning copies.
func scanAll(t *testing.T, data []byte) (recs [][]byte, sc *Scanner) {
	t.Helper()
	sc = NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		recs = append(recs, append([]byte(nil), sc.Bytes()...))
	}
	if sc.Err() != nil {
		t.Fatalf("Scan error: %v", sc.Err())
	}
	return recs, sc
}

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("accepted"),
		{},
		[]byte(`{"type":"finished","job":"j00000001"}`),
		bytes.Repeat([]byte{0xAB}, 100_000),
	}
	data := encodeAll(payloads)
	recs, sc := scanAll(t, data)
	if len(recs) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(recs[i], p) {
			t.Errorf("record %d: got %d bytes, want %d", i, len(recs[i]), len(p))
		}
	}
	if sc.Torn() {
		t.Errorf("clean stream reported torn: %s", sc.TornReason())
	}
	if sc.Offset() != int64(len(data)) {
		t.Errorf("offset = %d, want %d", sc.Offset(), len(data))
	}
}

// TestTornTailVariants: every way a crash can shear the last record must
// stop the scan cleanly at the previous record's boundary.
func TestTornTailVariants(t *testing.T) {
	payloads := [][]byte{[]byte("first"), []byte("second record body")}
	clean := encodeAll(payloads)
	cleanFirst := encodeAll(payloads[:1])

	cases := []struct {
		name string
		data []byte
	}{
		{"short header", clean[:len(cleanFirst)+3]},
		{"short payload", clean[:len(clean)-5]},
		{"zero-byte tail is not torn", clean}, // control handled below
	}
	for _, tc := range cases[:2] {
		t.Run(tc.name, func(t *testing.T) {
			recs, sc := scanAll(t, tc.data)
			if len(recs) != 1 || !bytes.Equal(recs[0], payloads[0]) {
				t.Fatalf("recovered %d records, want exactly the first", len(recs))
			}
			if !sc.Torn() {
				t.Errorf("damage not reported as torn")
			}
			if sc.Offset() != int64(len(cleanFirst)) {
				t.Errorf("truncation offset = %d, want %d", sc.Offset(), len(cleanFirst))
			}
		})
	}

	t.Run("flipped crc byte", func(t *testing.T) {
		data := append([]byte(nil), clean...)
		data[len(cleanFirst)+4] ^= 0xFF // second record's CRC field
		recs, sc := scanAll(t, data)
		if len(recs) != 1 {
			t.Fatalf("recovered %d records, want 1", len(recs))
		}
		if !sc.Torn() || sc.TornReason() == "" {
			t.Errorf("flipped CRC not reported as torn (reason %q)", sc.TornReason())
		}
	})

	t.Run("flipped payload byte", func(t *testing.T) {
		data := append([]byte(nil), clean...)
		data[len(data)-1] ^= 0x01
		recs, sc := scanAll(t, data)
		if len(recs) != 1 || !sc.Torn() {
			t.Fatalf("payload corruption: recovered %d records, torn %v", len(recs), sc.Torn())
		}
	})

	t.Run("oversized length prefix", func(t *testing.T) {
		data := append([]byte(nil), cleanFirst...)
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], MaxRecord+1)
		data = append(data, hdr[:]...)
		recs, sc := scanAll(t, data)
		if len(recs) != 1 || !sc.Torn() {
			t.Fatalf("oversized length: recovered %d records, torn %v", len(recs), sc.Torn())
		}
		if sc.Offset() != int64(len(cleanFirst)) {
			t.Errorf("offset = %d, want %d", sc.Offset(), len(cleanFirst))
		}
	})
}

func TestAppendAfterTruncation(t *testing.T) {
	// The journal's crash protocol: scan, truncate at Offset, append more.
	data := encodeAll([][]byte{[]byte("one"), []byte("two")})
	torn := append(append([]byte(nil), data...), 0x01, 0x02, 0x03) // garbage tail
	_, sc := scanAll(t, torn)
	if !sc.Torn() {
		t.Fatal("garbage tail not detected")
	}
	resumed := append([]byte(nil), torn[:sc.Offset()]...)
	resumed = EncodeRecord(resumed, []byte("three"))
	recs, sc2 := scanAll(t, resumed)
	if len(recs) != 3 || sc2.Torn() {
		t.Fatalf("after truncate+append: %d records, torn %v", len(recs), sc2.Torn())
	}
	if !bytes.Equal(recs[2], []byte("three")) {
		t.Errorf("appended record = %q", recs[2])
	}
}

func TestAppendRecordTooLarge(t *testing.T) {
	if _, err := AppendRecord(io.Discard, make([]byte, MaxRecord+1)); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestEmptyStream(t *testing.T) {
	recs, sc := scanAll(t, nil)
	if len(recs) != 0 || sc.Torn() || sc.Offset() != 0 {
		t.Fatalf("empty stream: %d records, torn %v, offset %d", len(recs), sc.Torn(), sc.Offset())
	}
}
