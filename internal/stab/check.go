package stab

import (
	"context"
	"math/bits"
	"time"

	"qcec/internal/circuit"
)

// Verdict is the outcome of a tableau equivalence check.  The tableau
// tracks conjugation, which is blind to scalar factors, so the positive
// verdict is intrinsically up-to-global-phase; callers needing the strict
// phase convention resolve the residual scalar separately (internal/ec
// anchors it with a single basis-state simulation).
type Verdict int

// Possible verdicts.
const (
	// EquivalentUpToPhase: the miter fixes all 2n generators, so the two
	// circuits are equal up to a global scalar — a complete proof in the
	// up-to-phase convention.
	EquivalentUpToPhase Verdict = iota
	// NotEquivalent: some generator maps to a different Pauli, so the
	// circuits differ by more than a scalar — definitive in both phase
	// conventions.
	NotEquivalent
	// Aborted: the context was cancelled or the deadline passed mid-check.
	Aborted
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case EquivalentUpToPhase:
		return "equivalent up to phase"
	case NotEquivalent:
		return "not equivalent"
	case Aborted:
		return "aborted"
	default:
		return "verdict(?)"
	}
}

// Result reports the outcome of a tableau check.
type Result struct {
	Verdict      Verdict
	GatesApplied int
	// Counterexample is a basis state on which the two circuits produce
	// measurably different outputs, when the mismatch shape admits one (a
	// purely diagonal discrepancy has none — every basis state agrees up to
	// phase, exactly as for the DD checker's probe).
	Counterexample *uint64
	// Mismatches counts the generators whose image missed their target.
	Mismatches int
}

// pollEvery bounds how many gates are applied between context polls: rows
// are cheap (a few machine words each), so a coarse poll interval keeps the
// cancellation latency in the microseconds without measurable overhead.
const pollEvery = 128

// Check decides whether the Clifford circuits lowered to ops1 and ops2 (on
// n qubits) are equivalent up to global phase, by conjugating the 2n Pauli
// generators through the miter W = G⁻¹·P⁻¹·G' (P the declared output
// relabeling, identity when outputPerm is nil) and testing that every image
// returns to the plain generator it started as.  W = scalar·I is exactly
// the condition G' = scalar·P·G.
//
// This orientation — G' first, the un-relabeling, then G inverted — is what
// makes the counterexample derivation sound: a basis state |x> satisfies
// W|x> ∝ |x> iff P⁻¹·G'|x> ∝ G|x>, so a Z-generator image that no basis
// state can be an eigenvector of certifies a concrete distinguishing input
// (see zCounterexample).
//
// The check honors the portfolio's cooperative-cancellation contract: ctx
// is polled between gates (a watchdog hard-limit cancellation arrives the
// same way), and a non-zero deadline is enforced on the same cadence.
func Check(ctx context.Context, deadline time.Time, n int, ops1, ops2 []circuit.CliffordGate, outputPerm []int) Result {
	t := New(n)
	res := Result{}
	apply := func(g circuit.CliffordGate) bool {
		t.Apply(g)
		res.GatesApplied++
		if res.GatesApplied%pollEvery == 0 {
			if ctx != nil && ctx.Err() != nil {
				return false
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return false
			}
		}
		return true
	}
	for _, g := range ops2 {
		if !apply(g) {
			res.Verdict = Aborted
			return res
		}
	}
	if outputPerm != nil {
		applyPermInverse(t, outputPerm)
	}
	for i := len(ops1) - 1; i >= 0; i-- {
		if !apply(ops1[i].Inverse()) {
			res.Verdict = Aborted
			return res
		}
	}
	classify(t, &res)
	return res
}

// applyPermInverse conjugates the tableau by P⁻¹, where P is the wire
// relabeling with P·X_q·P† = X_{perm[q]}, by decomposing the inverse
// permutation π = perm⁻¹ into transpositions cycle by cycle — (c₀ c₁ … c_k)
// realized as SWAP(c₀,c₁), SWAP(c₀,c₂), …, SWAP(c₀,c_k).
func applyPermInverse(t *Tableau, perm []int) {
	inv := make([]int, len(perm))
	for q, p := range perm {
		inv[p] = q
	}
	seen := make([]bool, len(inv))
	for c0 := range inv {
		if seen[c0] || inv[c0] == c0 {
			seen[c0] = true
			continue
		}
		for c := inv[c0]; c != c0; c = inv[c] {
			seen[c] = true
			t.applySwap(c0, c)
		}
		seen[c0] = true
	}
}

// classify compares every generator image against the plain generator it
// started as and, on mismatch, derives a counterexample basis state where
// one exists.
func classify(t *Tableau, res *Result) {
	n := t.N()
	for q := 0; q < n; q++ {
		if !t.rowIs(q, q, true) {
			res.Mismatches++
		}
		if !t.rowIs(n+q, q, false) {
			res.Mismatches++
			if res.Counterexample == nil {
				res.Counterexample = zCounterexample(t, n+q, q)
			}
		}
	}
	if res.Mismatches == 0 {
		res.Verdict = EquivalentUpToPhase
		return
	}
	res.Verdict = NotEquivalent
}

// zCounterexample derives a distinguishing basis input from a mismatched
// Z-generator image W·Z_q·W† = P ≠ Z_q of the miter W = G⁻¹·P⁻¹·G'.  A
// basis state |x> fails to distinguish the circuits only if W|x> ∝ |x>,
// which forces |x> to be a (-1)^{x_q}-eigenvector of P (apply W·Z_q = P·W
// to |x>).  Three shapes arise:
//
//   - P has an X component: no Z-basis state is an eigenvector of P at all,
//     so every basis state is a counterexample — |0…0> serves.
//   - P = -Z_S (pure Z, sign flipped): |0…0> would need eigenvalue +1 but
//     -Z_S|0…0> = -|0…0> — |0…0> again.
//   - P = +Z_S with the wrong support S: |x> is fixed only when
//     parity(x·S) = x_q, so a single bit from the symmetric difference of S
//     and {q} breaks the equality and distinguishes.
func zCounterexample(t *Tableau, row, tq int) *uint64 {
	base := row * t.w
	for k := 0; k < t.w; k++ {
		if t.x[base+k] != 0 {
			ce := uint64(0)
			return &ce
		}
	}
	if t.v[row] != 0 {
		ce := uint64(0)
		return &ce
	}
	for k := 0; k < t.w; k++ {
		var exp uint64
		if k == tq>>6 {
			exp = 1 << uint(tq&63)
		}
		diff := t.z[base+k] ^ exp
		if diff == 0 {
			continue
		}
		q := k*64 + bits.TrailingZeros64(diff)
		if q < t.n && q < 64 {
			ce := uint64(1) << uint(q)
			return &ce
		}
		// Differing bit beyond the uint64 stimulus range (>64 qubits): no
		// representable counterexample index; fall through to nil.
		return nil
	}
	return nil
}
