package stab

import (
	"context"
	"testing"
	"time"

	"qcec/internal/circuit"
)

func noDeadline() time.Time { return time.Time{} }

func TestCheckEquivalentPair(t *testing.T) {
	// G = H(0); CX(0,1)  vs  G' = H(0); CZ(0,1) conjugated into CX form.
	ops1 := []circuit.CliffordGate{
		gate1(circuit.CliffH, 0),
		gate2(circuit.CliffCX, 0, 1),
	}
	ops2 := []circuit.CliffordGate{
		gate1(circuit.CliffH, 0),
		gate1(circuit.CliffH, 1),
		gate2(circuit.CliffCZ, 0, 1),
		gate1(circuit.CliffH, 1),
	}
	res := Check(context.Background(), noDeadline(), 2, ops1, ops2, nil)
	if res.Verdict != EquivalentUpToPhase {
		t.Fatalf("want equivalent, got %v (%d mismatches)", res.Verdict, res.Mismatches)
	}
	if res.GatesApplied != len(ops1)+len(ops2) {
		t.Fatalf("GatesApplied = %d, want %d", res.GatesApplied, len(ops1)+len(ops2))
	}
}

func TestCheckDetectsExtraGate(t *testing.T) {
	base := []circuit.CliffordGate{
		gate1(circuit.CliffH, 0),
		gate2(circuit.CliffCX, 0, 1),
		gate1(circuit.CliffS, 1),
	}
	// Extra X before the common prefix: the miter is X_0 itself, whose
	// sign-flipped Z_0 image makes |00> a concrete distinguishing input.
	buggy := append([]circuit.CliffordGate{gate1(circuit.CliffX, 0)}, base...)
	res := Check(context.Background(), noDeadline(), 2, base, buggy, nil)
	if res.Verdict != NotEquivalent {
		t.Fatalf("want not equivalent, got %v", res.Verdict)
	}
	if res.Counterexample == nil || *res.Counterexample != 0 {
		t.Fatalf("want counterexample |00>, got %v", res.Counterexample)
	}
}

func TestCheckRelativePhaseHasNoBasisWitness(t *testing.T) {
	// Extra Z before the common gates: the miter is the pure-Z Pauli Z_1, so
	// G'|x> = ±G|x> on every basis input — no basis counterexample exists
	// and only X rows mismatch.
	base := []circuit.CliffordGate{
		gate1(circuit.CliffH, 0),
		gate2(circuit.CliffCX, 0, 1),
	}
	buggy := append([]circuit.CliffordGate{gate1(circuit.CliffZ, 1)}, base...)
	res := Check(context.Background(), noDeadline(), 2, base, buggy, nil)
	if res.Verdict != NotEquivalent {
		t.Fatalf("want not equivalent, got %v", res.Verdict)
	}
	if res.Counterexample != nil {
		t.Fatalf("relative-phase difference admits no basis counterexample, got |%b>", *res.Counterexample)
	}
}

func TestCheckCounterexampleWrongSupport(t *testing.T) {
	// G = CX(0,1) vs G' = CX(0,2): the miter maps Z_1 and Z_2 to Z products
	// with the wrong support, and the derived counterexample must actually
	// set a bit (the symmetric-difference qubit), distinguishing the pair.
	ops1 := []circuit.CliffordGate{gate2(circuit.CliffCX, 0, 1)}
	ops2 := []circuit.CliffordGate{gate2(circuit.CliffCX, 0, 2)}
	res := Check(context.Background(), noDeadline(), 3, ops1, ops2, nil)
	if res.Verdict != NotEquivalent {
		t.Fatalf("want not equivalent, got %v", res.Verdict)
	}
	if res.Counterexample == nil || *res.Counterexample == 0 {
		t.Fatalf("want a nonzero counterexample, got %v", res.Counterexample)
	}
	// On the derived input the two circuits' outputs must differ in qubit 1
	// or 2 (CX targets differ only when the control bit of the input is 1).
	if *res.Counterexample != 1 {
		t.Fatalf("want counterexample |001> (control set), got |%b>", *res.Counterexample)
	}
}

func TestCheckDiagonalMismatchHasNoCounterexample(t *testing.T) {
	// G = I vs G' = S: V = S is diagonal, every basis state agrees up to
	// phase, so no basis-state counterexample exists; only X rows mismatch.
	var ops1 []circuit.CliffordGate
	ops2 := []circuit.CliffordGate{gate1(circuit.CliffS, 0)}
	res := Check(context.Background(), noDeadline(), 1, ops1, ops2, nil)
	if res.Verdict != NotEquivalent {
		t.Fatalf("want not equivalent, got %v", res.Verdict)
	}
	if res.Counterexample != nil {
		t.Fatalf("diagonal difference admits no basis counterexample, got |%b>", *res.Counterexample)
	}
}

func TestCheckOutputPerm(t *testing.T) {
	// G = CX(0,1) vs G' = CX(0,1); SWAP(0,1): equivalent exactly under the
	// declared relabeling perm[q] = output wire of G' carrying G's wire q.
	ops1 := []circuit.CliffordGate{gate2(circuit.CliffCX, 0, 1)}
	ops2 := []circuit.CliffordGate{
		gate2(circuit.CliffCX, 0, 1),
		gate2(circuit.CliffSwap, 0, 1),
	}
	if res := Check(context.Background(), noDeadline(), 2, ops1, ops2, nil); res.Verdict != NotEquivalent {
		t.Fatalf("without perm: want not equivalent, got %v", res.Verdict)
	}
	if res := Check(context.Background(), noDeadline(), 2, ops1, ops2, []int{1, 0}); res.Verdict != EquivalentUpToPhase {
		t.Fatalf("with perm [1 0]: want equivalent, got %v", res.Verdict)
	}
}

func TestCheckGlobalPhaseInvisible(t *testing.T) {
	// X·Y·Z = iI: a pure global phase the tableau cannot see — the verdict is
	// equivalent-up-to-phase against the empty circuit, which is exactly why
	// ec's strict mode adds a phase anchor.
	ops2 := []circuit.CliffordGate{
		gate1(circuit.CliffZ, 0),
		gate1(circuit.CliffY, 0),
		gate1(circuit.CliffX, 0),
	}
	res := Check(context.Background(), noDeadline(), 1, nil, ops2, nil)
	if res.Verdict != EquivalentUpToPhase {
		t.Fatalf("want equivalent up to phase, got %v", res.Verdict)
	}
}

func TestCheckCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Enough gates to cross the poll interval.
	ops := make([]circuit.CliffordGate, 4*pollEvery)
	for i := range ops {
		ops[i] = gate1(circuit.CliffH, i%3)
	}
	res := Check(ctx, noDeadline(), 3, ops, ops, nil)
	if res.Verdict != Aborted {
		t.Fatalf("want aborted on cancelled context, got %v", res.Verdict)
	}
	if res.GatesApplied > pollEvery {
		t.Fatalf("aborted only after %d gates; want at most one poll interval (%d)", res.GatesApplied, pollEvery)
	}
}

func TestCheckDeadline(t *testing.T) {
	ops := make([]circuit.CliffordGate, 4*pollEvery)
	for i := range ops {
		ops[i] = gate1(circuit.CliffS, i%3)
	}
	res := Check(context.Background(), time.Now().Add(-time.Second), 3, ops, ops, nil)
	if res.Verdict != Aborted {
		t.Fatalf("want aborted on expired deadline, got %v", res.Verdict)
	}
}
