package stab

import (
	"testing"

	"qcec/internal/circuit"
)

// decodeGates turns a fuzz byte stream into a Clifford gate sequence on n
// qubits: each byte selects an opcode from its low bits and operands from a
// rolling cursor over subsequent bytes, so every input decodes to some valid
// stream (no rejected corpus entries).
func decodeGates(data []byte, n int) []circuit.CliffordGate {
	ops := make([]circuit.CliffordGate, 0, len(data)/2)
	ops1q := []circuit.CliffordOp{
		circuit.CliffX, circuit.CliffY, circuit.CliffZ, circuit.CliffH,
		circuit.CliffS, circuit.CliffSdg, circuit.CliffSX, circuit.CliffSXdg,
		circuit.CliffRY90, circuit.CliffRY270,
	}
	ops2q := []circuit.CliffordOp{circuit.CliffCX, circuit.CliffCZ, circuit.CliffSwap}
	for i := 0; i+1 < len(data); i += 2 {
		sel, arg := int(data[i]), int(data[i+1])
		if sel%13 < 10 {
			ops = append(ops, circuit.CliffordGate{Op: ops1q[sel%13], Q0: arg % n, Q1: -1})
			continue
		}
		a := arg % n
		b := (arg/n + 1 + a) % n
		if b == a {
			b = (a + 1) % n
		}
		if b == a { // n == 1: no two-qubit gate possible
			continue
		}
		ops = append(ops, circuit.CliffordGate{Op: ops2q[sel%13-10], Q0: a, Q1: b})
	}
	return ops
}

// FuzzTableau hammers the gate implementations with random Clifford streams
// and checks the two invariants any correct conjugation must preserve: the
// rows stay symplectic, and un-applying the stream restores the exact
// identity tableau (phases included) — a mistake in any bit rule or phase
// exponent breaks one of the two.
func FuzzTableau(f *testing.F) {
	f.Add([]byte{0, 0}, uint8(2))
	f.Add([]byte{3, 1, 10, 0, 4, 1, 11, 2, 7, 0}, uint8(3))
	f.Add([]byte{12, 5, 1, 63, 3, 64, 10, 200}, uint8(70))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8) {
		n := int(nRaw)%70 + 1
		ops := decodeGates(data, n)
		if len(ops) > 512 {
			ops = ops[:512]
		}
		tab := New(n)
		for _, g := range ops {
			tab.Apply(g)
		}
		if !tab.Symplectic() {
			t.Fatalf("symplectic invariant broken after %d gates on %d qubits:\n%s", len(ops), n, tab)
		}
		for i := len(ops) - 1; i >= 0; i-- {
			tab.Apply(ops[i].Inverse())
		}
		if !tab.FixesGenerators(nil) {
			t.Fatalf("inverse stream did not restore identity (%d gates, %d qubits):\n%s", len(ops), n, tab)
		}
	})
}
