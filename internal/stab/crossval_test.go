// Cross-validation of the tableau fast path against the DD-based complete
// checker on randomized Clifford instances.  This lives in an external test
// package so it can import internal/ec and internal/portfolio (which import
// internal/stab) without a cycle.
package stab_test

import (
	"context"
	"testing"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/ec"
	"qcec/internal/errinject"
	"qcec/internal/portfolio"
	"qcec/internal/sim"
)

// cliffordSafeKinds are the error classes that keep a Clifford circuit
// Clifford: CNOT surgery only.  GateSubstitution can plant a T and
// RotationOffset detunes angles off the π/2 grid, so both would change the
// routing decision, not just the verdict.
var cliffordSafeKinds = []errinject.Kind{
	errinject.MisplacedCNOT,
	errinject.RemovedCNOT,
	errinject.FlippedCNOT,
}

func checkBoth(t *testing.T, g1, g2 *circuit.Circuit, upToPhase bool) (ec.Result, ec.Result) {
	t.Helper()
	sres := ec.Check(g1, g2, ec.Options{Strategy: ec.StrategyStabilizer, UpToGlobalPhase: upToPhase})
	dres := ec.Check(g1, g2, ec.Options{Strategy: ec.Proportional, UpToGlobalPhase: upToPhase})
	if sres.Verdict == ec.TimedOut || dres.Verdict == ec.TimedOut {
		t.Fatalf("unexpected inconclusive verdict: stab=%v (%v) dd=%v", sres.Verdict, sres.Err, dres.Verdict)
	}
	return sres, dres
}

// TestCrossValidateEquivalentPairs checks that tableau and DD verdicts
// bit-match on equivalent Clifford pairs (a circuit against a padded clone),
// in both phase conventions.
func TestCrossValidateEquivalentPairs(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		for seed := int64(0); seed < 4; seed++ {
			g1 := bench.RandomClifford(n, 12*n, seed)
			g2 := g1.Clone()
			g2.H(0).H(0).S(1 % n).Sdg(1 % n) // identity padding
			for _, phase := range []bool{false, true} {
				sres, dres := checkBoth(t, g1, g2, phase)
				if sres.Equivalent() != dres.Equivalent() {
					t.Errorf("n=%d seed=%d phase=%v: stab=%v dd=%v", n, seed, phase, sres.Verdict, dres.Verdict)
				}
				if !sres.Equivalent() {
					t.Errorf("n=%d seed=%d phase=%v: padded clone judged %v", n, seed, phase, sres.Verdict)
				}
			}
		}
	}
}

// TestCrossValidateInjectedErrors mutates Clifford circuits with the
// Clifford-preserving error classes and checks the tableau verdict matches
// the DD verdict on every pair; when the tableau supplies a counterexample,
// the distinguishing input is re-simulated and must actually distinguish.
func TestCrossValidateInjectedErrors(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		for seed := int64(0); seed < 3; seed++ {
			g1 := bench.RandomClifford(n, 10*n, seed)
			for _, kind := range cliffordSafeKinds {
				g2, inj, err := errinject.Inject(g1, kind, seed+17)
				if err != nil {
					continue // no applicable gate in this instance
				}
				sres, dres := checkBoth(t, g1, g2, true)
				if sres.Equivalent() != dres.Equivalent() {
					t.Errorf("n=%d seed=%d %s: stab=%v dd=%v", n, seed, inj, sres.Verdict, dres.Verdict)
				}
				if sres.Verdict == ec.NotEquivalent && sres.Counterexample != nil {
					assertDistinguishes(t, g1, g2, *sres.Counterexample)
				}
			}
		}
	}
}

// assertDistinguishes re-simulates both circuits on the claimed input and
// fails unless the output states measurably differ.
func assertDistinguishes(t *testing.T, g1, g2 *circuit.Circuit, input uint64) {
	t.Helper()
	p := dd.NewDefault(g1.N)
	s := sim.NewOn(p)
	u := s.Run(g1, input)
	v := s.RunFromWithPins(g2, p.BasisState(input), []dd.VEdge{u})
	if f := p.Fidelity(u, v); f > 1-1e-6 {
		t.Errorf("claimed counterexample |%b> does not distinguish (fidelity %g)", input, f)
	}
}

// TestCrossValidatePortfolio runs the full portfolio race on a Clifford pair
// and checks the collective verdict agrees with the standalone tableau
// verdict; with only the stab prover selected, it must decide the race.
func TestCrossValidatePortfolio(t *testing.T) {
	g1 := bench.RandomClifford(6, 80, 42)
	g2, _, err := errinject.Inject(g1, errinject.FlippedCNOT, 7)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	want := ec.Check(g1, g2, ec.Options{Strategy: ec.StrategyStabilizer, UpToGlobalPhase: true})

	provers, err := portfolio.FromNames([]string{"stab"}, portfolio.Config{UpToGlobalPhase: true})
	if err != nil {
		t.Fatalf("FromNames: %v", err)
	}
	res := portfolio.Run(context.Background(), g1, g2, provers, portfolio.Options{})
	if res.Winner != "stab" {
		t.Fatalf("winner = %q, want stab (reports: %+v)", res.Winner, res.Reports)
	}
	gotEq := res.Verdict == portfolio.Equivalent || res.Verdict == portfolio.EquivalentUpToGlobalPhase
	if gotEq != want.Equivalent() {
		t.Fatalf("portfolio verdict %v disagrees with stabilizer %v", res.Verdict, want.Verdict)
	}
}

// TestCrossValidateOutputPerm checks the permutation orientation end to end:
// relabeling by SWAP must be judged identically by tableau and DD.
func TestCrossValidateOutputPerm(t *testing.T) {
	g1 := bench.RandomClifford(4, 40, 3)
	g2 := g1.Clone()
	g2.Swap(1, 3)
	perm := []int{0, 3, 2, 1}
	for _, phase := range []bool{false, true} {
		sres := ec.Check(g1, g2, ec.Options{Strategy: ec.StrategyStabilizer, OutputPerm: perm, UpToGlobalPhase: phase})
		dres := ec.Check(g1, g2, ec.Options{Strategy: ec.Proportional, OutputPerm: perm, UpToGlobalPhase: phase})
		// Up-to-phase mode compares at Equivalent() granularity: the DD path
		// still reports strict Equivalent when the phases happen to match
		// exactly, which the tableau by design cannot see.
		if sres.Equivalent() != dres.Equivalent() {
			t.Errorf("phase=%v: stab=%v dd=%v", phase, sres.Verdict, dres.Verdict)
		}
		if !phase && sres.Verdict != dres.Verdict {
			t.Errorf("strict: stab=%v dd=%v", sres.Verdict, dres.Verdict)
		}
		if !sres.Equivalent() {
			t.Errorf("phase=%v: relabeled clone judged %v (%s)", phase, sres.Verdict, sres.Reason)
		}
	}
}
