// Package stab implements bit-packed stabilizer tableaux and a
// polynomial-time equivalence check for Clifford circuits — the portfolio's
// fast path for exactly the pairs compilation flows produce (mapping and
// routing add only SWAP→CX and H), following Thanos et al., "Fast
// equivalence checking of quantum circuits of Clifford gates" (PAPERS.md).
//
// A Tableau records the conjugation action of a Clifford unitary U on the
// n-qubit Pauli group: row q is U·X_q·U†, row n+q is U·Z_q·U†.  Each row is
// a Pauli stored in the X/Z binary symplectic representation
//
//	P = i^v · Π_q X^{x_q} Z^{z_q},   v ∈ Z₄,
//
// with the x and z vectors bit-packed into []uint64 words (qubit q at bit
// q%64 of word q/64) and the phase exponent v tracked per row.  In this
// ordered X-then-Z convention the Aaronson–Gottesman phase bookkeeping
// reduces to two facts: per-gate conjugation touches only the acted-on
// bits' local phases, and the row product picks up i^(2·|z_a∧x_b|) from
// commuting Z factors of the left row past X factors of the right — a
// word-parallel popcount (mulRows).  The Hermitian convention's Y = i·XZ
// lives in v, so no separate sign table is needed.
package stab

import (
	"fmt"
	"math/bits"

	"qcec/internal/circuit"
)

// Tableau is the conjugation action of a Clifford unitary on the 2n Pauli
// generators.  The zero value is not usable; use New.
type Tableau struct {
	n int
	w int // words per row
	x []uint64
	z []uint64
	v []uint8 // phase exponent mod 4, one per row
}

// New returns the identity tableau on n qubits: row q = X_q, row n+q = Z_q.
func New(n int) *Tableau {
	if n <= 0 {
		panic(fmt.Sprintf("stab: invalid qubit count %d", n))
	}
	w := (n + 63) / 64
	t := &Tableau{
		n: n,
		w: w,
		x: make([]uint64, 2*n*w),
		z: make([]uint64, 2*n*w),
		v: make([]uint8, 2*n),
	}
	for q := 0; q < n; q++ {
		t.x[q*w+q>>6] = 1 << uint(q&63)
		t.z[(n+q)*w+q>>6] = 1 << uint(q&63)
	}
	return t
}

// N returns the qubit count.
func (t *Tableau) N() int { return t.n }

// rows returns the number of generator rows, 2n.
func (t *Tableau) rows() int { return 2 * t.n }

// mulRows multiplies row dst by row src (dst := dst·src), word-parallel
// across the qubit words.  Reordering the product into the canonical
// X-then-Z form moves every Z factor of dst past every X factor of src on
// the same qubit, each swap contributing a factor -1 — i^(2·parity) total.
func (t *Tableau) mulRows(dst, src int) {
	d, s := dst*t.w, src*t.w
	anti := 0
	for k := 0; k < t.w; k++ {
		anti += bits.OnesCount64(t.z[d+k] & t.x[s+k])
		t.x[d+k] ^= t.x[s+k]
		t.z[d+k] ^= t.z[s+k]
	}
	t.v[dst] = (t.v[dst] + t.v[src] + uint8(anti&1)*2) & 3
}

// commutes reports whether rows i and j commute: the symplectic inner
// product parity(x_i·z_j) ⊕ parity(z_i·x_j) is zero.
func (t *Tableau) commutes(i, j int) bool {
	a, b := i*t.w, j*t.w
	anti := 0
	for k := 0; k < t.w; k++ {
		anti += bits.OnesCount64(t.x[a+k]&t.z[b+k]) + bits.OnesCount64(t.z[a+k]&t.x[b+k])
	}
	return anti&1 == 0
}

// Symplectic reports whether the rows satisfy the Pauli-group commutation
// relations a Clifford conjugation must preserve: row q anticommutes with
// row n+q and commutes with every other row.  Any correct gate sequence
// keeps this invariant; FuzzTableau hammers on it.
func (t *Tableau) Symplectic() bool {
	for i := 0; i < t.rows(); i++ {
		for j := i + 1; j < t.rows(); j++ {
			want := j == i+t.n // conjugate pair X_q / Z_q
			if t.commutes(i, j) == want {
				return false
			}
		}
	}
	return true
}

// bit returns bit q of row r in the given plane.
func bit(plane []uint64, w, r, q int) uint64 {
	return plane[r*w+q>>6] >> uint(q&63) & 1
}

// applyH conjugates every row by H on qubit q: X↔Z, with XZ → ZX = -XZ.
func (t *Tableau) applyH(q int) {
	wq, m := q>>6, uint64(1)<<uint(q&63)
	for r := 0; r < t.rows(); r++ {
		i := r*t.w + wq
		xb, zb := t.x[i]&m, t.z[i]&m
		if xb != zb { // exactly one set: swap = flip both
			t.x[i] ^= m
			t.z[i] ^= m
		}
		if xb != 0 && zb != 0 {
			t.v[r] = (t.v[r] + 2) & 3
		}
	}
}

// applyS conjugates by S on qubit q: X → iXZ, XZ → iX (Z fixed), i.e.
// v += x and z ^= x.
func (t *Tableau) applyS(q int) {
	wq, m := q>>6, uint64(1)<<uint(q&63)
	for r := 0; r < t.rows(); r++ {
		i := r*t.w + wq
		if t.x[i]&m != 0 {
			t.v[r] = (t.v[r] + 1) & 3
			t.z[i] ^= m
		}
	}
}

// applySdg conjugates by S†: X → -iXZ, XZ → -iX.
func (t *Tableau) applySdg(q int) {
	wq, m := q>>6, uint64(1)<<uint(q&63)
	for r := 0; r < t.rows(); r++ {
		i := r*t.w + wq
		if t.x[i]&m != 0 {
			t.v[r] = (t.v[r] + 3) & 3
			t.z[i] ^= m
		}
	}
}

// applyPauli conjugates by X, Y or Z on qubit q, which only flips signs:
// X negates Z factors, Z negates X factors, Y negates both kinds.
func (t *Tableau) applyPauli(q int, negX, negZ bool) {
	wq, m := q>>6, uint64(1)<<uint(q&63)
	for r := 0; r < t.rows(); r++ {
		i := r*t.w + wq
		flip := false
		if negX && t.x[i]&m != 0 {
			flip = !flip
		}
		if negZ && t.z[i]&m != 0 {
			flip = !flip
		}
		if flip {
			t.v[r] = (t.v[r] + 2) & 3
		}
	}
}

// applyCX conjugates by CX(c→t): X_c → X_cX_t, Z_t → Z_cZ_t.  In the
// ordered X-then-Z convention the rearrangement never swaps an X past a Z
// on the same qubit, so no phase correction arises.
func (t *Tableau) applyCX(c, tq int) {
	wc, mc := c>>6, uint64(1)<<uint(c&63)
	wt, mt := tq>>6, uint64(1)<<uint(tq&63)
	for r := 0; r < t.rows(); r++ {
		bc, bt := r*t.w+wc, r*t.w+wt
		if t.x[bc]&mc != 0 {
			t.x[bt] ^= mt
		}
		if t.z[bt]&mt != 0 {
			t.z[bc] ^= mc
		}
	}
}

// applyCZ conjugates by CZ(a,b): X_a → X_aZ_b, X_b → Z_aX_b; the only
// reorder is Z_b past X_b when both rows' X bits are set, giving -1.
func (t *Tableau) applyCZ(a, b int) {
	wa, ma := a>>6, uint64(1)<<uint(a&63)
	wb, mb := b>>6, uint64(1)<<uint(b&63)
	for r := 0; r < t.rows(); r++ {
		ba, bb := r*t.w+wa, r*t.w+wb
		xa, xb := t.x[ba]&ma != 0, t.x[bb]&mb != 0
		if xa && xb {
			t.v[r] = (t.v[r] + 2) & 3
		}
		if xa {
			t.z[bb] ^= mb
		}
		if xb {
			t.z[ba] ^= ma
		}
	}
}

// applySwap conjugates by SWAP(a,b): exchange the two qubits' bits.
func (t *Tableau) applySwap(a, b int) {
	wa, ma := a>>6, uint64(1)<<uint(a&63)
	wb, mb := b>>6, uint64(1)<<uint(b&63)
	for r := 0; r < t.rows(); r++ {
		ba, bb := r*t.w+wa, r*t.w+wb
		xa, xb := t.x[ba]&ma != 0, t.x[bb]&mb != 0
		if xa != xb {
			t.x[ba] ^= ma
			t.x[bb] ^= mb
		}
		za, zb := t.z[ba]&ma != 0, t.z[bb]&mb != 0
		if za != zb {
			t.z[ba] ^= ma
			t.z[bb] ^= mb
		}
	}
}

// Apply conjugates the tableau by one canonical Clifford generator: every
// row P becomes g·P·g†.  Composite generators (SX = H·S·H, RY(±π/2) = X·H /
// H·X) are applied innermost-first, matching conj_{AB} = conj_A ∘ conj_B.
func (t *Tableau) Apply(g circuit.CliffordGate) {
	switch g.Op {
	case circuit.CliffI:
	case circuit.CliffX:
		t.applyPauli(g.Q0, false, true)
	case circuit.CliffY:
		t.applyPauli(g.Q0, true, true)
	case circuit.CliffZ:
		t.applyPauli(g.Q0, true, false)
	case circuit.CliffH:
		t.applyH(g.Q0)
	case circuit.CliffS:
		t.applyS(g.Q0)
	case circuit.CliffSdg:
		t.applySdg(g.Q0)
	case circuit.CliffSX: // SX = H·S·H
		t.applyH(g.Q0)
		t.applyS(g.Q0)
		t.applyH(g.Q0)
	case circuit.CliffSXdg: // SX† = H·S†·H
		t.applyH(g.Q0)
		t.applySdg(g.Q0)
		t.applyH(g.Q0)
	case circuit.CliffRY90: // RY(π/2) = X·H
		t.applyH(g.Q0)
		t.applyPauli(g.Q0, false, true)
	case circuit.CliffRY270: // RY(-π/2) = H·X
		t.applyPauli(g.Q0, false, true)
		t.applyH(g.Q0)
	case circuit.CliffCX:
		t.applyCX(g.Q0, g.Q1)
	case circuit.CliffCZ:
		t.applyCZ(g.Q0, g.Q1)
	case circuit.CliffSwap:
		t.applySwap(g.Q0, g.Q1)
	default:
		panic(fmt.Sprintf("stab: unknown clifford op %v", g.Op))
	}
}

// rowIs reports whether row r is exactly the single-qubit generator on
// qubit q in the given plane (x for X_q, z for Z_q) with zero bits
// elsewhere and phase 0.
func (t *Tableau) rowIs(r, q int, wantX bool) bool {
	if t.v[r] != 0 {
		return false
	}
	want, other := t.x, t.z
	if !wantX {
		want, other = t.z, t.x
	}
	base := r * t.w
	for k := 0; k < t.w; k++ {
		var exp uint64
		if k == q>>6 {
			exp = 1 << uint(q&63)
		}
		if want[base+k] != exp || other[base+k] != 0 {
			return false
		}
	}
	return true
}

// FixesGenerators reports whether the tableau maps every generator to its
// target image under the output relabeling perm (nil = identity): row q
// must be X_{perm[q]}, row n+q must be Z_{perm[q]}, all with phase +1.  A
// true answer certifies the underlying unitary is a scalar multiple of the
// permutation (of the identity when perm is nil).
func (t *Tableau) FixesGenerators(perm []int) bool {
	for q := 0; q < t.n; q++ {
		tq := q
		if perm != nil {
			tq = perm[q]
		}
		if !t.rowIs(q, tq, true) || !t.rowIs(t.n+q, tq, false) {
			return false
		}
	}
	return true
}

// String renders the tableau rows for debugging: one Pauli per row in
// i^v·X/Z form.
func (t *Tableau) String() string {
	out := make([]byte, 0, t.rows()*(t.n+8))
	for r := 0; r < t.rows(); r++ {
		label := "X"
		q := r
		if r >= t.n {
			label = "Z"
			q = r - t.n
		}
		out = append(out, fmt.Sprintf("%s%-2d -> i^%d ", label, q, t.v[r])...)
		for c := 0; c < t.n; c++ {
			xb, zb := bit(t.x, t.w, r, c), bit(t.z, t.w, r, c)
			out = append(out, "IXZW"[xb|zb<<1]) // W marks the XZ product
		}
		out = append(out, '\n')
	}
	return string(out)
}
