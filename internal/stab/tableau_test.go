package stab

import (
	"testing"

	"qcec/internal/circuit"
)

func gate1(op circuit.CliffordOp, q int) circuit.CliffordGate {
	return circuit.CliffordGate{Op: op, Q0: q, Q1: -1}
}

func gate2(op circuit.CliffordOp, a, b int) circuit.CliffordGate {
	return circuit.CliffordGate{Op: op, Q0: a, Q1: b}
}

// equalTableaus compares two tableaus row-for-row including phases.
func equalTableaus(a, b *Tableau) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.x {
		if a.x[i] != b.x[i] || a.z[i] != b.z[i] {
			return false
		}
	}
	for i := range a.v {
		if a.v[i] != b.v[i] {
			return false
		}
	}
	return true
}

func apply(t *Tableau, gs ...circuit.CliffordGate) *Tableau {
	for _, g := range gs {
		t.Apply(g)
	}
	return t
}

func TestNewIsIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 130} {
		tab := New(n)
		if !tab.Symplectic() {
			t.Fatalf("n=%d: identity tableau not symplectic", n)
		}
		if !tab.FixesGenerators(nil) {
			t.Fatalf("n=%d: identity tableau does not fix generators", n)
		}
	}
}

// TestKnownConjugations pins the textbook single-gate images: H swaps X and
// Z, S sends X to Y = i·XZ, X flips the sign of Z, CX spreads X from control
// and Z from target.
func TestKnownConjugations(t *testing.T) {
	tab := apply(New(1), gate1(circuit.CliffH, 0))
	if !tab.rowIs(0, 0, false) || !tab.rowIs(1, 0, true) {
		t.Fatalf("H: want X->Z, Z->X, got\n%s", tab)
	}

	tab = apply(New(1), gate1(circuit.CliffS, 0))
	// S X S† = Y = i·XZ: x and z bits set, v = 1; Z fixed.
	if tab.x[0] != 1 || tab.z[0] != 1 || tab.v[0] != 1 {
		t.Fatalf("S: want X -> i·XZ, got\n%s", tab)
	}
	if !tab.rowIs(1, 0, false) {
		t.Fatalf("S: want Z fixed, got\n%s", tab)
	}

	tab = apply(New(1), gate1(circuit.CliffX, 0))
	// X Z X = -Z: phase exponent 2 on the Z row.
	if tab.v[1] != 2 || tab.z[1] != 1 || tab.x[1] != 0 {
		t.Fatalf("X: want Z -> -Z, got\n%s", tab)
	}

	tab = apply(New(2), gate2(circuit.CliffCX, 0, 1))
	// CX: X_0 -> X_0 X_1, Z_1 -> Z_0 Z_1, X_1 and Z_0 fixed, no phases.
	if tab.x[0] != 0b11 || tab.z[0] != 0 || tab.v[0] != 0 {
		t.Fatalf("CX: want X_0 -> X_0 X_1, got\n%s", tab)
	}
	if !tab.rowIs(1, 1, true) || !tab.rowIs(2, 0, false) {
		t.Fatalf("CX: want X_1, Z_0 fixed, got\n%s", tab)
	}
	if tab.z[3*tab.w] != 0b11 || tab.x[3*tab.w] != 0 || tab.v[3] != 0 {
		t.Fatalf("CX: want Z_1 -> Z_0 Z_1, got\n%s", tab)
	}
}

// TestGateIdentities checks that algebraic identities among the generators
// hold at the tableau level, including the phase exponents: each sequence
// composes to the identity conjugation or to a named single gate.
func TestGateIdentities(t *testing.T) {
	cases := []struct {
		name string
		seq  []circuit.CliffordGate
		want []circuit.CliffordGate // tableau the sequence must equal
	}{
		{"HH=I", []circuit.CliffordGate{gate1(circuit.CliffH, 0), gate1(circuit.CliffH, 0)}, nil},
		{"SSdg=I", []circuit.CliffordGate{gate1(circuit.CliffS, 0), gate1(circuit.CliffSdg, 0)}, nil},
		{"SS=Z", []circuit.CliffordGate{gate1(circuit.CliffS, 0), gate1(circuit.CliffS, 0)},
			[]circuit.CliffordGate{gate1(circuit.CliffZ, 0)}},
		{"SXSX=X", []circuit.CliffordGate{gate1(circuit.CliffSX, 0), gate1(circuit.CliffSX, 0)},
			[]circuit.CliffordGate{gate1(circuit.CliffX, 0)}},
		{"SXSXdg=I", []circuit.CliffordGate{gate1(circuit.CliffSX, 0), gate1(circuit.CliffSXdg, 0)}, nil},
		{"RY90RY270=I", []circuit.CliffordGate{gate1(circuit.CliffRY90, 0), gate1(circuit.CliffRY270, 0)}, nil},
		{"RY90RY90=Y", []circuit.CliffordGate{gate1(circuit.CliffRY90, 0), gate1(circuit.CliffRY90, 0)},
			[]circuit.CliffordGate{gate1(circuit.CliffY, 0)}},
		{"XX=I", []circuit.CliffordGate{gate1(circuit.CliffX, 0), gate1(circuit.CliffX, 0)}, nil},
		{"XZ~Y", []circuit.CliffordGate{gate1(circuit.CliffZ, 0), gate1(circuit.CliffX, 0)},
			[]circuit.CliffordGate{gate1(circuit.CliffY, 0)}}, // conjugation is phase-blind: XZ ∝ Y
		{"HSH=SX", []circuit.CliffordGate{gate1(circuit.CliffH, 0), gate1(circuit.CliffS, 0), gate1(circuit.CliffH, 0)},
			[]circuit.CliffordGate{gate1(circuit.CliffSX, 0)}},
		{"CXCX=I", []circuit.CliffordGate{gate2(circuit.CliffCX, 0, 1), gate2(circuit.CliffCX, 0, 1)}, nil},
		{"CZCZ=I", []circuit.CliffordGate{gate2(circuit.CliffCZ, 0, 1), gate2(circuit.CliffCZ, 0, 1)}, nil},
		{"CZ symmetric", []circuit.CliffordGate{gate2(circuit.CliffCZ, 0, 1)},
			[]circuit.CliffordGate{gate2(circuit.CliffCZ, 1, 0)}},
		{"SWAPSWAP=I", []circuit.CliffordGate{gate2(circuit.CliffSwap, 0, 1), gate2(circuit.CliffSwap, 0, 1)}, nil},
		{"SWAP=3CX", []circuit.CliffordGate{
			gate2(circuit.CliffCX, 0, 1), gate2(circuit.CliffCX, 1, 0), gate2(circuit.CliffCX, 0, 1)},
			[]circuit.CliffordGate{gate2(circuit.CliffSwap, 0, 1)}},
		{"HH CZ = CX", []circuit.CliffordGate{
			gate1(circuit.CliffH, 1), gate2(circuit.CliffCZ, 0, 1), gate1(circuit.CliffH, 1)},
			[]circuit.CliffordGate{gate2(circuit.CliffCX, 0, 1)}},
	}
	for _, tc := range cases {
		got := apply(New(2), tc.seq...)
		want := apply(New(2), tc.want...)
		if !equalTableaus(got, want) {
			t.Errorf("%s:\ngot\n%swant\n%s", tc.name, got, want)
		}
		if !got.Symplectic() {
			t.Errorf("%s: result not symplectic", tc.name)
		}
	}
}

// TestInverseRoundTrip applies a fixed gate soup and then its inverse in
// reverse order; the tableau must return exactly to the identity (phases
// included) — on a multi-word register so cross-word indexing is covered.
func TestInverseRoundTrip(t *testing.T) {
	const n = 70 // two words per row
	ops := []circuit.CliffordGate{
		gate1(circuit.CliffH, 63),
		gate2(circuit.CliffCX, 63, 64),
		gate1(circuit.CliffS, 64),
		gate2(circuit.CliffCZ, 0, 69),
		gate1(circuit.CliffSX, 5),
		gate2(circuit.CliffSwap, 1, 68),
		gate1(circuit.CliffRY90, 67),
		gate1(circuit.CliffY, 63),
		gate1(circuit.CliffSdg, 2),
		gate2(circuit.CliffCX, 69, 0),
	}
	tab := New(n)
	for _, g := range ops {
		tab.Apply(g)
	}
	if tab.FixesGenerators(nil) {
		t.Fatal("gate soup unexpectedly acts as identity")
	}
	if !tab.Symplectic() {
		t.Fatal("gate soup broke the symplectic invariant")
	}
	for i := len(ops) - 1; i >= 0; i-- {
		tab.Apply(ops[i].Inverse())
	}
	if !tab.FixesGenerators(nil) {
		t.Fatalf("inverse round trip did not restore identity:\n%s", tab)
	}
}

// TestFixesGeneratorsPerm checks the output-relabeling targets: a SWAP
// tableau fixes generators exactly under the matching permutation.
func TestFixesGeneratorsPerm(t *testing.T) {
	tab := apply(New(3), gate2(circuit.CliffSwap, 0, 2))
	if tab.FixesGenerators(nil) {
		t.Fatal("SWAP tableau should not fix generators under identity")
	}
	if !tab.FixesGenerators([]int{2, 1, 0}) {
		t.Fatalf("SWAP tableau should fix generators under perm [2 1 0]:\n%s", tab)
	}
	if tab.FixesGenerators([]int{1, 0, 2}) {
		t.Fatal("SWAP tableau fixed generators under the wrong permutation")
	}
}

// TestMulRowsPhase pins the word-parallel row product's phase rule:
// (XZ)·(XZ) on one qubit reorders one Z past one X, so Y·Y written as
// i·XZ · i·XZ = i²·(-1)·X²Z² = +1 — the product row must be the identity
// Pauli with v = 0.
func TestMulRowsPhase(t *testing.T) {
	tab := apply(New(1), gate1(circuit.CliffS, 0)) // row 0 = i·XZ (= Y)
	tab.mulRows(0, 0)
	if tab.x[0] != 0 || tab.z[0] != 0 || tab.v[0] != 0 {
		t.Fatalf("Y·Y: want identity with phase 0, got x=%b z=%b v=%d", tab.x[0], tab.z[0], tab.v[0])
	}
}
