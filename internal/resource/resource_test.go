package resource

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func TestHardLimitCancelsWithTypedCause(t *testing.T) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w, ctx := Start(context.Background(), Config{
		HardLimit: 1, // below any live heap
		Interval:  time.Millisecond,
	})
	defer w.Stop()

	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("hard limit never tripped")
	}
	var mle *MemoryLimitError
	if !errors.As(context.Cause(ctx), &mle) {
		t.Fatalf("cause = %v, want *MemoryLimitError", context.Cause(ctx))
	}
	if mle.HeapBytes == 0 || mle.LimitBytes != 1 {
		t.Fatalf("bad error payload: %+v", mle)
	}
	st := w.Stats()
	if st.HardTrips != 1 {
		t.Fatalf("HardTrips = %d, want 1", st.HardTrips)
	}
	if st.Samples == 0 || st.PeakHeapBytes == 0 {
		t.Fatalf("counters not recorded: %+v", st)
	}
}

func TestCauseSurvivesDerivedContexts(t *testing.T) {
	w, ctx := Start(context.Background(), Config{HardLimit: 1, Interval: time.Millisecond})
	defer w.Stop()
	// A child with its own deadline — the shape portfolio/ec produce — must
	// still report the watchdog's cause.
	child, cancel := context.WithTimeout(ctx, time.Hour)
	defer cancel()
	select {
	case <-child.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("child never cancelled")
	}
	var mle *MemoryLimitError
	if !errors.As(context.Cause(child), &mle) {
		t.Fatalf("child cause = %v, want *MemoryLimitError", context.Cause(child))
	}
}

func TestSoftLimitBumpsEpochWithoutCancelling(t *testing.T) {
	w, ctx := Start(context.Background(), Config{
		SoftLimit: 1, // always exceeded: every eligible sample soft-trips
		Interval:  time.Millisecond,
	})
	defer w.Stop()

	start := w.Epoch()
	deadline := time.Now().Add(5 * time.Second)
	for w.Epoch() == start && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Epoch() == start {
		t.Fatal("soft limit never bumped the pressure epoch")
	}
	if ctx.Err() != nil {
		t.Fatalf("soft limit cancelled the context: %v", context.Cause(ctx))
	}
	if st := w.Stats(); st.SoftTrips == 0 || st.HardTrips != 0 {
		t.Fatalf("stats = %+v, want soft trips only", st)
	}
}

func TestSoftTripRearmHysteresis(t *testing.T) {
	w, _ := Start(context.Background(), Config{SoftLimit: 1, Interval: time.Millisecond})
	time.Sleep(100 * time.Millisecond)
	w.Stop()
	st := w.Stats()
	if st.SoftTrips == 0 {
		t.Fatal("no soft trips recorded")
	}
	// With the re-arm window, trips are bounded by samples/softRearmSamples
	// (+1 for the initial trip), far below one per sample.
	max := st.Samples/softRearmSamples + 2
	if st.SoftTrips > max {
		t.Fatalf("SoftTrips = %d over %d samples; hysteresis not applied (max %d)",
			st.SoftTrips, st.Samples, max)
	}
}

func TestGaugeFeedsPeakAndError(t *testing.T) {
	w, ctx := Start(context.Background(), Config{HardLimit: 1, Interval: time.Millisecond})
	defer w.Stop()
	remove := w.AddGauge(func() int64 { return 12345 })
	defer remove()
	<-ctx.Done()
	var mle *MemoryLimitError
	if !errors.As(context.Cause(ctx), &mle) {
		t.Fatal("no MemoryLimitError cause")
	}
	// The gauge may or may not have been registered before the tripping
	// sample; the peak counter must catch it either way once observed.
	deadline := time.Now().Add(time.Second)
	for w.Stats().PeakDDNodes == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// After the hard trip the loop exits, so the gauge may legitimately be
	// unseen; only assert when it was sampled.
	if peak := w.Stats().PeakDDNodes; peak != 0 && peak != 12345 {
		t.Fatalf("PeakDDNodes = %d, want 12345", peak)
	}
}

func TestGaugeAddRemove(t *testing.T) {
	w, _ := Start(context.Background(), Config{SoftLimit: 1 << 60, Interval: time.Millisecond})
	defer w.Stop()
	remove1 := w.AddGauge(func() int64 { return 10 })
	remove2 := w.AddGauge(func() int64 { return 32 })
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().PeakDDNodes < 42 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := w.Stats().PeakDDNodes; got != 42 {
		t.Fatalf("PeakDDNodes = %d, want 42 (sum of gauges)", got)
	}
	remove1()
	remove1() // double-remove must be safe
	remove2()
}

func TestStopIdempotentAndReleasesContext(t *testing.T) {
	w, ctx := Start(context.Background(), Config{HardLimit: 1 << 60, Interval: time.Millisecond})
	w.Stop()
	w.Stop() // second call must not panic or block
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("Stop did not release the run context")
	}
	if errors.Is(context.Cause(ctx), context.Canceled) == false {
		// Stop cancels with a nil cause, which context reports as Canceled.
		t.Fatalf("cause after Stop = %v, want context.Canceled", context.Cause(ctx))
	}
}

func TestFromContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context not nil")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) not nil")
	}
	w, ctx := Start(context.Background(), Config{HardLimit: 1 << 60})
	defer w.Stop()
	if FromContext(ctx) != w {
		t.Fatal("FromContext did not return the started watchdog")
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	inner := fmt.Errorf("inner cause")
	perr := NewPanicError("test op", inner)
	if !errors.Is(perr, inner) {
		t.Fatal("PanicError does not unwrap to its error value")
	}
	if len(perr.Stack) == 0 {
		t.Fatal("PanicError captured no stack")
	}
	// Non-error panic values unwrap to nil.
	perr2 := NewPanicError("test op", "a string payload")
	if perr2.Unwrap() != nil {
		t.Fatalf("Unwrap of non-error payload = %v, want nil", perr2.Unwrap())
	}
	if perr2.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestStatsAdd pins the aggregation semantics: counters sum, peaks max.
func TestStatsAdd(t *testing.T) {
	var total Stats
	total.Add(Stats{Samples: 10, SoftTrips: 2, HardTrips: 0, PeakHeapBytes: 500, PeakDDNodes: 40})
	total.Add(Stats{Samples: 5, SoftTrips: 1, HardTrips: 1, PeakHeapBytes: 900, PeakDDNodes: 10})
	want := Stats{Samples: 15, SoftTrips: 3, HardTrips: 1, PeakHeapBytes: 900, PeakDDNodes: 40}
	if total != want {
		t.Fatalf("aggregate = %+v, want %+v", total, want)
	}
}
