// Package resource implements the checking runtime's resilience primitives:
// a memory-budget watchdog and the typed errors the rest of the stack uses to
// report degraded-but-clean outcomes.
//
// The paper's flow is explicitly resource-bounded — run cheap simulations,
// then a complete routine "with a timeout" — and internal/ec and internal/dd
// already bound wall-clock time and DD node counts.  Nothing bounds process
// memory, though: a DD prover on an adversarial pair can exhaust the machine
// long before its node limit trips, because nodes are only one part of the
// footprint (compute tables, interned weights and Go allocator overhead are
// the rest).  The Watchdog closes that gap at the level the operating system
// actually cares about: heap bytes.
//
// A Watchdog samples runtime.ReadMemStats plus the registered DD occupancy
// gauges on a ticker and enforces two budgets:
//
//   - Soft limit: bump a pressure epoch (observed cooperatively by every
//     dd.Package through SetPressure, forcing a DD collection and cache flush
//     at the next safe point) and trigger a Go GC, so reclaimable memory is
//     actually returned before the hard limit is at stake.
//   - Hard limit: cancel the run's context with a typed *MemoryLimitError
//     cause.  Checkers observe the cancellation through their usual
//     cooperative hooks and report a Timeout-style verdict attributed to the
//     memory budget (ec.CauseMemLimit, portfolio.StopMemLimit).
//
// Concurrency: the watchdog runs on its own goroutine and never touches DD
// state directly — dd.Package is single-threaded, so the soft response is a
// pressure epoch the owning goroutine polls at its GC safe points, and the
// occupancy gauges are atomics updated by the owner.  Everything exported
// here is safe for concurrent use.
package resource

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// MemoryLimitError is the cancellation cause installed when a Watchdog's hard
// limit trips.  Checkers surface it through ec.Result.Err / core report
// fields / portfolio reports so a memory-bounded run is attributed to the
// budget, not to a generic timeout.
type MemoryLimitError struct {
	// HeapBytes is the live heap observed at the trip.
	HeapBytes uint64
	// LimitBytes is the configured hard limit.
	LimitBytes uint64
	// DDNodes is the summed DD occupancy gauge at the trip (0 when no
	// package registered a gauge).
	DDNodes int64
}

// Error formats the budget violation.
func (e *MemoryLimitError) Error() string {
	return fmt.Sprintf("resource: memory limit exceeded (heap %s, limit %s, %d DD nodes live)",
		fmtBytes(e.HeapBytes), fmtBytes(e.LimitBytes), e.DDNodes)
}

// PanicError wraps a recovered panic from an isolated component (a prover
// goroutine, a simulation worker) into an error carrying the component name
// and the stack captured at the panic site.
type PanicError struct {
	// Op names the component that panicked (e.g. "prover dd",
	// "core.sim worker 3").
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured inside the
	// recovering defer (which runs before the frames unwind, so it includes
	// the panic origin).
	Stack []byte
}

// Error formats the panic without the stack (reports keep it short; the
// stack stays available on the struct).
func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Op, e.Value)
}

// Unwrap exposes an error panic value (e.g. *cn.NonFiniteError) to
// errors.As/Is through the wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// NewPanicError captures the current stack around a recovered value.  It must
// be called from inside the recovering deferred function so the stack still
// contains the panic origin.
func NewPanicError(op string, value any) *PanicError {
	return &PanicError{Op: op, Value: value, Stack: debug.Stack()}
}

// Config parameterizes a Watchdog.
type Config struct {
	// SoftLimit, in bytes: heap above it forces DD collections + cache
	// flushes through the pressure epoch, and a Go GC.  0 disables the soft
	// response.
	SoftLimit uint64
	// HardLimit, in bytes: heap above it cancels the run's context with a
	// *MemoryLimitError cause.  0 disables the hard response.
	HardLimit uint64
	// Interval between samples (default DefaultInterval).  Sampling calls
	// runtime.ReadMemStats, which briefly stops the world, so intervals much
	// below a millisecond are counterproductive.
	Interval time.Duration
}

// DefaultInterval is the sampling period used when Config.Interval is zero.
const DefaultInterval = 25 * time.Millisecond

// softRearmSamples is the minimum number of samples between two soft trips
// while the heap stays above the soft limit, so a large-but-legitimate
// working set does not force a DD collection on every tick.
const softRearmSamples = 8

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	return c
}

// Stats is a point-in-time snapshot of a watchdog's activity, safe to take at
// any moment (including after Stop).
type Stats struct {
	// Samples is the number of memory samples taken.
	Samples uint64
	// SoftTrips counts soft-limit responses (pressure-epoch bumps).
	SoftTrips uint64
	// HardTrips counts hard-limit cancellations (0 or 1).
	HardTrips uint64
	// PeakHeapBytes is the largest sampled live heap.
	PeakHeapBytes uint64
	// PeakDDNodes is the largest summed DD occupancy gauge sampled.
	PeakDDNodes int64
}

// Add accumulates another snapshot into s: activity counters sum, the peak
// gauges take the maximum.  Aggregating watchdogs from different runs (the
// serving layer folds every job's watchdog into its /metrics totals) this
// yields total activity plus the worst single-run peaks — peaks from
// disjoint runs must not be summed, the runs never coexisted.
func (s *Stats) Add(o Stats) {
	s.Samples += o.Samples
	s.SoftTrips += o.SoftTrips
	s.HardTrips += o.HardTrips
	if o.PeakHeapBytes > s.PeakHeapBytes {
		s.PeakHeapBytes = o.PeakHeapBytes
	}
	if o.PeakDDNodes > s.PeakDDNodes {
		s.PeakDDNodes = o.PeakDDNodes
	}
}

// Watchdog enforces a memory budget over one checking run.  Create it with
// Start; it samples until Stop is called, its context is cancelled, or the
// hard limit trips.
type Watchdog struct {
	cfg Config

	epoch     atomic.Uint64 // pressure epoch, observed via dd.Package.SetPressure
	samples   atomic.Uint64
	softTrips atomic.Uint64
	hardTrips atomic.Uint64
	peakHeap  atomic.Uint64
	peakNodes atomic.Int64

	mu     sync.Mutex
	gauges map[int]func() int64
	nextID int

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// Start launches a watchdog sampling under cfg and returns it together with a
// context derived from parent (nil means context.Background) that carries the
// watchdog (see FromContext) and is cancelled with a *MemoryLimitError cause
// when the hard limit trips.  Callers must Stop the watchdog when the run
// ends; Stop is idempotent.
func Start(parent context.Context, cfg Config) (*Watchdog, context.Context) {
	if parent == nil {
		parent = context.Background()
	}
	cfg = cfg.withDefaults()
	cctx, cancel := context.WithCancelCause(parent)
	w := &Watchdog{
		cfg:    cfg,
		gauges: make(map[int]func() int64),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	go w.loop(cctx, cancel)
	return w, With(cctx, w)
}

// Stop ends the sampling loop and waits for it to exit.  Idempotent and safe
// to call concurrently; Stats remain readable afterwards.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	<-w.doneCh
}

// Epoch returns the current pressure epoch.  A dd.Package installs this
// method as its pressure hook (SetPressure): every epoch bump forces one DD
// collection + cache flush at the package's next GC safe point.
func (w *Watchdog) Epoch() uint64 { return w.epoch.Load() }

// AddGauge registers an occupancy gauge (e.g. dd.Package.OccupancyGauge) that
// the sampling loop sums into the DD-occupancy telemetry.  The returned
// function unregisters the gauge; callers must invoke it before the gauge's
// owner is torn down.
func (w *Watchdog) AddGauge(g func() int64) (remove func()) {
	w.mu.Lock()
	id := w.nextID
	w.nextID++
	w.gauges[id] = g
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		delete(w.gauges, id)
		w.mu.Unlock()
	}
}

// Stats snapshots the watchdog counters.
func (w *Watchdog) Stats() Stats {
	return Stats{
		Samples:       w.samples.Load(),
		SoftTrips:     w.softTrips.Load(),
		HardTrips:     w.hardTrips.Load(),
		PeakHeapBytes: w.peakHeap.Load(),
		PeakDDNodes:   w.peakNodes.Load(),
	}
}

func (w *Watchdog) sumGauges() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, g := range w.gauges {
		total += g()
	}
	return total
}

func (w *Watchdog) loop(ctx context.Context, cancel context.CancelCauseFunc) {
	defer close(w.doneCh)
	// Release the derived context's resources when the loop exits without a
	// hard trip (Stop or parent cancellation).
	defer cancel(nil)
	ticker := time.NewTicker(w.cfg.Interval)
	defer ticker.Stop()
	var lastSoft uint64
	for {
		select {
		case <-w.stopCh:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap := ms.HeapAlloc
		nodes := w.sumGauges()
		n := w.samples.Add(1)
		storeMaxU64(&w.peakHeap, heap)
		storeMaxI64(&w.peakNodes, nodes)
		if hard := w.cfg.HardLimit; hard > 0 && heap >= hard {
			w.hardTrips.Add(1)
			cancel(&MemoryLimitError{HeapBytes: heap, LimitBytes: hard, DDNodes: nodes})
			return
		}
		if soft := w.cfg.SoftLimit; soft > 0 && heap >= soft {
			if lastSoft == 0 || n-lastSoft >= softRearmSamples {
				lastSoft = n
				w.softTrips.Add(1)
				w.epoch.Add(1)
				// The epoch bump only schedules DD collections; running the Go
				// collector too actually returns the freed nodes to the heap
				// the hard limit is measured against.
				runtime.GC()
			}
		}
	}
}

func storeMaxU64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func storeMaxI64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

type ctxKey struct{}

// With returns a context carrying the watchdog, so deeply nested stages
// (core → ec → dd packages) can discover the run's budget without threading
// it through every options struct.
func With(ctx context.Context, w *Watchdog) context.Context {
	return context.WithValue(ctx, ctxKey{}, w)
}

// FromContext returns the watchdog carried by the context, or nil.  A nil
// context is allowed and yields nil.
func FromContext(ctx context.Context) *Watchdog {
	if ctx == nil {
		return nil
	}
	w, _ := ctx.Value(ctxKey{}).(*Watchdog)
	return w
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
