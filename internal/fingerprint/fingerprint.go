// Package fingerprint computes canonical digests of circuits and circuit
// pairs for verdict memoization.
//
// The serving layer (internal/server) re-verifies the same compiled artifact
// thousands of times when many users run the same compilation flow; a stable
// content address of the *question* lets it answer repeats from a cache
// instead of paying the DD price again.  The digest therefore has to identify
// the checking problem, not the bytes that encoded it:
//
//   - It hashes the parsed, normalized IR (internal/circuit), never QASM
//     source text, so whitespace, comments, register names and gate-name
//     aliases (cx/CX/cnot, p/u1, ccx/toffoli, ...) cannot split the cache —
//     the parser already folds all of those into one Gate value.
//   - Within a gate, controls are hashed in sorted qubit order and SWAP
//     targets in sorted order, matching the gate's symmetries.
//   - A pair digest is invariant under swapping the two circuits, because
//     equivalence is symmetric: check(G, G') and check(G', G) are the same
//     question.
//
// The digest deliberately does NOT normalize beyond a gate's own symmetries:
// circuits that differ in gate order or decomposition hash differently even
// when unitarily equivalent — deciding *that* is the checker's job, and a
// fingerprint collision between inequivalent circuits would turn the verdict
// cache into a soundness bug.  SHA-256 keeps accidental collisions out of
// reach.
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"qcec/internal/circuit"
)

// Digest is a circuit or pair digest (SHA-256).
type Digest [sha256.Size]byte

// String returns the digest in lower-case hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// version tags the serialization layout; bump it whenever the byte layout
// below changes so stale external caches can never alias across layouts.
const version = 1

// Circuit returns the canonical digest of one circuit's normalized IR.
func Circuit(c *circuit.Circuit) Digest {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(version)
	u64(uint64(c.N))
	for _, g := range c.Gates {
		writeGate(h, u64, g)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// Pair returns the order-invariant digest of a circuit pair: Pair(a, b) ==
// Pair(b, a), and two pairs collide only if both member digests match.
func Pair(a, b *circuit.Circuit) Digest {
	da, db := Circuit(a), Circuit(b)
	// Order the member digests, not the circuits: comparing the canonical
	// serializations byte-wise gives a total order that both argument orders
	// agree on.
	if bytesLess(db, da) {
		da, db = db, da
	}
	h := sha256.New()
	h.Write(da[:])
	h.Write(db[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

func bytesLess(a, b Digest) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// writeGate serializes one gate in canonical form.  Every field is written
// through fixed-width little-endian words, so the encoding is prefix-free
// per gate (kind name length precedes the name; counts precede lists).
func writeGate(h hash.Hash, u64 func(uint64), g circuit.Gate) {
	// The gate kind is hashed by its canonical lower-case name rather than
	// the Kind integer, so the digest survives enum reordering between
	// builds of the checker.
	name := g.Kind.String()
	u64(uint64(len(name)))
	h.Write([]byte(name))

	// SWAP is symmetric in its two targets; hash them in sorted order so
	// `swap a,b` and `swap b,a` collide on purpose.
	t1, t2 := g.Target, g.Target2
	if g.Kind == circuit.SWAP && t2 < t1 {
		t1, t2 = t2, t1
	}
	u64(uint64(int64(t1)))
	u64(uint64(int64(t2)))

	// Controls in sorted qubit order (a control set is a set); polarity is
	// part of the element.
	ctls := g.Controls
	if !controlsSorted(ctls) {
		ctls = append([]circuit.Control(nil), ctls...)
		sortControls(ctls)
	}
	u64(uint64(len(ctls)))
	for _, c := range ctls {
		u64(uint64(int64(c.Qubit)))
		if c.Neg {
			u64(1)
		} else {
			u64(0)
		}
	}

	u64(uint64(len(g.Params)))
	for _, p := range g.Params {
		u64(canonicalFloatBits(p))
	}

	if g.Kind == circuit.Custom {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				u64(canonicalFloatBits(real(g.Mat[i][j])))
				u64(canonicalFloatBits(imag(g.Mat[i][j])))
			}
		}
	}
}

// canonicalFloatBits returns the IEEE-754 bits of f with the two
// representation artifacts folded out: -0 hashes as +0 (they are the same
// rotation angle) and every NaN payload hashes as one canonical NaN.
func canonicalFloatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

func controlsSorted(cs []circuit.Control) bool {
	for i := 1; i < len(cs); i++ {
		if cs[i].Qubit < cs[i-1].Qubit {
			return false
		}
	}
	return true
}

func sortControls(cs []circuit.Control) {
	for i := 1; i < len(cs); i++ { // insertion sort; control lists are tiny
		for j := i; j > 0 && cs[j].Qubit < cs[j-1].Qubit; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
