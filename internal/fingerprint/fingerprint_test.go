package fingerprint

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

func parse(t *testing.T, src string) *circuit.Circuit {
	t.Helper()
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return prog.Circuit
}

func TestPairOrderInvariance(t *testing.T) {
	a := circuit.New(3, "a").H(0).CX(0, 1).T(2)
	b := circuit.New(3, "b").X(2).CCX(0, 1, 2)
	if Pair(a, b) != Pair(b, a) {
		t.Errorf("Pair(a, b) != Pair(b, a)")
	}
	if Pair(a, a) == Pair(a, b) {
		t.Errorf("Pair(a, a) collides with Pair(a, b)")
	}
	// The pair digest must separate (a, b) from (a, a) and (b, b) even
	// though all use the same member set sizes.
	if Pair(a, b) == Pair(b, b) {
		t.Errorf("Pair(a, b) collides with Pair(b, b)")
	}
}

func TestWhitespaceAndCommentInsensitivity(t *testing.T) {
	clean := "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"
	noisy := "// a GHZ prelude\nOPENQASM 2.0;\n\n\nqreg q[2];\n   h    q[0] ;\n// entangle\n\tcx q[0] , q[1];\n"
	if Circuit(parse(t, clean)) != Circuit(parse(t, noisy)) {
		t.Errorf("whitespace/comment variants hash differently")
	}
}

func TestGateNameAliasInsensitivity(t *testing.T) {
	aliases := [][2]string{
		{"cx q[0],q[1];", "CX q[0],q[1];"},
		{"cx q[0],q[1];", "cnot q[0],q[1];"},
		{"p(0.5) q[0];", "u1(0.5) q[0];"},
		{"u3(0.1,0.2,0.3) q[0];", "u(0.1,0.2,0.3) q[0];"},
		{"ccx q[0],q[1],q[2];", "toffoli q[0],q[1],q[2];"},
		{"cswap q[0],q[1],q[2];", "fredkin q[0],q[1],q[2];"},
		{"x q[1];", "X q[1];"},
	}
	for _, pair := range aliases {
		pre := "OPENQASM 2.0;\nqreg q[3];\n"
		da := Circuit(parse(t, pre+pair[0]))
		db := Circuit(parse(t, pre+pair[1]))
		if da != db {
			t.Errorf("aliases %q and %q hash differently", pair[0], pair[1])
		}
	}
}

func TestGateSymmetries(t *testing.T) {
	// SWAP targets are unordered.
	a := circuit.New(2, "a").Swap(0, 1)
	b := circuit.New(2, "b").Swap(1, 0)
	if Circuit(a) != Circuit(b) {
		t.Errorf("swap a,b and swap b,a hash differently")
	}
	// Control sets are unordered.
	c1 := circuit.New(3, "c1").MCX([]int{0, 1}, 2)
	c2 := circuit.New(3, "c2").MCX([]int{1, 0}, 2)
	if Circuit(c1) != Circuit(c2) {
		t.Errorf("control order changes the digest")
	}
	// ... but control polarity is part of the element.
	c3 := circuit.New(3, "c3").MCXNeg([]circuit.Control{{Qubit: 0, Neg: true}, {Qubit: 1}}, 2)
	if Circuit(c1) == Circuit(c3) {
		t.Errorf("negative control collides with positive control")
	}
	// -0.0 and +0.0 are the same rotation angle.
	r1 := circuit.New(1, "r1").RZ(0.0, 0)
	r2 := circuit.New(1, "r2").RZ(math.Copysign(0, -1), 0)
	if Circuit(r1) != Circuit(r2) {
		t.Errorf("rz(-0.0) and rz(0.0) hash differently")
	}
}

func TestSemanticDifferencesSplit(t *testing.T) {
	base := circuit.New(2, "base").H(0).CX(0, 1)
	cases := map[string]*circuit.Circuit{
		"extra gate":      circuit.New(2, "x").H(0).CX(0, 1).X(0),
		"different order": circuit.New(2, "o").CX(0, 1).H(0),
		"other target":    circuit.New(2, "t").H(1).CX(0, 1),
		"other kind":      circuit.New(2, "k").H(0).CZ(0, 1),
		"other param":     circuit.New(2, "p").H(0).CX(0, 1).RZ(1e-9, 0),
	}
	seen := map[Digest]string{Circuit(base): "base"}
	for name, c := range cases {
		d := Circuit(c)
		if prev, dup := seen[d]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[d] = name
	}
	// Gate-boundary ambiguity: [h, x] on one qubit vs [hx-as-custom] must not
	// alias through the serialization (prefix-freedom per gate).
	g1 := circuit.New(1, "g1").H(0).X(0)
	g2 := circuit.New(1, "g2").H(0)
	if Circuit(g1) == Circuit(g2) {
		t.Errorf("gate-count difference does not change the digest")
	}
}

// TestSeedSetDistinct loads every seed circuit shipped in circuits/ and
// requires pairwise distinct digests — the property the verdict cache's
// soundness rests on.
func TestSeedSetDistinct(t *testing.T) {
	dir := filepath.Join("..", "..", "circuits")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read seed dir: %v", err)
	}
	digests := map[Digest]string{}
	loaded := 0
	for _, e := range entries {
		var c *circuit.Circuit
		src, readErr := os.ReadFile(filepath.Join(dir, e.Name()))
		if readErr != nil {
			t.Fatalf("read %s: %v", e.Name(), readErr)
		}
		switch {
		case strings.HasSuffix(e.Name(), ".qasm"):
			prog, err := qasm.Parse(string(src))
			if err != nil {
				t.Fatalf("parse %s: %v", e.Name(), err)
			}
			c = prog.Circuit
		case strings.HasSuffix(e.Name(), ".real"):
			rf, err := revlib.Parse(strings.NewReader(string(src)))
			if err != nil {
				t.Fatalf("parse %s: %v", e.Name(), err)
			}
			c = rf.Circuit
		default:
			continue
		}
		d := Circuit(c)
		if prev, dup := digests[d]; dup {
			t.Errorf("seed circuits %s and %s share a digest", e.Name(), prev)
		}
		digests[d] = e.Name()
		loaded++
	}
	if loaded < 3 {
		t.Fatalf("only %d seed circuits loaded; expected the shipped set", loaded)
	}
}

func TestDigestStableAcrossCalls(t *testing.T) {
	c := circuit.New(4, "c").H(0).CX(0, 1).CCX(0, 1, 2).RZ(0.25, 3)
	if Circuit(c) != Circuit(c) {
		t.Errorf("digest not deterministic")
	}
	if got, want := len(Circuit(c).String()), 64; got != want {
		t.Errorf("hex digest length = %d, want %d", got, want)
	}
}
