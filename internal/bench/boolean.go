package bench

import (
	"fmt"
	"math/bits"
	"math/rand"

	"qcec/internal/circuit"
	"qcec/internal/synth"
)

// The paper's remaining reversible benchmarks are Bennett embeddings of
// irreversible Boolean functions on in+out lines.  The generators below
// regenerate circuits with the same I/O signatures and function character
// (counting, arithmetic, comparison, random logic) as the RevLib originals;
// DESIGN.md documents this substitution.

// RD returns the bit-counting benchmark rdXY: in inputs, out = popcount,
// with out = ceil(log2(in+1)) output lines (rd84: 8 -> 4, n = 12).
func RD(in int) (*circuit.Circuit, error) {
	out := bits.Len(uint(in))
	f := func(x uint64) uint64 { return uint64(bits.OnesCount64(x)) }
	return synth.Embed(f, in, out, fmt.Sprintf("rd%d%d", in, out))
}

// FiveXP1 returns the 5xp1 arithmetic benchmark: y = 5x + 1 on 7 input and
// 10 output lines (n = 17).
func FiveXP1() (*circuit.Circuit, error) {
	return synth.Embed(func(x uint64) uint64 { return 5*x + 1 }, 7, 10, "5xp1")
}

// Sqr returns the squaring benchmark sqrN: y = x^2 on in inputs and 2*in
// outputs (sqr6: n = 18).
func Sqr(in int) (*circuit.Circuit, error) {
	return synth.Embed(func(x uint64) uint64 { return x * x }, in, 2*in, fmt.Sprintf("sqr%d", in))
}

// Root returns the integer-square-root benchmark: y = floor(sqrt(x)) on 8
// input and 5 output lines (root_255: n = 13).
func Root() (*circuit.Circuit, error) {
	f := func(x uint64) uint64 {
		var r uint64
		for (r+1)*(r+1) <= x {
			r++
		}
		return r
	}
	return synth.Embed(f, 8, 5, "root")
}

// Majority returns a 9-input majority benchmark (the max46_240 slot:
// 9 -> 1, n = 10).
func Majority(in int) (*circuit.Circuit, error) {
	f := func(x uint64) uint64 {
		if bits.OnesCount64(x) > in/2 {
			return 1
		}
		return 0
	}
	return synth.Embed(f, in, 1, fmt.Sprintf("maj%d", in))
}

// Comparator returns an unsigned comparator: the in inputs split into two
// halves a and b, outputs (a<b, a==b, a>b) — the cm85a_209 slot
// (11 -> 3, n = 14, with an odd leftover bit joining a).
func Comparator(in int) (*circuit.Circuit, error) {
	hi := (in + 1) / 2
	f := func(x uint64) uint64 {
		a := x & (1<<uint(hi) - 1)
		b := x >> uint(hi)
		switch {
		case a < b:
			return 0b001
		case a == b:
			return 0b010
		default:
			return 0b100
		}
	}
	return synth.Embed(f, in, 3, fmt.Sprintf("cmp%d", in))
}

// ModExp returns y = g^x mod m truncated to out bits — dense random-looking
// arithmetic logic filling the dc2_222 slot (8 -> 7, n = 15).
func ModExp(in, out int, g, m uint64) (*circuit.Circuit, error) {
	f := func(x uint64) uint64 {
		r := uint64(1) % m
		base := g % m
		for e := x; e > 0; e >>= 1 {
			if e&1 == 1 {
				r = r * base % m
			}
			base = base * base % m
		}
		return r & (1<<uint(out) - 1)
	}
	return synth.Embed(f, in, out, fmt.Sprintf("modexp%d_%d", in, out))
}

// SumMod returns y = popcount(x) mod 2^out — the sqn_258 slot (7 -> 3,
// n = 10).
func SumMod(in, out int) (*circuit.Circuit, error) {
	f := func(x uint64) uint64 {
		return uint64(bits.OnesCount64(x)) & (1<<uint(out) - 1)
	}
	return synth.Embed(f, in, out, fmt.Sprintf("sum%dmod%d", in, out))
}

// LeadingZeros returns y = number of leading zeros of the in-bit input —
// sparse priority-encoder logic filling the pcler8_248 slot
// (16 -> 5, n = 21).
func LeadingZeros(in int) (*circuit.Circuit, error) {
	out := bits.Len(uint(in))
	f := func(x uint64) uint64 {
		return uint64(bits.LeadingZeros64(x) - (64 - in))
	}
	return synth.Embed(f, in, out, fmt.Sprintf("clz%d", in))
}

// RandomLogic returns a dense random truth table embedding (deterministic
// per seed) — generic combinational logic of a given signature.
func RandomLogic(in, out int, seed int64) (*circuit.Circuit, error) {
	rng := rand.New(rand.NewSource(seed))
	table := make([]uint64, 1<<uint(in))
	mask := uint64(1)<<uint(out) - 1
	for i := range table {
		table[i] = rng.Uint64() & mask
	}
	return synth.Embed(func(x uint64) uint64 { return table[x] }, in, out, fmt.Sprintf("rnd%d_%d", in, out))
}
