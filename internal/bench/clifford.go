package bench

import (
	"fmt"
	"math"
	"math/rand"

	"qcec/internal/circuit"
)

// RandomClifford returns a seeded random Clifford-only circuit on n qubits —
// the instance class of the stabilizer fast path's evaluation.  The mix is
// CX-heavy (entangling gates dominate compiled Clifford netlists) and
// includes rotation-form gates at exact multiples of π/2 (rz, rx, ry) so the
// gate-set analyzer's angle snapping is exercised, not just the named kinds.
func RandomClifford(n, gates int, seed int64) *circuit.Circuit {
	if n < 1 {
		panic(fmt.Sprintf("bench: unsupported Clifford size %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n, fmt.Sprintf("clifford-%d", n))
	two := func() (int, int) {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		return a, b
	}
	halfTurns := []float64{math.Pi / 2, -math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		switch r := rng.Intn(16); {
		case r < 6 && n > 1: // CX, weighted heaviest
			a, b := two()
			c.CX(a, b)
		case r < 7 && n > 1:
			a, b := two()
			c.CZ(a, b)
		case r < 8 && n > 1:
			a, b := two()
			c.Swap(a, b)
		case r < 10:
			c.H(q)
		case r < 11:
			c.S(q)
		case r < 12:
			c.Sdg(q)
		case r < 13:
			c.SX(q)
		case r < 14:
			c.RZ(halfTurns[rng.Intn(len(halfTurns))], q)
		case r < 15:
			c.RX(halfTurns[rng.Intn(len(halfTurns))], q)
		default:
			c.RY(halfTurns[rng.Intn(len(halfTurns))], q)
		}
	}
	return c
}
