package bench

import (
	"math"
	"math/bits"
	"math/cmplx"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/sim"
	"qcec/internal/synth"
)

func TestGroverStructure(t *testing.T) {
	c := Grover(4, 11)
	if c.N != 5 {
		t.Fatalf("Grover(4) register = %d", c.N)
	}
	iters := int(math.Floor(math.Pi / 4 * 4)) // sqrt(16) = 4
	// Gates per iteration: oracle (2*zeros + 1) + diffusion (4k + 1); plus k
	// initial Hadamards.
	if c.NumGates() < iters*10 {
		t.Errorf("Grover(4) suspiciously small: %d gates", c.NumGates())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGroverAmplifiesMarked(t *testing.T) {
	marked := uint64(5)
	c := Grover(4, marked)
	s := sim.New(c.N)
	st := s.Run(c, 0)
	amp := s.P.Amplitude(st, marked) // ancilla 0, search reg = marked
	prob := real(amp)*real(amp) + imag(amp)*imag(amp)
	if prob < 0.9 {
		t.Fatalf("Grover found marked element with probability %g", prob)
	}
}

func TestQFTGateCount(t *testing.T) {
	for _, n := range []int{4, 16, 48, 64} {
		c := QFT(n)
		want := n * (n + 1) / 2
		if c.NumGates() != want {
			t.Errorf("QFT(%d) = %d gates, want %d (paper Table I)", n, c.NumGates(), want)
		}
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|0> = uniform superposition with amplitude 2^{-n/2}.
	n := 4
	c := QFT(n)
	s := sim.New(n)
	st := s.Run(c, 0)
	want := 1 / math.Sqrt(16)
	for i := uint64(0); i < 16; i++ {
		if a := s.P.Amplitude(st, i); cmplx.Abs(a-complex(want, 0)) > 1e-9 {
			t.Fatalf("QFT|0> amplitude[%d] = %v", i, a)
		}
	}
	// QFT|1> has phases e^{2 pi i k/16}/4; without the final swap layer
	// (matching the paper's gate counts) the output register is
	// bit-reversed.
	st1 := s.Run(c, 1)
	bitrev := func(k uint64) uint64 {
		var r uint64
		for b := 0; b < n; b++ {
			if k&(1<<uint(b)) != 0 {
				r |= 1 << uint(n-1-b)
			}
		}
		return r
	}
	for k := uint64(0); k < 16; k++ {
		wantAmp := cmplx.Exp(complex(0, 2*math.Pi*float64(k)/16)) / 4
		if a := s.P.Amplitude(st1, bitrev(k)); cmplx.Abs(a-wantAmp) > 1e-9 {
			t.Fatalf("QFT|1> amplitude[rev(%d)] = %v, want %v", k, a, wantAmp)
		}
	}
}

func TestSupremacyDeterministicPerSeed(t *testing.T) {
	a := Supremacy(2, 2, 8, 7)
	b := Supremacy(2, 2, 8, 7)
	if a.NumGates() != b.NumGates() {
		t.Fatal("supremacy generator not deterministic")
	}
	for i := range a.Gates {
		if !a.Gates[i].Equal(b.Gates[i]) {
			t.Fatal("supremacy gates differ across identical seeds")
		}
	}
	c := Supremacy(2, 2, 8, 8)
	same := a.NumGates() == c.NumGates()
	if same {
		for i := range a.Gates {
			if !a.Gates[i].Equal(c.Gates[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestSupremacyEntangles(t *testing.T) {
	c := Supremacy(2, 2, 10, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := sim.New(4)
	st := s.Run(c, 0)
	if math.Abs(s.P.Norm(st)-1) > 1e-8 {
		t.Fatalf("norm = %g", s.P.Norm(st))
	}
	// A supremacy state should not be a computational basis state.
	maxP := 0.0
	for i := uint64(0); i < 16; i++ {
		a := s.P.Amplitude(st, i)
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > maxP {
			maxP = p
		}
	}
	if maxP > 0.9 {
		t.Errorf("supremacy output looks classical (max prob %g)", maxP)
	}
}

func TestChemistrySizes(t *testing.T) {
	c22 := Chemistry(2, 2, 2)
	if c22.N != 8 {
		t.Errorf("Chemistry(2,2) on %d qubits, want 8 (paper: n=8)", c22.N)
	}
	c33 := Chemistry(3, 3, 1)
	if c33.N != 18 {
		t.Errorf("Chemistry(3,3) on %d qubits, want 18 (paper: n=18)", c33.N)
	}
	if err := c22.Validate(); err != nil {
		t.Fatal(err)
	}
	s := sim.New(8)
	st := s.Run(c22, 0b10011010)
	if math.Abs(s.P.Norm(st)-1) > 1e-8 {
		t.Fatalf("chemistry norm = %g", s.P.Norm(st))
	}
}

func TestHWBPermutation(t *testing.T) {
	c, err := HWB(5)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := synth.PermutationOf(c)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 32; x++ {
		w := uint64(bits.OnesCount64(x)) % 5
		want := ((x << w) | (x >> (5 - w))) & 31
		if w == 0 {
			want = x
		}
		if perm[x] != want {
			t.Fatalf("hwb5(%05b) = %05b, want %05b", x, perm[x], want)
		}
	}
}

func TestRandomReversibleIsPermutation(t *testing.T) {
	c, err := RandomReversible(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := synth.PermutationOf(c)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, v := range perm {
		if seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
	if c.NumGates() < 32 {
		t.Errorf("random reversible suspiciously small: %d gates", c.NumGates())
	}
}

func TestIncrement(t *testing.T) {
	c := Increment(6, 1)
	if c.NumGates() != 6 {
		t.Fatalf("Increment(6,1) = %d gates", c.NumGates())
	}
	for x := uint64(0); x < 64; x++ {
		y, err := synth.EvalReversible(c, x)
		if err != nil {
			t.Fatal(err)
		}
		if y != (x+1)%64 {
			t.Fatalf("inc(%d) = %d", x, y)
		}
	}
	c3 := Increment(4, 3)
	y, _ := synth.EvalReversible(c3, 0)
	if y != 3 {
		t.Fatalf("inc^3(0) = %d", y)
	}
}

func TestBooleanBenchmarkSignatures(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*circuit.Circuit, error)
		wantN int
	}{
		{"rd84", func() (*circuit.Circuit, error) { return RD(8) }, 12},
		{"5xp1", FiveXP1, 17},
		{"sqr6", func() (*circuit.Circuit, error) { return Sqr(6) }, 18},
		{"root", Root, 13},
		{"maj9", func() (*circuit.Circuit, error) { return Majority(9) }, 10},
		{"cmp11", func() (*circuit.Circuit, error) { return Comparator(11) }, 14},
		{"modexp8_7", func() (*circuit.Circuit, error) { return ModExp(8, 7, 3, 113) }, 15},
		{"sum7mod8", func() (*circuit.Circuit, error) { return SumMod(7, 3) }, 10},
		{"clz16", func() (*circuit.Circuit, error) { return LeadingZeros(16) }, 21},
	}
	for _, tc := range cases {
		c, err := tc.build()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if c.N != tc.wantN {
			t.Errorf("%s: n = %d, want %d (paper Table I)", tc.name, c.N, tc.wantN)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if c.NumGates() == 0 {
			t.Errorf("%s: empty circuit", tc.name)
		}
	}
}

func TestRDFunctional(t *testing.T) {
	c, err := RD(4)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 16; x++ {
		y, err := synth.EvalReversible(c, x)
		if err != nil {
			t.Fatal(err)
		}
		if got := y >> 4; got != uint64(bits.OnesCount64(x)) {
			t.Fatalf("rd4(%04b) = %d", x, got)
		}
	}
}

func TestFiveXP1Functional(t *testing.T) {
	c, err := FiveXP1()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{0, 1, 17, 100, 127} {
		y, err := synth.EvalReversible(c, x)
		if err != nil {
			t.Fatal(err)
		}
		if got := y >> 7; got != 5*x+1 {
			t.Fatalf("5xp1(%d) = %d, want %d", x, got, 5*x+1)
		}
	}
}

func TestRootFunctional(t *testing.T) {
	c, err := Root()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{0, 1, 4, 15, 16, 100, 255} {
		y, err := synth.EvalReversible(c, x)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(math.Sqrt(float64(x)))
		if got := y >> 8; got != want {
			t.Fatalf("root(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLeadingZerosFunctional(t *testing.T) {
	c, err := LeadingZeros(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{0, 1, 128, 255, 16} {
		y, err := synth.EvalReversible(c, x)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(bits.LeadingZeros8(uint8(x)))
		if got := y >> 8; got != want {
			t.Fatalf("clz8(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	a, err := RandomLogic(5, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomLogic(5, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() {
		t.Fatal("random logic not deterministic per seed")
	}
}

func TestPaperExample(t *testing.T) {
	c := PaperExample()
	if c.N != 3 || c.NumGates() != 8 {
		t.Fatalf("paper example: n=%d gates=%d, want 3 and 8", c.N, c.NumGates())
	}
	if c.Gates[0].Kind != circuit.H || c.Gates[0].Target != 1 {
		t.Error("first gate must be H on the middle qubit (paper Example 4)")
	}
	for _, g := range c.Gates {
		if g.Kind != circuit.H && !(g.Kind == circuit.X && len(g.Controls) == 1) {
			t.Errorf("paper example contains non-H/CX gate %v", g)
		}
	}
}

func TestBernsteinVaziraniRecoversString(t *testing.T) {
	for _, s := range []uint64{0, 1, 0b1011, 0b11111} {
		n := 5
		c := BernsteinVazirani(n, s)
		sim := sim.New(c.N)
		st := sim.Run(c, 0)
		// Output must be |0>|s> deterministically (ancilla restored to 0).
		amp := sim.P.Amplitude(st, s)
		if p := real(amp)*real(amp) + imag(amp)*imag(amp); math.Abs(p-1) > 1e-9 {
			t.Fatalf("BV(%b): P[|s>] = %g", s, p)
		}
	}
}

func TestDeutschJozsa(t *testing.T) {
	n := 4
	s := sim.New(n + 1)
	constant := DeutschJozsa(n, true)
	st := s.Run(constant, 0)
	amp := s.P.Amplitude(st, 0) // all-zero data register, ancilla restored
	if p := real(amp)*real(amp) + imag(amp)*imag(amp); math.Abs(p-1) > 1e-9 {
		t.Fatalf("constant DJ: P[|0...0>] = %g", p)
	}
	balanced := DeutschJozsa(n, false)
	st = s.Run(balanced, 0)
	amp = s.P.Amplitude(st, 0)
	if p := real(amp)*real(amp) + imag(amp)*imag(amp); p > 1e-9 {
		t.Fatalf("balanced DJ: P[|0...0>] = %g, want 0", p)
	}
}

func TestGHZ(t *testing.T) {
	c := GHZ(4)
	s := sim.New(4)
	st := s.Run(c, 0)
	a0 := s.P.Amplitude(st, 0)
	a15 := s.P.Amplitude(st, 15)
	if cmplx.Abs(a0-complex(1/math.Sqrt2, 0)) > 1e-9 || cmplx.Abs(a15-complex(1/math.Sqrt2, 0)) > 1e-9 {
		t.Fatalf("GHZ amplitudes: %v, %v", a0, a15)
	}
}

func TestOracleValidation(t *testing.T) {
	for _, f := range []func(){
		func() { BernsteinVazirani(0, 0) },
		func() { BernsteinVazirani(3, 8) },
		func() { DeutschJozsa(0, true) },
		func() { GHZ(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid oracle parameters did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPhaseEstimationExact(t *testing.T) {
	bits := 4
	for _, k := range []uint64{0, 1, 5, 11, 15} {
		phase := float64(k) / 16
		c := PhaseEstimation(bits, phase)
		s := sim.New(c.N)
		st := s.Run(c, 0)
		want := k | 1<<uint(bits) // counting register = k, target restored to |1>
		amp := s.P.Amplitude(st, want)
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		if math.Abs(p-1) > 1e-8 {
			t.Fatalf("QPE(%d/16): P[|%0*b>] = %g\nstate: %s", k, c.N, want, p, s.P.FormatState(st, 6))
		}
	}
}

func TestPhaseEstimationInexact(t *testing.T) {
	// A phase that is not a multiple of 1/2^bits concentrates near the
	// closest estimates rather than landing exactly.
	bits := 4
	c := PhaseEstimation(bits, 0.3) // 0.3*16 = 4.8
	s := sim.New(c.N)
	st := s.Run(c, 0)
	pOf := func(k uint64) float64 {
		amp := s.P.Amplitude(st, k|1<<uint(bits))
		return real(amp)*real(amp) + imag(amp)*imag(amp)
	}
	if pOf(5)+pOf(4) < 0.6 {
		t.Errorf("mass near 4.8 too small: P[4]=%g P[5]=%g", pOf(4), pOf(5))
	}
}
