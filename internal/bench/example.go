package bench

import "qcec/internal/circuit"

// PaperExample returns a 3-qubit, 8-gate circuit of Hadamard and CNOT gates
// in the style of the paper's Fig. 1b worked example.  The paper's figure is
// not reproduced verbatim in the text; this instance matches everything the
// text states (m = 8 gates, n = 3 qubits, only H and CNOT, the first
// Hadamard acting on the middle qubit) and contains non-adjacent CNOTs so
// that mapping it to a linear architecture inserts SWAP gates exactly as in
// Fig. 2.
func PaperExample() *circuit.Circuit {
	c := circuit.New(3, "fig1b")
	c.H(1)
	c.CX(1, 0)
	c.CX(2, 0) // non-adjacent on a line: forces a SWAP during mapping
	c.H(2)
	c.CX(0, 2) // non-adjacent again
	c.H(0)
	c.CX(1, 2)
	c.H(1)
	return c
}
