// Package bench generates the benchmark circuit families of the paper's
// evaluation (Sec. V): Grover's algorithm, the Quantum Fourier Transform,
// quantum-supremacy-style random grid circuits, Trotterized
// quantum-chemistry lattice models, and the RevLib reversible-function class
// (hidden-weighted-bit, random reversible functions, counting/arithmetic
// functions), all regenerated from first principles.
//
// Every generator is deterministic (seeded where randomized), so the
// experiment harness produces reproducible tables.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"qcec/internal/circuit"
	"qcec/internal/synth"
)

// Grover returns Grover's search for a marked element on k search qubits
// (plus one idle workspace line that decomposition may borrow, mirroring the
// padded registers of the paper's Grover instances).  The number of
// iterations is the optimal floor(pi/4 * sqrt(2^k)).
func Grover(k int, marked uint64) *circuit.Circuit {
	if k < 2 || k > 62 {
		panic(fmt.Sprintf("bench: unsupported Grover size %d", k))
	}
	if marked >= uint64(1)<<uint(k) {
		panic(fmt.Sprintf("bench: marked element %d out of range", marked))
	}
	n := k + 1
	c := circuit.New(n, fmt.Sprintf("grover-%d", k))
	iters := int(math.Floor(math.Pi / 4 * math.Sqrt(math.Exp2(float64(k)))))
	if iters < 1 {
		iters = 1
	}
	for q := 0; q < k; q++ {
		c.H(q)
	}
	controls := make([]int, k-1)
	for i := range controls {
		controls[i] = i
	}
	mcz := func() {
		c.MCZ(controls, k-1)
	}
	for it := 0; it < iters; it++ {
		// Oracle: phase-flip the marked element.
		for q := 0; q < k; q++ {
			if marked&(1<<uint(q)) == 0 {
				c.X(q)
			}
		}
		mcz()
		for q := 0; q < k; q++ {
			if marked&(1<<uint(q)) == 0 {
				c.X(q)
			}
		}
		// Diffusion: reflect about the uniform superposition.
		for q := 0; q < k; q++ {
			c.H(q)
		}
		for q := 0; q < k; q++ {
			c.X(q)
		}
		mcz()
		for q := 0; q < k; q++ {
			c.X(q)
		}
		for q := 0; q < k; q++ {
			c.H(q)
		}
	}
	return c
}

// QFT returns the n-qubit Quantum Fourier Transform without the final
// bit-reversal swaps, matching the paper's gate counts
// (|QFT 64| = 64*65/2 = 2080).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("qft-%d", n))
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			c.CPhase(math.Pi/math.Exp2(float64(i-j)), j, i)
		}
	}
	return c
}

// Supremacy returns a quantum-supremacy-style random circuit on a
// rows x cols grid: cycles alternate a layer of random single-qubit gates
// (sqrt(X), sqrt(Y) or T) with a layer of CZ gates along one of four
// cyclically chosen grid directions.
func Supremacy(rows, cols, cycles int, seed int64) *circuit.Circuit {
	n := rows * cols
	if n < 2 {
		panic("bench: supremacy grid too small")
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n, fmt.Sprintf("supremacy-%dx%d-%d", rows, cols, cycles))
	id := func(r, cc int) int { return r*cols + cc }
	sqrtY := [2][2]complex128{
		{complex(0.5, 0.5), complex(-0.5, -0.5)},
		{complex(0.5, 0.5), complex(0.5, 0.5)},
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for cyc := 0; cyc < cycles; cyc++ {
		for q := 0; q < n; q++ {
			switch rng.Intn(3) {
			case 0:
				c.SX(q)
			case 1:
				c.Add(circuit.Gate{Kind: circuit.Custom, Target: q, Target2: -1, Mat: sqrtY, Label: "sy"})
			case 2:
				c.T(q)
			}
		}
		// CZ layer: direction cycles through E/W column pairs and N/S row
		// pairs with alternating offsets.
		switch cyc % 4 {
		case 0:
			for r := 0; r < rows; r++ {
				for cc := 0; cc+1 < cols; cc += 2 {
					c.CZ(id(r, cc), id(r, cc+1))
				}
			}
		case 1:
			for r := 0; r+1 < rows; r += 2 {
				for cc := 0; cc < cols; cc++ {
					c.CZ(id(r, cc), id(r+1, cc))
				}
			}
		case 2:
			for r := 0; r < rows; r++ {
				for cc := 1; cc+1 < cols; cc += 2 {
					c.CZ(id(r, cc), id(r, cc+1))
				}
			}
		case 3:
			for r := 1; r+1 < rows; r += 2 {
				for cc := 0; cc < cols; cc++ {
					c.CZ(id(r, cc), id(r+1, cc))
				}
			}
		}
	}
	return c
}

// Chemistry returns a Trotterized 2-D lattice-model circuit in the style of
// the paper's "Quantum Chemistry m x n" benchmarks: rows x cols sites with
// two spin orbitals each (n = 2*rows*cols qubits), evolving hopping
// (XX+YY) terms along lattice edges, on-site (ZZ) interaction between the
// two spins of each site, and a chemical-potential RZ per orbital, repeated
// for the given number of Trotter steps.
func Chemistry(rows, cols, steps int) *circuit.Circuit {
	n := 2 * rows * cols
	if n < 2 {
		panic("bench: chemistry lattice too small")
	}
	c := circuit.New(n, fmt.Sprintf("chemistry-%dx%d", rows, cols))
	orbital := func(r, cc, spin int) int { return 2*(r*cols+cc) + spin }
	rzz := func(a, b int, theta float64) {
		c.CX(a, b)
		c.RZ(theta, b)
		c.CX(a, b)
	}
	xxPlusYY := func(a, b int, theta float64) {
		// exp(-i theta (XX+YY)/2), decomposed per Pauli basis change.
		c.H(a)
		c.H(b)
		rzz(a, b, theta)
		c.H(a)
		c.H(b)
		c.RX(math.Pi/2, a)
		c.RX(math.Pi/2, b)
		rzz(a, b, theta)
		c.RX(-math.Pi/2, a)
		c.RX(-math.Pi/2, b)
	}
	const (
		tHop = 0.2  // hopping amplitude
		uInt = 0.5  // on-site interaction
		mu   = 0.13 // chemical potential
	)
	for s := 0; s < steps; s++ {
		for spin := 0; spin < 2; spin++ {
			for r := 0; r < rows; r++ {
				for cc := 0; cc < cols; cc++ {
					if cc+1 < cols {
						xxPlusYY(orbital(r, cc, spin), orbital(r, cc+1, spin), tHop)
					}
					if r+1 < rows {
						xxPlusYY(orbital(r, cc, spin), orbital(r+1, cc, spin), tHop)
					}
				}
			}
		}
		for r := 0; r < rows; r++ {
			for cc := 0; cc < cols; cc++ {
				rzz(orbital(r, cc, 0), orbital(r, cc, 1), uInt)
			}
		}
		for q := 0; q < n; q++ {
			c.RZ(mu, q)
		}
	}
	return c
}

// HWB returns the hidden-weighted-bit benchmark on n bits: the permutation
// rotating x left by popcount(x) — the function class of the paper's
// hwb9_119 instance.
func HWB(n int) (*circuit.Circuit, error) {
	size := uint64(1) << uint(n)
	perm := make([]uint64, size)
	mask := size - 1
	for x := uint64(0); x < size; x++ {
		w := popcount(x) % uint64(n)
		perm[x] = ((x << w) | (x >> (uint64(n) - w))) & mask
	}
	// The weight-0 case rotates by 0; the formula above would shift by n,
	// which Go handles as defined behaviour on uint64 but make it explicit:
	perm[0] = 0
	c, err := synth.Permutation(perm, n, fmt.Sprintf("hwb%d", n))
	if err != nil {
		return nil, err
	}
	return c, nil
}

func popcount(x uint64) uint64 {
	var c uint64
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// RandomReversible returns a transformation-based synthesis of a uniformly
// random n-bit permutation — the function class of the paper's urf ("unique
// reversible function") instances, whose synthesized netlists are the
// largest |G| entries of Table I.
func RandomReversible(n int, seed int64) (*circuit.Circuit, error) {
	rng := rand.New(rand.NewSource(seed))
	size := 1 << uint(n)
	perm := make([]uint64, size)
	for i := range perm {
		perm[i] = uint64(i)
	}
	rng.Shuffle(size, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return synth.Permutation(perm, n, fmt.Sprintf("urf%d-like", n))
}

// Increment returns reps repetitions of the n-bit increment (x -> x+1) as
// the classic MCT ripple chain — the function class of inc_237.
func Increment(n, reps int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("inc%d", n))
	for r := 0; r < reps; r++ {
		for t := n - 1; t >= 0; t-- {
			controls := make([]int, t)
			for i := range controls {
				controls[i] = i
			}
			if t == 0 {
				c.X(0)
			} else {
				c.MCX(controls, t)
			}
		}
	}
	return c
}
