package bench

import (
	"fmt"
	"math"

	"qcec/internal/circuit"
)

// BernsteinVazirani returns the Bernstein-Vazirani circuit recovering the
// hidden bit string s on n data qubits plus one oracle ancilla (qubit n).
// Running it on |0...0> yields |1>|s> deterministically, which the tests
// exploit.
func BernsteinVazirani(n int, s uint64) *circuit.Circuit {
	if n < 1 || n > 62 {
		panic(fmt.Sprintf("bench: unsupported BV size %d", n))
	}
	if s >= uint64(1)<<uint(n) {
		panic(fmt.Sprintf("bench: hidden string %d out of range", s))
	}
	c := circuit.New(n+1, fmt.Sprintf("bv-%d", n))
	c.X(n).H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if s&(1<<uint(q)) != 0 {
			c.CX(q, n)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.H(n).X(n)
	return c
}

// DeutschJozsa returns the Deutsch-Jozsa circuit on n data qubits plus one
// ancilla.  With constant true the oracle is f(x) = 1 (a constant function);
// otherwise the oracle is the balanced function f(x) = x_0 XOR ... XOR
// x_{n-1}.  Measuring the data register of DJ|0...0> yields all zeros iff
// the function is constant.
func DeutschJozsa(n int, constant bool) *circuit.Circuit {
	if n < 1 || n > 62 {
		panic(fmt.Sprintf("bench: unsupported DJ size %d", n))
	}
	kind := "balanced"
	if constant {
		kind = "constant"
	}
	c := circuit.New(n+1, fmt.Sprintf("dj-%d-%s", n, kind))
	c.X(n).H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	if constant {
		c.X(n) // f(x) = 1: unconditionally flip the ancilla
	} else {
		for q := 0; q < n; q++ {
			c.CX(q, n)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.H(n).X(n)
	return c
}

// GHZ returns the n-qubit GHZ-state preparation circuit — the smallest
// interesting entangling benchmark, used throughout the examples.
func GHZ(n int) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("bench: GHZ needs at least 2 qubits, got %d", n))
	}
	c := circuit.New(n, fmt.Sprintf("ghz-%d", n))
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	return c
}

// PhaseEstimation returns a quantum-phase-estimation circuit with bits
// counting qubits estimating the eigenphase of the single-qubit unitary
// P(2π·phase) applied to one target qubit prepared in its |1> eigenstate.
// With phase = k/2^bits the measured register equals k deterministically,
// which the tests exploit.  Register layout: counting qubits 0..bits-1
// (qubit j weighted 2^j), target qubit = bits.
func PhaseEstimation(bits int, phase float64) *circuit.Circuit {
	if bits < 1 || bits > 20 {
		panic(fmt.Sprintf("bench: unsupported QPE size %d", bits))
	}
	n := bits + 1
	c := circuit.New(n, fmt.Sprintf("qpe-%d", bits))
	target := bits
	c.X(target) // |1> eigenstate of P(θ)
	for q := 0; q < bits; q++ {
		c.H(q)
	}
	// Controlled powers: qubit j controls P(2π·phase·2^j).
	for j := 0; j < bits; j++ {
		angle := 2 * math.Pi * phase * math.Exp2(float64(j))
		c.CPhase(angle, j, target)
	}
	// Inverse QFT on the counting register.  Our swap-free QFT convention
	// (see QFT) produces bit-reversed output, so undo the reversal first and
	// then invert the swap-free QFT.
	for i, j := 0, bits-1; i < j; i, j = i+1, j-1 {
		c.Swap(i, j)
	}
	for i := 0; i < bits; i++ {
		for jj := i - 1; jj >= 0; jj-- {
			c.CPhase(-math.Pi/math.Exp2(float64(i-jj)), jj, i)
		}
		c.H(i)
	}
	return c
}
