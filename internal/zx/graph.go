// Package zx implements equivalence checking of quantum circuits by
// ZX-calculus rewriting: both circuits are translated into a single
// ZX-diagram of G'·G⁻¹, the diagram is brought into graph-like form (all
// spiders Z, all internal edges Hadamard) and simplified with spider fusion,
// Hopf cancellation, local complementation and pivoting (the
// Duncan–Kissinger–Perdrix–van de Wetering procedure).  If the diagram
// reduces to the identity wiring, the circuits are equivalent up to a global
// phase.
//
// Like the rewriting checker (internal/ecrw), this method is *sound but
// incomplete*: a diagram that does not fully reduce is merely inconclusive.
// On Clifford-heavy miters it is far more powerful than gate-level
// cancellation, because fusion and complementation see through commutations
// and Hadamard conjugations that defeat peephole matching.  Global scalar
// factors are dropped throughout, so a positive verdict means equivalence up
// to global phase.
package zx

import (
	"fmt"
	"math"
)

// vertex kinds.
type vkind int8

const (
	kindBoundaryIn vkind = iota
	kindBoundaryOut
	kindSpider // Z spider (the graph-like form has no X spiders)
)

// edges carries the multiplicity of plain and Hadamard edges between a
// vertex pair.
type edges struct {
	plain int
	had   int
}

type pair struct{ a, b int }

func mkPair(u, v int) pair {
	if u > v {
		u, v = v, u
	}
	return pair{u, v}
}

// Graph is a ZX-diagram under construction/simplification.  Vertices are
// dense integer ids; removed vertices stay allocated but disconnected.
type Graph struct {
	kind  []vkind
	phase []float64 // spider phase in radians, mod 2π
	qubit []int     // for boundaries: which circuit wire
	alive []bool

	adj map[pair]*edges
	nbr []map[int]bool // neighbour sets (any edge type)

	// cancel, when non-nil, is polled between simplification rounds; when it
	// returns true, Simplify stops early (soundly: an unfinished reduction is
	// merely Inconclusive).
	cancel func() bool

	// err records the first structural violation encountered while building
	// or rewriting the diagram (e.g. a self-loop on a boundary vertex).  The
	// rewrite rules bail out once it is set, and CheckCtx surfaces it as a
	// checker error — recording instead of panicking keeps a malformed input
	// from crossing the prover boundary as a crash.
	err error

	// stats
	fusions, hopfs, lcomps, pivots int
}

// MalformedError reports a structurally invalid diagram operation, reachable
// from degenerate circuit input.
type MalformedError struct {
	// Vertex is the offending vertex id.
	Vertex int
	// Msg describes the violation.
	Msg string
}

// Error formats the violation.
func (e *MalformedError) Error() string {
	return fmt.Sprintf("zx: %s (vertex %d)", e.Msg, e.Vertex)
}

// fail records the first structural violation; later ones are dropped.
func (g *Graph) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

// Err returns the first structural violation recorded on the diagram, or nil.
func (g *Graph) Err() error { return g.err }

// NewGraph returns an empty diagram.
func NewGraph() *Graph {
	return &Graph{adj: make(map[pair]*edges)}
}

// SetCancel installs (or with nil removes) a cooperative cancellation hook
// polled by Simplify between rounds.  The typical hook closes over a
// context.Context: func() bool { return ctx.Err() != nil }.
func (g *Graph) SetCancel(f func() bool) { g.cancel = f }

// cancelledNow reports whether the cancel hook requests a stop.
func (g *Graph) cancelledNow() bool { return g.cancel != nil && g.cancel() }

const twoPi = 2 * math.Pi

func normPhase(p float64) float64 {
	p = math.Mod(p, twoPi)
	if p < 0 {
		p += twoPi
	}
	if p > twoPi-1e-12 {
		p = 0
	}
	return p
}

// phaseIs reports whether p equals target modulo 2π within tolerance.
func phaseIs(p, target float64) bool {
	d := math.Abs(normPhase(p) - normPhase(target))
	return d < 1e-9 || math.Abs(d-twoPi) < 1e-9
}

func (g *Graph) addVertex(k vkind, phase float64, qubit int) int {
	id := len(g.kind)
	g.kind = append(g.kind, k)
	g.phase = append(g.phase, normPhase(phase))
	g.qubit = append(g.qubit, qubit)
	g.alive = append(g.alive, true)
	g.nbr = append(g.nbr, make(map[int]bool))
	return id
}

// NumSpiders returns the number of live interior spiders.
func (g *Graph) NumSpiders() int {
	n := 0
	for v := range g.kind {
		if g.alive[v] && g.kind[v] == kindSpider {
			n++
		}
	}
	return n
}

// addEdge inserts an edge of the given type (had=true for a Hadamard edge),
// resolving parallel-edge rules between spiders eagerly:
//
//   - two Hadamard edges between spiders cancel (Hopf law, scalar dropped),
//   - a plain self-loop vanishes, a Hadamard self-loop adds π to the phase.
func (g *Graph) addEdge(u, v int, had bool) {
	if u == v {
		if g.kind[u] != kindSpider {
			g.fail(&MalformedError{Vertex: u, Msg: "self-loop on boundary"})
			return
		}
		if had {
			g.phase[u] = normPhase(g.phase[u] + math.Pi)
		}
		// plain self-loop: scalar only
		return
	}
	p := mkPair(u, v)
	e := g.adj[p]
	if e == nil {
		e = &edges{}
		g.adj[p] = e
	}
	if had {
		e.had++
	} else {
		e.plain++
	}
	g.normalizeEdge(u, v, e)
	if e.plain == 0 && e.had == 0 {
		delete(g.adj, p)
		delete(g.nbr[u], v)
		delete(g.nbr[v], u)
	} else {
		g.nbr[u][v] = true
		g.nbr[v][u] = true
	}
}

// normalizeEdge applies the parallel-edge rules valid between two Z spiders.
// Edges touching a boundary are left untouched (boundaries carry exactly one
// edge by construction).
func (g *Graph) normalizeEdge(u, v int, e *edges) {
	if g.kind[u] != kindSpider || g.kind[v] != kindSpider {
		return
	}
	if e.had >= 2 {
		g.hopfs += e.had / 2
		e.had %= 2
	}
	// plain parallels between Z spiders collapse into one: fusing along one
	// of them turns the rest into plain self-loops, which are scalars.
	if e.plain > 1 {
		e.plain = 1
	}
	// plain + H in parallel: fusing along the plain edge turns the H edge
	// into an H self-loop, i.e. a π phase flip on the fused spider.  This is
	// handled during fusion; here we only keep the counts canonical.
}

func (g *Graph) edgeBetween(u, v int) *edges {
	return g.adj[mkPair(u, v)]
}

// removeVertex disconnects and kills a vertex.
func (g *Graph) removeVertex(v int) {
	for w := range g.nbr[v] {
		delete(g.adj, mkPair(v, w))
		delete(g.nbr[w], v)
	}
	g.nbr[v] = make(map[int]bool)
	g.alive[v] = false
}

// fuse merges spider v into spider u along a plain edge (spider law):
// phases add, v's edges transfer to u.
func (g *Graph) fuse(u, v int) {
	g.fusions++
	g.phase[u] = normPhase(g.phase[u] + g.phase[v])
	// Remove the connecting edge(s) first: plain ones vanish, each parallel
	// Hadamard edge becomes an H self-loop on the fused spider = π phase.
	if e := g.edgeBetween(u, v); e != nil {
		for i := 0; i < e.had; i++ {
			g.phase[u] = normPhase(g.phase[u] + math.Pi)
		}
		delete(g.adj, mkPair(u, v))
		delete(g.nbr[u], v)
		delete(g.nbr[v], u)
	}
	// Transfer remaining edges.
	for w := range g.nbr[v] {
		e := g.edgeBetween(v, w)
		for i := 0; i < e.plain; i++ {
			g.addEdge(u, w, false)
		}
		for i := 0; i < e.had; i++ {
			g.addEdge(u, w, true)
		}
		delete(g.adj, mkPair(v, w))
		delete(g.nbr[w], v)
	}
	g.nbr[v] = make(map[int]bool)
	g.alive[v] = false
}

// fusePlainEdges exhaustively applies the spider law along plain
// spider-spider edges, producing the graph-like form.
func (g *Graph) fusePlainEdges() {
	for {
		if g.cancelledNow() {
			return
		}
		var fu, fv int = -1, -1
		for p, e := range g.adj {
			if e.plain > 0 && g.kind[p.a] == kindSpider && g.kind[p.b] == kindSpider {
				fu, fv = p.a, p.b
				break
			}
		}
		if fu < 0 {
			return
		}
		g.fuse(fu, fv)
	}
}

// removeIdentities drops phase-0 spiders of degree 2 whose two edges can be
// combined (plain∘plain = plain, plain∘H = H, H∘H = plain).
func (g *Graph) removeIdentities() bool {
	changed := false
	for v := range g.kind {
		if !g.alive[v] || g.kind[v] != kindSpider || !phaseIs(g.phase[v], 0) {
			continue
		}
		if len(g.nbr[v]) != 2 {
			continue
		}
		var ws []int
		for w := range g.nbr[v] {
			ws = append(ws, w)
		}
		e0 := g.edgeBetween(v, ws[0])
		e1 := g.edgeBetween(v, ws[1])
		if e0.plain+e0.had != 1 || e1.plain+e1.had != 1 {
			continue
		}
		had := (e0.had + e1.had) == 1 // H∘plain = H; H∘H = plain; plain∘plain = plain
		g.removeVertex(v)
		g.addEdge(ws[0], ws[1], had)
		changed = true
	}
	return changed
}

// interior reports whether v is a spider all of whose edges are Hadamard
// edges to other spiders (the precondition of local complementation and
// pivoting).
func (g *Graph) interior(v int) bool {
	if !g.alive[v] || g.kind[v] != kindSpider {
		return false
	}
	for w := range g.nbr[v] {
		if g.kind[w] != kindSpider {
			return false
		}
		e := g.edgeBetween(v, w)
		if e.plain != 0 {
			return false
		}
	}
	return true
}

// toggleH flips the Hadamard edge between two distinct spiders.
func (g *Graph) toggleH(u, v int) {
	if u == v {
		return
	}
	p := mkPair(u, v)
	e := g.adj[p]
	if e == nil {
		g.addEdge(u, v, true)
		return
	}
	if e.had > 0 {
		e.had--
		if e.plain == 0 && e.had == 0 {
			delete(g.adj, p)
			delete(g.nbr[u], v)
			delete(g.nbr[v], u)
		}
		return
	}
	g.addEdge(u, v, true)
}

// localComplement removes an interior spider with phase ±π/2: the
// neighbourhood is complemented and each neighbour's phase decreases by the
// spider's phase.
func (g *Graph) localComplement(v int) {
	g.lcomps++
	ph := g.phase[v]
	var ns []int
	for w := range g.nbr[v] {
		ns = append(ns, w)
	}
	for i := 0; i < len(ns); i++ {
		g.phase[ns[i]] = normPhase(g.phase[ns[i]] - ph)
		for j := i + 1; j < len(ns); j++ {
			g.toggleH(ns[i], ns[j])
		}
	}
	g.removeVertex(v)
}

// pivot removes an adjacent interior pair u,v with Pauli phases (0 or π):
// the three neighbour groups (exclusive to u, exclusive to v, common) are
// pairwise complemented and phases propagate.
func (g *Graph) pivot(u, v int) {
	g.pivots++
	phU, phV := g.phase[u], g.phase[v]
	var onlyU, onlyV, both []int
	for w := range g.nbr[u] {
		if w == v {
			continue
		}
		if g.nbr[v][w] {
			both = append(both, w)
		} else {
			onlyU = append(onlyU, w)
		}
	}
	for w := range g.nbr[v] {
		if w == u || g.nbr[u][w] {
			continue
		}
		onlyV = append(onlyV, w)
	}
	complement := func(as, bs []int) {
		for _, a := range as {
			for _, b := range bs {
				g.toggleH(a, b)
			}
		}
	}
	complement(onlyU, onlyV)
	complement(onlyU, both)
	complement(onlyV, both)
	for _, w := range onlyU {
		g.phase[w] = normPhase(g.phase[w] + phV)
	}
	for _, w := range onlyV {
		g.phase[w] = normPhase(g.phase[w] + phU)
	}
	for _, w := range both {
		g.phase[w] = normPhase(g.phase[w] + phU + phV + math.Pi)
	}
	g.removeVertex(u)
	g.removeVertex(v)
}

// pauliPush applies the π-copy rule to an interior Z(π) spider v of degree
// two: the segment u —H— Z(π) —H— w is an X(π) gate on the wire, which
// commutes through the spider w by negating w's phase and re-emitting an
// X(π) on each of w's other legs.  It returns true when the rule applied.
//
// The push is only taken towards a neighbour with a non-Pauli phase (so a
// lone π migrates towards phases it can actually act on, and two pushes
// cannot oscillate between a pair of Pauli spiders forever).
func (g *Graph) pauliPush(v int) bool {
	if !g.interior(v) || !phaseIs(g.phase[v], math.Pi) || len(g.nbr[v]) != 2 {
		return false
	}
	var ns []int
	for w := range g.nbr[v] {
		if e := g.edgeBetween(v, w); e.had != 1 || e.plain != 0 {
			return false
		}
		ns = append(ns, w)
	}
	pick := -1
	for i, w := range ns {
		if !phaseIs(g.phase[w], 0) && !phaseIs(g.phase[w], math.Pi) {
			pick = i
			break
		}
	}
	if pick < 0 {
		return false
	}
	w, u := ns[pick], ns[1-pick]
	// Snapshot and validate w's other legs before mutating anything: a
	// doubled leg (possible only transiently) makes us decline the rule.
	type leg struct {
		x   int
		had bool
	}
	var legs []leg
	for x := range g.nbr[w] {
		if x == v {
			continue
		}
		e := g.edgeBetween(w, x)
		if e.plain+e.had != 1 {
			return false
		}
		legs = append(legs, leg{x: x, had: e.had == 1})
	}
	g.removeVertex(v)
	g.phase[w] = normPhase(-g.phase[w])
	for _, l := range legs {
		delete(g.adj, mkPair(w, l.x))
		delete(g.nbr[w], l.x)
		delete(g.nbr[l.x], w)
		m := g.addVertex(kindSpider, math.Pi, -1)
		g.addEdge(w, m, true)
		g.addEdge(m, l.x, !l.had) // H followed by the leg's type composes
	}
	// The consumed entry: u —H—(v)—H— w collapses to a plain wire.
	g.addEdge(u, w, false)
	return true
}

// Simplify runs the full reduction to a fixpoint: fusion, identity removal,
// local complementation on interior ±π/2 spiders, pivoting on interior
// Pauli pairs, and π-pushing for lone interior Pauli spiders on a wire.
func (g *Graph) Simplify() {
	if g.err != nil {
		return
	}
	g.fusePlainEdges()
	budget := 16*len(g.kind) + 1024 // safety net against rule ping-pong
	for {
		if budget <= 0 || g.cancelledNow() || g.err != nil {
			return
		}
		budget--
		changed := false
		if g.removeIdentities() {
			changed = true
		}
		// Local complementation.
		for v := range g.kind {
			if g.interior(v) && (phaseIs(g.phase[v], math.Pi/2) || phaseIs(g.phase[v], 3*math.Pi/2)) {
				g.localComplement(v)
				changed = true
			}
		}
		// Pivoting on interior Pauli pairs.
	pivotSearch:
		for v := range g.kind {
			if !g.interior(v) || !(phaseIs(g.phase[v], 0) || phaseIs(g.phase[v], math.Pi)) {
				continue
			}
			for w := range g.nbr[v] {
				if w > v && g.interior(w) && (phaseIs(g.phase[w], 0) || phaseIs(g.phase[w], math.Pi)) {
					g.pivot(v, w)
					changed = true
					continue pivotSearch
				}
			}
		}
		// π-pushing.
		for v := range g.kind {
			if g.alive[v] && g.pauliPush(v) {
				changed = true
			}
		}
		g.fusePlainEdges()
		if !changed {
			return
		}
	}
}

// Stats summarizes the rewrites applied.
func (g *Graph) Stats() string {
	return fmt.Sprintf("fusions=%d hopf=%d lcomp=%d pivot=%d spiders=%d",
		g.fusions, g.hopfs, g.lcomps, g.pivots, g.NumSpiders())
}
