package zx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

// ddEquivalent is the oracle: DD-based equivalence up to global phase.
func ddEquivalent(t *testing.T, g1, g2 *circuit.Circuit) bool {
	t.Helper()
	r := ec.Check(g1, g2, ec.Options{Strategy: ec.Proportional, UpToGlobalPhase: true})
	return r.Equivalent()
}

func randomClifford(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "clifford")
	for i := 0; i < gates; i++ {
		switch rng.Intn(5) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.S(rng.Intn(n))
		case 2:
			c.Z(rng.Intn(n))
		case 3:
			a := rng.Intn(n)
			c.CX(a, (a+1+rng.Intn(n-1))%n)
		case 4:
			a := rng.Intn(n)
			c.CZ(a, (a+1+rng.Intn(n-1))%n)
		}
	}
	return c
}

func randomCliffordT(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := randomClifford(rng, n, gates)
	for i := 0; i < gates/4; i++ {
		c.T(rng.Intn(n))
	}
	return c
}

func TestEmptyCircuitIdentity(t *testing.T) {
	g := circuit.New(3, "id")
	res, err := Check(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != EquivalentUpToPhase {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestSingleGateMiters(t *testing.T) {
	// G·G⁻¹ must reduce to identity for every supported gate kind.
	mk := func(build func(c *circuit.Circuit)) *circuit.Circuit {
		c := circuit.New(3, "g")
		build(c)
		return c
	}
	cases := []*circuit.Circuit{
		mk(func(c *circuit.Circuit) { c.H(0) }),
		mk(func(c *circuit.Circuit) { c.X(1) }),
		mk(func(c *circuit.Circuit) { c.Y(1) }),
		mk(func(c *circuit.Circuit) { c.Z(2) }),
		mk(func(c *circuit.Circuit) { c.S(0) }),
		mk(func(c *circuit.Circuit) { c.T(0) }),
		mk(func(c *circuit.Circuit) { c.SX(2) }),
		mk(func(c *circuit.Circuit) { c.RX(0.7, 0) }),
		mk(func(c *circuit.Circuit) { c.RY(1.2, 1) }),
		mk(func(c *circuit.Circuit) { c.RZ(-0.4, 2) }),
		mk(func(c *circuit.Circuit) { c.Phase(0.9, 0) }),
		mk(func(c *circuit.Circuit) { c.U3(0.3, 0.6, -1.1, 1) }),
		mk(func(c *circuit.Circuit) { c.CX(0, 1) }),
		mk(func(c *circuit.Circuit) { c.CZ(1, 2) }),
		mk(func(c *circuit.Circuit) { c.Swap(0, 2) }),
	}
	for i, g := range cases {
		res, err := Check(g, g.Clone())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Verdict != EquivalentUpToPhase {
			t.Errorf("case %d (%s): verdict %v (spiders %d -> %d)",
				i, g.Gates[0], res.Verdict, res.SpidersBefore, res.SpidersAfter)
		}
	}
}

func TestCliffordMitersReduce(t *testing.T) {
	// Random Clifford circuits against themselves: the full reduction must
	// collapse the miter completely (Clifford completeness of the
	// lcomp/pivot procedure on these instances).
	rng := rand.New(rand.NewSource(3))
	reduced := 0
	total := 0
	for trial := 0; trial < 20; trial++ {
		g := randomClifford(rng, 4, 30)
		res, err := Check(g, g.Clone())
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Verdict == EquivalentUpToPhase {
			reduced++
		}
	}
	if reduced < total*3/4 {
		t.Errorf("only %d/%d Clifford self-miters reduced to identity", reduced, total)
	}
	t.Logf("Clifford self-miters fully reduced: %d/%d", reduced, total)
}

func TestRecompiledCliffordProven(t *testing.T) {
	// HXH = Z, SS = Z, CZ symmetry: rewritten variants the gate-level
	// matcher may miss but fusion handles.
	g1 := circuit.New(2, "a")
	g1.Z(0).CZ(0, 1)
	g2 := circuit.New(2, "b")
	g2.H(0).X(0).H(0).CZ(1, 0) // HXH = Z and CZ is symmetric
	res, err := Check(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != EquivalentUpToPhase {
		t.Fatalf("verdict %v", res.Verdict)
	}

	g3 := circuit.New(1, "s2")
	g3.S(0).S(0)
	g4 := circuit.New(1, "z")
	g4.Z(0)
	res, err = Check(g3, g4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != EquivalentUpToPhase {
		t.Fatalf("S·S vs Z: %v", res.Verdict)
	}
}

func TestCommutedCZsProven(t *testing.T) {
	g1 := circuit.New(3, "a")
	g1.CZ(0, 1).CZ(1, 2).CZ(0, 2)
	g2 := circuit.New(3, "b")
	g2.CZ(0, 2).CZ(0, 1).CZ(1, 2) // CZs commute
	res, err := Check(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != EquivalentUpToPhase {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestRotationFusionProven(t *testing.T) {
	g1 := circuit.New(1, "a")
	g1.RZ(0.3, 0).RZ(0.4, 0)
	g2 := circuit.New(1, "b")
	g2.RZ(0.7, 0)
	res, err := Check(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != EquivalentUpToPhase {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestNonEquivalentNeverProven(t *testing.T) {
	g1 := circuit.New(2, "a")
	g1.H(0).CX(0, 1)
	g2 := circuit.New(2, "b")
	g2.H(0).CX(0, 1).Z(1)
	res, err := Check(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == EquivalentUpToPhase {
		t.Fatal("ZX proved a non-equivalent pair equivalent")
	}
}

func TestMultiControlledLowered(t *testing.T) {
	g := circuit.New(4, "mcx")
	g.MCX([]int{0, 1, 2}, 3)
	res, err := Check(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Lowered to Clifford+T; the self-miter may or may not fully reduce —
	// but it must never error and never be wrong.
	_ = res
}

func TestRegisterMismatch(t *testing.T) {
	res, err := Check(circuit.New(2, "a"), circuit.New(3, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inconclusive {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

// Property: soundness — whenever ZX says equivalent, the DD checker agrees
// (up to global phase), over random Clifford+T pairs.
func TestQuickSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		g1 := randomCliffordT(rng, n, 15)
		var g2 *circuit.Circuit
		switch seed % 3 {
		case 0:
			g2 = g1.Clone()
		case 1:
			g2 = g1.Clone()
			g2.RZ(0.25, rng.Intn(n)) // tiny real difference
		default:
			g2 = randomCliffordT(rng, n, 15)
		}
		res, err := Check(g1, g2)
		if err != nil {
			return false
		}
		if res.Verdict != EquivalentUpToPhase {
			return true // inconclusive is always sound
		}
		return ddEquivalent(t, g1, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: self-miters of supported single-qubit rotations always reduce.
func TestQuickRotationSelfMiters(t *testing.T) {
	f := func(theta float64) bool {
		theta = math.Mod(theta, 2*math.Pi)
		if math.IsNaN(theta) {
			return true
		}
		g := circuit.New(2, "rot")
		g.RZ(theta, 0).RX(theta/2, 1).CX(0, 1)
		res, err := Check(g, g.Clone())
		if err != nil {
			return false
		}
		return res.Verdict == EquivalentUpToPhase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStatsReported(t *testing.T) {
	g := circuit.New(2, "g")
	g.H(0).CX(0, 1).S(1)
	res, err := Check(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpidersBefore == 0 || res.Runtime <= 0 {
		t.Errorf("stats missing: %+v", res)
	}
	if res.Verdict.String() == "" || Inconclusive.String() == "" {
		t.Error("verdict names empty")
	}
	var g2 *Graph = NewGraph()
	if g2.Stats() == "" {
		t.Error("graph stats empty")
	}
}
