package zx

import (
	"fmt"
	"math"

	"qcec/internal/circuit"
	"qcec/internal/decompose"
)

// builder tracks, per circuit wire, the vertex the wire currently dangles
// from and whether a Hadamard is pending on it (this absorbs both H gates
// and the Z↔X colour change, so the diagram is born graph-like: Z spiders
// only).
type builder struct {
	g       *Graph
	cur     []int
	pending []bool
	inputs  []int
}

func newBuilder(n int) *builder {
	b := &builder{g: NewGraph(), cur: make([]int, n), pending: make([]bool, n), inputs: make([]int, n)}
	for q := 0; q < n; q++ {
		v := b.g.addVertex(kindBoundaryIn, 0, q)
		b.inputs[q] = v
		b.cur[q] = v
	}
	return b
}

// zSpider appends a Z spider with the given phase to wire q.
func (b *builder) zSpider(q int, phase float64) int {
	v := b.g.addVertex(kindSpider, phase, -1)
	b.g.addEdge(b.cur[q], v, b.pending[q])
	b.pending[q] = false
	b.cur[q] = v
	return v
}

// xSpider appends an X spider (realized as an H-conjugated Z spider).
func (b *builder) xSpider(q int, phase float64) int {
	b.pending[q] = !b.pending[q]
	v := b.zSpider(q, phase)
	b.pending[q] = !b.pending[q]
	return v
}

func (b *builder) hadamard(q int) { b.pending[q] = !b.pending[q] }

func (b *builder) cx(ctl, tgt int) {
	zc := b.zSpider(ctl, 0)
	xt := b.xSpider(tgt, 0)
	// Plain edge between a Z and an X spider; with the X spider stored as an
	// H-conjugated Z spider this becomes a Hadamard edge.
	b.g.addEdge(zc, xt, true)
}

func (b *builder) cz(aq, bq int) {
	za := b.zSpider(aq, 0)
	zb := b.zSpider(bq, 0)
	b.g.addEdge(za, zb, true)
}

func (b *builder) swap(aq, bq int) {
	b.cur[aq], b.cur[bq] = b.cur[bq], b.cur[aq]
	b.pending[aq], b.pending[bq] = b.pending[bq], b.pending[aq]
}

// gate translates one circuit gate.  Multi-controlled gates must have been
// decomposed away beforehand.
func (b *builder) gate(g circuit.Gate) error {
	if len(g.Controls) > 1 {
		return fmt.Errorf("zx: %d-controlled gate not supported (decompose first)", len(g.Controls))
	}
	if len(g.Controls) == 1 {
		if g.Controls[0].Neg {
			return fmt.Errorf("zx: negative control not supported (decompose first)")
		}
		switch g.Kind {
		case circuit.X:
			b.cx(g.Controls[0].Qubit, g.Target)
			return nil
		case circuit.Z:
			b.cz(g.Controls[0].Qubit, g.Target)
			return nil
		case circuit.SWAP:
			return fmt.Errorf("zx: controlled SWAP not supported (decompose first)")
		default:
			return fmt.Errorf("zx: controlled %v not supported (decompose first)", g.Kind)
		}
	}
	switch g.Kind {
	case circuit.I:
	case circuit.H:
		b.hadamard(g.Target)
	case circuit.Z:
		b.zSpider(g.Target, math.Pi)
	case circuit.S:
		b.zSpider(g.Target, math.Pi/2)
	case circuit.Sdg:
		b.zSpider(g.Target, -math.Pi/2)
	case circuit.T:
		b.zSpider(g.Target, math.Pi/4)
	case circuit.Tdg:
		b.zSpider(g.Target, -math.Pi/4)
	case circuit.P:
		b.zSpider(g.Target, g.Params[0])
	case circuit.RZ:
		b.zSpider(g.Target, g.Params[0]) // up to global phase
	case circuit.X:
		b.xSpider(g.Target, math.Pi)
	case circuit.SX:
		b.xSpider(g.Target, math.Pi/2)
	case circuit.SXdg:
		b.xSpider(g.Target, -math.Pi/2)
	case circuit.RX:
		b.xSpider(g.Target, g.Params[0])
	case circuit.Y:
		// Y = X·Z up to global phase.
		b.zSpider(g.Target, math.Pi)
		b.xSpider(g.Target, math.Pi)
	case circuit.RY:
		// Ry(θ) = Rz(π/2)·Rx(θ)·Rz(-π/2) as matrices, i.e. apply Rz(-π/2)
		// first in time (global phase dropped).
		b.zSpider(g.Target, -math.Pi/2)
		b.xSpider(g.Target, g.Params[0])
		b.zSpider(g.Target, math.Pi/2)
	case circuit.SWAP:
		b.swap(g.Target, g.Target2)
	case circuit.U2, circuit.U3, circuit.Custom:
		// ZYZ-decompose: U = e^{iα} Rz(β) Ry(γ) Rz(δ), applied δ first.
		_, beta, gamma, delta := decompose.ZYZ(g.Matrix())
		b.zSpider(g.Target, delta)
		b.zSpider(g.Target, -math.Pi/2)
		b.xSpider(g.Target, gamma)
		b.zSpider(g.Target, math.Pi/2)
		b.zSpider(g.Target, beta)
	default:
		return fmt.Errorf("zx: unsupported gate kind %v", g.Kind)
	}
	return nil
}

// finish attaches the output boundaries and returns the diagram with its
// input/output vertex lists.
func (b *builder) finish() (*Graph, []int, []int) {
	outs := make([]int, len(b.cur))
	for q := range b.cur {
		v := b.g.addVertex(kindBoundaryOut, 0, q)
		b.g.addEdge(b.cur[q], v, b.pending[q])
		outs[q] = v
	}
	return b.g, b.inputs, outs
}

// FromCircuit translates a circuit into a ZX-diagram (inputs, outputs
// returned as vertex ids).  Multi-controlled gates are not handled here;
// Check lowers its inputs first.
func FromCircuit(c *circuit.Circuit) (*Graph, []int, []int, error) {
	b := newBuilder(c.N)
	for _, g := range c.Gates {
		if err := b.gate(g); err != nil {
			return nil, nil, nil, err
		}
	}
	g, ins, outs := b.finish()
	return g, ins, outs, nil
}
