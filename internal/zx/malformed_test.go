package zx

import (
	"errors"
	"testing"
)

// TestSelfLoopOnBoundaryIsTypedError: a structurally invalid diagram
// operation must record a *MalformedError instead of panicking, and
// Simplify must refuse to rewrite the poisoned graph.
func TestSelfLoopOnBoundaryIsTypedError(t *testing.T) {
	g := NewGraph()
	b := g.addVertex(kindBoundaryIn, 0, 0)
	g.addEdge(b, b, false) // self-loop on a boundary vertex

	var merr *MalformedError
	if !errors.As(g.Err(), &merr) {
		t.Fatalf("Err() = %v, want *MalformedError", g.Err())
	}
	if merr.Vertex != b {
		t.Fatalf("Vertex = %d, want %d", merr.Vertex, b)
	}

	// The error is set-once: later violations do not overwrite the first.
	first := g.Err()
	g.addEdge(b, b, true)
	if g.Err() != first {
		t.Fatal("second violation overwrote the first")
	}

	// Simplify on a poisoned graph must be a no-op, not a crash.
	g.Simplify()
	if g.Err() != first {
		t.Fatal("Simplify disturbed the recorded error")
	}
}

// TestSpiderSelfLoopsStillLegal: the legal self-loop rules (plain vanishes,
// Hadamard adds π) must not be affected by the boundary guard.
func TestSpiderSelfLoopsStillLegal(t *testing.T) {
	g := NewGraph()
	s := g.addVertex(kindSpider, 0, 0)
	g.addEdge(s, s, false)
	if g.Err() != nil {
		t.Fatalf("plain spider self-loop recorded error: %v", g.Err())
	}
	g.addEdge(s, s, true)
	if g.Err() != nil {
		t.Fatalf("Hadamard spider self-loop recorded error: %v", g.Err())
	}
	if !phaseIs(g.phase[s], 3.14159265358979) {
		t.Fatalf("Hadamard self-loop did not add π: phase = %v", g.phase[s])
	}
}
