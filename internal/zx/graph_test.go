package zx

import (
	"math"
	"testing"
)

// Unit tests of the individual graph rewrite rules (the circuit-level tests
// in zx_test.go cover their composition).

func chain(phases []float64, hadEdges bool) (*Graph, int, int) {
	g := NewGraph()
	in := g.addVertex(kindBoundaryIn, 0, 0)
	prev := in
	for _, p := range phases {
		v := g.addVertex(kindSpider, p, -1)
		g.addEdge(prev, v, hadEdges && prev != in)
		prev = v
	}
	out := g.addVertex(kindBoundaryOut, 0, 0)
	g.addEdge(prev, out, false)
	return g, in, out
}

func TestFusionChain(t *testing.T) {
	// Three spiders connected by plain edges fuse into one.
	g, _, _ := chain([]float64{0.2, 0.3, 0.5}, false)
	g.fusePlainEdges()
	if n := g.NumSpiders(); n != 1 {
		t.Fatalf("spiders after fusion = %d", n)
	}
	for v := range g.kind {
		if g.alive[v] && g.kind[v] == kindSpider && !phaseIs(g.phase[v], 1.0) {
			t.Fatalf("fused phase = %g, want 1.0", g.phase[v])
		}
	}
}

func TestHopfCancellation(t *testing.T) {
	// Two spiders connected by a double Hadamard edge: the edges cancel.
	g := NewGraph()
	a := g.addVertex(kindSpider, 0.1, -1)
	b := g.addVertex(kindSpider, 0.2, -1)
	g.addEdge(a, b, true)
	g.addEdge(a, b, true)
	if g.edgeBetween(a, b) != nil {
		t.Fatal("double H edge did not cancel")
	}
	if g.hopfs == 0 {
		t.Error("Hopf count not recorded")
	}
}

func TestHadamardSelfLoopPhaseFlip(t *testing.T) {
	g := NewGraph()
	a := g.addVertex(kindSpider, 0.25, -1)
	g.addEdge(a, a, true)
	if !phaseIs(g.phase[a], 0.25+math.Pi) {
		t.Fatalf("phase after H self-loop = %g", g.phase[a])
	}
	// Plain self-loop: phase unchanged (scalar only).
	g.addEdge(a, a, false)
	if !phaseIs(g.phase[a], 0.25+math.Pi) {
		t.Fatalf("phase after plain self-loop = %g", g.phase[a])
	}
}

func TestIdentityRemovalCombinesEdgeTypes(t *testing.T) {
	// in —H— Z(0) —H— out collapses to a plain wire (H∘H = I).
	g := NewGraph()
	in := g.addVertex(kindBoundaryIn, 0, 0)
	v := g.addVertex(kindSpider, 0, -1)
	out := g.addVertex(kindBoundaryOut, 0, 0)
	g.addEdge(in, v, true)
	g.addEdge(v, out, true)
	if !g.removeIdentities() {
		t.Fatal("identity spider not removed")
	}
	e := g.edgeBetween(in, out)
	if e == nil || e.plain != 1 || e.had != 0 {
		t.Fatalf("resulting wire = %+v", e)
	}
	// in —H— Z(0) —plain— out collapses to an H wire.
	g2 := NewGraph()
	in2 := g2.addVertex(kindBoundaryIn, 0, 0)
	v2 := g2.addVertex(kindSpider, 0, -1)
	out2 := g2.addVertex(kindBoundaryOut, 0, 0)
	g2.addEdge(in2, v2, true)
	g2.addEdge(v2, out2, false)
	g2.removeIdentities()
	e2 := g2.edgeBetween(in2, out2)
	if e2 == nil || e2.had != 1 || e2.plain != 0 {
		t.Fatalf("resulting wire = %+v", e2)
	}
}

func TestIdentityRemovalSkipsPhased(t *testing.T) {
	g, _, _ := chain([]float64{0.5}, false)
	g.fusePlainEdges()
	if g.removeIdentities() {
		t.Fatal("phased spider wrongly removed")
	}
}

func TestLocalComplementNeighbourhood(t *testing.T) {
	// Star: center v (π/2) H-connected to three spiders; lcomp removes v,
	// pairwise toggles neighbour edges, and subtracts π/2 from each.
	g := NewGraph()
	center := g.addVertex(kindSpider, math.Pi/2, -1)
	var ns []int
	for i := 0; i < 3; i++ {
		w := g.addVertex(kindSpider, 0.1, -1)
		g.addEdge(center, w, true)
		ns = append(ns, w)
	}
	g.localComplement(center)
	if g.alive[center] {
		t.Fatal("center not removed")
	}
	for i := 0; i < 3; i++ {
		if !phaseIs(g.phase[ns[i]], 0.1-math.Pi/2) {
			t.Errorf("neighbour %d phase = %g", i, g.phase[ns[i]])
		}
		for j := i + 1; j < 3; j++ {
			e := g.edgeBetween(ns[i], ns[j])
			if e == nil || e.had != 1 {
				t.Errorf("neighbours %d,%d not H-connected after lcomp", i, j)
			}
		}
	}
}

func TestPivotRemovesPauliPair(t *testing.T) {
	// u(0) — v(π) adjacent, u also H-connected to a and v to b.
	g := NewGraph()
	u := g.addVertex(kindSpider, 0, -1)
	v := g.addVertex(kindSpider, math.Pi, -1)
	a := g.addVertex(kindSpider, 0.3, -1)
	b := g.addVertex(kindSpider, 0.4, -1)
	g.addEdge(u, v, true)
	g.addEdge(u, a, true)
	g.addEdge(v, b, true)
	g.pivot(u, v)
	if g.alive[u] || g.alive[v] {
		t.Fatal("pivot did not remove the pair")
	}
	// a picks up v's phase (π); b picks up u's (0).
	if !phaseIs(g.phase[a], 0.3+math.Pi) {
		t.Errorf("a phase = %g", g.phase[a])
	}
	if !phaseIs(g.phase[b], 0.4) {
		t.Errorf("b phase = %g", g.phase[b])
	}
	// a and b are now connected (onlyU x onlyV complementation).
	if e := g.edgeBetween(a, b); e == nil || e.had != 1 {
		t.Error("a and b not connected after pivot")
	}
}

func TestInteriorDetection(t *testing.T) {
	g := NewGraph()
	in := g.addVertex(kindBoundaryIn, 0, 0)
	v := g.addVertex(kindSpider, 0, -1)
	w := g.addVertex(kindSpider, 0, -1)
	g.addEdge(in, v, false)
	g.addEdge(v, w, true)
	if g.interior(v) {
		t.Error("boundary-adjacent spider judged interior")
	}
	if !g.interior(w) {
		t.Error("interior spider not recognized")
	}
	if g.interior(in) {
		t.Error("boundary judged interior")
	}
}

func TestSimplifyBudgetTerminates(t *testing.T) {
	// Pathological: many π spiders in a row must not loop forever.
	phases := make([]float64, 30)
	for i := range phases {
		phases[i] = math.Pi
	}
	g, _, _ := chain(phases, false)
	g.Simplify() // must return
}

func TestNormPhase(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, 0},
		{twoPi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	} {
		if got := normPhase(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("normPhase(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
	if !phaseIs(2*math.Pi-1e-13, 0) {
		t.Error("phaseIs wraparound failed")
	}
}
