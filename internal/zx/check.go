package zx

import (
	"context"
	"fmt"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/decompose"
)

// Verdict is the outcome of a ZX rewriting check.
type Verdict int

// Possible outcomes.  Like all pure-rewriting checkers the method cannot
// prove non-equivalence.
const (
	EquivalentUpToPhase Verdict = iota
	Inconclusive
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case EquivalentUpToPhase:
		return "equivalent up to global phase"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result reports the outcome and the reduction statistics.
type Result struct {
	Verdict          Verdict
	SpidersBefore    int
	SpidersAfter     int
	Fusions          int
	LocalComplements int
	Pivots           int
	Cancelled        bool // Inconclusive because the context was cancelled
	Runtime          time.Duration
}

// Check translates the miter G'·G⁻¹ into a ZX-diagram, fully reduces it,
// and reports equivalence (up to global phase) if the diagram collapses to
// the identity wiring.  Inputs with multi-controlled gates or controlled
// SWAPs are lowered to the CX level first.
func Check(g1, g2 *circuit.Circuit) (Result, error) {
	return CheckCtx(nil, g1, g2)
}

// CheckCtx is Check under cooperative cancellation: the simplification loop
// polls ctx between rounds and stops early when it is cancelled, yielding
// Inconclusive with Result.Cancelled set.  A nil ctx disables cancellation.
func CheckCtx(ctx context.Context, g1, g2 *circuit.Circuit) (Result, error) {
	start := time.Now()
	if g1.N != g2.N {
		return Result{Verdict: Inconclusive, Runtime: time.Since(start)}, nil
	}
	miter := lower(g2).Clone()
	miter.Append(lower(g1).Inverse())

	g, ins, outs, err := FromCircuit(miter)
	if err != nil {
		return Result{}, err
	}
	if err := g.Err(); err != nil {
		return Result{}, err
	}
	if ctx != nil {
		g.SetCancel(func() bool { return ctx.Err() != nil })
	}
	res := Result{SpidersBefore: g.NumSpiders()}
	g.Simplify()
	if err := g.Err(); err != nil {
		// A structural violation surfaced mid-rewrite: the diagram is no
		// longer meaningful, so report the error rather than a verdict.
		return Result{}, err
	}
	res.SpidersAfter = g.NumSpiders()
	res.Fusions = g.fusions
	res.LocalComplements = g.lcomps
	res.Pivots = g.pivots
	if isIdentityWiring(g, ins, outs) {
		// A fully reduced identity is a proof even if the context was
		// cancelled while the last round completed.
		res.Verdict = EquivalentUpToPhase
	} else {
		res.Verdict = Inconclusive
		res.Cancelled = ctx != nil && ctx.Err() != nil
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// lower strips constructs the translator cannot express.
func lower(c *circuit.Circuit) *circuit.Circuit {
	needs := false
	for _, g := range c.Gates {
		if len(g.Controls) > 1 || (len(g.Controls) == 1 && g.Kind != circuit.X && g.Kind != circuit.Z) {
			needs = true
			break
		}
		for _, ctl := range g.Controls {
			if ctl.Neg {
				needs = true
			}
		}
	}
	if !needs {
		return c
	}
	return decompose.Circuit(c, decompose.LevelCX)
}

// isIdentityWiring reports whether the reduced diagram is exactly the
// identity: no spiders left, and input q connected to output q by a single
// plain edge.
func isIdentityWiring(g *Graph, ins, outs []int) bool {
	if g.NumSpiders() != 0 {
		return false
	}
	for q := range ins {
		if len(g.nbr[ins[q]]) != 1 || !g.nbr[ins[q]][outs[q]] {
			return false
		}
		e := g.edgeBetween(ins[q], outs[q])
		if e == nil || e.plain != 1 || e.had != 0 {
			return false
		}
	}
	return true
}
