package ec

import "qcec/internal/circuit"

// This file implements the gate-cost (compilation-flow) application scheme:
// the alternating checker consumes one inverted gate of G, then the f(g)
// gates of G' that gate lowered to, per a per-gate cost profile.  The
// profile is exact when the caller compiled G' itself (decompose.WithProfile
// and mapping.Map thread emission counts through), and is otherwise
// estimated from a static per-kind cost table mirroring internal/decompose's
// lowering recursions (the QCEC fallback for pairs without provenance).

// gateCostSchedule returns the cumulative left-side schedule for
// StrategyGateCost: sched[i] gates of g2 are consumed before inverted gate i
// of g1 is applied, so each source gate is undone first and its lowered
// gates follow (the compilation-flow order).  A nil or ill-formed profile
// (wrong length, negative entry) falls back to the static estimate, and the
// schedule is rescaled so it covers g2 exactly even when the profile's total
// differs from len(g2.Gates).
func gateCostSchedule(g1, g2 *circuit.Circuit, profile []int) []int {
	if !validProfile(profile, len(g1.Gates)) {
		profile = EstimateCostProfile(g1)
	}
	total := 0
	for _, f := range profile {
		total += f
	}
	sched := make([]int, len(profile))
	if total == 0 {
		return sched
	}
	n2 := len(g2.Gates)
	cum := 0
	for i, f := range profile {
		// Exclusive prefix sum: gate i of g1 goes first, then its chunk.
		sched[i] = int((int64(cum)*int64(n2) + int64(total)/2) / int64(total))
		cum += f
	}
	return sched
}

func validProfile(profile []int, n int) bool {
	if profile == nil || len(profile) != n {
		return false
	}
	for _, f := range profile {
		if f < 0 {
			return false
		}
	}
	return true
}

// EstimateCostProfile returns a static per-gate estimate of how many gates
// each gate of g lowers to under the repo's own compilation flow
// (internal/decompose at LevelCX).  It mirrors the lowering recursions —
// Barenco Lemma 5.1 for a controlled single-qubit operation, the 15-gate
// Clifford+T Toffoli network, the quadratic borrowed-wire multi-control
// split and the ancilla-free square-root recursion — assuming every
// rotation angle is nonzero (the worst case), so on Clifford+T input it
// matches the native profile exactly.  Use it when a pair arrives without
// compilation provenance.
func EstimateCostProfile(g *circuit.Circuit) []int {
	profile := make([]int, len(g.Gates))
	for i, gate := range g.Gates {
		profile[i] = estimateGateCost(gate, g.N)
	}
	return profile
}

func estimateGateCost(g circuit.Gate, n int) int {
	cost := 0
	pos := 0
	for _, ctl := range g.Controls {
		if ctl.Neg {
			cost += 2 // conjugating X pair
		}
		pos++
	}
	if g.Kind == circuit.SWAP {
		// SWAP(a,b) = CX·(controlled mid X)·CX.
		return cost + 2 + estimateX(pos+1, n)
	}
	if g.Kind == circuit.X {
		return cost + estimateX(pos, n)
	}
	return cost + estimateU(pos, n)
}

// estimateX is the lowering cost of an X with c positive controls on an
// n-wire register.
func estimateX(c, n int) int {
	switch c {
	case 0, 1:
		return 1
	case 2:
		return 15 // toffoliCliffordT
	}
	// 3+ controls: Barenco split when a wire is free, else the square-root
	// recursion on the full register.
	if c+1 < n {
		return mcxSplitCost(c, n)
	}
	return mcuCost(c, n)
}

func mcxSplitCost(c, n int) int {
	m := (c + 1) / 2
	half := func(k int) int {
		if k <= 2 {
			return estimateX(k, n)
		}
		return mcxSplitCost(k, n) // split recursion always has the borrowed wire free
	}
	return 2 * (half(m) + half(c-m+1))
}

// estimateU is the lowering cost of an arbitrary (non-X) single-qubit
// operation with c positive controls.
func estimateU(c, n int) int {
	switch c {
	case 0:
		return 1
	case 1:
		// controlledU, Lemma 5.1: up to 5 rotations + 2 CX + 1 control phase.
		return 8
	}
	return mcuCost(c, n)
}

// mcuCost is the square-root recursion (Lemma 7.5):
// C^c U = CV · C^{c-1}X · CV† · C^{c-1}X · C^{c-1}V.
func mcuCost(c, n int) int {
	if c <= 1 {
		return estimateU(c, n)
	}
	return 2*estimateU(1, n) + 2*estimateX(c-1, n) + mcuCost(c-1, n)
}

// ComposeProfiles chains two per-gate cost profiles across compilation
// stages: outer[i] gates of the intermediate circuit came from source gate i,
// and inner[j] gates of the final circuit came from intermediate gate j, so
// the composition sums inner over each outer chunk.  len(inner) must equal
// the total of outer (i.e. the intermediate circuit's gate count); the
// result maps source gates directly to final-circuit emission counts.
func ComposeProfiles(outer, inner []int) []int {
	composed := make([]int, len(outer))
	j := 0
	for i, f := range outer {
		sum := 0
		for k := 0; k < f && j < len(inner); k++ {
			sum += inner[j]
			j++
		}
		composed[i] = sum
	}
	// Any trailing inner entries (e.g. layout-restoring SWAPs attributed past
	// the last source gate) fold into the final chunk so totals stay equal.
	for ; j < len(inner); j++ {
		if len(composed) > 0 {
			composed[len(composed)-1] += inner[j]
		}
	}
	return composed
}
