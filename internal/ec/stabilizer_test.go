package ec

import (
	"context"
	"errors"
	"math"
	"testing"

	"qcec/internal/circuit"
)

func stabCheck(g1, g2 *circuit.Circuit, opts Options) Result {
	opts.Strategy = StrategyStabilizer
	return Check(g1, g2, opts)
}

func TestStabilizerEquivalentStrict(t *testing.T) {
	g1 := circuit.New(2, "g").H(0).CX(0, 1)
	g2 := circuit.New(2, "gp").H(0).H(1).CZ(0, 1).H(1)
	res := stabCheck(g1, g2, Options{})
	if res.Verdict != Equivalent {
		t.Fatalf("want equivalent, got %v (%s)", res.Verdict, res.Reason)
	}
	if res.Strategy != StrategyStabilizer {
		t.Fatalf("result strategy = %v", res.Strategy)
	}
}

func TestStabilizerNotEquivalentMatchesDD(t *testing.T) {
	g1 := circuit.New(3, "g").H(0).CX(0, 1).CX(1, 2).S(2)
	g2 := circuit.New(3, "gp").H(0).CX(0, 2).CX(1, 2).S(2)
	sres := stabCheck(g1, g2, Options{})
	dres := Check(g1, g2, Options{Strategy: Proportional})
	if sres.Verdict != NotEquivalent || dres.Verdict != NotEquivalent {
		t.Fatalf("verdicts: stab=%v dd=%v, want both not equivalent", sres.Verdict, dres.Verdict)
	}
	if sres.Counterexample == nil {
		t.Fatal("stabilizer found no counterexample")
	}
}

// TestStabilizerGlobalPhase is the strict-phase regression: rz(π/2) equals
// e^{-iπ/4}·S, so the pair is equivalent only up to a global phase.  The
// tableau alone cannot see the scalar — the anchor must.
func TestStabilizerGlobalPhase(t *testing.T) {
	g1 := circuit.New(1, "g").S(0)
	g2 := circuit.New(1, "gp").RZ(math.Pi/2, 0)
	strict := stabCheck(g1, g2, Options{})
	if strict.Verdict != NotEquivalent || strict.Reason != "differ by a global phase" {
		t.Fatalf("strict: want phase-difference rejection, got %v (%q)", strict.Verdict, strict.Reason)
	}
	if strict.Counterexample == nil || *strict.Counterexample != 0 {
		t.Fatalf("strict: want counterexample |0>, got %v", strict.Counterexample)
	}
	phase := stabCheck(g1, g2, Options{UpToGlobalPhase: true})
	if phase.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("up-to-phase: want equivalent, got %v", phase.Verdict)
	}
}

// TestStabilizerPhaseAnchorIdentityPhase covers a residual phase that is a
// pure scalar on the whole register (X·Y·Z = iI): the tableau fixes every
// generator, so only the anchor can reject it in strict mode.
func TestStabilizerPhaseAnchorIdentityPhase(t *testing.T) {
	g1 := circuit.New(1, "g")
	g2 := circuit.New(1, "gp").Z(0).Y(0).X(0)
	strict := stabCheck(g1, g2, Options{})
	if strict.Verdict != NotEquivalent {
		t.Fatalf("strict: want not equivalent (global phase i), got %v", strict.Verdict)
	}
	phase := stabCheck(g1, g2, Options{UpToGlobalPhase: true})
	if phase.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("up-to-phase: want equivalent, got %v", phase.Verdict)
	}
}

func TestStabilizerDeclinesNonClifford(t *testing.T) {
	g1 := circuit.New(2, "g").H(0).T(1)
	g2 := circuit.New(2, "gp").H(0).T(1)
	res := stabCheck(g1, g2, Options{})
	if res.Verdict != TimedOut || res.Cause != CauseError {
		t.Fatalf("want TimedOut/CauseError decline, got %v/%v", res.Verdict, res.Cause)
	}
	var nce *NotCliffordError
	if !errors.As(res.Err, &nce) {
		t.Fatalf("want *NotCliffordError, got %T (%v)", res.Err, res.Err)
	}
	if nce.GateIndex != 1 {
		t.Fatalf("want offending gate index 1, got %d", nce.GateIndex)
	}
}

// TestStabilizerAngleTolerance is the satellite-4 regression: a rotation a
// hair off π/2 must still route onto the fast path when the offset is below
// the derived angle tolerance, and must be declined when it is above — with
// the boundary derived from Options.Tolerance, not hardcoded.
func TestStabilizerAngleTolerance(t *testing.T) {
	angleTol := circuit.CliffordAngleTolerance(0) // default weight tolerance
	near := math.Pi/2 + angleTol/2
	far := math.Pi/2 + angleTol*50

	g1 := circuit.New(1, "g").S(0)
	gNear := circuit.New(1, "gp").RZ(near, 0)
	if res := stabCheck(g1, gNear, Options{UpToGlobalPhase: true}); res.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("offset %.2g below tolerance: want accepted as Clifford, got %v (%s)",
			angleTol/2, res.Verdict, res.Reason)
	}
	gFar := circuit.New(1, "gp").RZ(far, 0)
	res := stabCheck(g1, gFar, Options{UpToGlobalPhase: true})
	var nce *NotCliffordError
	if !errors.As(res.Err, &nce) {
		t.Fatalf("offset %.2g above tolerance: want *NotCliffordError decline, got %v (%v)",
			angleTol*50, res.Verdict, res.Err)
	}

	// A coarser weight tolerance must widen the snap consistently: the same
	// far offset becomes acceptable when Options.Tolerance scales it past the
	// offset.
	coarse := Options{UpToGlobalPhase: true, Tolerance: 1e-7} // angleTol = 1e-3
	if res := stabCheck(g1, gFar, coarse); res.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("coarse tolerance: want offset %.2g accepted, got %v (%v)", angleTol*50, res.Verdict, res.Err)
	}
}

func TestStabilizerOutputPerm(t *testing.T) {
	g1 := circuit.New(2, "g").H(0).CX(0, 1)
	g2 := circuit.New(2, "gp").H(0).CX(0, 1).Swap(0, 1)
	if res := stabCheck(g1, g2, Options{}); res.Verdict != NotEquivalent {
		t.Fatalf("without perm: want not equivalent, got %v", res.Verdict)
	}
	res := stabCheck(g1, g2, Options{OutputPerm: []int{1, 0}})
	if res.Verdict != Equivalent {
		t.Fatalf("with perm [1 0]: want equivalent (strict, anchor included), got %v (%s)", res.Verdict, res.Reason)
	}
}

func TestStabilizerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := circuit.New(3, "g")
	for i := 0; i < 400; i++ {
		g.H(i%3).CX(i%3, (i+1)%3)
	}
	res := stabCheck(g, g.Clone(), Options{Context: ctx})
	if res.Verdict != TimedOut || res.Cause != CauseCancelled {
		t.Fatalf("want TimedOut/CauseCancelled, got %v/%v", res.Verdict, res.Cause)
	}
}

func TestStabilizerRegisterMismatch(t *testing.T) {
	g1 := circuit.New(2, "g")
	g2 := circuit.New(3, "gp")
	if res := stabCheck(g1, g2, Options{}); res.Verdict != NotEquivalent {
		t.Fatalf("want size mismatch rejection, got %v", res.Verdict)
	}
}
