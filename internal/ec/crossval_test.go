// Cross-validation of the gate-cost scheme against the proportional baseline
// on real compiler output.  This lives in an external test package because it
// drives the checker through internal/harness's compiled-pair suite, and
// harness imports ec.
package ec_test

import (
	"reflect"
	"testing"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/decompose"
	"qcec/internal/ec"
	"qcec/internal/harness"
)

// Every deeply-compiled pair (decompose levels x coupling architectures,
// plus error-injected mutants) must get the same answer from the gate-cost
// scheme — driven by the flow's native cost profile — as from the
// proportional baseline, at Equivalent() granularity and matching the ground
// truth.
func TestGateCostAgreesWithProportionalOnCompiledPairs(t *testing.T) {
	pairs, err := harness.CompiledSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range pairs {
		gc := ec.Check(pair.Source, pair.Compiled, ec.Options{
			Strategy:    ec.StrategyGateCost,
			CostProfile: pair.Profile,
			Timeout:     time.Minute,
		})
		prop := ec.Check(pair.Source, pair.Compiled, ec.Options{
			Strategy: ec.Proportional,
			Timeout:  time.Minute,
		})
		if gc.Equivalent() != prop.Equivalent() {
			t.Errorf("%s: gate-cost %v vs proportional %v", pair.Name, gc.Verdict, prop.Verdict)
		}
		if gc.Equivalent() != pair.Equivalent {
			t.Errorf("%s: gate-cost verdict %v, ground truth equivalent=%v (injection %q)",
				pair.Name, gc.Verdict, pair.Equivalent, pair.Injection)
		}
	}
}

// The estimator-driven schedule (no provenance) must also reach the right
// verdicts on compiled pairs — the QCEC fallback path.
func TestGateCostEstimatorFallbackOnCompiledPairs(t *testing.T) {
	pairs, err := harness.CompiledSuite(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range pairs {
		r := ec.Check(pair.Source, pair.Compiled, ec.Options{
			Strategy: ec.StrategyGateCost, // CostProfile nil: static estimate
			Timeout:  time.Minute,
		})
		if r.Equivalent() != pair.Equivalent {
			t.Errorf("%s: verdict %v, ground truth equivalent=%v", pair.Name, r.Verdict, pair.Equivalent)
		}
	}
}

// On Clifford+T input the static cost table mirrors internal/decompose's
// recursions exactly, so the estimate must equal the native profile emitted
// by the lowering itself.
func TestEstimatorMatchesNativeProfileOnCliffordT(t *testing.T) {
	g := circuit.New(5, "clifford+t")
	g.H(0).T(1).CX(0, 1).Tdg(2).CCX(0, 1, 2).Swap(2, 3).CX(3, 4).CCX(2, 3, 4).H(4)
	lowered, native := decompose.WithProfile(g, decompose.LevelCX)
	est := ec.EstimateCostProfile(g)
	if !reflect.DeepEqual(native, est) {
		t.Errorf("native profile %v != static estimate %v", native, est)
	}
	sum := 0
	for _, f := range native {
		sum += f
	}
	if sum != len(lowered.Gates) {
		t.Errorf("native profile sums to %d, lowered circuit has %d gates", sum, len(lowered.Gates))
	}
}
