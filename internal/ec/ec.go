// Package ec implements complete, decision-diagram based equivalence
// checking of quantum circuits — the "state-of-the-art equivalence checking
// routine" slot of the paper's proposed flow (Fig. 3).
//
// Two circuits G and G' are equivalent iff U'·U† equals the identity (up to
// global phase, and up to an output permutation when the compilation flow
// relabels qubits instead of un-swapping them).  The product U'·U† is built
// gate by gate on a DD package; the order in which gates from the two
// circuits are consumed is the checker's main degree of freedom
// (paper ref [22]):
//
//   - Construction: build U and U' independently and compare — the textbook
//     baseline ("construct and compare the complete functionality").
//   - Sequential: apply all gates of G', then all inverted gates of G.
//   - Proportional: interleave the two sides in proportion to their gate
//     counts, keeping the accumulated product close to the identity (small)
//     whenever the circuits are in fact equivalent.
//   - Lookahead: at each step apply whichever side's next gate yields the
//     smaller intermediate DD.
//   - GateCost: consume one inverted gate of G, then as many gates of G' as
//     that gate lowered to, per a per-gate cost profile — either emitted
//     natively by internal/decompose and internal/mapping or estimated from
//     a static per-kind cost table (the compilation-flow scheme of
//     Burgholzer, Raymond & Wille 2020).
//
// All strategies support cooperative timeouts and node budgets, making
// "Timeout" a first-class verdict exactly as in the paper's evaluation.
package ec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/resource"
	"qcec/internal/sim"
)

// Strategy selects the gate-consumption order of the checker.
type Strategy int

// Available strategies.  Proportional is the recommended scheme and the
// zero value, so it is what both ec.Options and core.Options default to;
// Construction is the "build and compare the complete functionality"
// baseline the paper measures as t_ec.
const (
	Proportional Strategy = iota
	Construction
	Sequential
	Lookahead
	// StrategyGateCost schedules the two sides by a per-gate cost profile:
	// undoing gate i of G is followed by the f(i) gates of G' it lowered to,
	// keeping the accumulated product near the identity through aggressive
	// compilation.  The profile comes from Options.CostProfile when the pair
	// carries provenance (decompose.WithProfile, mapping.Result.CostProfile)
	// and is otherwise estimated from a static per-kind cost table
	// (EstimateCostProfile).
	StrategyGateCost
	// StrategyStabilizer routes the pair to the polynomial-time tableau
	// checker (internal/stab) instead of any DD scheme.  It is complete on
	// Clifford-only pairs and declines everything else with a typed
	// *NotCliffordError (Cause == CauseError), leaving universal gate sets
	// to the DD strategies.
	StrategyStabilizer
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Construction:
		return "construction"
	case Sequential:
		return "sequential"
	case Proportional:
		return "proportional"
	case Lookahead:
		return "lookahead"
	case StrategyGateCost:
		return "gate-cost"
	case StrategyStabilizer:
		return "stabilizer"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Verdict is the outcome of a complete equivalence check.
type Verdict int

// Possible verdicts.  TimedOut means neither equivalence nor a
// counterexample was established within the resource budget — the outcome
// the paper's simulation stage exists to make rare.
const (
	Equivalent Verdict = iota
	EquivalentUpToGlobalPhase
	NotEquivalent
	TimedOut
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case EquivalentUpToGlobalPhase:
		return "equivalent up to global phase"
	case NotEquivalent:
		return "not equivalent"
	case TimedOut:
		return "timeout"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Options configures a check.
type Options struct {
	// Strategy selects the gate alternation scheme (default Proportional).
	Strategy Strategy
	// Context, when non-nil, cancels the check cooperatively: the gate
	// application loops poll ctx.Err() between gates, and the DD package
	// polls it inside long-running operations (see dd.Package.SetCancel).
	// A cancelled check returns TimedOut with Cause == CauseCancelled.
	// This is how the prover portfolio stops losing provers promptly.
	Context context.Context
	// Timeout bounds the wall-clock time of the check; zero means no limit.
	Timeout time.Duration
	// NodeLimit aborts the check when the DD package exceeds this many live
	// nodes; zero (or negative) means no limit.  Exceeding it yields
	// TimedOut.
	NodeLimit int
	// UpToGlobalPhase accepts a unit-magnitude scalar factor between the two
	// circuits (decompositions routinely introduce one).
	UpToGlobalPhase bool
	// OutputPerm declares that output wire OutputPerm[q] of G' carries what
	// wire q of G carries (routers that relabel instead of un-swapping).
	// nil means the identity assignment.
	OutputPerm []int
	// Tolerance overrides the DD package weight tolerance (0 = default).
	Tolerance float64
	// CostProfile, for StrategyGateCost, gives the number of gates of g2
	// that source gate i of g1 lowered to — the native profile emitted by
	// decompose.WithProfile / mapping.Map, composed with ComposeProfiles
	// across stages.  Its length must equal len(g1.Gates) and entries must
	// be non-negative; a nil profile makes the checker fall back to the
	// static per-kind estimate (EstimateCostProfile).  Other strategies
	// ignore it.
	CostProfile []int
	// DisableGateCache turns off the DD package's gate-DD cache for this
	// check (benchmark baseline runs only; verdicts are identical either way).
	DisableGateCache bool
	// DisableApplyKernel is plumbed alongside DisableGateCache so one knob
	// configures a whole flow (core.Check and the portfolio forward it).
	// The complete routine's own gate applications are matrix-matrix
	// products, which the vector kernel does not cover, so the flag
	// currently changes nothing here; it exists so callers need not know
	// which stages a configuration reaches.
	DisableApplyKernel bool
	// MemSoftLimit / MemHardLimit, in bytes, put the check under a memory
	// watchdog (internal/resource): above the soft limit the DD package is
	// forced to collect and flush caches, above the hard limit the check is
	// cancelled with Cause == CauseMemLimit.  They are ignored when Context
	// already carries a watchdog (the portfolio starts one per race); zero
	// disables the respective bound.
	MemSoftLimit uint64
	MemHardLimit uint64
	// Pool, when non-nil, supplies a warm DD package (dd.Pool.Get) instead
	// of a fresh dd.New, and receives it back reset when the check ends
	// cleanly.  Packages that survived a genuine panic are dropped, not
	// returned.  Verdicts are identical either way.
	Pool *dd.Pool
}

// StopCause identifies the resource bound that ended an inconclusive check.
type StopCause int

// Causes for a TimedOut verdict.  CauseNone means the check ran to
// completion (any other verdict).
const (
	CauseNone StopCause = iota
	CauseTimeout
	CauseNodeLimit
	CauseCancelled
	// CauseMemLimit: the memory watchdog's hard limit cancelled the check
	// (Result.Err carries the *resource.MemoryLimitError).
	CauseMemLimit
	// CauseError: the check died on a recovered panic (Result.Err carries
	// the *resource.PanicError) — reachable from degenerate input such as
	// non-finite gate parameters.
	CauseError
)

// String returns the cause name.
func (c StopCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseTimeout:
		return "timeout"
	case CauseNodeLimit:
		return "node-limit"
	case CauseCancelled:
		return "cancelled"
	case CauseMemLimit:
		return "mem-limit"
	case CauseError:
		return "error"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// Result reports the outcome and cost of a check.
type Result struct {
	Verdict      Verdict
	Runtime      time.Duration
	GatesApplied int
	// ProbeMuls counts the speculative matrix multiplications the Lookahead
	// scheme performs to size up its two candidates; they are real DD work
	// that GatesApplied alone would hide from scheme comparisons.
	ProbeMuls      int
	PeakNodes      int
	FinalNodes     int
	Strategy       Strategy
	Counterexample *uint64   // basis state whose columns differ, if found
	Cause          StopCause // what stopped a TimedOut check
	Reason         string    // human-readable cause for TimedOut
	// Err carries the typed failure behind CauseError (*resource.PanicError)
	// or CauseMemLimit (*resource.MemoryLimitError); nil otherwise.
	Err error
	// DD snapshots the check's DD-package statistics (gate-cache and
	// compute-table hit rates, unique-table activity, GC reclaims).
	DD dd.Stats
	// Mem snapshots the memory watchdog's counters when this check started
	// its own watchdog (MemSoftLimit/MemHardLimit set and no watchdog on the
	// context); nil otherwise.
	Mem *resource.Stats
}

// Equivalent reports whether the verdict establishes equivalence under the
// requested phase convention.
func (r Result) Equivalent() bool {
	return r.Verdict == Equivalent || r.Verdict == EquivalentUpToGlobalPhase
}

type checker struct {
	p        *dd.Package
	opts     Options
	deadline time.Time
	// agreeTol is the classification tolerance derived from the DD weight
	// tolerance (agreementTolerance); it bounds both the up-to-phase
	// magnitude band and the counterexample fidelity threshold.
	agreeTol float64
	result   Result
}

// agreementTolerance derives the classification tolerance from the DD weight
// tolerance: amplitudes drift through long gate chains, so the band is a few
// orders of magnitude looser than the single-operation tolerance, capped so a
// sloppy package still cannot certify a genuinely different magnitude.  The
// same derivation (and cap) is used by core.statesAgree and
// circuit.CliffordAngleTolerance; with the default weight tolerance of 1e-10
// it reproduces the historical 1e-6 band.
func agreementTolerance(ddTol float64) float64 {
	tol := ddTol * 1e4
	if tol > 1e-3 {
		tol = 1e-3
	}
	return tol
}

// cancelCause classifies a context cancellation: a *resource.MemoryLimitError
// cause means the memory watchdog tripped; anything else is an ordinary
// cancellation.
func cancelCause(ctx context.Context) (StopCause, string, error) {
	cause := context.Cause(ctx)
	var mle *resource.MemoryLimitError
	if errors.As(cause, &mle) {
		return CauseMemLimit, mle.Error(), mle
	}
	return CauseCancelled, fmt.Sprintf("cancelled: %v", ctx.Err()), nil
}

func (c *checker) expired() bool {
	if ctx := c.opts.Context; ctx != nil && ctx.Err() != nil {
		c.result.Cause, c.result.Reason, c.result.Err = cancelCause(ctx)
		return true
	}
	if c.opts.NodeLimit > 0 && c.p.NodeCount() > c.opts.NodeLimit {
		c.result.Cause = CauseNodeLimit
		c.result.Reason = fmt.Sprintf("node limit %d exceeded", c.opts.NodeLimit)
		return true
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.result.Cause = CauseTimeout
		c.result.Reason = fmt.Sprintf("timeout %s exceeded", c.opts.Timeout)
		return true
	}
	return false
}

func (c *checker) note() {
	if n := c.p.NodeCount(); n > c.result.PeakNodes {
		c.result.PeakNodes = n
	}
}

// Check decides the equivalence of g1 and g2.
func Check(g1, g2 *circuit.Circuit, opts Options) Result {
	if g1.N != g2.N {
		return Result{
			Verdict:  NotEquivalent,
			Strategy: opts.Strategy,
			Reason:   fmt.Sprintf("register sizes differ (%d vs %d)", g1.N, g2.N),
		}
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 1e-10
	}
	if opts.Strategy == StrategyStabilizer {
		// The tableau fast path never touches a DD package unless it has to
		// anchor a strict-phase verdict, so it is dispatched before any
		// package or watchdog setup — a non-Clifford pair pays only the
		// gate-set scan.
		return checkStabilizer(g1, g2, opts, tol)
	}
	// Put the check under a memory watchdog when limits are configured and
	// the caller has not already provided one through the context (the
	// portfolio runs one watchdog per race).
	w := resource.FromContext(opts.Context)
	ownWatchdog := false
	if w == nil && (opts.MemSoftLimit > 0 || opts.MemHardLimit > 0) {
		w, opts.Context = resource.Start(opts.Context, resource.Config{
			SoftLimit: opts.MemSoftLimit,
			HardLimit: opts.MemHardLimit,
		})
		ownWatchdog = true
	}
	var p *dd.Package
	if opts.Pool != nil {
		p = opts.Pool.Get(g1.N, tol)
	} else {
		p = dd.New(g1.N, tol)
	}
	genuineFault := false
	c := &checker{p: p, opts: opts, agreeTol: agreementTolerance(tol)}
	c.result.Strategy = opts.Strategy
	if opts.Timeout > 0 {
		c.deadline = time.Now().Add(opts.Timeout)
		// The same deadline aborts inside DD operations: a single huge
		// multiplication would otherwise run far past any per-gate check.
		p.SetDeadline(c.deadline)
	}
	if opts.NodeLimit > 0 {
		p.SetNodeLimit(opts.NodeLimit)
	}
	if opts.DisableGateCache {
		p.SetGateCacheEnabled(false)
	}
	if ctx := opts.Context; ctx != nil {
		// Reach cancellation inside long DD operations, where the per-gate
		// expired() polls cannot.
		p.SetCancel(func() bool { return ctx.Err() != nil })
	}
	var removeGauge func()
	if w != nil {
		p.SetPressure(w.Epoch)
		removeGauge = w.AddGauge(p.OccupancyGauge())
	}
	start := time.Now()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if le, ok := r.(*dd.LimitError); ok {
				c.result.Verdict = TimedOut
				c.result.Reason = le.Error()
				switch {
				case le.Cancelled:
					if ctx := c.opts.Context; ctx != nil {
						c.result.Cause, c.result.Reason, c.result.Err = cancelCause(ctx)
					} else {
						c.result.Cause = CauseCancelled
					}
				case le.Deadline:
					c.result.Cause = CauseTimeout
				default:
					c.result.Cause = CauseNodeLimit
				}
				return
			}
			// Anything else is a genuine fault (degenerate input, injected
			// chaos, or a bug): isolate it as a typed error instead of
			// crossing the prover boundary as a crash.
			perr := resource.NewPanicError("ec "+c.opts.Strategy.String(), r)
			genuineFault = true
			c.result.Verdict = TimedOut
			c.result.Cause = CauseError
			c.result.Err = perr
			c.result.Reason = perr.Error()
		}()
		switch opts.Strategy {
		case Construction:
			c.runConstruction(g1, g2)
		default:
			c.runAlternating(g1, g2)
		}
	}()
	c.result.Runtime = time.Since(start)
	c.result.FinalNodes = p.NodeCount()
	c.result.DD = p.Snapshot()
	if n := p.NodeCount(); n > c.result.PeakNodes {
		c.result.PeakNodes = n
	}
	if removeGauge != nil {
		removeGauge()
	}
	if ownWatchdog {
		w.Stop()
		st := w.Stats()
		c.result.Mem = &st
	}
	if opts.Pool != nil {
		// Recycle only after the snapshot above — Put resets the package and
		// zeroes its counters.  A package that survived a genuine panic may
		// hold corrupted internal state the reset cannot undo; drop it.
		if genuineFault {
			opts.Pool.Forget()
		} else {
			opts.Pool.Put(p)
		}
	}
	return c.result
}

// target returns the matrix the accumulated product U'·U† must equal for the
// circuits to count as equivalent: the identity, or the declared output
// permutation.
func (c *checker) target() dd.MEdge {
	if c.opts.OutputPerm == nil {
		return c.p.Identity()
	}
	return sim.PermutationDD(c.p, c.opts.OutputPerm)
}

func (c *checker) classify(m, target dd.MEdge) {
	if m.N == target.N {
		if m.W == target.W {
			c.result.Verdict = Equivalent
			return
		}
		mag := m.W.Abs()
		if mag > 1-c.agreeTol && mag < 1+c.agreeTol {
			if c.opts.UpToGlobalPhase {
				c.result.Verdict = EquivalentUpToGlobalPhase
				return
			}
			c.result.Verdict = NotEquivalent
			c.result.Reason = "differ by a global phase"
			ce := uint64(0)
			c.result.Counterexample = &ce
			return
		}
	}
	c.result.Verdict = NotEquivalent
	if ce, ok := findCounterexample(c.p, m, target, c.agreeTol); ok {
		c.result.Counterexample = &ce
	}
}

// runConstruction builds both unitaries independently and compares them.
func (c *checker) runConstruction(g1, g2 *circuit.Circuit) {
	u1 := c.p.Identity()
	for _, g := range g1.Gates {
		u1 = c.p.MulMM(sim.GateDD(c.p, g), u1)
		c.result.GatesApplied++
		c.note()
		if c.expired() {
			c.result.Verdict = TimedOut
			return
		}
		c.p.MaybeGC(nil, []dd.MEdge{u1})
	}
	u2 := c.p.Identity()
	for _, g := range g2.Gates {
		u2 = c.p.MulMM(sim.GateDD(c.p, g), u2)
		c.result.GatesApplied++
		c.note()
		if c.expired() {
			c.result.Verdict = TimedOut
			return
		}
		c.p.MaybeGC(nil, []dd.MEdge{u1, u2})
	}
	// Compare U = R·U' where R undoes the output permutation, by checking
	// U'·U† against the permutation target exactly like the alternating
	// schemes do.
	m := c.p.MulMM(u2, c.p.ConjugateTranspose(u1))
	c.note()
	c.classify(m, c.target())
}

// runAlternating consumes gates of G' (left multiplications) and inverted
// gates of G (right multiplications), producing U'·U†.
func (c *checker) runAlternating(g1, g2 *circuit.Circuit) {
	target := c.target()
	m := c.p.Identity()
	i, j := 0, 0 // i indexes g1 (right side), j indexes g2 (left side)
	applyLeft := func() {
		m = c.p.MulMM(sim.GateDD(c.p, g2.Gates[j]), m)
		j++
		c.result.GatesApplied++
	}
	applyRight := func() {
		m = c.p.MulMM(m, sim.GateDD(c.p, g1.Gates[i].Inverse()))
		i++
		c.result.GatesApplied++
	}

	// Per-step gate ratio for the proportional strategy.
	ratioLeft, ratioRight := 1, 1
	if c.opts.Strategy == Proportional {
		n1, n2 := len(g1.Gates), len(g2.Gates)
		switch {
		case n1 == 0 || n2 == 0:
			// degenerate; sequential behavior below
		case n2 >= n1:
			ratioLeft = (n2 + n1 - 1) / n1
		default:
			ratioRight = (n1 + n2 - 1) / n2
		}
	}

	// Cumulative schedule for the gate-cost strategy: sched[i] gates of g2
	// are consumed before inverted gate i of g1 is undone.
	var sched []int
	if c.opts.Strategy == StrategyGateCost {
		sched = gateCostSchedule(g1, g2, c.opts.CostProfile)
	}

	for i < len(g1.Gates) || j < len(g2.Gates) {
		switch c.opts.Strategy {
		case Sequential:
			if j < len(g2.Gates) {
				applyLeft()
			} else {
				applyRight()
			}
		case Proportional:
			for k := 0; k < ratioLeft && j < len(g2.Gates); k++ {
				applyLeft()
			}
			for k := 0; k < ratioRight && i < len(g1.Gates); k++ {
				applyRight()
			}
		case StrategyGateCost:
			// Apply at most one gate per outer iteration so the per-iteration
			// note()/expired()/MaybeGC polling below bounds every chunk of a
			// high-cost source gate, not just its boundary.
			switch {
			case i >= len(g1.Gates):
				applyLeft()
			case j >= len(g2.Gates):
				applyRight()
			case j < sched[i]:
				applyLeft()
			default:
				applyRight()
			}
		case Lookahead:
			switch {
			case j >= len(g2.Gates):
				applyRight()
			case i >= len(g1.Gates):
				applyLeft()
			default:
				left := c.p.MulMM(sim.GateDD(c.p, g2.Gates[j]), m)
				c.result.ProbeMuls++
				// A probe is a full matrix product; poll the budgets between
				// the two so a blown-up candidate aborts before the second
				// probe repeats the damage.
				c.note()
				if c.expired() {
					c.result.Verdict = TimedOut
					return
				}
				right := c.p.MulMM(m, sim.GateDD(c.p, g1.Gates[i].Inverse()))
				c.result.ProbeMuls++
				if c.p.MSize(left) <= c.p.MSize(right) {
					m = left
					j++
				} else {
					m = right
					i++
				}
				c.result.GatesApplied++
			}
		default:
			panic(fmt.Sprintf("ec: unknown strategy %v", c.opts.Strategy))
		}
		c.note()
		if c.expired() {
			c.result.Verdict = TimedOut
			return
		}
		c.p.MaybeGC(nil, []dd.MEdge{m, target})
	}
	c.classify(m, target)
}

// findCounterexample searches for a basis state |i> on which the accumulated
// product m and the target disagree, i.e. an input on which the two circuits
// produce different outputs.  Because errors typically affect most columns
// (paper Sec. IV-A), a short deterministic-then-random probe almost always
// succeeds.  A column counts as disagreeing when its fidelity falls below
// 1-tol, with tol derived from the package weight tolerance
// (agreementTolerance) so a loose package does not manufacture witnesses out
// of its own rounding.
func findCounterexample(p *dd.Package, m, target dd.MEdge, tol float64) (uint64, bool) {
	n := p.Qubits()
	var limit uint64
	if n >= 16 {
		limit = 1 << 16
	} else {
		limit = 1 << uint(n)
	}
	probe := func(i uint64) bool {
		col := p.MulMV(m, p.BasisState(i))
		ref := p.MulMV(target, p.BasisState(i))
		f := p.Fidelity(col, ref)
		return f < 1-tol
	}
	for i := uint64(0); i < 64 && i < limit; i++ {
		if probe(i) {
			return i, true
		}
	}
	rng := rand.New(rand.NewSource(0x5EED))
	var mask uint64
	if n >= 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << uint(n)) - 1
	}
	for t := 0; t < 256; t++ {
		i := rng.Uint64() & mask
		if probe(i) {
			return i, true
		}
	}
	return 0, false
}
