package ec

import (
	"context"
	"math/cmplx"
	"testing"

	"qcec/internal/circuit"
)

// A tightened Options.Tolerance must tighten the counterexample fidelity
// threshold with it.  RY(θ) vs RY(θ+ε) gives every column an infidelity of
// about ε²/4 ≈ 3e-7: inside the historical hardcoded 1-1e-6 band (where the
// witness search reported nothing) but far outside the band derived from a
// tight tolerance (1e-12 → 1e-8).
func TestCounterexampleThresholdFromTolerance(t *testing.T) {
	const eps = 1.1e-3
	g1 := circuit.New(1, "ry")
	g1.RY(0.3, 0)
	g2 := circuit.New(1, "ry-drift")
	g2.RY(0.3+eps, 0)

	r := Check(g1, g2, Options{Strategy: Proportional, Tolerance: 1e-12})
	if r.Verdict != NotEquivalent {
		t.Fatalf("tight check: verdict = %v, want NotEquivalent", r.Verdict)
	}
	if r.Counterexample == nil {
		t.Fatal("tight check found no counterexample: fidelity threshold not derived from Options.Tolerance")
	}

	// At the default tolerance the derived band reproduces the historical
	// 1e-6: the drift is below it, so no witness is manufactured.
	def := Check(g1, g2, Options{Strategy: Proportional})
	if def.Counterexample != nil {
		t.Errorf("default check manufactured a counterexample %d for a sub-band drift", *def.Counterexample)
	}
}

// The up-to-phase magnitude band must widen with a coarse Options.Tolerance
// the same way circuit.CliffordAngleTolerance does.  The custom gate is
// (1+5e-4)·e^{i0.4}·X: its magnitude drift sits inside the band derived from
// a coarse tolerance (1e-5 → capped at 1e-3) but outside the historical
// hardcoded 1e-6 band.
func TestPhaseBandFromTolerance(t *testing.T) {
	ph := complex(1+5e-4, 0) * cmplx.Exp(complex(0, 0.4))
	g1 := circuit.New(1, "x")
	g1.X(0)
	g2 := circuit.New(1, "phx")
	g2.Add(circuit.Gate{
		Kind: circuit.Custom, Target: 0, Target2: -1,
		Mat: [2][2]complex128{{0, ph}, {ph, 0}},
	})

	coarse := Check(g1, g2, Options{Strategy: Proportional, UpToGlobalPhase: true, Tolerance: 1e-5})
	if coarse.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("coarse check: verdict = %v, want EquivalentUpToGlobalPhase", coarse.Verdict)
	}

	// At the default tolerance the same pair is outside the band.
	strict := Check(g1, g2, Options{Strategy: Proportional, UpToGlobalPhase: true})
	if strict.Verdict != NotEquivalent {
		t.Fatalf("default check: verdict = %v, want NotEquivalent", strict.Verdict)
	}
}

// Lookahead's speculative multiplications are real DD work and must be
// visible in the result: two probes per probe-decided step, none once a side
// is exhausted, and zero for the schemes that never probe.
func TestLookaheadProbeAccounting(t *testing.T) {
	g1, g2 := ghz(4), ghz(4)
	r := Check(g1, g2, Options{Strategy: Lookahead})
	if r.Verdict != Equivalent {
		t.Fatalf("verdict = %v", r.Verdict)
	}
	if r.ProbeMuls == 0 || r.ProbeMuls%2 != 0 {
		t.Errorf("ProbeMuls = %d, want a positive even count (two per decided step)", r.ProbeMuls)
	}
	// At most every non-final step is probe-decided.
	if max := 2 * (len(g1.Gates) + len(g2.Gates) - 1); r.ProbeMuls > max {
		t.Errorf("ProbeMuls = %d exceeds the %d possible probes", r.ProbeMuls, max)
	}
	if rp := Check(g1, g2, Options{Strategy: Proportional}); rp.ProbeMuls != 0 {
		t.Errorf("proportional reported ProbeMuls = %d, want 0", rp.ProbeMuls)
	}
}

// The budget polls must run between Lookahead's two probes, not only at the
// end of a full step: with a context cancelled before the check starts, the
// run has to stop after the first speculative multiplication, before any
// gate is committed.
func TestLookaheadPollsBetweenProbes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Check(ghz(4), ghz(4), Options{Strategy: Lookahead, Context: ctx})
	if r.Verdict != TimedOut || r.Cause != CauseCancelled {
		t.Fatalf("verdict = %v, cause = %v; want TimedOut/CauseCancelled", r.Verdict, r.Cause)
	}
	if r.ProbeMuls != 1 || r.GatesApplied != 0 {
		t.Errorf("stopped at ProbeMuls=%d GatesApplied=%d; want the cancellation honored between the probes (1, 0)",
			r.ProbeMuls, r.GatesApplied)
	}
}
