package ec

import (
	"errors"
	"math"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/cn"
	"qcec/internal/resource"
)

// TestNonFiniteAngleIsTypedError: a non-finite rotation angle in the input
// must surface as TimedOut/CauseError with a *cn.NonFiniteError reachable
// through the error chain — for every strategy, and never a crash.
func TestNonFiniteAngleIsTypedError(t *testing.T) {
	g1 := circuit.New(2, "clean")
	g1.H(0).CX(0, 1)
	g2 := circuit.New(2, "degenerate")
	g2.H(0).CX(0, 1).RX(math.Inf(1), 0)

	for _, s := range allStrategies() {
		res := Check(g1, g2, Options{Strategy: s})
		if res.Verdict != TimedOut {
			t.Fatalf("%v: verdict = %v, want %v", s, res.Verdict, TimedOut)
		}
		if res.Cause != CauseError {
			t.Fatalf("%v: cause = %v, want %v", s, res.Cause, CauseError)
		}
		var perr *resource.PanicError
		if !errors.As(res.Err, &perr) {
			t.Fatalf("%v: Err = %v (%T), want *resource.PanicError", s, res.Err, res.Err)
		}
		var nfe *cn.NonFiniteError
		if !errors.As(res.Err, &nfe) {
			t.Fatalf("%v: Err = %v, want to unwrap to *cn.NonFiniteError", s, res.Err)
		}
		if res.Reason == "" {
			t.Fatalf("%v: no human-readable reason", s)
		}
	}
}
