package ec

import (
	"fmt"
	"math"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/resource"
	"qcec/internal/sim"
	"qcec/internal/stab"
)

// This file is the StrategyStabilizer backend: the polynomial-time Clifford
// checker (internal/stab) dressed in the complete routine's Result shape,
// resource contracts and pool/watchdog discipline, so the portfolio, the
// CLI and the server route to it exactly like any DD strategy.

// NotCliffordError reports why the stabilizer strategy declined a pair: the
// gate-set analyzer found a gate outside the Clifford set in one of the
// circuits.  It is the whole cost a non-Clifford pair pays on this path —
// one early-exit scan, no DD package, no tableau.
type NotCliffordError struct {
	Circuit   string // "G" or "G'"
	GateIndex int
	Gate      string
}

// Error formats the routing refusal.
func (e *NotCliffordError) Error() string {
	return fmt.Sprintf("stabilizer: %s gate %d (%s) is not Clifford", e.Circuit, e.GateIndex, e.Gate)
}

// anchorTolerance derives the phase-anchor agreement bound from the DD
// weight tolerance — the same four-orders-of-magnitude derivation as core's
// agreementTolerance (weight round-off compounds over the gate sequence),
// capped at 1e-3.  At the default weight tolerance this is 1e-6.
func anchorTolerance(ddTol float64) float64 {
	tol := ddTol * 1e4
	if tol > 1e-3 {
		tol = 1e-3
	}
	return tol
}

// checkStabilizer runs the tableau fast path.  tol is the already-defaulted
// DD weight tolerance; the analyzer's angle snap and the phase anchor's
// agreement bound both derive from it.
func checkStabilizer(g1, g2 *circuit.Circuit, opts Options, tol float64) Result {
	start := time.Now()
	res := Result{Strategy: StrategyStabilizer}
	finish := func() Result {
		res.Runtime = time.Since(start)
		return res
	}

	// One-pass gate-set scan; a non-Clifford gate ends the check here.
	angleTol := circuit.CliffordAngleTolerance(tol)
	ops1, bad, ok := circuit.LowerClifford(g1, angleTol)
	if !ok {
		res.Verdict = TimedOut
		res.Cause = CauseError
		res.Err = &NotCliffordError{Circuit: "G", GateIndex: bad, Gate: g1.Gates[bad].String()}
		res.Reason = res.Err.Error()
		return finish()
	}
	ops2, bad, ok := circuit.LowerClifford(g2, angleTol)
	if !ok {
		res.Verdict = TimedOut
		res.Cause = CauseError
		res.Err = &NotCliffordError{Circuit: "G'", GateIndex: bad, Gate: g2.Gates[bad].String()}
		res.Reason = res.Err.Error()
		return finish()
	}

	// Same watchdog discipline as the DD strategies: honor one already on
	// the context, otherwise start our own when limits are configured (the
	// tableau itself is a few kilobytes, but the strict-phase anchor below
	// builds state DDs).
	w := resource.FromContext(opts.Context)
	ownWatchdog := false
	if w == nil && (opts.MemSoftLimit > 0 || opts.MemHardLimit > 0) {
		w, opts.Context = resource.Start(opts.Context, resource.Config{
			SoftLimit: opts.MemSoftLimit,
			HardLimit: opts.MemHardLimit,
		})
		ownWatchdog = true
	}
	defer func() {
		if ownWatchdog {
			w.Stop()
			st := w.Stats()
			res.Mem = &st
		}
	}()

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	sres := stab.Check(opts.Context, deadline, g1.N, ops1, ops2, opts.OutputPerm)
	res.GatesApplied = sres.GatesApplied
	switch sres.Verdict {
	case stab.Aborted:
		res.Verdict = TimedOut
		if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
			res.Cause, res.Reason, res.Err = cancelCause(ctx)
		} else {
			res.Cause = CauseTimeout
			res.Reason = fmt.Sprintf("timeout %s exceeded", opts.Timeout)
		}
		return finish()
	case stab.NotEquivalent:
		res.Verdict = NotEquivalent
		res.Counterexample = sres.Counterexample
		res.Reason = fmt.Sprintf("%d of %d generators moved", sres.Mismatches, 2*g1.N)
		return finish()
	}
	// All 2n generators fixed: the circuits are equal up to a global scalar.
	if opts.UpToGlobalPhase {
		res.Verdict = EquivalentUpToGlobalPhase
		return finish()
	}
	anchorPhase(g1, g2, opts, tol, &res)
	return finish()
}

// anchorPhase resolves the residual global scalar in the strict phase
// convention: the tableau has proven U' = e^{iφ}·P·U (P the declared output
// relabeling), so a single basis-state simulation of both circuits pins φ —
// <0|P†U'|0> / <0|U|0> — with one overlap.  This is the only place the
// stabilizer strategy touches a DD package, and only on pairs already
// proven equivalent up to phase.
func anchorPhase(g1, g2 *circuit.Circuit, opts Options, tol float64, res *Result) {
	var p *dd.Package
	if opts.Pool != nil {
		p = opts.Pool.Get(g1.N, tol)
	} else {
		p = dd.New(g1.N, tol)
	}
	genuineFault := false
	defer func() {
		res.FinalNodes = p.NodeCount()
		if n := p.NodeCount(); n > res.PeakNodes {
			res.PeakNodes = n
		}
		res.DD = p.Snapshot()
		if opts.Pool != nil {
			if genuineFault {
				opts.Pool.Forget()
			} else {
				opts.Pool.Put(p)
			}
		}
	}()
	if opts.Timeout > 0 {
		p.SetDeadline(time.Now().Add(opts.Timeout))
	}
	if opts.NodeLimit > 0 {
		p.SetNodeLimit(opts.NodeLimit)
	}
	if ctx := opts.Context; ctx != nil {
		p.SetCancel(func() bool { return ctx.Err() != nil })
	}
	var removeGauge func()
	if w := resource.FromContext(opts.Context); w != nil {
		p.SetPressure(w.Epoch)
		removeGauge = w.AddGauge(p.OccupancyGauge())
	}
	if removeGauge != nil {
		defer removeGauge()
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if le, ok := r.(*dd.LimitError); ok {
			res.Verdict = TimedOut
			res.Reason = le.Error()
			switch {
			case le.Cancelled:
				if ctx := opts.Context; ctx != nil {
					res.Cause, res.Reason, res.Err = cancelCause(ctx)
				} else {
					res.Cause = CauseCancelled
				}
			case le.Deadline:
				res.Cause = CauseTimeout
			default:
				res.Cause = CauseNodeLimit
			}
			return
		}
		perr := resource.NewPanicError("ec stabilizer anchor", r)
		genuineFault = true
		res.Verdict = TimedOut
		res.Cause = CauseError
		res.Err = perr
		res.Reason = perr.Error()
	}()

	s := sim.NewOn(p)
	in := p.BasisState(0)
	u := s.RunFromWithPins(g1, in, []dd.VEdge{in})
	v := s.RunFromWithPins(g2, in, []dd.VEdge{u})
	if opts.OutputPerm != nil {
		v = p.MulMV(sim.PermutationDD(p, invertPermStab(opts.OutputPerm)), v)
	}
	overlap := p.InnerProduct(u, v)
	atol := anchorTolerance(tol)
	if math.Abs(real(overlap)-1) < atol && math.Abs(imag(overlap)) < atol {
		res.Verdict = Equivalent
		return
	}
	res.Verdict = NotEquivalent
	res.Reason = "differ by a global phase"
	ce := uint64(0)
	res.Counterexample = &ce
}

// invertPermStab mirrors core's permutation inversion for the anchor's
// un-permute step (the simulation compares P⁻¹·U'|0> against U|0>).
func invertPermStab(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}
