package ec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"qcec/internal/circuit"
)

func allStrategies() []Strategy {
	return []Strategy{Construction, Sequential, Proportional, Lookahead, StrategyGateCost}
}

func ghz(n int) *circuit.Circuit {
	c := circuit.New(n, "ghz")
	c.H(0)
	for i := 1; i < n; i++ {
		c.CX(i-1, i)
	}
	return c
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "random")
	for i := 0; i < gates; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.S(rng.Intn(n))
		case 3:
			c.RZ(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 4:
			c.X(rng.Intn(n))
		case 5:
			a := rng.Intn(n)
			c.CX(a, (a+1+rng.Intn(n-1))%n)
		}
	}
	return c
}

func TestIdenticalCircuitsEquivalent(t *testing.T) {
	g := ghz(4)
	for _, s := range allStrategies() {
		r := Check(g, g.Clone(), Options{Strategy: s})
		if r.Verdict != Equivalent {
			t.Errorf("%v: verdict = %v", s, r.Verdict)
		}
		if !r.Equivalent() {
			t.Errorf("%v: Equivalent() = false", s)
		}
	}
}

func TestRewrittenEquivalent(t *testing.T) {
	// HXH = Z: G uses Z, G' uses HXH.
	g1 := circuit.New(2, "z")
	g1.Z(0).CX(0, 1)
	g2 := circuit.New(2, "hxh")
	g2.H(0).X(0).H(0).CX(0, 1)
	for _, s := range allStrategies() {
		r := Check(g1, g2, Options{Strategy: s})
		if r.Verdict != Equivalent {
			t.Errorf("%v: verdict = %v (reason %q)", s, r.Verdict, r.Reason)
		}
	}
}

func TestSingleGateErrorDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g1 := randomCircuit(rng, 4, 30)
	g2 := g1.Clone()
	// Flip one gate: replace gate 12 with an extra X on its target.
	g2.Gates[12] = circuit.Gate{Kind: circuit.X, Target: g2.Gates[12].Target, Target2: -1}
	// Ensure they actually differ (gate 12 was not already X).
	for _, s := range allStrategies() {
		r := Check(g1, g2, Options{Strategy: s})
		if r.Verdict != NotEquivalent {
			t.Errorf("%v: verdict = %v, want not equivalent", s, r.Verdict)
		}
		if r.Counterexample == nil {
			t.Errorf("%v: no counterexample produced", s)
		}
	}
}

func TestMisplacedCNOTDetected(t *testing.T) {
	g1 := ghz(4)
	g2 := circuit.New(4, "bad")
	g2.H(0).CX(0, 1).CX(1, 2).CX(1, 3) // last CX control moved from 2 to 1
	r := Check(g1, g2, Options{Strategy: Proportional})
	if r.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v", r.Verdict)
	}
}

func TestGlobalPhaseHandling(t *testing.T) {
	g1 := circuit.New(1, "x")
	g1.X(0)
	// e^{i*0.4} X as a custom gate.
	ph := cmplx.Exp(complex(0, 0.4))
	g2 := circuit.New(1, "phx")
	g2.Add(circuit.Gate{
		Kind: circuit.Custom, Target: 0, Target2: -1,
		Mat: [2][2]complex128{{0, ph}, {ph, 0}},
	})
	strict := Check(g1, g2, Options{Strategy: Proportional})
	if strict.Verdict != NotEquivalent {
		t.Errorf("strict check accepted phase difference: %v", strict.Verdict)
	}
	loose := Check(g1, g2, Options{Strategy: Proportional, UpToGlobalPhase: true})
	if loose.Verdict != EquivalentUpToGlobalPhase {
		t.Errorf("phase-insensitive check: verdict = %v", loose.Verdict)
	}
	if !loose.Equivalent() {
		t.Error("EquivalentUpToGlobalPhase not counted as equivalent")
	}
}

func TestOutputPermutation(t *testing.T) {
	// G = identity-ish circuit; G' = same followed by a SWAP that the
	// "router" chose not to undo, declaring an output permutation instead.
	g1 := circuit.New(3, "orig")
	g1.H(0).CX(0, 1).T(2)
	g2 := g1.Clone()
	g2.Swap(1, 2) // logical 1 now on wire 2 and vice versa
	perm := []int{0, 2, 1}
	for _, s := range allStrategies() {
		r := Check(g1, g2, Options{Strategy: s, OutputPerm: perm})
		if r.Verdict != Equivalent {
			t.Errorf("%v: with perm: verdict = %v (%s)", s, r.Verdict, r.Reason)
		}
		r = Check(g1, g2, Options{Strategy: s})
		if r.Verdict != NotEquivalent {
			t.Errorf("%v: without perm: verdict = %v", s, r.Verdict)
		}
	}
}

func TestTimeoutVerdict(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g1 := randomCircuit(rng, 10, 400)
	g2 := randomCircuit(rng, 10, 400)
	r := Check(g1, g2, Options{Strategy: Sequential, Timeout: time.Microsecond})
	if r.Verdict != TimedOut {
		t.Fatalf("verdict = %v, want timeout", r.Verdict)
	}
	if r.Reason == "" {
		t.Error("timeout without reason")
	}
}

func TestNodeLimitVerdict(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Random entangling circuit grows the matrix DD fast.
	g1 := randomCircuit(rng, 8, 200)
	g2 := randomCircuit(rng, 8, 200)
	r := Check(g1, g2, Options{Strategy: Sequential, NodeLimit: 100})
	if r.Verdict != TimedOut {
		t.Fatalf("verdict = %v, want timeout (node limit)", r.Verdict)
	}
}

func TestRegisterMismatch(t *testing.T) {
	r := Check(circuit.New(2, "a"), circuit.New(3, "b"), Options{})
	if r.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v", r.Verdict)
	}
}

func TestEmptyCircuitsEquivalent(t *testing.T) {
	for _, s := range allStrategies() {
		r := Check(circuit.New(2, "a"), circuit.New(2, "b"), Options{Strategy: s})
		if r.Verdict != Equivalent {
			t.Errorf("%v: empty circuits: %v", s, r.Verdict)
		}
	}
}

func TestInverseComposition(t *testing.T) {
	// G' = G followed by H H (identity pair): still equivalent.
	rng := rand.New(rand.NewSource(10))
	g1 := randomCircuit(rng, 5, 40)
	g2 := g1.Clone()
	g2.H(3).H(3)
	for _, s := range allStrategies() {
		r := Check(g1, g2, Options{Strategy: s})
		if r.Verdict != Equivalent {
			t.Errorf("%v: verdict = %v", s, r.Verdict)
		}
	}
}

func TestCounterexampleIsValid(t *testing.T) {
	g1 := ghz(3)
	g2 := circuit.New(3, "bad")
	g2.H(0).CX(0, 1) // missing last CX
	r := Check(g1, g2, Options{Strategy: Proportional})
	if r.Verdict != NotEquivalent || r.Counterexample == nil {
		t.Fatalf("verdict = %v, ce = %v", r.Verdict, r.Counterexample)
	}
	// Verify the counterexample by direct simulation comparison: the two
	// circuits must produce different states on it.
	ceState := func(c *circuit.Circuit) []complex128 {
		s := make([]complex128, 8)
		s[*r.Counterexample] = 1
		for _, g := range c.Gates {
			applyTestGate(s, g)
		}
		return s
	}
	a, b := ceState(g1), ceState(g2)
	same := true
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Error("reported counterexample does not distinguish the circuits")
	}
}

func applyTestGate(s []complex128, g circuit.Gate) {
	if g.Kind == circuit.SWAP {
		panic("test helper does not support SWAP")
	}
	u := g.Matrix()
	mask := uint64(1) << uint(g.Target)
	for i := uint64(0); i < uint64(len(s)); i++ {
		if i&mask != 0 {
			continue
		}
		ok := true
		for _, c := range g.Controls {
			bit := (i >> uint(c.Qubit)) & 1
			if c.Neg == (bit == 1) {
				ok = false
			}
		}
		if !ok {
			continue
		}
		j := i | mask
		a0, a1 := s[i], s[j]
		s[i] = u[0][0]*a0 + u[0][1]*a1
		s[j] = u[1][0]*a0 + u[1][1]*a1
	}
}

func TestStrategiesAgreeOnRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		g1 := randomCircuit(rng, 4, 25)
		var g2 *circuit.Circuit
		equivalent := trial%2 == 0
		if equivalent {
			g2 = g1.Clone()
			g2.Z(0).Z(0) // harmless pair
		} else {
			g2 = g1.Clone()
			idx := rng.Intn(len(g2.Gates))
			g2.Gates[idx] = circuit.Gate{Kind: circuit.Y, Target: g2.Gates[idx].Target, Target2: -1}
		}
		var verdicts []Verdict
		for _, s := range allStrategies() {
			verdicts = append(verdicts, Check(g1, g2, Options{Strategy: s}).Verdict)
		}
		for i := 1; i < len(verdicts); i++ {
			if verdicts[i] != verdicts[0] {
				t.Fatalf("trial %d: strategies disagree: %v", trial, verdicts)
			}
		}
		if equivalent && verdicts[0] != Equivalent {
			// A random Y replacement could coincide; equivalence trials are
			// constructed, so this must hold.
			t.Fatalf("trial %d: equivalent pair judged %v", trial, verdicts[0])
		}
	}
}

func TestResultMetadata(t *testing.T) {
	g := ghz(3)
	r := Check(g, g.Clone(), Options{Strategy: Proportional})
	if r.GatesApplied != 2*g.NumGates() {
		t.Errorf("GatesApplied = %d, want %d", r.GatesApplied, 2*g.NumGates())
	}
	if r.PeakNodes == 0 {
		t.Error("PeakNodes not recorded")
	}
	if r.Runtime <= 0 {
		t.Error("Runtime not recorded")
	}
	if r.Strategy != Proportional {
		t.Error("Strategy not propagated")
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range allStrategies() {
		if s.String() == "" {
			t.Error("empty strategy name")
		}
	}
	for _, v := range []Verdict{Equivalent, EquivalentUpToGlobalPhase, NotEquivalent, TimedOut} {
		if v.String() == "" {
			t.Error("empty verdict name")
		}
	}
}

func TestDeadlineAbortsInsideOperation(t *testing.T) {
	// A 14-qubit random circuit's construction involves multiplications far
	// larger than the per-gate deadline granularity; the in-operation
	// deadline must still bound the check to roughly the timeout.
	rng := rand.New(rand.NewSource(21))
	g1 := randomCircuit(rng, 14, 250)
	g2 := randomCircuit(rng, 14, 250)
	start := time.Now()
	r := Check(g1, g2, Options{Strategy: Construction, Timeout: 300 * time.Millisecond})
	elapsed := time.Since(start)
	if r.Verdict != TimedOut {
		t.Fatalf("verdict %v", r.Verdict)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline overshoot: check took %v for a 300ms timeout", elapsed)
	}
}

// TestNodeLimitZeroUnbounded is the regression companion of
// TestNodeLimitVerdict: the exact pair that trips NodeLimit 100 must run to
// completion when the budget is 0 (documented "none") or negative — a
// 0-limit check must never raise a node-budget abort.
func TestNodeLimitZeroUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Same construction as TestNodeLimitVerdict but one size down, so the
	// unbounded runs stay sub-second (peak ~45k nodes, well past any small
	// budget).
	g1 := randomCircuit(rng, 6, 100)
	g2 := randomCircuit(rng, 6, 100)
	if s := Check(g1, g2, Options{Strategy: Sequential, NodeLimit: 100}); s.Cause != CauseNodeLimit {
		t.Fatalf("sanity: a 100-node budget did not trip (cause %v)", s.Cause)
	}
	for _, limit := range []int{0, -1} {
		r := Check(g1, g2, Options{Strategy: Sequential, NodeLimit: limit})
		if r.Cause == CauseNodeLimit {
			t.Fatalf("NodeLimit %d tripped a node budget: %s", limit, r.Reason)
		}
		if r.Verdict == TimedOut {
			t.Fatalf("NodeLimit %d: verdict = %v (%s), want a definitive verdict",
				limit, r.Verdict, r.Reason)
		}
	}
}
