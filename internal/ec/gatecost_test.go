package ec

import (
	"reflect"
	"testing"

	"qcec/internal/circuit"
)

func TestGateCostSchedule(t *testing.T) {
	g1 := circuit.New(3, "g1")
	g1.H(0).CCX(0, 1, 2).X(1)
	g2 := circuit.New(3, "g2")
	for k := 0; k < 17; k++ {
		g2.X(k % 3)
	}
	// Profile total matches len(g2.Gates) exactly: the schedule is the
	// exclusive prefix sum (gate i of G is undone before its chunk).
	sched := gateCostSchedule(g1, g2, []int{1, 15, 1})
	if want := []int{0, 1, 16}; !reflect.DeepEqual(sched, want) {
		t.Errorf("sched = %v, want %v", sched, want)
	}
}

func TestGateCostScheduleRescales(t *testing.T) {
	g1 := circuit.New(2, "g1")
	g1.H(0).H(1)
	g2 := circuit.New(2, "g2")
	for k := 0; k < 10; k++ {
		g2.X(k % 2)
	}
	// Profile total 4 vs 10 actual gates (e.g. an error-injected mutant
	// changed the compiled side): prefix sums rescale to cover g2 exactly.
	sched := gateCostSchedule(g1, g2, []int{1, 3})
	if want := []int{0, 3}; !reflect.DeepEqual(sched, want) {
		t.Errorf("sched = %v, want %v", sched, want)
	}
}

func TestGateCostScheduleFallsBackToEstimate(t *testing.T) {
	g1 := circuit.New(3, "g1")
	g1.H(0).CCX(0, 1, 2)
	g2 := circuit.New(3, "g2")
	for k := 0; k < 16; k++ {
		g2.X(k % 3)
	}
	want := gateCostSchedule(g1, g2, EstimateCostProfile(g1))
	for _, bad := range [][]int{nil, {1}, {1, -2}} {
		if got := gateCostSchedule(g1, g2, bad); !reflect.DeepEqual(got, want) {
			t.Errorf("profile %v: sched = %v, want estimator fallback %v", bad, got, want)
		}
	}
}

func TestEstimateCostProfile(t *testing.T) {
	g := circuit.New(5, "mix")
	g.H(0)              // single-qubit: 1
	g.CX(0, 1)          // controlled X: 1
	g.CCX(0, 1, 2)      // Toffoli: the 15-gate Clifford+T network
	g.Swap(0, 1)        // SWAP: CX + CX + middle CX
	g.CPhase(0.3, 0, 1) // controlled phase: Lemma 5.1 network
	got := EstimateCostProfile(g)
	if want := []int{1, 1, 15, 3, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("profile = %v, want %v", got, want)
	}
}

func TestEstimateCostNegativeControls(t *testing.T) {
	g := circuit.New(3, "neg")
	g.Add(circuit.Gate{
		Kind: circuit.X, Target: 2, Target2: -1,
		Controls: []circuit.Control{{Qubit: 0, Neg: true}, {Qubit: 1}},
	})
	// A negative control costs its conjugating X pair on top of the
	// positive-control Toffoli network.
	if got := EstimateCostProfile(g); got[0] != 15+2 {
		t.Errorf("negative-control Toffoli cost = %d, want 17", got[0])
	}
}

func TestComposeProfiles(t *testing.T) {
	// Source gate 0 lowered to 2 intermediate gates, gate 1 to 1; the
	// intermediate gates lowered to 3, 1 and 4 final gates respectively.
	got := ComposeProfiles([]int{2, 1}, []int{3, 1, 4})
	if want := []int{4, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("composed = %v, want %v", got, want)
	}
	// Trailing inner entries (layout-restoring SWAPs past the last source
	// gate) fold into the final chunk so totals stay equal.
	got = ComposeProfiles([]int{2, 1}, []int{3, 1, 4, 2, 2})
	if want := []int{4, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("composed with trailing = %v, want %v", got, want)
	}
}

// StrategyGateCost must reach the same verdicts as the other alternating
// schemes on ordinary (non-compiled) pairs, where the static estimator
// supplies the schedule.
func TestGateCostStrategyVerdicts(t *testing.T) {
	eq := Check(ghz(4), ghz(4), Options{Strategy: StrategyGateCost})
	if eq.Verdict != Equivalent {
		t.Errorf("equivalent pair: verdict = %v", eq.Verdict)
	}
	g2 := ghz(4)
	g2.X(2)
	neq := Check(ghz(4), g2, Options{Strategy: StrategyGateCost})
	if neq.Verdict != NotEquivalent {
		t.Errorf("broken pair: verdict = %v", neq.Verdict)
	}
	if neq.Counterexample == nil {
		t.Error("broken pair: no counterexample")
	}
}
