package harness

import (
	"fmt"
	"io"
	"math/rand"

	"qcec/internal/circuit"
	"qcec/internal/ec"
	"qcec/internal/mapping"
)

// RouterRow compares the two routing heuristics on one workload — the
// ablation for the mapping substrate (DESIGN.md system 11): fewer inserted
// SWAPs mean smaller G' and cheaper verification.
type RouterRow struct {
	Arch           string
	Gates          int
	GreedySwaps    int
	LookaheadSwaps int
	Verified       bool // both mapped circuits proved equivalent to the input
}

// RunRouterAblation maps seeded random circuits onto several architectures
// with both heuristics, verifying every result.
func RunRouterAblation(seed int64) ([]RouterRow, error) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(n, gates int) *circuit.Circuit {
		c := circuit.New(n, "router-bench")
		for i := 0; i < gates; i++ {
			switch rng.Intn(3) {
			case 0:
				c.H(rng.Intn(n))
			case 1:
				a := rng.Intn(n)
				c.CX(a, (a+1+rng.Intn(n-1))%n)
			case 2:
				a := rng.Intn(n)
				c.CZ(a, (a+1+rng.Intn(n-1))%n)
			}
		}
		return c
	}
	archs := []*mapping.Architecture{
		mapping.Linear(8),
		mapping.Ring(8),
		mapping.Grid(2, 4),
		mapping.IBMQX5(),
	}
	var rows []RouterRow
	for _, arch := range archs {
		c := mk(arch.N, 10*arch.N)
		greedy, err := mapping.Map(c, mapping.Options{Arch: arch})
		if err != nil {
			return nil, fmt.Errorf("harness: greedy on %s: %w", arch.Name, err)
		}
		look, err := mapping.Map(c, mapping.Options{Arch: arch, Lookahead: 12})
		if err != nil {
			return nil, fmt.Errorf("harness: lookahead on %s: %w", arch.Name, err)
		}
		verify := func(res *mapping.Result) bool {
			r := ec.Check(c, res.Circuit, ec.Options{Strategy: ec.Proportional, OutputPerm: res.OutputPerm})
			return r.Verdict == ec.Equivalent
		}
		rows = append(rows, RouterRow{
			Arch:           arch.Name,
			Gates:          c.NumGates(),
			GreedySwaps:    greedy.SwapsInserted,
			LookaheadSwaps: look.SwapsInserted,
			Verified:       verify(greedy) && verify(look),
		})
	}
	return rows, nil
}

// PrintRouterAblation renders the routing-heuristic comparison.
func PrintRouterAblation(w io.Writer, rows []RouterRow) {
	fmt.Fprintln(w, "Router ablation (SWAPs inserted; both mappings verified by the checker)")
	fmt.Fprintf(w, "%-12s %8s %14s %17s %9s\n", "arch", "gates", "greedy swaps", "lookahead swaps", "verified")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %14d %17d %9v\n",
			r.Arch, r.Gates, r.GreedySwaps, r.LookaheadSwaps, r.Verified)
	}
}
