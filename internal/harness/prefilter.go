package harness

import (
	"fmt"
	"io"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/decompose"
	"qcec/internal/ecrw"
	"qcec/internal/mapping"
	"qcec/internal/opt"
	"qcec/internal/zx"
)

// The prefilter experiment compares the two sound-but-incomplete provers
// (gate-level rewriting, paper ref [16]; ZX-calculus rewriting) against the
// proposed simulation flow on three classes of equivalent pairs of
// increasing difficulty: peephole recompilations, Clifford recompilations,
// and decomposed+mapped realizations.  It demonstrates where each method
// concludes and where only the paper's flow still gives an answer.

// PrefilterRow is one line of the comparison.
type PrefilterRow struct {
	Name    string
	Class   string
	N       int
	SizeG   int
	SizeGp  int
	Rewrite ecrw.Verdict
	TRW     time.Duration
	ZX      zx.Verdict
	TZX     time.Duration
	Flow    core.Verdict
	TFlow   time.Duration
}

// BuildPrefilterSuite builds the three instance classes.
func BuildPrefilterSuite(scale Scale) ([]Instance, []string, error) {
	gates := 40
	n := 5
	if scale >= Medium {
		gates, n = 120, 7
	}
	var instances []Instance
	var classes []string

	add := func(name, class string, g, gp *circuit.Circuit, perm []int) {
		instances = append(instances, Instance{
			Name: name, N: g.N, G: g, Gp: gp, OutputPerm: perm, WantEquivalent: true,
		})
		classes = append(classes, class)
	}

	// Class 1: peephole recompilation (inserted cancelling pairs, split
	// rotations) — both prefilters should prove these.
	base1 := cliffordTCircuit(n, gates, 101)
	peep := splitRotations(base1)
	peep.H(0)
	peep.H(0)
	add("peephole", "peephole", base1, peep, nil)

	// Class 2: Clifford recompilation (commuted CZs, HXH rewrites) — ZX
	// should prove these, gate-level rewriting mostly cannot.
	base2 := cliffordCircuit(n, gates, 102)
	add("clifford-recompile", "clifford", base2, cliffordRecompile(base2), nil)

	// Class 3: decomposed and mapped realization — only the flow concludes.
	base3 := cliffordTCircuit(n, gates/2, 103)
	lowered := decompose.Circuit(base3, decompose.LevelCX)
	mapped, err := mapping.Map(lowered, mapping.Options{Arch: Linear(n), RestoreLayout: true})
	if err != nil {
		return nil, nil, err
	}
	o, _ := opt.Optimize(mapped.Circuit, opt.Options{})
	add("decompose+map", "mapped", base3, o, nil)

	return instances, classes, nil
}

// Linear re-exports the linear architecture for the prefilter suite.
func Linear(n int) *mapping.Architecture { return mapping.Linear(n) }

func cliffordCircuit(n, gates int, seed int64) *circuit.Circuit {
	c := baseCircuit(n, gates, seed) // H/T/S/CX mix
	out := circuit.New(n, "clifford")
	for _, g := range c.Gates {
		if g.Kind == circuit.T {
			out.S(g.Target) // keep it Clifford
			continue
		}
		out.Add(g)
	}
	return out
}

func cliffordTCircuit(n, gates int, seed int64) *circuit.Circuit {
	return baseCircuit(n, gates, seed)
}

// cliffordRecompile produces an equivalent variant via commutations and
// identities that peephole matching cannot undo.
func cliffordRecompile(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N, c.Name+"_re")
	for _, g := range c.Gates {
		switch {
		case g.Kind == circuit.Z && len(g.Controls) == 0:
			out.H(g.Target)
			out.X(g.Target)
			out.H(g.Target)
		case g.Kind == circuit.S && len(g.Controls) == 0:
			// S = T·T? stays Clifford-provable via fusion: use Z·Sdg.
			out.Z(g.Target)
			out.Sdg(g.Target)
		case g.Kind == circuit.Z && len(g.Controls) == 1:
			// CZ is symmetric.
			out.CZ(g.Target, g.Controls[0].Qubit)
		default:
			out.Add(g)
		}
	}
	return out
}

// RunPrefilterComparison runs all three checkers on the suite.
func RunPrefilterComparison(instances []Instance, classes []string, opts RunOptions) ([]PrefilterRow, error) {
	opts = opts.withDefaults()
	var rows []PrefilterRow
	for i, inst := range instances {
		row := PrefilterRow{
			Name: inst.Name, Class: classes[i], N: inst.N,
			SizeG: inst.G.NumGates(), SizeGp: inst.Gp.NumGates(),
		}
		rw := ecrw.Check(inst.G, inst.Gp)
		row.Rewrite = rw.Verdict
		row.TRW = rw.Runtime

		zr, err := zx.Check(inst.G, inst.Gp)
		if err != nil {
			return nil, fmt.Errorf("harness: ZX on %s: %w", inst.Name, err)
		}
		row.ZX = zr.Verdict
		row.TZX = zr.Runtime

		rep := core.Check(inst.G, inst.Gp, core.Options{
			R: opts.R, Seed: opts.Seed, Strategy: opts.ECStrategy,
			ECTimeout: opts.ECTimeout, ECNodeLimit: opts.ECNodeLimit,
			OutputPerm: inst.OutputPerm,
		})
		row.Flow = rep.Verdict
		row.TFlow = rep.TotalTime
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintPrefilterComparison renders the three-method table.
func PrintPrefilterComparison(w io.Writer, rows []PrefilterRow) {
	fmt.Fprintln(w, "Prefilter comparison on equivalent pairs (rewriting [16] vs ZX vs proposed flow)")
	fmt.Fprintf(w, "%-20s %-10s %4s %6s %7s  %-13s %9s  %-13s %9s  %-30s %9s\n",
		"Pair", "class", "n", "|G|", "|G'|",
		"rewrite", "t[s]", "zx", "t[s]", "flow", "t[s]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-10s %4d %6d %7d  %-13s %9.4f  %-13s %9.4f  %-30s %9.4f\n",
			r.Name, r.Class, r.N, r.SizeG, r.SizeGp,
			r.Rewrite, r.TRW.Seconds(),
			r.ZX, r.TZX.Seconds(),
			r.Flow, r.TFlow.Seconds())
	}
}
