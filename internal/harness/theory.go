package harness

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/dd"
	"qcec/internal/sim"
)

// TheoryRow is one line of the Sec. IV-A experiment: a difference gate with
// c controls affects 2^{n-c} of the 2^n columns, so a random basis state is
// a counterexample with probability 2^{-c}.
type TheoryRow struct {
	Controls  int
	Predicted float64 // 2^{-c}
	Measured  float64 // exhaustive fraction of distinguishing basis states
}

// baseCircuit returns a fixed pseudo-random Clifford+T circuit used as the
// common prefix G of the theory experiment.
func baseCircuit(n int, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n, "theory-base")
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.S(rng.Intn(n))
		case 3:
			a := rng.Intn(n)
			c.CX(a, (a+1+rng.Intn(n-1))%n)
		}
	}
	return c
}

// TheoryExperiment measures, for each control count c, the exact fraction of
// computational basis states that distinguish G from G' = D·G where the
// difference D is a c-controlled X (applied before G, so that D is exactly
// the paper's difference operator U†U').  The qubit count is user input
// (qectab -theory-n), so a bad range is an error, not a panic.
func TheoryExperiment(n int, seed int64) ([]TheoryRow, error) {
	if n < 2 || n > 14 {
		return nil, fmt.Errorf("harness: theory experiment needs 2..14 qubits, got %d", n)
	}
	g := baseCircuit(n, 4*n, seed)
	rows := make([]TheoryRow, 0, n)
	for c := 0; c < n; c++ {
		gp := circuit.New(n, fmt.Sprintf("theory-c%d", c))
		controls := make([]int, c)
		for i := range controls {
			controls[i] = i
		}
		// Difference first, then the common circuit.
		if c == 0 {
			gp.X(n - 1)
		} else {
			gp.MCX(controls, n-1)
		}
		gp.Append(g)

		p := dd.NewDefault(n)
		s := sim.NewOn(p)
		mismatches := 0
		total := 1 << uint(n)
		for i := 0; i < total; i++ {
			u := s.Run(g, uint64(i))
			v := s.RunFromWithPins(gp, p.BasisState(uint64(i)), []dd.VEdge{u})
			if f := p.Fidelity(u, v); f < 1-1e-9 {
				mismatches++
			}
			p.MaybeGC(nil, nil)
		}
		rows = append(rows, TheoryRow{
			Controls:  c,
			Predicted: math.Exp2(-float64(c)),
			Measured:  float64(mismatches) / float64(total),
		})
	}
	return rows, nil
}

// PrintTheory renders the Sec. IV-A table.
func PrintTheory(w io.Writer, n int, rows []TheoryRow) {
	fmt.Fprintf(w, "Sec. IV-A theory — detection probability of a c-controlled difference gate (n = %d)\n", n)
	fmt.Fprintf(w, "%8s %12s %12s\n", "controls", "predicted", "measured")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.6f %12.6f\n", r.Controls, r.Predicted, r.Measured)
	}
}

// StimuliAblation compares deterministic-|0...0> stimuli against random
// stimuli on the worst-case error of Example 8: a fully-controlled
// difference that only affects two columns.  It demonstrates why the flow
// chooses *random* basis states.
type StimuliAblation struct {
	N               int
	R               int
	ZeroDetected    bool // |0...0> stimulus found the error
	RandomDetected  bool // r random stimuli found the error
	AllOnesDetected bool // the |1...1> stimulus (the affected column)
}

// RunStimuliAblation builds the Example-8 instance and probes it with the
// three stimulus policies.
func RunStimuliAblation(n, r int, seed int64) StimuliAblation {
	g := baseCircuit(n, 3*n, seed)
	gp := circuit.New(n, "worstcase")
	controls := make([]int, n-1)
	for i := range controls {
		controls[i] = i
	}
	gp.MCX(controls, n-1)
	gp.Append(g)

	res := StimuliAblation{N: n, R: r}
	zero := core.Check(g, gp, core.Options{Stimuli: []uint64{0}, SkipEC: true})
	res.ZeroDetected = zero.Verdict == core.NotEquivalent
	rnd := core.Check(g, gp, core.Options{R: r, Seed: seed, SkipEC: true})
	res.RandomDetected = rnd.Verdict == core.NotEquivalent
	ones := core.Check(g, gp, core.Options{Stimuli: []uint64{uint64(1)<<uint(n-1) - 1}, SkipEC: true})
	res.AllOnesDetected = ones.Verdict == core.NotEquivalent
	return res
}

// PrintStimuliAblation renders the stimulus-policy comparison.
func PrintStimuliAblation(w io.Writer, a StimuliAblation) {
	fmt.Fprintf(w, "Stimuli ablation (Example-8 worst case, n = %d, difference confined to 2 of %d columns):\n", a.N, 1<<uint(a.N))
	fmt.Fprintf(w, "  |0...0> stimulus detected: %v\n", a.ZeroDetected)
	fmt.Fprintf(w, "  %d random stimuli detected: %v\n", a.R, a.RandomDetected)
	fmt.Fprintf(w, "  control-pattern stimulus detected: %v\n", a.AllOnesDetected)
}
