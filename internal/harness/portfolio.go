package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"qcec/internal/dd"
	"qcec/internal/portfolio"
)

// PortfolioRow compares one instance under the concurrent prover portfolio
// against the single-strategy complete check measured by RunInstance.
type PortfolioRow struct {
	Name string
	N    int

	// Portfolio outcome.
	Verdict    portfolio.Verdict
	Winner     string
	TPortfolio time.Duration
	// Stops summarizes each prover's fate, in prover order ("sim:won dd:cancelled ...").
	Stops string
	// Reports keeps the engine's full per-prover records (runtime, peak
	// nodes, DD telemetry) for the table footer and downstream tooling.
	Reports []portfolio.Report

	// Single-strategy baseline (the same complete routine the portfolio
	// races, run alone with the suite's EC options).
	TSingle        time.Duration
	SingleTimedOut bool

	WantEquivalent bool
	Wrong          bool // definitive portfolio verdict contradicting ground truth

	// Err marks a row that could not be measured (e.g. the prover set failed
	// to build); the row is degraded, not a crash.
	Err error
}

// RunPortfolioInstance races the standard provers on one instance and runs
// the single-strategy baseline for comparison.
func RunPortfolioInstance(inst Instance, opts RunOptions) PortfolioRow {
	opts = opts.withDefaults()
	row := PortfolioRow{
		Name:           inst.Name,
		N:              inst.N,
		WantEquivalent: inst.WantEquivalent,
	}

	// Baseline: the complete routine alone, exactly as RunInstance measures
	// it (column t_ec).
	base := RunInstance(inst, opts)
	row.TSingle = base.TEC
	row.SingleTimedOut = base.ECTimedOut

	cfg := portfolio.Config{
		R:           opts.R,
		Seed:        opts.Seed,
		Strategy:    opts.ECStrategy,
		ECNodeLimit: opts.ECNodeLimit,
		OutputPerm:  inst.OutputPerm,
	}
	names := []string{"sim", "dd", "alt"}
	if inst.OutputPerm == nil {
		names = append(names, "zx")
	}
	provers, err := portfolio.FromNames(names, cfg)
	if err != nil {
		// Static prover list, so this should not happen — but a harness row
		// must degrade, not crash the whole suite run.
		row.Err = err
		row.Stops = "error: " + err.Error()
		return row
	}
	res := portfolio.Run(context.Background(), inst.G, inst.Gp, provers,
		portfolio.Options{Timeout: opts.ECTimeout})
	row.Verdict = res.Verdict
	row.Winner = res.Winner
	row.TPortfolio = res.Runtime
	row.Reports = res.Reports
	for i, r := range res.Reports {
		if i > 0 {
			row.Stops += " "
		}
		row.Stops += fmt.Sprintf("%s:%s", r.Name, r.Stop)
	}
	switch res.Verdict {
	case portfolio.Equivalent, portfolio.EquivalentUpToGlobalPhase:
		row.Wrong = !inst.WantEquivalent
	case portfolio.NotEquivalent:
		row.Wrong = inst.WantEquivalent
	}
	return row
}

// RunPortfolioSuite measures every instance, releasing circuits as it goes
// like RunSuite.
func RunPortfolioSuite(instances []Instance, opts RunOptions) []PortfolioRow {
	rows := make([]PortfolioRow, 0, len(instances))
	for i := range instances {
		rows = append(rows, RunPortfolioInstance(instances[i], opts))
		instances[i].G, instances[i].Gp = nil, nil
	}
	return rows
}

// PrintPortfolioTable renders the portfolio-vs-single-strategy comparison,
// ending with the wrong-verdict count and the geometric-mean speedup over
// the single-strategy baseline.
func PrintPortfolioTable(w io.Writer, rows []PortfolioRow, opts RunOptions) {
	opts = opts.withDefaults()
	fmt.Fprintf(w, "Portfolio vs single strategy (%s, timeout %s)\n", opts.ECStrategy, opts.ECTimeout)
	fmt.Fprintf(w, "%-28s %4s %-14s %-8s %12s %12s  %s\n",
		"Benchmark", "n", "verdict", "winner", "t_port[s]", "t_single[s]", "prover fates")
	wrong := 0
	logSum, logCount := 0.0, 0
	for _, r := range rows {
		if r.Wrong {
			wrong++
		}
		ts := fmtDuration(r.TSingle)
		if r.SingleTimedOut {
			ts = ">" + fmtDuration(opts.ECTimeout)
		}
		if r.TPortfolio > 0 && r.TSingle > 0 {
			logSum += math.Log(r.TSingle.Seconds() / r.TPortfolio.Seconds())
			logCount++
		}
		verdict := r.Verdict.String()
		if len(verdict) > 14 {
			verdict = verdict[:14]
		}
		fmt.Fprintf(w, "%-28s %4d %-14s %-8s %12s %12s  %s\n",
			r.Name, r.N, verdict, r.Winner, fmtDuration(r.TPortfolio), ts, r.Stops)
	}
	fmt.Fprintf(w, "wrong verdicts: %d/%d", wrong, len(rows))
	if logCount > 0 {
		fmt.Fprintf(w, "; geo-mean speedup over single strategy: %.1fx (single capped by timeout)",
			math.Exp(logSum/float64(logCount)))
	}
	fmt.Fprintln(w)

	// Per-prover DD telemetry, count-weighted across the suite.
	perProver := map[string]*dd.Stats{}
	var order []string
	for _, r := range rows {
		for _, rep := range r.Reports {
			if rep.DD == nil {
				continue
			}
			agg, ok := perProver[rep.Name]
			if !ok {
				agg = &dd.Stats{}
				perProver[rep.Name] = agg
				order = append(order, rep.Name)
			}
			agg.Add(*rep.DD)
		}
	}
	if len(order) > 0 {
		fmt.Fprint(w, "gate-cache hit rate by prover:")
		for _, name := range order {
			fmt.Fprintf(w, " %s %.1f%%", name, 100*perProver[name].GateHitRate())
		}
		fmt.Fprintln(w)
	}
}
