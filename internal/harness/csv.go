package harness

import (
	"encoding/csv"
	"fmt"
	"io"

	"qcec/internal/resource"
)

// CSV writers for the experiment artifacts, so results can be archived and
// plotted outside the harness (qectab's -csv flag).

// WriteRowsCSV writes Table Ia/Ib rows as CSV.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "n", "gates_g", "gates_gp",
		"ec_verdict", "t_ec_seconds", "ec_timed_out",
		"num_sims", "t_sim_seconds", "sim_detected",
		"want_equivalent", "injection",
		"ec_gate_hit_rate", "sim_gate_hit_rate",
		"ec_compute_hit_rate", "sim_compute_hit_rate",
		"sim_kernel_applies", "sim_kernel_hit_rate",
		"gc_reclaimed", "pressure_gcs",
		"mem_samples", "mem_soft_trips", "mem_hard_trips", "mem_peak_heap_bytes",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Name,
			fmt.Sprint(r.N), fmt.Sprint(r.SizeG), fmt.Sprint(r.SizeGp),
			r.ECVerdict.String(), fmt.Sprintf("%.6f", r.TEC.Seconds()), fmt.Sprint(r.ECTimedOut),
			fmt.Sprint(r.NumSims), fmt.Sprintf("%.6f", r.TSim.Seconds()), fmt.Sprint(r.SimDetected),
			fmt.Sprint(r.WantEquivalent), r.Injection,
			fmt.Sprintf("%.4f", r.ECDD.GateHitRate()),
			fmt.Sprintf("%.4f", r.SimDD.GateHitRate()),
			fmt.Sprintf("%.4f", r.ECDD.ComputeHitRate()),
			fmt.Sprintf("%.4f", r.SimDD.ComputeHitRate()),
			fmt.Sprint(r.SimDD.ApplyCalls),
			fmt.Sprintf("%.4f", r.SimDD.ApplyHitRate()),
			fmt.Sprint(r.ECDD.GCReclaimed + r.SimDD.GCReclaimed),
			fmt.Sprint(r.ECDD.PressureGCs + r.SimDD.PressureGCs),
			fmt.Sprint(memSum(r, func(s *resource.Stats) uint64 { return s.Samples })),
			fmt.Sprint(memSum(r, func(s *resource.Stats) uint64 { return s.SoftTrips })),
			fmt.Sprint(memSum(r, func(s *resource.Stats) uint64 { return s.HardTrips })),
			fmt.Sprint(memMax(r, func(s *resource.Stats) uint64 { return s.PeakHeapBytes })),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// memSum adds a watchdog counter over the row's two measurements (either
// may have run without a watchdog).
func memSum(r Row, f func(*resource.Stats) uint64) uint64 {
	var v uint64
	if r.ECMem != nil {
		v += f(r.ECMem)
	}
	if r.SimMem != nil {
		v += f(r.SimMem)
	}
	return v
}

// memMax takes the larger of a watchdog gauge over the row's measurements.
func memMax(r Row, f func(*resource.Stats) uint64) uint64 {
	var v uint64
	if r.ECMem != nil && f(r.ECMem) > v {
		v = f(r.ECMem)
	}
	if r.SimMem != nil && f(r.SimMem) > v {
		v = f(r.SimMem)
	}
	return v
}

// WriteTheoryCSV writes the Sec. IV-A experiment as CSV.
func WriteTheoryCSV(w io.Writer, rows []TheoryRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"controls", "predicted", "measured"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			fmt.Sprint(r.Controls),
			fmt.Sprintf("%.9f", r.Predicted),
			fmt.Sprintf("%.9f", r.Measured),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteStrategyCSV writes the strategy ablation as CSV.
func WriteStrategyCSV(w io.Writer, rows []StrategyRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "strategy", "verdict", "t_seconds", "peak_nodes"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Name, r.Strategy.String(), r.Verdict.String(),
			fmt.Sprintf("%.6f", r.Runtime.Seconds()), fmt.Sprint(r.PeakNodes),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
