package harness

import (
	"strings"
	"testing"
	"time"
)

// TestRunPortfolioSuite races the portfolio on a slice of the small suites
// and checks verdict correctness plus the report rendering.
func TestRunPortfolioSuite(t *testing.T) {
	eq, err := BuildEquivalentSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	neq, err := BuildNonEquivalentSuite(Small, 17)
	if err != nil {
		t.Fatal(err)
	}
	instances := append(eq[:3], neq[:3]...)
	opts := RunOptions{R: 4, ECTimeout: 30 * time.Second, Seed: 5}
	rows := RunPortfolioSuite(instances, opts)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Wrong {
			t.Errorf("%s: portfolio verdict %v (winner %s) contradicts ground truth (want equivalent=%v)",
				r.Name, r.Verdict, r.Winner, r.WantEquivalent)
		}
		if !r.Verdict.Definitive() {
			t.Errorf("%s: portfolio inconclusive (fates: %s)", r.Name, r.Stops)
		}
		if r.Winner == "" || r.Stops == "" {
			t.Errorf("%s: missing winner/fates in row %+v", r.Name, r)
		}
	}

	var sb strings.Builder
	PrintPortfolioTable(&sb, rows, opts)
	out := sb.String()
	for _, want := range []string{"Portfolio vs single strategy", "winner", "wrong verdicts: 0/6"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
