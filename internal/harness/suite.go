// Package harness assembles benchmark instances and runs the paper's
// experiments end-to-end: Table Ia (non-equivalent pairs), Table Ib
// (equivalent pairs), the Sec. IV-A theory experiment, and the ablations
// called out in DESIGN.md.  It is shared by cmd/qectab and the repository's
// bench_test.go.
package harness

import (
	"fmt"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/decompose"
	"qcec/internal/errinject"
	"qcec/internal/mapping"
	"qcec/internal/opt"
)

// Scale selects instance sizes: Small finishes in seconds (CI and
// bench_test.go), Paper approaches the paper's sizes and needs minutes plus
// a generous EC timeout.
type Scale int

// Available scales.
const (
	Small Scale = iota
	Medium
	Paper
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// Instance is one benchmark pair (G, G').
type Instance struct {
	Name       string
	N          int
	G          *circuit.Circuit
	Gp         *circuit.Circuit
	OutputPerm []int
	// WantEquivalent records the ground truth of the pair.
	WantEquivalent bool
	// Injection describes the planted error on non-equivalent instances.
	Injection string
}

// splitRotations returns an equivalent "recompiled" variant with every
// rotation split in two — a stand-in for an alternative realization whose
// file differs from G while its function does not.
func splitRotations(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N, c.Name+"_split")
	for _, g := range c.Gates {
		switch g.Kind {
		case circuit.RX, circuit.RY, circuit.RZ, circuit.P:
			h := g
			h.Params = []float64{g.Params[0] / 2}
			out.Add(h)
			out.Add(h)
		default:
			out.Add(g)
		}
	}
	return out
}

type spec struct {
	name  string
	build func() (*circuit.Circuit, error)
	// pipeline produces the alternative realization G'.
	pipeline func(*circuit.Circuit) (*circuit.Circuit, []int, error)
}

// pipeDecomposeMap lowers to CX level and routes onto a linear architecture,
// reporting the output permutation — the heaviest realistic pipeline,
// applied to the reversible benchmark class.
func pipeDecomposeMap(g *circuit.Circuit) (*circuit.Circuit, []int, error) {
	d := decompose.Circuit(g, decompose.LevelCX)
	res, err := mapping.Map(d, mapping.Options{Arch: mapping.Linear(g.N), DecomposeSwaps: true})
	if err != nil {
		return nil, nil, err
	}
	return res.Circuit, res.OutputPerm, nil
}

// pipeDecomposeOpt lowers to CX level and runs the optimizer (QFT-class
// benchmarks, whose G' in the paper stays close to G in size).
func pipeDecomposeOpt(g *circuit.Circuit) (*circuit.Circuit, []int, error) {
	d := decompose.Circuit(g, decompose.LevelCX)
	o, _ := opt.Optimize(d, opt.Options{})
	return o, nil, nil
}

// pipeRecompile splits rotations then re-optimizes — an equivalent
// realization of the same size class (supremacy/chemistry rows, whose paper
// G' equals G in gate count).
func pipeRecompile(g *circuit.Circuit) (*circuit.Circuit, []int, error) {
	s := splitRotations(g)
	o, _ := opt.Optimize(s, opt.Options{DisableRotationMerge: true})
	return o, nil, nil
}

// pipeMapGrid routes onto the native grid (supremacy circuits).
func pipeMapGrid(rows, cols int) func(*circuit.Circuit) (*circuit.Circuit, []int, error) {
	return func(g *circuit.Circuit) (*circuit.Circuit, []int, error) {
		res, err := mapping.Map(g, mapping.Options{Arch: mapping.Grid(rows, cols)})
		if err != nil {
			return nil, nil, err
		}
		return res.Circuit, res.OutputPerm, nil
	}
}

// specs returns the benchmark list for a scale.  Names follow the paper's
// Table I rows.
func specs(scale Scale) []spec {
	type sizes struct {
		groverK   []int
		qftN      []int
		supDepth  []int
		supRows   int
		supCols   int
		chemDims  [][2]int
		chemSteps int
		hwbN      int
		urfN      int
		incN      int
		rdIn      int
		cmpIn     int
		majIn     int
		sqrIn     int
		clzIn     int
		modExpIn  int
		modExpOut int
		fiveXP1   bool
		rootBench bool
	}
	var z sizes
	switch scale {
	case Small:
		z = sizes{
			groverK: []int{4}, qftN: []int{12}, supDepth: []int{4}, supRows: 2, supCols: 3,
			chemDims: [][2]int{{1, 2}}, chemSteps: 1,
			hwbN: 5, urfN: 5, incN: 8, rdIn: 4, cmpIn: 5, majIn: 5, sqrIn: 3, clzIn: 6,
			modExpIn: 4, modExpOut: 3,
		}
	case Medium:
		z = sizes{
			groverK: []int{5, 6}, qftN: []int{16, 24}, supDepth: []int{5, 10}, supRows: 3, supCols: 3,
			chemDims: [][2]int{{2, 2}}, chemSteps: 1,
			hwbN: 7, urfN: 7, incN: 10, rdIn: 6, cmpIn: 7, majIn: 7, sqrIn: 4, clzIn: 8,
			modExpIn: 6, modExpOut: 5, fiveXP1: true, rootBench: true,
		}
	default: // Paper
		// Approaches the paper's benchmark classes while staying within a
		// 16 GiB workstation: the counting/arithmetic embeddings blow up
		// cubically under ancilla-free decomposition, so their input widths
		// are capped one or two bits below the paper's (clz10 instead of
		// pcler8's 16 inputs, cmp9 instead of cm85a's 11).
		z = sizes{
			groverK: []int{6, 7, 8}, qftN: []int{48, 64}, supDepth: []int{5, 15, 30}, supRows: 4, supCols: 4,
			chemDims: [][2]int{{2, 2}, {3, 3}}, chemSteps: 1,
			hwbN: 9, urfN: 9, incN: 12, rdIn: 8, cmpIn: 9, majIn: 9, sqrIn: 5, clzIn: 10,
			modExpIn: 7, modExpOut: 6, fiveXP1: true, rootBench: true,
		}
	}

	var out []spec
	for _, k := range z.groverK {
		k := k
		marked := (uint64(1)<<uint(k) - 1) / 3 // 0b0101... pattern
		out = append(out, spec{
			name:     fmt.Sprintf("Grover %d", k),
			build:    func() (*circuit.Circuit, error) { return bench.Grover(k, marked), nil },
			pipeline: pipeDecomposeMap,
		})
	}
	for _, n := range z.qftN {
		n := n
		out = append(out, spec{
			name:     fmt.Sprintf("QFT %d", n),
			build:    func() (*circuit.Circuit, error) { return bench.QFT(n), nil },
			pipeline: pipeDecomposeOpt,
		})
	}
	for _, d := range z.supDepth {
		d := d
		rows, cols := z.supRows, z.supCols
		out = append(out, spec{
			name:     fmt.Sprintf("Supremacy %d %d %02d", rows, cols, d),
			build:    func() (*circuit.Circuit, error) { return bench.Supremacy(rows, cols, d, int64(d)), nil },
			pipeline: pipeMapGrid(rows, cols),
		})
	}
	for _, dims := range z.chemDims {
		dims := dims
		steps := z.chemSteps
		out = append(out, spec{
			name:     fmt.Sprintf("Quantum Chemistry %dx%d", dims[0], dims[1]),
			build:    func() (*circuit.Circuit, error) { return bench.Chemistry(dims[0], dims[1], steps), nil },
			pipeline: pipeRecompile,
		})
	}
	out = append(out,
		spec{
			name:     fmt.Sprintf("hwb%d", z.hwbN),
			build:    func() (*circuit.Circuit, error) { return bench.HWB(z.hwbN) },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name:     fmt.Sprintf("urf%d-like", z.urfN),
			build:    func() (*circuit.Circuit, error) { return bench.RandomReversible(z.urfN, 4) },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name:     fmt.Sprintf("inc%d", z.incN),
			build:    func() (*circuit.Circuit, error) { return bench.Increment(z.incN, 3), nil },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name:     fmt.Sprintf("rd%d", z.rdIn),
			build:    func() (*circuit.Circuit, error) { return bench.RD(z.rdIn) },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name:     fmt.Sprintf("cmp%d", z.cmpIn),
			build:    func() (*circuit.Circuit, error) { return bench.Comparator(z.cmpIn) },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name:     fmt.Sprintf("maj%d", z.majIn),
			build:    func() (*circuit.Circuit, error) { return bench.Majority(z.majIn) },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name:     fmt.Sprintf("sqr%d", z.sqrIn),
			build:    func() (*circuit.Circuit, error) { return bench.Sqr(z.sqrIn) },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name:     fmt.Sprintf("clz%d", z.clzIn),
			build:    func() (*circuit.Circuit, error) { return bench.LeadingZeros(z.clzIn) },
			pipeline: pipeDecomposeMap,
		},
		spec{
			name: fmt.Sprintf("modexp%d", z.modExpIn),
			build: func() (*circuit.Circuit, error) {
				return bench.ModExp(z.modExpIn, z.modExpOut, 3, 113)
			},
			pipeline: pipeDecomposeMap,
		},
	)
	if z.fiveXP1 {
		out = append(out, spec{name: "5xp1", build: bench.FiveXP1, pipeline: pipeDecomposeMap})
	}
	if z.rootBench {
		out = append(out, spec{name: "root", build: bench.Root, pipeline: pipeDecomposeMap})
	}
	return out
}

// BuildEquivalentSuite builds the Table Ib instances: each G' is produced
// from G by a real compilation pipeline and is equivalent by construction.
func BuildEquivalentSuite(scale Scale) ([]Instance, error) {
	var out []Instance
	for _, s := range specs(scale) {
		g, err := s.build()
		if err != nil {
			return nil, fmt.Errorf("harness: building %s: %w", s.name, err)
		}
		gp, perm, err := s.pipeline(g)
		if err != nil {
			return nil, fmt.Errorf("harness: compiling %s: %w", s.name, err)
		}
		out = append(out, Instance{
			Name: s.name, N: g.N, G: g, Gp: gp, OutputPerm: perm, WantEquivalent: true,
		})
	}
	return out, nil
}

// BuildNonEquivalentSuite builds the Table Ia instances: the same pipelines,
// with one random design-flow error injected into each G'.
func BuildNonEquivalentSuite(scale Scale, seed int64) ([]Instance, error) {
	equiv, err := BuildEquivalentSuite(scale)
	if err != nil {
		return nil, err
	}
	out := make([]Instance, 0, len(equiv))
	for i, inst := range equiv {
		buggy, inj, err := errinject.InjectAny(inst.Gp, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("harness: injecting into %s: %w", inst.Name, err)
		}
		inst.Gp = buggy
		inst.WantEquivalent = false
		inst.Injection = inj.String()
		out = append(out, inst)
	}
	return out, nil
}
