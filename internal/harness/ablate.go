package harness

import (
	"fmt"
	"io"
	"time"

	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/errinject"
)

// StrategyRow compares the complete-EC strategies on one instance — the
// ablation for the design choice between construction, sequential,
// proportional and lookahead schemes (paper ref [22]).
type StrategyRow struct {
	Name      string
	Strategy  ec.Strategy
	Verdict   ec.Verdict
	Runtime   time.Duration
	PeakNodes int
}

// RunStrategyAblation checks every instance with every strategy.
func RunStrategyAblation(instances []Instance, opts RunOptions) []StrategyRow {
	opts = opts.withDefaults()
	var rows []StrategyRow
	for _, inst := range instances {
		for _, s := range []ec.Strategy{ec.Construction, ec.Sequential, ec.Proportional, ec.Lookahead} {
			r := ec.Check(inst.G, inst.Gp, ec.Options{
				Strategy:   s,
				Timeout:    opts.ECTimeout,
				NodeLimit:  opts.ECNodeLimit,
				OutputPerm: inst.OutputPerm,
			})
			rows = append(rows, StrategyRow{
				Name: inst.Name, Strategy: s, Verdict: r.Verdict,
				Runtime: r.Runtime, PeakNodes: r.PeakNodes,
			})
		}
	}
	return rows
}

// PrintStrategyAblation renders the strategy comparison.
func PrintStrategyAblation(w io.Writer, rows []StrategyRow) {
	fmt.Fprintln(w, "EC strategy ablation (complete routine only)")
	fmt.Fprintf(w, "%-28s %-14s %-12s %10s %10s\n", "Benchmark", "strategy", "verdict", "time[s]", "peak nodes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-14s %-12s %10.3f %10d\n",
			r.Name, r.Strategy, r.Verdict, r.Runtime.Seconds(), r.PeakNodes)
	}
}

// RRow reports, for one simulation budget r, how many planted errors the
// simulation stage caught — the r-ablation behind the paper's "r = 10
// suffices in practice".
type RRow struct {
	R        int
	Detected int
	Total    int
}

// RunRAblation plants errors of every class into the given instances' G'
// circuits and measures detection within r simulations, for each r.
func RunRAblation(instances []Instance, rs []int, seed int64) []RRow {
	type job struct {
		inst Instance
	}
	var jobs []job
	k := 0
	for _, inst := range instances {
		buggy, inj, err := errinject.InjectAny(inst.Gp, seed+int64(k))
		k++
		if err != nil {
			continue
		}
		j := inst
		j.Gp = buggy
		j.WantEquivalent = false
		j.Injection = inj.String()
		jobs = append(jobs, job{inst: j})
	}
	rows := make([]RRow, 0, len(rs))
	for _, r := range rs {
		row := RRow{R: r, Total: len(jobs)}
		for i, j := range jobs {
			rep := core.Check(j.inst.G, j.inst.Gp, core.Options{
				R: r, Seed: seed + int64(100+i), SkipEC: true, OutputPerm: j.inst.OutputPerm,
			})
			if rep.Verdict == core.NotEquivalent {
				row.Detected++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintRAblation renders the detection-rate-versus-r table.
func PrintRAblation(w io.Writer, rows []RRow) {
	fmt.Fprintln(w, "Simulation-count ablation (errors detected within r random simulations)")
	fmt.Fprintf(w, "%6s %10s %8s\n", "r", "detected", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %10d %8d\n", r.R, r.Detected, r.Total)
	}
}
