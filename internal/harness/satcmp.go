package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/ecsat"
	"qcec/internal/errinject"
)

// The SAT comparison experiment pits three checkers against each other on
// the classical reversible benchmark class (the only class the paper's
// ref [17] baseline applies to): the SAT miter (internal/ecsat), the
// complete DD routine (internal/ec) and the simulation stage of the
// proposed flow.  It cross-validates all three and extends the paper's
// evaluation with the second baseline family it cites.

// SATRow is one line of the comparison.
type SATRow struct {
	Name           string
	N              int
	SizeG, SizeGp  int
	WantEquivalent bool

	SATVerdict ecsat.Verdict
	TSAT       time.Duration
	Vars       int
	Clauses    int

	DDVerdict ec.Verdict
	TDD       time.Duration

	SimVerdict core.Verdict
	NumSims    int
	TSim       time.Duration
}

// shuffleControls returns a functionally identical circuit whose control
// lists are re-ordered and that carries a few inserted cancelling CX pairs —
// a cheap but honest "different file, same function" variant.
func shuffleControls(c *circuit.Circuit, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	out := circuit.New(c.N, c.Name+"_shuffled")
	for _, g := range c.Gates {
		h := g
		if len(h.Controls) > 1 {
			h.Controls = append([]circuit.Control(nil), g.Controls...)
			rng.Shuffle(len(h.Controls), func(i, j int) {
				h.Controls[i], h.Controls[j] = h.Controls[j], h.Controls[i]
			})
		}
		out.Add(h)
		if c.N >= 2 && rng.Intn(4) == 0 {
			a := rng.Intn(c.N)
			b := (a + 1 + rng.Intn(c.N-1)) % c.N
			out.CX(a, b)
			out.CX(a, b)
		}
	}
	return out
}

// BuildClassicalSuite builds (G, G') pairs where both sides are classical
// reversible netlists: an equivalent shuffled variant and an error-injected
// variant per benchmark.
func BuildClassicalSuite(scale Scale, seed int64) ([]Instance, error) {
	type gen struct {
		name  string
		build func() (*circuit.Circuit, error)
	}
	var gens []gen
	switch scale {
	case Small:
		gens = []gen{
			{"hwb5", func() (*circuit.Circuit, error) { return bench.HWB(5) }},
			{"urf5-like", func() (*circuit.Circuit, error) { return bench.RandomReversible(5, 4) }},
			{"inc8", func() (*circuit.Circuit, error) { return bench.Increment(8, 3), nil }},
			{"rd4", func() (*circuit.Circuit, error) { return bench.RD(4) }},
			{"maj5", func() (*circuit.Circuit, error) { return bench.Majority(5) }},
		}
	case Medium:
		gens = []gen{
			{"hwb7", func() (*circuit.Circuit, error) { return bench.HWB(7) }},
			{"urf7-like", func() (*circuit.Circuit, error) { return bench.RandomReversible(7, 4) }},
			{"inc10", func() (*circuit.Circuit, error) { return bench.Increment(10, 3), nil }},
			{"rd6", func() (*circuit.Circuit, error) { return bench.RD(6) }},
			{"cmp7", func() (*circuit.Circuit, error) { return bench.Comparator(7) }},
		}
	default:
		gens = []gen{
			{"hwb9", func() (*circuit.Circuit, error) { return bench.HWB(9) }},
			{"urf9-like", func() (*circuit.Circuit, error) { return bench.RandomReversible(9, 4) }},
			{"inc12", func() (*circuit.Circuit, error) { return bench.Increment(12, 3), nil }},
			{"rd8", func() (*circuit.Circuit, error) { return bench.RD(8) }},
			{"cmp11", func() (*circuit.Circuit, error) { return bench.Comparator(11) }},
			{"5xp1", bench.FiveXP1},
		}
	}
	var out []Instance
	for i, g := range gens {
		c, err := g.build()
		if err != nil {
			return nil, fmt.Errorf("harness: building %s: %w", g.name, err)
		}
		eq := shuffleControls(c, seed+int64(i))
		out = append(out, Instance{
			Name: g.name, N: c.N, G: c, Gp: eq, WantEquivalent: true,
		})
		// Only the CNOT error classes keep the netlist classical (a
		// substituted H or an offset rotation would leave the SAT baseline's
		// domain).
		buggy, inj, err := injectClassical(eq, seed+int64(1000+i))
		if err != nil {
			return nil, fmt.Errorf("harness: injecting into %s: %w", g.name, err)
		}
		out = append(out, Instance{
			Name: g.name + " (buggy)", N: c.N, G: c, Gp: buggy,
			WantEquivalent: false, Injection: inj.String(),
		})
	}
	return out, nil
}

// injectClassical plants a CNOT-class error (the classical subset of the
// paper's error model), retrying classes until one applies.
func injectClassical(c *circuit.Circuit, seed int64) (*circuit.Circuit, errinject.Injection, error) {
	kinds := []errinject.Kind{errinject.MisplacedCNOT, errinject.RemovedCNOT, errinject.FlippedCNOT}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	var lastErr error
	for _, k := range kinds {
		out, inj, err := errinject.Inject(c, k, rng.Int63())
		if err == nil {
			return out, inj, nil
		}
		lastErr = err
	}
	return nil, errinject.Injection{}, lastErr
}

// RunSATComparison runs the three checkers on every classical instance.
func RunSATComparison(instances []Instance, opts RunOptions) ([]SATRow, error) {
	opts = opts.withDefaults()
	var rows []SATRow
	for _, inst := range instances {
		row := SATRow{
			Name: inst.Name, N: inst.N,
			SizeG: inst.G.NumGates(), SizeGp: inst.Gp.NumGates(),
			WantEquivalent: inst.WantEquivalent,
		}
		satRes, err := ecsat.Check(inst.G, inst.Gp, ecsat.Options{ConflictBudget: 2_000_000})
		if err != nil {
			return nil, fmt.Errorf("harness: SAT check on %s: %w", inst.Name, err)
		}
		row.SATVerdict = satRes.Verdict
		row.TSAT = satRes.Runtime
		row.Vars = satRes.Vars
		row.Clauses = satRes.Clauses

		ddRes := ec.Check(inst.G, inst.Gp, ec.Options{
			Strategy: opts.ECStrategy, Timeout: opts.ECTimeout, NodeLimit: opts.ECNodeLimit,
		})
		row.DDVerdict = ddRes.Verdict
		row.TDD = ddRes.Runtime

		rep := core.Check(inst.G, inst.Gp, core.Options{R: opts.R, Seed: opts.Seed, SkipEC: true})
		row.SimVerdict = rep.Verdict
		row.NumSims = rep.NumSims
		row.TSim = rep.SimTime

		rows = append(rows, row)
	}
	return rows, nil
}

// PrintSATComparison renders the three-way baseline table.
func PrintSATComparison(w io.Writer, rows []SATRow) {
	fmt.Fprintln(w, "SAT vs DD vs simulation on the classical reversible class (paper refs [17] vs [26] vs proposed)")
	fmt.Fprintf(w, "%-20s %4s %7s %7s  %-14s %9s %9s  %-12s %9s  %-20s %6s %9s\n",
		"Benchmark", "n", "|G|", "|G'|",
		"sat", "t_sat[s]", "clauses",
		"dd", "t_dd[s]",
		"sim", "#sims", "t_sim[s]")
	for _, r := range rows {
		sim := "no counterexample"
		if r.SimVerdict == core.NotEquivalent {
			sim = "not equivalent"
		}
		fmt.Fprintf(w, "%-20s %4d %7d %7d  %-14s %9.3f %9d  %-14s %9.3f  %-18s %6d %9.3f\n",
			r.Name, r.N, r.SizeG, r.SizeGp,
			r.SATVerdict, r.TSAT.Seconds(), r.Clauses,
			r.DDVerdict, r.TDD.Seconds(),
			sim, r.NumSims, r.TSim.Seconds())
	}
}
