package harness

import (
	"fmt"

	"qcec/internal/bench"
	"qcec/internal/circuit"
	"qcec/internal/decompose"
	"qcec/internal/ec"
	"qcec/internal/errinject"
	"qcec/internal/mapping"
)

// CompiledPair couples a source circuit with its deeply compiled form — the
// compilation-flow verification workload: the source is lowered to the CX
// gate set and routed onto a sparse coupling graph, so one source gate
// becomes many compiled gates and the blow-up is strongly non-uniform
// (multi-controlled gates explode, single-qubit gates stay single gates).
// Profile is the flow's native per-source-gate cost profile (decompose and
// mapping emission counts composed with ec.ComposeProfiles), the input that
// makes ec.StrategyGateCost keep the miter near the identity.
type CompiledPair struct {
	Name     string
	Source   *circuit.Circuit
	Compiled *circuit.Circuit
	// Profile[i] is the number of Compiled gates source gate i lowered to;
	// it sums to Compiled.NumGates().
	Profile []int
	// Equivalent is the ground truth: false for error-injected mutants.
	Equivalent bool
	// Injection describes the mutation of a non-equivalent pair ("" = clean).
	Injection string
}

// CompilePair builds one increasing-levels pair: the G side is src lowered
// to LevelToffoli (the granularity a frontend hands to a backend compiler),
// and the G' side continues through LevelCX and routing onto arch (SWAPs
// decomposed to CX, layout restored so the pair is strictly equivalent).
// The returned profile composes the LevelCX and routing stages' native
// emission counts, mapping each G gate to its G' chunk.
func CompilePair(name string, src *circuit.Circuit, arch *mapping.Architecture) (CompiledPair, error) {
	g, _ := decompose.WithProfile(src, decompose.LevelToffoli)
	lowered, dprof := decompose.WithProfile(g, decompose.LevelCX)
	mapped, err := mapping.Map(lowered, mapping.Options{
		Arch:           arch,
		RestoreLayout:  true,
		DecomposeSwaps: true,
	})
	if err != nil {
		return CompiledPair{}, fmt.Errorf("harness: compiling %s: %w", name, err)
	}
	return CompiledPair{
		Name:       name,
		Source:     g,
		Compiled:   mapped.Circuit,
		Profile:    ec.ComposeProfiles(dprof, mapped.CostProfile),
		Equivalent: true,
	}, nil
}

// CompiledSuite builds the deeply-compiled workload shared by the qectab
// gate-cost experiment and the qbench gate: seed circuits with strongly
// non-uniform lowering costs (Grover's multi-controlled-Z reflections, the
// QFT's controlled phases, the increment's MCT ripple chain), each compiled
// through decompose+mapping onto a sparse architecture, plus one
// error-injected mutant per clean pair so scheme comparisons also cover the
// non-equivalent verdict.  All generators are deterministic in seed.
func CompiledSuite(seed int64) ([]CompiledPair, error) {
	specs := []struct {
		name string
		src  *circuit.Circuit
		arch *mapping.Architecture
	}{
		{"grover-4@linear", bench.Grover(4, 5), mapping.Linear(5)},
		{"grover-4@ring", bench.Grover(4, 11), mapping.Ring(5)},
		{"qft-6@linear", bench.QFT(6), mapping.Linear(6)},
		{"inc-5@linear", bench.Increment(5, 2), mapping.Linear(5)},
		{"inc-6@ring", bench.Increment(6, 1), mapping.Ring(6)},
	}
	var pairs []CompiledPair
	for i, s := range specs {
		pair, err := CompilePair(s.name, s.src, s.arch)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, pair)
		// Mutate the compiled side; the native profile stays attached (a
		// removed gate leaves it one off, which the checker's schedule
		// rescaling absorbs) so the mutant exercises exactly the
		// profile-under-error path a real compiler bug would hit.
		mutant, inj, err := errinject.InjectAny(pair.Compiled.Clone(), seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("harness: mutating %s: %w", s.name, err)
		}
		pairs = append(pairs, CompiledPair{
			Name:       s.name + "+err",
			Source:     pair.Source,
			Compiled:   mutant,
			Profile:    pair.Profile,
			Equivalent: false,
			Injection:  inj.String(),
		})
	}
	return pairs, nil
}
