package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"qcec/internal/core"
	"qcec/internal/dd"
	"qcec/internal/ec"
	"qcec/internal/resource"
)

// RunOptions configures an experiment run.
type RunOptions struct {
	// R is the number of random simulations (paper: 10).
	R int
	// ECTimeout bounds the complete routine per instance (paper: 1 h).
	ECTimeout time.Duration
	// ECNodeLimit bounds the complete routine's DD size (0 = none).  CLI
	// front ends that want a safety net pass DefaultECNodeLimit explicitly;
	// the zero value genuinely disables the budget, matching ec.Options.
	ECNodeLimit int
	// ECStrategy selects the complete routine; the paper's baseline tool
	// constructs and compares both DDs, i.e. ec.Construction.
	ECStrategy ec.Strategy
	// Seed drives stimulus selection.
	Seed int64
	// MemSoftLimit / MemHardLimit, in bytes, run every measurement under a
	// memory watchdog (see internal/resource); 0 disables the bound.
	MemSoftLimit uint64
	MemHardLimit uint64
}

// DefaultECNodeLimit is the node budget the CLI front ends (cmd/qectab)
// apply by default.  It is deliberately NOT applied by withDefaults:
// RunOptions.ECNodeLimit documents 0 as "no limit", and silently forcing a
// budget here made that impossible to request (the historical bug).
const DefaultECNodeLimit = 2_000_000

// Defaults fills unset fields.  ECNodeLimit is normalized, not defaulted:
// zero and negative values both mean "no node budget", consistently with
// ec.Options.NodeLimit and the qcec/qectab flags.
func (o RunOptions) withDefaults() RunOptions {
	if o.R <= 0 {
		o.R = core.DefaultR
	}
	if o.ECTimeout <= 0 {
		o.ECTimeout = 10 * time.Second
	}
	if o.ECNodeLimit < 0 {
		o.ECNodeLimit = 0
	}
	return o
}

// Row is one line of a Table I reproduction.
type Row struct {
	Name   string
	N      int
	SizeG  int
	SizeGp int

	// Complete-routine-only results (paper column t_ec).
	ECVerdict  ec.Verdict
	TEC        time.Duration
	ECTimedOut bool

	// Simulation-stage results (paper columns #sims, t_sim).
	NumSims     int
	TSim        time.Duration
	SimDetected bool

	// Ground truth and the flow's verdict, for the correctness check.
	WantEquivalent bool
	FlowVerdict    core.Verdict
	Injection      string

	// DD telemetry of the two measurements (gate-cache and compute-table
	// hit rates, unique-table activity, GC reclaims).
	ECDD  dd.Stats
	SimDD dd.Stats

	// Memory-watchdog counters of the two measurements; nil unless the run
	// options set a memory limit.
	ECMem  *resource.Stats
	SimMem *resource.Stats
}

// RunInstance measures one benchmark pair: first the complete routine alone
// (the state of the art), then the simulation stage of the proposed flow.
func RunInstance(inst Instance, opts RunOptions) Row {
	opts = opts.withDefaults()
	row := Row{
		Name:           inst.Name,
		N:              inst.N,
		SizeG:          inst.G.NumGates(),
		SizeGp:         inst.Gp.NumGates(),
		WantEquivalent: inst.WantEquivalent,
		Injection:      inst.Injection,
	}

	ecRes := ec.Check(inst.G, inst.Gp, ec.Options{
		Strategy:     opts.ECStrategy,
		Timeout:      opts.ECTimeout,
		NodeLimit:    opts.ECNodeLimit,
		OutputPerm:   inst.OutputPerm,
		MemSoftLimit: opts.MemSoftLimit,
		MemHardLimit: opts.MemHardLimit,
	})
	row.ECVerdict = ecRes.Verdict
	row.TEC = ecRes.Runtime
	row.ECTimedOut = ecRes.Verdict == ec.TimedOut
	row.ECDD = ecRes.DD
	row.ECMem = ecRes.Mem

	rep := core.Check(inst.G, inst.Gp, core.Options{
		R:            opts.R,
		Seed:         opts.Seed,
		SkipEC:       true,
		OutputPerm:   inst.OutputPerm,
		MemSoftLimit: opts.MemSoftLimit,
		MemHardLimit: opts.MemHardLimit,
	})
	row.NumSims = rep.NumSims
	row.TSim = rep.SimTime
	row.SimDetected = rep.Verdict == core.NotEquivalent
	row.FlowVerdict = rep.Verdict
	row.SimDD = rep.DD
	row.SimMem = rep.Mem
	return row
}

// ddFooter aggregates the DD telemetry of a set of rows into one summary
// line: hit rates are count-weighted across the suite, not averaged per row.
func ddFooter(rows []Row) string {
	var ecDD, simDD dd.Stats
	for _, r := range rows {
		ecDD.Add(r.ECDD)
		simDD.Add(r.SimDD)
	}
	var total dd.Stats
	total.Add(ecDD)
	total.Add(simDD)
	line := fmt.Sprintf(
		"DD telemetry: gate-cache hit rate %.1f%% (ec %.1f%%, sim %.1f%%); compute-table %.1f%%; unique-table %.1f%%; GC reclaimed %d nodes in %d runs",
		100*total.GateHitRate(), 100*ecDD.GateHitRate(), 100*simDD.GateHitRate(),
		100*total.ComputeHitRate(), 100*total.UniqueHitRate(),
		total.GCReclaimed, total.GCRuns)
	if total.ApplyCalls > 0 {
		line += fmt.Sprintf("; apply kernel: %d direct applies, %.1f%% table hits",
			total.ApplyCalls, 100*total.ApplyHitRate())
	}
	if total.PressureGCs > 0 {
		line += fmt.Sprintf("; %d collections forced by memory pressure", total.PressureGCs)
	}
	return line
}

// RunSuite measures every instance and sorts rows by simulation time
// descending, like the paper's tables.  Instance circuits are released as
// soon as they are measured so that paper-scale suites (millions of gates
// per instance) do not accumulate.
func RunSuite(instances []Instance, opts RunOptions) []Row {
	rows := make([]Row, 0, len(instances))
	for i := range instances {
		rows = append(rows, RunInstance(instances[i], opts))
		instances[i].G, instances[i].Gp = nil, nil
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TSim > rows[j].TSim })
	return rows
}

func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// PrintTable1a renders the non-equivalent table in the paper's layout,
// followed by a summary line (detection rate, one-sim rate, geometric-mean
// speedup of the simulation stage over the complete baseline).
func PrintTable1a(w io.Writer, rows []Row, opts RunOptions) {
	opts = opts.withDefaults()
	fmt.Fprintf(w, "Table Ia — non-equivalent benchmarks (EC timeout %s)\n", opts.ECTimeout)
	fmt.Fprintf(w, "%-28s %4s %8s %9s %10s %6s %9s  %s\n",
		"Benchmark", "n", "|G|", "|G'|", "t_ec[s]", "#sims", "t_sim[s]", "injected error")
	detected, oneSim := 0, 0
	logSum, logCount := 0.0, 0
	for _, r := range rows {
		tec := fmtDuration(r.TEC)
		if r.ECTimedOut {
			tec = ">" + fmtDuration(opts.ECTimeout)
		}
		sims := fmt.Sprintf("%d", r.NumSims)
		if r.SimDetected {
			detected++
			if r.NumSims == 1 {
				oneSim++
			}
			if r.TSim > 0 && r.TEC > 0 {
				logSum += math.Log(r.TEC.Seconds() / r.TSim.Seconds())
				logCount++
			}
		} else {
			sims = "miss"
		}
		fmt.Fprintf(w, "%-28s %4d %8d %9d %10s %6s %9s  %s\n",
			r.Name, r.N, r.SizeG, r.SizeGp, tec, sims, fmtDuration(r.TSim), r.Injection)
	}
	fmt.Fprintf(w, "detected %d/%d (within one simulation: %d)", detected, len(rows), oneSim)
	if logCount > 0 {
		fmt.Fprintf(w, "; geo-mean speedup of simulation over t_ec: %.1fx (t_ec capped by timeout)",
			math.Exp(logSum/float64(logCount)))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, ddFooter(rows))
}

// PrintTable1b renders the equivalent table in the paper's layout.
func PrintTable1b(w io.Writer, rows []Row, opts RunOptions) {
	opts = opts.withDefaults()
	fmt.Fprintf(w, "Table Ib — equivalent benchmarks (r = %d, EC timeout %s)\n", opts.R, opts.ECTimeout)
	fmt.Fprintf(w, "%-28s %4s %8s %9s %10s %9s\n",
		"Benchmark", "n", "|G|", "|G'|", "t_ec[s]", "t_sim[s]")
	for _, r := range rows {
		tec := fmtDuration(r.TEC)
		if r.ECTimedOut {
			tec = ">" + fmtDuration(opts.ECTimeout)
		}
		fmt.Fprintf(w, "%-28s %4d %8d %9d %10s %9s\n",
			r.Name, r.N, r.SizeG, r.SizeGp, tec, fmtDuration(r.TSim))
	}
	fmt.Fprintln(w, ddFooter(rows))
}

// FlowSummary tallies the verdicts of the full proposed flow (Fig. 3) over a
// suite — the F3 experiment.
type FlowSummary struct {
	Total              int
	NotEquivalent      int
	Equivalent         int
	ProbablyEquivalent int
	SimsPerDetection   []int
	WrongVerdicts      int
	TotalTime          time.Duration
}

// RunFlow executes the complete proposed flow on every instance.
func RunFlow(instances []Instance, opts RunOptions) FlowSummary {
	opts = opts.withDefaults()
	var s FlowSummary
	for _, inst := range instances {
		rep := core.Check(inst.G, inst.Gp, core.Options{
			R:            opts.R,
			Seed:         opts.Seed,
			ECTimeout:    opts.ECTimeout,
			Strategy:     opts.ECStrategy,
			OutputPerm:   inst.OutputPerm,
			MemSoftLimit: opts.MemSoftLimit,
			MemHardLimit: opts.MemHardLimit,
		})
		s.Total++
		s.TotalTime += rep.TotalTime
		switch rep.Verdict {
		case core.NotEquivalent:
			s.NotEquivalent++
			s.SimsPerDetection = append(s.SimsPerDetection, rep.NumSims)
			if inst.WantEquivalent {
				s.WrongVerdicts++
			}
		case core.Equivalent, core.EquivalentUpToGlobalPhase:
			s.Equivalent++
			if !inst.WantEquivalent {
				s.WrongVerdicts++
			}
		case core.ProbablyEquivalent:
			s.ProbablyEquivalent++
		}
	}
	return s
}

// PrintFlowSummary renders the verdict distribution.
func PrintFlowSummary(w io.Writer, s FlowSummary) {
	fmt.Fprintf(w, "Proposed flow (Fig. 3) over %d instances: %d not-equivalent, %d equivalent, %d probably-equivalent (EC timeout), %d wrong verdicts, total %.3fs\n",
		s.Total, s.NotEquivalent, s.Equivalent, s.ProbablyEquivalent, s.WrongVerdicts, s.TotalTime.Seconds())
	if len(s.SimsPerDetection) > 0 {
		one := 0
		for _, k := range s.SimsPerDetection {
			if k == 1 {
				one++
			}
		}
		fmt.Fprintf(w, "Counterexamples found within one simulation: %d/%d\n", one, len(s.SimsPerDetection))
	}
}
