package harness

import (
	"fmt"
	"io"
	"math"
	"time"

	"qcec/internal/ec"
)

// GateCostSchemes lists the application schemes the compilation-flow
// experiment races, in print order.
var GateCostSchemes = []ec.Strategy{ec.Sequential, ec.Proportional, ec.Lookahead, ec.StrategyGateCost}

// GateCostCell is one scheme's measurement on one compiled pair.
type GateCostCell struct {
	Verdict   ec.Verdict
	Runtime   time.Duration
	PeakNodes int
	// Muls counts DD matrix multiplications: applied gates plus the
	// Lookahead scheme's speculative probes (Result.ProbeMuls), so the
	// schemes are compared on equal work terms.
	Muls int
}

// GateCostRow is the four-scheme comparison for one deeply-compiled pair.
type GateCostRow struct {
	Name       string
	N          int
	SizeG      int
	SizeGp     int
	Equivalent bool // ground truth
	Injection  string
	// Cells[i] corresponds to GateCostSchemes[i].
	Cells []GateCostCell
	// VerdictParity is true when every scheme reached the same verdict.
	VerdictParity bool
	// NodeRatio is proportional peak nodes / gate-cost peak nodes (0 when
	// either is unavailable).
	NodeRatio float64
}

// RunGateCostComparison races the four application schemes over the
// deeply-compiled workload (CompiledSuite): every scheme checks the
// same source-vs-compiled pair, with the gate-cost scheme driven by the
// flow's native cost profile.
func RunGateCostComparison(seed int64, opts RunOptions) ([]GateCostRow, error) {
	opts = opts.withDefaults()
	pairs, err := CompiledSuite(seed)
	if err != nil {
		return nil, err
	}
	rows := make([]GateCostRow, 0, len(pairs))
	for _, pair := range pairs {
		row := GateCostRow{
			Name:       pair.Name,
			N:          pair.Source.N,
			SizeG:      pair.Source.NumGates(),
			SizeGp:     pair.Compiled.NumGates(),
			Equivalent: pair.Equivalent,
			Injection:  pair.Injection,
		}
		var prop, gc GateCostCell
		parity := true
		for k, strat := range GateCostSchemes {
			ecOpts := ec.Options{
				Strategy:     strat,
				Timeout:      opts.ECTimeout,
				NodeLimit:    opts.ECNodeLimit,
				MemSoftLimit: opts.MemSoftLimit,
				MemHardLimit: opts.MemHardLimit,
			}
			if strat == ec.StrategyGateCost {
				ecOpts.CostProfile = pair.Profile
			}
			res := ec.Check(pair.Source, pair.Compiled, ecOpts)
			cell := GateCostCell{
				Verdict:   res.Verdict,
				Runtime:   res.Runtime,
				PeakNodes: res.PeakNodes,
				Muls:      res.GatesApplied + res.ProbeMuls,
			}
			row.Cells = append(row.Cells, cell)
			if k > 0 && cell.Verdict != row.Cells[0].Verdict {
				parity = false
			}
			switch strat {
			case ec.Proportional:
				prop = cell
			case ec.StrategyGateCost:
				gc = cell
			}
		}
		row.VerdictParity = parity
		if prop.PeakNodes > 0 && gc.PeakNodes > 0 {
			row.NodeRatio = float64(prop.PeakNodes) / float64(gc.PeakNodes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GateCostGeomeanRatio is the geometric mean of proportional-over-gate-cost
// peak-node ratios across the clean (equivalent) pairs — the number the
// bench gate enforces.  Mutant rows are excluded: a detected error ends the
// run at the first diverging column, so their peaks measure detection
// latency, not schedule quality.
func GateCostGeomeanRatio(rows []GateCostRow) float64 {
	logSum, count := 0.0, 0
	for _, r := range rows {
		if r.Equivalent && r.NodeRatio > 0 {
			logSum += math.Log(r.NodeRatio)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Exp(logSum / float64(count))
}

// PrintGateCostComparison renders the scheme comparison table.
func PrintGateCostComparison(w io.Writer, rows []GateCostRow) {
	fmt.Fprintln(w, "Compilation-flow verification — application-scheme comparison (peak DD nodes / multiplications / time)")
	fmt.Fprintf(w, "%-18s %3s %6s %7s", "pair", "n", "|G|", "|G'|")
	for _, s := range GateCostSchemes {
		fmt.Fprintf(w, " %22s", s)
	}
	fmt.Fprintf(w, " %7s %7s\n", "ratio", "parity")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %3d %6d %7d", r.Name, r.N, r.SizeG, r.SizeGp)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " %8d/%6d/%.3fs", c.PeakNodes, c.Muls, c.Runtime.Seconds())
		}
		ratio := "-"
		if r.NodeRatio > 0 {
			ratio = fmt.Sprintf("%.1fx", r.NodeRatio)
		}
		fmt.Fprintf(w, " %7s %7v\n", ratio, r.VerdictParity)
	}
	if g := GateCostGeomeanRatio(rows); g > 0 {
		fmt.Fprintf(w, "geomean peak-node ratio (proportional / gate-cost, equivalent pairs): %.2fx\n", g)
	}
}

// WriteGateCostCSV writes the comparison as CSV.
func WriteGateCostCSV(w io.Writer, rows []GateCostRow) error {
	header := "pair,n,gates_g,gates_gp,equivalent,injection"
	for _, s := range GateCostSchemes {
		header += fmt.Sprintf(",%s_verdict,%s_peak,%s_muls,%s_seconds", s, s, s, s)
	}
	if _, err := fmt.Fprintln(w, header+",node_ratio,parity"); err != nil {
		return err
	}
	for _, r := range rows {
		line := fmt.Sprintf("%s,%d,%d,%d,%v,%q", r.Name, r.N, r.SizeG, r.SizeGp, r.Equivalent, r.Injection)
		for _, c := range r.Cells {
			line += fmt.Sprintf(",%s,%d,%d,%.6f", c.Verdict, c.PeakNodes, c.Muls, c.Runtime.Seconds())
		}
		line += fmt.Sprintf(",%.3f,%v", r.NodeRatio, r.VerdictParity)
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
