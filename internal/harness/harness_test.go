package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/ec"
)

func TestBuildEquivalentSuiteSmall(t *testing.T) {
	suite, err := BuildEquivalentSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) < 10 {
		t.Fatalf("small suite has only %d instances", len(suite))
	}
	for _, inst := range suite {
		if inst.G.NumGates() == 0 || inst.Gp.NumGates() == 0 {
			t.Errorf("%s: empty circuit", inst.Name)
		}
		if inst.G.N != inst.Gp.N {
			t.Errorf("%s: register mismatch", inst.Name)
		}
		if !inst.WantEquivalent {
			t.Errorf("%s: equivalent suite instance not marked equivalent", inst.Name)
		}
	}
}

// The ground truth of the suite: every equivalent instance must verify with
// the complete routine.
func TestEquivalentSuiteIsEquivalent(t *testing.T) {
	suite, err := BuildEquivalentSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range suite {
		r := ec.Check(inst.G, inst.Gp, ec.Options{
			Strategy:   ec.Proportional,
			OutputPerm: inst.OutputPerm,
			Timeout:    time.Minute,
		})
		if r.Verdict != ec.Equivalent {
			t.Errorf("%s: pipeline output not equivalent: %v (%s)", inst.Name, r.Verdict, r.Reason)
		}
	}
}

func TestNonEquivalentSuiteIsNotEquivalent(t *testing.T) {
	suite, err := BuildNonEquivalentSuite(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range suite {
		if inst.WantEquivalent || inst.Injection == "" {
			t.Errorf("%s: missing injection metadata", inst.Name)
		}
		r := ec.Check(inst.G, inst.Gp, ec.Options{
			Strategy:   ec.Proportional,
			OutputPerm: inst.OutputPerm,
			Timeout:    time.Minute,
		})
		if r.Verdict == ec.Equivalent || r.Verdict == ec.EquivalentUpToGlobalPhase {
			t.Errorf("%s: injected error produced an equivalent circuit (%s)", inst.Name, inst.Injection)
		}
	}
}

func TestRunInstanceAndTables(t *testing.T) {
	suite, err := BuildNonEquivalentSuite(Small, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{R: 16, ECTimeout: 5 * time.Second, ECStrategy: ec.Construction, Seed: 3}
	rows := RunSuite(suite[:4], opts)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.SimDetected {
			t.Errorf("%s: simulation failed to detect the injected error (%s)", r.Name, r.Injection)
		}
		if r.NumSims < 1 {
			t.Errorf("%s: NumSims = %d", r.Name, r.NumSims)
		}
	}
	var sb strings.Builder
	PrintTable1a(&sb, rows, opts)
	if !strings.Contains(sb.String(), "Table Ia") {
		t.Error("table header missing")
	}
}

func TestRunTable1bShape(t *testing.T) {
	suite, err := BuildEquivalentSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{R: 10, ECTimeout: 5 * time.Second, ECStrategy: ec.Construction, Seed: 5}
	rows := RunSuite(suite[:4], opts)
	for _, r := range rows {
		if r.SimDetected {
			t.Errorf("%s: simulation 'detected' a difference on an equivalent pair", r.Name)
		}
		if r.FlowVerdict != core.ProbablyEquivalent && r.FlowVerdict != core.Equivalent {
			t.Errorf("%s: flow verdict %v", r.Name, r.FlowVerdict)
		}
	}
	var sb strings.Builder
	PrintTable1b(&sb, rows, opts)
	if !strings.Contains(sb.String(), "Table Ib") {
		t.Error("table header missing")
	}
}

func TestRunFlowSummary(t *testing.T) {
	eq, err := BuildEquivalentSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	neq, err := BuildNonEquivalentSuite(Small, 13)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]Instance{}, eq[:3]...), neq[:3]...)
	s := RunFlow(all, RunOptions{R: 12, ECTimeout: 10 * time.Second, ECStrategy: ec.Proportional, Seed: 17})
	if s.Total != 6 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.WrongVerdicts != 0 {
		t.Fatalf("flow produced %d wrong verdicts", s.WrongVerdicts)
	}
	if s.NotEquivalent < 3 {
		t.Errorf("flow missed injected errors: %+v", s)
	}
	var sb strings.Builder
	PrintFlowSummary(&sb, s)
	if sb.Len() == 0 {
		t.Error("empty flow summary")
	}
}

func TestTheoryExperimentMatchesPrediction(t *testing.T) {
	n := 7
	rows, err := TheoryExperiment(n, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("rows = %d", len(rows))
	}
	if _, err := TheoryExperiment(1, 23); err == nil {
		t.Error("out-of-range qubit count did not error")
	}
	if _, err := TheoryExperiment(15, 23); err == nil {
		t.Error("out-of-range qubit count did not error")
	}
	for _, r := range rows {
		// Exhaustive measurement must match 2^{-c} exactly: the difference
		// gate fires on exactly 2^{n-c} basis states.
		if math.Abs(r.Measured-r.Predicted) > 1e-12 {
			t.Errorf("c=%d: measured %g, predicted %g", r.Controls, r.Measured, r.Predicted)
		}
	}
	var sb strings.Builder
	PrintTheory(&sb, n, rows)
	if !strings.Contains(sb.String(), "theory") {
		t.Error("theory table header missing")
	}
}

func TestStimuliAblation(t *testing.T) {
	a := RunStimuliAblation(10, 10, 31)
	if a.ZeroDetected {
		t.Error("|0...0> stimulus cannot detect the Example-8 worst case")
	}
	if !a.AllOnesDetected {
		t.Error("the affected-column stimulus must detect the error")
	}
	// Random detection on 10 qubits with 10 stimuli has probability
	// ~ 10 * 2/1024 ≈ 2%; assert only that the call runs and reports.
	var sb strings.Builder
	PrintStimuliAblation(&sb, a)
	if sb.Len() == 0 {
		t.Error("empty stimuli ablation output")
	}
}

func TestStrategyAblation(t *testing.T) {
	suite, err := BuildEquivalentSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	rows := RunStrategyAblation(suite[:2], RunOptions{ECTimeout: 10 * time.Second})
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 2 instances x 4 strategies", len(rows))
	}
	for _, r := range rows {
		if r.Verdict == ec.NotEquivalent {
			t.Errorf("%s/%s: equivalent instance judged not equivalent", r.Name, r.Strategy)
		}
	}
	var sb strings.Builder
	PrintStrategyAblation(&sb, rows)
	if sb.Len() == 0 {
		t.Error("empty strategy ablation output")
	}
}

func TestRAblation(t *testing.T) {
	suite, err := BuildEquivalentSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	rows := RunRAblation(suite[:5], []int{1, 4, 10}, 37)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Detection counts must be monotone in r.
	for i := 1; i < len(rows); i++ {
		if rows[i].Detected < rows[i-1].Detected {
			t.Errorf("detection not monotone in r: %+v", rows)
		}
	}
	// With r = 10, nearly everything should be caught.
	last := rows[len(rows)-1]
	if last.Detected < last.Total*8/10 {
		t.Errorf("r=10 caught only %d/%d", last.Detected, last.Total)
	}
	var sb strings.Builder
	PrintRAblation(&sb, rows)
	if sb.Len() == 0 {
		t.Error("empty r ablation output")
	}
}

func TestScaleStrings(t *testing.T) {
	for _, s := range []Scale{Small, Medium, Paper} {
		if s.String() == "" {
			t.Error("empty scale name")
		}
	}
}

func TestBuildClassicalSuiteAndSATComparison(t *testing.T) {
	suite, err := BuildClassicalSuite(Small, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) < 8 {
		t.Fatalf("classical suite has %d instances", len(suite))
	}
	rows, err := RunSATComparison(suite, RunOptions{R: 16, ECTimeout: 10 * time.Second, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// All three checkers must agree with the ground truth (the SAT
		// miter has no timeout issues at this scale).
		if r.WantEquivalent {
			if r.SATVerdict != 0 /* ecsat.Equivalent */ {
				t.Errorf("%s: SAT verdict %v on equivalent pair", r.Name, r.SATVerdict)
			}
			if r.DDVerdict != ec.Equivalent {
				t.Errorf("%s: DD verdict %v on equivalent pair", r.Name, r.DDVerdict)
			}
			if r.SimVerdict == core.NotEquivalent {
				t.Errorf("%s: simulation false positive", r.Name)
			}
		} else {
			if r.SATVerdict.String() != "not equivalent" {
				t.Errorf("%s: SAT verdict %v on buggy pair", r.Name, r.SATVerdict)
			}
			if r.DDVerdict != ec.NotEquivalent {
				t.Errorf("%s: DD verdict %v on buggy pair", r.Name, r.DDVerdict)
			}
			if r.SimVerdict != core.NotEquivalent {
				t.Errorf("%s: simulation missed the bug", r.Name)
			}
		}
	}
	var sb strings.Builder
	PrintSATComparison(&sb, rows)
	if !strings.Contains(sb.String(), "SAT vs DD") {
		t.Error("missing table header")
	}
}

func TestPrefilterComparison(t *testing.T) {
	instances, classes, err := BuildPrefilterSuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunPrefilterComparison(instances, classes, RunOptions{R: 8, ECTimeout: 10 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The flow must conclude on every class.
		if r.Flow == core.NotEquivalent || r.Flow == core.ProbablyEquivalent {
			t.Errorf("%s: flow verdict %v on an equivalent pair", r.Name, r.Flow)
		}
		switch r.Class {
		case "peephole":
			if r.Rewrite.String() != "equivalent" {
				t.Errorf("peephole class not proven by gate rewriting: %v", r.Rewrite)
			}
		case "clifford":
			if r.ZX.String() != "equivalent up to global phase" {
				t.Errorf("clifford class not proven by ZX: %v", r.ZX)
			}
		case "mapped":
			// Neither prefilter needs to conclude here; assert soundness only.
		}
	}
	var sb strings.Builder
	PrintPrefilterComparison(&sb, rows)
	if !strings.Contains(sb.String(), "Prefilter comparison") {
		t.Error("missing header")
	}
}

func TestCSVWriters(t *testing.T) {
	rows := []Row{{
		Name: "x", N: 3, SizeG: 5, SizeGp: 9,
		ECVerdict: ec.TimedOut, TEC: time.Second, ECTimedOut: true,
		NumSims: 1, TSim: time.Millisecond, SimDetected: true,
		WantEquivalent: false, Injection: "removed CNOT",
	}}
	var sb strings.Builder
	if err := WriteRowsCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "benchmark,n,") || !strings.Contains(out, "removed CNOT") {
		t.Errorf("rows CSV malformed:\n%s", out)
	}

	sb.Reset()
	if err := WriteTheoryCSV(&sb, []TheoryRow{{Controls: 2, Predicted: 0.25, Measured: 0.25}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.250000000") {
		t.Errorf("theory CSV malformed:\n%s", sb.String())
	}

	sb.Reset()
	if err := WriteStrategyCSV(&sb, []StrategyRow{{Name: "y", Strategy: ec.Lookahead, Verdict: ec.Equivalent, Runtime: time.Second, PeakNodes: 7}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lookahead") {
		t.Errorf("strategy CSV malformed:\n%s", sb.String())
	}
}

func TestRouterAblation(t *testing.T) {
	rows, err := RunRouterAblation(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s: a mapped circuit failed verification", r.Arch)
		}
		if r.GreedySwaps == 0 && r.LookaheadSwaps == 0 {
			t.Errorf("%s: no swaps inserted at all (workload too easy)", r.Arch)
		}
	}
	var sb strings.Builder
	PrintRouterAblation(&sb, rows)
	if !strings.Contains(sb.String(), "Router ablation") {
		t.Error("missing header")
	}
}

// TestECNodeLimitZeroDisablesBudget is the regression for the withDefaults
// clamp that silently forced a 2,000,000-node budget whenever ECNodeLimit
// was <= 0, contradicting the documented "(0 = none)": a tiny explicit
// budget must trip, and a zero budget must let the same instance complete.
func TestECNodeLimitZeroDisablesBudget(t *testing.T) {
	g := circuit.New(6, "ghz6")
	g.H(0)
	for q := 0; q < 5; q++ {
		g.CX(q, q+1)
	}
	inst := Instance{Name: "node-limit", N: 6, G: g, Gp: g.Clone(), WantEquivalent: true}

	tripped := RunInstance(inst, RunOptions{R: 1, ECTimeout: 30 * time.Second, ECNodeLimit: 4})
	if !tripped.ECTimedOut {
		t.Fatalf("sanity: a 4-node budget did not trip (verdict %v)", tripped.ECVerdict)
	}

	free := RunInstance(inst, RunOptions{R: 1, ECTimeout: 30 * time.Second, ECNodeLimit: 0})
	if free.ECTimedOut {
		t.Fatalf("ECNodeLimit 0 still bounded the check (verdict %v)", free.ECVerdict)
	}
	if free.ECVerdict != ec.Equivalent {
		t.Fatalf("unbounded check verdict = %v, want equivalent", free.ECVerdict)
	}
}

// TestRunOptionsNodeLimitNormalization pins the withDefaults contract: 0 and
// negative node limits both reach the complete routine as "no limit", and
// the other defaults still apply.
func TestRunOptionsNodeLimitNormalization(t *testing.T) {
	if got := (RunOptions{}).withDefaults().ECNodeLimit; got != 0 {
		t.Fatalf("zero value normalized to %d, want 0 (no limit)", got)
	}
	if got := (RunOptions{ECNodeLimit: -1}).withDefaults().ECNodeLimit; got != 0 {
		t.Fatalf("-1 normalized to %d, want 0 (no limit)", got)
	}
	if got := (RunOptions{ECNodeLimit: 512}).withDefaults().ECNodeLimit; got != 512 {
		t.Fatalf("explicit budget rewritten to %d, want 512", got)
	}
	if got := (RunOptions{}).withDefaults().R; got != core.DefaultR {
		t.Fatalf("R default = %d, want %d", got, core.DefaultR)
	}
}
