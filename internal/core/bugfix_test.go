package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/resource"
	"qcec/internal/sim"
)

// TestAgreementToleranceDerivation pins the mapping from DD weight tolerance
// to state-agreement tolerance: the historical 1e-6 bound at the default
// weight tolerance, proportional scaling, and the 1e-3 cap.
func TestAgreementToleranceDerivation(t *testing.T) {
	for _, tc := range []struct{ ddTol, want float64 }{
		{1e-10, 1e-6}, // default: historical bound preserved exactly
		{1e-8, 1e-4},
		{1e-12, 1e-8},
		{1.0, 1e-3}, // capped
	} {
		if got := agreementTolerance(tc.ddTol); got != tc.want {
			t.Errorf("agreementTolerance(%g) = %g, want %g", tc.ddTol, got, tc.want)
		}
	}
}

// TestStatesAgreeUsesConfiguredTolerance is the near-threshold regression for
// the hard-coded tol=1e-6 bug: a single RZ(6e-6) differs from the identity
// by an overlap imaginary part of ~3e-6 — outside the default 1e-6 agreement
// bound but inside the 1e-4 bound derived from a coarser Tolerance=1e-8.
// Before the fix the second check also reported NotEquivalent because the
// configured tolerance never reached statesAgree.
func TestStatesAgreeUsesConfiguredTolerance(t *testing.T) {
	g1 := circuit.New(1, "rz-tiny")
	g1.RZ(6e-6, 0)
	g2 := circuit.New(1, "id")

	rep := Check(g1, g2, Options{Stimuli: []uint64{0}, SkipEC: true})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("default tolerance: verdict = %v, want not equivalent", rep.Verdict)
	}
	if rep.Counterexample == nil || rep.Counterexample.Input != 0 {
		t.Fatalf("default tolerance: counterexample = %+v", rep.Counterexample)
	}

	rep = Check(g1, g2, Options{Stimuli: []uint64{0}, SkipEC: true, Tolerance: 1e-8})
	if rep.Verdict != ProbablyEquivalent {
		t.Fatalf("coarse tolerance: verdict = %v, want probably equivalent", rep.Verdict)
	}
}

// TestStimulusValidation: out-of-range caller stimuli must surface as a
// typed *StimulusRangeError on the report instead of a panic inside
// dd.BasisState on a worker goroutine.
func TestStimulusValidation(t *testing.T) {
	g := ghz(3)
	rep := Check(g, g.Clone(), Options{Stimuli: []uint64{1, 8}})
	if rep.Err == nil {
		t.Fatal("out-of-range stimulus accepted")
	}
	var sre *StimulusRangeError
	if !errors.As(rep.Err, &sre) {
		t.Fatalf("Err = %v (%T), want *StimulusRangeError", rep.Err, rep.Err)
	}
	if sre.Index != 1 || sre.Stimulus != 8 || sre.Qubits != 3 {
		t.Fatalf("error fields = %+v", sre)
	}
	if rep.Verdict != ProbablyEquivalent || rep.NumSims != 0 {
		t.Fatalf("invalid options must be inconclusive with no sims: %v, %d sims",
			rep.Verdict, rep.NumSims)
	}

	// The parallel path must reject identically.
	par := Check(g, g.Clone(), Options{Stimuli: []uint64{0, 8}, Parallel: 2})
	if !errors.As(par.Err, &sre) {
		t.Fatalf("parallel Err = %v", par.Err)
	}

	// The boundary state 2^n-1 is valid.
	ok := Check(g, g.Clone(), Options{Stimuli: []uint64{7}, SkipEC: true})
	if ok.Err != nil {
		t.Fatalf("boundary stimulus rejected: %v", ok.Err)
	}
}

// TestParallelFastForwardStopsAtFirstFailure schedules two workers
// deterministically (via the package test hooks) and asserts that no
// stimulus at or past the first failing index is evaluated — the regression
// for the `>` vs `>=` fast-forward check.
//
// Layout: g2 = CX(0,1) differs from the identity exactly on inputs with
// qubit 0 set.  Stimuli [0,2,3,4,6] fail only at index 2 (value 3);
// worker 0 owns indices 0,2,4 and worker 1 owns 1,3.  Worker 1 is held in
// the eval hook until worker 0 has recorded the failure, so its check of
// index 3 provably runs after firstFail=2 is visible.
func TestParallelFastForwardStopsAtFirstFailure(t *testing.T) {
	g1 := circuit.New(3, "id")
	g1.X(2).X(2)
	g2 := circuit.New(3, "cx")
	g2.CX(0, 1)

	failSet := make(chan struct{})
	var mu sync.Mutex
	counts := make(map[int]int)
	evalHook = func(i int) {
		if i%2 == 1 { // worker 1's lane: wait for the recorded failure
			select {
			case <-failSet:
			case <-time.After(10 * time.Second):
				t.Error("failure was never recorded")
			}
		}
		mu.Lock()
		counts[i]++
		mu.Unlock()
	}
	failHook = func(int) { close(failSet) }
	defer func() { evalHook, failHook = nil, nil }()

	rep := Check(g1, g2, Options{
		Stimuli:  []uint64{0, 2, 3, 4, 6},
		Parallel: 2,
		SkipEC:   true,
	})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	if rep.Counterexample == nil || rep.Counterexample.Input != 3 {
		t.Fatalf("counterexample = %+v, want input 3", rep.Counterexample)
	}
	if rep.NumSims != 3 {
		t.Fatalf("NumSims = %d, want 3 (prefix through the failure)", rep.NumSims)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("stimulus index %d evaluated %d times", i, c)
		}
		if i > 2 {
			t.Fatalf("stimulus index %d past the first failure was evaluated", i)
		}
	}
	if counts[2] != 1 {
		t.Fatal("failing stimulus was never evaluated")
	}
}

// TestParallelNumSimsExcludesCrashedWorkerGap is the regression for the
// NumSims over-count under worker crashes: with two workers, worker 0 is
// crashed (via the eval hook) before evaluating its first stimulus while
// worker 1 finds the counterexample at index 1.  The old code reported
// idx+1 = 2 completed simulations even though index 0 was never evaluated;
// the true count is 1, and the worker error must surface the gap.
func TestParallelNumSimsExcludesCrashedWorkerGap(t *testing.T) {
	g1 := circuit.New(3, "id")
	g1.X(2).X(2)
	g2 := circuit.New(3, "cx")
	g2.CX(0, 1) // differs from the identity exactly on inputs with qubit 0 set

	// Index 0 (value 2, agrees) belongs to worker 0, which panics before
	// evaluating it; index 1 (value 1, differs) belongs to worker 1.
	stimuli := []uint64{2, 1}
	evalHook = func(i int) {
		if i == 0 {
			panic("injected: worker crashed before its first stimulus")
		}
	}
	defer func() { evalHook = nil }()

	opts := Options{Stimuli: stimuli, Parallel: 2, SkipEC: true}
	n, ce, stats, _, err := runStimuliParallel(g1, g2, stimuli, opts)
	if ce == nil || ce.Input != 1 {
		t.Fatalf("counterexample = %+v, want input 1", ce)
	}
	if n != 1 {
		t.Fatalf("evaluated count = %d, want 1 (index 0 was never evaluated)", n)
	}
	if stats.count != 1 {
		t.Fatalf("fidelity stats over %d stimuli, want 1", stats.count)
	}
	if err == nil {
		t.Fatal("crashed worker left no error")
	}
	var perr *resource.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want a *resource.PanicError in the chain", err)
	}
	if !strings.Contains(err.Error(), "left unevaluated") {
		t.Fatalf("err = %q, want the evaluation gap surfaced", err)
	}

	// End-to-end: the report's NumSims reflects the true count, and the
	// counterexample stays definitive despite the crashed worker.
	evalHook = func(i int) {
		if i == 0 {
			panic("injected: worker crashed before its first stimulus")
		}
	}
	rep := Check(g1, g2, opts)
	if rep.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v, want not equivalent", rep.Verdict)
	}
	if rep.NumSims != 1 {
		t.Fatalf("Report.NumSims = %d, want 1", rep.NumSims)
	}
}

// TestCompareReusedStimulusSurvivesGC guards the single-build stimulus reuse
// in simRunner.compare: the basis state is now built once and shared by both
// runs, so it must be pinned across the first run's DD collections.  A tiny
// GC threshold forces a collection after every gate; with a dangling stimulus
// edge the second run would produce garbage and the exhaustive equivalence
// proof below would fail.
func TestCompareReusedStimulusSurvivesGC(t *testing.T) {
	g := circuit.New(4, "mix")
	for q := 0; q < 4; q++ {
		g.H(q)
	}
	g.CX(0, 1).CX(1, 2).CX(2, 3)
	g.T(0).RZ(0.3, 1).Phase(0.7, 2).S(3)
	g.CX(2, 3).CX(1, 2).CX(0, 1)

	for _, parallel := range []int{1, 2} {
		rep := Check(g, g.Clone(), Options{
			R:           1 << 4, // exhaustive: all 16 basis states
			Parallel:    parallel,
			SkipEC:      true,
			GCThreshold: 1,
		})
		if rep.Err != nil {
			t.Fatalf("parallel=%d: err = %v", parallel, rep.Err)
		}
		if rep.Verdict != Equivalent || !rep.Exhaustive {
			t.Fatalf("parallel=%d: verdict = %v (exhaustive=%v), want exhaustive equivalent",
				parallel, rep.Verdict, rep.Exhaustive)
		}
		if rep.MinFidelity < 1-1e-9 {
			t.Fatalf("parallel=%d: min fidelity = %g, want 1", parallel, rep.MinFidelity)
		}
	}
}

// TestNumSimsExcludesCancelledInFlight pins the stimulus accounting under a
// mid-compare cancellation: when the SetCancel hook's *dd.LimitError panic is
// absorbed between two stimuli's comparisons, NumSims must count only the
// comparisons that actually finished — never the in-flight one.  The old loop
// published the loop index instead of a completed counter, so an absorbed
// cancellation during stimulus k reported k+1 simulations to the harness
// CSVs.  The fault hook stands in for the cancellation deterministically:
// ghz(3) applies 6 gates per stimulus (3 per circuit), so gate 8 is mid-way
// through the second stimulus's first circuit.
func TestNumSimsExcludesCancelledInFlight(t *testing.T) {
	g := ghz(3)
	var fired atomic.Bool
	sim.SetFaultHook(func(gatesApplied int64) {
		if gatesApplied == 8 && fired.CompareAndSwap(false, true) {
			panic(&dd.LimitError{Cancelled: true})
		}
	})
	defer sim.SetFaultHook(nil)

	rep := Check(g, g.Clone(), Options{Stimuli: []uint64{0, 1, 2, 3}, SkipEC: true})
	if !fired.Load() {
		t.Fatalf("cancellation never fired; test exercises nothing")
	}
	if rep.Err != nil {
		t.Fatalf("absorbed cancellation surfaced as an error: %v", rep.Err)
	}
	if rep.NumSims != 1 {
		t.Fatalf("NumSims = %d after cancellation mid-second-stimulus, want 1", rep.NumSims)
	}
	if rep.Verdict != ProbablyEquivalent || rep.Counterexample != nil {
		t.Fatalf("verdict = %v (ce %v), want inconclusive probably-equivalent",
			rep.Verdict, rep.Counterexample)
	}
}

// TestParallelStatsGaugesArePeaks is the multi-worker regression for
// Stats.Add's gauge semantics: every parallel worker owns a package with its
// own identity chain and unique tables, and the aggregated report must take
// the per-worker peak of those populations, not their sum.  Summing reported
// a node footprint no package ever had, growing linearly with the worker
// count.
func TestParallelStatsGaugesArePeaks(t *testing.T) {
	g := ghz(6)
	opts := Options{R: 16, Seed: 1, SkipEC: true}
	seq := Check(g, g.Clone(), opts)
	if seq.Err != nil || seq.DD.VectorNodes == 0 {
		t.Fatalf("sequential run unusable: err=%v stats=%+v", seq.Err, seq.DD)
	}

	opts.Parallel = 8
	par := Check(g, g.Clone(), opts)
	if par.Err != nil {
		t.Fatalf("parallel run failed: %v", par.Err)
	}
	// Each worker simulates a subset of the 16 stimuli, so no worker's table
	// can outgrow the sequential run's; the eight-way sum would.
	if par.DD.VectorNodes > seq.DD.VectorNodes {
		t.Errorf("parallel VectorNodes gauge %d exceeds sequential %d (summed, not peaked?)",
			par.DD.VectorNodes, seq.DD.VectorNodes)
	}
	if par.DD.MatrixNodes > seq.DD.MatrixNodes {
		t.Errorf("parallel MatrixNodes gauge %d exceeds sequential %d (summed, not peaked?)",
			par.DD.MatrixNodes, seq.DD.MatrixNodes)
	}
	// The counters, by contrast, really do sum: the parallel run performed
	// at least as many node creations in aggregate.
	if par.DD.NodesCreated == 0 || par.DD.NodesCreated < seq.DD.NodesCreated {
		t.Errorf("parallel NodesCreated %d < sequential %d; counters must aggregate",
			par.DD.NodesCreated, seq.DD.NodesCreated)
	}
}
