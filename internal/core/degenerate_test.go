package core

import (
	"errors"
	"math"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/cn"
	"qcec/internal/resource"
)

// infPair builds a pair whose second circuit carries a non-finite rotation
// angle — the degenerate input class that used to crash the checker with an
// untyped panic deep inside the weight table.
func infPair() (*circuit.Circuit, *circuit.Circuit) {
	g1 := circuit.New(2, "clean")
	g1.H(0).CX(0, 1)
	g2 := circuit.New(2, "degenerate")
	g2.H(0).CX(0, 1).RX(math.Inf(1), 0)
	return g1, g2
}

// TestNonFiniteAngleSequential: the degenerate pair must come back as a
// degraded report with a typed *cn.NonFiniteError, never a crash and never
// a definitive verdict.
func TestNonFiniteAngleSequential(t *testing.T) {
	g1, g2 := infPair()
	rep := Check(g1, g2, Options{SkipEC: true})
	if rep.Err == nil {
		t.Fatal("degenerate circuit produced no Report.Err")
	}
	var perr *resource.PanicError
	if !errors.As(rep.Err, &perr) {
		t.Fatalf("Err = %v (%T), want *resource.PanicError", rep.Err, rep.Err)
	}
	var nfe *cn.NonFiniteError
	if !errors.As(rep.Err, &nfe) {
		t.Fatalf("Err = %v, want to unwrap to *cn.NonFiniteError", rep.Err)
	}
	if rep.Verdict != ProbablyEquivalent {
		t.Fatalf("verdict = %v, want %v (no usable answer)", rep.Verdict, ProbablyEquivalent)
	}
	if rep.Exhaustive {
		t.Fatal("failed run claims exhaustive coverage")
	}
}

// TestNonFiniteAngleParallel: the same guarantee through the parallel
// stimulus runner — a worker hitting the degenerate gate must not take the
// process down or poison the verdict.
func TestNonFiniteAngleParallel(t *testing.T) {
	g1, g2 := infPair()
	rep := Check(g1, g2, Options{SkipEC: true, Parallel: 2})
	if rep.Err == nil {
		t.Fatal("degenerate circuit produced no Report.Err")
	}
	var nfe *cn.NonFiniteError
	if !errors.As(rep.Err, &nfe) {
		t.Fatalf("Err = %v, want to unwrap to *cn.NonFiniteError", rep.Err)
	}
	if rep.Verdict == Equivalent || rep.Verdict == NotEquivalent {
		t.Fatalf("degenerate run returned definitive verdict %v", rep.Verdict)
	}
}

// TestNonFiniteValueCarriedInError: the typed error carries the offending
// value for diagnostics.
func TestNonFiniteValueCarriedInError(t *testing.T) {
	g1, g2 := infPair()
	rep := Check(g1, g2, Options{SkipEC: true})
	var nfe *cn.NonFiniteError
	if !errors.As(rep.Err, &nfe) {
		t.Fatalf("Err = %v, want *cn.NonFiniteError", rep.Err)
	}
	re, im := real(nfe.Value), imag(nfe.Value)
	finite := !math.IsInf(re, 0) && !math.IsNaN(re) && !math.IsInf(im, 0) && !math.IsNaN(im)
	if finite {
		t.Fatalf("NonFiniteError carries a finite value: %v", nfe.Value)
	}
}
