package core

import (
	"path/filepath"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/qasm"
)

// loadBenchCircuit is loadSeedCircuit for benchmarks (no *testing.T).
func loadBenchCircuit(b *testing.B, name string) *circuit.Circuit {
	b.Helper()
	prog, err := qasm.ParseFile(filepath.Join("..", "..", "circuits", name))
	if err != nil {
		b.Fatalf("parse %s: %v", name, err)
	}
	return prog.Circuit
}

func benchSim(b *testing.B, disableKernel bool) {
	g := loadBenchCircuit(b, "grover4_cx.qasm")
	gp := g.Clone()
	opts := Options{R: 10, Seed: 1, SkipEC: true, DisableApplyKernel: disableKernel}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Check(g, gp, opts)
		if rep.Verdict != ProbablyEquivalent && rep.Verdict != Equivalent {
			b.Fatalf("unexpected verdict %s", rep.Verdict)
		}
	}
}

// BenchmarkSimKernel measures the simulation stage on the direct
// apply-kernel path (the default).
func BenchmarkSimKernel(b *testing.B) { benchSim(b, false) }

// BenchmarkSimLegacy measures the same workload on the legacy
// GateDD+MulMV path.
func BenchmarkSimLegacy(b *testing.B) { benchSim(b, true) }
