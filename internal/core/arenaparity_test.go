package core

import (
	"path/filepath"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/errinject"
)

// TestArenaCheckParity checks that the arena node storage is invisible to
// end-to-end results across every slot-recycling regime.  For each seed
// circuit, both for an equivalent pair and an error-injected one, a fresh
// package, a pooled package on its second (recycled-slab) job, and a run
// under constant GC pressure — where freed slots are reallocated to new
// nodes mid-simulation many times over — must agree bit-for-bit: same
// verdict, same simulation count, same counterexample, and the exact same
// fidelities (the computation is deterministic; any drift means a stale ref
// read a recycled slot).
func TestArenaCheckParity(t *testing.T) {
	const r = 6
	for _, path := range seedCircuitFiles(t) {
		g := loadSeedCircuit(t, path)
		type pair struct {
			name string
			gp   *circuit.Circuit
		}
		pairs := []pair{{name: filepath.Base(path), gp: g.Clone()}}
		if bad, inj, err := errinject.InjectAny(g, 1); err == nil {
			pairs = append(pairs, pair{name: filepath.Base(path) + "+" + inj.String(), gp: bad})
		}
		for _, pr := range pairs {
			pr := pr
			t.Run(pr.name, func(t *testing.T) {
				base := Options{R: r, Seed: 1, SkipEC: true}
				ref := Check(g, pr.gp, base)
				if ref.Err != nil {
					t.Fatalf("reference run failed: %v", ref.Err)
				}

				// Pooled: the first job grows the arenas, the second runs
				// entirely on recycled slots of the same slabs.
				pool := dd.NewPool(2)
				pooled := base
				pooled.Pool = pool
				if warm := Check(g, pr.gp, pooled); warm.Err != nil {
					t.Fatalf("pool warm-up run failed: %v", warm.Err)
				}
				if st := pool.Stats(); st.Idle == 0 {
					t.Fatalf("warm-up returned nothing to the pool: %+v", st)
				}
				recycled := Check(g, pr.gp, pooled)
				if st := pool.Stats(); st.Reuses == 0 {
					t.Fatalf("second run did not reuse the pooled package: %+v", st)
				}

				// GC pressure: collect after nearly every allocation, so the
				// run continuously frees and reallocates arena slots.
				press := base
				press.GCThreshold = 32
				pressed := Check(g, pr.gp, press)

				for _, alt := range []struct {
					name string
					got  Report
				}{
					{"pooled-recycled", recycled},
					{"gc-pressure", pressed},
				} {
					got := alt.got
					if got.Err != nil {
						t.Errorf("%s: run failed: %v", alt.name, got.Err)
						continue
					}
					if got.Verdict != ref.Verdict {
						t.Errorf("%s: verdict %v, fresh run said %v", alt.name, got.Verdict, ref.Verdict)
					}
					if got.NumSims != ref.NumSims {
						t.Errorf("%s: %d sims, fresh run used %d", alt.name, got.NumSims, ref.NumSims)
					}
					if got.MinFidelity != ref.MinFidelity || got.AvgFidelity != ref.AvgFidelity {
						t.Errorf("%s: fidelities (%g, %g), fresh run (%g, %g) — not bit-identical",
							alt.name, got.MinFidelity, got.AvgFidelity, ref.MinFidelity, ref.AvgFidelity)
					}
					switch {
					case (got.Counterexample == nil) != (ref.Counterexample == nil):
						t.Errorf("%s: counterexample presence mismatch (%v vs %v)",
							alt.name, got.Counterexample, ref.Counterexample)
					case got.Counterexample != nil:
						if got.Counterexample.Input != ref.Counterexample.Input {
							t.Errorf("%s: counterexample |%b>, fresh run found |%b>",
								alt.name, got.Counterexample.Input, ref.Counterexample.Input)
						}
						if got.Counterexample.Fidelity != ref.Counterexample.Fidelity {
							t.Errorf("%s: counterexample fidelity %g, fresh run %g",
								alt.name, got.Counterexample.Fidelity, ref.Counterexample.Fidelity)
						}
					}
				}
			})
		}
	}
}
