// Package core implements the paper's proposed equivalence checking flow
// (Fig. 3): before constructing any complete functionality, simulate both
// circuits on r << 2^n randomly chosen computational basis states and compare
// the resulting states.
//
//   - If any simulation pair differs, the circuits are proven NOT equivalent
//     and the stimulus is a counterexample.  Because design-flow errors
//     typically perturb most columns of the system matrix (Sec. IV-A), this
//     almost always happens on the very first stimulus.
//   - If all r simulations agree, a conventional complete equivalence
//     checking routine (internal/ec) is employed.  If it finishes, its
//     verdict is definitive; if it times out, the flow still reports a
//     high-probability equivalence estimate — strictly more information than
//     the state of the art, which reports nothing on timeout.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/ec"
	"qcec/internal/ecrw"
	"qcec/internal/resource"
	"qcec/internal/zx"
)

// Verdict is the outcome of the proposed flow.
type Verdict int

// The flow's possible outcomes (the three boxes at the bottom of Fig. 3,
// plus the strict/phase distinction).
const (
	// Equivalent: proven equivalent (by the complete routine, or exhaustively
	// by simulating all 2^n basis states).
	Equivalent Verdict = iota
	// EquivalentUpToGlobalPhase: proven equivalent modulo a scalar phase.
	EquivalentUpToGlobalPhase
	// NotEquivalent: proven different; a counterexample stimulus is attached.
	NotEquivalent
	// ProbablyEquivalent: all simulations agreed but the complete routine
	// timed out (or was skipped) — the paper's "Timeout" outcome, now
	// carrying a high-probability estimate instead of no information.
	ProbablyEquivalent
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case EquivalentUpToGlobalPhase:
		return "equivalent up to global phase"
	case NotEquivalent:
		return "not equivalent"
	case ProbablyEquivalent:
		return "probably equivalent (complete check inconclusive)"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// DefaultR is the number of random simulation runs; the paper concludes
// r = 10 "suffices to reason about the operations' equivalence in practice".
const DefaultR = 10

// Options configures the flow.
type Options struct {
	// Context, when non-nil, cancels the flow cooperatively: the stimulus
	// loops (sequential and parallel) poll it between simulations, each
	// worker's DD package polls it inside long operations, and it is passed
	// down to the complete routine (ec.Options.Context).  A cancelled run
	// returns with Report.Cancelled set and an inconclusive verdict.
	Context context.Context
	// R is the number of random basis-state simulations (default DefaultR).
	// If R >= 2^n the flow simulates all basis states, which proves
	// equivalence exhaustively in strict-phase mode.
	R int
	// Seed drives stimulus selection; runs are deterministic per seed.
	Seed int64
	// Stimuli overrides random stimulus selection (used by the ablation
	// experiments); R is ignored when non-nil.
	Stimuli []uint64
	// SkipEC stops after the simulation stage (simulation-only mode); an
	// all-agree outcome then yields ProbablyEquivalent.
	SkipEC bool
	// Strategy, ECTimeout and ECNodeLimit configure the complete routine.
	Strategy    ec.Strategy
	ECTimeout   time.Duration
	ECNodeLimit int
	// RewritePrefilter runs the rewriting-based prover (internal/ecrw,
	// paper ref [16]) before anything else.  It is sound but incomplete:
	// it proves peephole-style recompilations equivalent in microseconds
	// and silently falls through otherwise.  Ignored when OutputPerm is
	// set (the rewriter has no permutation notion).
	RewritePrefilter bool
	// ZXPrefilter runs the ZX-calculus prover (internal/zx) before the
	// simulation stage.  Also sound but incomplete; a positive answer
	// establishes equivalence up to global phase (ZX drops scalars), so
	// the flow reports EquivalentUpToGlobalPhase.  Ignored when OutputPerm
	// is set.
	ZXPrefilter bool
	// Parallel runs the simulation stage with this many workers, each on
	// its own DD package (the DD package is single-threaded).  Verdicts and
	// counterexamples are identical to the sequential run: the first
	// distinguishing stimulus in stimulus order wins.  0 or 1 = sequential.
	Parallel int
	// UpToGlobalPhase compares states and unitaries modulo a scalar phase.
	UpToGlobalPhase bool
	// OutputPerm declares that output wire OutputPerm[q] of G' corresponds
	// to wire q of G (see ec.Options.OutputPerm).
	OutputPerm []int
	// Tolerance is the DD weight tolerance (0 = default).  The simulation
	// stage's state-agreement tolerance is derived from it (see
	// agreementTolerance), so coarsening or tightening the weight tolerance
	// coarsens or tightens the equivalence criterion consistently.
	Tolerance float64
	// DisableGateCache turns off the per-package gate-DD cache in the
	// simulation stage (and, via ec.Options, in the complete routine).  Only
	// the benchmark runner uses this; verdicts are identical either way.
	DisableGateCache bool
	// DisableApplyKernel switches the simulation stage's gate application
	// from the direct kernel (dd.ApplyGateV) back to the legacy
	// GateDD+MulMV reference path, and plumbs the same choice into
	// ec.Options.  Only the benchmark runner and the parity tests use
	// this; verdicts are identical either way.
	DisableApplyKernel bool
	// GCThreshold overrides the DD garbage-collection trigger of the
	// simulation packages (0 = dd.DefaultGCThreshold).  Tests use a tiny
	// threshold to force collections and exercise the gate cache's GC
	// re-rooting.
	GCThreshold int
	// MemSoftLimit / MemHardLimit, in bytes, put the whole flow under a
	// memory watchdog (internal/resource): above the soft limit every
	// simulation worker's DD package is forced to collect and flush caches,
	// above the hard limit the flow's context is cancelled with a
	// *resource.MemoryLimitError cause (Report.Cancelled plus
	// Report.CancelCause).  Ignored when Context already carries a watchdog
	// (the portfolio starts one per race); zero disables the respective
	// bound.
	MemSoftLimit uint64
	MemHardLimit uint64
	// FidelityThreshold enables approximate equivalence checking: a
	// stimulus only counts as a counterexample when its output fidelity
	// |<u|u'>|^2 drops below the threshold (e.g. 0.99 when verifying a
	// compiler that deliberately prunes small rotations).  0 disables the
	// feature (exact comparison).  When enabled, the complete routine is
	// skipped — approximate equivalence has no exact DD verdict — and an
	// all-agree outcome reports ProbablyEquivalent with the observed
	// fidelity statistics in the report.
	FidelityThreshold float64
	// Pool, when non-nil, supplies warm DD packages for the simulation
	// workers and the complete routine instead of building fresh ones
	// (dd.New) per check.  A pooled package keeps its interned weights,
	// grown compute tables and gate-DD cache across jobs, which is the
	// serving layer's amortization lever; packages are returned reset on
	// clean completion and dropped after genuine panics (their internal
	// state is no longer trustworthy).  Verdicts are identical either way.
	Pool *dd.Pool
}

// Counterexample records a distinguishing stimulus found by simulation.
type Counterexample struct {
	// Input is the basis state |i> on which the circuits differ.
	Input uint64
	// Overlap is <u_i | u'_i>; equivalence requires 1 (Sec. IV-A).
	Overlap complex128
	// Fidelity is |Overlap|^2.
	Fidelity float64
	// StateG and StateGp render the two differing output states (largest
	// amplitudes first, truncated) for reports and CLI output.
	StateG  string
	StateGp string
}

// Report is the full outcome of the flow.
type Report struct {
	Verdict Verdict
	// DecidedBy names the stage that produced a definitive verdict —
	// "rewrite", "zx", "sim", or "ec:<strategy>" (e.g. "ec:proportional",
	// "ec:stabilizer") — and is empty while the verdict is inconclusive.
	DecidedBy      string
	NumSims        int           // simulation runs performed
	SimTime        time.Duration // paper column t_sim
	Counterexample *Counterexample
	Exhaustive     bool         // simulation covered all 2^n basis states
	EC             *ec.Result   // complete-routine outcome (nil if not run)
	Rewriting      *ecrw.Result // rewriting prefilter outcome (nil if not run)
	ZX             *zx.Result   // ZX prefilter outcome (nil if not run)
	// MinFidelity and AvgFidelity summarize the per-stimulus output
	// fidelities observed by the simulation stage (1 when no simulations
	// ran).  Under FidelityThreshold these quantify how approximate the
	// pair is.
	MinFidelity float64
	AvgFidelity float64
	// Cancelled reports that Options.Context was cancelled before the flow
	// reached a definitive verdict; the verdict is then inconclusive
	// (ProbablyEquivalent at best) regardless of how many stimuli agreed.
	Cancelled bool
	// CancelCause, set alongside Cancelled, is the context's cancellation
	// cause — a *resource.MemoryLimitError when the memory watchdog's hard
	// limit stopped the run, context.Canceled/DeadlineExceeded otherwise.
	CancelCause error
	// DD aggregates the simulation stage's DD-package statistics (gate-cache
	// and compute-table hit rates, unique-table activity, GC reclaims),
	// summed across parallel workers.  The complete routine's own statistics
	// live in EC.DD.
	DD dd.Stats
	// Err is set when the flow failed rather than finished: a
	// *StimulusRangeError from invalid caller-supplied Stimuli (no
	// simulation ran), a *resource.PanicError recovered from a simulation
	// worker (degenerate input such as non-finite gate parameters, or
	// injected chaos), or the complete routine's CauseError.  The verdict is
	// then ProbablyEquivalent (inconclusive) unless a healthy worker already
	// found a counterexample.  Callers must treat Err as "no usable
	// equivalence answer".
	Err error
	// Mem snapshots the memory watchdog's counters when this flow started
	// its own watchdog (MemSoftLimit/MemHardLimit set and no watchdog on
	// the context); nil otherwise.
	Mem       *resource.Stats
	TotalTime time.Duration
}

// ECTime returns the complete-routine runtime (paper column t_ec), zero if
// the routine never ran.
func (r Report) ECTime() time.Duration {
	if r.EC == nil {
		return 0
	}
	return r.EC.Runtime
}

func invertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// Check runs the proposed flow on the circuit pair.
func Check(g1, g2 *circuit.Circuit, opts Options) Report {
	// Put the flow under a memory watchdog when limits are configured and
	// the caller has not already provided one through the context (the
	// portfolio runs one watchdog per race).
	w := resource.FromContext(opts.Context)
	ownWatchdog := false
	if w == nil && (opts.MemSoftLimit > 0 || opts.MemHardLimit > 0) {
		w, opts.Context = resource.Start(opts.Context, resource.Config{
			SoftLimit: opts.MemSoftLimit,
			HardLimit: opts.MemHardLimit,
		})
		ownWatchdog = true
	}
	report := check(g1, g2, opts)
	if report.Cancelled && report.CancelCause == nil {
		if ctx := opts.Context; ctx != nil {
			report.CancelCause = context.Cause(ctx)
		}
	}
	if ownWatchdog {
		w.Stop()
		st := w.Stats()
		report.Mem = &st
	}
	return report
}

// check is the flow body; Check wraps it with watchdog setup/teardown.
func check(g1, g2 *circuit.Circuit, opts Options) Report {
	start := time.Now()
	report := Report{}
	if g1.N != g2.N {
		report.Verdict = NotEquivalent
		report.TotalTime = time.Since(start)
		return report
	}

	if opts.RewritePrefilter && opts.OutputPerm == nil {
		rw := ecrw.Check(g1, g2)
		report.Rewriting = &rw
		if rw.Verdict == ecrw.Equivalent {
			report.Verdict = Equivalent
			report.DecidedBy = "rewrite"
			report.TotalTime = time.Since(start)
			return report
		}
	}
	if opts.ZXPrefilter && opts.OutputPerm == nil {
		zr, err := zx.CheckCtx(opts.Context, g1, g2)
		if err == nil {
			report.ZX = &zr
			if zr.Verdict == zx.EquivalentUpToPhase {
				report.Verdict = EquivalentUpToGlobalPhase
				report.DecidedBy = "zx"
				report.TotalTime = time.Since(start)
				return report
			}
		}
	}

	stimuli, err := chooseStimuli(g1.N, opts)
	if err != nil {
		// Invalid caller-supplied stimuli: fail the options check up front
		// instead of letting dd.BasisState panic deep inside a worker.
		report.Err = err
		report.Verdict = ProbablyEquivalent
		report.MinFidelity = 1
		report.AvgFidelity = 1
		report.TotalTime = time.Since(start)
		return report
	}
	report.Exhaustive = g1.N < 63 && uint64(len(stimuli)) == uint64(1)<<uint(g1.N)

	simStart := time.Now()
	var numSims int
	var ce *Counterexample
	var stats fidStats
	var simErr error
	if opts.Parallel > 1 && len(stimuli) > 1 {
		numSims, ce, stats, report.DD, simErr = runStimuliParallel(g1, g2, stimuli, opts)
	} else {
		numSims, ce, stats, report.DD, simErr = runStimuliSequential(g1, g2, stimuli, opts)
	}
	report.NumSims = numSims
	report.SimTime = time.Since(simStart)
	report.MinFidelity = stats.min
	report.AvgFidelity = stats.avg()
	if ce != nil {
		// A concrete distinguishing stimulus is definitive even if another
		// worker crashed: the counterexample stands on its own, so the crash
		// only cost coverage that no longer matters.
		report.Verdict = NotEquivalent
		report.DecidedBy = "sim"
		report.Counterexample = ce
		report.TotalTime = time.Since(start)
		return report
	}
	if simErr != nil {
		// A worker died mid-stage, so the surviving agreement does not cover
		// all chosen stimuli — an exhaustive-proof or all-agree claim would
		// be unsound, and the complete routine would hit the same fault.
		// Surface the typed error and stop with an inconclusive verdict.
		report.Err = simErr
		report.Verdict = ProbablyEquivalent
		report.Exhaustive = false
		report.TotalTime = time.Since(start)
		return report
	}
	if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
		// Cancelled before the stimuli were exhausted: the agreement seen so
		// far is not the full high-probability estimate, and running the
		// complete routine would be pointless (it would observe the same
		// cancelled context immediately).
		report.Cancelled = true
		report.Verdict = ProbablyEquivalent
		report.TotalTime = time.Since(start)
		return report
	}

	if opts.FidelityThreshold > 0 {
		// Approximate mode: the complete routine has no approximate verdict;
		// the fidelity statistics in the report are the result.
		report.Verdict = ProbablyEquivalent
		report.TotalTime = time.Since(start)
		return report
	}

	if report.Exhaustive && !opts.UpToGlobalPhase {
		// <u_i|u'_i> = 1 for every basis state means every column pair is
		// identical, i.e. U = U' — a complete proof (paper Sec. III-B).
		report.Verdict = Equivalent
		report.DecidedBy = "sim"
		report.TotalTime = time.Since(start)
		return report
	}

	if opts.SkipEC {
		report.Verdict = ProbablyEquivalent
		report.TotalTime = time.Since(start)
		return report
	}

	res := ec.Check(g1, g2, ec.Options{
		Strategy:           opts.Strategy,
		Context:            opts.Context,
		Timeout:            opts.ECTimeout,
		NodeLimit:          opts.ECNodeLimit,
		UpToGlobalPhase:    opts.UpToGlobalPhase,
		OutputPerm:         opts.OutputPerm,
		Tolerance:          opts.Tolerance,
		DisableGateCache:   opts.DisableGateCache,
		DisableApplyKernel: opts.DisableApplyKernel,
		Pool:               opts.Pool,
	})
	report.EC = &res
	if res.Verdict != ec.TimedOut {
		report.DecidedBy = "ec:" + res.Strategy.String()
	}
	switch res.Verdict {
	case ec.Equivalent:
		report.Verdict = Equivalent
	case ec.EquivalentUpToGlobalPhase:
		report.Verdict = EquivalentUpToGlobalPhase
	case ec.NotEquivalent:
		// Possible in principle (footnote 4 of the paper) though never
		// observed there: simulation missed the difference but the complete
		// routine found it.
		report.Verdict = NotEquivalent
		if res.Counterexample != nil {
			report.Counterexample = &Counterexample{Input: *res.Counterexample}
		}
	case ec.TimedOut:
		report.Verdict = ProbablyEquivalent
		switch res.Cause {
		case ec.CauseCancelled:
			report.Cancelled = true
		case ec.CauseMemLimit:
			report.Cancelled = true
			report.CancelCause = res.Err
		case ec.CauseError:
			report.Err = res.Err
		}
	}
	report.TotalTime = time.Since(start)
	return report
}

// agreementTolerance derives the state-agreement tolerance of statesAgree
// from the configured DD weight tolerance: weight round-off compounds over
// the gate sequence, so the overlap bound sits four orders of magnitude
// above the interning tolerance.  At the default weight tolerance of 1e-10
// this reproduces the historical 1e-6 agreement bound exactly; it is capped
// at 1e-3 so a coarse custom tolerance can never silently accept grossly
// different states.
func agreementTolerance(ddTol float64) float64 {
	tol := ddTol * 1e4
	if tol > 1e-3 {
		tol = 1e-3
	}
	return tol
}

func statesAgree(overlap complex128, upToPhase bool, tol float64) bool {
	if upToPhase {
		re, im := real(overlap), imag(overlap)
		return re*re+im*im > 1-tol
	}
	return math.Abs(real(overlap)-1) < tol && math.Abs(imag(overlap)) < tol
}

// StimulusRangeError reports a caller-supplied stimulus that does not fit
// the circuits' register: basis state indices on n qubits must be below 2^n.
type StimulusRangeError struct {
	Index    int    // position in Options.Stimuli
	Stimulus uint64 // the offending basis-state index
	Qubits   int    // register size of the circuit pair
}

// Error formats the range violation.
func (e *StimulusRangeError) Error() string {
	return fmt.Sprintf("core: stimulus %d (index %d) out of range for %d qubits",
		e.Stimulus, e.Index, e.Qubits)
}

// validateStimuli checks caller-supplied basis-state indices against the
// n-qubit mask, so an out-of-range stimulus surfaces as a typed error here
// instead of a panic deep inside dd.BasisState on a worker goroutine.
func validateStimuli(n int, stimuli []uint64) error {
	if n >= 64 {
		return nil // every uint64 is a valid index
	}
	limit := uint64(1) << uint(n)
	for i, s := range stimuli {
		if s >= limit {
			return &StimulusRangeError{Index: i, Stimulus: s, Qubits: n}
		}
	}
	return nil
}

// chooseStimuli picks the basis states to simulate: the caller's explicit
// list (validated against the register size), all 2^n states when r covers
// them, or r distinct random states.
func chooseStimuli(n int, opts Options) ([]uint64, error) {
	if opts.Stimuli != nil {
		if err := validateStimuli(n, opts.Stimuli); err != nil {
			return nil, err
		}
		return opts.Stimuli, nil
	}
	r := opts.R
	if r <= 0 {
		r = DefaultR
	}
	if n < 63 {
		total := uint64(1) << uint(n)
		if uint64(r) >= total {
			all := make([]uint64, total)
			for i := range all {
				all[i] = uint64(i)
			}
			return all, nil
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var mask uint64
	if n >= 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << uint(n)) - 1
	}
	seen := make(map[uint64]bool, r)
	out := make([]uint64, 0, r)
	for len(out) < r {
		i := rng.Uint64() & mask
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	return out, nil
}
