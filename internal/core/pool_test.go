package core

import (
	"math/rand"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/dd"
)

// TestPooledParity runs the same checks with and without a warm package pool
// and requires identical verdicts, counterexamples and simulation counts —
// pooling is an amortization, never a behaviour change.
func TestPooledParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g1 := randomCircuit(rng, 4, 30)
	cases := map[string]*circuit.Circuit{
		"equivalent": g1.Clone(),
		"broken":     g1.Clone().X(2),
	}

	pool := dd.NewPool(4)
	for name, g2 := range cases {
		fresh := Check(g1, g2, Options{Seed: 9, R: 4})
		pooled := Check(g1, g2, Options{Seed: 9, R: 4, Pool: pool})
		if fresh.Verdict != pooled.Verdict {
			t.Errorf("%s: verdict %v fresh vs %v pooled", name, fresh.Verdict, pooled.Verdict)
		}
		if fresh.NumSims != pooled.NumSims {
			t.Errorf("%s: NumSims %d fresh vs %d pooled", name, fresh.NumSims, pooled.NumSims)
		}
		if (fresh.Counterexample == nil) != (pooled.Counterexample == nil) {
			t.Errorf("%s: counterexample presence differs", name)
		}
		if fresh.Counterexample != nil && pooled.Counterexample != nil &&
			fresh.Counterexample.Input != pooled.Counterexample.Input {
			t.Errorf("%s: counterexample input %d fresh vs %d pooled",
				name, fresh.Counterexample.Input, pooled.Counterexample.Input)
		}
	}

	st := pool.Stats()
	if st.Gets == 0 || st.Puts == 0 {
		t.Fatalf("pool was not exercised: %+v", st)
	}
	if st.Reuses == 0 {
		t.Errorf("no package was reused across the checks: %+v", st)
	}
	if st.Gets != st.Puts+st.Forgotten {
		t.Errorf("package leak: %d gets vs %d puts + %d forgotten", st.Gets, st.Puts, st.Forgotten)
	}

	// A second pooled run of the same pair must reuse warm packages for every
	// worker it spawns.
	before := pool.Stats()
	rep := Check(g1, cases["equivalent"], Options{Seed: 9, R: 4, Pool: pool})
	if rep.Verdict != Equivalent {
		t.Fatalf("warm rerun verdict = %v", rep.Verdict)
	}
	after := pool.Stats()
	if gets, reuses := after.Gets-before.Gets, after.Reuses-before.Reuses; reuses != gets {
		t.Errorf("warm rerun: %d of %d gets were reuses", reuses, gets)
	}
}

// TestPooledParityParallel covers the multi-worker stimulus loop, where each
// worker draws its own package from the shared pool.
func TestPooledParityParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g1 := randomCircuit(rng, 5, 40)
	g2 := g1.Clone().X(1)

	pool := dd.NewPool(4)
	fresh := Check(g1, g2, Options{Seed: 3, R: 8, Parallel: 4})
	pooled := Check(g1, g2, Options{Seed: 3, R: 8, Parallel: 4, Pool: pool})
	if fresh.Verdict != pooled.Verdict {
		t.Errorf("verdict %v fresh vs %v pooled", fresh.Verdict, pooled.Verdict)
	}
	if (fresh.Counterexample == nil) != (pooled.Counterexample == nil) {
		t.Fatalf("counterexample presence differs")
	}
	if fresh.Counterexample != nil &&
		fresh.Counterexample.Input != pooled.Counterexample.Input {
		t.Errorf("counterexample input %d fresh vs %d pooled",
			fresh.Counterexample.Input, pooled.Counterexample.Input)
	}
	if st := pool.Stats(); st.Gets != st.Puts+st.Forgotten {
		t.Errorf("package leak: %+v", st)
	}
}
