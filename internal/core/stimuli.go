package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/resource"
	"qcec/internal/sim"
)

// simRunner bundles the per-worker simulation state: one DD package, one
// simulator, and the pre-built un-permutation matrix if the pair declares an
// output permutation.
type simRunner struct {
	p         *dd.Package
	s         *sim.Simulator
	unperm    dd.MEdge
	havePerm  bool
	upToPhase bool
	agreeTol  float64 // state-agreement tolerance, derived from the DD tolerance
	threshold float64 // approximate mode when > 0

	// removeGauge unregisters this runner's occupancy gauge from the memory
	// watchdog; nil when the flow runs without one.
	removeGauge func()

	// pool, when non-nil, is where the package came from and where release
	// returns it.
	pool *dd.Pool
}

func newSimRunner(n int, opts Options) *simRunner {
	tol := opts.Tolerance
	if tol == 0 {
		tol = 1e-10
	}
	var p *dd.Package
	if opts.Pool != nil {
		// A pooled package arrives reset (Pool.Put resets before re-listing),
		// so the per-job configuration below starts from the same defaults a
		// fresh package would.
		p = opts.Pool.Get(n, tol)
	} else {
		p = dd.New(n, tol)
	}
	r := &simRunner{
		p:         p,
		pool:      opts.Pool,
		havePerm:  opts.OutputPerm != nil,
		upToPhase: opts.UpToGlobalPhase,
		agreeTol:  agreementTolerance(tol),
		threshold: opts.FidelityThreshold,
	}
	if opts.DisableGateCache {
		r.p.SetGateCacheEnabled(false)
	}
	if opts.GCThreshold > 0 {
		r.p.SetGCThreshold(opts.GCThreshold)
	}
	if ctx := opts.Context; ctx != nil {
		// Cancellation must reach inside a single large simulation, not just
		// between stimuli; the resulting *dd.LimitError panic is recovered by
		// the stimulus loops below.
		r.p.SetCancel(func() bool { return ctx.Err() != nil })
	}
	if w := resource.FromContext(opts.Context); w != nil {
		// Under a memory watchdog: observe pressure epochs at this package's
		// GC safe points and report its occupancy to the sampler.
		r.p.SetPressure(w.Epoch)
		r.removeGauge = w.AddGauge(r.p.OccupancyGauge())
	}
	r.s = sim.NewOn(r.p)
	r.s.Legacy = opts.DisableApplyKernel
	if r.havePerm {
		r.unperm = sim.PermutationDD(r.p, invertPerm(opts.OutputPerm))
	}
	return r
}

// close unregisters the runner from the watchdog (if any) and hands the
// package back to the pool; the package must not be sampled after its owning
// goroutine exits.  *errp distinguishes the exit path: a runner that died on
// a genuine panic (recoverWorker stored a *resource.PanicError) must not
// recycle its package — injected chaos may have corrupted internal state the
// reset cannot undo (e.g. a non-finite weight interned into the shared
// table).  Absorbed cancellations (err == nil) recycle normally.  Callers
// must defer close BEFORE deferring recoverWorker so the error is already
// recorded when close runs, and BEFORE the Snapshot defer so statistics are
// read before the reset zeroes them.
func (r *simRunner) close(errp *error) {
	if r.removeGauge != nil {
		r.removeGauge()
	}
	if r.pool == nil {
		return
	}
	if errp != nil && *errp != nil {
		r.pool.Forget()
		return
	}
	r.pool.Put(r.p)
}

// sharedProgs holds the one read-only compilation of the circuit pair that
// every stimulus worker drives.  The programs are immutable after
// prepareShared returns; each worker binds them to its private package
// (sim.Simulator keeps the binding per package), so nothing here is ever
// written concurrently.  Zero-valued programs select the legacy
// circuit-walking path.
type sharedProgs struct {
	g1, g2 *sim.Program
}

// prepareShared compiles the pair once for all workers.  The legacy path
// (DisableApplyKernel) builds matrix DDs per gate and has no program form.
func prepareShared(g1, g2 *circuit.Circuit, opts Options) sharedProgs {
	if opts.DisableApplyKernel {
		return sharedProgs{}
	}
	return sharedProgs{g1: sim.Prepare(g1), g2: sim.Prepare(g2)}
}

// compare simulates both circuits on |input>, returning the output fidelity
// and a counterexample if the outputs disagree (under the exact or the
// approximate criterion), nil otherwise.
func (r *simRunner) compare(g1, g2 *circuit.Circuit, progs sharedProgs, input uint64) (*Counterexample, float64) {
	// Build the stimulus once and reuse it for both runs.  It must be pinned
	// across the first run's garbage collections: the second run starts from
	// the same edge, so its nodes have to stay interned until then.
	in := r.p.BasisState(input)
	var u, v dd.VEdge
	if progs.g1 != nil {
		u = r.s.RunProgramWithPins(progs.g1, in, []dd.VEdge{in})
		v = r.s.RunProgramWithPins(progs.g2, in, []dd.VEdge{u})
	} else {
		u = r.s.RunFromWithPins(g1, in, []dd.VEdge{in})
		v = r.s.RunFromWithPins(g2, in, []dd.VEdge{u})
	}
	if r.havePerm {
		v = r.p.MulMV(r.unperm, v)
	}
	overlap := r.p.InnerProduct(u, v)
	re, im := real(overlap), imag(overlap)
	fidelity := re*re + im*im
	agree := statesAgree(overlap, r.upToPhase, r.agreeTol)
	if r.threshold > 0 {
		agree = fidelity >= r.threshold
	}
	if agree {
		return nil, fidelity
	}
	return &Counterexample{
		Input:    input,
		Overlap:  overlap,
		Fidelity: fidelity,
		StateG:   r.p.FormatState(u, 4),
		StateGp:  r.p.FormatState(v, 4),
	}, fidelity
}

// gcBetween drops everything but the permutation matrix between stimuli.
func (r *simRunner) gcBetween() {
	var roots []dd.MEdge
	if r.havePerm {
		roots = append(roots, r.unperm)
	}
	r.p.MaybeGC(nil, roots)
}

// fidStats accumulates per-stimulus output fidelities.
type fidStats struct {
	min   float64
	sum   float64
	count int
}

func newFidStats() fidStats { return fidStats{min: 1} }

func (f *fidStats) add(fid float64) {
	if fid < f.min {
		f.min = fid
	}
	f.sum += fid
	f.count++
}

func (f fidStats) avg() float64 {
	if f.count == 0 {
		return 1
	}
	return f.sum / float64(f.count)
}

// cancelled reports whether the flow's context (if any) has been cancelled.
func cancelled(opts Options) bool {
	return opts.Context != nil && opts.Context.Err() != nil
}

// recoverWorker isolates a simulation worker: the *dd.LimitError panic raised
// by the SetCancel hook mid-simulation is absorbed silently (limit errors can
// only be cancellations here — the stimulus loops install no node limit or
// deadline), and any other panic is converted into a typed
// *resource.PanicError stored in *errp instead of crashing the process.  Must
// be installed directly with defer so recover() sees the panic.
func recoverWorker(op string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(*dd.LimitError); ok {
		return
	}
	*errp = resource.NewPanicError(op, r)
}

// evalHook and failHook, when non-nil, observe the parallel runner: evalHook
// sees every stimulus index about to be evaluated, failHook every index
// recorded as a failure.  Test-only; they let the fast-forward regression
// test schedule workers deterministically and assert that nothing past the
// first failure is simulated.
var (
	evalHook func(i int)
	failHook func(i int)
)

// runStimuliSequential is the paper's loop: one stimulus at a time, stopping
// at the first counterexample.  A non-nil err means the runner panicked mid-
// stage (degenerate input or injected chaos); the other returns then reflect
// the progress made before the fault.
func runStimuliSequential(g1, g2 *circuit.Circuit, stimuli []uint64, opts Options) (n int, ce *Counterexample, stats fidStats, ddStats dd.Stats, err error) {
	r := newSimRunner(g1.N, opts)
	defer r.close(&err)
	stats = newFidStats()
	defer func() { ddStats = r.p.Snapshot() }()
	// completed counts fully compared stimuli, and the deferred assignment —
	// not the loop body — publishes it into n.  When a cancellation is
	// absorbed mid-compare (recoverWorker swallows the *dd.LimitError panic
	// raised by the SetCancel hook), NumSims therefore reports only the
	// stimuli whose comparison actually finished, never the in-flight one.
	completed := 0
	defer func() { n = completed }()
	defer recoverWorker("core.sim", &err)
	progs := prepareShared(g1, g2, opts)
	for _, input := range stimuli {
		if cancelled(opts) {
			return completed, nil, stats, ddStats, nil
		}
		ce, fid := r.compare(g1, g2, progs, input)
		stats.add(fid)
		completed++
		if ce != nil {
			return completed, ce, stats, ddStats, nil
		}
		r.gcBetween()
	}
	return completed, nil, stats, ddStats, nil
}

// runStimuliParallel distributes the stimuli round-robin over
// opts.Parallel workers, each with a private DD package.  The circuit pair
// is compiled once (prepareShared) and the read-only programs are driven by
// every worker, so per-worker setup is just a package and a binding.  The
// result is bit-identical to the sequential run: the first distinguishing
// stimulus in stimulus order is reported, and every stimulus before it has
// been checked.  Workers fast-forward past indices beyond the current best
// counterexample, so the early-exit behaviour parallelizes too.
func runStimuliParallel(g1, g2 *circuit.Circuit, stimuli []uint64, opts Options) (int, *Counterexample, fidStats, dd.Stats, error) {
	workers := opts.Parallel
	if workers > len(stimuli) {
		workers = len(stimuli)
	}
	progs := prepareShared(g1, g2, opts)
	ces := make([]*Counterexample, len(stimuli))
	fids := make([]float64, len(stimuli))
	evaluated := make([]bool, len(stimuli))
	workerDD := make([]dd.Stats, workers)
	workerErr := make([]error, workers)
	var firstFail atomic.Int64
	firstFail.Store(int64(len(stimuli)))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := newSimRunner(g1.N, opts)
			defer r.close(&workerErr[w])
			defer func() { workerDD[w] = r.p.Snapshot() }()
			defer recoverWorker(fmt.Sprintf("core.sim worker %d", w), &workerErr[w])
			for i := w; i < len(stimuli); i += workers {
				if cancelled(opts) {
					return
				}
				if int64(i) >= firstFail.Load() {
					return // this or an earlier stimulus already failed
				}
				if evalHook != nil {
					evalHook(i)
				}
				ce, fid := r.compare(g1, g2, progs, stimuli[i])
				fids[i] = fid
				evaluated[i] = true
				if ce != nil {
					ces[i] = ce
					// Lower firstFail monotonically.
					for {
						cur := firstFail.Load()
						if int64(i) >= cur || firstFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					if failHook != nil {
						failHook(i)
					}
					return
				}
				r.gcBetween()
			}
		}(w)
	}
	wg.Wait()

	var ddStats dd.Stats
	for _, s := range workerDD {
		ddStats.Add(s)
	}
	var err error
	for _, e := range workerErr {
		if e != nil {
			err = e
			break
		}
	}
	stats := newFidStats()
	if idx := firstFail.Load(); idx < int64(len(stimuli)) {
		// Deterministic statistics: only the sequential prefix counts.  The
		// reported simulation count is the number of stimuli actually
		// evaluated, not idx+1 — a crashed worker may have left indices
		// before the counterexample unevaluated, and NumSims must never
		// overstate the work done (harness CSVs and reports trust it).
		for i := int64(0); i <= idx; i++ {
			if evaluated[i] {
				stats.add(fids[i])
			}
		}
		n := stats.count
		if gap := int(idx) + 1 - n; gap > 0 && err != nil {
			err = fmt.Errorf("%w (%d of the %d stimuli before the counterexample left unevaluated)",
				err, gap, int(idx)+1)
		}
		return n, ces[idx], stats, ddStats, err
	}
	n := 0
	for i := range fids {
		if evaluated[i] {
			n++
			stats.add(fids[i])
		}
	}
	return n, nil, stats, ddStats, err
}
