package core

import (
	"path/filepath"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/errinject"
)

// TestApplyKernelParity checks that the apply kernel is invisible to
// end-to-end results: on every seed circuit, both for an equivalent pair and
// an error-injected one, the kernel run, the legacy GateDD+MulMV run, and a
// kernel run under constant garbage-collection pressure (which forces the
// gate-id map resets and prepared-gate re-registration) must produce
// identical verdicts, simulation counts, and counterexamples.
func TestApplyKernelParity(t *testing.T) {
	const r = 6
	for _, path := range seedCircuitFiles(t) {
		g := loadSeedCircuit(t, path)
		type pair struct {
			name string
			gp   *circuit.Circuit
		}
		pairs := []pair{{name: filepath.Base(path), gp: g.Clone()}}
		if bad, inj, err := errinject.InjectAny(g, 1); err == nil {
			pairs = append(pairs, pair{name: filepath.Base(path) + "+" + inj.String(), gp: bad})
		}
		for _, pr := range pairs {
			pr := pr
			t.Run(pr.name, func(t *testing.T) {
				base := Options{R: r, Seed: 1, SkipEC: true}

				ref := Check(g, pr.gp, base)

				legacy := base
				legacy.DisableApplyKernel = true

				gcPressure := base
				// Collect after nearly every node allocation so the apply
				// compute tables are flushed and the gate-id map reset
				// (bumping the epoch that re-registers prepared gates)
				// mid-simulation many times over.
				gcPressure.GCThreshold = 32

				for _, alt := range []struct {
					name string
					opts Options
				}{
					{"legacy", legacy},
					{"kernel-gc-pressure", gcPressure},
				} {
					got := Check(g, pr.gp, alt.opts)
					if got.Verdict != ref.Verdict {
						t.Errorf("%s: verdict %v, kernel run said %v", alt.name, got.Verdict, ref.Verdict)
					}
					if got.NumSims != ref.NumSims {
						t.Errorf("%s: %d sims, kernel run used %d", alt.name, got.NumSims, ref.NumSims)
					}
					switch {
					case (got.Counterexample == nil) != (ref.Counterexample == nil):
						t.Errorf("%s: counterexample presence mismatch (%v vs %v)",
							alt.name, got.Counterexample, ref.Counterexample)
					case got.Counterexample != nil && got.Counterexample.Input != ref.Counterexample.Input:
						t.Errorf("%s: counterexample |%b>, kernel run found |%b>",
							alt.name, got.Counterexample.Input, ref.Counterexample.Input)
					}
				}
			})
		}
	}
}
