package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/errinject"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

// loadSeedCircuit parses one of the repo's seed benchmark circuits.
func loadSeedCircuit(t *testing.T, path string) *circuit.Circuit {
	t.Helper()
	switch {
	case strings.HasSuffix(path, ".real"):
		f, err := revlib.ParseFile(path)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		return f.Circuit
	case strings.HasSuffix(path, ".qasm"):
		prog, err := qasm.ParseFile(path)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		return prog.Circuit
	default:
		t.Fatalf("unsupported circuit format %q", path)
		return nil
	}
}

func seedCircuitFiles(t *testing.T) []string {
	t.Helper()
	dir := filepath.Join("..", "..", "circuits")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read seed circuits: %v", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".qasm") || strings.HasSuffix(e.Name(), ".real") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatal("no seed circuits found")
	}
	return files
}

// TestGateCacheParity checks that the gate-DD cache is invisible to results:
// on every seed circuit, both for an equivalent pair and an error-injected
// one, the cached run, the uncached run, and a cached run under constant
// garbage-collection pressure (which forces the cache's re-root/flush paths)
// must produce identical verdicts, simulation counts, and counterexamples.
func TestGateCacheParity(t *testing.T) {
	const r = 6
	for _, path := range seedCircuitFiles(t) {
		g := loadSeedCircuit(t, path)
		type pair struct {
			name string
			gp   *circuit.Circuit
		}
		pairs := []pair{{name: filepath.Base(path), gp: g.Clone()}}
		if bad, inj, err := errinject.InjectAny(g, 1); err == nil {
			pairs = append(pairs, pair{name: filepath.Base(path) + "+" + inj.String(), gp: bad})
		}
		for _, pr := range pairs {
			pr := pr
			t.Run(pr.name, func(t *testing.T) {
				base := Options{R: r, Seed: 1, SkipEC: true}

				cached := base
				ref := Check(g, pr.gp, cached)

				uncached := base
				uncached.DisableGateCache = true

				gcPressure := base
				// Collect after nearly every node allocation so the cache is
				// re-rooted (and, with its limit forced down, flushed)
				// mid-simulation many times over.
				gcPressure.GCThreshold = 32

				for _, alt := range []struct {
					name string
					opts Options
				}{
					{"uncached", uncached},
					{"gc-pressure", gcPressure},
				} {
					got := Check(g, pr.gp, alt.opts)
					if got.Verdict != ref.Verdict {
						t.Errorf("%s: verdict %v, cached run said %v", alt.name, got.Verdict, ref.Verdict)
					}
					if got.NumSims != ref.NumSims {
						t.Errorf("%s: %d sims, cached run used %d", alt.name, got.NumSims, ref.NumSims)
					}
					switch {
					case (got.Counterexample == nil) != (ref.Counterexample == nil):
						t.Errorf("%s: counterexample presence mismatch (%v vs %v)",
							alt.name, got.Counterexample, ref.Counterexample)
					case got.Counterexample != nil && got.Counterexample.Input != ref.Counterexample.Input:
						t.Errorf("%s: counterexample |%b>, cached run found |%b>",
							alt.name, got.Counterexample.Input, ref.Counterexample.Input)
					}
				}
			})
		}
	}
}
