package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

func ghz(n int) *circuit.Circuit {
	c := circuit.New(n, "ghz")
	c.H(0)
	for i := 1; i < n; i++ {
		c.CX(i-1, i)
	}
	return c
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "random")
	for i := 0; i < gates; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.S(rng.Intn(n))
		case 3:
			c.RZ(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 4:
			c.X(rng.Intn(n))
		case 5:
			a := rng.Intn(n)
			c.CX(a, (a+1+rng.Intn(n-1))%n)
		}
	}
	return c
}

func TestEquivalentPairFullFlow(t *testing.T) {
	g := ghz(5)
	g2 := g.Clone()
	g2.X(2).X(2) // identity pair appended
	rep := Check(g, g2, Options{Seed: 1})
	if rep.Verdict != Equivalent {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	if rep.EC == nil {
		t.Fatal("complete routine was not invoked")
	}
	if rep.NumSims == 0 {
		t.Fatal("no simulations recorded")
	}
}

func TestErrorDetectedBySimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g1 := randomCircuit(rng, 6, 60)
	g2 := g1.Clone()
	g2.Gates[30] = circuit.Gate{Kind: circuit.H, Target: g2.Gates[30].Target, Target2: -1}
	rep := Check(g1, g2, Options{Seed: 3})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	if rep.EC != nil {
		t.Error("complete routine ran although simulation already decided")
	}
	if rep.Counterexample == nil {
		t.Fatal("no counterexample recorded")
	}
	if rep.Counterexample.Fidelity > 1-1e-6 {
		t.Errorf("counterexample fidelity suspiciously high: %g", rep.Counterexample.Fidelity)
	}
	// The paper's headline: a single simulation usually suffices.
	if rep.NumSims != 1 {
		t.Logf("note: needed %d sims (usually 1)", rep.NumSims)
	}
}

func TestSingleQubitErrorDetectedInOneSim(t *testing.T) {
	// A single-qubit difference affects all columns (Example 7), so the
	// first stimulus must find it regardless of seed.
	g1 := ghz(6)
	g2 := ghz(6)
	g2.T(3) // extra T gate
	for seed := int64(0); seed < 20; seed++ {
		rep := Check(g1, g2, Options{Seed: seed})
		if rep.Verdict != NotEquivalent {
			t.Fatalf("seed %d: verdict = %v", seed, rep.Verdict)
		}
		if rep.NumSims != 1 {
			t.Fatalf("seed %d: needed %d sims for a single-qubit error", seed, rep.NumSims)
		}
	}
}

func TestTimeoutYieldsProbablyEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g1 := randomCircuit(rng, 12, 300)
	g2 := g1.Clone()
	rep := Check(g1, g2, Options{Seed: 7, R: 3, ECTimeout: time.Millisecond})
	if rep.Verdict != ProbablyEquivalent && rep.Verdict != Equivalent {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	if rep.Verdict == ProbablyEquivalent {
		if rep.EC == nil || rep.EC.Verdict != ec.TimedOut {
			t.Error("ProbablyEquivalent without a timed-out EC result")
		}
	}
}

func TestSkipEC(t *testing.T) {
	g := ghz(4)
	rep := Check(g, g.Clone(), Options{SkipEC: true, R: 5, Seed: 11})
	if rep.Verdict != ProbablyEquivalent {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	if rep.EC != nil {
		t.Error("EC ran despite SkipEC")
	}
}

func TestExhaustiveSimulationProvesEquivalence(t *testing.T) {
	// 3 qubits, R = 8 covers all basis states: simulation alone is a proof.
	g1 := ghz(3)
	g2 := g1.Clone()
	g2.Z(1).Z(1)
	rep := Check(g1, g2, Options{R: 8, Seed: 13, SkipEC: true})
	if !rep.Exhaustive {
		t.Fatal("flow did not notice exhaustive coverage")
	}
	if rep.Verdict != Equivalent {
		t.Fatalf("verdict = %v, want proven equivalent", rep.Verdict)
	}
}

func TestExplicitStimuli(t *testing.T) {
	// An error confined to the |11..1>-controlled block (Example 8 worst
	// case) is invisible to the |0...0> stimulus but visible to |1...1>.
	n := 4
	g1 := circuit.New(n, "id")
	g1.H(0).H(0) // trivially identity
	g2 := circuit.New(n, "ctrl-err")
	g2.MCZ([]int{0, 1, 2}, 3) // multi-controlled Z: differs only on |1111>
	zeroRep := Check(g1, g2, Options{Stimuli: []uint64{0}, SkipEC: true})
	if zeroRep.Verdict != ProbablyEquivalent {
		t.Fatalf("|0000> stimulus unexpectedly distinguished the circuits: %v", zeroRep.Verdict)
	}
	oneRep := Check(g1, g2, Options{Stimuli: []uint64{15}, SkipEC: true})
	if oneRep.Verdict != NotEquivalent {
		t.Fatalf("|1111> stimulus failed to distinguish the circuits: %v", oneRep.Verdict)
	}
}

func TestOutputPermutationFlow(t *testing.T) {
	g1 := ghz(3)
	g2 := ghz(3)
	g2.Swap(0, 2)
	perm := []int{2, 1, 0}
	rep := Check(g1, g2, Options{Seed: 17, OutputPerm: perm})
	if rep.Verdict != Equivalent {
		t.Fatalf("with perm: verdict = %v", rep.Verdict)
	}
	rep = Check(g1, g2, Options{Seed: 17})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("without perm: verdict = %v", rep.Verdict)
	}
}

func TestGlobalPhaseFlow(t *testing.T) {
	g1 := circuit.New(2, "rz")
	g1.RZ(math.Pi, 0) // = diag(-i, i) = -i·Z: differs from Z by phase -i
	g2 := circuit.New(2, "z")
	g2.Z(0)
	strict := Check(g1, g2, Options{Seed: 19})
	if strict.Verdict != NotEquivalent {
		t.Fatalf("strict: verdict = %v", strict.Verdict)
	}
	loose := Check(g1, g2, Options{Seed: 19, UpToGlobalPhase: true})
	if loose.Verdict != Equivalent && loose.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("phase-insensitive: verdict = %v", loose.Verdict)
	}
}

func TestRegisterMismatch(t *testing.T) {
	rep := Check(circuit.New(2, "a"), circuit.New(3, "b"), Options{})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g1 := randomCircuit(rng, 5, 40)
	g2 := g1.Clone()
	g2.Gates[20] = circuit.Gate{Kind: circuit.Y, Target: g2.Gates[20].Target, Target2: -1}
	a := Check(g1, g2, Options{Seed: 99, SkipEC: true})
	b := Check(g1, g2, Options{Seed: 99, SkipEC: true})
	if a.Verdict != b.Verdict || a.NumSims != b.NumSims {
		t.Fatal("flow not deterministic for a fixed seed")
	}
	if a.Verdict == NotEquivalent && a.Counterexample.Input != b.Counterexample.Input {
		t.Fatal("counterexamples differ across identical runs")
	}
}

func TestReportTimes(t *testing.T) {
	g := ghz(4)
	rep := Check(g, g.Clone(), Options{Seed: 29})
	if rep.SimTime <= 0 || rep.TotalTime <= 0 {
		t.Error("missing timing information")
	}
	if rep.ECTime() <= 0 {
		t.Error("ECTime() = 0 although the complete routine ran")
	}
	norep := Report{}
	if norep.ECTime() != 0 {
		t.Error("ECTime() of empty report must be 0")
	}
}

// Property: for circuits differing in one uncontrolled single-qubit gate,
// simulation finds the difference with the first stimulus (Sec. IV-A:
// difference affects 100% of columns).
func TestQuickSingleQubitErrorAlwaysCaught(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		g1 := randomCircuit(rng, n, 25)
		g2 := g1.Clone()
		// Insert an extra H at a random position.
		pos := rng.Intn(len(g2.Gates))
		extra := circuit.Gate{Kind: circuit.H, Target: rng.Intn(n), Target2: -1}
		g2.Gates = append(g2.Gates[:pos:pos], append([]circuit.Gate{extra}, g2.Gates[pos:]...)...)
		rep := Check(g1, g2, Options{Seed: seed, SkipEC: true})
		return rep.Verdict == NotEquivalent && rep.NumSims == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the flow never mislabels an equivalent pair as NotEquivalent.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		g1 := randomCircuit(rng, n, 20)
		g2 := g1.Clone()
		rep := Check(g1, g2, Options{Seed: seed, R: 4})
		return rep.Verdict == Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCounterexampleStateRendering(t *testing.T) {
	g1 := ghz(3)
	g2 := circuit.New(3, "broken")
	g2.H(0).CX(0, 1) // missing final CX
	rep := Check(g1, g2, Options{Seed: 5, SkipEC: true})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	ce := rep.Counterexample
	if ce.StateG == "" || ce.StateGp == "" {
		t.Fatal("counterexample states not rendered")
	}
	if ce.StateG == ce.StateGp {
		t.Errorf("rendered states identical: %s", ce.StateG)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		g1 := randomCircuit(rng, 6, 50)
		var g2 *circuit.Circuit
		if trial%2 == 0 {
			g2 = g1.Clone()
		} else {
			g2 = g1.Clone()
			idx := rng.Intn(len(g2.Gates))
			g2.Gates[idx] = circuit.Gate{Kind: circuit.Y, Target: g2.Gates[idx].Target, Target2: -1}
		}
		seq := Check(g1, g2, Options{Seed: int64(trial), R: 12, SkipEC: true})
		par := Check(g1, g2, Options{Seed: int64(trial), R: 12, SkipEC: true, Parallel: 4})
		if seq.Verdict != par.Verdict {
			t.Fatalf("trial %d: verdicts differ: %v vs %v", trial, seq.Verdict, par.Verdict)
		}
		if seq.Verdict == NotEquivalent {
			if seq.Counterexample.Input != par.Counterexample.Input {
				t.Fatalf("trial %d: counterexamples differ: %d vs %d",
					trial, seq.Counterexample.Input, par.Counterexample.Input)
			}
			if seq.NumSims != par.NumSims {
				t.Fatalf("trial %d: NumSims differ: %d vs %d", trial, seq.NumSims, par.NumSims)
			}
		}
	}
}

func TestParallelWithOutputPerm(t *testing.T) {
	g1 := ghz(4)
	g2 := ghz(4)
	g2.Swap(0, 3)
	perm := []int{3, 1, 2, 0}
	rep := Check(g1, g2, Options{Seed: 3, R: 8, SkipEC: true, Parallel: 3, OutputPerm: perm})
	if rep.Verdict != ProbablyEquivalent {
		t.Fatalf("with perm: %v", rep.Verdict)
	}
	rep = Check(g1, g2, Options{Seed: 3, R: 8, SkipEC: true, Parallel: 3})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("without perm: %v", rep.Verdict)
	}
}

func TestParallelMoreWorkersThanStimuli(t *testing.T) {
	g := ghz(3)
	rep := Check(g, g.Clone(), Options{Seed: 5, R: 2, SkipEC: true, Parallel: 16})
	if rep.Verdict != ProbablyEquivalent || rep.NumSims != 2 {
		t.Fatalf("verdict %v, sims %d", rep.Verdict, rep.NumSims)
	}
}

func TestRewritePrefilter(t *testing.T) {
	g := ghz(4)
	gp := g.Clone()
	gp.T(2).Tdg(2) // peephole-removable pair
	rep := Check(g, gp, Options{RewritePrefilter: true, Seed: 3})
	if rep.Verdict != Equivalent {
		t.Fatalf("verdict %v", rep.Verdict)
	}
	if rep.Rewriting == nil {
		t.Fatal("prefilter result not recorded")
	}
	if rep.NumSims != 0 || rep.EC != nil {
		t.Errorf("prefilter did not short-circuit: sims=%d ec=%v", rep.NumSims, rep.EC)
	}
	// Inconclusive prefilter must fall through to the normal flow.
	bad := g.Clone()
	bad.Gates[1] = circuit.Gate{Kind: circuit.Z, Target: 1, Target2: -1}
	rep = Check(g, bad, Options{RewritePrefilter: true, Seed: 3, SkipEC: true})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("fall-through verdict %v", rep.Verdict)
	}
	if rep.Rewriting == nil || rep.NumSims == 0 {
		t.Error("fall-through did not run simulations")
	}
	// With an output permutation the prefilter must be skipped.
	g2 := ghz(4)
	g2.Swap(0, 3)
	rep = Check(g, g2, Options{RewritePrefilter: true, Seed: 3, SkipEC: true, OutputPerm: []int{3, 1, 2, 0}})
	if rep.Rewriting != nil {
		t.Error("prefilter ran despite OutputPerm")
	}
}

func TestZXPrefilter(t *testing.T) {
	// A Clifford recompilation the ZX prover can prove: HXH = Z plus
	// commuted CZs.
	g1 := circuit.New(3, "a")
	g1.Z(0).CZ(0, 1).CZ(1, 2)
	g2 := circuit.New(3, "b")
	g2.H(0).X(0).H(0).CZ(1, 2).CZ(0, 1)
	rep := Check(g1, g2, Options{ZXPrefilter: true, Seed: 9})
	if rep.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("verdict %v", rep.Verdict)
	}
	if rep.ZX == nil || rep.NumSims != 0 || rep.EC != nil {
		t.Errorf("ZX prefilter did not short-circuit: %+v", rep)
	}
	// Inconclusive ZX falls through; non-equivalent pairs are still caught.
	bad := g1.Clone()
	bad.T(2)
	rep = Check(g1, bad, Options{ZXPrefilter: true, Seed: 9, SkipEC: true})
	if rep.Verdict != NotEquivalent {
		t.Fatalf("fall-through verdict %v", rep.Verdict)
	}
	if rep.ZX == nil || rep.NumSims == 0 {
		t.Error("fall-through did not run simulations")
	}
}

func TestFidelityThresholdApproximate(t *testing.T) {
	// G' differs from G by a tiny rotation: exactly non-equivalent, but
	// approximately equivalent at a 0.99 threshold.
	g1 := ghz(4)
	g2 := ghz(4)
	g2.RZ(0.01, 2) // fidelity ~ cos^2(0.005) ≈ 0.999975
	exact := Check(g1, g2, Options{Seed: 3, SkipEC: true})
	if exact.Verdict != NotEquivalent {
		t.Fatalf("exact: verdict %v", exact.Verdict)
	}
	approx := Check(g1, g2, Options{Seed: 3, FidelityThreshold: 0.99})
	if approx.Verdict != ProbablyEquivalent {
		t.Fatalf("approx: verdict %v", approx.Verdict)
	}
	if approx.EC != nil {
		t.Error("approximate mode ran the complete routine")
	}
	if approx.MinFidelity >= 1 || approx.MinFidelity < 0.999 {
		t.Errorf("MinFidelity = %g", approx.MinFidelity)
	}
	if approx.AvgFidelity < approx.MinFidelity {
		t.Errorf("AvgFidelity %g < MinFidelity %g", approx.AvgFidelity, approx.MinFidelity)
	}

	// A large rotation fails even the approximate threshold.
	g3 := ghz(4)
	g3.RZ(2.0, 2)
	bad := Check(g1, g3, Options{Seed: 3, FidelityThreshold: 0.99})
	if bad.Verdict != NotEquivalent {
		t.Fatalf("large error: verdict %v", bad.Verdict)
	}
	if bad.Counterexample.Fidelity >= 0.99 {
		t.Errorf("counterexample fidelity %g above threshold", bad.Counterexample.Fidelity)
	}
}

func TestFidelityStatsExactMode(t *testing.T) {
	g := ghz(3)
	rep := Check(g, g.Clone(), Options{Seed: 5, SkipEC: true})
	if rep.MinFidelity < 1-1e-9 || rep.AvgFidelity < 1-1e-9 {
		t.Errorf("fidelity stats on identical pair: min %g avg %g", rep.MinFidelity, rep.AvgFidelity)
	}
}
