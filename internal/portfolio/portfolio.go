// Package portfolio runs several equivalence-checking provers concurrently
// on the same circuit pair and returns the first definitive verdict.
//
// The paper's flow (Fig. 3) already sequences a cheap simulation prefilter
// before a complete DD-based check; the journal version of the work
// ("Advanced Equivalence Checking for Quantum Circuits") observes that the
// available decision procedures — simulation, DD construction, the
// alternating scheme, SAT miters, ZX rewriting — have wildly different
// per-instance strengths, and runs them as a concurrent portfolio.  This
// package is that engine: every prover runs in its own goroutine against a
// shared context.Context; the first Equivalent / EquivalentUpToGlobalPhase /
// NotEquivalent answer wins and cancels the rest, which stop cooperatively
// (see the cancellation contract in DESIGN.md) instead of running to their
// private timeouts.
//
// Concurrency invariant: dd.Package and cn.Table are not safe for concurrent
// use, so every prover constructs its own package(s); the engine never shares
// DD state between goroutines.  The only cross-goroutine values are the
// immutable input circuits and the plain-data Outcome structs.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/resource"
)

// Verdict is a portfolio-level equivalence verdict.  The zero value is
// Inconclusive, so an empty Outcome is safely non-definitive.
type Verdict int

// Possible verdicts.  Only the three non-Inconclusive values are
// "definitive" and end the race.
const (
	Inconclusive Verdict = iota
	Equivalent
	EquivalentUpToGlobalPhase
	NotEquivalent
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Inconclusive:
		return "inconclusive"
	case Equivalent:
		return "equivalent"
	case EquivalentUpToGlobalPhase:
		return "equivalent up to global phase"
	case NotEquivalent:
		return "not equivalent"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Definitive reports whether the verdict settles the instance (and hence
// wins the race).
func (v Verdict) Definitive() bool { return v != Inconclusive }

// Stop explains why a prover stopped.
type Stop int

// Stop reasons.  Provers report Finished/Inconclusive/Cancelled/Timeout/
// NodeLimit/Error about themselves; the engine upgrades the first definitive
// Finished to Won and distinguishes engine-timeout from lost-the-race
// cancellation.
const (
	// StopWon: this prover delivered the race's definitive verdict.
	StopWon Stop = iota
	// StopFinished: definitive verdict, but another prover won first.
	StopFinished
	// StopInconclusive: ran to completion without a definitive verdict
	// (e.g. an incomplete prover that failed to reduce the miter).
	StopInconclusive
	// StopCancelled: stopped because the shared context was cancelled after
	// another prover won.
	StopCancelled
	// StopTimeout: hit a wall-clock bound — its own or the portfolio's —
	// with no winner involved.
	StopTimeout
	// StopNodeLimit: hit its DD node budget.
	StopNodeLimit
	// StopError: could not run on this instance (e.g. the SAT miter on a
	// non-classical circuit).
	StopError
	// StopPanicked: the prover's goroutine panicked and was isolated; the
	// report's Err carries the *resource.PanicError with the stack.  The
	// race continues on the surviving provers.
	StopPanicked
	// StopMemLimit: stopped by the memory watchdog's hard limit (the
	// report's Err carries the *resource.MemoryLimitError).
	StopMemLimit
)

// String returns the stop-reason name.
func (s Stop) String() string {
	switch s {
	case StopWon:
		return "won"
	case StopFinished:
		return "finished"
	case StopInconclusive:
		return "inconclusive"
	case StopCancelled:
		return "cancelled"
	case StopTimeout:
		return "timeout"
	case StopNodeLimit:
		return "node-limit"
	case StopError:
		return "error"
	case StopPanicked:
		return "panicked"
	case StopMemLimit:
		return "mem-limit"
	default:
		return fmt.Sprintf("stop(%d)", int(s))
	}
}

// Outcome is what a single prover reports back to the engine.
type Outcome struct {
	// Verdict is the prover's conclusion; Inconclusive loses the race.
	Verdict Verdict
	// Counterexample is a basis state on which the circuits differ, when the
	// verdict is NotEquivalent and the prover found one.
	Counterexample *uint64
	// Stop is the prover's own account of why it stopped; for definitive
	// verdicts the engine replaces it with Won or Finished.
	Stop Stop
	// PeakNodes is the largest live DD population the prover observed
	// (0 for provers that do not build DDs).
	PeakNodes int
	// DD carries the prover's DD-package statistics (nil for provers that do
	// not build DDs, e.g. sat and zx).
	DD *dd.Stats
	// Err is the typed failure behind StopPanicked (*resource.PanicError),
	// StopMemLimit (*resource.MemoryLimitError) or StopError; nil otherwise.
	Err error
	// Detail is a short human-readable note for the report table.
	Detail string
}

// Prover is one competitor: a name and a run function.  Run must honor ctx —
// return promptly once ctx is cancelled — and must build all of its mutable
// state (DD packages, complex tables, solvers) itself, per goroutine.
type Prover struct {
	Name string
	Run  func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome
	// Degraded, when non-nil, is a conservative fallback configuration of
	// the same prover (smaller node budget, kernel and caches disabled).
	// With Options.RetryCrashed the engine runs it once after Run panics.
	Degraded func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome
}

// Report is the engine's per-prover observability record.
type Report struct {
	Name      string
	Verdict   Verdict
	Stop      Stop
	Runtime   time.Duration
	PeakNodes int
	// DD is the prover's DD-package telemetry (nil for DD-free provers).
	DD *dd.Stats
	// Err is the prover's typed failure (see Outcome.Err).  For a retried
	// prover whose degraded run succeeded, it keeps the first crash on
	// record.
	Err error
	// Retried reports that the prover crashed and was re-run once with its
	// degraded configuration (Options.RetryCrashed).
	Retried bool
	Detail  string
}

// Options configures a portfolio run.
type Options struct {
	// Timeout bounds the whole race; zero means the race only ends when a
	// prover returns a definitive verdict or all provers give up.
	Timeout time.Duration
	// RetryCrashed re-runs a panicked prover once with its Degraded
	// configuration (if it has one) while the race is still undecided.
	RetryCrashed bool
	// MemSoftLimit / MemHardLimit, in bytes, put the whole race under one
	// shared memory watchdog (internal/resource): the soft limit forces DD
	// collections and cache flushes in every prover, the hard limit cancels
	// the race with a *resource.MemoryLimitError cause (reported as
	// StopMemLimit).  Zero disables the respective bound.
	MemSoftLimit uint64
	MemHardLimit uint64
}

// Result is the outcome of a portfolio run.
type Result struct {
	// Verdict is the winning verdict, or Inconclusive when no prover
	// produced a definitive one.
	Verdict Verdict
	// Winner is the name of the prover that produced the verdict ("" when
	// inconclusive).
	Winner string
	// Counterexample is the winner's distinguishing basis state, if any.
	Counterexample *uint64
	// Runtime is the wall-clock time of the whole race, including waiting
	// for cancelled losers to acknowledge.
	Runtime time.Duration
	// Reports lists every prover's outcome in the order provers were given.
	Reports []Report
	// Mem snapshots the race's memory-watchdog counters when
	// MemSoftLimit/MemHardLimit started one; nil otherwise.
	Mem *resource.Stats
}

// Run races the provers on the pair (g1, g2) and returns the first
// definitive verdict.  Losing provers are cancelled through the shared
// context and Run waits for all of them to acknowledge before returning, so
// no prover goroutine outlives the call.
func Run(ctx context.Context, g1, g2 *circuit.Circuit, provers []Prover, opts Options) Result {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	// One watchdog guards the whole race: provers discover it through the
	// context (resource.FromContext) and register their DD packages, so the
	// per-prover core/ec layers do not start redundant samplers.
	var watchdog *resource.Watchdog
	if opts.MemSoftLimit > 0 || opts.MemHardLimit > 0 {
		watchdog, ctx = resource.Start(ctx, resource.Config{
			SoftLimit: opts.MemSoftLimit,
			HardLimit: opts.MemHardLimit,
		})
	}
	var cancel context.CancelFunc
	if opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	res := Result{Reports: make([]Report, len(provers))}
	var (
		mu        sync.Mutex
		winnerIdx = -1
	)
	var wg sync.WaitGroup
	for i, p := range provers {
		wg.Add(1)
		go func(i int, p Prover) {
			defer wg.Done()
			t0 := time.Now()
			out, retried := runProver(ctx, p, g1, g2, opts)
			elapsed := time.Since(t0)

			mu.Lock()
			defer mu.Unlock()
			stop := out.Stop
			if out.Verdict.Definitive() {
				if winnerIdx < 0 {
					winnerIdx = i
					res.Verdict = out.Verdict
					res.Winner = p.Name
					res.Counterexample = out.Counterexample
					stop = StopWon
					cancel() // stop the losers promptly
				} else {
					stop = StopFinished
				}
			}
			res.Reports[i] = Report{
				Name:      p.Name,
				Verdict:   out.Verdict,
				Stop:      stop,
				Runtime:   elapsed,
				PeakNodes: out.PeakNodes,
				DD:        out.DD,
				Err:       out.Err,
				Retried:   retried,
				Detail:    out.Detail,
			}
		}(i, p)
	}
	wg.Wait()

	// With no winner, a prover that observed the context going away was
	// stopped by the portfolio (or caller) deadline — or by the memory
	// watchdog's hard limit — not by losing a race.
	if winnerIdx < 0 && ctx.Err() != nil {
		stop := StopTimeout
		var mle *resource.MemoryLimitError
		if errors.As(context.Cause(ctx), &mle) {
			stop = StopMemLimit
		}
		for i := range res.Reports {
			if res.Reports[i].Stop == StopCancelled {
				res.Reports[i].Stop = stop
				if stop == StopMemLimit && res.Reports[i].Err == nil {
					res.Reports[i].Err = mle
				}
			}
		}
	}
	if watchdog != nil {
		watchdog.Stop()
		st := watchdog.Stats()
		res.Mem = &st
	}
	res.Runtime = time.Since(start)
	return res
}

// runProver executes one prover with panic isolation, optionally retrying a
// crashed prover once with its degraded configuration.  The second return
// reports whether a retry ran.
func runProver(ctx context.Context, p Prover, g1, g2 *circuit.Circuit, opts Options) (Outcome, bool) {
	out := safeRun(p.Name, p.Run, ctx, g1, g2)
	if out.Stop != StopPanicked || !opts.RetryCrashed || p.Degraded == nil || ctx.Err() != nil {
		return out, false
	}
	crash := out.Err
	out = safeRun(p.Name, p.Degraded, ctx, g1, g2)
	if out.Err == nil {
		out.Err = crash // keep the first crash on record
	}
	if out.Detail != "" {
		out.Detail += "; "
	}
	out.Detail += "retried with degraded config after panic"
	return out, true
}

// safeRun invokes a prover function with panic isolation: a panic becomes an
// Outcome with StopPanicked and a typed *resource.PanicError instead of
// killing the process.  The zero Verdict (Inconclusive) guarantees a
// panicking prover can never win the race.
func safeRun(name string, run func(context.Context, *circuit.Circuit, *circuit.Circuit) Outcome,
	ctx context.Context, g1, g2 *circuit.Circuit) (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			perr := resource.NewPanicError("prover "+name, r)
			out = Outcome{Stop: StopPanicked, Err: perr, Detail: perr.Error()}
		}
	}()
	return run(ctx, g1, g2)
}
