// Package portfolio runs several equivalence-checking provers concurrently
// on the same circuit pair and returns the first definitive verdict.
//
// The paper's flow (Fig. 3) already sequences a cheap simulation prefilter
// before a complete DD-based check; the journal version of the work
// ("Advanced Equivalence Checking for Quantum Circuits") observes that the
// available decision procedures — simulation, DD construction, the
// alternating scheme, SAT miters, ZX rewriting — have wildly different
// per-instance strengths, and runs them as a concurrent portfolio.  This
// package is that engine: every prover runs in its own goroutine against a
// shared context.Context; the first Equivalent / EquivalentUpToGlobalPhase /
// NotEquivalent answer wins and cancels the rest, which stop cooperatively
// (see the cancellation contract in DESIGN.md) instead of running to their
// private timeouts.
//
// Concurrency invariant: dd.Package and cn.Table are not safe for concurrent
// use, so every prover constructs its own package(s); the engine never shares
// DD state between goroutines.  The only cross-goroutine values are the
// immutable input circuits and the plain-data Outcome structs.
package portfolio

import (
	"context"
	"fmt"
	"sync"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/dd"
)

// Verdict is a portfolio-level equivalence verdict.  The zero value is
// Inconclusive, so an empty Outcome is safely non-definitive.
type Verdict int

// Possible verdicts.  Only the three non-Inconclusive values are
// "definitive" and end the race.
const (
	Inconclusive Verdict = iota
	Equivalent
	EquivalentUpToGlobalPhase
	NotEquivalent
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Inconclusive:
		return "inconclusive"
	case Equivalent:
		return "equivalent"
	case EquivalentUpToGlobalPhase:
		return "equivalent up to global phase"
	case NotEquivalent:
		return "not equivalent"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Definitive reports whether the verdict settles the instance (and hence
// wins the race).
func (v Verdict) Definitive() bool { return v != Inconclusive }

// Stop explains why a prover stopped.
type Stop int

// Stop reasons.  Provers report Finished/Inconclusive/Cancelled/Timeout/
// NodeLimit/Error about themselves; the engine upgrades the first definitive
// Finished to Won and distinguishes engine-timeout from lost-the-race
// cancellation.
const (
	// StopWon: this prover delivered the race's definitive verdict.
	StopWon Stop = iota
	// StopFinished: definitive verdict, but another prover won first.
	StopFinished
	// StopInconclusive: ran to completion without a definitive verdict
	// (e.g. an incomplete prover that failed to reduce the miter).
	StopInconclusive
	// StopCancelled: stopped because the shared context was cancelled after
	// another prover won.
	StopCancelled
	// StopTimeout: hit a wall-clock bound — its own or the portfolio's —
	// with no winner involved.
	StopTimeout
	// StopNodeLimit: hit its DD node budget.
	StopNodeLimit
	// StopError: could not run on this instance (e.g. the SAT miter on a
	// non-classical circuit).
	StopError
)

// String returns the stop-reason name.
func (s Stop) String() string {
	switch s {
	case StopWon:
		return "won"
	case StopFinished:
		return "finished"
	case StopInconclusive:
		return "inconclusive"
	case StopCancelled:
		return "cancelled"
	case StopTimeout:
		return "timeout"
	case StopNodeLimit:
		return "node-limit"
	case StopError:
		return "error"
	default:
		return fmt.Sprintf("stop(%d)", int(s))
	}
}

// Outcome is what a single prover reports back to the engine.
type Outcome struct {
	// Verdict is the prover's conclusion; Inconclusive loses the race.
	Verdict Verdict
	// Counterexample is a basis state on which the circuits differ, when the
	// verdict is NotEquivalent and the prover found one.
	Counterexample *uint64
	// Stop is the prover's own account of why it stopped; for definitive
	// verdicts the engine replaces it with Won or Finished.
	Stop Stop
	// PeakNodes is the largest live DD population the prover observed
	// (0 for provers that do not build DDs).
	PeakNodes int
	// DD carries the prover's DD-package statistics (nil for provers that do
	// not build DDs, e.g. sat and zx).
	DD *dd.Stats
	// Detail is a short human-readable note for the report table.
	Detail string
}

// Prover is one competitor: a name and a run function.  Run must honor ctx —
// return promptly once ctx is cancelled — and must build all of its mutable
// state (DD packages, complex tables, solvers) itself, per goroutine.
type Prover struct {
	Name string
	Run  func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome
}

// Report is the engine's per-prover observability record.
type Report struct {
	Name      string
	Verdict   Verdict
	Stop      Stop
	Runtime   time.Duration
	PeakNodes int
	// DD is the prover's DD-package telemetry (nil for DD-free provers).
	DD     *dd.Stats
	Detail string
}

// Options configures a portfolio run.
type Options struct {
	// Timeout bounds the whole race; zero means the race only ends when a
	// prover returns a definitive verdict or all provers give up.
	Timeout time.Duration
}

// Result is the outcome of a portfolio run.
type Result struct {
	// Verdict is the winning verdict, or Inconclusive when no prover
	// produced a definitive one.
	Verdict Verdict
	// Winner is the name of the prover that produced the verdict ("" when
	// inconclusive).
	Winner string
	// Counterexample is the winner's distinguishing basis state, if any.
	Counterexample *uint64
	// Runtime is the wall-clock time of the whole race, including waiting
	// for cancelled losers to acknowledge.
	Runtime time.Duration
	// Reports lists every prover's outcome in the order provers were given.
	Reports []Report
}

// Run races the provers on the pair (g1, g2) and returns the first
// definitive verdict.  Losing provers are cancelled through the shared
// context and Run waits for all of them to acknowledge before returning, so
// no prover goroutine outlives the call.
func Run(ctx context.Context, g1, g2 *circuit.Circuit, provers []Prover, opts Options) Result {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	res := Result{Reports: make([]Report, len(provers))}
	var (
		mu        sync.Mutex
		winnerIdx = -1
	)
	var wg sync.WaitGroup
	for i, p := range provers {
		wg.Add(1)
		go func(i int, p Prover) {
			defer wg.Done()
			t0 := time.Now()
			out := p.Run(ctx, g1, g2)
			elapsed := time.Since(t0)

			mu.Lock()
			defer mu.Unlock()
			stop := out.Stop
			if out.Verdict.Definitive() {
				if winnerIdx < 0 {
					winnerIdx = i
					res.Verdict = out.Verdict
					res.Winner = p.Name
					res.Counterexample = out.Counterexample
					stop = StopWon
					cancel() // stop the losers promptly
				} else {
					stop = StopFinished
				}
			}
			res.Reports[i] = Report{
				Name:      p.Name,
				Verdict:   out.Verdict,
				Stop:      stop,
				Runtime:   elapsed,
				PeakNodes: out.PeakNodes,
				DD:        out.DD,
				Detail:    out.Detail,
			}
		}(i, p)
	}
	wg.Wait()

	// With no winner, a prover that observed the context going away was
	// stopped by the portfolio (or caller) deadline, not by losing a race.
	if winnerIdx < 0 && ctx.Err() != nil {
		for i := range res.Reports {
			if res.Reports[i].Stop == StopCancelled {
				res.Reports[i].Stop = StopTimeout
			}
		}
	}
	res.Runtime = time.Since(start)
	return res
}
