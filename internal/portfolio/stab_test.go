package portfolio

import (
	"context"
	"runtime"
	"testing"
	"time"

	"qcec/internal/bench"
	"qcec/internal/circuit"
)

// TestStabProverWinsCliffordRace races the tableau prover against the full
// DD-based checker on a wide Clifford pair: the polynomial-time path must
// deliver the verdict first.
func TestStabProverWinsCliffordRace(t *testing.T) {
	g1 := bench.RandomClifford(20, 2000, 11)
	g2 := g1.Clone()
	provers := []Prover{StabProver(Config{UpToGlobalPhase: true}), DDProver(Config{UpToGlobalPhase: true})}

	res := Run(context.Background(), g1, g2, provers, Options{Timeout: 2 * time.Minute})
	if res.Winner != "stab" {
		t.Fatalf("winner = %q, want stab (reports: %+v)", res.Winner, res.Reports)
	}
	if res.Verdict != Equivalent && res.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("verdict = %v, want equivalent", res.Verdict)
	}
	if rep := res.Reports[0]; rep.Stop != StopWon {
		t.Fatalf("stab stop = %v, want won", rep.Stop)
	}
}

// TestStabProverDeclinesNonClifford: a single T gate must make the tableau
// prover bow out with StopError after only a gate-set scan, leaving the race
// to the complete provers.
func TestStabProverDeclinesNonClifford(t *testing.T) {
	g1 := circuit.New(2, "g").H(0).T(1).CX(0, 1)
	g2 := g1.Clone()

	out := StabProver(Config{}).Run(context.Background(), g1, g2)
	if out.Stop != StopError {
		t.Fatalf("stop = %v, want error decline", out.Stop)
	}
	if out.Detail != "non-Clifford gate set" {
		t.Fatalf("detail = %q", out.Detail)
	}

	res := Run(context.Background(), g1, g2, []Prover{StabProver(Config{}), SimProver(Config{})}, Options{})
	if res.Winner == "stab" {
		t.Fatalf("stab won on a non-Clifford pair")
	}
	if res.Verdict != Equivalent && res.Verdict != EquivalentUpToGlobalPhase {
		t.Fatalf("verdict = %v, want equivalent from the surviving prover", res.Verdict)
	}
}

// TestStabProverNoLeakWhenLosing repeatedly races the tableau prover against
// an instant winner so stab always loses, and checks no goroutines pile up:
// the lost-race cancellation must fully unwind the tableau path.
func TestStabProverNoLeakWhenLosing(t *testing.T) {
	g1 := bench.RandomClifford(16, 4000, 5)
	g2 := g1.Clone()
	instant := Prover{
		Name: "instant",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			return Outcome{Verdict: EquivalentUpToGlobalPhase, Detail: "oracle"}
		},
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		res := Run(context.Background(), g1, g2, []Prover{StabProver(Config{UpToGlobalPhase: true}), instant}, Options{})
		if !res.Verdict.Definitive() {
			t.Fatalf("iteration %d: race inconclusive", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d — leak", before, runtime.NumGoroutine())
}
