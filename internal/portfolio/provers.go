package portfolio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/core"
	"qcec/internal/ec"
	"qcec/internal/ecsat"
	"qcec/internal/resource"
	"qcec/internal/zx"
)

// Config parameterizes the standard provers built by FromNames.
type Config struct {
	// R is the simulation prefilter's stimulus count (default core.DefaultR).
	R int
	// Seed drives the prefilter's stimulus selection.
	Seed int64
	// SimParallel is the prefilter's worker count (0 or 1 = sequential).
	SimParallel int
	// Strategy selects the alternating scheme of the "alt" prover
	// (default ec.Proportional).
	Strategy ec.Strategy
	// ECTimeout is the private wall-clock bound of each complete DD prover
	// (0 = none; the portfolio context still cancels them).
	ECTimeout time.Duration
	// ECNodeLimit bounds each DD prover's live nodes (0 = none).
	ECNodeLimit int
	// SATConflictBudget bounds the SAT prover's effort (0 = unlimited).
	SATConflictBudget int64
	// UpToGlobalPhase accepts a scalar factor between the circuits.
	UpToGlobalPhase bool
	// OutputPerm declares an output relabeling (see ec.Options.OutputPerm).
	// Provers with no permutation notion (sat, zx) decline when it is set.
	OutputPerm []int
	// Tolerance is the DD weight tolerance (0 = default).
	Tolerance float64
	// DisableGateCache turns off the gate-DD cache in every DD-building
	// prover (benchmark baseline runs only).
	DisableGateCache bool
	// DisableApplyKernel switches the sim prover's gate application to the
	// legacy GateDD+MulMV path (see core.Options.DisableApplyKernel).
	DisableApplyKernel bool
	// CostProfile is the native per-gate compilation cost profile of the
	// pair (g1 gate i lowered to CostProfile[i] gates of g2); when set, the
	// gatecost prover uses it directly instead of the static estimate.  See
	// ec.Options.CostProfile.
	CostProfile []int
}

// degraded derives the conservative fallback configuration used when a
// crashed prover is retried (Options.RetryCrashed): sequential simulation,
// kernel and gate cache disabled (the smallest code paths), and a reduced
// node budget so the retry cannot repeat a resource blow-up.
func (c Config) degraded() Config {
	d := c
	d.DisableApplyKernel = true
	d.DisableGateCache = true
	d.SimParallel = 0
	switch {
	case d.ECNodeLimit <= 0: // unlimited (0 or the explicit -1): bound the retry
		d.ECNodeLimit = 1 << 20
	case d.ECNodeLimit > 4096:
		d.ECNodeLimit /= 2
	}
	return d
}

// ProverNames lists the selectable standard provers in canonical order.
var ProverNames = []string{"sim", "dd", "alt", "gatecost", "sat", "zx", "stab"}

// FromNames builds the named subset of the standard provers:
//
//	sim — the paper's simulation prefilter (random basis-state runs)
//	dd  — complete DD check, construction strategy (build and compare)
//	alt — complete DD check, alternating scheme (cfg.Strategy)
//	gatecost — complete DD check, gate-cost schedule (compiled pairs only)
//	sat — SAT miter (classical reversible netlists only)
//	zx  — ZX-calculus rewriting (sound, incomplete, up to phase)
//	stab — polynomial-time stabilizer tableau (Clifford-only pairs)
func FromNames(names []string, cfg Config) ([]Prover, error) {
	dcfg := cfg.degraded()
	withDegraded := func(p, fallback Prover) Prover {
		p.Degraded = fallback.Run
		return p
	}
	provers := make([]Prover, 0, len(names))
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		switch name {
		case "sim":
			provers = append(provers, withDegraded(SimProver(cfg), SimProver(dcfg)))
		case "dd":
			provers = append(provers, withDegraded(DDProver(cfg), DDProver(dcfg)))
		case "alt":
			provers = append(provers, withDegraded(AlternatingProver(cfg), AlternatingProver(dcfg)))
		case "gatecost":
			provers = append(provers, withDegraded(GateCostProver(cfg), GateCostProver(dcfg)))
		case "sat":
			provers = append(provers, SATProver(cfg))
		case "zx":
			provers = append(provers, ZXProver(cfg))
		case "stab":
			provers = append(provers, StabProver(cfg))
		case "":
			continue
		default:
			return nil, fmt.Errorf("portfolio: unknown prover %q (have %s)",
				name, strings.Join(ProverNames, ","))
		}
	}
	if len(provers) == 0 {
		return nil, fmt.Errorf("portfolio: no provers selected")
	}
	return provers, nil
}

// SimProver wraps the paper's simulation prefilter (internal/core with the
// complete routine skipped).  It proves non-equivalence with a
// counterexample, proves equivalence only when the stimuli are exhaustive,
// and is otherwise inconclusive.
func SimProver(cfg Config) Prover {
	return Prover{
		Name: "sim",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			rep := core.Check(g1, g2, core.Options{
				Context:            ctx,
				R:                  cfg.R,
				Seed:               cfg.Seed,
				Parallel:           cfg.SimParallel,
				SkipEC:             true,
				UpToGlobalPhase:    cfg.UpToGlobalPhase,
				OutputPerm:         cfg.OutputPerm,
				Tolerance:          cfg.Tolerance,
				DisableGateCache:   cfg.DisableGateCache,
				DisableApplyKernel: cfg.DisableApplyKernel,
			})
			ddStats := rep.DD
			if rep.Err != nil {
				// Worker panic isolated by core: degraded, not definitive.
				return Outcome{Stop: StopError, Err: rep.Err, Detail: rep.Err.Error(), DD: &ddStats}
			}
			out := Outcome{Detail: fmt.Sprintf("%d sims", rep.NumSims), DD: &ddStats}
			switch rep.Verdict {
			case core.NotEquivalent:
				out.Verdict = NotEquivalent
				if rep.Counterexample != nil {
					ce := rep.Counterexample.Input
					out.Counterexample = &ce
					out.Detail = fmt.Sprintf("%d sims, counterexample |%b>", rep.NumSims, ce)
				}
			case core.Equivalent:
				out.Verdict = Equivalent
				out.Detail = fmt.Sprintf("%d sims (exhaustive)", rep.NumSims)
			case core.EquivalentUpToGlobalPhase:
				out.Verdict = EquivalentUpToGlobalPhase
			default: // ProbablyEquivalent: not definitive
				if rep.Cancelled {
					out.Stop = StopCancelled
					var mle *resource.MemoryLimitError
					if errors.As(rep.CancelCause, &mle) {
						out.Stop = StopMemLimit
						out.Err = mle
					}
				} else {
					out.Stop = StopInconclusive
					out.Detail = fmt.Sprintf("%d sims agreed (not a proof)", rep.NumSims)
				}
			}
			return out
		},
	}
}

// ecOutcome translates a complete-routine result into a portfolio outcome.
func ecOutcome(res ec.Result) Outcome {
	ddStats := res.DD
	out := Outcome{
		PeakNodes: res.PeakNodes,
		DD:        &ddStats,
		Detail:    fmt.Sprintf("%d gates applied", res.GatesApplied),
	}
	switch res.Verdict {
	case ec.Equivalent:
		out.Verdict = Equivalent
	case ec.EquivalentUpToGlobalPhase:
		out.Verdict = EquivalentUpToGlobalPhase
	case ec.NotEquivalent:
		out.Verdict = NotEquivalent
		out.Counterexample = res.Counterexample
	case ec.TimedOut:
		switch res.Cause {
		case ec.CauseCancelled:
			out.Stop = StopCancelled
		case ec.CauseNodeLimit:
			out.Stop = StopNodeLimit
		case ec.CauseMemLimit:
			out.Stop = StopMemLimit
			out.Err = res.Err
		case ec.CauseError:
			out.Stop = StopError
			out.Err = res.Err
		default:
			out.Stop = StopTimeout
		}
		out.Detail = res.Reason
	}
	return out
}

// DDProver wraps the complete DD routine with the construction strategy —
// the "build and compare the complete functionality" baseline.
func DDProver(cfg Config) Prover {
	return ecProver("dd", ec.Construction, cfg)
}

// AlternatingProver wraps the complete DD routine with the configured
// alternating scheme (default ec.Proportional).
func AlternatingProver(cfg Config) Prover {
	return ecProver("alt", cfg.Strategy, cfg)
}

// GateCostProver wraps the complete DD routine with the gate-cost
// (compilation-flow) schedule.  It self-selects: with a native profile
// attached (cfg.CostProfile) it always runs; without one it runs only when
// the pair looks like a compilation flow — g2 at least twice as long as a
// non-empty g1, the shape on which the static estimate pays off — and
// otherwise declines (StopError) so uncompiled pairs stay with the plain
// alternating prover.
func GateCostProver(cfg Config) Prover {
	return Prover{
		Name: "gatecost",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			if cfg.CostProfile == nil && (len(g1.Gates) == 0 || len(g2.Gates) < 2*len(g1.Gates)) {
				return Outcome{Stop: StopError, Detail: "no cost profile and no compilation blow-up"}
			}
			return ecOutcome(ec.Check(g1, g2, ec.Options{
				Strategy:           ec.StrategyGateCost,
				CostProfile:        cfg.CostProfile,
				Context:            ctx,
				Timeout:            cfg.ECTimeout,
				NodeLimit:          cfg.ECNodeLimit,
				UpToGlobalPhase:    cfg.UpToGlobalPhase,
				OutputPerm:         cfg.OutputPerm,
				Tolerance:          cfg.Tolerance,
				DisableGateCache:   cfg.DisableGateCache,
				DisableApplyKernel: cfg.DisableApplyKernel,
			}))
		},
	}
}

func ecProver(name string, strategy ec.Strategy, cfg Config) Prover {
	return Prover{
		Name: name,
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			return ecOutcome(ec.Check(g1, g2, ec.Options{
				Strategy:           strategy,
				CostProfile:        cfg.CostProfile,
				Context:            ctx,
				Timeout:            cfg.ECTimeout,
				NodeLimit:          cfg.ECNodeLimit,
				UpToGlobalPhase:    cfg.UpToGlobalPhase,
				OutputPerm:         cfg.OutputPerm,
				Tolerance:          cfg.Tolerance,
				DisableGateCache:   cfg.DisableGateCache,
				DisableApplyKernel: cfg.DisableApplyKernel,
			}))
		},
	}
}

// StabProver wraps the polynomial-time stabilizer tableau checker
// (ec.StrategyStabilizer).  Before entering the race it runs the gate-set
// analyzer on both circuits; a non-Clifford gate anywhere means the prover
// declines immediately (StopError) at the cost of one early-exit scan, so
// universal-gate-set pairs see zero overhead from having stab in the
// portfolio.  On Clifford-only pairs it is complete in both phase
// conventions (the strict convention adds one basis-state phase anchor).
func StabProver(cfg Config) Prover {
	return Prover{
		Name: "stab",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			angleTol := circuit.CliffordAngleTolerance(cfg.Tolerance)
			if !circuit.IsClifford(g1, angleTol) || !circuit.IsClifford(g2, angleTol) {
				return Outcome{Stop: StopError, Detail: "non-Clifford gate set"}
			}
			return ecOutcome(ec.Check(g1, g2, ec.Options{
				Strategy:         ec.StrategyStabilizer,
				Context:          ctx,
				Timeout:          cfg.ECTimeout,
				NodeLimit:        cfg.ECNodeLimit,
				UpToGlobalPhase:  cfg.UpToGlobalPhase,
				OutputPerm:       cfg.OutputPerm,
				Tolerance:        cfg.Tolerance,
				DisableGateCache: cfg.DisableGateCache,
			}))
		},
	}
}

// SATProver wraps the SAT miter.  It only applies to classical reversible
// netlists (and pairs without an output permutation); elsewhere it reports
// StopError and leaves the race to the other provers.
func SATProver(cfg Config) Prover {
	return Prover{
		Name: "sat",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			if cfg.OutputPerm != nil {
				return Outcome{Stop: StopError, Detail: "output permutation unsupported"}
			}
			res, err := ecsat.Check(g1, g2, ecsat.Options{
				ConflictBudget: cfg.SATConflictBudget,
				Context:        ctx,
			})
			if err != nil {
				return Outcome{Stop: StopError, Err: err, Detail: err.Error()}
			}
			out := Outcome{Detail: fmt.Sprintf("%d vars, %d clauses", res.Vars, res.Clauses)}
			switch res.Verdict {
			case ecsat.Equivalent:
				out.Verdict = Equivalent
			case ecsat.NotEquivalent:
				out.Verdict = NotEquivalent
				out.Counterexample = res.Counterexample
			default:
				if res.Cancelled {
					out.Stop = StopCancelled
				} else {
					out.Stop = StopInconclusive
					out.Detail = "conflict budget exhausted"
				}
			}
			return out
		},
	}
}

// ZXProver wraps the ZX-calculus rewriter: sound, incomplete, and only able
// to prove equivalence up to global phase.
func ZXProver(cfg Config) Prover {
	return Prover{
		Name: "zx",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			if cfg.OutputPerm != nil {
				return Outcome{Stop: StopError, Detail: "output permutation unsupported"}
			}
			res, err := zx.CheckCtx(ctx, g1, g2)
			if err != nil {
				return Outcome{Stop: StopError, Err: err, Detail: err.Error()}
			}
			out := Outcome{Detail: fmt.Sprintf("spiders %d -> %d", res.SpidersBefore, res.SpidersAfter)}
			if res.Verdict == zx.EquivalentUpToPhase {
				out.Verdict = EquivalentUpToGlobalPhase
			} else if res.Cancelled {
				out.Stop = StopCancelled
			} else {
				out.Stop = StopInconclusive
			}
			return out
		},
	}
}
