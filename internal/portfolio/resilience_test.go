package portfolio

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/resource"
)

// panickyProver panics unconditionally on every Run.
func panickyProver(name string) Prover {
	return Prover{
		Name: name,
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			panic("injected prover crash")
		},
	}
}

// TestPanickingProverIsIsolated races a crashing prover against a real one:
// the crash must be contained in its report (StopPanicked with a typed
// *resource.PanicError) while the surviving prover still wins.
func TestPanickingProverIsIsolated(t *testing.T) {
	g1, g2 := pairGHZ(t)
	provers := []Prover{panickyProver("boom"), AlternatingProver(Config{})}

	res := Run(context.Background(), g1, g2, provers, Options{})

	if res.Verdict != Equivalent {
		t.Fatalf("verdict = %v, want %v", res.Verdict, Equivalent)
	}
	if res.Winner != "alt" {
		t.Fatalf("winner = %q, want alt", res.Winner)
	}
	crash := res.Reports[0]
	if crash.Stop != StopPanicked {
		t.Fatalf("crashed prover stop = %v, want %v", crash.Stop, StopPanicked)
	}
	var perr *resource.PanicError
	if !errors.As(crash.Err, &perr) {
		t.Fatalf("crashed prover err = %v (%T), want *resource.PanicError", crash.Err, crash.Err)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("PanicError carries no stack trace")
	}
	if crash.Verdict.Definitive() {
		t.Fatalf("crashed prover has definitive verdict %v", crash.Verdict)
	}
}

// TestAllProversPanicStillReturns: even when every prover crashes, Run must
// return an inconclusive result with every report typed, not crash or hang.
func TestAllProversPanicStillReturns(t *testing.T) {
	g1, g2 := pairGHZ(t)
	provers := []Prover{panickyProver("a"), panickyProver("b")}

	res := Run(context.Background(), g1, g2, provers, Options{})

	if res.Verdict != Inconclusive {
		t.Fatalf("verdict = %v, want %v", res.Verdict, Inconclusive)
	}
	for _, rep := range res.Reports {
		if rep.Stop != StopPanicked {
			t.Fatalf("prover %s stop = %v, want %v", rep.Name, rep.Stop, StopPanicked)
		}
		if rep.Err == nil {
			t.Fatalf("prover %s has no error", rep.Name)
		}
	}
}

// TestRetryCrashedDegradedRecovers: a prover that panics on its primary
// configuration but succeeds with the degraded one must deliver the verdict
// on the retry, keep the original crash on record, and be marked Retried.
func TestRetryCrashedDegradedRecovers(t *testing.T) {
	g1, g2 := pairGHZ(t)
	good := AlternatingProver(Config{})
	p := Prover{
		Name: "flaky",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			panic("primary config crash")
		},
		Degraded: good.Run,
	}

	res := Run(context.Background(), g1, g2, []Prover{p}, Options{RetryCrashed: true})

	if res.Verdict != Equivalent {
		t.Fatalf("verdict = %v, want %v", res.Verdict, Equivalent)
	}
	rep := res.Reports[0]
	if !rep.Retried {
		t.Fatal("report not marked Retried")
	}
	if rep.Stop != StopWon {
		t.Fatalf("stop = %v, want %v", rep.Stop, StopWon)
	}
	var perr *resource.PanicError
	if !errors.As(rep.Err, &perr) {
		t.Fatalf("first crash not kept on record: err = %v", rep.Err)
	}
}

// TestRetryCrashedOffByDefault: without RetryCrashed the Degraded fallback
// must not run.
func TestRetryCrashedOffByDefault(t *testing.T) {
	g1, g2 := pairGHZ(t)
	degradedRan := false
	p := Prover{
		Name: "flaky",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			panic("crash")
		},
		Degraded: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			degradedRan = true
			return Outcome{Verdict: Equivalent}
		},
	}

	res := Run(context.Background(), g1, g2, []Prover{p}, Options{})

	if degradedRan {
		t.Fatal("Degraded ran without RetryCrashed")
	}
	if res.Reports[0].Stop != StopPanicked {
		t.Fatalf("stop = %v, want %v", res.Reports[0].Stop, StopPanicked)
	}
	if res.Reports[0].Retried {
		t.Fatal("report marked Retried without a retry")
	}
}

// TestRetryDegradedPanicToo: when the degraded run also crashes, the report
// stays StopPanicked (with the second crash) and still marks the retry.
func TestRetryDegradedPanicToo(t *testing.T) {
	g1, g2 := pairGHZ(t)
	p := Prover{
		Name: "doubly-flaky",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			panic("primary crash")
		},
		Degraded: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			panic("degraded crash")
		},
	}

	res := Run(context.Background(), g1, g2, []Prover{p}, Options{RetryCrashed: true})

	rep := res.Reports[0]
	if rep.Stop != StopPanicked {
		t.Fatalf("stop = %v, want %v", rep.Stop, StopPanicked)
	}
	if !rep.Retried {
		t.Fatal("report not marked Retried")
	}
	var perr *resource.PanicError
	if !errors.As(rep.Err, &perr) {
		t.Fatalf("err = %v, want *resource.PanicError", rep.Err)
	}
}

// TestNoGoroutineLeakAfterCrashes: repeated races with crashing and retried
// provers must not leak goroutines.
func TestNoGoroutineLeakAfterCrashes(t *testing.T) {
	g1, g2 := pairGHZ(t)
	good := AlternatingProver(Config{})
	flaky := Prover{
		Name: "flaky",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			panic("crash")
		},
		Degraded: good.Run,
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		Run(context.Background(), g1, g2, []Prover{flaky, good}, Options{
			RetryCrashed: true,
			MemHardLimit: 64 << 30, // watchdog active but never tripping
		})
	}
	// Give cancelled timers/tickers a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d — leak", before, runtime.NumGoroutine())
}

// TestMemLimitRaceReports: with a hard limit below the process's current
// heap, the shared watchdog must cancel the race and cancelled provers must
// be reported as StopMemLimit with the typed cause attached.
func TestMemLimitRaceReports(t *testing.T) {
	g1, g2 := pairGHZ(t)
	done := make(chan struct{})
	provers := []Prover{hungProver(done)}

	res := Run(context.Background(), g1, g2, provers, Options{
		MemHardLimit: 1, // below any live heap: trips on the first sample
		Timeout:      30 * time.Second,
	})

	if res.Verdict != Inconclusive {
		t.Fatalf("verdict = %v, want %v", res.Verdict, Inconclusive)
	}
	rep := res.Reports[0]
	if rep.Stop != StopMemLimit {
		t.Fatalf("stop = %v, want %v", rep.Stop, StopMemLimit)
	}
	var mle *resource.MemoryLimitError
	if !errors.As(rep.Err, &mle) {
		t.Fatalf("err = %v (%T), want *resource.MemoryLimitError", rep.Err, rep.Err)
	}
	if mle.HeapBytes == 0 {
		t.Fatal("MemoryLimitError has zero HeapBytes")
	}
	if res.Mem == nil {
		t.Fatal("Result.Mem not populated by the race's watchdog")
	}
	if res.Mem.HardTrips == 0 {
		t.Fatal("watchdog stats record no hard trip")
	}
}
