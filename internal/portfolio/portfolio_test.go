package portfolio

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/decompose"
	"qcec/internal/ec"
	"qcec/internal/errinject"
	"qcec/internal/qasm"
	"qcec/internal/revlib"
)

func pairGHZ(t *testing.T) (*circuit.Circuit, *circuit.Circuit) {
	t.Helper()
	g := circuit.New(3, "ghz3")
	g.Add(circuit.Gate{Kind: circuit.H, Target: 0, Target2: -1})
	g.Add(circuit.Gate{Kind: circuit.X, Target: 1, Target2: -1, Controls: []circuit.Control{{Qubit: 0}}})
	g.Add(circuit.Gate{Kind: circuit.X, Target: 2, Target2: -1, Controls: []circuit.Control{{Qubit: 1}}})
	return g, g.Clone()
}

// hungProver blocks until the engine cancels it, then reports how it
// stopped; done is closed once the prover has observed the cancellation.
func hungProver(done chan<- struct{}) Prover {
	return Prover{
		Name: "hung",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			<-ctx.Done()
			close(done)
			return Outcome{Stop: StopCancelled, Detail: ctx.Err().Error()}
		},
	}
}

// TestHungProverDoesNotDelayWinner races a real prover against a prover
// that blocks until cancelled: the winner's verdict must arrive promptly and
// the hung prover must observe ctx.Done within the test budget.
func TestHungProverDoesNotDelayWinner(t *testing.T) {
	g1, g2 := pairGHZ(t)
	done := make(chan struct{})
	provers := []Prover{hungProver(done), AlternatingProver(Config{})}

	start := time.Now()
	res := Run(context.Background(), g1, g2, provers, Options{})
	elapsed := time.Since(start)

	if res.Verdict != Equivalent {
		t.Fatalf("verdict = %v, want %v", res.Verdict, Equivalent)
	}
	if res.Winner != "alt" {
		t.Fatalf("winner = %q, want alt", res.Winner)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("race took %v; hung prover delayed the winner", elapsed)
	}
	select {
	case <-done:
	default:
		t.Fatal("hung prover never observed ctx.Done()")
	}
	if got := res.Reports[0]; got.Stop != StopCancelled {
		t.Fatalf("hung prover stop = %v, want %v", got.Stop, StopCancelled)
	}
	if got := res.Reports[1]; got.Stop != StopWon {
		t.Fatalf("winning prover stop = %v, want %v", got.Stop, StopWon)
	}
}

// TestPortfolioTimeout distinguishes the engine's own deadline from
// lost-the-race cancellation: with no winner, a cancelled prover must be
// reported as timeout.
func TestPortfolioTimeout(t *testing.T) {
	g1, g2 := pairGHZ(t)
	done := make(chan struct{})
	res := Run(context.Background(), g1, g2, []Prover{hungProver(done)},
		Options{Timeout: 50 * time.Millisecond})
	if res.Verdict.Definitive() {
		t.Fatalf("verdict = %v, want inconclusive", res.Verdict)
	}
	if res.Winner != "" {
		t.Fatalf("winner = %q, want none", res.Winner)
	}
	if got := res.Reports[0].Stop; got != StopTimeout {
		t.Fatalf("stop = %v, want %v (engine deadline, not a lost race)", got, StopTimeout)
	}
}

// deepRandomPair returns a heavily entangling non-Clifford circuit and a
// copy with an injected bit-flip — an instance where simulation (vector DDs)
// answers quickly while constructing the full unitary DD is hopeless.
func deepRandomPair() (*circuit.Circuit, *circuit.Circuit) {
	const n, gates = 11, 160
	rng := rand.New(rand.NewSource(42))
	g := circuit.New(n, "deep_random")
	for i := 0; i < gates; i++ {
		switch rng.Intn(3) {
		case 0:
			g.Add(circuit.Gate{Kind: circuit.H, Target: rng.Intn(n), Target2: -1})
		case 1:
			g.Add(circuit.Gate{Kind: circuit.T, Target: rng.Intn(n), Target2: -1})
		default:
			c := rng.Intn(n)
			x := rng.Intn(n - 1)
			if x >= c {
				x++
			}
			g.Add(circuit.Gate{Kind: circuit.X, Target: x, Target2: -1,
				Controls: []circuit.Control{{Qubit: c}}})
		}
	}
	gp := g.Clone()
	gp.Add(circuit.Gate{Kind: circuit.X, Target: 0, Target2: -1})
	return g, gp
}

// TestSimWinsAndSlowProversAreCancelled is the acceptance scenario: on a
// non-equivalent instance whose complete check is intractable, the portfolio
// must return the simulation prefilter's counterexample while the DD provers
// are recorded as cancelled — not as having reached their private timeouts.
func TestSimWinsAndSlowProversAreCancelled(t *testing.T) {
	g, gp := deepRandomPair()
	cfg := Config{R: 2, Seed: 7, ECTimeout: 10 * time.Minute}
	provers := []Prover{SimProver(cfg), DDProver(cfg), AlternatingProver(cfg)}

	res := Run(context.Background(), g, gp, provers, Options{})
	if res.Verdict != NotEquivalent {
		t.Fatalf("verdict = %v, want %v", res.Verdict, NotEquivalent)
	}
	if res.Winner != "sim" {
		t.Fatalf("winner = %q, want sim (reports: %+v)", res.Winner, res.Reports)
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample from the sim prefilter")
	}
	for _, r := range res.Reports[1:] {
		if r.Stop != StopCancelled {
			t.Fatalf("prover %s stop = %v, want %v (report: %+v)", r.Name, r.Stop, StopCancelled, r)
		}
	}
}

// loadCircuit reads a .qasm or .real seed benchmark.
func loadCircuit(t *testing.T, path string) *circuit.Circuit {
	t.Helper()
	if strings.HasSuffix(path, ".real") {
		f, err := revlib.ParseFile(path)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		return f.Circuit
	}
	prog, err := qasm.ParseFile(path)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return prog.Circuit
}

// TestPortfolioMatchesSingleStrategy checks, on the seed benchmark circuits
// and error-injected variants, that the portfolio verdict agrees with the
// single-strategy complete check.
func TestPortfolioMatchesSingleStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark sweep")
	}
	files := []string{"ghz5.qasm", "grover4_cx.qasm", "qft8.qasm", "hwb5.real", "inc6.real"}
	for _, f := range files {
		g := loadCircuit(t, filepath.Join("..", "..", "circuits", f))
		gp := decompose.Circuit(g, decompose.LevelCX)
		buggy, _, err := errinject.InjectAny(gp, 3)
		if err != nil {
			t.Fatalf("%s: inject: %v", f, err)
		}
		for _, tc := range []struct {
			label string
			g2    *circuit.Circuit
		}{{"decomposed", gp}, {"injected", buggy}} {
			single := ec.Check(g, tc.g2, ec.Options{
				Strategy:        ec.Proportional,
				UpToGlobalPhase: true,
				Timeout:         2 * time.Minute,
			})
			if single.Verdict == ec.TimedOut {
				t.Fatalf("%s/%s: single-strategy check timed out", f, tc.label)
			}
			cfg := Config{Seed: 11, UpToGlobalPhase: true, ECTimeout: 2 * time.Minute}
			provers, err := FromNames([]string{"sim", "dd", "alt", "sat", "zx"}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := Run(context.Background(), g, tc.g2, provers, Options{})
			wantEq := single.Verdict == ec.Equivalent || single.Verdict == ec.EquivalentUpToGlobalPhase
			gotEq := res.Verdict == Equivalent || res.Verdict == EquivalentUpToGlobalPhase
			if !res.Verdict.Definitive() || gotEq != wantEq {
				t.Errorf("%s/%s: portfolio %v (winner %s) vs single-strategy %v",
					f, tc.label, res.Verdict, res.Winner, single.Verdict)
			}
		}
	}
}

// TestFromNamesRejectsUnknown covers the CLI-facing prover selection.
func TestFromNamesRejectsUnknown(t *testing.T) {
	if _, err := FromNames([]string{"sim", "bogus"}, Config{}); err == nil {
		t.Fatal("unknown prover name accepted")
	}
	if _, err := FromNames(nil, Config{}); err == nil {
		t.Fatal("empty prover list accepted")
	}
	provers, err := FromNames([]string{" sim", "zx "}, Config{})
	if err != nil || len(provers) != 2 {
		t.Fatalf("trimmed names: provers=%d err=%v", len(provers), err)
	}
}

// TestAllInconclusive: with no definitive prover the race ends inconclusive
// and per-prover reports survive.
func TestAllInconclusive(t *testing.T) {
	g1, g2 := pairGHZ(t)
	idle := Prover{
		Name: "idle",
		Run: func(ctx context.Context, g1, g2 *circuit.Circuit) Outcome {
			return Outcome{Stop: StopInconclusive, Detail: "gave up"}
		},
	}
	res := Run(context.Background(), g1, g2, []Prover{idle, idle}, Options{})
	if res.Verdict.Definitive() || res.Winner != "" {
		t.Fatalf("result = %+v, want inconclusive", res)
	}
	if len(res.Reports) != 2 || res.Reports[0].Detail != "gave up" {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

// TestGateCostProverSelfSelects: the gate-cost prover declines pairs without
// a cost profile or compilation blow-up, runs compiled-looking pairs with
// the static estimate, and uses a supplied profile directly.
func TestGateCostProverSelfSelects(t *testing.T) {
	ctx := context.Background()

	// Similar-length pair, no profile: decline so the plain alternating
	// prover keeps it.
	g1, g2 := pairGHZ(t)
	out := GateCostProver(Config{}).Run(ctx, g1, g2)
	if out.Stop != StopError {
		t.Fatalf("uncompiled pair: stop = %v, want decline", out.Stop)
	}

	// Compilation-shaped pair (lowered Toffoli blows up g2): accepted via
	// the static estimate.
	src := circuit.New(3, "ccx")
	src.CCX(0, 1, 2)
	lowered := decompose.Circuit(src, decompose.LevelCX)
	out = GateCostProver(Config{ECTimeout: 10 * time.Second}).Run(ctx, src, lowered)
	if out.Verdict != Equivalent {
		t.Fatalf("compiled pair: verdict = %v (stop %v, detail %q)", out.Verdict, out.Stop, out.Detail)
	}

	// An explicit profile overrides the shape heuristic.
	lowered2, profile := decompose.WithProfile(src, decompose.LevelCX)
	out = GateCostProver(Config{CostProfile: profile, ECTimeout: 10 * time.Second}).Run(ctx, src, lowered2)
	if out.Verdict != Equivalent {
		t.Fatalf("profiled pair: verdict = %v (stop %v)", out.Verdict, out.Stop)
	}
}
