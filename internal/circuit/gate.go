// Package circuit provides the quantum-circuit intermediate representation
// shared by every stage of the reproduced design flow: benchmark generation,
// decomposition, mapping, optimization, simulation and equivalence checking.
//
// A circuit is a sequence of gates on a fixed register.  Each gate is a
// single-qubit operation with an arbitrary set of (possibly negative)
// controls, or a SWAP (also controllable, giving Fredkin gates).  This is
// exactly the gate model of the paper's Sec. II: arbitrary single-qubit
// operations plus controlled operations, which together are universal.
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"
)

// Kind enumerates the built-in gate types.
type Kind int

// Built-in gate kinds.  Rotation kinds take parameters (see Gate.Params);
// Custom carries an explicit 2x2 matrix.
const (
	I Kind = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	SX
	SXdg
	RX
	RY
	RZ
	P
	U2
	U3
	SWAP
	Custom
)

var kindNames = map[Kind]string{
	I: "id", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", SX: "sx", SXdg: "sxdg",
	RX: "rx", RY: "ry", RZ: "rz", P: "p", U2: "u2", U3: "u3",
	SWAP: "swap", Custom: "unitary",
}

// String returns the lower-case OpenQASM-style name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NumParams returns how many real parameters the kind requires.
func (k Kind) NumParams() int {
	switch k {
	case RX, RY, RZ, P:
		return 1
	case U2:
		return 2
	case U3:
		return 3
	default:
		return 0
	}
}

// Control designates a control qubit; Neg selects the |0> branch (a negative
// control, as used by RevLib netlists).
type Control struct {
	Qubit int
	Neg   bool
}

// Gate is one operation of a circuit: a single-qubit operation of the given
// Kind applied to Target under the given Controls, or a SWAP of Target and
// Target2.  Custom gates carry their matrix in Mat.
type Gate struct {
	Kind     Kind
	Target   int
	Target2  int // second target for SWAP; -1 otherwise
	Controls []Control
	Params   []float64
	Mat      [2][2]complex128 // only for Kind == Custom
	Label    string           // optional provenance note (Custom gates)
}

// Matrix returns the 2x2 matrix of the gate's single-qubit operation.
// It panics for SWAP gates, which have no single 2x2 representation.
func (g Gate) Matrix() [2][2]complex128 {
	switch g.Kind {
	case I:
		return [2][2]complex128{{1, 0}, {0, 1}}
	case X:
		return [2][2]complex128{{0, 1}, {1, 0}}
	case Y:
		return [2][2]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}}
	case Z:
		return [2][2]complex128{{1, 0}, {0, -1}}
	case H:
		s := complex(1/math.Sqrt2, 0)
		return [2][2]complex128{{s, s}, {s, -s}}
	case S:
		return [2][2]complex128{{1, 0}, {0, complex(0, 1)}}
	case Sdg:
		return [2][2]complex128{{1, 0}, {0, complex(0, -1)}}
	case T:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}
	case Tdg:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, -math.Pi/4))}}
	case SX:
		return [2][2]complex128{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)},
		}
	case SXdg:
		return [2][2]complex128{
			{complex(0.5, -0.5), complex(0.5, 0.5)},
			{complex(0.5, 0.5), complex(0.5, -0.5)},
		}
	case RX:
		c := complex(math.Cos(g.Params[0]/2), 0)
		s := complex(0, -math.Sin(g.Params[0]/2))
		return [2][2]complex128{{c, s}, {s, c}}
	case RY:
		c := complex(math.Cos(g.Params[0]/2), 0)
		s := complex(math.Sin(g.Params[0]/2), 0)
		return [2][2]complex128{{c, -s}, {s, c}}
	case RZ:
		em := cmplx.Exp(complex(0, -g.Params[0]/2))
		ep := cmplx.Exp(complex(0, g.Params[0]/2))
		return [2][2]complex128{{em, 0}, {0, ep}}
	case P:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, g.Params[0]))}}
	case U2:
		phi, lam := g.Params[0], g.Params[1]
		s := complex(1/math.Sqrt2, 0)
		return [2][2]complex128{
			{s, -s * cmplx.Exp(complex(0, lam))},
			{s * cmplx.Exp(complex(0, phi)), s * cmplx.Exp(complex(0, phi+lam))},
		}
	case U3:
		theta, phi, lam := g.Params[0], g.Params[1], g.Params[2]
		c := complex(math.Cos(theta/2), 0)
		s := complex(math.Sin(theta/2), 0)
		return [2][2]complex128{
			{c, -s * cmplx.Exp(complex(0, lam))},
			{s * cmplx.Exp(complex(0, phi)), c * cmplx.Exp(complex(0, phi+lam))},
		}
	case Custom:
		return g.Mat
	case SWAP:
		panic("circuit: SWAP has no 2x2 matrix; decompose first")
	default:
		panic(fmt.Sprintf("circuit: unknown gate kind %v", g.Kind))
	}
}

// Inverse returns the gate realizing the adjoint operation on the same
// qubits.
func (g Gate) Inverse() Gate {
	inv := g
	switch g.Kind {
	case I, X, Y, Z, H, SWAP:
		// self-inverse
	case S:
		inv.Kind = Sdg
	case Sdg:
		inv.Kind = S
	case T:
		inv.Kind = Tdg
	case Tdg:
		inv.Kind = T
	case SX:
		inv.Kind = SXdg
	case SXdg:
		inv.Kind = SX
	case RX, RY, RZ, P:
		inv.Params = []float64{-g.Params[0]}
	case U2:
		// U2(phi, lam)^-1 = U3(-pi/2, -lam, -phi)
		inv.Kind = U3
		inv.Params = []float64{-math.Pi / 2, -g.Params[1], -g.Params[0]}
	case U3:
		inv.Params = []float64{-g.Params[0], -g.Params[2], -g.Params[1]}
	case Custom:
		m := g.Mat
		inv.Mat = [2][2]complex128{
			{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
			{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
		}
	default:
		panic(fmt.Sprintf("circuit: cannot invert gate kind %v", g.Kind))
	}
	return inv
}

// Qubits returns all qubits the gate touches (targets then controls),
// sorted.
func (g Gate) Qubits() []int {
	qs := []int{g.Target}
	if g.Kind == SWAP {
		qs = append(qs, g.Target2)
	}
	for _, c := range g.Controls {
		qs = append(qs, c.Qubit)
	}
	sort.Ints(qs)
	return qs
}

// String renders the gate in OpenQASM-like syntax.
func (g Gate) String() string {
	var b strings.Builder
	for range g.Controls {
		b.WriteByte('c')
	}
	b.WriteString(g.Kind.String())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	first := true
	for _, c := range g.Controls {
		if !first {
			b.WriteByte(',')
		}
		first = false
		if c.Neg {
			b.WriteByte('!')
		}
		fmt.Fprintf(&b, "q[%d]", c.Qubit)
	}
	if !first {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "q[%d]", g.Target)
	if g.Kind == SWAP {
		fmt.Fprintf(&b, ",q[%d]", g.Target2)
	}
	return b.String()
}

// Equal reports structural equality of two gates (same kind, qubits,
// parameters and matrix).
func (g Gate) Equal(o Gate) bool {
	if g.Kind != o.Kind || g.Target != o.Target || g.Target2 != o.Target2 {
		return false
	}
	if len(g.Controls) != len(o.Controls) || len(g.Params) != len(o.Params) {
		return false
	}
	ac, bc := append([]Control(nil), g.Controls...), append([]Control(nil), o.Controls...)
	sortControls(ac)
	sortControls(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	for i := range g.Params {
		if g.Params[i] != o.Params[i] {
			return false
		}
	}
	return g.Kind != Custom || g.Mat == o.Mat
}

func sortControls(cs []Control) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Qubit < cs[j].Qubit })
}
