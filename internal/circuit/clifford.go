package circuit

import (
	"fmt"
	"math"
)

// This file is the gate-set analyzer behind the stabilizer fast path: it
// decides, in one pass and without allocating per gate, whether a circuit is
// built entirely from Clifford gates, and lowers each such gate to one of
// the canonical generators the tableau backend (internal/stab) implements.
//
// Exact members: H, S, S†, X, Y, Z, SX, SX†, CX, CZ, SWAP (no controls
// beyond the single positive control that makes CX/CZ, no negative
// controls).  Parameterized rotations RX/RY/RZ/P count as Clifford exactly
// when their angle sits on a multiple of π/2 — within a tolerance derived
// from the checker's weight tolerance, never hardcoded, so coarsening or
// tightening Options.Tolerance moves the routing decision consistently with
// the equivalence criterion itself (the same derivation discipline as
// core's agreementTolerance).

// CliffordOp enumerates the canonical Clifford generators the stabilizer
// backend applies directly.  RY90/RY270 are the ±π/2 Y-rotations, which are
// Clifford but not among the named gate kinds (RY(π/2) = X·H, RY(-π/2) =
// H·X up to global phase).
type CliffordOp int

// Canonical Clifford generators.
const (
	CliffI CliffordOp = iota
	CliffX
	CliffY
	CliffZ
	CliffH
	CliffS
	CliffSdg
	CliffSX
	CliffSXdg
	CliffRY90
	CliffRY270
	CliffCX
	CliffCZ
	CliffSwap
)

// String returns the generator name.
func (op CliffordOp) String() string {
	switch op {
	case CliffI:
		return "I"
	case CliffX:
		return "X"
	case CliffY:
		return "Y"
	case CliffZ:
		return "Z"
	case CliffH:
		return "H"
	case CliffS:
		return "S"
	case CliffSdg:
		return "Sdg"
	case CliffSX:
		return "SX"
	case CliffSXdg:
		return "SXdg"
	case CliffRY90:
		return "RY90"
	case CliffRY270:
		return "RY270"
	case CliffCX:
		return "CX"
	case CliffCZ:
		return "CZ"
	case CliffSwap:
		return "SWAP"
	default:
		return fmt.Sprintf("cliffordop(%d)", int(op))
	}
}

// CliffordGate is a circuit gate lowered to a canonical generator.  Q1 is
// the second qubit of two-qubit generators (the target of CX, the second
// wire of CZ/SWAP) and -1 otherwise.
type CliffordGate struct {
	Op CliffordOp
	Q0 int
	Q1 int
}

// Inverse returns the generator realizing the inverse gate.
func (g CliffordGate) Inverse() CliffordGate {
	switch g.Op {
	case CliffS:
		g.Op = CliffSdg
	case CliffSdg:
		g.Op = CliffS
	case CliffSX:
		g.Op = CliffSXdg
	case CliffSXdg:
		g.Op = CliffSX
	case CliffRY90:
		g.Op = CliffRY270
	case CliffRY270:
		g.Op = CliffRY90
	}
	return g
}

// CliffordAngleTolerance derives the rotation-angle snap tolerance of the
// analyzer from the DD weight tolerance (0 = the package default 1e-10).
// Weight round-off compounds over the gate sequence exactly as it does for
// state agreement, so the angle bound sits four orders of magnitude above
// the interning tolerance — at the default weight tolerance this is 1e-6
// radians — and is capped at 1e-3 so a coarse custom tolerance can never
// snap a genuinely non-Clifford rotation onto the fast path.
func CliffordAngleTolerance(weightTol float64) float64 {
	if weightTol == 0 {
		weightTol = 1e-10
	}
	tol := weightTol * 1e4
	if tol > 1e-3 {
		tol = 1e-3
	}
	return tol
}

// quarterTurns snaps an angle to its nearest multiple of π/2 and reports
// that multiple mod 4, or ok=false when the angle is farther than angleTol
// from every multiple.
func quarterTurns(theta, angleTol float64) (int, bool) {
	k := math.Round(theta / (math.Pi / 2))
	if math.Abs(theta-k*(math.Pi/2)) > angleTol {
		return 0, false
	}
	m := int(math.Mod(k, 4))
	if m < 0 {
		m += 4
	}
	return m, true
}

// AsClifford lowers a gate to a canonical Clifford generator.  ok=false
// means the gate is outside the Clifford set this analyzer certifies:
// non-Clifford kinds (T, U2, U3, Custom, ...), any negative or multiple
// control, or a rotation whose angle is off every π/2 multiple by more than
// angleTol (see CliffordAngleTolerance).
func AsClifford(g Gate, angleTol float64) (CliffordGate, bool) {
	no := CliffordGate{}
	switch len(g.Controls) {
	case 0:
	case 1:
		if g.Controls[0].Neg {
			return no, false
		}
		switch g.Kind {
		case X:
			return CliffordGate{Op: CliffCX, Q0: g.Controls[0].Qubit, Q1: g.Target}, true
		case Z:
			return CliffordGate{Op: CliffCZ, Q0: g.Controls[0].Qubit, Q1: g.Target}, true
		}
		return no, false
	default:
		return no, false
	}
	out := CliffordGate{Q0: g.Target, Q1: -1}
	switch g.Kind {
	case I:
		out.Op = CliffI
	case X:
		out.Op = CliffX
	case Y:
		out.Op = CliffY
	case Z:
		out.Op = CliffZ
	case H:
		out.Op = CliffH
	case S:
		out.Op = CliffS
	case Sdg:
		out.Op = CliffSdg
	case SX:
		out.Op = CliffSX
	case SXdg:
		out.Op = CliffSXdg
	case SWAP:
		out.Q1 = g.Target2
		out.Op = CliffSwap
	case RZ, P:
		m, ok := quarterTurns(g.Params[0], angleTol)
		if !ok {
			return no, false
		}
		out.Op = [4]CliffordOp{CliffI, CliffS, CliffZ, CliffSdg}[m]
	case RX:
		m, ok := quarterTurns(g.Params[0], angleTol)
		if !ok {
			return no, false
		}
		out.Op = [4]CliffordOp{CliffI, CliffSX, CliffX, CliffSXdg}[m]
	case RY:
		m, ok := quarterTurns(g.Params[0], angleTol)
		if !ok {
			return no, false
		}
		out.Op = [4]CliffordOp{CliffI, CliffRY90, CliffY, CliffRY270}[m]
	default:
		return no, false
	}
	return out, true
}

// IsClifford reports whether every gate of the circuit lowers to a
// canonical Clifford generator.  It is a single early-exit pass with no
// allocation — the whole cost a non-Clifford pair pays for the stabilizer
// routing decision.
func IsClifford(c *Circuit, angleTol float64) bool {
	for _, g := range c.Gates {
		if _, ok := AsClifford(g, angleTol); !ok {
			return false
		}
	}
	return true
}

// LowerClifford lowers a whole circuit to canonical generators.  On the
// first non-Clifford gate it stops and returns its index with ok=false
// (badIdx is -1 when ok).
func LowerClifford(c *Circuit, angleTol float64) (ops []CliffordGate, badIdx int, ok bool) {
	ops = make([]CliffordGate, 0, len(c.Gates))
	for i, g := range c.Gates {
		cg, ok := AsClifford(g, angleTol)
		if !ok {
			return nil, i, false
		}
		ops = append(ops, cg)
	}
	return ops, -1, true
}
