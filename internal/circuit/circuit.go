package circuit

import (
	"fmt"
	"strings"
)

// Circuit is a sequence of gates on a register of N qubits.
type Circuit struct {
	N     int
	Name  string
	Gates []Gate
}

// New creates an empty circuit on n qubits.
func New(n int, name string) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: invalid qubit count %d", n))
	}
	return &Circuit{N: n, Name: name}
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{N: c.N, Name: c.Name, Gates: make([]Gate, len(c.Gates))}
	copy(out.Gates, c.Gates)
	for i := range out.Gates {
		if len(out.Gates[i].Controls) > 0 {
			out.Gates[i].Controls = append([]Control(nil), out.Gates[i].Controls...)
		}
		if len(out.Gates[i].Params) > 0 {
			out.Gates[i].Params = append([]float64(nil), out.Gates[i].Params...)
		}
	}
	return out
}

// Add appends a gate after validating it against the register; invalid
// gates panic (builder misuse is a programming error).  Parsers handling
// untrusted input use TryAdd instead.
func (c *Circuit) Add(g Gate) *Circuit {
	if err := c.TryAdd(g); err != nil {
		panic("circuit: " + err.Error())
	}
	return c
}

// TryAdd appends a gate, returning an error instead of panicking when the
// gate is malformed.
func (c *Circuit) TryAdd(g Gate) error {
	if err := c.validateGate(g); err != nil {
		return err
	}
	c.Gates = append(c.Gates, g)
	return nil
}

func (c *Circuit) validateGate(g Gate) error {
	check := func(q int) error {
		if q < 0 || q >= c.N {
			return fmt.Errorf("qubit %d out of range [0,%d)", q, c.N)
		}
		return nil
	}
	if err := check(g.Target); err != nil {
		return err
	}
	used := map[int]bool{g.Target: true}
	if g.Kind == SWAP {
		if err := check(g.Target2); err != nil {
			return err
		}
		if used[g.Target2] {
			return fmt.Errorf("SWAP targets coincide on qubit %d", g.Target2)
		}
		used[g.Target2] = true
	} else if g.Target2 != 0 && g.Target2 != -1 {
		return fmt.Errorf("gate %v must not set Target2", g.Kind)
	}
	for _, ctl := range g.Controls {
		if err := check(ctl.Qubit); err != nil {
			return err
		}
		if used[ctl.Qubit] {
			return fmt.Errorf("qubit %d used twice in one gate", ctl.Qubit)
		}
		used[ctl.Qubit] = true
	}
	if want := g.Kind.NumParams(); len(g.Params) != want {
		return fmt.Errorf("gate %v requires %d parameters, got %d", g.Kind, want, len(g.Params))
	}
	return nil
}

// Validate checks every gate of the circuit against the register.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if err := c.validateGate(g); err != nil {
			return fmt.Errorf("gate %d (%s): %w", i, g, err)
		}
	}
	return nil
}

func oneQ(k Kind, t int, params ...float64) Gate {
	return Gate{Kind: k, Target: t, Target2: -1, Params: params}
}

// The fluent builder methods below append common gates.

// X appends a NOT gate.
func (c *Circuit) X(t int) *Circuit { return c.Add(oneQ(X, t)) }

// Y appends a Pauli-Y gate.
func (c *Circuit) Y(t int) *Circuit { return c.Add(oneQ(Y, t)) }

// Z appends a Pauli-Z gate.
func (c *Circuit) Z(t int) *Circuit { return c.Add(oneQ(Z, t)) }

// H appends a Hadamard gate.
func (c *Circuit) H(t int) *Circuit { return c.Add(oneQ(H, t)) }

// S appends a phase gate S.
func (c *Circuit) S(t int) *Circuit { return c.Add(oneQ(S, t)) }

// Sdg appends the adjoint phase gate.
func (c *Circuit) Sdg(t int) *Circuit { return c.Add(oneQ(Sdg, t)) }

// T appends a T gate.
func (c *Circuit) T(t int) *Circuit { return c.Add(oneQ(T, t)) }

// Tdg appends the adjoint T gate.
func (c *Circuit) Tdg(t int) *Circuit { return c.Add(oneQ(Tdg, t)) }

// SX appends a square-root-of-X gate.
func (c *Circuit) SX(t int) *Circuit { return c.Add(oneQ(SX, t)) }

// RX appends an X rotation.
func (c *Circuit) RX(theta float64, t int) *Circuit { return c.Add(oneQ(RX, t, theta)) }

// RY appends a Y rotation.
func (c *Circuit) RY(theta float64, t int) *Circuit { return c.Add(oneQ(RY, t, theta)) }

// RZ appends a Z rotation.
func (c *Circuit) RZ(theta float64, t int) *Circuit { return c.Add(oneQ(RZ, t, theta)) }

// Phase appends a phase gate P(lambda).
func (c *Circuit) Phase(lambda float64, t int) *Circuit { return c.Add(oneQ(P, t, lambda)) }

// U3 appends a generic single-qubit rotation U3(theta, phi, lambda).
func (c *Circuit) U3(theta, phi, lambda float64, t int) *Circuit {
	return c.Add(oneQ(U3, t, theta, phi, lambda))
}

// CX appends a controlled-NOT gate.
func (c *Circuit) CX(ctl, t int) *Circuit {
	return c.Add(Gate{Kind: X, Target: t, Target2: -1, Controls: []Control{{Qubit: ctl}}})
}

// CZ appends a controlled-Z gate.
func (c *Circuit) CZ(ctl, t int) *Circuit {
	return c.Add(Gate{Kind: Z, Target: t, Target2: -1, Controls: []Control{{Qubit: ctl}}})
}

// CPhase appends a controlled phase gate (the QFT workhorse).
func (c *Circuit) CPhase(lambda float64, ctl, t int) *Circuit {
	return c.Add(Gate{Kind: P, Target: t, Target2: -1, Params: []float64{lambda}, Controls: []Control{{Qubit: ctl}}})
}

// CCX appends a Toffoli gate.
func (c *Circuit) CCX(c1, c2, t int) *Circuit {
	return c.Add(Gate{Kind: X, Target: t, Target2: -1, Controls: []Control{{Qubit: c1}, {Qubit: c2}}})
}

// MCX appends a multi-controlled NOT gate.
func (c *Circuit) MCX(controls []int, t int) *Circuit {
	cs := make([]Control, len(controls))
	for i, q := range controls {
		cs[i] = Control{Qubit: q}
	}
	return c.Add(Gate{Kind: X, Target: t, Target2: -1, Controls: cs})
}

// MCXNeg appends a multi-controlled NOT with explicit control polarities.
func (c *Circuit) MCXNeg(controls []Control, t int) *Circuit {
	return c.Add(Gate{Kind: X, Target: t, Target2: -1, Controls: append([]Control(nil), controls...)})
}

// MCZ appends a multi-controlled Z gate.
func (c *Circuit) MCZ(controls []int, t int) *Circuit {
	cs := make([]Control, len(controls))
	for i, q := range controls {
		cs[i] = Control{Qubit: q}
	}
	return c.Add(Gate{Kind: Z, Target: t, Target2: -1, Controls: cs})
}

// Swap appends a SWAP gate.
func (c *Circuit) Swap(a, b int) *Circuit {
	return c.Add(Gate{Kind: SWAP, Target: a, Target2: b})
}

// CSwap appends a Fredkin (controlled-SWAP) gate.
func (c *Circuit) CSwap(ctl, a, b int) *Circuit {
	return c.Add(Gate{Kind: SWAP, Target: a, Target2: b, Controls: []Control{{Qubit: ctl}}})
}

// Append concatenates another circuit (which must act on the same register
// size) onto this one.
func (c *Circuit) Append(other *Circuit) *Circuit {
	if other.N != c.N {
		panic(fmt.Sprintf("circuit: appending %d-qubit circuit to %d-qubit circuit", other.N, c.N))
	}
	for _, g := range other.Gates {
		c.Add(g)
	}
	return c
}

// Inverse returns the circuit realizing the adjoint operation: gates
// reversed and individually inverted.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.N, c.Name+"_inv")
	for i := len(c.Gates) - 1; i >= 0; i-- {
		out.Add(c.Gates[i].Inverse())
	}
	return out
}

// NumGates returns the gate count |G| as reported in the paper's tables.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Depth returns the circuit depth (number of parallel layers).
func (c *Circuit) Depth() int {
	frontier := make([]int, c.N)
	depth := 0
	for _, g := range c.Gates {
		layer := 0
		for _, q := range g.Qubits() {
			if frontier[q] > layer {
				layer = frontier[q]
			}
		}
		layer++
		for _, q := range g.Qubits() {
			frontier[q] = layer
		}
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// GateCounts returns a histogram of gate kinds with the control count folded
// into the key (e.g. "cx", "ccx", "h").
func (c *Circuit) GateCounts() map[string]int {
	counts := make(map[string]int)
	for _, g := range c.Gates {
		key := strings.Repeat("c", len(g.Controls)) + g.Kind.String()
		counts[key]++
	}
	return counts
}

// TwoQubitGates returns the number of gates touching two or more qubits.
func (c *Circuit) TwoQubitGates() int {
	n := 0
	for _, g := range c.Gates {
		if len(g.Qubits()) >= 2 {
			n++
		}
	}
	return n
}

// MaxControls returns the largest control count of any gate.
func (c *Circuit) MaxControls() int {
	m := 0
	for _, g := range c.Gates {
		if len(g.Controls) > m {
			m = len(g.Controls)
		}
	}
	return m
}

// String renders the circuit as one gate per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: %d qubits, %d gates\n", c.Name, c.N, len(c.Gates))
	for _, g := range c.Gates {
		b.WriteString(g.String())
		b.WriteString(";\n")
	}
	return b.String()
}
