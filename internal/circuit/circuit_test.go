package circuit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mat2Unitary(u [2][2]complex128, tol float64) bool {
	// u * u† = I
	conj := func(c complex128) complex128 { return cmplx.Conj(c) }
	e00 := u[0][0]*conj(u[0][0]) + u[0][1]*conj(u[0][1])
	e01 := u[0][0]*conj(u[1][0]) + u[0][1]*conj(u[1][1])
	e10 := u[1][0]*conj(u[0][0]) + u[1][1]*conj(u[0][1])
	e11 := u[1][0]*conj(u[1][0]) + u[1][1]*conj(u[1][1])
	return cmplx.Abs(e00-1) < tol && cmplx.Abs(e11-1) < tol &&
		cmplx.Abs(e01) < tol && cmplx.Abs(e10) < tol
}

func mat2Mul(a, b [2][2]complex128) [2][2]complex128 {
	var r [2][2]complex128
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return r
}

func mat2IsIdentity(u [2][2]complex128, tol float64) bool {
	return cmplx.Abs(u[0][0]-1) < tol && cmplx.Abs(u[1][1]-1) < tol &&
		cmplx.Abs(u[0][1]) < tol && cmplx.Abs(u[1][0]) < tol
}

func allFixedKinds() []Gate {
	return []Gate{
		oneQ(I, 0), oneQ(X, 0), oneQ(Y, 0), oneQ(Z, 0), oneQ(H, 0),
		oneQ(S, 0), oneQ(Sdg, 0), oneQ(T, 0), oneQ(Tdg, 0),
		oneQ(SX, 0), oneQ(SXdg, 0),
	}
}

func TestFixedGateMatricesUnitary(t *testing.T) {
	for _, g := range allFixedKinds() {
		if !mat2Unitary(g.Matrix(), 1e-12) {
			t.Errorf("%v matrix not unitary", g.Kind)
		}
	}
}

func TestParamGateMatricesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		th := rng.Float64()*4*math.Pi - 2*math.Pi
		ph := rng.Float64()*4*math.Pi - 2*math.Pi
		la := rng.Float64()*4*math.Pi - 2*math.Pi
		for _, g := range []Gate{
			oneQ(RX, 0, th), oneQ(RY, 0, th), oneQ(RZ, 0, th), oneQ(P, 0, la),
			oneQ(U2, 0, ph, la), oneQ(U3, 0, th, ph, la),
		} {
			if !mat2Unitary(g.Matrix(), 1e-12) {
				t.Errorf("%v(%v) matrix not unitary", g.Kind, g.Params)
			}
		}
	}
}

func TestInverseGivesIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gates := allFixedKinds()
	for i := 0; i < 30; i++ {
		gates = append(gates,
			oneQ(RX, 0, rng.Float64()*7-3.5),
			oneQ(RY, 0, rng.Float64()*7-3.5),
			oneQ(RZ, 0, rng.Float64()*7-3.5),
			oneQ(P, 0, rng.Float64()*7-3.5),
			oneQ(U2, 0, rng.Float64()*7-3.5, rng.Float64()*7-3.5),
			oneQ(U3, 0, rng.Float64()*7-3.5, rng.Float64()*7-3.5, rng.Float64()*7-3.5),
		)
	}
	gates = append(gates, Gate{
		Kind: Custom, Target: 0, Target2: -1,
		Mat: oneQ(U3, 0, 0.3, 0.7, -1.1).Matrix(),
	})
	for _, g := range gates {
		prod := mat2Mul(g.Inverse().Matrix(), g.Matrix())
		if !mat2IsIdentity(prod, 1e-12) {
			t.Errorf("%v inverse wrong: product %v", g.Kind, prod)
		}
	}
}

func TestKnownMatrices(t *testing.T) {
	x := oneQ(X, 0).Matrix()
	if x[0][1] != 1 || x[1][0] != 1 || x[0][0] != 0 || x[1][1] != 0 {
		t.Errorf("X = %v", x)
	}
	// SX^2 = X
	sx := oneQ(SX, 0).Matrix()
	if prod := mat2Mul(sx, sx); cmplx.Abs(prod[0][1]-1) > 1e-12 || cmplx.Abs(prod[1][0]-1) > 1e-12 {
		t.Errorf("SX^2 = %v, want X", prod)
	}
	// T^2 = S
	tm := oneQ(T, 0).Matrix()
	s := oneQ(S, 0).Matrix()
	if prod := mat2Mul(tm, tm); cmplx.Abs(prod[1][1]-s[1][1]) > 1e-12 {
		t.Errorf("T^2 = %v, want S", prod)
	}
	// RZ(pi) = -i Z (up to phase), P(pi) = Z exactly.
	pPi := oneQ(P, 0, math.Pi).Matrix()
	if cmplx.Abs(pPi[1][1]+1) > 1e-12 {
		t.Errorf("P(pi) = %v, want Z", pPi)
	}
	// U3(0,0,l) = P(l)
	u := oneQ(U3, 0, 0, 0, 0.77).Matrix()
	p := oneQ(P, 0, 0.77).Matrix()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(u[i][j]-p[i][j]) > 1e-12 {
				t.Errorf("U3(0,0,l) != P(l): %v vs %v", u, p)
			}
		}
	}
}

func TestSwapMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SWAP.Matrix() did not panic")
		}
	}()
	Gate{Kind: SWAP, Target: 0, Target2: 1}.Matrix()
}

func TestBuilderAndValidation(t *testing.T) {
	c := New(3, "test")
	c.H(0).CX(0, 1).CCX(0, 1, 2).Swap(1, 2).RZ(0.5, 0)
	if c.NumGates() != 5 {
		t.Fatalf("NumGates = %d", c.NumGates())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.TwoQubitGates() != 3 {
		t.Errorf("TwoQubitGates = %d", c.TwoQubitGates())
	}
	if c.MaxControls() != 2 {
		t.Errorf("MaxControls = %d", c.MaxControls())
	}
	counts := c.GateCounts()
	if counts["cx"] != 1 || counts["ccx"] != 1 || counts["h"] != 1 {
		t.Errorf("GateCounts = %v", counts)
	}
}

func TestAddPanicsOnBadGates(t *testing.T) {
	cases := []func(*Circuit){
		func(c *Circuit) { c.X(3) },                                      // out of range
		func(c *Circuit) { c.X(-1) },                                     // negative
		func(c *Circuit) { c.CX(1, 1) },                                  // control == target
		func(c *Circuit) { c.Swap(2, 2) },                                // swap same qubit
		func(c *Circuit) { c.MCX([]int{0, 0}, 1) },                       // duplicate control
		func(c *Circuit) { c.Add(oneQ(RZ, 0)) },                          // missing param
		func(c *Circuit) { c.Add(Gate{Kind: X, Target: 0, Target2: 2}) }, // stray Target2
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f(New(3, "bad"))
		}()
	}
}

func TestDepth(t *testing.T) {
	c := New(3, "depth")
	c.H(0).H(1).H(2) // one layer
	if d := c.Depth(); d != 1 {
		t.Fatalf("depth after parallel layer = %d", d)
	}
	c.CX(0, 1) // second layer
	c.X(2)     // fits into second layer
	if d := c.Depth(); d != 2 {
		t.Fatalf("depth = %d", d)
	}
	c.CX(1, 2) // third layer
	if d := c.Depth(); d != 3 {
		t.Fatalf("depth = %d", d)
	}
}

func TestInverseCircuit(t *testing.T) {
	c := New(2, "fwd")
	c.H(0).CX(0, 1).T(1).RZ(0.3, 0)
	inv := c.Inverse()
	if inv.NumGates() != c.NumGates() {
		t.Fatal("inverse changed gate count")
	}
	// First gate of inverse is inverse of last gate of original.
	if inv.Gates[0].Kind != RZ || inv.Gates[0].Params[0] != -0.3 {
		t.Errorf("inverse order wrong: %v", inv.Gates[0])
	}
	if inv.Gates[1].Kind != Tdg {
		t.Errorf("T inverse = %v", inv.Gates[1].Kind)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(3, "orig")
	c.MCX([]int{0, 1}, 2).RZ(0.5, 0)
	d := c.Clone()
	d.Gates[0].Controls[0].Qubit = 1 // mutate clone
	d.Gates[1].Params[0] = 9
	if c.Gates[0].Controls[0].Qubit != 0 {
		t.Error("Clone shares control slice")
	}
	if c.Gates[1].Params[0] != 0.5 {
		t.Error("Clone shares param slice")
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Kind: X, Target: 2, Target2: -1, Controls: []Control{{Qubit: 0}, {Qubit: 1, Neg: true}}}
	s := g.String()
	if !strings.Contains(s, "ccx") || !strings.Contains(s, "!q[1]") {
		t.Errorf("String = %q", s)
	}
	sw := Gate{Kind: SWAP, Target: 0, Target2: 1}
	if got := sw.String(); !strings.Contains(got, "swap q[0],q[1]") {
		t.Errorf("swap String = %q", got)
	}
}

func TestGateEqual(t *testing.T) {
	a := Gate{Kind: X, Target: 1, Target2: -1, Controls: []Control{{Qubit: 0}, {Qubit: 2}}}
	b := Gate{Kind: X, Target: 1, Target2: -1, Controls: []Control{{Qubit: 2}, {Qubit: 0}}}
	if !a.Equal(b) {
		t.Error("control order must not matter for Equal")
	}
	c := Gate{Kind: X, Target: 1, Target2: -1, Controls: []Control{{Qubit: 0}, {Qubit: 2, Neg: true}}}
	if a.Equal(c) {
		t.Error("polarity must matter for Equal")
	}
}

func TestAppendRegisterMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with mismatched register did not panic")
		}
	}()
	New(2, "a").Append(New(3, "b"))
}

// Property: Inverse twice returns a circuit with gates equal to the original.
func TestQuickDoubleInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(4, "rand")
		for i := 0; i < 15; i++ {
			switch rng.Intn(5) {
			case 0:
				c.H(rng.Intn(4))
			case 1:
				c.T(rng.Intn(4))
			case 2:
				a := rng.Intn(4)
				c.CX(a, (a+1)%4)
			case 3:
				c.RZ(rng.Float64(), rng.Intn(4))
			case 4:
				a := rng.Intn(4)
				c.Swap(a, (a+2)%4)
			}
		}
		inv2 := c.Inverse().Inverse()
		if len(inv2.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			if !c.Gates[i].Equal(inv2.Gates[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every kind's inverse matrix is the conjugate transpose.
func TestQuickInverseIsAdjoint(t *testing.T) {
	f := func(th, ph, la float64) bool {
		th, ph, la = math.Mod(th, 7), math.Mod(ph, 7), math.Mod(la, 7)
		if math.IsNaN(th) || math.IsNaN(ph) || math.IsNaN(la) {
			return true
		}
		g := oneQ(U3, 0, th, ph, la)
		inv := g.Inverse().Matrix()
		m := g.Matrix()
		adj := [2][2]complex128{
			{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
			{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if cmplx.Abs(inv[i][j]-adj[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllBuilders(t *testing.T) {
	c := New(4, "builders")
	c.X(0).Y(1).Z(2).H(3).S(0).Sdg(1).T(2).Tdg(3).SX(0)
	c.RX(0.1, 1).RY(0.2, 2).RZ(0.3, 3).Phase(0.4, 0).U3(0.5, 0.6, 0.7, 1)
	c.CX(0, 1).CZ(1, 2).CPhase(0.8, 2, 3).CCX(0, 1, 2)
	c.MCX([]int{0, 1}, 3).MCXNeg([]Control{{Qubit: 0, Neg: true}}, 2).MCZ([]int{0, 1}, 3)
	c.Swap(0, 1).CSwap(2, 0, 1)
	c.Add(Gate{Kind: I, Target: 0, Target2: -1})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 24 {
		t.Fatalf("NumGates = %d", c.NumGates())
	}
	// String renders every gate plus a header line.
	s := c.String()
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 25 {
		t.Fatalf("String rendered %d lines:\n%s", len(strings.Split(s, "\n")), s)
	}
	// Append merges circuits.
	d := New(4, "tail")
	d.H(0)
	c.Append(d)
	if c.NumGates() != 25 {
		t.Fatalf("Append: NumGates = %d", c.NumGates())
	}
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n, "bad")
		}()
	}
}

func TestKindStringAndNumParams(t *testing.T) {
	for _, k := range []Kind{I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SXdg, RX, RY, RZ, P, U2, U3, SWAP, Custom} {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
	wants := map[Kind]int{RX: 1, RY: 1, RZ: 1, P: 1, U2: 2, U3: 3, X: 0, SWAP: 0}
	for k, want := range wants {
		if got := k.NumParams(); got != want {
			t.Errorf("%v.NumParams() = %d, want %d", k, got, want)
		}
	}
}
