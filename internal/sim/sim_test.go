package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qcec/internal/circuit"
	"qcec/internal/dd"
	"qcec/internal/dense"
)

// runDense is the oracle: simulate a circuit with the dense simulator.
func runDense(c *circuit.Circuit, input uint64) dense.State {
	s := dense.BasisState(c.N, input)
	for _, g := range c.Gates {
		applyDense(s, g)
	}
	return s
}

func applyDense(s dense.State, g circuit.Gate) {
	if g.Kind == circuit.SWAP {
		for _, cx := range swapAsCXs(g) {
			applyDense(s, cx)
		}
		return
	}
	cs := make([]dense.Control, len(g.Controls))
	for i, c := range g.Controls {
		cs[i] = dense.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	s.ApplyGate(g.Matrix(), g.Target, cs)
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "random")
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.X(rng.Intn(n))
		case 3:
			c.RZ(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 4:
			c.RY(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 5:
			if n > 1 {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CX(a, b)
			}
		case 6:
			if n > 1 {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.Swap(a, b)
			}
		case 7:
			if n > 2 {
				a := rng.Intn(n)
				b := (a + 1) % n
				t := (a + 2) % n
				c.CCX(a, b, t)
			} else {
				c.S(rng.Intn(n))
			}
		}
	}
	return c
}

func TestRunMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 5; n++ {
		c := randomCircuit(rng, n, 40)
		input := rng.Uint64() & ((1 << uint(n)) - 1)
		s := New(n)
		got := s.P.Vector(s.Run(c, input))
		want := runDense(c, input)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d amplitude[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestSwapGate(t *testing.T) {
	// SWAP |01> = |10>
	c := circuit.New(2, "swap")
	c.X(0).Swap(0, 1)
	s := New(2)
	st := s.Run(c, 0)
	if got := s.P.Amplitude(st, 2); cmplx.Abs(got-1) > 1e-12 {
		t.Fatalf("SWAP|01> amplitude of |10> = %v", got)
	}
}

func TestControlledSwap(t *testing.T) {
	// Fredkin: control 0 off -> no swap; on -> swap.
	c := circuit.New(3, "fredkin")
	c.X(1).CSwap(0, 1, 2)
	s := New(3)
	st := s.Run(c, 0)
	if got := s.P.Amplitude(st, 0b010); cmplx.Abs(got-1) > 1e-12 {
		t.Fatalf("uncontrolled branch wrong: %v", s.P.FormatState(st, 4))
	}
	c2 := circuit.New(3, "fredkin-on")
	c2.X(0).X(1).CSwap(0, 1, 2)
	st2 := s.Run(c2, 0)
	if got := s.P.Amplitude(st2, 0b101); cmplx.Abs(got-1) > 1e-12 {
		t.Fatalf("controlled branch wrong: %v", s.P.FormatState(st2, 4))
	}
}

func TestBuildUnitaryMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 1; n <= 4; n++ {
		c := randomCircuit(rng, n, 20)
		p := dd.NewDefault(n)
		u := BuildUnitary(p, c)
		ref := dense.IdentityMatrix(n)
		for _, g := range c.Gates {
			if g.Kind == circuit.SWAP {
				for _, cx := range swapAsCXs(g) {
					cs := make([]dense.Control, len(cx.Controls))
					for i, ctl := range cx.Controls {
						cs[i] = dense.Control{Qubit: ctl.Qubit, Neg: ctl.Neg}
					}
					ref = dense.Mul(dense.GateMatrix(n, cx.Matrix(), cx.Target, cs), ref)
				}
				continue
			}
			cs := make([]dense.Control, len(g.Controls))
			for i, ctl := range g.Controls {
				cs[i] = dense.Control{Qubit: ctl.Qubit, Neg: ctl.Neg}
			}
			ref = dense.Mul(dense.GateMatrix(n, g.Matrix(), g.Target, cs), ref)
		}
		got := p.Matrix(u)
		if !dense.MatApproxEqual(got, ref, 1e-8) {
			t.Fatalf("n=%d unitary mismatch", n)
		}
	}
}

func TestSimulationEqualsUnitaryColumn(t *testing.T) {
	// The paper's core observation: simulating |i> yields column i of U.
	rng := rand.New(rand.NewSource(7))
	n := 4
	c := randomCircuit(rng, n, 30)
	p := dd.NewDefault(n)
	u := BuildUnitary(p, c)
	s := NewOn(p)
	for _, i := range []uint64{0, 3, 9, 15} {
		col := s.Run(c, i)
		for r := uint64(0); r < 16; r++ {
			if cmplx.Abs(p.Amplitude(col, r)-p.MatrixEntry(u, r, i)) > 1e-8 {
				t.Fatalf("column %d row %d: simulation disagrees with unitary", i, r)
			}
		}
	}
}

func TestPermutationDD(t *testing.T) {
	p := dd.NewDefault(3)
	// perm maps qubit q to wire perm[q].
	perm := []int{2, 0, 1}
	m := PermutationDD(p, perm)
	for x := uint64(0); x < 8; x++ {
		var y uint64
		for q := 0; q < 3; q++ {
			if x>>uint(q)&1 == 1 {
				y |= 1 << uint(perm[q])
			}
		}
		if got := p.MatrixEntry(m, y, x); cmplx.Abs(got-1) > 1e-12 {
			t.Fatalf("P[%d][%d] = %v, want 1 (perm %v)", y, x, got, perm)
		}
	}
}

func TestPermutationDDIdentity(t *testing.T) {
	p := dd.NewDefault(4)
	m := PermutationDD(p, []int{0, 1, 2, 3})
	if !p.IsIdentity(m, true) {
		t.Fatal("identity permutation is not the identity DD")
	}
}

func TestPermutationDDInvalid(t *testing.T) {
	p := dd.NewDefault(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PermutationDD(%v) did not panic", perm)
				}
			}()
			PermutationDD(p, perm)
		}()
	}
}

func TestQubitCountMismatchPanics(t *testing.T) {
	s := New(3)
	defer func() {
		if recover() == nil {
			t.Error("Run with mismatched register did not panic")
		}
	}()
	s.Run(circuit.New(2, "small"), 0)
}

func TestSampleCounts(t *testing.T) {
	c := circuit.New(1, "h")
	c.H(0)
	s := New(1)
	rng := rand.New(rand.NewSource(9))
	counts := s.SampleCounts(c, 0, 1000, rng)
	if counts[0] < 400 || counts[1] < 400 {
		t.Fatalf("H sampling skewed: %v", counts)
	}
}

func TestGCDuringLongRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5
	c := randomCircuit(rng, n, 200)
	s := New(n)
	s.P.SetGCThreshold(50)
	got := s.P.Vector(s.Run(c, 1))
	want := runDense(c, 1)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("amplitude[%d] mismatch after GC-heavy run", i)
		}
	}
	if s.P.GCRuns() == 0 {
		t.Fatal("expected at least one GC run")
	}
}

// Property: simulation preserves the norm for arbitrary random circuits.
func TestQuickNormPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCircuit(rng, n, 25)
		s := New(n)
		st := s.Run(c, rng.Uint64()&((1<<uint(n))-1))
		return math.Abs(s.P.Norm(st)-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: running a circuit then its inverse returns the input state.
func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := randomCircuit(rng, n, 20)
		input := rng.Uint64() & ((1 << uint(n)) - 1)
		s := New(n)
		st := s.Run(c, input)
		st = s.RunFrom(c.Inverse(), st)
		return cmplx.Abs(s.P.Amplitude(st, input)-1) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExpectationZ(t *testing.T) {
	s := New(2)
	// |0>: <Z> = +1; |1>: <Z> = -1; |+>: <Z> = 0.
	zero := s.P.BasisState(0)
	if v := s.ExpectationZ(zero, 0); math.Abs(v-1) > 1e-9 {
		t.Errorf("<0|Z|0> = %g", v)
	}
	one := s.P.BasisState(1)
	if v := s.ExpectationZ(one, 0); math.Abs(v+1) > 1e-9 {
		t.Errorf("<1|Z|1> = %g", v)
	}
	c := circuit.New(2, "plus")
	c.H(0)
	plus := s.Run(c, 0)
	if v := s.ExpectationZ(plus, 0); math.Abs(v) > 1e-9 {
		t.Errorf("<+|Z|+> = %g", v)
	}
	// Qubit 1 of |+>|0> still has <Z> = +1.
	if v := s.ExpectationZ(plus, 1); math.Abs(v-1) > 1e-9 {
		t.Errorf("<Z_1> = %g", v)
	}
}
