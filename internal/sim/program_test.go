package sim

import (
	"sync"
	"testing"

	"qcec/internal/circuit"
)

// progTestCircuit mixes the gate alphabet Prepare must lower: parameterized
// single-qubit gates, multi-controlled X, and a SWAP (expanded into three CX
// factors).
func progTestCircuit() *circuit.Circuit {
	c := circuit.New(4, "mix")
	c.H(0).H(1).H(2).H(3)
	c.T(0).RZ(0.3, 1).Phase(0.7, 2).S(3)
	c.CX(0, 1).CCX(1, 2, 3)
	c.Swap(0, 3)
	c.CX(2, 3).H(2)
	return c
}

// TestProgramMatchesCircuitWalk: on one package, driving the shared Program
// must yield the exact same canonical edge as walking the circuit through
// the per-simulator prepared cache — the program is a different compilation
// route to the same gate sequence, not a different computation.
func TestProgramMatchesCircuitWalk(t *testing.T) {
	c := progTestCircuit()
	prog := Prepare(c)
	if prog.Qubits() != 4 {
		t.Fatalf("Qubits() = %d, want 4", prog.Qubits())
	}
	if prog.Gates() != len(c.Gates) {
		t.Fatalf("Gates() = %d, want %d", prog.Gates(), len(c.Gates))
	}
	s := New(4)
	for input := uint64(0); input < 1<<4; input++ {
		got := s.RunProgram(prog, input)
		want := s.RunFrom(c, s.P.BasisState(input))
		if got != want {
			t.Fatalf("input %d: program edge %+v, circuit walk %+v", input, got, want)
		}
	}
}

// TestSharedProgramConcurrent drives one Program from many goroutines, each
// with its own package and simulator — the parallel stimulus workers'
// sharing pattern.  Run under -race (RACE_PKGS covers internal/sim) it
// proves that binding and running a shared program only reads it, and the
// edge comparison against a private circuit walk proves no worker observes
// another's binding.
func TestSharedProgramConcurrent(t *testing.T) {
	c := progTestCircuit()
	prog := Prepare(c)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := New(4)
			for rep := 0; rep < 3; rep++ {
				for input := uint64(0); input < 1<<4; input++ {
					got := s.RunProgram(prog, input)
					want := s.RunFrom(c, s.P.BasisState(input))
					if got != want {
						t.Errorf("worker %d input %d: program and circuit walk disagree", w, input)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
