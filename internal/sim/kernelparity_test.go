package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"qcec/internal/circuit"
	"qcec/internal/dd"
)

// randomParityGate draws a gate of any kind (every non-custom Kind,
// including SWAP), with 0–2 positive or negative controls.
func randomParityGate(rng *rand.Rand, n int) circuit.Gate {
	kinds := []circuit.Kind{
		circuit.I, circuit.X, circuit.Y, circuit.Z, circuit.H,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg,
		circuit.SX, circuit.SXdg, circuit.RX, circuit.RY, circuit.RZ,
		circuit.P, circuit.U2, circuit.U3, circuit.SWAP,
	}
	g := circuit.Gate{Kind: kinds[rng.Intn(len(kinds))], Target2: -1}
	switch g.Kind {
	case circuit.RX, circuit.RY, circuit.RZ, circuit.P:
		g.Params = []float64{rng.Float64() * 2 * math.Pi}
	case circuit.U2:
		g.Params = []float64{rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi}
	case circuit.U3:
		g.Params = []float64{rng.Float64() * math.Pi, rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi}
	}
	perm := rng.Perm(n)
	g.Target = perm[0]
	used := 1
	if g.Kind == circuit.SWAP {
		if n < 2 {
			g.Kind = circuit.X
		} else {
			g.Target2 = perm[1]
			used = 2
		}
	}
	for k := rng.Intn(3); k > 0 && used < n; k-- {
		g.Controls = append(g.Controls, circuit.Control{
			Qubit: perm[used], Neg: rng.Intn(2) == 1,
		})
		used++
	}
	return g
}

func randomParityCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "rand")
	for i := 0; i < gates; i++ {
		c.Gates = append(c.Gates, randomParityGate(rng, n))
	}
	return c
}

// TestKernelParityRandomCircuits runs random circuits through the kernel
// and the legacy GateDD+MulMV path on the same package and demands
// bit-identical root edges (same node pointer, same interned weight) after
// every gate.
func TestKernelParityRandomCircuits(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(1000*int64(n) + seed))
			c := randomParityCircuit(rng, n, 24)
			p := dd.NewDefault(n)
			input := rng.Uint64() & (uint64(1)<<uint(n) - 1)
			kernel := p.BasisState(input)
			legacy := kernel
			for gi, g := range c.Gates {
				kernel = ApplyGate(p, kernel, g)
				legacy = ApplyGateLegacy(p, legacy, g)
				if kernel != legacy {
					t.Fatalf("n=%d seed=%d: divergence after gate %d (%v): kernel %v, legacy %v",
						n, seed, gi, g.Kind, kernel, legacy)
				}
			}
		}
	}
}

// TestKernelParitySimulatorRuns checks the Simulator-level switch: a Legacy
// simulator and a kernel simulator on separate packages must agree on all
// amplitudes (separate packages, so pointer identity does not apply).
func TestKernelParitySimulatorRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(4)
		c := randomParityCircuit(rng, n, 30)
		input := rng.Uint64() & (uint64(1)<<uint(n) - 1)

		fast := New(n)
		slow := New(n)
		slow.Legacy = true
		vFast := fast.P.Vector(fast.Run(c, input))
		vSlow := slow.P.Vector(slow.Run(c, input))
		for i := range vFast {
			if d := vFast[i] - vSlow[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				t.Fatalf("trial %d: amplitude[%d] kernel %v, legacy %v", trial, i, vFast[i], vSlow[i])
			}
		}
		if fast.GatesApplied != slow.GatesApplied {
			t.Fatalf("trial %d: %d kernel gate applications vs %d legacy",
				trial, fast.GatesApplied, slow.GatesApplied)
		}
	}
}

// TestSwapAsCXsDoesNotMutateControls guards the swapAsCXs allocation fix:
// expanding a controlled SWAP must neither mutate the input gate's controls
// nor hand out factors whose control slices alias the input's backing array.
func TestSwapAsCXsDoesNotMutateControls(t *testing.T) {
	controls := []circuit.Control{{Qubit: 2}, {Qubit: 3, Neg: true}}
	g := circuit.Gate{Kind: circuit.SWAP, Target: 0, Target2: 1, Controls: controls}
	snapshot := append([]circuit.Control(nil), controls...)

	cxs := swapAsCXs(g)
	if !reflect.DeepEqual(g.Controls, snapshot) {
		t.Fatalf("input controls mutated: %v", g.Controls)
	}
	for i := range cxs {
		if len(cxs[i].Controls) != len(controls)+1 {
			t.Fatalf("factor %d has %d controls, want %d", i, len(cxs[i].Controls), len(controls)+1)
		}
		for j := range cxs[i].Controls {
			cxs[i].Controls[j].Qubit = -99 // scribble over every factor
			cxs[i].Controls[j].Neg = !cxs[i].Controls[j].Neg
		}
	}
	if !reflect.DeepEqual(g.Controls, snapshot) {
		t.Fatalf("scribbling on the factors reached the input gate: %v", g.Controls)
	}

	// Applying a controlled SWAP end to end must leave the gate unchanged too.
	g.Controls = append([]circuit.Control(nil), snapshot...)
	p := dd.NewDefault(4)
	ApplyGate(p, p.BasisState(0b1101), g)
	ApplyGateLegacy(p, p.BasisState(0b1101), g)
	if !reflect.DeepEqual(g.Controls, snapshot) {
		t.Fatalf("ApplyGate mutated the input controls: %v", g.Controls)
	}
}
