package sim

import (
	"testing"

	"qcec/internal/bench"
)

func BenchmarkKernelGrover(b *testing.B) {
	c := bench.Grover(6, 0b101010)
	s := New(c.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(c, uint64(i)&uint64(1<<uint(c.N)-1))
	}
}

func BenchmarkLegacyGrover(b *testing.B) {
	c := bench.Grover(6, 0b101010)
	s := New(c.N)
	s.Legacy = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(c, uint64(i)&uint64(1<<uint(c.N)-1))
	}
}
