package sim

import (
	"testing"

	"qcec/internal/bench"
)

// Simulation micro-benchmarks on the paper's benchmark families.  One run =
// one random-stimulus simulation, i.e. one unit of the flow's cheap stage.

func BenchmarkSimQFT32(b *testing.B) {
	c := bench.QFT(32)
	s := New(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(c, uint64(i)*0x9E3779B9&0xFFFFFFFF)
	}
}

func BenchmarkSimGrover6(b *testing.B) {
	c := bench.Grover(6, 0b101010)
	s := New(c.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(c, uint64(i)&((1<<uint(c.N))-1))
	}
}

func BenchmarkSimSupremacy3x3(b *testing.B) {
	c := bench.Supremacy(3, 3, 12, 1)
	s := New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(c, uint64(i)&0x1FF)
	}
}

func BenchmarkSimChemistry2x2(b *testing.B) {
	c := bench.Chemistry(2, 2, 1)
	s := New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(c, uint64(i)&0xFF)
	}
}

func BenchmarkBuildUnitaryQFT12(b *testing.B) {
	// The expensive counterpart: building the full functionality.
	c := bench.QFT(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(12)
		BuildUnitary(s.P, c)
	}
}
