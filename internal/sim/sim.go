// Package sim implements decision-diagram based simulation of quantum
// circuits — the engine behind the paper's headline result.
//
// Simulating a circuit on a computational basis state |i> computes the i-th
// column of the circuit's system matrix using only matrix-vector products
// (paper Sec. III-B).  This is dramatically cheaper than the matrix-matrix
// products needed to construct the complete functionality, which is exactly
// the asymmetry the proposed equivalence-checking flow exploits.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"qcec/internal/circuit"
	"qcec/internal/dd"
)

// ToDDControls converts circuit controls to DD controls.
func ToDDControls(cs []circuit.Control) []dd.Control {
	if len(cs) == 0 {
		return nil
	}
	out := make([]dd.Control, len(cs))
	for i, c := range cs {
		out[i] = dd.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	return out
}

// swapAsCXs returns the three CX gates realizing a (controlled) SWAP.
// Controlling each factor on the SWAP's own controls is sound because all
// three factors are block-diagonal with respect to the control subspace.
func swapAsCXs(g circuit.Gate) [3]circuit.Gate {
	a, b := g.Target, g.Target2
	cx := func(ctl, tgt int) circuit.Gate {
		// Exactly sized and freshly backed: the factors must never alias
		// (or grow into) the input gate's controls slice.
		controls := make([]circuit.Control, 0, len(g.Controls)+1)
		controls = append(controls, circuit.Control{Qubit: ctl})
		controls = append(controls, g.Controls...)
		return circuit.Gate{Kind: circuit.X, Target: tgt, Target2: -1, Controls: controls}
	}
	return [3]circuit.Gate{cx(a, b), cx(b, a), cx(a, b)}
}

// GateDD builds the full-register matrix DD of a circuit gate (including
// SWAP gates, which are expanded into three CX factors).
func GateDD(p *dd.Package, g circuit.Gate) dd.MEdge {
	if g.Kind == circuit.SWAP {
		cxs := swapAsCXs(g)
		m := GateDD(p, cxs[0])
		m = p.MulMM(GateDD(p, cxs[1]), m)
		m = p.MulMM(GateDD(p, cxs[2]), m)
		return m
	}
	return p.GateDD(g.Matrix(), g.Target, ToDDControls(g.Controls))
}

// ApplyGate applies a single gate to a state DD through the direct
// gate-application kernel (dd.ApplyGateV), which walks the state without
// building the gate's matrix DD.  SWAPs expand into three CX factors.
func ApplyGate(p *dd.Package, state dd.VEdge, g circuit.Gate) dd.VEdge {
	if g.Kind == circuit.SWAP {
		for _, cx := range swapAsCXs(g) {
			state = ApplyGate(p, state, cx)
		}
		return state
	}
	return p.ApplyGateV(g.Matrix(), g.Target, ToDDControls(g.Controls), state)
}

// ApplyGateLegacy applies a single gate by building its full-register
// matrix DD and running the generic matrix-vector product — the reference
// path the kernel is checked against (see core.Options.DisableApplyKernel).
func ApplyGateLegacy(p *dd.Package, state dd.VEdge, g circuit.Gate) dd.VEdge {
	if g.Kind == circuit.SWAP {
		for _, cx := range swapAsCXs(g) {
			state = ApplyGateLegacy(p, state, cx)
		}
		return state
	}
	return p.MulMV(p.GateDD(g.Matrix(), g.Target, ToDDControls(g.Controls)), state)
}

// Simulator runs circuits on a DD package, garbage-collecting as needed.
type Simulator struct {
	P *dd.Package

	// Legacy switches gate application from the direct kernel
	// (dd.ApplyGateV) back to the full-matrix GateDD+MulMV reference path.
	// Results are identical either way; only the cost differs.
	Legacy bool

	// GatesApplied counts the elementary gate applications performed, for
	// the experiment reports.
	GatesApplied int64

	// prep caches each circuit's kernel-prepared program (one entry per
	// circuit gate; SWAPs contribute their three CX factors) so the
	// r-stimuli loop translates every gate exactly once.  Keyed by circuit
	// pointer: callers must not mutate a circuit's gates between runs on
	// the same simulator.
	prep map[*circuit.Circuit][][]*dd.PreparedGate

	// bound caches the package-local binding of each shared Program this
	// simulator has run, so a worker binds a program once and then pays only
	// the kernel recursion per application.
	bound map[*Program][][]*dd.PreparedGate
}

// Program is an immutable, package-independent compilation of a circuit:
// every circuit gate lowered to its dd.GateSpec form (SWAPs expanded into
// their three CX factors), paying the per-gate matrix construction —
// including the trigonometry of parameterized gates — exactly once.  A
// Program is read-only after Prepare returns and may be shared freely
// across goroutines; parallel stimulus workers each bind it to their own
// private package (see Simulator.bind) and drive the one shared copy.
type Program struct {
	n     int
	steps [][]dd.GateSpec // one entry per circuit gate
}

// Prepare compiles a circuit into a shareable Program.  The circuit's gates
// must not be mutated afterwards (the specs alias nothing from the circuit,
// but the compilation reflects the gates at call time).
func Prepare(c *circuit.Circuit) *Program {
	spec := func(g circuit.Gate) dd.GateSpec {
		return dd.GateSpec{U: g.Matrix(), Target: g.Target, Controls: ToDDControls(g.Controls)}
	}
	steps := make([][]dd.GateSpec, len(c.Gates))
	for i, g := range c.Gates {
		if g.Kind == circuit.SWAP {
			cxs := swapAsCXs(g)
			steps[i] = []dd.GateSpec{spec(cxs[0]), spec(cxs[1]), spec(cxs[2])}
		} else {
			steps[i] = []dd.GateSpec{spec(g)}
		}
	}
	return &Program{n: c.N, steps: steps}
}

// Qubits returns the register size the program was compiled for.
func (pr *Program) Qubits() int { return pr.n }

// Gates returns the number of circuit gates in the program (SWAP factors
// count as their originating gate).
func (pr *Program) Gates() int { return len(pr.steps) }

// bind returns (binding and caching on first use) the package-local
// prepared form of a shared program.  Binding only reads the program.
func (s *Simulator) bind(prog *Program) [][]*dd.PreparedGate {
	if pg, ok := s.bound[prog]; ok {
		return pg
	}
	pg := make([][]*dd.PreparedGate, len(prog.steps))
	for i, specs := range prog.steps {
		fs := make([]*dd.PreparedGate, len(specs))
		for j, sp := range specs {
			fs[j] = s.P.PrepareSpec(sp)
		}
		pg[i] = fs
	}
	if s.bound == nil {
		s.bound = make(map[*Program][][]*dd.PreparedGate, 2)
	}
	s.bound[prog] = pg
	return pg
}

// RunProgram simulates the program on basis state |input> and returns the
// final state DD (cf. Run).
func (s *Simulator) RunProgram(prog *Program, input uint64) dd.VEdge {
	if prog.n != s.P.Qubits() {
		panic(fmt.Sprintf("sim: program on %d qubits, package on %d", prog.n, s.P.Qubits()))
	}
	return s.RunProgramWithPins(prog, s.P.BasisState(input), nil)
}

// RunProgramWithPins simulates a shared program starting from an arbitrary
// state DD, keeping the given states alive across garbage collections.  It
// applies exactly the same prepared-gate sequence as RunFromWithPins would
// for the originating circuit, so results are bit-identical.
func (s *Simulator) RunProgramWithPins(prog *Program, state dd.VEdge, pins []dd.VEdge) dd.VEdge {
	roots := make([]dd.VEdge, 0, len(pins)+1)
	for _, steps := range s.bind(prog) {
		for _, pg := range steps {
			state = s.P.ApplyPrepared(pg, state)
		}
		s.GatesApplied++
		faultStep(s.GatesApplied)
		roots = append(roots[:0], pins...)
		roots = append(roots, state)
		s.P.MaybeGC(roots, nil)
	}
	return state
}

// apply dispatches one gate application according to the Legacy switch.
func (s *Simulator) apply(state dd.VEdge, g circuit.Gate) dd.VEdge {
	if s.Legacy {
		return ApplyGateLegacy(s.P, state, g)
	}
	return ApplyGate(s.P, state, g)
}

// prepared returns (building and caching on first use) the kernel-prepared
// program of a circuit.
func (s *Simulator) prepared(c *circuit.Circuit) [][]*dd.PreparedGate {
	if pg, ok := s.prep[c]; ok {
		return pg
	}
	prepare := func(g circuit.Gate) *dd.PreparedGate {
		return s.P.PrepareGate(g.Matrix(), g.Target, ToDDControls(g.Controls))
	}
	pg := make([][]*dd.PreparedGate, len(c.Gates))
	for i, g := range c.Gates {
		if g.Kind == circuit.SWAP {
			cxs := swapAsCXs(g)
			pg[i] = []*dd.PreparedGate{prepare(cxs[0]), prepare(cxs[1]), prepare(cxs[2])}
		} else {
			pg[i] = []*dd.PreparedGate{prepare(g)}
		}
	}
	if s.prep == nil {
		s.prep = make(map[*circuit.Circuit][][]*dd.PreparedGate, 2)
	}
	s.prep[c] = pg
	return pg
}

// New creates a simulator on a fresh default package for n qubits.
func New(n int) *Simulator { return &Simulator{P: dd.NewDefault(n)} }

// NewOn creates a simulator sharing an existing package (so states from
// different circuits can be compared by pointer/fidelity).
func NewOn(p *dd.Package) *Simulator { return &Simulator{P: p} }

// Run simulates the circuit on basis state |input> and returns the final
// state DD (the input-th column of the circuit's system matrix).
func (s *Simulator) Run(c *circuit.Circuit, input uint64) dd.VEdge {
	if c.N != s.P.Qubits() {
		panic(fmt.Sprintf("sim: circuit on %d qubits, package on %d", c.N, s.P.Qubits()))
	}
	return s.RunFrom(c, s.P.BasisState(input))
}

// RunFrom simulates the circuit starting from an arbitrary state DD.
func (s *Simulator) RunFrom(c *circuit.Circuit, state dd.VEdge) dd.VEdge {
	if s.Legacy {
		for _, g := range c.Gates {
			state = ApplyGateLegacy(s.P, state, g)
			s.GatesApplied++
			faultStep(s.GatesApplied)
			s.P.MaybeGC([]dd.VEdge{state}, nil)
		}
		return state
	}
	for _, steps := range s.prepared(c) {
		for _, pg := range steps {
			state = s.P.ApplyPrepared(pg, state)
		}
		s.GatesApplied++
		faultStep(s.GatesApplied)
		s.P.MaybeGC([]dd.VEdge{state}, nil)
	}
	return state
}

// RunFromWithPins simulates like RunFrom but additionally keeps the given
// states alive across garbage collections (used when comparing runs of two
// circuits on one package).
func (s *Simulator) RunFromWithPins(c *circuit.Circuit, state dd.VEdge, pins []dd.VEdge) dd.VEdge {
	roots := make([]dd.VEdge, 0, len(pins)+1)
	if s.Legacy {
		for _, g := range c.Gates {
			state = ApplyGateLegacy(s.P, state, g)
			s.GatesApplied++
			faultStep(s.GatesApplied)
			roots = append(roots[:0], pins...)
			roots = append(roots, state)
			s.P.MaybeGC(roots, nil)
		}
		return state
	}
	for _, steps := range s.prepared(c) {
		for _, pg := range steps {
			state = s.P.ApplyPrepared(pg, state)
		}
		s.GatesApplied++
		faultStep(s.GatesApplied)
		roots = append(roots[:0], pins...)
		roots = append(roots, state)
		s.P.MaybeGC(roots, nil)
	}
	return state
}

// faultHook, when installed, observes every circuit-gate step of every
// simulator in the process (internal/faultinject's slow-prover fault).  A
// pointer-to-func in an atomic.Pointer keeps the production cost at one
// atomic load per gate.
var faultHook atomic.Pointer[func(gatesApplied int64)]

// SetFaultHook installs (or with nil removes) a process-wide per-gate hook
// called with the simulator's running gate count after each circuit gate.
// It is a fault-injection seam for chaos tests; production code never sets
// it.  Install it before simulation goroutines start.
func SetFaultHook(f func(gatesApplied int64)) {
	if f == nil {
		faultHook.Store(nil)
		return
	}
	faultHook.Store(&f)
}

func faultStep(gatesApplied int64) {
	if h := faultHook.Load(); h != nil {
		(*h)(gatesApplied)
	}
}

// BuildUnitary constructs the complete system matrix DD of a circuit by
// matrix-matrix multiplication — the expensive "full functional coverage"
// the paper's flow avoids whenever simulation suffices.
func BuildUnitary(p *dd.Package, c *circuit.Circuit) dd.MEdge {
	if c.N != p.Qubits() {
		panic(fmt.Sprintf("sim: circuit on %d qubits, package on %d", c.N, p.Qubits()))
	}
	u := p.Identity()
	for _, g := range c.Gates {
		u = p.MulMM(GateDD(p, g), u)
		p.MaybeGC(nil, []dd.MEdge{u})
	}
	return u
}

// PermutationDD builds the matrix DD of the qubit permutation perm, where
// output wire perm[q] carries what input wire q carried, i.e.
// P|x> = |y> with y_{perm[q]} = x_q.
func PermutationDD(p *dd.Package, perm []int) dd.MEdge {
	n := p.Qubits()
	if len(perm) != n {
		panic(fmt.Sprintf("sim: permutation on %d wires, package on %d", len(perm), n))
	}
	cur := make([]int, n) // cur[q]: wire currently holding logical q
	seen := make([]bool, n)
	for i, t := range perm {
		if t < 0 || t >= n || seen[t] {
			panic(fmt.Sprintf("sim: invalid permutation %v", perm))
		}
		seen[t] = true
		cur[i] = i
	}
	pos := make([]int, n) // pos[w]: logical qubit on wire w
	for q := range pos {
		pos[q] = q
	}
	u := p.Identity()
	xMat := [2][2]complex128{{0, 1}, {1, 0}}
	swapDD := func(a, b int) dd.MEdge {
		m := p.GateDD(xMat, b, []dd.Control{{Qubit: a}})
		m2 := p.GateDD(xMat, a, []dd.Control{{Qubit: b}})
		return p.MulMM(m, p.MulMM(m2, m))
	}
	for q := 0; q < n; q++ {
		want := perm[q]
		have := cur[q]
		if have == want {
			continue
		}
		u = p.MulMM(swapDD(have, want), u)
		other := pos[want] // logical qubit currently on the desired wire
		cur[q], cur[other] = want, have
		pos[want], pos[have] = q, other
	}
	return u
}

// SampleCounts draws shots samples from the final state of the circuit run
// on |input>.
func (s *Simulator) SampleCounts(c *circuit.Circuit, input uint64, shots int, rng *rand.Rand) map[uint64]int {
	st := s.Run(c, input)
	counts := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		counts[s.P.Sample(st, rng)]++
	}
	return counts
}

// ExpectationZ returns <psi|Z_q|psi> for a state DD — the observable used by
// the chemistry-style workloads.  Z_q is diagonal, so the value is the
// probability of qubit q being 0 minus the probability of it being 1.
func (s *Simulator) ExpectationZ(state dd.VEdge, q int) float64 {
	zGate := circuit.Gate{Kind: circuit.Z, Target: q, Target2: -1}
	return real(s.P.InnerProduct(state, s.apply(state, zGate)))
}
