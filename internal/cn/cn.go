// Package cn provides an interning table for complex numbers with
// tolerance-based lookup.
//
// Decision-diagram packages for quantum computing (QMDDs) require edge
// weights to be canonical: two weights that are numerically "the same" (up to
// a small tolerance that absorbs floating-point round-off) must be
// represented by the same object, so that node hashing and structural
// equality reduce to pointer comparison.  This package is the Go counterpart
// of the "complex table" used by the JKU/MQT DD packages.
//
// Concurrency: a Table is NOT safe for concurrent use, and interned Values
// from different Tables must never be mixed (pointer identity only holds
// within one table).  Concurrent checkers therefore run one dd.Package —
// and hence one Table — per goroutine; see the internal/dd package docs.
package cn

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Value is an interned complex number.  Values are created exclusively by a
// Table; two Values obtained from the same Table are numerically equal (up to
// the table tolerance) if and only if they are the same pointer.
type Value struct {
	c  complex128
	id uint64
}

// Complex returns the numeric value.
func (v *Value) Complex() complex128 { return v.c }

// Real returns the real part of the value.
func (v *Value) Real() float64 { return real(v.c) }

// Imag returns the imaginary part of the value.
func (v *Value) Imag() float64 { return imag(v.c) }

// ID returns a process-unique identifier assigned at interning time.  IDs are
// stable for the lifetime of the table and are used for hashing in compute
// tables.
func (v *Value) ID() uint64 { return v.id }

// Abs returns the magnitude |v|.
func (v *Value) Abs() float64 { return cmplx.Abs(v.c) }

// Abs2 returns the squared magnitude |v|^2.
func (v *Value) Abs2() float64 {
	re, im := real(v.c), imag(v.c)
	return re*re + im*im
}

// String formats the value as a complex literal.
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%g%+gi", real(v.c), imag(v.c))
}

type bucketKey struct {
	re, im int64
}

// Table interns complex numbers.  It is not safe for concurrent use.
type Table struct {
	tol     float64
	buckets map[bucketKey][]*Value
	nextID  uint64

	// Zero and One are the canonical entries for the exact values 0 and 1.
	// They are pre-interned so that hot-path comparisons against them are
	// single pointer comparisons.
	Zero *Value
	One  *Value

	lookups int64
	hits    int64
}

// DefaultTolerance is the tolerance used by NewDefault.  It matches the order
// of magnitude used by the JKU DD package and comfortably absorbs the
// round-off accumulated by circuits with hundreds of thousands of gates.
const DefaultTolerance = 1e-10

// NewTable creates a table with the given tolerance.  The tolerance must be
// positive and smaller than 1e-2 (larger values would merge numerically
// distinct amplitudes of real circuits).
func NewTable(tol float64) *Table {
	if tol <= 0 || tol >= 1e-2 {
		panic(fmt.Sprintf("cn: invalid tolerance %g", tol))
	}
	t := &Table{
		tol:     tol,
		buckets: make(map[bucketKey][]*Value, 1024),
	}
	t.Zero = t.insert(complex(0, 0))
	t.One = t.insert(complex(1, 0))
	return t
}

// NewDefault creates a table with DefaultTolerance.
func NewDefault() *Table { return NewTable(DefaultTolerance) }

// Tolerance returns the table tolerance.
func (t *Table) Tolerance() float64 { return t.tol }

// Size returns the number of distinct interned values.
func (t *Table) Size() int { return int(t.nextID) }

// Stats returns the number of lookups performed and how many of them hit an
// existing entry.
func (t *Table) Stats() (lookups, hits int64) { return t.lookups, t.hits }

// ResetStats zeroes the lookup counters without touching the interned
// values; a pooled DD package calls it between jobs so each job's snapshot
// reports only its own interning activity.
func (t *Table) ResetStats() { t.lookups, t.hits = 0, 0 }

func (t *Table) key(c complex128) bucketKey {
	return bucketKey{
		re: int64(math.Floor(real(c) / t.tol)),
		im: int64(math.Floor(imag(c) / t.tol)),
	}
}

func (t *Table) insert(c complex128) *Value {
	v := &Value{c: c, id: t.nextID}
	t.nextID++
	k := t.key(c)
	t.buckets[k] = append(t.buckets[k], v)
	return v
}

func (t *Table) approx(a, b complex128) bool {
	return math.Abs(real(a)-real(b)) <= t.tol && math.Abs(imag(a)-imag(b)) <= t.tol
}

// NonFiniteError is the panic value raised by Lookup on a NaN or infinite
// input.  Non-finite values would corrupt the bucket quantization, so they
// cannot be interned; they are reachable from user input (e.g. a rotation
// gate with a non-finite angle), so the flow layers (internal/core,
// internal/ec, internal/portfolio) recover this panic at their isolation
// boundaries and surface it as a typed report error instead of crashing.
type NonFiniteError struct {
	// Value is the offending complex number.
	Value complex128
}

// Error formats the offending value.
func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("cn: non-finite value %v", e.Value)
}

// Lookup returns the canonical Value for c, interning it if no value within
// the tolerance exists yet.  Values within tolerance of 0 or 1 snap exactly
// to the canonical Zero / One entries.  Non-finite values panic with a
// *NonFiniteError: they arise from non-finite user input (gate parameters)
// or an upstream numeric bug, and would corrupt the bucket quantization.
func (t *Table) Lookup(c complex128) *Value {
	if math.IsNaN(real(c)) || math.IsNaN(imag(c)) ||
		math.IsInf(real(c), 0) || math.IsInf(imag(c), 0) {
		panic(&NonFiniteError{Value: c})
	}
	t.lookups++
	// Fast paths for the two values that dominate DD construction.
	if t.approx(c, 0) {
		t.hits++
		return t.Zero
	}
	if t.approx(c, 1) {
		t.hits++
		return t.One
	}
	k := t.key(c)
	// A value within tolerance may have been quantized into a neighboring
	// bucket; scan the 3x3 neighborhood.
	for dr := int64(-1); dr <= 1; dr++ {
		for di := int64(-1); di <= 1; di++ {
			for _, v := range t.buckets[bucketKey{k.re + dr, k.im + di}] {
				if t.approx(v.c, c) {
					t.hits++
					return v
				}
			}
		}
	}
	return t.insert(c)
}

// LookupReal is shorthand for Lookup(complex(r, 0)).
func (t *Table) LookupReal(r float64) *Value { return t.Lookup(complex(r, 0)) }

// Mul returns the interned product of two values.
func (t *Table) Mul(a, b *Value) *Value {
	if a == t.Zero || b == t.Zero {
		return t.Zero
	}
	if a == t.One {
		return b
	}
	if b == t.One {
		return a
	}
	return t.Lookup(a.c * b.c)
}

// Div returns the interned quotient a/b.  b must be non-zero.
func (t *Table) Div(a, b *Value) *Value {
	if b == t.Zero {
		panic("cn: division by interned zero")
	}
	if a == t.Zero {
		return t.Zero
	}
	if b == t.One {
		return a
	}
	return t.Lookup(a.c / b.c)
}

// Add returns the interned sum of two values.
func (t *Table) Add(a, b *Value) *Value {
	if a == t.Zero {
		return b
	}
	if b == t.Zero {
		return a
	}
	return t.Lookup(a.c + b.c)
}

// Neg returns the interned negation of a value.
func (t *Table) Neg(a *Value) *Value {
	if a == t.Zero {
		return t.Zero
	}
	return t.Lookup(-a.c)
}

// Conj returns the interned complex conjugate of a value.
func (t *Table) Conj(a *Value) *Value {
	if imag(a.c) == 0 {
		return a
	}
	return t.Lookup(cmplx.Conj(a.c))
}
