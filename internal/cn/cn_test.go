package cn

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroOneCanonical(t *testing.T) {
	tab := NewDefault()
	if tab.Lookup(0) != tab.Zero {
		t.Fatal("Lookup(0) did not return canonical Zero")
	}
	if tab.Lookup(1) != tab.One {
		t.Fatal("Lookup(1) did not return canonical One")
	}
	if tab.Zero.Complex() != 0 {
		t.Fatalf("Zero holds %v", tab.Zero.Complex())
	}
	if tab.One.Complex() != 1 {
		t.Fatalf("One holds %v", tab.One.Complex())
	}
}

func TestSnapToZeroAndOne(t *testing.T) {
	tab := NewDefault()
	eps := tab.Tolerance() / 2
	if tab.Lookup(complex(eps, -eps)) != tab.Zero {
		t.Error("value within tolerance of 0 did not snap to Zero")
	}
	if tab.Lookup(complex(1-eps, eps)) != tab.One {
		t.Error("value within tolerance of 1 did not snap to One")
	}
}

func TestInterningWithinTolerance(t *testing.T) {
	tab := NewDefault()
	base := complex(0.70710678118, -0.5)
	a := tab.Lookup(base)
	b := tab.Lookup(base + complex(tab.Tolerance()/3, 0))
	c := tab.Lookup(base + complex(0, -tab.Tolerance()/3))
	if a != b || a != c {
		t.Error("values within tolerance interned to distinct pointers")
	}
	d := tab.Lookup(base + complex(10*tab.Tolerance(), 0))
	if a == d {
		t.Error("clearly distinct values interned to the same pointer")
	}
}

func TestBucketBoundary(t *testing.T) {
	// Two values straddling a quantization bucket boundary but within
	// tolerance of each other must still intern to one entry.
	tab := NewTable(1e-9)
	w := tab.Tolerance()
	x := 5 * w // exactly on a bucket boundary
	a := tab.Lookup(complex(x-w/4, 0))
	b := tab.Lookup(complex(x+w/4, 0))
	if a != b {
		t.Error("boundary-straddling values were not merged")
	}
}

func TestArithmeticHelpers(t *testing.T) {
	tab := NewDefault()
	a := tab.Lookup(complex(0.5, 0.25))
	b := tab.Lookup(complex(-0.125, 2))

	if got := tab.Mul(a, b).Complex(); cmplx.Abs(got-a.Complex()*b.Complex()) > 1e-9 {
		t.Errorf("Mul = %v", got)
	}
	if got := tab.Add(a, b).Complex(); cmplx.Abs(got-(a.Complex()+b.Complex())) > 1e-9 {
		t.Errorf("Add = %v", got)
	}
	if got := tab.Div(a, b).Complex(); cmplx.Abs(got-a.Complex()/b.Complex()) > 1e-9 {
		t.Errorf("Div = %v", got)
	}
	if got := tab.Neg(a).Complex(); got != -a.Complex() {
		t.Errorf("Neg = %v", got)
	}
	if got := tab.Conj(a).Complex(); got != cmplx.Conj(a.Complex()) {
		t.Errorf("Conj = %v", got)
	}

	// Identity shortcuts.
	if tab.Mul(tab.One, b) != b || tab.Mul(b, tab.One) != b {
		t.Error("Mul by One must return the operand pointer")
	}
	if tab.Mul(tab.Zero, b) != tab.Zero {
		t.Error("Mul by Zero must return Zero")
	}
	if tab.Add(tab.Zero, b) != b {
		t.Error("Add of Zero must return the operand pointer")
	}
	if tab.Conj(tab.LookupReal(0.75)) != tab.LookupReal(0.75) {
		t.Error("Conj of a real value must return the same pointer")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	tab := NewDefault()
	defer func() {
		if recover() == nil {
			t.Error("Div by Zero did not panic")
		}
	}()
	tab.Div(tab.One, tab.Zero)
}

func TestInvalidTolerancePanics(t *testing.T) {
	for _, tol := range []float64{0, -1e-9, 0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%g) did not panic", tol)
				}
			}()
			NewTable(tol)
		}()
	}
}

func TestStats(t *testing.T) {
	tab := NewDefault()
	tab.Lookup(complex(0.3, 0.4))
	tab.Lookup(complex(0.3, 0.4))
	lookups, hits := tab.Stats()
	if lookups != 2 || hits != 1 {
		t.Errorf("lookups=%d hits=%d, want 2 and 1", lookups, hits)
	}
}

func TestIDsAreUnique(t *testing.T) {
	tab := NewDefault()
	seen := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := tab.Lookup(complex(rng.Float64()*2-1, rng.Float64()*2-1))
		if v.ID() >= uint64(tab.Size()) {
			t.Fatalf("ID %d out of range (size %d)", v.ID(), tab.Size())
		}
		seen[v.ID()] = true
	}
	if len(seen) < 2 {
		t.Fatal("interning collapsed everything; suspicious")
	}
}

// Property: Lookup is idempotent — looking up the numeric value of an
// interned entry returns the same pointer.
func TestQuickLookupIdempotent(t *testing.T) {
	tab := NewDefault()
	f := func(re, im float64) bool {
		re = math.Mod(re, 4)
		im = math.Mod(im, 4)
		if math.IsNaN(re) || math.IsNaN(im) {
			return true
		}
		v := tab.Lookup(complex(re, im))
		return tab.Lookup(v.Complex()) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: interned value is within tolerance of the requested value.
func TestQuickLookupWithinTolerance(t *testing.T) {
	tab := NewDefault()
	f := func(re, im float64) bool {
		re = math.Mod(re, 4)
		im = math.Mod(im, 4)
		if math.IsNaN(re) || math.IsNaN(im) {
			return true
		}
		c := complex(re, im)
		v := tab.Lookup(c)
		return math.Abs(real(v.Complex())-re) <= tab.Tolerance() &&
			math.Abs(imag(v.Complex())-im) <= tab.Tolerance()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAbsHelpers(t *testing.T) {
	tab := NewDefault()
	v := tab.Lookup(complex(3, 4))
	if v.Abs() != 5 {
		t.Errorf("Abs = %g", v.Abs())
	}
	if v.Abs2() != 25 {
		t.Errorf("Abs2 = %g", v.Abs2())
	}
	if v.Real() != 3 || v.Imag() != 4 {
		t.Errorf("Real/Imag = %g/%g", v.Real(), v.Imag())
	}
}

func TestStringFormat(t *testing.T) {
	tab := NewDefault()
	if s := tab.Lookup(complex(1, -1)).String(); s != "1-1i" {
		t.Errorf("String = %q", s)
	}
	var nilV *Value
	if s := nilV.String(); s != "<nil>" {
		t.Errorf("nil String = %q", s)
	}
}

func TestNonFiniteLookupPanics(t *testing.T) {
	tab := NewDefault()
	for _, c := range []complex128{
		complex(math.NaN(), 0),
		complex(0, math.NaN()),
		complex(math.Inf(1), 0),
		complex(0, math.Inf(-1)),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Lookup(%v) did not panic", c)
				}
			}()
			tab.Lookup(c)
		}()
	}
}
