package ecrw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qcec/internal/circuit"
	"qcec/internal/ec"
)

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n, "rnd")
	for i := 0; i < gates; i++ {
		switch rng.Intn(5) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.RZ(rng.Float64(), rng.Intn(n))
		case 3:
			c.X(rng.Intn(n))
		case 4:
			a := rng.Intn(n)
			c.CX(a, (a+1+rng.Intn(n-1))%n)
		}
	}
	return c
}

func TestIdenticalCircuitsProven(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomCircuit(rng, 5, 40)
	res := Check(g, g.Clone())
	if res.Verdict != Equivalent {
		t.Fatalf("verdict %v (residual %d gates)", res.Verdict, res.ResidualGates)
	}
	if res.MiterGates != 80 {
		t.Errorf("miter gates = %d", res.MiterGates)
	}
}

func TestPeepholeVariantProven(t *testing.T) {
	// G' = G with an inserted cancelling pair and a fused rotation split.
	rng := rand.New(rand.NewSource(2))
	g := randomCircuit(rng, 4, 20)
	gp := circuit.New(4, "variant")
	for i, gate := range g.Gates {
		if gate.Kind == circuit.RZ {
			half := gate
			half.Params = []float64{gate.Params[0] / 2}
			gp.Add(half)
			gp.Add(half)
			continue
		}
		gp.Add(gate)
		if i == 7 {
			gp.H(2)
			gp.H(2)
		}
	}
	res := Check(g, gp)
	if res.Verdict != Equivalent {
		t.Fatalf("peephole variant not proven: residual %d", res.ResidualGates)
	}
}

func TestStructurallyDifferentInconclusive(t *testing.T) {
	// HXH = Z as single gates on both sides of a CX barrier the optimizer
	// cannot see through once it is part of a miter in the wrong order, plus
	// genuinely different circuits: must be Inconclusive, never NotEquiv.
	g1 := circuit.New(2, "a")
	g1.H(0).CX(0, 1).H(0)
	g2 := circuit.New(2, "b")
	g2.X(1).CX(0, 1).X(1) // different function
	res := Check(g1, g2)
	if res.Verdict != Inconclusive {
		t.Fatalf("verdict %v for non-equivalent pair", res.Verdict)
	}
}

func TestRegisterMismatch(t *testing.T) {
	res := Check(circuit.New(2, "a"), circuit.New(3, "b"))
	if res.Verdict != Inconclusive {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

// Property: ecrw is sound — whenever it says Equivalent, the DD checker
// agrees.
func TestQuickSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		g1 := randomCircuit(rng, n, 20)
		var g2 *circuit.Circuit
		if seed%2 == 0 {
			g2 = g1.Clone()
			g2.S(0)
			g2.Sdg(0)
		} else {
			g2 = randomCircuit(rng, n, 20)
		}
		res := Check(g1, g2)
		if res.Verdict != Equivalent {
			return true // inconclusive is always sound
		}
		r := ec.Check(g1, g2, ec.Options{Strategy: ec.Proportional})
		return r.Verdict == ec.Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := circuit.New(2, "g")
	g.H(0).CX(0, 1)
	res := Check(g, g.Clone())
	if res.Runtime <= 0 || res.RewritePasses == 0 || res.CancelledPairs == 0 {
		t.Errorf("stats not populated: %+v", res)
	}
	if res.Verdict.String() == "" || Inconclusive.String() == "" {
		t.Error("verdict names empty")
	}
}
