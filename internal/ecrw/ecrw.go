// Package ecrw implements rewriting-based equivalence checking in the style
// of the paper's reference [16] (Yamashita & Markov, "Fast
// equivalence-checking for quantum circuits"): build the miter circuit
// G'·G⁻¹ and reduce it with local rewrite rules (inverse-pair cancellation,
// rotation fusion, Hadamard conjugation).  If the miter reduces to the empty
// circuit the pair is proven equivalent; otherwise the method is
// inconclusive and a complete checker must take over.
//
// This is a sound-but-incomplete prefilter: it is extremely fast on pairs
// that differ by peephole-style recompilation (the common case in practice)
// and never wrong, but structurally different realizations of the same
// function (e.g. a synthesized netlist versus its mapped form) defeat it —
// exactly the gap the paper's simulation-first flow fills from the other
// side.
package ecrw

import (
	"fmt"
	"time"

	"qcec/internal/circuit"
	"qcec/internal/opt"
)

// Verdict is the outcome of a rewriting check.
type Verdict int

// Possible outcomes.  The method cannot prove non-equivalence: a miter that
// does not fully reduce is merely Inconclusive.
const (
	Equivalent Verdict = iota
	Inconclusive
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result reports the outcome and the reduction achieved.
type Result struct {
	Verdict        Verdict
	MiterGates     int // gates in G'·G⁻¹ before reduction
	ResidualGates  int // gates left after reduction
	Runtime        time.Duration
	RewritePasses  int
	CancelledPairs int
}

// Check builds and reduces the miter.  It returns Equivalent only when the
// miter vanishes completely.
func Check(g1, g2 *circuit.Circuit) Result {
	start := time.Now()
	if g1.N != g2.N {
		return Result{Verdict: Inconclusive, Runtime: time.Since(start)}
	}
	miter := g2.Clone()
	miter.Name = "miter"
	miter.Append(g1.Inverse())
	reduced, stats := opt.Optimize(miter, opt.Options{})
	res := Result{
		MiterGates:     miter.NumGates(),
		ResidualGates:  reduced.NumGates(),
		Runtime:        time.Since(start),
		RewritePasses:  stats.Passes,
		CancelledPairs: stats.CancelledPairs,
	}
	if reduced.NumGates() == 0 {
		res.Verdict = Equivalent
	} else {
		res.Verdict = Inconclusive
	}
	return res
}
