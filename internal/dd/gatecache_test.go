package dd

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
)

// xMat and hMat are shared with dd_test.go.

func phaseMat(theta float64) [2][2]complex128 {
	return [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, theta))}}
}

// TestGateCacheHit: rebuilding the same gate must be answered by the cache
// with the identical root edge.
func TestGateCacheHit(t *testing.T) {
	p := NewDefault(4)
	a := p.GateDD(hMat, 2, []Control{{Qubit: 0}})
	b := p.GateDD(hMat, 2, []Control{{Qubit: 0}})
	if a != b {
		t.Fatalf("cached gate differs: %v vs %v", a, b)
	}
	s := p.Snapshot()
	if s.GateHits != 1 || s.GateMisses != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %d / %d", s.GateHits, s.GateMisses)
	}
}

// TestGateCacheKeyDistinguishes: target, control polarity and control set
// must all separate cache entries.
func TestGateCacheKeyDistinguishes(t *testing.T) {
	p := NewDefault(4)
	base := p.GateDD(xMat, 1, []Control{{Qubit: 0}})
	cases := []MEdge{
		p.GateDD(xMat, 2, []Control{{Qubit: 0}}),            // different target
		p.GateDD(xMat, 1, []Control{{Qubit: 0, Neg: true}}), // negative control
		p.GateDD(xMat, 1, []Control{{Qubit: 3}}),            // different control
		p.GateDD(xMat, 1, nil),                              // no control
		p.GateDD(hMat, 1, []Control{{Qubit: 0}}),            // different matrix
	}
	for i, e := range cases {
		if e == base {
			t.Fatalf("case %d collided with base CX", i)
		}
	}
	if s := p.Snapshot(); s.GateHits != 0 {
		t.Fatalf("distinct gates must all miss, got %d hits", s.GateHits)
	}
}

// TestGateCacheMatchesUncached: the cached construction must be entry-wise
// identical to an uncached package's construction for a spread of gates,
// including multi-controlled and negative-controlled ones.
func TestGateCacheMatchesUncached(t *testing.T) {
	type gate struct {
		u        [2][2]complex128
		target   int
		controls []Control
	}
	gates := []gate{
		{hMat, 0, nil},
		{xMat, 3, []Control{{Qubit: 0}, {Qubit: 2, Neg: true}}},
		{phaseMat(math.Pi / 4), 2, []Control{{Qubit: 3}}},
		{xMat, 1, []Control{{Qubit: 0}, {Qubit: 2}, {Qubit: 3}}},
	}
	pc := NewDefault(4)
	pu := NewDefault(4)
	pu.SetGateCacheEnabled(false)
	for gi, g := range gates {
		// Build twice on the cached package so the second build is a hit.
		pc.GateDD(g.u, g.target, g.controls)
		mc := pc.GateDD(g.u, g.target, g.controls)
		mu := pu.GateDD(g.u, g.target, g.controls)
		for r := uint64(0); r < 16; r++ {
			for c := uint64(0); c < 16; c++ {
				a, b := pc.MatrixEntry(mc, r, c), pu.MatrixEntry(mu, r, c)
				if cmplx.Abs(a-b) > 1e-12 {
					t.Fatalf("gate %d entry (%d,%d): cached %v != uncached %v", gi, r, c, a, b)
				}
			}
		}
	}
	if s := pu.Snapshot(); s.GateHits != 0 || s.GateMisses != 0 {
		t.Fatalf("disabled cache must not count: %d hits %d misses", s.GateHits, s.GateMisses)
	}
}

// TestGateCacheSurvivesGC: a collection with no caller roots must keep the
// cached gates alive and canonical — rebuilding after GC returns the same
// root edge without a rebuild.
func TestGateCacheSurvivesGC(t *testing.T) {
	p := NewDefault(5)
	before := p.GateDD(xMat, 4, []Control{{Qubit: 1}, {Qubit: 3, Neg: true}})
	p.GC(nil, nil)
	after := p.GateDD(xMat, 4, []Control{{Qubit: 1}, {Qubit: 3, Neg: true}})
	if before != after {
		t.Fatalf("gate edge changed across GC: %v vs %v", before, after)
	}
	s := p.Snapshot()
	if s.GateHits != 1 {
		t.Fatalf("post-GC rebuild should hit the re-rooted cache, got %d hits", s.GateHits)
	}
	if s.GCRuns != 1 {
		t.Fatalf("want 1 GC run, got %d", s.GCRuns)
	}
}

// TestGateCacheFlushOnOversizedGC: when the cache exceeds its limit, a
// collection flushes it instead of rooting an unbounded population.
func TestGateCacheFlushOnOversizedGC(t *testing.T) {
	p := NewDefault(3)
	p.SetGateCacheLimit(4)
	for i := 0; i < 16; i++ {
		p.GateDD(phaseMat(float64(i)/7), 0, nil)
	}
	if s := p.Snapshot(); s.GateCacheSize != 16 {
		t.Fatalf("want 16 cached gates, got %d", s.GateCacheSize)
	}
	p.GC(nil, nil)
	s := p.Snapshot()
	if s.GateCacheSize != 0 {
		t.Fatalf("oversized cache must be flushed, still %d entries", s.GateCacheSize)
	}
	if s.GateFlushes != 1 {
		t.Fatalf("want 1 flush, got %d", s.GateFlushes)
	}
	// The flushed cache must rebuild correctly.
	m := p.GateDD(phaseMat(1.0/7), 0, nil)
	if got := p.MatrixEntry(m, 1, 1); cmplx.Abs(got-cmplx.Exp(complex(0, 1.0/7))) > 1e-12 {
		t.Fatalf("post-flush rebuild wrong: %v", got)
	}
}

// TestGateCacheDisableDropsEntries: disabling the cache clears it so GC no
// longer roots stale gates.
func TestGateCacheDisableDropsEntries(t *testing.T) {
	p := NewDefault(3)
	p.GateDD(hMat, 0, nil)
	p.SetGateCacheEnabled(false)
	if s := p.Snapshot(); s.GateCacheSize != 0 {
		t.Fatalf("disable must clear the cache, %d entries left", s.GateCacheSize)
	}
	if p.GateCacheEnabled() {
		t.Fatal("cache still reports enabled")
	}
	p.SetGateCacheEnabled(true)
	p.GateDD(hMat, 0, nil)
	if s := p.Snapshot(); s.GateCacheSize != 1 {
		t.Fatalf("re-enabled cache must repopulate, got %d entries", s.GateCacheSize)
	}
}

// TestGateCacheValidationStillPanics: the cached fast path must preserve the
// construction-time validation panics.
func TestGateCacheValidationStillPanics(t *testing.T) {
	p := NewDefault(3)
	p.GateDD(xMat, 1, []Control{{Qubit: 0}}) // warm the cache
	for name, call := range map[string]func(){
		"duplicate control": func() { p.GateDD(xMat, 1, []Control{{Qubit: 0}, {Qubit: 0, Neg: true}}) },
		"control == target": func() { p.GateDD(xMat, 1, []Control{{Qubit: 1}}) },
		"control range":     func() { p.GateDD(xMat, 1, []Control{{Qubit: 7}}) },
		"target range":      func() { p.GateDD(xMat, 5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			call()
		}()
	}
}

// TestGateCachePerGoroutine: the cache is strictly per-Package; concurrent
// goroutines on private packages must not interfere (exercised under -race
// by the CI race job).
func TestGateCachePerGoroutine(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	results := make([]complex128, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := NewDefault(4)
			var m MEdge
			for i := 0; i < 50; i++ {
				m = p.GateDD(phaseMat(float64(w)), 2, []Control{{Qubit: 0}})
			}
			// Diagonal entry with both the control (qubit 0) and the
			// target (qubit 2) bit set: the applied phase.
			results[w] = p.MatrixEntry(m, 0b0101, 0b0101)
		}(w)
	}
	wg.Wait()
	for w, got := range results {
		want := cmplx.Exp(complex(0, float64(w)))
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("worker %d: entry %v, want %v", w, got, want)
		}
	}
}

// TestUniqueAndWeightCounters: the instrumentation counters must move when
// the corresponding tables are exercised.
func TestUniqueAndWeightCounters(t *testing.T) {
	p := NewDefault(3)
	p.GateDD(hMat, 0, nil)
	p.BasisState(5)
	p.BasisState(5) // hash-consing hits
	s := p.Snapshot()
	if s.UniqueLookups == 0 {
		t.Fatal("no unique-table lookups recorded")
	}
	if s.UniqueHits == 0 {
		t.Fatal("no unique-table hits recorded")
	}
	if s.UniqueHits > s.UniqueLookups {
		t.Fatalf("hits %d exceed lookups %d", s.UniqueHits, s.UniqueLookups)
	}
	if s.WeightLookups == 0 || s.WeightHits == 0 {
		t.Fatalf("weight-table counters not recorded: %d/%d", s.WeightLookups, s.WeightHits)
	}
	if s.UniqueHitRate() <= 0 || s.UniqueHitRate() > 1 {
		t.Fatalf("bad unique hit rate %g", s.UniqueHitRate())
	}
}

// TestStatsAdd: merging snapshots must sum every field (spot-checked on the
// counters the report surfaces).
func TestStatsAdd(t *testing.T) {
	p1, p2 := NewDefault(3), NewDefault(3)
	p1.GateDD(hMat, 0, nil)
	p1.GateDD(hMat, 0, nil)
	p2.GateDD(xMat, 1, nil)
	a, b := p1.Snapshot(), p2.Snapshot()
	sum := a
	sum.Add(b)
	if sum.GateHits != a.GateHits+b.GateHits {
		t.Fatalf("GateHits: %d != %d+%d", sum.GateHits, a.GateHits, b.GateHits)
	}
	if sum.GateMisses != a.GateMisses+b.GateMisses {
		t.Fatalf("GateMisses: %d != %d+%d", sum.GateMisses, a.GateMisses, b.GateMisses)
	}
	if sum.UniqueLookups != a.UniqueLookups+b.UniqueLookups {
		t.Fatal("UniqueLookups not summed")
	}
	if sum.GateHitRate() <= 0 {
		t.Fatalf("merged hit rate %g", sum.GateHitRate())
	}
}
