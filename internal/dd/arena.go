package dd

import "qcec/internal/cn"

// Arena-backed node storage.  Nodes do not live as individually allocated Go
// objects: each Package owns one vector arena and one matrix arena, growable
// struct-of-arrays slabs addressed by 32-bit indices.  Edges (VEdge, MEdge)
// carry those indices instead of heap pointers, and the unique tables map
// node signatures to indices.
//
// This buys the two things a multicore stimulus fleet needs from its hottest
// data structure:
//
//   - GC economy.  A simulation run used to allocate millions of small
//     VNode/MNode objects that Go's collector had to trace individually.
//     The arena collapses them into a handful of large slices, and the
//     struct-of-arrays split keeps the pointer-bearing data (the child
//     weight slots, which reference interned cn.Values) in dedicated arrays
//     while the child indices and levels are pointer-free and invisible to
//     the Go GC entirely.
//   - Cheap recycling.  The package's own mark/sweep (see GC) returns dead
//     slots to a free list instead of handing garbage to the Go runtime, and
//     Package.Reset recycles the slabs in place — a pooled worker package
//     keeps its backing arrays across jobs at zero allocation cost.
//
// Index lifetime rules (the GC interaction callers must respect):
//
//   - Index 0 is the terminal in both arenas; it is never allocated and
//     never freed.  A VEdge/MEdge with N == 0 points at the terminal.
//   - A live index stays valid until a collection runs without that node
//     being reachable from the passed roots (or from the package's own
//     roots: the identity chain and the gate cache).  Freed slots are
//     reused by later allocations, so holding an edge across an unrooted
//     collection is a correctness bug, not just a canonicity leak — exactly
//     the rooting discipline GC's documentation has always demanded.
//   - Compute-table entries store indices too; every collection clears the
//     compute tables before slots are reused, so no stale index can ever be
//     observed through them.

// VRef addresses a vector-DD node in its package's arena.  0 is the
// terminal.  Refs are meaningful only within the package that issued them.
type VRef uint32

// MRef addresses a matrix-DD node in its package's arena.  0 is the
// terminal.
type MRef uint32

// vArena is the struct-of-arrays backing store for vector nodes: slot i of
// each array holds one field of node i.  lv and ch are pointer-free; only wt
// is scanned by the Go GC.
type vArena struct {
	lv   []int8         // qubit level
	ch   [][2]VRef      // successor refs
	wt   [][2]*cn.Value // successor weights (interned)
	free []VRef         // freed slots awaiting reuse
}

// mArena is the matrix counterpart of vArena (four successors, row*2+col).
type mArena struct {
	lv   []int8
	ch   [][4]MRef
	wt   [][4]*cn.Value
	free []MRef
}

// arenaInitCap sizes the slabs' first allocation; append's geometric growth
// handles everything beyond it.  Deliberately small: every core.Check on a
// fresh (unpooled) package pays for zeroing the initial slabs, so a large
// starting capacity would tax the many short checks to save the few big
// ones a handful of grows.
const arenaInitCap = 1 << 8

func (a *vArena) init() {
	a.lv = make([]int8, 1, arenaInitCap)
	a.ch = make([][2]VRef, 1, arenaInitCap)
	a.wt = make([][2]*cn.Value, 1, arenaInitCap)
	a.lv[0] = -1 // slot 0: the terminal sentinel
}

func (a *mArena) init() {
	a.lv = make([]int8, 1, arenaInitCap)
	a.ch = make([][4]MRef, 1, arenaInitCap)
	a.wt = make([][4]*cn.Value, 1, arenaInitCap)
	a.lv[0] = -1
}

// alloc returns a free slot, reusing a released one when available.
func (a *vArena) alloc() VRef {
	if k := len(a.free) - 1; k >= 0 {
		r := a.free[k]
		a.free = a.free[:k]
		return r
	}
	a.lv = append(a.lv, 0)
	a.ch = append(a.ch, [2]VRef{})
	a.wt = append(a.wt, [2]*cn.Value{})
	return VRef(len(a.lv) - 1)
}

func (a *mArena) alloc() MRef {
	if k := len(a.free) - 1; k >= 0 {
		r := a.free[k]
		a.free = a.free[:k]
		return r
	}
	a.lv = append(a.lv, 0)
	a.ch = append(a.ch, [4]MRef{})
	a.wt = append(a.wt, [4]*cn.Value{})
	return MRef(len(a.lv) - 1)
}

// release returns a slot to the free list.  The slot is scrubbed so a stale
// index fails loudly (nil weight dereference) instead of silently reading a
// recycled node.
func (a *vArena) release(r VRef) {
	a.lv[r] = -1
	a.ch[r] = [2]VRef{}
	a.wt[r] = [2]*cn.Value{}
	a.free = append(a.free, r)
}

func (a *mArena) release(r MRef) {
	a.lv[r] = -1
	a.ch[r] = [4]MRef{}
	a.wt[r] = [4]*cn.Value{}
	a.free = append(a.free, r)
}

// slots returns the arena's slot count including the terminal (the bound for
// mark bitsets).
func (a *vArena) slots() int { return len(a.lv) }
func (a *mArena) slots() int { return len(a.lv) }

// Hot accessors.  These are the only way node fields are read; they inline
// to two or three indexed loads.

// vE returns child i (0..1) of vector node n.
func (p *Package) vE(n VRef, i int) VEdge {
	return VEdge{W: p.vA.wt[n][i], N: p.vA.ch[n][i]}
}

// mE returns child i (row*2+col) of matrix node n.
func (p *Package) mE(n MRef, i int) MEdge {
	return MEdge{W: p.mA.wt[n][i], N: p.mA.ch[n][i]}
}

// vLv returns the level of vector node n (undefined for the terminal).
func (p *Package) vLv(n VRef) int { return int(p.vA.lv[n]) }

// mLv returns the level of matrix node n.
func (p *Package) mLv(n MRef) int { return int(p.mA.lv[n]) }

// ArenaStats reports the arena populations, for tests and capacity
// inspection: Slots counts allocated slots (excluding the terminal), Free
// how many of them sit on the free list awaiting reuse.
type ArenaStats struct {
	VSlots, VFree int
	MSlots, MFree int
}

// Arena returns the current arena populations.
func (p *Package) Arena() ArenaStats {
	return ArenaStats{
		VSlots: p.vA.slots() - 1, VFree: len(p.vA.free),
		MSlots: p.mA.slots() - 1, MFree: len(p.mA.free),
	}
}
