package dd

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the DD substrate: the matrix-vector path is the
// paper's "cheap" operation, the matrix-matrix path its "expensive" one.

func BenchmarkGateDD(b *testing.B) {
	p := NewDefault(16)
	controls := []Control{{Qubit: 3}, {Qubit: 7, Neg: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GateDD(hMat, 10, controls)
	}
}

func BenchmarkBasisState(b *testing.B) {
	p := NewDefault(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BasisState(uint64(i) & 0xFFFFFFFF)
	}
}

func BenchmarkMulMVEntangled(b *testing.B) {
	// Evolve an entangled 12-qubit state by H and CX layers.
	rng := rand.New(rand.NewSource(1))
	p := NewDefault(12)
	state := p.ZeroState()
	gates := make([]MEdge, 0, 64)
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			gates = append(gates, p.GateDD(hMat, rng.Intn(12), nil))
		} else {
			t := rng.Intn(12)
			c := (t + 1 + rng.Intn(11)) % 12
			gates = append(gates, p.GateDD(xMat, t, []Control{{Qubit: c}}))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = p.MulMV(gates[i%len(gates)], state)
		p.MaybeGC([]VEdge{state}, nil)
	}
}

func BenchmarkMulMMRandomClifford(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := NewDefault(8)
	acc := p.Identity()
	gates := make([]MEdge, 0, 32)
	for i := 0; i < 32; i++ {
		t := rng.Intn(8)
		c := (t + 1 + rng.Intn(7)) % 8
		gates = append(gates, p.GateDD(xMat, t, []Control{{Qubit: c}}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = p.MulMM(gates[i%len(gates)], acc)
		p.MaybeGC(nil, []MEdge{acc})
	}
}

func BenchmarkInnerProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := NewDefault(12)
	mk := func(seed uint64) VEdge {
		st := p.BasisState(seed)
		for i := 0; i < 24; i++ {
			st = p.MulMV(p.GateDD(randomUnitary(rng), rng.Intn(12), nil), st)
		}
		return st
	}
	a, c := mk(5), mk(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InnerProduct(a, c)
	}
}

// The next four benchmarks pin the gate-cache hot paths.  NewPackage matters
// because every checker run (and every parallel worker) creates its own
// Package: with the lazily allocated compute tables this costs microseconds,
// not the tens of milliseconds the old eagerly zeroed 2^17-entry tables took.

func BenchmarkNewPackage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewDefault(8)
	}
}

func BenchmarkGateDDUncached8(b *testing.B) {
	p := NewDefault(8)
	p.SetGateCacheEnabled(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GateDD(hMat, i%8, []Control{{Qubit: (i + 1) % 8}})
	}
}

func BenchmarkGateDDCached8(b *testing.B) {
	p := NewDefault(8)
	for i := 0; i < 8; i++ {
		p.GateDD(hMat, i%8, []Control{{Qubit: (i + 1) % 8}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GateDD(hMat, i%8, []Control{{Qubit: (i + 1) % 8}})
	}
}

func BenchmarkMulMVBasis8(b *testing.B) {
	p := NewDefault(8)
	g := p.GateDD(hMat, 3, []Control{{Qubit: 1}})
	v := p.BasisState(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.MulMV(g, v)
	}
}

func BenchmarkGC(b *testing.B) {
	p := NewDefault(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var keep VEdge
		for j := uint64(0); j < 256; j++ {
			keep = p.BasisState((j * 1023) & 0x3FFF)
		}
		b.StartTimer()
		p.GC([]VEdge{keep}, nil)
	}
}
