package dd

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
)

// Amplitude returns the amplitude <i|a> of a state DD.
func (p *Package) Amplitude(a VEdge, i uint64) complex128 {
	w := complex(1, 0)
	e := a
	for {
		if e.W == p.CN.Zero {
			return 0
		}
		w *= e.W.Complex()
		if e.N == 0 {
			return w
		}
		bit := (i >> uint(p.vLv(e.N))) & 1
		e = p.vE(e.N, int(bit))
	}
}

// MatrixEntry returns the entry U[r][c] of a matrix DD.
func (p *Package) MatrixEntry(m MEdge, r, c uint64) complex128 {
	w := complex(1, 0)
	e := m
	for {
		if e.W == p.CN.Zero {
			return 0
		}
		w *= e.W.Complex()
		if e.N == 0 {
			return w
		}
		v := p.mLv(e.N)
		rb := (r >> uint(v)) & 1
		cb := (c >> uint(v)) & 1
		e = p.mE(e.N, int(rb*2+cb))
	}
}

// Vector expands a state DD into a dense amplitude slice (2^n entries).
// Only valid for small n; callers must check the register size.
func (p *Package) Vector(a VEdge) []complex128 {
	if p.n > 24 {
		panic("dd: Vector expansion limited to 24 qubits")
	}
	out := make([]complex128, uint64(1)<<uint(p.n))
	var walk func(e VEdge, idx uint64, level int, w complex128)
	walk = func(e VEdge, idx uint64, level int, w complex128) {
		if e.W == p.CN.Zero {
			return
		}
		w *= e.W.Complex()
		if e.N == 0 {
			out[idx] = w
			return
		}
		v := p.vLv(e.N)
		walk(p.vE(e.N, 0), idx, v-1, w)
		walk(p.vE(e.N, 1), idx|uint64(1)<<uint(v), v-1, w)
	}
	walk(a, 0, p.n-1, 1)
	return out
}

// Matrix expands a matrix DD into a dense 2^n x 2^n matrix.  Only valid for
// small n.
func (p *Package) Matrix(m MEdge) [][]complex128 {
	if p.n > 12 {
		panic("dd: Matrix expansion limited to 12 qubits")
	}
	dim := uint64(1) << uint(p.n)
	out := make([][]complex128, dim)
	for r := uint64(0); r < dim; r++ {
		out[r] = make([]complex128, dim)
		for c := uint64(0); c < dim; c++ {
			out[r][c] = p.MatrixEntry(m, r, c)
		}
	}
	return out
}

// VSize returns the number of distinct nodes reachable from a vector edge.
func (p *Package) VSize(a VEdge) int {
	seen := make(map[VRef]bool)
	var walk func(n VRef)
	walk = func(n VRef) {
		if n == 0 || seen[n] {
			return
		}
		seen[n] = true
		walk(p.vA.ch[n][0])
		walk(p.vA.ch[n][1])
	}
	walk(a.N)
	return len(seen)
}

// MSize returns the number of distinct nodes reachable from a matrix edge.
func (p *Package) MSize(m MEdge) int {
	seen := make(map[MRef]bool)
	var walk func(n MRef)
	walk = func(n MRef) {
		if n == 0 || seen[n] {
			return
		}
		seen[n] = true
		for i := 0; i < 4; i++ {
			walk(p.mA.ch[n][i])
		}
	}
	walk(m.N)
	return len(seen)
}

// Sample draws a computational basis state from the probability distribution
// induced by the state DD, using the provided RNG.  The state need not be
// exactly normalized; probabilities are renormalized on the fly.
func (p *Package) Sample(a VEdge, rng *rand.Rand) uint64 {
	norms := make(map[VRef]float64)
	var normSq func(e VEdge) float64
	normSq = func(e VEdge) float64 {
		if e.W == p.CN.Zero {
			return 0
		}
		w2 := e.W.Abs2()
		if e.N == 0 {
			return w2
		}
		if v, ok := norms[e.N]; ok {
			return w2 * v
		}
		v := normSq(p.vE(e.N, 0)) + normSq(p.vE(e.N, 1))
		norms[e.N] = v
		return w2 * v
	}
	total := normSq(a)
	if total <= 0 {
		panic("dd: Sample of zero state")
	}
	var idx uint64
	e := a
	for e.N != 0 {
		s0 := normSq(p.vE(e.N, 0))
		s1 := normSq(p.vE(e.N, 1))
		denom := s0 + s1
		if denom <= 0 {
			panic("dd: inconsistent norms during sampling")
		}
		if rng.Float64() < s0/denom {
			e = p.vE(e.N, 0)
		} else {
			idx |= uint64(1) << uint(p.vLv(e.N))
			e = p.vE(e.N, 1)
		}
	}
	return idx
}

// FormatState renders the non-negligible amplitudes of a state DD in ket
// notation, largest magnitude first, at most limit entries.
func (p *Package) FormatState(a VEdge, limit int) string {
	if p.n > 24 {
		return fmt.Sprintf("<state on %d qubits, %d nodes>", p.n, p.VSize(a))
	}
	vec := p.Vector(a)
	type ent struct {
		idx uint64
		amp complex128
		mag float64
	}
	var ents []ent
	for i, c := range vec {
		re, im := real(c), imag(c)
		mag := re*re + im*im
		if mag > 1e-12 {
			ents = append(ents, ent{uint64(i), c, mag})
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].mag != ents[j].mag {
			return ents[i].mag > ents[j].mag
		}
		return ents[i].idx < ents[j].idx
	})
	if limit > 0 && len(ents) > limit {
		ents = ents[:limit]
	}
	var b strings.Builder
	for i, e := range ents {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "(%.4g%+.4gi)|%0*b>", real(e.amp), imag(e.amp), p.n, e.idx)
	}
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

// DumpDOT writes a Graphviz rendering of a vector DD (for debugging and the
// examples).
func (p *Package) DumpDOT(w io.Writer, a VEdge) error {
	if _, err := fmt.Fprintln(w, "digraph vdd {"); err != nil {
		return err
	}
	fmt.Fprintf(w, "  root [shape=point];\n  root -> n%d [label=\"%s\"];\n", uint64(a.N), a.W)
	seen := make(map[VRef]bool)
	var walk func(n VRef)
	walk = func(n VRef) {
		if n == 0 || seen[n] {
			return
		}
		seen[n] = true
		fmt.Fprintf(w, "  n%d [label=\"q%d\"];\n", uint64(n), p.vLv(n))
		for i := 0; i < 2; i++ {
			e := p.vE(n, i)
			if e.W == p.CN.Zero {
				continue
			}
			fmt.Fprintf(w, "  n%d -> n%d [label=\"%d: %s\"];\n", uint64(n), uint64(e.N), i, e.W)
			walk(e.N)
		}
	}
	walk(a.N)
	fmt.Fprintln(w, "  n0 [label=\"1\", shape=box];")
	_, err := fmt.Fprintln(w, "}")
	return err
}
